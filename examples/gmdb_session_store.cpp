/// \file gmdb_session_store.cpp
/// \brief GMDB as the telecom session store (paper §III): an MME session
/// object evolves through schema versions V3 -> V5 while old and new
/// network functions keep running — In-Service Software Upgrade with one
/// stored copy per object, conversion on read, and delta sync to caches.
///
///   ./example_gmdb_session_store
#include <cstdio>

#include "gmdb/cluster.h"

using namespace ofi;        // NOLINT
using namespace ofi::gmdb;  // NOLINT
using sql::TypeId;
using sql::Value;

RecordSchemaPtr MmeSchema(int version) {
  auto s = std::make_shared<RecordSchema>();
  s->name = "mme_session";
  s->version = version;
  s->primary_key = "imsi";
  s->fields = {PrimitiveField("imsi", TypeId::kString, Value("")),
               PrimitiveField("state", TypeId::kString, Value("idle")),
               PrimitiveField("cell_id", TypeId::kInt64, Value(0))};
  if (version >= 5) {
    // V5 adds VoLTE support fields (the U1(3->5) upgrade of Fig. 8).
    s->fields.push_back(PrimitiveField("volte", TypeId::kBool, Value(false)));
    s->fields.push_back(PrimitiveField("ims_apn", TypeId::kString, Value("ims")));
  }
  return s;
}

int main() {
  printf("== GMDB online schema evolution (MME session store) ==\n\n");
  GmdbCluster cluster(2);
  (void)cluster.SubmitSchema(MmeSchema(3));
  printf("CN accepted mme_session V3\n");

  // An old-generation MME (V3) attaches a subscriber.
  GmdbClient mme_v3 = cluster.MakeClient("mme_session", 3);
  auto session = TreeObject::Defaults(*(*cluster.registry().Get("mme_session", 3)));
  (void)session->SetPath("imsi", Value("460-00-123456789"));
  (void)session->SetPath("state", Value("connected"));
  (void)session->SetPath("cell_id", Value(7001));
  if (!mme_v3.Create("sess-1", session).ok()) return 1;
  printf("V3 MME created session sess-1: %s\n\n", session->ToJson().c_str());

  // The operator rolls out V5 — no downtime, schemas co-exist.
  if (auto st = cluster.SubmitSchema(MmeSchema(5)); !st.ok()) {
    printf("schema upgrade rejected: %s\n", st.ToString().c_str());
    return 1;
  }
  printf("CN accepted mme_session V5 (adds volte, ims_apn)\n");
  printf("conversion matrix:\n%s\n",
         cluster.registry().MatrixToString("mme_session").c_str());

  // A new-generation MME (V5) reads the same session: upgrade-on-read fills
  // the new fields with defaults; the stored copy is untouched.
  GmdbClient mme_v5 = cluster.MakeClient("mme_session", 5);
  auto upgraded = mme_v5.Read("sess-1");
  if (!upgraded.ok()) return 1;
  printf("V5 MME reads sess-1 (upgrade evolution): %s\n",
         (*upgraded)->ToJson().c_str());
  printf("stored version is still V%d\n\n",
         cluster.ShardFor("sess-1")->StoredVersion("mme_session", "sess-1")
             .ValueOr(-1));

  // The V5 MME enables VoLTE via a delta — the store migrates the single
  // copy forward and republishes the delta to subscribers.
  Delta enable_volte;
  enable_volte.ops = {{"volte", Value(true)}, {"state", Value("volte-call")}};
  if (!mme_v5.Write("sess-1", enable_volte).ok()) return 1;
  printf("V5 MME wrote delta (%zu bytes vs %zu-byte object)\n",
         enable_volte.ByteSize(), (*upgraded)->ByteSize());
  printf("stored version is now V%d\n",
         cluster.ShardFor("sess-1")->StoredVersion("mme_session", "sess-1")
             .ValueOr(-1));

  // The old V3 MME still reads its own view (downgrade evolution).
  mme_v3.InvalidateCache("sess-1");
  auto v3_view = mme_v3.Read("sess-1");
  if (!v3_view.ok()) return 1;
  printf("V3 MME still works (downgrade evolution): %s\n\n",
         (*v3_view)->ToJson().c_str());

  // Rollback story (D1 of Fig. 8): a failed V5 deployment can read back at
  // V3 because deleting/reordering fields is forbidden.
  printf("V5 -> V3 classified as: %s\n",
         cluster.registry().Classify("mme_session", 5, 3) ==
                 ConversionKind::kDowngrade
             ? "D (supported downgrade)"
             : "X");

  // What the rules forbid: a schema that drops a field is rejected at the CN.
  auto bad = std::make_shared<RecordSchema>();
  bad->name = "mme_session";
  bad->version = 6;
  bad->primary_key = "imsi";
  bad->fields = {PrimitiveField("imsi", TypeId::kString, Value(""))};
  printf("submitting field-dropping V6: %s\n",
         cluster.SubmitSchema(bad).ToString().c_str());

  // Durability trade-off (§III-A): async checkpoint, bounded loss window.
  GmdbStore* dn = cluster.ShardFor("sess-1");
  size_t bytes = dn->Checkpoint();
  printf("\nasync checkpoint wrote %zu bytes; mutations since: %lu\n", bytes,
         (unsigned long)dn->mutations_since_checkpoint());
  return 0;
}
