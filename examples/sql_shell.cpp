/// \file sql_shell.cpp
/// \brief A tiny interactive SQL shell over the analytic stack (parser ->
/// rewriter -> learning optimizer -> executor). Reads statements from
/// stdin; `EXPLAIN <select>` shows the plan with cardinality estimates,
/// `\store` dumps the plan store (Table I style), `\q` quits.
///
///   echo "CREATE TABLE t (a BIGINT); INSERT INTO t VALUES (1),(2); \
///         SELECT COUNT(*) FROM t;" | ./example_sql_shell
///
/// With `--distributed[=N]` the session runs on a simulated N-DN MPP
/// cluster (default 3): tables are hash-sharded, SELECTs are lowered onto
/// the distributed physical-operator layer when the shape allows (EXPLAIN
/// then prints the physical tree — scan paths, join strategy, partial/final
/// aggregation), and fall back single-node with a reason otherwise. Extra
/// meta-commands: `\analyze` refreshes optimizer statistics, `\columnar t`
/// registers a columnar copy of t, `\refresh t` force-merges the delta
/// tails so the next scan runs on freshly sealed chunks. Columnar scans are
/// always fresh regardless (sealed chunks union with the delta tail);
/// `--delta-merge-threshold=N` sets the tail length that triggers a
/// background merge (default 4096 records) and `--no-auto-merge` leaves
/// merging entirely to `\refresh`.
///
/// Exchange overflow knobs (distributed only): `--exchange-cap=N` bounds
/// each exchange channel's in-memory window to N bytes (overflow spills to
/// disk and is reported after the query), `--spill-dir=PATH` picks the temp
/// directory, `--spill-budget=N` caps live on-disk spill bytes,
/// `--build-cap=N` caps the per-DN join build partition, and
/// `--strict-exchange` restores the old deny-with-ResourceExhausted cap.
/// `--pipeline[=workers]` runs producer and consumer fragments
/// concurrently (pipelined exchange; falls back to barrier under
/// --strict-exchange) with an optional executor thread count.
/// `--no-index` disables the optimizer's secondary-index fast path
/// (every SELECT scans) — the escape hatch for comparing plans.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "cluster/distributed_sql.h"
#include "optimizer/sql_session.h"

using namespace ofi;  // NOLINT

int main(int argc, char** argv) {
  int num_dns = 0;  // 0 = single-node session
  size_t exchange_cap = 0, spill_budget = 0, build_cap = 0;
  std::string spill_dir;
  bool strict_exchange = false;
  bool pipeline = false;
  int pipeline_workers = 0;
  long long delta_merge_threshold = -1;  // -1 = keep the cluster default
  bool no_auto_merge = false;
  bool no_index = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--distributed") == 0) {
      num_dns = 3;
    } else if (std::strncmp(argv[i], "--distributed=", 14) == 0) {
      num_dns = std::atoi(argv[i] + 14);
      if (num_dns < 1) {
        std::fprintf(stderr, "bad --distributed=N value\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--exchange-cap=", 15) == 0) {
      exchange_cap = static_cast<size_t>(std::atoll(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--spill-dir=", 12) == 0) {
      spill_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--spill-budget=", 15) == 0) {
      spill_budget = static_cast<size_t>(std::atoll(argv[i] + 15));
    } else if (std::strncmp(argv[i], "--build-cap=", 12) == 0) {
      build_cap = static_cast<size_t>(std::atoll(argv[i] + 12));
    } else if (std::strcmp(argv[i], "--strict-exchange") == 0) {
      strict_exchange = true;
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      pipeline = true;
    } else if (std::strncmp(argv[i], "--pipeline=", 11) == 0) {
      pipeline = true;
      pipeline_workers = std::atoi(argv[i] + 11);
      if (pipeline_workers < 1) {
        std::fprintf(stderr, "bad --pipeline=workers value\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--delta-merge-threshold=", 24) == 0) {
      delta_merge_threshold = std::atoll(argv[i] + 24);
      if (delta_merge_threshold < 1) {
        std::fprintf(stderr, "bad --delta-merge-threshold=N value\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--no-auto-merge") == 0) {
      no_auto_merge = true;
    } else if (std::strcmp(argv[i], "--no-index") == 0) {
      no_index = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--distributed[=N]] [--exchange-cap=BYTES] "
                   "[--spill-dir=PATH] [--spill-budget=BYTES] "
                   "[--build-cap=BYTES] [--strict-exchange] "
                   "[--pipeline[=workers]] [--delta-merge-threshold=N] "
                   "[--no-auto-merge] [--no-index]\n",
                   argv[0]);
      return 1;
    }
  }
  if (num_dns == 0 && (exchange_cap || spill_budget || build_cap ||
                       !spill_dir.empty() || strict_exchange || pipeline ||
                       delta_merge_threshold >= 0 || no_auto_merge ||
                       no_index)) {
    std::fprintf(stderr, "exchange/spill knobs need --distributed\n");
    return 1;
  }

  optimizer::SqlSession local;
  std::unique_ptr<cluster::DistributedSqlSession> dist;
  if (num_dns > 0) {
    dist = std::make_unique<cluster::DistributedSqlSession>(num_dns);
    dist->exec_options().max_channel_bytes = exchange_cap;
    dist->exec_options().strict_channel_limit = strict_exchange;
    dist->exec_options().spill_dir = spill_dir;
    dist->exec_options().max_spill_bytes = spill_budget;
    dist->exec_options().max_build_bytes = build_cap;
    dist->exec_options().pipeline = pipeline;
    dist->exec_options().pipeline_workers = pipeline_workers;
    dist->exec_options().use_index = !no_index;
    if (delta_merge_threshold >= 0) {
      dist->cluster().set_delta_merge_threshold(
          static_cast<size_t>(delta_merge_threshold));
    }
    if (no_auto_merge) dist->cluster().set_auto_merge(false);
    printf("openfidb sql shell — distributed over %d DNs, end statements "
           "with ';', \\q to quit\n", num_dns);
  } else {
    printf("openfidb sql shell — end statements with ';', \\q to quit\n");
  }

  std::string buffer;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "\\q") break;
    if (line == "\\store") {
      printf("%s", local.plan_store().ToTableString().c_str());
      continue;
    }
    if (line == "\\analyze") {
      if (dist) dist->Analyze(); else local.Analyze();
      printf("ok\n");
      continue;
    }
    if (line.rfind("\\columnar ", 0) == 0 || line.rfind("\\refresh ", 0) == 0) {
      if (!dist) {
        printf("error: columnar copies need --distributed\n");
        continue;
      }
      bool refresh = line[1] == 'r';
      std::string table = line.substr(line.find(' ') + 1);
      if (refresh) {
        auto n = dist->RefreshColumnar(table);
        if (n.ok()) printf("ok (%zu shards merged)\n", *n);
        else printf("error: %s\n", n.status().ToString().c_str());
      } else {
        Status s = dist->RegisterColumnar(table);
        if (s.ok()) printf("ok\n");
        else printf("error: %s\n", s.ToString().c_str());
      }
      continue;
    }
    buffer += line + "\n";
    auto pos = buffer.find(';');
    while (pos != std::string::npos) {
      std::string stmt = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      pos = buffer.find(';');
      // Trim whitespace-only statements.
      if (stmt.find_first_not_of(" \t\n\r") == std::string::npos) continue;

      if (stmt.find("EXPLAIN") == stmt.find_first_not_of(" \t\n\r")) {
        std::string inner = stmt.substr(stmt.find("EXPLAIN") + 7);
        auto plan = dist ? dist->Explain(inner) : local.Explain(inner);
        if (plan.ok()) {
          printf("%s", plan->c_str());
        } else {
          printf("error: %s\n", plan.status().ToString().c_str());
        }
        continue;
      }
      auto result = dist ? dist->Execute(stmt) : local.Execute(stmt);
      if (!result.ok()) {
        printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      if (result->schema().num_columns() > 0) {
        if (dist) {
          const auto& info = dist->last();
          if (info.distributed) {
            printf("%s(%zu rows, distributed over %d DNs, "
                   "sim_latency_us=%lld)\n",
                   result->ToString(50).c_str(), result->num_rows(),
                   info.stats.num_serving,
                   (long long)info.stats.sim_latency_us);
            std::string scans = dist->LastScanReport();
            if (!scans.empty()) printf("%s", scans.c_str());
            if (info.stats.pipelined) {
              printf("pipeline: overlap_us=%lld batches_streamed=%zu\n",
                     (long long)info.stats.pipeline_overlap_us,
                     info.stats.batches_streamed);
            }
            if (info.stats.spill_bytes + info.stats.build_spill_bytes > 0) {
              printf("spill: exchange=%zuB (%zu segments) build=%zuB\n",
                     info.stats.spill_bytes, info.stats.spill_segments,
                     info.stats.build_spill_bytes);
            }
          } else {
            printf("%s(%zu rows, single-node fallback: %s)\n",
                   result->ToString(50).c_str(), result->num_rows(),
                   info.fallback_reason.c_str());
          }
        } else {
          printf("%s(%zu rows, max q-error %.2f)\n",
                 result->ToString(50).c_str(), result->num_rows(),
                 local.last_max_qerror());
        }
      } else {
        printf("ok\n");
      }
    }
  }
  return 0;
}
