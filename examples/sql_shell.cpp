/// \file sql_shell.cpp
/// \brief A tiny interactive SQL shell over the analytic stack (parser ->
/// rewriter -> learning optimizer -> executor). Reads statements from
/// stdin; `EXPLAIN <select>` shows the plan with cardinality estimates,
/// `\store` dumps the plan store (Table I style), `\q` quits.
///
///   echo "CREATE TABLE t (a BIGINT); INSERT INTO t VALUES (1),(2); \
///         SELECT COUNT(*) FROM t;" | ./example_sql_shell
#include <cstdio>
#include <iostream>
#include <string>

#include "optimizer/sql_session.h"

using namespace ofi;  // NOLINT

int main() {
  optimizer::SqlSession session;
  printf("openfidb sql shell — end statements with ';', \\q to quit\n");

  std::string buffer;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "\\q") break;
    if (line == "\\store") {
      printf("%s", session.plan_store().ToTableString().c_str());
      continue;
    }
    buffer += line + "\n";
    auto pos = buffer.find(';');
    while (pos != std::string::npos) {
      std::string stmt = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      pos = buffer.find(';');
      // Trim whitespace-only statements.
      if (stmt.find_first_not_of(" \t\n\r") == std::string::npos) continue;

      if (stmt.find("EXPLAIN") == stmt.find_first_not_of(" \t\n\r")) {
        std::string inner = stmt.substr(stmt.find("EXPLAIN") + 7);
        auto plan = session.Explain(inner);
        if (plan.ok()) {
          printf("%s", plan->c_str());
        } else {
          printf("error: %s\n", plan.status().ToString().c_str());
        }
        continue;
      }
      auto result = session.Execute(stmt);
      if (!result.ok()) {
        printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      if (result->schema().num_columns() > 0) {
        printf("%s(%zu rows, max q-error %.2f)\n",
               result->ToString(50).c_str(), result->num_rows(),
               session.last_max_qerror());
      } else {
        printf("ok\n");
      }
    }
  }
  return 0;
}
