/// \file learned_optimizer_demo.cpp
/// \brief The learning-based query optimizer (paper §II-C) end to end:
/// classic statistics mis-estimate a correlated predicate, the executor
/// captures the actual cardinality into the plan store, and the very next
/// planning of the same (canned) query — even with predicates reordered —
/// uses the learned number and picks a better join order.
///
///   ./example_learned_optimizer_demo
#include <cstdio>

#include "common/md5.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "optimizer/step_text.h"

using namespace ofi;             // NOLINT
using namespace ofi::optimizer;  // NOLINT
using sql::Column;
using sql::Expr;
using sql::Schema;
using sql::TypeId;
using sql::Value;

int main() {
  printf("== learning-based query optimizer ==\n\n");

  // orders(customer, region, priority): region and priority are correlated —
  // the classic trap for the independence assumption.
  sql::Catalog catalog;
  {
    sql::Table orders{Schema({Column{"customer", TypeId::kInt64, "o"},
                              Column{"region", TypeId::kInt64, "o"},
                              Column{"priority", TypeId::kInt64, "o"}})};
    Rng rng(41);
    for (int64_t i = 0; i < 50'000; ++i) {
      int64_t region = rng.Uniform(0, 19);
      int64_t priority = rng.Chance(0.95) ? region % 5 : rng.Uniform(0, 4);
      (void)orders.Append({Value(i % 2'000), Value(region), Value(priority)});
    }
    catalog.Register("orders", std::move(orders));

    sql::Table customers{Schema({Column{"id", TypeId::kInt64, "cu"},
                                 Column{"segment", TypeId::kString, "cu"}})};
    for (int64_t i = 0; i < 2'000; ++i) {
      (void)customers.Append({Value(i), Value(i % 2 ? "retail" : "corporate")});
    }
    catalog.Register("customers", std::move(customers));
  }

  StatsRegistry stats;
  stats.AnalyzeAll(catalog);
  PlanStore store(/*capture_threshold=*/0.5);
  Optimizer opt(&catalog, &stats, &store);

  auto canned_query = [&](bool reorder_predicates) {
    auto p1 = Expr::Eq("o.region", Value(7));
    auto p2 = Expr::Eq("o.priority", Value(2));
    auto pred = reorder_predicates ? Expr::And(p2, p1) : Expr::And(p1, p2);
    return opt.PlanJoinQuery({ScanSpec{"orders", pred, "o"},
                              ScanSpec{"customers", nullptr, "cu"}},
                             {Expr::EqCols("o.customer", "cu.id")});
  };

  // --- Round 1: classic statistics ------------------------------------------
  auto plan1 = canned_query(false);
  if (!plan1.ok()) return 1;
  printf("round 1 plan (statistics only):\n%s\n", (*plan1)->ToString().c_str());
  auto r1 = opt.ExecuteAndLearn(*plan1);
  if (!r1.ok()) return 1;
  printf("executed: %zu rows; max q-error %.2f\n", r1->num_rows(),
         Optimizer::MaxQError(**plan1));
  printf("plan store captured %zu step(s):\n%s\n", store.size(),
         store.ToTableString().c_str());

  // --- Round 2: same canned query, predicates REORDERED ---------------------
  auto plan2 = canned_query(true);
  if (!plan2.ok()) return 1;
  printf("round 2 plan (after learning, predicates reordered):\n%s\n",
         (*plan2)->ToString().c_str());
  auto r2 = opt.ExecuteAndLearn(*plan2);
  if (!r2.ok()) return 1;
  printf("executed: %zu rows; max q-error %.2f (was %.2f)\n", r2->num_rows(),
         Optimizer::MaxQError(**plan2), Optimizer::MaxQError(**plan1));
  printf("store hit rate: %lu/%lu lookups\n\n", (unsigned long)store.hits(),
         (unsigned long)store.lookups());

  // The canonical step text that makes the match order-insensitive: find
  // the filtered orders scan wherever the join order put it.
  const sql::PlanNode* scan = plan2->get();
  while (scan != nullptr && scan->kind != sql::PlanKind::kScan) {
    const sql::PlanNode* next = nullptr;
    for (const auto& c : scan->children) {
      if (c->kind == sql::PlanKind::kScan && c->table_name == "orders") {
        next = c.get();
        break;
      }
      next = c.get();
    }
    scan = next;
  }
  if (scan != nullptr) {
    printf("canonical scan step: %s\n", StepText(*scan).c_str());
    printf("its MD5 key: %s\n", Md5::HexDigest(StepText(*scan)).c_str());
  }
  return 0;
}
