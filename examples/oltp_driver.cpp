/// \file oltp_driver.cpp
/// \brief CLI front end for the OLTP traffic subsystem: load a TPC-C-style
/// cluster and drive N pipelined sessions against it, with group commit and
/// admission control switchable from the command line.
///
///   example_oltp_driver [--sessions N] [--dns N] [--duration-ms N]
///                       [--warehouses N] [--ms-fraction F] [--think-us N]
///                       [--group] [--window-us N] [--max-batch N]
///                       [--max-in-flight N] [--max-queue N] [--baseline]
///
/// Prints the run summary (throughput, latency percentiles, abort/shed
/// counts, group-commit and admission activity) in a human-readable block.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/traffic/traffic.h"

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT

namespace {

int64_t ArgInt(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    fprintf(stderr, "%s needs a value\n", flag);
    exit(2);
  }
  return std::atoll(argv[++*i]);
}

void Usage(const char* prog) {
  fprintf(stderr,
          "usage: %s [--sessions N] [--dns N] [--duration-ms N]\n"
          "          [--warehouses N] [--ms-fraction F] [--think-us N]\n"
          "          [--group] [--window-us N] [--max-batch N]\n"
          "          [--max-in-flight N] [--max-queue N] [--baseline]\n",
          prog);
}

}  // namespace

int main(int argc, char** argv) {
  int dns = 4;
  int64_t duration_ms = 250;
  bool baseline = false;
  TpccConfig cfg;
  cfg.warehouses_per_dn = 64;
  cfg.customers_per_warehouse = 30;
  cfg.stock_per_warehouse = 30;
  cfg.multi_shard_fraction = 0.10;
  traffic::TrafficOptions opts;
  opts.sessions = 512;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--sessions") == 0) {
      opts.sessions = static_cast<int>(ArgInt(argc, argv, &i, a));
    } else if (std::strcmp(a, "--dns") == 0) {
      dns = static_cast<int>(ArgInt(argc, argv, &i, a));
    } else if (std::strcmp(a, "--duration-ms") == 0) {
      duration_ms = ArgInt(argc, argv, &i, a);
    } else if (std::strcmp(a, "--warehouses") == 0) {
      cfg.warehouses_per_dn = static_cast<int>(ArgInt(argc, argv, &i, a));
    } else if (std::strcmp(a, "--ms-fraction") == 0) {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      cfg.multi_shard_fraction = std::atof(argv[++i]);
    } else if (std::strcmp(a, "--think-us") == 0) {
      opts.think_time_us = ArgInt(argc, argv, &i, a);
    } else if (std::strcmp(a, "--group") == 0) {
      opts.group_commit.enabled = true;
    } else if (std::strcmp(a, "--window-us") == 0) {
      opts.group_commit.window_us = ArgInt(argc, argv, &i, a);
    } else if (std::strcmp(a, "--max-batch") == 0) {
      opts.group_commit.max_batch = static_cast<int>(ArgInt(argc, argv, &i, a));
    } else if (std::strcmp(a, "--max-in-flight") == 0) {
      opts.admission.max_in_flight = static_cast<int>(ArgInt(argc, argv, &i, a));
    } else if (std::strcmp(a, "--max-queue") == 0) {
      opts.admission.max_queue = static_cast<int>(ArgInt(argc, argv, &i, a));
    } else if (std::strcmp(a, "--baseline") == 0) {
      baseline = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  cfg.duration_us = duration_ms * 1000;

  Cluster cluster(dns, baseline ? Protocol::kBaselineGtm : Protocol::kGtmLite,
                  LatencyModel{});
  if (Status st = LoadTpcc(&cluster, cfg); !st.ok()) {
    fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Result<traffic::TrafficResult> run = traffic::RunTraffic(&cluster, cfg, opts);
  if (!run.ok()) {
    fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const traffic::TrafficResult& r = *run;

  printf("=== OLTP traffic run ===\n");
  printf("cluster        : %d DNs, %s, %d warehouses\n", dns,
         baseline ? "baseline-GTM" : "GTM-Lite", cfg.warehouses_per_dn * dns);
  printf("sessions       : %d (%.0f%% multi-shard), %lld ms simulated\n",
         opts.sessions, cfg.multi_shard_fraction * 100,
         static_cast<long long>(duration_ms));
  printf("group commit   : %s", opts.group_commit.enabled ? "on" : "off");
  if (opts.group_commit.enabled) {
    printf(" (window %lld us, max batch %zu)",
           static_cast<long long>(opts.group_commit.window_us),
           opts.group_commit.max_batch);
  }
  printf("\nadmission gate : ");
  if (opts.admission.max_in_flight > 0) {
    printf("%d in flight, queue %zu\n", opts.admission.max_in_flight,
           opts.admission.max_queue);
  } else {
    printf("unlimited\n");
  }
  printf("\ncommitted      : %llu (%.0f txn/s)\n",
         static_cast<unsigned long long>(r.committed), r.throughput_tps);
  printf("aborted / shed : %llu / %llu\n",
         static_cast<unsigned long long>(r.aborted),
         static_cast<unsigned long long>(r.shed));
  printf("latency (us)   : p50 %lld  p95 %lld  p99 %lld  mean %.0f\n",
         static_cast<long long>(r.latency_p50_us),
         static_cast<long long>(r.latency_p95_us),
         static_cast<long long>(r.latency_p99_us), r.latency_mean_us);
  printf("gtm requests   : %llu\n",
         static_cast<unsigned long long>(r.gtm_requests));
  if (opts.group_commit.enabled) {
    printf("group commit   : %lld batches, %lld txns (avg %.1f/batch), "
           "%lld log forces\n",
           static_cast<long long>(r.group_batches),
           static_cast<long long>(r.group_txns),
           r.group_batches > 0 ? static_cast<double>(r.group_txns) /
                                     static_cast<double>(r.group_batches)
                               : 0.0,
           static_cast<long long>(r.log_writes));
  } else {
    printf("log forces     : %lld\n", static_cast<long long>(r.log_writes));
  }
  if (r.admission_queued > 0 || r.admission_shed > 0) {
    printf("admission      : %lld queued, %lld shed, avg wait %.0f us, "
           "peak in-flight %d\n",
           static_cast<long long>(r.admission_queued),
           static_cast<long long>(r.admission_shed),
           r.admission_queued > 0
               ? static_cast<double>(r.admission_wait_us) /
                     static_cast<double>(r.admission_queued)
               : 0.0,
           r.max_in_flight_seen);
  }
  return 0;
}
