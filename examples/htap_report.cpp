/// \file htap_report.cpp
/// \brief The HTAP story of paper §II-A: run an OLTP workload (modified
/// TPC-C under GTM-lite) and, on the SAME data, produce real-time
/// operational reports through the analytic SQL stack — no ETL, no second
/// system. A consistent multi-shard snapshot scan bridges the row store
/// into the columnar/SQL side.
///
///   ./example_htap_report
#include <algorithm>
#include <cstdio>

#include "cluster/mpp_query.h"
#include "cluster/tpcc_workload.h"
#include "optimizer/sql_session.h"

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::Row;
using sql::Value;

int main() {
  printf("== HTAP: OLTP transactions + real-time analytics ==\n\n");

  // --- OLTP side: the transactional cluster ----------------------------------
  Cluster cluster(4, Protocol::kGtmLite);
  TpccConfig cfg;
  cfg.warehouses_per_dn = 2;
  cfg.clients_per_dn = 4;
  cfg.multi_shard_fraction = 0.1;
  cfg.duration_us = 500'000;
  if (!LoadTpcc(&cluster, cfg).ok()) {
    printf("load failed\n");
    return 1;
  }
  TpccResult oltp = RunTpcc(&cluster, cfg);
  printf("OLTP: %llu transactions committed (%.1f ktps simulated), %llu "
         "aborted, %llu GTM requests\n",
         (unsigned long long)oltp.committed, oltp.throughput_tps / 1000.0,
         (unsigned long long)oltp.aborted,
         (unsigned long long)oltp.gtm_requests);

  // --- Bridge: one consistent snapshot scan across every shard ---------------
  // A multi-shard reader gives a transactionally consistent view; its rows
  // feed the analytic catalog (in FI-MPPDB this is the same engine reading
  // the same storage — here the row/columnar handoff is explicit).
  optimizer::SqlSession session;
  auto scan_into = [&](const char* table, const char* create) -> Status {
    OFI_RETURN_NOT_OK(session.Execute(create).status());
    Txn reader = cluster.Begin(TxnScope::kMultiShard);
    OFI_ASSIGN_OR_RETURN(auto dest, session.catalog().Get(table));
    for (int dn = 0; dn < cluster.num_dns(); ++dn) {
      OFI_ASSIGN_OR_RETURN(std::vector<Row> rows, reader.ScanShard(table, dn));
      for (Row& r : rows) {
        OFI_RETURN_NOT_OK(dest->Append(std::move(r)));
      }
    }
    return reader.Commit();
  };
  if (!scan_into("customer",
                 "CREATE TABLE customer (k BIGINT, balance BIGINT, payments "
                 "BIGINT)")
           .ok() ||
      !scan_into("orders",
                 "CREATE TABLE orders (k BIGINT, customer BIGINT, lines BIGINT, "
                 "delivered BIGINT)")
           .ok() ||
      !scan_into("warehouse", "CREATE TABLE warehouse (k BIGINT, ytd BIGINT)")
           .ok()) {
    printf("snapshot scan failed\n");
    return 1;
  }
  session.Analyze();
  printf("bridged a consistent snapshot into the analytic catalog\n\n");

  // --- OLAP side: operational reports in SQL ---------------------------------
  auto report = [&](const char* title, const std::string& query) {
    auto r = session.Execute(query);
    if (!r.ok()) {
      printf("%s: error %s\n", title, r.status().ToString().c_str());
      return;
    }
    printf("-- %s\n%s\n", title, r->ToString(8).c_str());
  };

  report("revenue collected per warehouse (top 5)",
         "SELECT k / 1000000 AS warehouse, ytd FROM warehouse "
         "ORDER BY ytd DESC LIMIT 5");

  report("order volume and size",
         "SELECT COUNT(*) AS orders, AVG(lines) AS avg_lines, "
         "MAX(lines) AS max_lines FROM orders");

  report("most active customers (fraud-screening feed)",
         "SELECT customer, COUNT(*) AS n FROM orders "
         "GROUP BY customer HAVING COUNT(*) >= 2 "
         "ORDER BY n DESC LIMIT 5");

  report("customers who overdrew (balance < 0)",
         "SELECT COUNT(*) AS overdrawn, MIN(balance) AS worst "
         "FROM customer WHERE balance < 0");

  printf("(every report ran on live OLTP data: no ETL pipeline, the paper's "
         "HTAP motivation)\n");
  printf("optimizer q-error on the last report: %.2f\n\n",
         session.last_max_qerror());

  // --- MPP path: scatter-gather aggregation without moving rows ---------------
  // The same kind of report, executed the MPP way (Fig. 1): each DN runs the
  // partial aggregate over its shard; only group-sized partial state crosses
  // the network.
  auto mpp = DistributedAggregate(
      &cluster, "customer", sql::Expr::Lt("balance", sql::Value(1000)), {},
      {{sql::AggFunc::kCount, "", "active_payers"},
       {sql::AggFunc::kAvg, "balance", "avg_balance"}});
  if (mpp.ok()) {
    printf("-- MPP scatter-gather: customers who paid (balance < 1000)\n%s",
           mpp->table.ToString().c_str());
    printf("data moved DN->CN: %zu bytes of partial state (vs %zu bytes if "
           "every row shipped: %.0fx less)\n",
           mpp->partial_bytes, mpp->naive_bytes,
           static_cast<double>(mpp->naive_bytes) /
               std::max<size_t>(1, mpp->partial_bytes));
  }
  return 0;
}
