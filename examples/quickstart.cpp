/// \file quickstart.cpp
/// \brief openfidb in five minutes: spin up a sharded cluster with the
/// GTM-lite transaction protocol (paper §II-A), run single-shard and
/// multi-shard transactions, and watch the GTM stay idle for the former.
///
///   ./example_quickstart
#include <cstdio>

#include "cluster/cluster.h"

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

int main() {
  printf("== openfidb quickstart ==\n\n");

  // A 4-data-node cluster running the GTM-lite protocol.
  Cluster cluster(4, Protocol::kGtmLite);
  Schema accounts({Column{"id", TypeId::kInt64, ""},
                   Column{"owner", TypeId::kString, ""},
                   Column{"balance", TypeId::kInt64, ""}});
  if (auto st = cluster.CreateTable("accounts", accounts); !st.ok()) {
    printf("create table failed: %s\n", st.ToString().c_str());
    return 1;
  }
  printf("created table accounts%s on 4 data nodes\n",
         accounts.ToString().c_str());

  // Load a few accounts with single-shard transactions (no GTM involved).
  const char* owners[] = {"ada", "grace", "edsger", "barbara"};
  for (int64_t i = 0; i < 4; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    Value key(i);
    if (!t.Insert("accounts", key, {key, Value(owners[i]), Value(1000)}).ok() ||
        !t.Commit().ok()) {
      printf("load failed\n");
      return 1;
    }
  }
  printf("loaded 4 accounts; GTM requests so far: %lu (single-shard skips "
         "the GTM)\n\n",
         (unsigned long)cluster.gtm().requests_served());

  // A cross-shard transfer must be declared multi-shard: it takes a global
  // snapshot, merges it with each DN's local snapshot (Algorithm 1), and
  // commits with two-phase commit.
  Txn transfer = cluster.Begin(TxnScope::kMultiShard);
  auto move_money = [&](int64_t from, int64_t to, int64_t amount) -> Status {
    OFI_ASSIGN_OR_RETURN(Row src, transfer.Read("accounts", Value(from)));
    OFI_ASSIGN_OR_RETURN(Row dst, transfer.Read("accounts", Value(to)));
    src[2] = Value(src[2].AsInt() - amount);
    dst[2] = Value(dst[2].AsInt() + amount);
    OFI_RETURN_NOT_OK(transfer.Update("accounts", Value(from), src));
    return transfer.Update("accounts", Value(to), dst);
  };
  if (Status st = move_money(0, 3, 250); !st.ok()) {
    printf("transfer failed: %s\n", st.ToString().c_str());
    (void)transfer.Abort();
    return 1;
  }
  if (Status st = transfer.Commit(); !st.ok()) {
    printf("commit failed: %s\n", st.ToString().c_str());
    return 1;
  }
  printf("moved 250 from ada to barbara (2PC across shards, gxid=%lu)\n",
         (unsigned long)transfer.gxid());

  // Verify with a consistent multi-shard reader.
  Txn reader = cluster.Begin(TxnScope::kMultiShard);
  for (int64_t i = 0; i < 4; ++i) {
    auto row = reader.Read("accounts", Value(i));
    if (row.ok()) {
      printf("  account %ld (%s): balance %ld\n", (long)i,
             (*row)[1].AsString().c_str(), (long)(*row)[2].AsInt());
    }
  }
  (void)reader.Commit();

  printf("\nGTM requests total: %lu; merge upgrades=%d downgrades=%d\n",
         (unsigned long)cluster.gtm().requests_served(), reader.upgrades(),
         reader.downgrades());
  printf("simulated txn latency: transfer took %ld us of simulated time\n",
         (long)transfer.now());
  return 0;
}
