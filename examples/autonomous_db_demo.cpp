/// \file autonomous_db_demo.cpp
/// \brief The autonomous-database control loop (paper §IV-A, Fig. 12): the
/// information store collects metrics, the anomaly manager diagnoses a slow
/// disk, the workload manager holds the SLA through a burst, the in-DB ML
/// component predicts response times, and the change manager auto-tunes a
/// memory knob with rollback protection.
///
///   ./example_autonomous_db_demo
#include <cmath>
#include <cstdio>

#include "autodb/anomaly_manager.h"
#include "autodb/change_manager.h"
#include "autodb/ml.h"
#include "autodb/workload_manager.h"
#include "common/rng.h"

using namespace ofi;          // NOLINT
using namespace ofi::autodb;  // NOLINT

int main() {
  printf("== autonomous database control loop ==\n\n");
  InformationStore info;
  Rng rng(8);

  // --- 1. Continuous monitoring into the information store ------------------
  for (int t = 0; t < 600; ++t) {
    double disk = 120 + rng.NextDouble() * 10;
    if (t > 500) disk = 3500;  // disk starts failing
    info.RecordMetric("dn1.disk_read_us", t, disk);
    info.RecordMetric("dn1.cpu_pct", t, 35 + rng.NextDouble() * 5);
  }
  printf("information store: %zu metric series collected\n",
         info.metrics().num_series());

  // --- 2. Anomaly manager: detect + recommend -------------------------------
  AnomalyManager anomalies(&info);
  anomalies.AddRule(DetectionRule{"dn1.disk_read_us", 3.0, 6.0, 0, 64});
  anomalies.AddRule(DetectionRule{"dn1.cpu_pct", 3.0, 6.0, 0, 64});
  auto found = anomalies.Scan(0, 600);
  printf("anomaly manager: %zu anomalies", found.size());
  if (!found.empty()) {
    printf(" (first at t=%lld on %s, severity %s)\n  self-healing action: %s",
           (long long)found.front().ts, found.front().metric.c_str(),
           found.front().severity == AnomalySeverity::kCritical ? "CRITICAL"
                                                                : "warning",
           AnomalyManager::RecommendAction(found.front()).c_str());
  }
  printf("\n\n");

  // --- 3. Workload manager: hold the SLA through a burst --------------------
  WorkloadManager wm({.capacity_units = 16, .max_queue = 64}, &info);
  SimTime now = 0;
  for (int i = 0; i < 500; ++i) {
    now += rng.Uniform(50, 150);
    if (i % 100 == 0) {
      for (int b = 0; b < 8; ++b) (void)wm.Submit("report", now, 2.0, 8'000);
    }
    (void)wm.Submit("point", now, 0.25, 300);
  }
  std::vector<SlaTarget> sla = {{"point", 250'000}};
  printf("workload manager: point p95 = %.0f us, report p95 = %.0f us\n",
         wm.AchievedP95("point"), wm.AchievedP95("report"));
  printf("SLA (point p95 < 250ms): %s — admitted %lu, queued %lu, rejected %lu\n\n",
         wm.MeetsSla(sla) ? "MET" : "VIOLATED", (unsigned long)wm.admitted(),
         (unsigned long)wm.queued(), (unsigned long)wm.rejected());

  // --- 4. In-DB ML: predict response time from workload features ------------
  std::vector<std::vector<double>> features;
  std::vector<double> response;
  for (const auto& q : info.queries()) {
    features.push_back({q.cost_units});
    response.push_back(q.response_time_us);
  }
  LinearRegression model;
  if (model.Fit(features, response).ok()) {
    printf("in-DB ML: response_us ~= %.0f * cost + %.0f (R2=%.2f)\n",
           model.weights()[0], model.bias(),
           model.Score(features, response).ValueOr(0));
    printf("  predicted response for a cost-4 query: %.0f us\n\n",
           model.Predict({4.0}).ValueOr(0));
  }

  // --- 5. Change manager: guarded auto-tuning -------------------------------
  ChangeManager cm;
  (void)cm.DefineParameter({"buffer_pool_mb", 64, 16, 8192});
  auto objective = [&]() {
    double v = cm.Get("buffer_pool_mb").ValueOrDie();
    double d = std::log2(v) - 10;  // pretend 1024MB is optimal
    return 50 + d * d * 12;
  };
  printf("change manager: tuning buffer_pool_mb (objective = mean latency)\n");
  double before = objective();
  auto best = cm.AutoTune("buffer_pool_mb", objective, 2.0, 12);
  printf("  64MB -> %.0fMB, objective %.1f -> %.1f across %zu recorded changes\n",
         best.ValueOr(-1), before, objective(), cm.history().size());

  // A bad manual change gets rolled back automatically.
  auto kept = cm.ApplyGuarded("buffer_pool_mb", 16, objective);
  printf("  manual change to 16MB: %s (kept value %.0fMB)\n",
         cm.history().back().rolled_back ? "ROLLED BACK" : "kept",
         kept.ValueOr(-1));
  return 0;
}
