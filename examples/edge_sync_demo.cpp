/// \file edge_sync_demo.cpp
/// \brief The device-edge-cloud collaboration platform (paper §IV-B): a
/// phone, a watch and a smart TV share data over an ad-hoc network without
/// the cloud, resolve a concurrent edit deterministically, and catch the
/// cloud up later — plus the "urgent message follows the user to the TV"
/// vision via query-based subscriptions.
///
///   ./example_edge_sync_demo
#include <cstdio>

#include "edge/platform.h"

using namespace ofi;        // NOLINT
using namespace ofi::edge;  // NOLINT
using sql::Value;

int main() {
  printf("== device-edge-cloud data collaboration ==\n\n");
  Platform platform;
  SyncNode* phone = platform.AddNode("phone", Tier::kDevice);
  SyncNode* watch = platform.AddNode("watch", Tier::kDevice);
  SyncNode* tv = platform.AddNode("tv", Tier::kDevice);
  SyncNode* cloud = platform.AddNode("cloud", Tier::kCloud);

  // The TV subscribes to urgent messages (query-based event subscription).
  tv->Subscribe("messages/urgent/", [](const std::string& key, const Value& v) {
    printf("  [tv popup] %s -> %s\n", key.c_str(),
           v.is_null() ? "(deleted)" : v.AsString().c_str());
  });

  // Offline home scenario: the internet is down, devices sync directly.
  phone->Put("photos/hike", Value("IMG_2931"));
  phone->Put("messages/urgent/mom", Value("call me back!"));
  watch->Put("health/steps", Value(8421));

  printf("direct phone<->watch sync (Bluetooth-class link):\n");
  SyncStats s1 = platform.SyncPair(phone->id(), watch->id());
  printf("  %zu entries, %zu bytes, %lld us simulated\n", s1.entries_sent,
         s1.bytes_on_wire, (long long)s1.latency_us);

  printf("phone -> tv sync (urgent message reaches the TV while user watches):\n");
  platform.SyncPair(phone->id(), tv->id());

  // Concurrent edit: phone and watch both rename the same album offline.
  phone->Put("albums/1/title", Value("Alps 2026"));
  watch->Put("albums/1/title", Value("Hiking trip"));
  SyncStats s2 = platform.SyncPair(phone->id(), watch->id());
  printf("\nconcurrent edit resolved (%zu conflict): both now see \"%s\"\n",
         s2.conflicts, phone->Get("albums/1/title").ValueOrDie().AsString().c_str());
  printf("  (version vectors, not wall clocks — no time-drift problem)\n");

  // The cloud reconnects and catches up in one session.
  printf("\ncloud reconnects:\n");
  SyncStats s3 = platform.SyncPair(watch->id(), cloud->id());
  printf("  cloud received %zu entries; has photos/hike: %s\n", s3.entries_sent,
         cloud->Get("photos/hike").ok() ? "yes" : "no");

  // Compare the two routes for fresh data.
  phone->Put("videos/clip", Value(std::string(8192, 'x')));
  SyncNode* tablet = platform.AddNode("tablet", Tier::kDevice);
  SyncStats direct = platform.SyncPair(phone->id(), tablet->id());
  phone->Put("videos/clip2", Value(std::string(8192, 'y')));
  auto via_cloud = platform.SyncThroughCloud(phone->id(), watch->id());
  printf("\n8KB video share: direct %lld us vs through-cloud %lld us (%.0fx)\n",
         (long long)direct.latency_us,
         (long long)(via_cloud.ok() ? via_cloud->latency_us : 0),
         via_cloud.ok() ? static_cast<double>(via_cloud->latency_us) /
                              static_cast<double>(direct.latency_us)
                        : 0.0);

  // Resource sharing: the watch offloads old entries but can re-fetch.
  printf("\nwatch store: %zu live keys; phone store: %zu live keys\n",
         watch->store().live_size(), phone->store().live_size());
  printf("re-sync ships nothing new: %zu entries\n",
         platform.SyncPair(phone->id(), watch->id()).entries_sent);
  return 0;
}
