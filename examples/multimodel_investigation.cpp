/// \file multimodel_investigation.cpp
/// \brief The paper's Example 1 (§II-B) as a runnable scenario: find cars
/// caught speeding in the last 30 minutes whose owners received more than 3
/// calls since a cutoff — a graph traversal (Gremlin-style) and a
/// time-series window joined relationally inside ONE database.
///
///   ./example_multimodel_investigation
#include <cstdio>

#include "multimodel/multimodel.h"

using namespace ofi;              // NOLINT
using namespace ofi::multimodel;  // NOLINT
using graph::Gp;
using graph::Traversal;
using sql::Column;
using sql::Expr;
using sql::Schema;
using sql::TypeId;
using sql::Value;

constexpr int64_t kMinute = 60'000'000;

int main() {
  printf("== multi-model investigation (paper Example 1) ==\n\n");
  MultiModelDb db;
  int64_t now = 600 * kMinute;

  // --- Graph model: the call graph -----------------------------------------
  auto* g = *db.CreateGraph("calls");
  struct Person {
    const char* name;
    int64_t cid, phone;
  };
  Person people[] = {{"wei", 11111, 5550001},
                     {"li", 11112, 5550002},
                     {"zhang", 11113, 5550003},
                     {"chen", 11114, 5550004}};
  std::vector<graph::VertexId> verts;
  for (const auto& p : people) {
    verts.push_back(g->AddVertex("person", {{"cid", Value(p.cid)},
                                            {"phone", Value(p.phone)},
                                            {"name", Value(p.name)}}));
  }
  // wei (cid 11111) received a burst of 5 recent calls; others are quiet.
  for (int i = 0; i < 5; ++i) {
    (void)g->AddEdge(verts[(i % 3) + 1], verts[0], "call",
                     {{"time", Value::Timestamp(now - (i + 1) * kMinute)}});
  }
  (void)g->AddEdge(verts[0], verts[2], "call",
                   {{"time", Value::Timestamp(now - 400 * kMinute)}});
  printf("call graph: %zu people, %zu calls\n", g->num_vertices(), g->num_edges());

  // --- Time-series model: high-speed camera sightings ----------------------
  auto* sightings = *db.CreateEventStore(
      "high_speed_view",
      {Column{"carid", TypeId::kInt64, ""}, Column{"juncid", TypeId::kInt64, ""}});
  (void)sightings->Append(now - 12 * kMinute, {Value(9001), Value(3)});  // wei's car
  (void)sightings->Append(now - 90 * kMinute, {Value(9002), Value(5)});  // too old
  (void)sightings->Append(now - 4 * kMinute, {Value(9003), Value(3)});   // li's car
  printf("camera events: %zu sightings recorded\n", sightings->size());

  // --- Relational model: car ownership --------------------------------------
  sql::Table car2cid{Schema({Column{"carid", TypeId::kInt64, "cc"},
                             Column{"cid", TypeId::kInt64, "cc"}})};
  (void)car2cid.Append({Value(9001), Value(11111)});
  (void)car2cid.Append({Value(9002), Value(11113)});
  (void)car2cid.Append({Value(9003), Value(11112)});
  db.RegisterTable("car2cid", std::move(car2cid));

  // --- Example 1, as one integrated plan ------------------------------------
  // with cars as (select * from gtimeseries(... now()-time < 30 minutes)),
  //      suspects as (select * from ggraph(
  //          g.V().where(inE('call').has('time', gt(cutoff)).count().gt(3))))
  // select s.cid, s.phone, s.name, c.carid from suspects s, cars c, car2cid cc
  // where s.cid = cc.cid and cc.carid = c.carid
  int64_t cutoff = now - 60 * kMinute;
  Traversal suspects = (*db.Gremlin("calls"))
                           .V()
                           .Where(
                               [&](Traversal t) {
                                 return std::move(t.InE("call").Has(
                                     "time", Gp::Gt(Value::Timestamp(cutoff))));
                               },
                               Gp::Gt(Value(3)));
  printf("\nsuspects by call pattern: %lld\n",
         static_cast<long long>(suspects.Count()));

  auto cars = *db.TimeSeriesWindowExpr("high_speed_view", now, 30 * kMinute, "c");
  auto suspects_plan = db.GraphTableExpr(suspects, {"cid", "phone", "name"}, "s");
  auto plan = sql::MakeProject(
      sql::MakeJoin(suspects_plan,
                    sql::MakeJoin(cars, sql::MakeScan("car2cid"),
                                  Expr::EqCols("c.carid", "cc.carid")),
                    Expr::EqCols("s.cid", "cc.cid")),
      {Expr::ColumnRef("s.name"), Expr::ColumnRef("s.cid"),
       Expr::ColumnRef("s.phone"), Expr::ColumnRef("c.carid"),
       Expr::ColumnRef("c.juncid")},
      {"name", "cid", "phone", "carid", "junction"});

  auto result = db.Execute(plan);
  if (!result.ok()) {
    printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("\ncross-model result (suspect cars in the last 30 minutes):\n%s\n",
         result->ToString().c_str());

  // Bonus: knowledge processing on the same graph (paper §II-B1).
  auto rank = g->PageRank();
  printf("most-called person by PageRank: ");
  graph::VertexId best = 0;
  double best_rank = -1;
  for (const auto& [id, r] : rank) {
    if (r > best_rank) {
      best_rank = r;
      best = id;
    }
  }
  auto v = g->GetVertex(best);
  if (v.ok()) {
    printf("%s (rank %.3f)\n", (*v)->properties.at("name").AsString().c_str(),
           best_rank);
  }
  return 0;
}
