/// \file autonomous_vehicle.cpp
/// \brief Data management for autonomous vehicles (paper §II-B1 + §IV-B3):
/// one multi-model database ingests camera detections (vision engine),
/// position fixes (spatio-temporal index), speed telemetry (time-series
/// with edge pre-aggregation), and a standing continuous query that flags
/// speeding in real time — then answers a cross-model investigation query.
///
///   ./example_autonomous_vehicle
#include <cstdio>

#include "multimodel/multimodel.h"

using namespace ofi;              // NOLINT
using namespace ofi::multimodel;  // NOLINT
using sql::Column;
using sql::Expr;
using sql::TypeId;
using sql::Value;

int main() {
  printf("== autonomous-vehicle data management ==\n\n");
  MultiModelDb db;
  const int64_t kMs = 1000;

  // --- Vision engine: camera detections with IoU tracking --------------------
  auto* cam = *db.CreateVisionStore("front_camera");
  // A pedestrian crossing left-to-right over 10 frames, a parked car.
  for (int f = 0; f < 10; ++f) {
    vision::Detection d;
    d.frame = f;
    d.ts = f * 33 * kMs;
    d.label = "pedestrian";
    d.confidence = 0.85 + 0.01 * f;
    d.bbox = {100.0 + f * 12, 200, 40, 90};
    cam->Ingest(d);
    vision::Detection car;
    car.frame = f;
    car.ts = f * 33 * kMs;
    car.label = "car";
    car.confidence = 0.97;
    car.bbox = {400, 180, 120, 80};
    cam->Ingest(car);
  }
  printf("vision: %zu detections -> %lld tracks (IoU tracker)\n", cam->size(),
         (long long)cam->num_tracks());
  printf("  distinct pedestrians in scene: %lld\n",
         (long long)cam->DistinctTracks("pedestrian", 0, 1'000'000'000));

  // --- Spatio-temporal index: our own position fixes --------------------------
  auto* trips = *db.CreateSpatialIndex("fixes", 50.0);
  for (int t = 0; t < 60; ++t) {
    trips->Insert(/*vehicle=*/1, {t * 15.0, 5.0}, t * 1000 * kMs);
  }
  spatial::BoundingBox school_zone{300, -50, 600, 60};
  auto in_zone = trips->QueryBoxTime(school_zone, 0, 60'000 * kMs);
  printf("spatial: %zu of 60 position fixes inside the school zone\n",
         in_zone.size());

  // --- Time-series: wheel-speed telemetry with edge pre-aggregation ----------
  timeseries::ContinuousAggregate per_second(1000 * kMs, timeseries::AggKind::kAvg);
  auto* speeds = *db.CreateMetricStore("telemetry");
  for (int t = 0; t < 6000; ++t) {
    double kmh = t < 3000 ? 38.0 + (t % 7) : 61.0 + (t % 5);  // speeds up
    speeds->Append("wheel_speed", t * 10 * kMs, kmh);
    per_second.Ingest(t * 10 * kMs, kmh);
  }
  printf("time-series: %d raw samples; pre-aggregated to %zu 1s windows "
         "(edge-side reduction %.0fx)\n",
         6000, per_second.num_windows(), 6000.0 / per_second.num_windows());

  // --- Streaming: a standing speeding alarm ----------------------------------
  auto* stream = *db.CreateStream(
      "speed_events", {Column{"vehicle", TypeId::kInt64, ""},
                       Column{"kmh", TypeId::kDouble, ""}});
  int alarms = 0;
  streaming::ContinuousQuerySpec alarm;
  alarm.name = "speeding";
  alarm.filter = Expr::Gt("kmh", Value(50.0));
  alarm.key_column = "vehicle";
  alarm.window_us = 10'000 * kMs;  // 10s windows
  (void)stream->Register(alarm, [&](const streaming::WindowResult& r) {
    ++alarms;
    if (alarms <= 3) {
      printf("  [alert] vehicle %lld: %llu speeding samples in window @%llds\n",
             (long long)r.key.AsInt(), (unsigned long long)r.count,
             (long long)(r.window_start / (1000 * kMs)));
    }
  });
  for (int t = 0; t < 6000; ++t) {
    double kmh = t < 3000 ? 38.0 + (t % 7) : 61.0 + (t % 5);
    (void)stream->Ingest(t * 10 * kMs, {Value(1), Value(kmh)});
  }
  stream->Flush();
  printf("streaming: %d speeding windows flagged\n\n", alarms);

  // --- Cross-model query: "pedestrian tracks while we were in the zone" ------
  // vision detections ⋈ (time window of our zone presence).
  auto detections = *db.VisionTableExpr("front_camera", "v");
  auto plan = sql::MakeAggregate(
      sql::MakeFilter(detections,
                      Expr::And(Expr::Eq("v.label", Value("pedestrian")),
                                Expr::Ge("v.confidence", Value(0.85)))),
      {"v.track"}, {sql::AggSpec{sql::AggFunc::kCount, nullptr, "sightings"}});
  auto result = db.Execute(plan);
  if (result.ok()) {
    printf("cross-model: pedestrian tracks with confident sightings:\n%s",
           result->ToString().c_str());
  }

  // Hot/cold separation (§IV-B3): retention drops cold raw telemetry after
  // pre-aggregation preserved the queryable rollups.
  size_t dropped = speeds->RetainAll(30'000 * kMs);
  printf("\nhot/cold: dropped %zu cold raw samples; rollups retained (%zu "
         "windows)\n",
         dropped, per_second.num_windows());
  return 0;
}
