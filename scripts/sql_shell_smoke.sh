#!/usr/bin/env bash
# End-to-end smoke of the distributed SQL path: pipes a scripted
# CREATE/INSERT/ANALYZE/EXPLAIN/SELECT session into the interactive shell
# running over a 4-DN simulated cluster and greps the output for the
# physical plan (scan path, join strategy, partial/final aggregation) and
# the distributed result annotation. Catches wiring regressions that unit
# tests of the layers individually would miss.
# Usage: scripts/sql_shell_smoke.sh [build-dir]   (default: build-release)
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build-release}"
shell="${build}/examples/example_sql_shell"
if [[ ! -x "${shell}" ]]; then
  echo "error: ${shell} not built" >&2
  exit 2
fi

out="$("${shell}" --distributed=4 <<'SQL'
CREATE TABLE orders (o_id BIGINT, cust BIGINT, amount BIGINT);
CREATE TABLE customers (c_id BIGINT, segment VARCHAR);
INSERT INTO orders VALUES (1, 10, 120), (2, 11, 30), (3, 10, 500),
                          (4, 12, 80), (5, 11, 260), (6, 13, 90);
INSERT INTO customers VALUES (10, 'gold'), (11, 'silver'), (12, 'gold');
\analyze
EXPLAIN SELECT segment, COUNT(*) AS n, SUM(amount) AS total
  FROM orders JOIN customers ON cust = c_id
  WHERE amount > 50 GROUP BY segment;
SELECT segment, COUNT(*) AS n, SUM(amount) AS total
  FROM orders JOIN customers ON cust = c_id
  WHERE amount > 50 GROUP BY segment;
\columnar orders
EXPLAIN SELECT cust, SUM(amount) AS total
  FROM orders WHERE amount > 50 GROUP BY cust;
SELECT cust, SUM(amount) AS total
  FROM orders WHERE amount > 50 GROUP BY cust;
\q
SQL
)"

fail=0
expect() {
  if ! grep -qE "$1" <<<"${out}"; then
    echo "MISSING: $1" >&2
    fail=1
  fi
}

# The physical plan: final/partial agg split, hash join with a
# stats-chosen strategy, row-path scans with the pushed-down predicate.
expect "DISTRIBUTED PLAN \(over 4 DNs\)"
expect "FINALAGG"
expect "PARTIALAGG"
# The join planner may put either table on the build side.
expect "HASHJOIN (cust = c_id|c_id = cust) strategy=(broadcast|repartition)"
expect "DISTSCAN orders path=row pred=\[amount>50\]"
expect "DISTSCAN customers path=row"
# The query actually ran distributed and returned the right values:
# gold -> 3 rows (120+500+80=700), silver -> 1 row (260).
expect "2 rows, distributed over 4 DNs, sim_latency_us="
expect "'gold' \| 3 \| 700"
expect "'silver' \| 1 \| 260"
# Grouped-kernel columnar path: EXPLAIN advertises the vectorized GROUP BY
# with its per-DN scan forecast, and the executed query reports the
# realized per-DN columnar scan (no row fallback) with correct sums.
expect "DISTSCAN orders path=columnar scan=columnar\(grouped-kernel\)"
expect "scan forecast:"
expect "dn[0-9]+ orders: columnar\(grouped-kernel\) chunks="
expect "4 rows, distributed over 4 DNs, sim_latency_us="
expect "10 \| 620"
expect "11 \| 260"
expect "12 \| 80"
expect "13 \| 90"

if [[ "${fail}" -ne 0 ]]; then
  echo "--- shell output ---" >&2
  echo "${out}" >&2
  echo "FAIL: sql_shell_smoke" >&2
  exit 1
fi
echo "OK: sql_shell_smoke (${build})"
