#!/usr/bin/env bash
# Sanitizer gate for the concurrent read path: builds the asan
# (Debug + ASan/UBSan) and tsan presets and runs the test suite under both.
# Usage: scripts/check.sh [asan|tsan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

want="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_preset() {
  local preset="$1"
  echo "=== ${preset}: configure + build + ctest ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
  # The exchange/join/columnar-scan tests cross threads by design (pool
  # scatter, channel sends, vacuum-under-exchange stress, morsel-parallel
  # chunk scans), and the admission-queue stress drives the CN gate from
  # 8 real threads — run them by name so a filtered or stale test list can
  # never skip the reason this gate exists.
  echo "=== ${preset}: exchange/join/columnar/distributed-sql/traffic focus ==="
  ctest --preset "${preset}" \
    -R "exchange|distributed_join|vacuum_exchange|column_store|column_scan|column_groupby|columnar_mpp|distributed_sql|distributed_groupby|exchange_limit|exchange_spill|exchange_pipeline|columnar_refresh|htap_freshness|traffic|admission_queue|group_commit|tpcc|secondary_index" \
    --output-on-failure
  echo "=== ${preset}: sql shell smoke (distributed) ==="
  scripts/sql_shell_smoke.sh "build-${preset}"
}

case "${want}" in
  asan) run_preset asan ;;
  tsan) run_preset tsan ;;
  all)
    run_preset asan
    run_preset tsan
    ;;
  *)
    echo "usage: $0 [asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "OK: ${want} checks passed"
