#!/usr/bin/env bash
# Sanitizer gate for the concurrent read path: builds the asan
# (Debug + ASan/UBSan) and tsan presets and runs the test suite under both.
# Usage: scripts/check.sh [asan|tsan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

want="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_preset() {
  local preset="$1"
  echo "=== ${preset}: configure + build + ctest ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
}

case "${want}" in
  asan) run_preset asan ;;
  tsan) run_preset tsan ;;
  all)
    run_preset asan
    run_preset tsan
    ;;
  *)
    echo "usage: $0 [asan|tsan|all]" >&2
    exit 2
    ;;
esac
echo "OK: ${want} checks passed"
