# Empty dependencies file for ofi_streaming.
# This may be replaced when dependencies are built.
