file(REMOVE_RECURSE
  "CMakeFiles/ofi_streaming.dir/streaming.cc.o"
  "CMakeFiles/ofi_streaming.dir/streaming.cc.o.d"
  "libofi_streaming.a"
  "libofi_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
