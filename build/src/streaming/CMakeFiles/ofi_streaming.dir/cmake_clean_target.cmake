file(REMOVE_RECURSE
  "libofi_streaming.a"
)
