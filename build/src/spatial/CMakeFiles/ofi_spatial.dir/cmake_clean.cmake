file(REMOVE_RECURSE
  "CMakeFiles/ofi_spatial.dir/spatial.cc.o"
  "CMakeFiles/ofi_spatial.dir/spatial.cc.o.d"
  "libofi_spatial.a"
  "libofi_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
