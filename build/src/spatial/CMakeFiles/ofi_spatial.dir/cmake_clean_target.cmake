file(REMOVE_RECURSE
  "libofi_spatial.a"
)
