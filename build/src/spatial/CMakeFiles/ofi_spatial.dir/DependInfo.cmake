
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/spatial.cc" "src/spatial/CMakeFiles/ofi_spatial.dir/spatial.cc.o" "gcc" "src/spatial/CMakeFiles/ofi_spatial.dir/spatial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ofi_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
