# Empty dependencies file for ofi_spatial.
# This may be replaced when dependencies are built.
