
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gmdb/cluster.cc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/cluster.cc.o" "gcc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/cluster.cc.o.d"
  "/root/repo/src/gmdb/schema_registry.cc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/schema_registry.cc.o" "gcc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/schema_registry.cc.o.d"
  "/root/repo/src/gmdb/store.cc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/store.cc.o" "gcc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/store.cc.o.d"
  "/root/repo/src/gmdb/tree_object.cc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/tree_object.cc.o" "gcc" "src/gmdb/CMakeFiles/ofi_gmdb.dir/tree_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ofi_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
