file(REMOVE_RECURSE
  "CMakeFiles/ofi_gmdb.dir/cluster.cc.o"
  "CMakeFiles/ofi_gmdb.dir/cluster.cc.o.d"
  "CMakeFiles/ofi_gmdb.dir/schema_registry.cc.o"
  "CMakeFiles/ofi_gmdb.dir/schema_registry.cc.o.d"
  "CMakeFiles/ofi_gmdb.dir/store.cc.o"
  "CMakeFiles/ofi_gmdb.dir/store.cc.o.d"
  "CMakeFiles/ofi_gmdb.dir/tree_object.cc.o"
  "CMakeFiles/ofi_gmdb.dir/tree_object.cc.o.d"
  "libofi_gmdb.a"
  "libofi_gmdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_gmdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
