# Empty dependencies file for ofi_gmdb.
# This may be replaced when dependencies are built.
