file(REMOVE_RECURSE
  "libofi_gmdb.a"
)
