file(REMOVE_RECURSE
  "libofi_edge.a"
)
