file(REMOVE_RECURSE
  "CMakeFiles/ofi_edge.dir/mbaas.cc.o"
  "CMakeFiles/ofi_edge.dir/mbaas.cc.o.d"
  "CMakeFiles/ofi_edge.dir/platform.cc.o"
  "CMakeFiles/ofi_edge.dir/platform.cc.o.d"
  "CMakeFiles/ofi_edge.dir/versioned_store.cc.o"
  "CMakeFiles/ofi_edge.dir/versioned_store.cc.o.d"
  "libofi_edge.a"
  "libofi_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
