# Empty dependencies file for ofi_edge.
# This may be replaced when dependencies are built.
