file(REMOVE_RECURSE
  "libofi_optimizer.a"
)
