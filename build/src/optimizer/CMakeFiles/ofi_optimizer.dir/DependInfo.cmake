
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cardinality.cc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/cardinality.cc.o" "gcc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/cardinality.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan_store.cc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/plan_store.cc.o" "gcc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/plan_store.cc.o.d"
  "/root/repo/src/optimizer/sql_session.cc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/sql_session.cc.o" "gcc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/sql_session.cc.o.d"
  "/root/repo/src/optimizer/stats.cc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/stats.cc.o" "gcc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/stats.cc.o.d"
  "/root/repo/src/optimizer/step_text.cc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/step_text.cc.o" "gcc" "src/optimizer/CMakeFiles/ofi_optimizer.dir/step_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ofi_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
