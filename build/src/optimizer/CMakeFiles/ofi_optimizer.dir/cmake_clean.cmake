file(REMOVE_RECURSE
  "CMakeFiles/ofi_optimizer.dir/cardinality.cc.o"
  "CMakeFiles/ofi_optimizer.dir/cardinality.cc.o.d"
  "CMakeFiles/ofi_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/ofi_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/ofi_optimizer.dir/plan_store.cc.o"
  "CMakeFiles/ofi_optimizer.dir/plan_store.cc.o.d"
  "CMakeFiles/ofi_optimizer.dir/sql_session.cc.o"
  "CMakeFiles/ofi_optimizer.dir/sql_session.cc.o.d"
  "CMakeFiles/ofi_optimizer.dir/stats.cc.o"
  "CMakeFiles/ofi_optimizer.dir/stats.cc.o.d"
  "CMakeFiles/ofi_optimizer.dir/step_text.cc.o"
  "CMakeFiles/ofi_optimizer.dir/step_text.cc.o.d"
  "libofi_optimizer.a"
  "libofi_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
