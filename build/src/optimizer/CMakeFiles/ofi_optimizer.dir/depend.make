# Empty dependencies file for ofi_optimizer.
# This may be replaced when dependencies are built.
