file(REMOVE_RECURSE
  "CMakeFiles/ofi_common.dir/logging.cc.o"
  "CMakeFiles/ofi_common.dir/logging.cc.o.d"
  "CMakeFiles/ofi_common.dir/md5.cc.o"
  "CMakeFiles/ofi_common.dir/md5.cc.o.d"
  "CMakeFiles/ofi_common.dir/status.cc.o"
  "CMakeFiles/ofi_common.dir/status.cc.o.d"
  "libofi_common.a"
  "libofi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
