# Empty dependencies file for ofi_common.
# This may be replaced when dependencies are built.
