file(REMOVE_RECURSE
  "libofi_common.a"
)
