file(REMOVE_RECURSE
  "libofi_graph.a"
)
