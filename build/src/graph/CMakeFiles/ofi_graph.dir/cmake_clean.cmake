file(REMOVE_RECURSE
  "CMakeFiles/ofi_graph.dir/property_graph.cc.o"
  "CMakeFiles/ofi_graph.dir/property_graph.cc.o.d"
  "CMakeFiles/ofi_graph.dir/traversal.cc.o"
  "CMakeFiles/ofi_graph.dir/traversal.cc.o.d"
  "libofi_graph.a"
  "libofi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
