# Empty dependencies file for ofi_graph.
# This may be replaced when dependencies are built.
