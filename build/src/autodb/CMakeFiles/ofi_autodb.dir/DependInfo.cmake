
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodb/access_guard.cc" "src/autodb/CMakeFiles/ofi_autodb.dir/access_guard.cc.o" "gcc" "src/autodb/CMakeFiles/ofi_autodb.dir/access_guard.cc.o.d"
  "/root/repo/src/autodb/anomaly_manager.cc" "src/autodb/CMakeFiles/ofi_autodb.dir/anomaly_manager.cc.o" "gcc" "src/autodb/CMakeFiles/ofi_autodb.dir/anomaly_manager.cc.o.d"
  "/root/repo/src/autodb/change_manager.cc" "src/autodb/CMakeFiles/ofi_autodb.dir/change_manager.cc.o" "gcc" "src/autodb/CMakeFiles/ofi_autodb.dir/change_manager.cc.o.d"
  "/root/repo/src/autodb/info_store.cc" "src/autodb/CMakeFiles/ofi_autodb.dir/info_store.cc.o" "gcc" "src/autodb/CMakeFiles/ofi_autodb.dir/info_store.cc.o.d"
  "/root/repo/src/autodb/ml.cc" "src/autodb/CMakeFiles/ofi_autodb.dir/ml.cc.o" "gcc" "src/autodb/CMakeFiles/ofi_autodb.dir/ml.cc.o.d"
  "/root/repo/src/autodb/workload_manager.cc" "src/autodb/CMakeFiles/ofi_autodb.dir/workload_manager.cc.o" "gcc" "src/autodb/CMakeFiles/ofi_autodb.dir/workload_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/ofi_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ofi_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
