# Empty compiler generated dependencies file for ofi_autodb.
# This may be replaced when dependencies are built.
