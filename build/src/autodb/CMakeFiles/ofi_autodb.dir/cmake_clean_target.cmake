file(REMOVE_RECURSE
  "libofi_autodb.a"
)
