file(REMOVE_RECURSE
  "CMakeFiles/ofi_autodb.dir/access_guard.cc.o"
  "CMakeFiles/ofi_autodb.dir/access_guard.cc.o.d"
  "CMakeFiles/ofi_autodb.dir/anomaly_manager.cc.o"
  "CMakeFiles/ofi_autodb.dir/anomaly_manager.cc.o.d"
  "CMakeFiles/ofi_autodb.dir/change_manager.cc.o"
  "CMakeFiles/ofi_autodb.dir/change_manager.cc.o.d"
  "CMakeFiles/ofi_autodb.dir/info_store.cc.o"
  "CMakeFiles/ofi_autodb.dir/info_store.cc.o.d"
  "CMakeFiles/ofi_autodb.dir/ml.cc.o"
  "CMakeFiles/ofi_autodb.dir/ml.cc.o.d"
  "CMakeFiles/ofi_autodb.dir/workload_manager.cc.o"
  "CMakeFiles/ofi_autodb.dir/workload_manager.cc.o.d"
  "libofi_autodb.a"
  "libofi_autodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_autodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
