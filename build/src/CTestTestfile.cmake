# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sql")
subdirs("txn")
subdirs("storage")
subdirs("cluster")
subdirs("optimizer")
subdirs("graph")
subdirs("timeseries")
subdirs("spatial")
subdirs("streaming")
subdirs("vision")
subdirs("multimodel")
subdirs("gmdb")
subdirs("autodb")
subdirs("edge")
