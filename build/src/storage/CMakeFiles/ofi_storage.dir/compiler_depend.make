# Empty compiler generated dependencies file for ofi_storage.
# This may be replaced when dependencies are built.
