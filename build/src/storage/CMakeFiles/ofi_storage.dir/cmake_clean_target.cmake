file(REMOVE_RECURSE
  "libofi_storage.a"
)
