file(REMOVE_RECURSE
  "CMakeFiles/ofi_storage.dir/column_store.cc.o"
  "CMakeFiles/ofi_storage.dir/column_store.cc.o.d"
  "CMakeFiles/ofi_storage.dir/mvcc_table.cc.o"
  "CMakeFiles/ofi_storage.dir/mvcc_table.cc.o.d"
  "libofi_storage.a"
  "libofi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
