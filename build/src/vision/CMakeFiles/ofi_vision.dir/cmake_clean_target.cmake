file(REMOVE_RECURSE
  "libofi_vision.a"
)
