file(REMOVE_RECURSE
  "CMakeFiles/ofi_vision.dir/vision.cc.o"
  "CMakeFiles/ofi_vision.dir/vision.cc.o.d"
  "libofi_vision.a"
  "libofi_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
