# Empty compiler generated dependencies file for ofi_vision.
# This may be replaced when dependencies are built.
