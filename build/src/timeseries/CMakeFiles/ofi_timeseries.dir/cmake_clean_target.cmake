file(REMOVE_RECURSE
  "libofi_timeseries.a"
)
