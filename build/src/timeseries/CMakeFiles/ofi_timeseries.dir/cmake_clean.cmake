file(REMOVE_RECURSE
  "CMakeFiles/ofi_timeseries.dir/timeseries.cc.o"
  "CMakeFiles/ofi_timeseries.dir/timeseries.cc.o.d"
  "libofi_timeseries.a"
  "libofi_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
