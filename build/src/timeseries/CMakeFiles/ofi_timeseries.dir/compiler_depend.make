# Empty compiler generated dependencies file for ofi_timeseries.
# This may be replaced when dependencies are built.
