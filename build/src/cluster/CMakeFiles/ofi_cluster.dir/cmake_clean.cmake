file(REMOVE_RECURSE
  "CMakeFiles/ofi_cluster.dir/cluster.cc.o"
  "CMakeFiles/ofi_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/ofi_cluster.dir/data_node.cc.o"
  "CMakeFiles/ofi_cluster.dir/data_node.cc.o.d"
  "CMakeFiles/ofi_cluster.dir/mpp_query.cc.o"
  "CMakeFiles/ofi_cluster.dir/mpp_query.cc.o.d"
  "CMakeFiles/ofi_cluster.dir/replication.cc.o"
  "CMakeFiles/ofi_cluster.dir/replication.cc.o.d"
  "CMakeFiles/ofi_cluster.dir/tpcc_workload.cc.o"
  "CMakeFiles/ofi_cluster.dir/tpcc_workload.cc.o.d"
  "libofi_cluster.a"
  "libofi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
