file(REMOVE_RECURSE
  "libofi_cluster.a"
)
