# Empty dependencies file for ofi_cluster.
# This may be replaced when dependencies are built.
