
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/ofi_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/ofi_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/data_node.cc" "src/cluster/CMakeFiles/ofi_cluster.dir/data_node.cc.o" "gcc" "src/cluster/CMakeFiles/ofi_cluster.dir/data_node.cc.o.d"
  "/root/repo/src/cluster/mpp_query.cc" "src/cluster/CMakeFiles/ofi_cluster.dir/mpp_query.cc.o" "gcc" "src/cluster/CMakeFiles/ofi_cluster.dir/mpp_query.cc.o.d"
  "/root/repo/src/cluster/replication.cc" "src/cluster/CMakeFiles/ofi_cluster.dir/replication.cc.o" "gcc" "src/cluster/CMakeFiles/ofi_cluster.dir/replication.cc.o.d"
  "/root/repo/src/cluster/tpcc_workload.cc" "src/cluster/CMakeFiles/ofi_cluster.dir/tpcc_workload.cc.o" "gcc" "src/cluster/CMakeFiles/ofi_cluster.dir/tpcc_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ofi_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/ofi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ofi_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
