file(REMOVE_RECURSE
  "libofi_multimodel.a"
)
