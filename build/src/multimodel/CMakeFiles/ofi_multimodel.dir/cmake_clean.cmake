file(REMOVE_RECURSE
  "CMakeFiles/ofi_multimodel.dir/multimodel.cc.o"
  "CMakeFiles/ofi_multimodel.dir/multimodel.cc.o.d"
  "libofi_multimodel.a"
  "libofi_multimodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_multimodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
