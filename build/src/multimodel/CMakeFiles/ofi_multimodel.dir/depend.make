# Empty dependencies file for ofi_multimodel.
# This may be replaced when dependencies are built.
