file(REMOVE_RECURSE
  "libofi_sql.a"
)
