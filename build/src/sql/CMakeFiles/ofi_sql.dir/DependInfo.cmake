
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/ofi_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/expr.cc" "src/sql/CMakeFiles/ofi_sql.dir/expr.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/expr.cc.o.d"
  "/root/repo/src/sql/external_table.cc" "src/sql/CMakeFiles/ofi_sql.dir/external_table.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/external_table.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/ofi_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/ofi_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/plan.cc" "src/sql/CMakeFiles/ofi_sql.dir/plan.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/plan.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/sql/CMakeFiles/ofi_sql.dir/planner.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/planner.cc.o.d"
  "/root/repo/src/sql/schema.cc" "src/sql/CMakeFiles/ofi_sql.dir/schema.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/schema.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/sql/CMakeFiles/ofi_sql.dir/table.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/table.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/sql/CMakeFiles/ofi_sql.dir/value.cc.o" "gcc" "src/sql/CMakeFiles/ofi_sql.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
