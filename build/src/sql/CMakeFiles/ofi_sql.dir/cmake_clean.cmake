file(REMOVE_RECURSE
  "CMakeFiles/ofi_sql.dir/executor.cc.o"
  "CMakeFiles/ofi_sql.dir/executor.cc.o.d"
  "CMakeFiles/ofi_sql.dir/expr.cc.o"
  "CMakeFiles/ofi_sql.dir/expr.cc.o.d"
  "CMakeFiles/ofi_sql.dir/external_table.cc.o"
  "CMakeFiles/ofi_sql.dir/external_table.cc.o.d"
  "CMakeFiles/ofi_sql.dir/lexer.cc.o"
  "CMakeFiles/ofi_sql.dir/lexer.cc.o.d"
  "CMakeFiles/ofi_sql.dir/parser.cc.o"
  "CMakeFiles/ofi_sql.dir/parser.cc.o.d"
  "CMakeFiles/ofi_sql.dir/plan.cc.o"
  "CMakeFiles/ofi_sql.dir/plan.cc.o.d"
  "CMakeFiles/ofi_sql.dir/planner.cc.o"
  "CMakeFiles/ofi_sql.dir/planner.cc.o.d"
  "CMakeFiles/ofi_sql.dir/schema.cc.o"
  "CMakeFiles/ofi_sql.dir/schema.cc.o.d"
  "CMakeFiles/ofi_sql.dir/table.cc.o"
  "CMakeFiles/ofi_sql.dir/table.cc.o.d"
  "CMakeFiles/ofi_sql.dir/value.cc.o"
  "CMakeFiles/ofi_sql.dir/value.cc.o.d"
  "libofi_sql.a"
  "libofi_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
