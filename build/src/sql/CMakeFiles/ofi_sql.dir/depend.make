# Empty dependencies file for ofi_sql.
# This may be replaced when dependencies are built.
