
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/commit_log.cc" "src/txn/CMakeFiles/ofi_txn.dir/commit_log.cc.o" "gcc" "src/txn/CMakeFiles/ofi_txn.dir/commit_log.cc.o.d"
  "/root/repo/src/txn/gtm.cc" "src/txn/CMakeFiles/ofi_txn.dir/gtm.cc.o" "gcc" "src/txn/CMakeFiles/ofi_txn.dir/gtm.cc.o.d"
  "/root/repo/src/txn/local_txn_manager.cc" "src/txn/CMakeFiles/ofi_txn.dir/local_txn_manager.cc.o" "gcc" "src/txn/CMakeFiles/ofi_txn.dir/local_txn_manager.cc.o.d"
  "/root/repo/src/txn/merge_snapshot.cc" "src/txn/CMakeFiles/ofi_txn.dir/merge_snapshot.cc.o" "gcc" "src/txn/CMakeFiles/ofi_txn.dir/merge_snapshot.cc.o.d"
  "/root/repo/src/txn/snapshot.cc" "src/txn/CMakeFiles/ofi_txn.dir/snapshot.cc.o" "gcc" "src/txn/CMakeFiles/ofi_txn.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
