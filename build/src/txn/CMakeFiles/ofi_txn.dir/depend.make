# Empty dependencies file for ofi_txn.
# This may be replaced when dependencies are built.
