file(REMOVE_RECURSE
  "CMakeFiles/ofi_txn.dir/commit_log.cc.o"
  "CMakeFiles/ofi_txn.dir/commit_log.cc.o.d"
  "CMakeFiles/ofi_txn.dir/gtm.cc.o"
  "CMakeFiles/ofi_txn.dir/gtm.cc.o.d"
  "CMakeFiles/ofi_txn.dir/local_txn_manager.cc.o"
  "CMakeFiles/ofi_txn.dir/local_txn_manager.cc.o.d"
  "CMakeFiles/ofi_txn.dir/merge_snapshot.cc.o"
  "CMakeFiles/ofi_txn.dir/merge_snapshot.cc.o.d"
  "CMakeFiles/ofi_txn.dir/snapshot.cc.o"
  "CMakeFiles/ofi_txn.dir/snapshot.cc.o.d"
  "libofi_txn.a"
  "libofi_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofi_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
