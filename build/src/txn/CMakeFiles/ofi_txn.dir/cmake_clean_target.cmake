file(REMOVE_RECURSE
  "libofi_txn.a"
)
