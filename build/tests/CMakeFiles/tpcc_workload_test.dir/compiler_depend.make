# Empty compiler generated dependencies file for tpcc_workload_test.
# This may be replaced when dependencies are built.
