file(REMOVE_RECURSE
  "CMakeFiles/tpcc_workload_test.dir/cluster/tpcc_workload_test.cc.o"
  "CMakeFiles/tpcc_workload_test.dir/cluster/tpcc_workload_test.cc.o.d"
  "tpcc_workload_test"
  "tpcc_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
