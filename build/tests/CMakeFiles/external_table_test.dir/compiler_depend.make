# Empty compiler generated dependencies file for external_table_test.
# This may be replaced when dependencies are built.
