file(REMOVE_RECURSE
  "CMakeFiles/external_table_test.dir/sql/external_table_test.cc.o"
  "CMakeFiles/external_table_test.dir/sql/external_table_test.cc.o.d"
  "external_table_test"
  "external_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
