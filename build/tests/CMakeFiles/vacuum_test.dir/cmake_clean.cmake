file(REMOVE_RECURSE
  "CMakeFiles/vacuum_test.dir/cluster/vacuum_test.cc.o"
  "CMakeFiles/vacuum_test.dir/cluster/vacuum_test.cc.o.d"
  "vacuum_test"
  "vacuum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vacuum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
