# Empty compiler generated dependencies file for vacuum_test.
# This may be replaced when dependencies are built.
