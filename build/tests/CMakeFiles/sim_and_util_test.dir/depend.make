# Empty dependencies file for sim_and_util_test.
# This may be replaced when dependencies are built.
