file(REMOVE_RECURSE
  "CMakeFiles/sim_and_util_test.dir/common/sim_and_util_test.cc.o"
  "CMakeFiles/sim_and_util_test.dir/common/sim_and_util_test.cc.o.d"
  "sim_and_util_test"
  "sim_and_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_and_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
