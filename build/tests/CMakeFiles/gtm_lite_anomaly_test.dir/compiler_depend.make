# Empty compiler generated dependencies file for gtm_lite_anomaly_test.
# This may be replaced when dependencies are built.
