file(REMOVE_RECURSE
  "CMakeFiles/gtm_lite_anomaly_test.dir/txn/gtm_lite_anomaly_test.cc.o"
  "CMakeFiles/gtm_lite_anomaly_test.dir/txn/gtm_lite_anomaly_test.cc.o.d"
  "gtm_lite_anomaly_test"
  "gtm_lite_anomaly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtm_lite_anomaly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
