# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gtm_lite_anomaly_test.
