file(REMOVE_RECURSE
  "CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o"
  "CMakeFiles/optimizer_test.dir/optimizer/optimizer_test.cc.o.d"
  "optimizer_test"
  "optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
