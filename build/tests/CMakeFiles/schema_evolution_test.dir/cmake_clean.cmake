file(REMOVE_RECURSE
  "CMakeFiles/schema_evolution_test.dir/gmdb/schema_evolution_test.cc.o"
  "CMakeFiles/schema_evolution_test.dir/gmdb/schema_evolution_test.cc.o.d"
  "schema_evolution_test"
  "schema_evolution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_evolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
