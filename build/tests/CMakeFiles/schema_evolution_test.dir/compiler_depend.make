# Empty compiler generated dependencies file for schema_evolution_test.
# This may be replaced when dependencies are built.
