file(REMOVE_RECURSE
  "CMakeFiles/sql_session_test.dir/optimizer/sql_session_test.cc.o"
  "CMakeFiles/sql_session_test.dir/optimizer/sql_session_test.cc.o.d"
  "sql_session_test"
  "sql_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
