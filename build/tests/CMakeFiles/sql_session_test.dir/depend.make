# Empty dependencies file for sql_session_test.
# This may be replaced when dependencies are built.
