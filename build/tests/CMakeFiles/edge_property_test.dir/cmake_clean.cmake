file(REMOVE_RECURSE
  "CMakeFiles/edge_property_test.dir/edge/edge_property_test.cc.o"
  "CMakeFiles/edge_property_test.dir/edge/edge_property_test.cc.o.d"
  "edge_property_test"
  "edge_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
