# Empty compiler generated dependencies file for edge_property_test.
# This may be replaced when dependencies are built.
