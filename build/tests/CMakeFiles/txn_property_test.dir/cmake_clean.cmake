file(REMOVE_RECURSE
  "CMakeFiles/txn_property_test.dir/txn/txn_property_test.cc.o"
  "CMakeFiles/txn_property_test.dir/txn/txn_property_test.cc.o.d"
  "txn_property_test"
  "txn_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
