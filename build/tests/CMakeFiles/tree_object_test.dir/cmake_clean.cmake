file(REMOVE_RECURSE
  "CMakeFiles/tree_object_test.dir/gmdb/tree_object_test.cc.o"
  "CMakeFiles/tree_object_test.dir/gmdb/tree_object_test.cc.o.d"
  "tree_object_test"
  "tree_object_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
