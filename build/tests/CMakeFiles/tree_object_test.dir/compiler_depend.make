# Empty compiler generated dependencies file for tree_object_test.
# This may be replaced when dependencies are built.
