file(REMOVE_RECURSE
  "CMakeFiles/objects_as_table_test.dir/gmdb/objects_as_table_test.cc.o"
  "CMakeFiles/objects_as_table_test.dir/gmdb/objects_as_table_test.cc.o.d"
  "objects_as_table_test"
  "objects_as_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objects_as_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
