# Empty compiler generated dependencies file for objects_as_table_test.
# This may be replaced when dependencies are built.
