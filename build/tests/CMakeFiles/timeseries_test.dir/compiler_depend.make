# Empty compiler generated dependencies file for timeseries_test.
# This may be replaced when dependencies are built.
