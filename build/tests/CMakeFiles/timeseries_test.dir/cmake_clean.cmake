file(REMOVE_RECURSE
  "CMakeFiles/timeseries_test.dir/timeseries/timeseries_test.cc.o"
  "CMakeFiles/timeseries_test.dir/timeseries/timeseries_test.cc.o.d"
  "timeseries_test"
  "timeseries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
