file(REMOVE_RECURSE
  "CMakeFiles/column_store_test.dir/storage/column_store_test.cc.o"
  "CMakeFiles/column_store_test.dir/storage/column_store_test.cc.o.d"
  "column_store_test"
  "column_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
