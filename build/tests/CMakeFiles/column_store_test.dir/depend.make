# Empty dependencies file for column_store_test.
# This may be replaced when dependencies are built.
