file(REMOVE_RECURSE
  "CMakeFiles/edge_sync_test.dir/edge/edge_sync_test.cc.o"
  "CMakeFiles/edge_sync_test.dir/edge/edge_sync_test.cc.o.d"
  "edge_sync_test"
  "edge_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
