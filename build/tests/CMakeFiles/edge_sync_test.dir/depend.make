# Empty dependencies file for edge_sync_test.
# This may be replaced when dependencies are built.
