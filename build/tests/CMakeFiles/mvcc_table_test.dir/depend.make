# Empty dependencies file for mvcc_table_test.
# This may be replaced when dependencies are built.
