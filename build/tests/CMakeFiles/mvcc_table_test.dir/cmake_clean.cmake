file(REMOVE_RECURSE
  "CMakeFiles/mvcc_table_test.dir/storage/mvcc_table_test.cc.o"
  "CMakeFiles/mvcc_table_test.dir/storage/mvcc_table_test.cc.o.d"
  "mvcc_table_test"
  "mvcc_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvcc_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
