# Empty compiler generated dependencies file for mbaas_test.
# This may be replaced when dependencies are built.
