file(REMOVE_RECURSE
  "CMakeFiles/mbaas_test.dir/edge/mbaas_test.cc.o"
  "CMakeFiles/mbaas_test.dir/edge/mbaas_test.cc.o.d"
  "mbaas_test"
  "mbaas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbaas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
