file(REMOVE_RECURSE
  "CMakeFiles/plan_store_test.dir/optimizer/plan_store_test.cc.o"
  "CMakeFiles/plan_store_test.dir/optimizer/plan_store_test.cc.o.d"
  "plan_store_test"
  "plan_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
