# Empty dependencies file for autodb_test.
# This may be replaced when dependencies are built.
