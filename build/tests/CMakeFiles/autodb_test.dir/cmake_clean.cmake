file(REMOVE_RECURSE
  "CMakeFiles/autodb_test.dir/autodb/autodb_test.cc.o"
  "CMakeFiles/autodb_test.dir/autodb/autodb_test.cc.o.d"
  "autodb_test"
  "autodb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
