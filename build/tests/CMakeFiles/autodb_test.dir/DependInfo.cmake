
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autodb/autodb_test.cc" "tests/CMakeFiles/autodb_test.dir/autodb/autodb_test.cc.o" "gcc" "tests/CMakeFiles/autodb_test.dir/autodb/autodb_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ofi_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ofi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/ofi_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/ofi_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/multimodel/CMakeFiles/ofi_multimodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ofi_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/ofi_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/ofi_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/ofi_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/gmdb/CMakeFiles/ofi_gmdb.dir/DependInfo.cmake"
  "/root/repo/build/src/autodb/CMakeFiles/ofi_autodb.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/ofi_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/ofi_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/ofi_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ofi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
