# Empty compiler generated dependencies file for store_test.
# This may be replaced when dependencies are built.
