# Empty dependencies file for multimodel_test.
# This may be replaced when dependencies are built.
