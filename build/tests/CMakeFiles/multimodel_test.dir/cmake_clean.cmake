file(REMOVE_RECURSE
  "CMakeFiles/multimodel_test.dir/multimodel/multimodel_test.cc.o"
  "CMakeFiles/multimodel_test.dir/multimodel/multimodel_test.cc.o.d"
  "multimodel_test"
  "multimodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
