file(REMOVE_RECURSE
  "CMakeFiles/mpp_query_test.dir/cluster/mpp_query_test.cc.o"
  "CMakeFiles/mpp_query_test.dir/cluster/mpp_query_test.cc.o.d"
  "mpp_query_test"
  "mpp_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpp_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
