# Empty dependencies file for mpp_query_test.
# This may be replaced when dependencies are built.
