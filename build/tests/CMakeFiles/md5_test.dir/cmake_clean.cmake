file(REMOVE_RECURSE
  "CMakeFiles/md5_test.dir/common/md5_test.cc.o"
  "CMakeFiles/md5_test.dir/common/md5_test.cc.o.d"
  "md5_test"
  "md5_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
