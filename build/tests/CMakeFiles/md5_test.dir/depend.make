# Empty dependencies file for md5_test.
# This may be replaced when dependencies are built.
