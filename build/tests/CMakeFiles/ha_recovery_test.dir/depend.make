# Empty dependencies file for ha_recovery_test.
# This may be replaced when dependencies are built.
