file(REMOVE_RECURSE
  "CMakeFiles/ha_recovery_test.dir/cluster/ha_recovery_test.cc.o"
  "CMakeFiles/ha_recovery_test.dir/cluster/ha_recovery_test.cc.o.d"
  "ha_recovery_test"
  "ha_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
