# Empty compiler generated dependencies file for merge_snapshot_test.
# This may be replaced when dependencies are built.
