file(REMOVE_RECURSE
  "CMakeFiles/merge_snapshot_test.dir/txn/merge_snapshot_test.cc.o"
  "CMakeFiles/merge_snapshot_test.dir/txn/merge_snapshot_test.cc.o.d"
  "merge_snapshot_test"
  "merge_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
