# Empty compiler generated dependencies file for example_gmdb_session_store.
# This may be replaced when dependencies are built.
