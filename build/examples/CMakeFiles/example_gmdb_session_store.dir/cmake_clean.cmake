file(REMOVE_RECURSE
  "CMakeFiles/example_gmdb_session_store.dir/gmdb_session_store.cpp.o"
  "CMakeFiles/example_gmdb_session_store.dir/gmdb_session_store.cpp.o.d"
  "example_gmdb_session_store"
  "example_gmdb_session_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gmdb_session_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
