file(REMOVE_RECURSE
  "CMakeFiles/example_edge_sync_demo.dir/edge_sync_demo.cpp.o"
  "CMakeFiles/example_edge_sync_demo.dir/edge_sync_demo.cpp.o.d"
  "example_edge_sync_demo"
  "example_edge_sync_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_edge_sync_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
