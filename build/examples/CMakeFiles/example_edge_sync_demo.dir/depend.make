# Empty dependencies file for example_edge_sync_demo.
# This may be replaced when dependencies are built.
