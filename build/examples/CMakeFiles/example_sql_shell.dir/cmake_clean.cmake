file(REMOVE_RECURSE
  "CMakeFiles/example_sql_shell.dir/sql_shell.cpp.o"
  "CMakeFiles/example_sql_shell.dir/sql_shell.cpp.o.d"
  "example_sql_shell"
  "example_sql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
