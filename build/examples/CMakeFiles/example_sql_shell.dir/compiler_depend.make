# Empty compiler generated dependencies file for example_sql_shell.
# This may be replaced when dependencies are built.
