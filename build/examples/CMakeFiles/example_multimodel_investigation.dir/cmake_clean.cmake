file(REMOVE_RECURSE
  "CMakeFiles/example_multimodel_investigation.dir/multimodel_investigation.cpp.o"
  "CMakeFiles/example_multimodel_investigation.dir/multimodel_investigation.cpp.o.d"
  "example_multimodel_investigation"
  "example_multimodel_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multimodel_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
