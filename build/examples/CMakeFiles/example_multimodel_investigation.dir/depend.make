# Empty dependencies file for example_multimodel_investigation.
# This may be replaced when dependencies are built.
