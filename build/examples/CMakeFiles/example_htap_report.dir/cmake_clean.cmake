file(REMOVE_RECURSE
  "CMakeFiles/example_htap_report.dir/htap_report.cpp.o"
  "CMakeFiles/example_htap_report.dir/htap_report.cpp.o.d"
  "example_htap_report"
  "example_htap_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_htap_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
