# Empty dependencies file for example_htap_report.
# This may be replaced when dependencies are built.
