# Empty compiler generated dependencies file for example_learned_optimizer_demo.
# This may be replaced when dependencies are built.
