# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_learned_optimizer_demo.
