file(REMOVE_RECURSE
  "CMakeFiles/example_learned_optimizer_demo.dir/learned_optimizer_demo.cpp.o"
  "CMakeFiles/example_learned_optimizer_demo.dir/learned_optimizer_demo.cpp.o.d"
  "example_learned_optimizer_demo"
  "example_learned_optimizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_learned_optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
