# Empty compiler generated dependencies file for example_autonomous_db_demo.
# This may be replaced when dependencies are built.
