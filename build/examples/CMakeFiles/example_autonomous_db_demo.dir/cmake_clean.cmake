file(REMOVE_RECURSE
  "CMakeFiles/example_autonomous_db_demo.dir/autonomous_db_demo.cpp.o"
  "CMakeFiles/example_autonomous_db_demo.dir/autonomous_db_demo.cpp.o.d"
  "example_autonomous_db_demo"
  "example_autonomous_db_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autonomous_db_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
