# Empty dependencies file for example_autonomous_vehicle.
# This may be replaced when dependencies are built.
