file(REMOVE_RECURSE
  "CMakeFiles/example_autonomous_vehicle.dir/autonomous_vehicle.cpp.o"
  "CMakeFiles/example_autonomous_vehicle.dir/autonomous_vehicle.cpp.o.d"
  "example_autonomous_vehicle"
  "example_autonomous_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autonomous_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
