# Empty dependencies file for bench_plan_store.
# This may be replaced when dependencies are built.
