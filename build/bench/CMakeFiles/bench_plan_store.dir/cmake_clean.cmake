file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_store.dir/bench_plan_store.cc.o"
  "CMakeFiles/bench_plan_store.dir/bench_plan_store.cc.o.d"
  "bench_plan_store"
  "bench_plan_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
