# Empty dependencies file for bench_gmdb_kv.
# This may be replaced when dependencies are built.
