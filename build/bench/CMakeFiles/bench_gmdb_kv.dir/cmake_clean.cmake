file(REMOVE_RECURSE
  "CMakeFiles/bench_gmdb_kv.dir/bench_gmdb_kv.cc.o"
  "CMakeFiles/bench_gmdb_kv.dir/bench_gmdb_kv.cc.o.d"
  "bench_gmdb_kv"
  "bench_gmdb_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmdb_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
