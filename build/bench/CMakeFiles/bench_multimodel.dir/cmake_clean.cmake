file(REMOVE_RECURSE
  "CMakeFiles/bench_multimodel.dir/bench_multimodel.cc.o"
  "CMakeFiles/bench_multimodel.dir/bench_multimodel.cc.o.d"
  "bench_multimodel"
  "bench_multimodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multimodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
