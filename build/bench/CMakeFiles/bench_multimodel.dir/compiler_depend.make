# Empty compiler generated dependencies file for bench_multimodel.
# This may be replaced when dependencies are built.
