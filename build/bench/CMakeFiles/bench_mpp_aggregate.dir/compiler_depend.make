# Empty compiler generated dependencies file for bench_mpp_aggregate.
# This may be replaced when dependencies are built.
