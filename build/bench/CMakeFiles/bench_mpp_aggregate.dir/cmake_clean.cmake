file(REMOVE_RECURSE
  "CMakeFiles/bench_mpp_aggregate.dir/bench_mpp_aggregate.cc.o"
  "CMakeFiles/bench_mpp_aggregate.dir/bench_mpp_aggregate.cc.o.d"
  "bench_mpp_aggregate"
  "bench_mpp_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpp_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
