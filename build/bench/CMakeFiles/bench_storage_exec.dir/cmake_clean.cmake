file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_exec.dir/bench_storage_exec.cc.o"
  "CMakeFiles/bench_storage_exec.dir/bench_storage_exec.cc.o.d"
  "bench_storage_exec"
  "bench_storage_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
