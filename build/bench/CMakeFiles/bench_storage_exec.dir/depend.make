# Empty dependencies file for bench_storage_exec.
# This may be replaced when dependencies are built.
