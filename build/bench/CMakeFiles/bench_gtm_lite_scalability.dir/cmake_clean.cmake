file(REMOVE_RECURSE
  "CMakeFiles/bench_gtm_lite_scalability.dir/bench_gtm_lite_scalability.cc.o"
  "CMakeFiles/bench_gtm_lite_scalability.dir/bench_gtm_lite_scalability.cc.o.d"
  "bench_gtm_lite_scalability"
  "bench_gtm_lite_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gtm_lite_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
