# Empty dependencies file for bench_gtm_lite_scalability.
# This may be replaced when dependencies are built.
