file(REMOVE_RECURSE
  "CMakeFiles/bench_gmdb_schema.dir/bench_gmdb_schema.cc.o"
  "CMakeFiles/bench_gmdb_schema.dir/bench_gmdb_schema.cc.o.d"
  "bench_gmdb_schema"
  "bench_gmdb_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmdb_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
