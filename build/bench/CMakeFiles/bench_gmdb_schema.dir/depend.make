# Empty dependencies file for bench_gmdb_schema.
# This may be replaced when dependencies are built.
