# Empty dependencies file for bench_autodb.
# This may be replaced when dependencies are built.
