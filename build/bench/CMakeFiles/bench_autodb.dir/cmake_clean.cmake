file(REMOVE_RECURSE
  "CMakeFiles/bench_autodb.dir/bench_autodb.cc.o"
  "CMakeFiles/bench_autodb.dir/bench_autodb.cc.o.d"
  "bench_autodb"
  "bench_autodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
