# Empty compiler generated dependencies file for bench_sql_olap.
# This may be replaced when dependencies are built.
