file(REMOVE_RECURSE
  "CMakeFiles/bench_sql_olap.dir/bench_sql_olap.cc.o"
  "CMakeFiles/bench_sql_olap.dir/bench_sql_olap.cc.o.d"
  "bench_sql_olap"
  "bench_sql_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sql_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
