# Empty dependencies file for bench_snapshot_merge.
# This may be replaced when dependencies are built.
