file(REMOVE_RECURSE
  "CMakeFiles/bench_snapshot_merge.dir/bench_snapshot_merge.cc.o"
  "CMakeFiles/bench_snapshot_merge.dir/bench_snapshot_merge.cc.o.d"
  "bench_snapshot_merge"
  "bench_snapshot_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snapshot_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
