file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_sync.dir/bench_edge_sync.cc.o"
  "CMakeFiles/bench_edge_sync.dir/bench_edge_sync.cc.o.d"
  "bench_edge_sync"
  "bench_edge_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
