# Empty dependencies file for bench_edge_sync.
# This may be replaced when dependencies are built.
