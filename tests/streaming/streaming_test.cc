#include "streaming/streaming.h"

#include <gtest/gtest.h>

namespace ofi::streaming {
namespace {

using sql::AggFunc;
using sql::Column;
using sql::Expr;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema SpeedSchema() {
  return Schema({Column{"time", TypeId::kTimestamp, ""},
                 Column{"junction", TypeId::kInt64, ""},
                 Column{"speed", TypeId::kDouble, ""}});
}

class StreamingTest : public ::testing::Test {
 protected:
  StreamingTest() : engine_(SpeedSchema()) {}

  StreamEngine engine_;
  std::vector<WindowResult> emitted_;

  EmitCallback Collect() {
    return [this](const WindowResult& r) { emitted_.push_back(r); };
  }
};

TEST_F(StreamingTest, TumblingWindowCountEmitsOnWatermark) {
  ContinuousQuerySpec spec;
  spec.name = "per_100";
  spec.window_us = 100;
  ASSERT_TRUE(engine_.Register(spec, Collect()).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine_.Ingest(i * 20, {Value(1), Value(50.0)}).ok());
  }
  // Events at 0..180: window [0,100) closed when t=100 arrived.
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(emitted_[0].window_start, 0);
  EXPECT_EQ(emitted_[0].count, 5u);
  engine_.Flush();
  ASSERT_EQ(emitted_.size(), 2u);
  EXPECT_EQ(emitted_[1].window_start, 100);
}

TEST_F(StreamingTest, KeyedAggregation) {
  ContinuousQuerySpec spec;
  spec.name = "avg_speed_by_junction";
  spec.key_column = "junction";
  spec.agg = AggFunc::kAvg;
  spec.agg_column = "speed";
  spec.window_us = 1000;
  ASSERT_TRUE(engine_.Register(spec, Collect()).ok());

  ASSERT_TRUE(engine_.Ingest(10, {Value(1), Value(40.0)}).ok());
  ASSERT_TRUE(engine_.Ingest(20, {Value(1), Value(60.0)}).ok());
  ASSERT_TRUE(engine_.Ingest(30, {Value(2), Value(100.0)}).ok());
  engine_.Flush();
  ASSERT_EQ(emitted_.size(), 2u);
  // Keys 1 and 2; key 1 averages 50.
  for (const auto& r : emitted_) {
    if (r.key.AsInt() == 1) EXPECT_DOUBLE_EQ(r.value, 50.0);
    if (r.key.AsInt() == 2) EXPECT_DOUBLE_EQ(r.value, 100.0);
  }
}

TEST_F(StreamingTest, FilterAppliesBeforeAggregation) {
  ContinuousQuerySpec spec;
  spec.name = "speeders";
  spec.filter = Expr::Gt("speed", Value(80.0));
  spec.window_us = 1000;
  ASSERT_TRUE(engine_.Register(spec, Collect()).ok());
  ASSERT_TRUE(engine_.Ingest(1, {Value(1), Value(70.0)}).ok());
  ASSERT_TRUE(engine_.Ingest(2, {Value(1), Value(90.0)}).ok());
  ASSERT_TRUE(engine_.Ingest(3, {Value(1), Value(120.0)}).ok());
  engine_.Flush();
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(emitted_[0].count, 2u);
}

TEST_F(StreamingTest, LateEventsDroppedAndCounted) {
  ContinuousQuerySpec spec;
  spec.name = "strict";
  spec.window_us = 100;
  spec.allowed_lateness_us = 0;
  ASSERT_TRUE(engine_.Register(spec, Collect()).ok());
  ASSERT_TRUE(engine_.Ingest(50, {Value(1), Value(1.0)}).ok());
  ASSERT_TRUE(engine_.Ingest(150, {Value(1), Value(1.0)}).ok());  // closes [0,100)
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(emitted_[0].count, 1u);
  // An event for the closed window arrives late.
  ASSERT_TRUE(engine_.Ingest(60, {Value(1), Value(1.0)}).ok());
  EXPECT_EQ(engine_.late_events(), 1u);
  engine_.Flush();
  ASSERT_EQ(emitted_.size(), 2u);
  EXPECT_EQ(emitted_[1].count, 1u);  // late event did NOT sneak in
}

TEST_F(StreamingTest, AllowedLatenessAcceptsStragglers) {
  ContinuousQuerySpec spec;
  spec.name = "lenient";
  spec.window_us = 100;
  spec.allowed_lateness_us = 100;
  ASSERT_TRUE(engine_.Register(spec, Collect()).ok());
  ASSERT_TRUE(engine_.Ingest(50, {Value(1), Value(1.0)}).ok());
  ASSERT_TRUE(engine_.Ingest(150, {Value(1), Value(1.0)}).ok());
  EXPECT_TRUE(emitted_.empty());  // [0,100) held open until watermark 200
  ASSERT_TRUE(engine_.Ingest(60, {Value(1), Value(1.0)}).ok());  // straggler in
  ASSERT_TRUE(engine_.Ingest(210, {Value(1), Value(1.0)}).ok());
  ASSERT_EQ(emitted_.size(), 1u);
  EXPECT_EQ(emitted_[0].count, 2u);
  EXPECT_EQ(engine_.late_events(), 0u);
}

TEST_F(StreamingTest, MinMaxSumAggregates) {
  for (auto [agg, expected] :
       std::vector<std::pair<AggFunc, double>>{{AggFunc::kMin, 10.0},
                                               {AggFunc::kMax, 30.0},
                                               {AggFunc::kSum, 60.0}}) {
    StreamEngine engine(SpeedSchema());
    std::vector<WindowResult> results;
    ContinuousQuerySpec spec;
    spec.name = "agg";
    spec.agg = agg;
    spec.agg_column = "speed";
    spec.window_us = 1000;
    ASSERT_TRUE(engine
                    .Register(spec, [&](const WindowResult& r) {
                      results.push_back(r);
                    })
                    .ok());
    ASSERT_TRUE(engine.Ingest(1, {Value(1), Value(10.0)}).ok());
    ASSERT_TRUE(engine.Ingest(2, {Value(1), Value(20.0)}).ok());
    ASSERT_TRUE(engine.Ingest(3, {Value(1), Value(30.0)}).ok());
    engine.Flush();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_DOUBLE_EQ(results[0].value, expected);
  }
}

TEST_F(StreamingTest, RegistrationErrors) {
  ContinuousQuerySpec bad_window;
  bad_window.window_us = 0;
  EXPECT_FALSE(engine_.Register(bad_window, Collect()).ok());

  ContinuousQuerySpec bad_col;
  bad_col.key_column = "nope";
  EXPECT_FALSE(engine_.Register(bad_col, Collect()).ok());

  ContinuousQuerySpec sum_without_col;
  sum_without_col.agg = AggFunc::kSum;
  EXPECT_FALSE(engine_.Register(sum_without_col, Collect()).ok());

  EXPECT_TRUE(engine_.Unregister(99).IsNotFound());
}

TEST_F(StreamingTest, MultipleQueriesShareTheStream) {
  ContinuousQuerySpec count_all;
  count_all.name = "all";
  count_all.window_us = 1000;
  ContinuousQuerySpec max_speed;
  max_speed.name = "max";
  max_speed.agg = AggFunc::kMax;
  max_speed.agg_column = "speed";
  max_speed.window_us = 1000;
  ASSERT_TRUE(engine_.Register(count_all, Collect()).ok());
  ASSERT_TRUE(engine_.Register(max_speed, Collect()).ok());
  ASSERT_TRUE(engine_.Ingest(1, {Value(1), Value(44.0)}).ok());
  engine_.Flush();
  EXPECT_EQ(emitted_.size(), 2u);
}

TEST_F(StreamingTest, ArityChecked) {
  EXPECT_TRUE(engine_.Ingest(0, {Value(1)}).IsInvalidArgument());
}

}  // namespace
}  // namespace ofi::streaming
