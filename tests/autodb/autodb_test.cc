/// Autonomous-database components (paper §IV-A, Fig. 12): information
/// store, anomaly manager, workload manager (SLA), change manager, in-DB ML.
#include <gtest/gtest.h>

#include "autodb/access_guard.h"
#include "autodb/anomaly_manager.h"
#include "autodb/change_manager.h"
#include "autodb/info_store.h"
#include "autodb/ml.h"
#include "autodb/workload_manager.h"
#include "common/rng.h"

namespace ofi::autodb {
namespace {

TEST(InfoStoreTest, MetricMeanAndQueries) {
  InformationStore info;
  for (int i = 0; i < 10; ++i) info.RecordMetric("dn0.cpu", i, i * 1.0);
  EXPECT_DOUBLE_EQ(info.MetricMean("dn0.cpu", 0, 10).ValueOrDie(), 4.5);
  EXPECT_TRUE(info.MetricMean("nope", 0, 10).status().IsNotFound());
  info.RecordQuery({100, "report", 2.0, 5000, true});
  info.RecordQuery({200, "point", 0.1, 50, true});
  EXPECT_EQ(info.RecentQueries("report", 10).size(), 1u);
}

TEST(LinearRegressionTest, RecoversLinearModel) {
  // y = 3x0 - 2x1 + 5.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    double a = rng.NextDouble() * 10, b = rng.NextDouble() * 10;
    x.push_back({a, b});
    y.push_back(3 * a - 2 * b + 5);
  }
  LinearRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_NEAR(lr.weights()[0], 3.0, 1e-6);
  EXPECT_NEAR(lr.weights()[1], -2.0, 1e-6);
  EXPECT_NEAR(lr.bias(), 5.0, 1e-6);
  EXPECT_NEAR(lr.Predict({1, 1}).ValueOrDie(), 6.0, 1e-6);
  EXPECT_NEAR(lr.Score(x, y).ValueOrDie(), 1.0, 1e-9);
}

TEST(LinearRegressionTest, ErrorPaths) {
  LinearRegression lr;
  EXPECT_TRUE(lr.Fit({}, {}).IsInvalidArgument());
  EXPECT_TRUE(lr.Fit({{1, 2}}, {1, 2}).IsInvalidArgument());
  EXPECT_TRUE(lr.Predict({1}).status().IsInvalidArgument());  // before fit
  ASSERT_TRUE(lr.Fit({{1.0}, {2.0}}, {1, 2}).ok());
  EXPECT_TRUE(lr.Predict({1, 2}).status().IsInvalidArgument());  // arity
}

TEST(KnnRegressorTest, PredictsLocalMean) {
  KnnRegressor knn(2);
  ASSERT_TRUE(knn.Fit({{0}, {1}, {10}, {11}}, {0, 2, 20, 22}).ok());
  EXPECT_NEAR(knn.Predict({0.4}).ValueOrDie(), 1.0, 1e-9);    // mean(0,2)
  EXPECT_NEAR(knn.Predict({10.6}).ValueOrDie(), 21.0, 1e-9);  // mean(20,22)
}

TEST(AnomalyManagerTest, DetectsSlowDiskSpike) {
  InformationStore info;
  // Normal disk latency ~100us, then a spike to 5000us at t>=64.
  Rng rng(5);
  for (int t = 0; t < 80; ++t) {
    double v = t < 64 ? 100 + rng.NextDouble() * 8 : 5000;
    info.RecordMetric("dn2.disk_read_us", t, v);
  }
  AnomalyManager mgr(&info);
  mgr.AddRule(DetectionRule{"dn2.disk_read_us", 3.0, 6.0, 0, 32});
  auto anomalies = mgr.Scan(0, 100);
  ASSERT_GE(anomalies.size(), 10u);  // sustained anomaly keeps firing
  EXPECT_EQ(anomalies.front().severity, AnomalySeverity::kCritical);
  EXPECT_EQ(AnomalyManager::RecommendAction(anomalies.front()),
            "migrate partitions off the slow disk");
}

TEST(AnomalyManagerTest, QuietMetricNoAnomalies) {
  InformationStore info;
  for (int t = 0; t < 100; ++t) info.RecordMetric("m", t, 50.0);
  AnomalyManager mgr(&info);
  mgr.AddRule(DetectionRule{"m", 3.0, 6.0, 0, 16});
  EXPECT_TRUE(mgr.Scan(0, 100).empty());
}

TEST(AnomalyManagerTest, HardCeilingFiresWithoutBaseline) {
  InformationStore info;
  info.RecordMetric("dn0.heartbeat_gap_ms", 1, 30000);  // dead node
  AnomalyManager mgr(&info);
  mgr.AddRule(DetectionRule{"dn0.heartbeat_gap_ms", 3.0, 6.0, 10000, 32});
  auto anomalies = mgr.Scan(0, 10);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].severity, AnomalySeverity::kCritical);
  EXPECT_NE(AnomalyManager::RecommendAction(anomalies[0]).find("restart"),
            std::string::npos);
}

TEST(WorkloadManagerTest, UncontendedRunsAtServiceTime) {
  InformationStore info;
  WorkloadManager wm({.capacity_units = 4, .max_queue = 8}, &info);
  auto done = wm.Submit("point", 0, 1.0, 100);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done, 100);
  EXPECT_EQ(wm.queued(), 0u);
}

TEST(WorkloadManagerTest, SaturationQueuesInsteadOfThrashing) {
  InformationStore info;
  WorkloadManager wm({.capacity_units = 2, .max_queue = 100}, &info);
  // 6 queries of cost 1, service 100us, all arriving at t=0: two at a time.
  SimTime last = 0;
  for (int i = 0; i < 6; ++i) {
    auto done = wm.Submit("etl", 0, 1.0, 100);
    ASSERT_TRUE(done.ok());
    last = std::max(last, *done);
  }
  EXPECT_EQ(last, 300);  // three waves of two
  EXPECT_GT(wm.queued(), 0u);
}

TEST(WorkloadManagerTest, QueueBoundRejects) {
  InformationStore info;
  WorkloadManager wm({.capacity_units = 1, .max_queue = 3}, &info);
  Status last;
  for (int i = 0; i < 10; ++i) {
    auto r = wm.Submit("etl", 0, 1.0, 1000);
    last = r.ok() ? Status::OK() : r.status();
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(wm.rejected(), 0u);
}

TEST(WorkloadManagerTest, SlaMetWithAdmissionControlNotWithout) {
  // Burst of 40 heavy queries on capacity 4.
  InformationStore i1, i2;
  WorkloadManager with({.capacity_units = 4, .max_queue = 64,
                        .admission_control = true}, &i1);
  WorkloadManager without({.capacity_units = 4, .max_queue = 64,
                           .admission_control = false}, &i2);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(with.Submit("report", i * 10, 1.0, 1000).ok());
    ASSERT_TRUE(without.Submit("report", i * 10, 1.0, 1000).ok());
  }
  double p95_with = with.AchievedP95("report");
  double p95_without = without.AchievedP95("report");
  // Thrashing makes the uncontrolled p95 dramatically worse.
  EXPECT_LT(p95_with, p95_without);
  EXPECT_TRUE(with.MeetsSla({{"report", p95_with * 1.01}}));
  EXPECT_FALSE(without.MeetsSla({{"report", p95_with * 1.01}}));
}

TEST(ChangeManagerTest, GuardedChangeRollsBackRegression) {
  ChangeManager cm;
  ASSERT_TRUE(cm.DefineParameter({"buffer_mb", 100, 16, 4096}).ok());
  // Objective: lower is better; pretend 100 is optimal.
  auto objective = [&]() {
    double v = cm.Get("buffer_mb").ValueOrDie();
    return (v - 100) * (v - 100) + 10;
  };
  auto kept = cm.ApplyGuarded("buffer_mb", 2000, objective);
  ASSERT_TRUE(kept.ok());
  EXPECT_DOUBLE_EQ(*kept, 100);  // rolled back
  ASSERT_EQ(cm.history().size(), 1u);
  EXPECT_TRUE(cm.history()[0].rolled_back);
}

TEST(ChangeManagerTest, AutoTuneFindsBetterKnob) {
  ChangeManager cm;
  ASSERT_TRUE(cm.DefineParameter({"work_mem", 4, 1, 1024}).ok());
  // Optimal around 64.
  auto objective = [&]() {
    double v = cm.Get("work_mem").ValueOrDie();
    double d = std::log2(v) - 6;  // minimum at 64
    return d * d;
  };
  auto best = cm.AutoTune("work_mem", objective, 2.0, 10);
  ASSERT_TRUE(best.ok());
  EXPECT_DOUBLE_EQ(*best, 64);
  EXPECT_DOUBLE_EQ(cm.Get("work_mem").ValueOrDie(), 64);
}

TEST(ChangeManagerTest, RangeEnforced) {
  ChangeManager cm;
  ASSERT_TRUE(cm.DefineParameter({"p", 5, 0, 10}).ok());
  EXPECT_TRUE(cm.Set("p", 11).code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(cm.Set("q", 1).IsNotFound());
  EXPECT_TRUE(cm.DefineParameter({"p", 5, 0, 10}).IsAlreadyExists());
}

TEST(AccessGuardTest, NormalUsageAllowed) {
  AccessGuard guard;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(guard.OnRead("app", "orders", 100, i * 1000),
              AccessDecision::kAllow);
  }
  EXPECT_FALSE(guard.IsBlocked("app"));
}

TEST(AccessGuardTest, MassExportThrottledThenBlocked) {
  AccessGuardConfig cfg;
  cfg.throttle_rows = 1000;
  cfg.block_rows = 5000;
  AccessGuard guard(cfg);
  EXPECT_EQ(guard.OnRead("etl", "t", 900, 1), AccessDecision::kAllow);
  EXPECT_EQ(guard.OnRead("etl", "t", 900, 2), AccessDecision::kThrottle);
  AccessDecision last = AccessDecision::kAllow;
  for (int i = 0; i < 10; ++i) last = guard.OnRead("etl", "t", 900, 3 + i);
  EXPECT_EQ(last, AccessDecision::kBlock);
  EXPECT_TRUE(guard.IsBlocked("etl"));
  // Blocked stays blocked even for tiny reads.
  EXPECT_EQ(guard.OnRead("etl", "t", 1, 100), AccessDecision::kBlock);
  guard.Unblock("etl");
  EXPECT_EQ(guard.OnRead("etl", "t", 1, 101), AccessDecision::kAllow);
}

TEST(AccessGuardTest, WindowExpiryForgivesOldVolume) {
  AccessGuardConfig cfg;
  cfg.window_us = 1000;
  cfg.throttle_rows = 500;
  AccessGuard guard(cfg);
  EXPECT_EQ(guard.OnRead("app", "t", 600, 0), AccessDecision::kThrottle);
  // Two windows later the history has aged out.
  EXPECT_EQ(guard.OnRead("app", "t", 400, 5000), AccessDecision::kAllow);
}

TEST(AccessGuardTest, TableScrapingThrottled) {
  AccessGuardConfig cfg;
  cfg.max_distinct_tables = 3;
  AccessGuard guard(cfg);
  AccessDecision d = AccessDecision::kAllow;
  for (int i = 0; i < 5; ++i) {
    d = guard.OnRead("crawler", "table" + std::to_string(i), 1, i);
  }
  EXPECT_EQ(d, AccessDecision::kThrottle);
}

TEST(AccessGuardTest, FailureBurstBlocks) {
  AccessGuardConfig cfg;
  cfg.max_failures = 5;
  AccessGuard guard(cfg);
  AccessDecision d = AccessDecision::kAllow;
  for (int i = 0; i < 6; ++i) d = guard.OnFailure("probe", i);
  EXPECT_EQ(d, AccessDecision::kBlock);
  // The audit trail names the probing reason.
  ASSERT_FALSE(guard.audit_log().empty());
  EXPECT_NE(guard.audit_log().back().reason.find("probing"), std::string::npos);
}

TEST(AccessGuardTest, PrincipalsIsolated) {
  AccessGuardConfig cfg;
  cfg.block_rows = 100;
  AccessGuard guard(cfg);
  (void)guard.OnRead("bad", "t", 1000, 1);
  EXPECT_TRUE(guard.IsBlocked("bad"));
  EXPECT_EQ(guard.OnRead("good", "t", 10, 2), AccessDecision::kAllow);
}

TEST(MlUtilTest, ZScore) {
  WindowStats s = ComputeWindowStats({10, 10, 10, 10});
  EXPECT_DOUBLE_EQ(s.mean, 10);
  EXPECT_DOUBLE_EQ(ZScore(50, s), 0);  // zero stddev guard
  WindowStats s2 = ComputeWindowStats({8, 12});
  EXPECT_DOUBLE_EQ(s2.mean, 10);
  EXPECT_DOUBLE_EQ(ZScore(14, s2), 2.0);
}

}  // namespace
}  // namespace ofi::autodb
