#include "gmdb/tree_object.h"

#include <gtest/gtest.h>

namespace ofi::gmdb {
namespace {

using sql::TypeId;
using sql::Value;

RecordSchemaPtr BearerSchema() {
  auto s = std::make_shared<RecordSchema>();
  s->name = "bearer";
  s->version = 1;
  s->primary_key = "id";
  s->fields = {PrimitiveField("id", TypeId::kInt64, Value(0)),
               PrimitiveField("qci", TypeId::kInt64, Value(9))};
  return s;
}

RecordSchemaPtr SessionSchema() {
  auto s = std::make_shared<RecordSchema>();
  s->name = "session";
  s->version = 1;
  s->primary_key = "imsi";
  s->fields = {PrimitiveField("imsi", TypeId::kString, Value("")),
               PrimitiveField("state", TypeId::kString, Value("idle")),
               RecordField("location", [] {
                 auto loc = std::make_shared<RecordSchema>();
                 loc->name = "loc";
                 loc->version = 1;
                 loc->primary_key = "cell";
                 loc->fields = {PrimitiveField("cell", TypeId::kInt64, Value(0)),
                                PrimitiveField("tac", TypeId::kInt64, Value(0))};
                 return loc;
               }()),
               ArrayField("bearers", BearerSchema())};
  return s;
}

TEST(TreeObjectTest, DefaultsFollowSchema) {
  auto obj = TreeObject::Defaults(*SessionSchema());
  EXPECT_EQ(obj->GetPrimitive("state").ValueOrDie().AsString(), "idle");
  EXPECT_EQ(obj->GetPath("location.cell").ValueOrDie().AsInt(), 0);
  auto bearers = obj->Get("bearers");
  ASSERT_TRUE(bearers.ok());
  EXPECT_TRUE(std::get<std::vector<TreeObjectPtr>>(**bearers).empty());
}

TEST(TreeObjectTest, PathAccessNestedAndArray) {
  auto obj = TreeObject::Defaults(*SessionSchema());
  ASSERT_TRUE(obj->SetPath("location.cell", Value(42)).ok());
  EXPECT_EQ(obj->GetPath("location.cell").ValueOrDie().AsInt(), 42);

  auto bearer = TreeObject::Defaults(*BearerSchema());
  std::vector<TreeObjectPtr> arr = {bearer};
  obj->Set("bearers", arr);
  ASSERT_TRUE(obj->SetPath("bearers[0].qci", Value(5)).ok());
  EXPECT_EQ(obj->GetPath("bearers[0].qci").ValueOrDie().AsInt(), 5);
  EXPECT_TRUE(obj->GetPath("bearers[1].qci").status().code() ==
              StatusCode::kOutOfRange);
}

TEST(TreeObjectTest, BadPathsRejected) {
  auto obj = TreeObject::Defaults(*SessionSchema());
  EXPECT_FALSE(obj->GetPath("state.deeper").ok());    // primitive mid-path
  EXPECT_FALSE(obj->GetPath("location").ok());        // ends at record
  EXPECT_FALSE(obj->GetPath("bearers").ok());         // array without index
  EXPECT_FALSE(obj->GetPath("").ok());
  EXPECT_FALSE(obj->GetPath("bearers[zz").ok());
}

TEST(TreeObjectTest, CloneIsDeep) {
  auto obj = TreeObject::Defaults(*SessionSchema());
  ASSERT_TRUE(obj->SetPath("location.cell", Value(1)).ok());
  auto copy = obj->Clone();
  ASSERT_TRUE(copy->SetPath("location.cell", Value(2)).ok());
  EXPECT_EQ(obj->GetPath("location.cell").ValueOrDie().AsInt(), 1);
  EXPECT_EQ(copy->GetPath("location.cell").ValueOrDie().AsInt(), 2);
}

TEST(TreeObjectTest, EqualsAndJson) {
  auto a = TreeObject::Defaults(*SessionSchema());
  auto b = TreeObject::Defaults(*SessionSchema());
  EXPECT_TRUE(a->Equals(*b));
  ASSERT_TRUE(b->SetPath("state", Value("active")).ok());
  EXPECT_FALSE(a->Equals(*b));
  EXPECT_NE(a->ToJson(), b->ToJson());
  EXPECT_NE(a->ToJson().find("\"state\":'idle'"), std::string::npos);
  EXPECT_GT(a->ByteSize(), 20u);
}

TEST(DeltaTest, ApplyAndByteSize) {
  auto obj = TreeObject::Defaults(*SessionSchema());
  Delta d;
  d.ops = {{"state", Value("connected")}, {"location.cell", Value(7)}};
  ASSERT_TRUE(d.ApplyTo(obj.get()).ok());
  EXPECT_EQ(obj->GetPrimitive("state").ValueOrDie().AsString(), "connected");
  EXPECT_EQ(obj->GetPath("location.cell").ValueOrDie().AsInt(), 7);
  EXPECT_GT(d.ByteSize(), 0u);
  EXPECT_LT(d.ByteSize(), obj->ByteSize());  // deltas are much smaller
}

TEST(DeltaTest, FailedOpSurfacesError) {
  auto obj = TreeObject::Defaults(*SessionSchema());
  Delta d;
  d.ops = {{"bearers[5].qci", Value(1)}};
  EXPECT_FALSE(d.ApplyTo(obj.get()).ok());
}

}  // namespace
}  // namespace ofi::gmdb
