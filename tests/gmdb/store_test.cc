/// GMDB store and client behaviour (paper §III, Figs. 7/9/10): one stored
/// copy per object, on-read conversion, delta sync, pub/sub into client
/// caches, single-object transactions, async checkpointing.
#include <gtest/gtest.h>

#include "gmdb/cluster.h"

namespace ofi::gmdb {
namespace {

using sql::TypeId;
using sql::Value;

RecordSchemaPtr UserSchema(int version) {
  auto s = std::make_shared<RecordSchema>();
  s->name = "user";
  s->version = version;
  s->primary_key = "id";
  // Fig. 10: S {'id': string} evolves to S' adding name/age.
  s->fields = {PrimitiveField("id", TypeId::kString, Value(""))};
  if (version >= 2) {
    s->fields.push_back(PrimitiveField("name", TypeId::kString, Value("")));
    s->fields.push_back(PrimitiveField("age", TypeId::kInt64, Value(0)));
  }
  return s;
}

class GmdbStoreTest : public ::testing::Test {
 protected:
  GmdbStoreTest() : cluster_(2) {
    EXPECT_TRUE(cluster_.SubmitSchema(UserSchema(1)).ok());
    EXPECT_TRUE(cluster_.SubmitSchema(UserSchema(2)).ok());
  }
  GmdbCluster cluster_;
};

// The Fig. 10 walkthrough: client X writes with schema S, client Y reads
// with S' and sees the transformed object.
TEST_F(GmdbStoreTest, Fig10UpgradeOnRead) {
  GmdbClient x = cluster_.MakeClient("user", 1);
  auto d = TreeObject::Defaults(*UserSchema(1));
  ASSERT_TRUE(d->SetPath("id", Value("Jane")).ok());
  ASSERT_TRUE(x.Create("jane", d).ok());

  GmdbClient y = cluster_.MakeClient("user", 2);
  auto read = y.Read("jane");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)->GetPrimitive("id").ValueOrDie().AsString(), "Jane");
  EXPECT_EQ((*read)->GetPrimitive("age").ValueOrDie().AsInt(), 0);  // default
}

TEST_F(GmdbStoreTest, DowngradeOnRead) {
  GmdbClient y = cluster_.MakeClient("user", 2);
  auto d = TreeObject::Defaults(*UserSchema(2));
  ASSERT_TRUE(d->SetPath("id", Value("Bob")).ok());
  ASSERT_TRUE(d->SetPath("age", Value(30)).ok());
  ASSERT_TRUE(y.Create("bob", d).ok());

  GmdbClient x = cluster_.MakeClient("user", 1);
  auto read = x.Read("bob");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)->GetPrimitive("id").ValueOrDie().AsString(), "Bob");
  EXPECT_FALSE((*read)->Has("age"));
}

TEST_F(GmdbStoreTest, OneCopyStoredMixedVersionClients) {
  GmdbClient x = cluster_.MakeClient("user", 1);
  auto d = TreeObject::Defaults(*UserSchema(1));
  ASSERT_TRUE(d->SetPath("id", Value("K")).ok());
  ASSERT_TRUE(x.Create("k", d).ok());
  GmdbStore* dn = cluster_.ShardFor("k");
  EXPECT_EQ(dn->StoredVersion("user", "k").ValueOrDie(), 1);

  // A v2 writer's delta upgrades the single stored copy in place.
  GmdbClient y = cluster_.MakeClient("user", 2);
  ASSERT_TRUE(y.Read("k").ok());
  Delta delta;
  delta.ops = {{"age", Value(44)}};
  ASSERT_TRUE(y.Write("k", delta).ok());
  EXPECT_EQ(dn->StoredVersion("user", "k").ValueOrDie(), 2);

  // v1 reader still sees its own view of the same copy.
  auto v1_read = dn->Get("user", "k", 1);
  ASSERT_TRUE(v1_read.ok());
  EXPECT_FALSE((*v1_read)->Has("age"));
}

TEST_F(GmdbStoreTest, PubSubDeliversDeltasToSubscribers) {
  GmdbClient a = cluster_.MakeClient("user", 2);
  GmdbClient b = cluster_.MakeClient("user", 2);
  auto d = TreeObject::Defaults(*UserSchema(2));
  ASSERT_TRUE(d->SetPath("id", Value("S")).ok());
  ASSERT_TRUE(a.Create("s", d).ok());
  ASSERT_TRUE(b.Read("s").ok());  // caches + subscribes

  Delta delta;
  delta.ops = {{"age", Value(21)}};
  ASSERT_TRUE(a.Write("s", delta).ok());

  // b's cache was updated by the notification — no re-fetch needed.
  EXPECT_GE(b.notifications_received(), 1u);
  auto cached = b.Read("s");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ((*cached)->GetPrimitive("age").ValueOrDie().AsInt(), 21);
  EXPECT_GE(b.cache_hits(), 1u);
}

TEST_F(GmdbStoreTest, OldVersionSubscriberSkipsUnknownFields) {
  GmdbClient writer = cluster_.MakeClient("user", 2);
  auto d = TreeObject::Defaults(*UserSchema(2));
  ASSERT_TRUE(d->SetPath("id", Value("m")).ok());
  ASSERT_TRUE(writer.Create("m", d).ok());

  GmdbClient old_client = cluster_.MakeClient("user", 1);
  ASSERT_TRUE(old_client.Read("m").ok());

  Delta delta;
  delta.ops = {{"age", Value(9)}};
  ASSERT_TRUE(writer.Write("m", delta).ok());
  // The old client received the notification; its v1 cache object now has a
  // stray-free view (age skipped or harmlessly set; reads of v1 fields work).
  auto cached = old_client.Read("m");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ((*cached)->GetPrimitive("id").ValueOrDie().AsString(), "m");
}

TEST_F(GmdbStoreTest, SingleObjectTransactionAtomicity) {
  GmdbStore* dn = cluster_.dn(0);
  auto obj = TreeObject::Defaults(*UserSchema(2));
  ASSERT_TRUE(obj->SetPath("id", Value("t")).ok());
  ASSERT_TRUE(dn->Put("user", "t", obj, 2).ok());

  // A failing mutator leaves the object untouched.
  Status st = dn->Transact("user", "t", [](TreeObject* o) -> Status {
    OFI_RETURN_NOT_OK(o->SetPath("age", sql::Value(99)));
    return Status::Aborted("change of heart");
  });
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(dn->Get("user", "t", 2).ValueOrDie()->GetPrimitive("age")
                .ValueOrDie().AsInt(), 0);

  // A succeeding mutator commits.
  ASSERT_TRUE(dn->Transact("user", "t", [](TreeObject* o) {
                  return o->SetPath("age", sql::Value(5));
                }).ok());
  EXPECT_EQ(dn->Get("user", "t", 2).ValueOrDie()->GetPrimitive("age")
                .ValueOrDie().AsInt(), 5);
}

TEST_F(GmdbStoreTest, AsyncCheckpointBoundedLossWindow) {
  GmdbStore* dn = cluster_.dn(0);
  auto obj = TreeObject::Defaults(*UserSchema(1));
  ASSERT_TRUE(obj->SetPath("id", Value("c1")).ok());
  ASSERT_TRUE(dn->Put("user", "c1", obj, 1).ok());
  size_t bytes = dn->Checkpoint();
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(dn->mutations_since_checkpoint(), 0u);

  // Post-checkpoint mutation is lost on restore — the accepted trade-off.
  auto obj2 = TreeObject::Defaults(*UserSchema(1));
  ASSERT_TRUE(obj2->SetPath("id", Value("c2")).ok());
  ASSERT_TRUE(dn->Put("user", "c2", obj2, 1).ok());
  EXPECT_EQ(dn->num_objects(), 2u);
  EXPECT_EQ(dn->RestoreFromCheckpoint(), 1u);
  EXPECT_TRUE(dn->Get("user", "c2", 1).status().IsNotFound());
  EXPECT_TRUE(dn->Get("user", "c1", 1).ok());
}

TEST_F(GmdbStoreTest, ErrorPaths) {
  GmdbStore* dn = cluster_.dn(0);
  EXPECT_TRUE(dn->Get("user", "nope", 1).status().IsNotFound());
  EXPECT_TRUE(dn->Delete("user", "nope").IsNotFound());
  auto obj = TreeObject::Defaults(*UserSchema(1));
  EXPECT_TRUE(dn->Put("user", "a", obj, 99).IsNotFound());  // no such version
  ASSERT_TRUE(dn->Put("user", "a", obj, 1).ok());
  EXPECT_TRUE(dn->Put("user", "a", obj, 1).IsAlreadyExists());
  Delta d;
  EXPECT_TRUE(dn->ApplyDelta("user", "zzz", d, 1).IsNotFound());
}

TEST_F(GmdbStoreTest, SessionTtlSweep) {
  GmdbStore* dn = cluster_.dn(0);
  for (int i = 0; i < 3; ++i) {
    auto obj = TreeObject::Defaults(*UserSchema(1));
    ASSERT_TRUE(obj->SetPath("id", Value("u" + std::to_string(i))).ok());
    ASSERT_TRUE(dn->Put("user", "u" + std::to_string(i), obj, 1).ok());
  }
  // u0 leases until t=100, u1 until t=200, u2 has no lease.
  ASSERT_TRUE(dn->SetExpiry("user", "u0", 100).ok());
  ASSERT_TRUE(dn->SetExpiry("user", "u1", 200).ok());
  EXPECT_TRUE(dn->SetExpiry("user", "nope", 100).IsNotFound());

  EXPECT_EQ(dn->SweepExpired(50), 0u);
  EXPECT_EQ(dn->SweepExpired(150), 1u);
  EXPECT_TRUE(dn->Get("user", "u0", 1).status().IsNotFound());
  EXPECT_TRUE(dn->Get("user", "u1", 1).ok());

  // Refreshing the lease (session activity) keeps it alive.
  ASSERT_TRUE(dn->SetExpiry("user", "u1", 500).ok());
  EXPECT_EQ(dn->SweepExpired(250), 0u);
  EXPECT_EQ(dn->SweepExpired(600), 1u);
  // The lease-free object survives indefinitely.
  EXPECT_TRUE(dn->Get("user", "u2", 1).ok());
}

TEST_F(GmdbStoreTest, ShardingIsDeterministic) {
  EXPECT_EQ(cluster_.ShardFor("abc"), cluster_.ShardFor("abc"));
  EXPECT_EQ(cluster_.num_dns(), 2);
}

}  // namespace
}  // namespace ofi::gmdb
