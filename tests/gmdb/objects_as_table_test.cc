/// GMDB's relational view: tree objects flattened into SQL tables (the
/// relational half of Fig. 7's Driver), including cross-version reads and
/// cross-system joins with the SQL executor.
#include <gtest/gtest.h>

#include "gmdb/cluster.h"
#include "sql/executor.h"

namespace ofi::gmdb {
namespace {

using sql::TypeId;
using sql::Value;

RecordSchemaPtr SubscriberSchema(int version) {
  auto s = std::make_shared<RecordSchema>();
  s->name = "subscriber";
  s->version = version;
  s->primary_key = "msisdn";
  s->fields = {PrimitiveField("msisdn", TypeId::kString, Value("")),
               PrimitiveField("balance", TypeId::kInt64, Value(0)),
               // A nested record: skipped by the flattened view.
               RecordField("device", [] {
                 auto d = std::make_shared<RecordSchema>();
                 d->name = "device";
                 d->version = 1;
                 d->primary_key = "imei";
                 d->fields = {PrimitiveField("imei", TypeId::kString, Value(""))};
                 return d;
               }())};
  if (version >= 2) {
    s->fields.push_back(PrimitiveField("plan", TypeId::kString, Value("basic")));
  }
  return s;
}

class ObjectsAsTableTest : public ::testing::Test {
 protected:
  ObjectsAsTableTest() : cluster_(1) {
    EXPECT_TRUE(cluster_.SubmitSchema(SubscriberSchema(1)).ok());
    EXPECT_TRUE(cluster_.SubmitSchema(SubscriberSchema(2)).ok());
    auto v1 = *cluster_.registry().Get("subscriber", 1);
    for (int i = 0; i < 5; ++i) {
      auto obj = TreeObject::Defaults(*v1);
      (void)obj->SetPath("msisdn", Value("m" + std::to_string(i)));
      (void)obj->SetPath("balance", Value(100 * i));
      EXPECT_TRUE(cluster_.dn(0)
                      ->Put("subscriber", "m" + std::to_string(i), obj, 1)
                      .ok());
    }
  }
  GmdbCluster cluster_;
};

TEST_F(ObjectsAsTableTest, FlattensPrimitivesOnly) {
  auto table = cluster_.dn(0)->ObjectsAsTable("subscriber", 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 5u);
  // _key + msisdn + balance; the nested "device" record is not a column.
  EXPECT_EQ(table->schema().num_columns(), 3u);
  EXPECT_TRUE(table->schema().IndexOf("balance").ok());
  EXPECT_FALSE(table->schema().IndexOf("device").ok());
}

TEST_F(ObjectsAsTableTest, CrossVersionViewFillsDefaults) {
  // Reading the same V1 objects at V2 adds the "plan" column with defaults.
  auto table = cluster_.dn(0)->ObjectsAsTable("subscriber", 2);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().num_columns(), 4u);
  size_t plan_idx = table->schema().IndexOf("plan").ValueOrDie();
  for (const auto& row : table->rows()) {
    EXPECT_EQ(row[plan_idx].AsString(), "basic");
  }
}

TEST_F(ObjectsAsTableTest, JoinsWithRelationalEngine) {
  auto table = cluster_.dn(0)->ObjectsAsTable("subscriber", 1);
  ASSERT_TRUE(table.ok());
  sql::Catalog catalog;
  catalog.Register("subs", sql::Table(table->schema().WithQualifier("s"),
                                      std::move(table->mutable_rows())));
  sql::Executor exec(&catalog);
  auto plan = sql::MakeAggregate(
      sql::MakeScan("subs", sql::Expr::Ge("s.balance", Value(200))), {},
      {sql::AggSpec{sql::AggFunc::kCount, nullptr, "n"}});
  auto result = exec.Execute(plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows()[0][0].AsInt(), 3);  // balances 200, 300, 400
}

TEST_F(ObjectsAsTableTest, UnknownTypeOrVersionFails) {
  EXPECT_FALSE(cluster_.dn(0)->ObjectsAsTable("nope", 1).ok());
  EXPECT_FALSE(cluster_.dn(0)->ObjectsAsTable("subscriber", 9).ok());
}

TEST_F(ObjectsAsTableTest, OnlyMatchingTypeIncluded) {
  // Add a second object type; it must not leak into the subscriber view.
  auto other = std::make_shared<RecordSchema>();
  other->name = "cell";
  other->version = 1;
  other->primary_key = "id";
  other->fields = {PrimitiveField("id", TypeId::kString, Value(""))};
  ASSERT_TRUE(cluster_.SubmitSchema(other).ok());
  auto obj = TreeObject::Defaults(*other);
  ASSERT_TRUE(cluster_.dn(0)->Put("cell", "c1", obj, 1).ok());

  auto table = cluster_.dn(0)->ObjectsAsTable("subscriber", 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 5u);
}

}  // namespace
}  // namespace ofi::gmdb
