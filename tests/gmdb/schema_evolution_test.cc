/// Online schema evolution (paper §III-B, experiments E6/E7): the MME
/// version chain V3->V5->V6->V7->V8 of Fig. 8, the evolution rules
/// (add-only, no delete, no reorder), and upgrade/downgrade conversion.
#include "gmdb/schema_registry.h"

#include <gtest/gtest.h>

namespace ofi::gmdb {
namespace {

using sql::TypeId;
using sql::Value;

/// MME session schema at a given version: each version appends fields.
RecordSchemaPtr MmeSchema(int version) {
  auto s = std::make_shared<RecordSchema>();
  s->name = "mme_session";
  s->version = version;
  s->primary_key = "imsi";
  s->fields = {PrimitiveField("imsi", TypeId::kString, Value("")),
               PrimitiveField("state", TypeId::kString, Value("idle"))};
  if (version >= 5) {
    s->fields.push_back(PrimitiveField("apn", TypeId::kString, Value("default")));
  }
  if (version >= 6) {
    s->fields.push_back(PrimitiveField("qos", TypeId::kInt64, Value(9)));
  }
  if (version >= 7) {
    s->fields.push_back(PrimitiveField("slice_id", TypeId::kInt64, Value(0)));
  }
  if (version >= 8) {
    s->fields.push_back(
        PrimitiveField("edge_site", TypeId::kString, Value("none")));
  }
  return s;
}

class Fig8MatrixTest : public ::testing::Test {
 protected:
  Fig8MatrixTest() {
    for (int v : {3, 5, 6, 7, 8}) {
      EXPECT_TRUE(registry_.RegisterVersion(MmeSchema(v)).ok()) << v;
    }
  }
  SchemaRegistry registry_;
};

TEST_F(Fig8MatrixTest, AdjacentCellsAreUpgradesAndDowngrades) {
  // The U diagonal of Fig. 8.
  EXPECT_EQ(registry_.Classify("mme_session", 3, 5), ConversionKind::kUpgrade);
  EXPECT_EQ(registry_.Classify("mme_session", 5, 6), ConversionKind::kUpgrade);
  EXPECT_EQ(registry_.Classify("mme_session", 6, 7), ConversionKind::kUpgrade);
  EXPECT_EQ(registry_.Classify("mme_session", 7, 8), ConversionKind::kUpgrade);
  // The D diagonal.
  EXPECT_EQ(registry_.Classify("mme_session", 5, 3), ConversionKind::kDowngrade);
  EXPECT_EQ(registry_.Classify("mme_session", 8, 7), ConversionKind::kDowngrade);
}

TEST_F(Fig8MatrixTest, NonAdjacentCellsAreX) {
  EXPECT_EQ(registry_.Classify("mme_session", 3, 6), ConversionKind::kUnsupported);
  EXPECT_EQ(registry_.Classify("mme_session", 3, 8), ConversionKind::kUnsupported);
  EXPECT_EQ(registry_.Classify("mme_session", 8, 3), ConversionKind::kUnsupported);
  EXPECT_EQ(registry_.Classify("mme_session", 6, 3), ConversionKind::kUnsupported);
}

TEST_F(Fig8MatrixTest, DiagonalIsIdentity) {
  EXPECT_EQ(registry_.Classify("mme_session", 5, 5), ConversionKind::kIdentity);
}

TEST_F(Fig8MatrixTest, MatrixRendering) {
  std::string m = registry_.MatrixToString("mme_session");
  EXPECT_NE(m.find("U1(3->5)"), std::string::npos);
  EXPECT_NE(m.find("D1(5->3)"), std::string::npos);
  EXPECT_NE(m.find("X"), std::string::npos);
}

TEST_F(Fig8MatrixTest, UpgradeFillsDefaults) {
  auto v3 = TreeObject::Defaults(*MmeSchema(3));
  ASSERT_TRUE(v3->SetPath("imsi", Value("460-001")).ok());
  ASSERT_TRUE(v3->SetPath("state", Value("connected")).ok());
  auto v5 = registry_.Convert("mme_session", *v3, 3, 5);
  ASSERT_TRUE(v5.ok());
  EXPECT_EQ((*v5)->GetPrimitive("imsi").ValueOrDie().AsString(), "460-001");
  EXPECT_EQ((*v5)->GetPrimitive("state").ValueOrDie().AsString(), "connected");
  EXPECT_EQ((*v5)->GetPrimitive("apn").ValueOrDie().AsString(), "default");
}

TEST_F(Fig8MatrixTest, DowngradeDropsTrailingFields) {
  auto v6 = TreeObject::Defaults(*MmeSchema(6));
  ASSERT_TRUE(v6->SetPath("apn", Value("ims")).ok());
  ASSERT_TRUE(v6->SetPath("qos", Value(5)).ok());
  auto v5 = registry_.Convert("mme_session", *v6, 6, 5);
  ASSERT_TRUE(v5.ok());
  EXPECT_EQ((*v5)->GetPrimitive("apn").ValueOrDie().AsString(), "ims");
  EXPECT_FALSE((*v5)->Has("qos"));
}

TEST_F(Fig8MatrixTest, NonAdjacentConversionFails) {
  auto v3 = TreeObject::Defaults(*MmeSchema(3));
  EXPECT_TRUE(registry_.Convert("mme_session", *v3, 3, 8)
                  .status()
                  .IsIncompatibleSchema());
}

TEST_F(Fig8MatrixTest, UpgradeThenDowngradeRoundTripsSharedFields) {
  auto v5 = TreeObject::Defaults(*MmeSchema(5));
  ASSERT_TRUE(v5->SetPath("apn", Value("corp")).ok());
  auto v6 = registry_.Convert("mme_session", *v5, 5, 6);
  ASSERT_TRUE(v6.ok());
  auto back = registry_.Convert("mme_session", **v6, 6, 5);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(v5->Equals(**back));
}

// --- Evolution rule enforcement ---------------------------------------------
TEST(EvolutionRulesTest, DeletingFieldRejected) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.RegisterVersion(MmeSchema(3)).ok());
  auto bad = std::make_shared<RecordSchema>();
  bad->name = "mme_session";
  bad->version = 4;
  bad->primary_key = "imsi";
  bad->fields = {PrimitiveField("imsi", TypeId::kString, Value(""))};  // dropped state
  EXPECT_TRUE(reg.RegisterVersion(bad).IsIncompatibleSchema());
}

TEST(EvolutionRulesTest, ReorderingFieldsRejected) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.RegisterVersion(MmeSchema(3)).ok());
  auto bad = std::make_shared<RecordSchema>();
  bad->name = "mme_session";
  bad->version = 4;
  bad->primary_key = "imsi";
  bad->fields = {PrimitiveField("state", TypeId::kString, Value("idle")),
                 PrimitiveField("imsi", TypeId::kString, Value(""))};
  EXPECT_TRUE(reg.RegisterVersion(bad).IsIncompatibleSchema());
}

TEST(EvolutionRulesTest, TypeChangeRejected) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.RegisterVersion(MmeSchema(3)).ok());
  auto bad = MmeSchema(4);
  const_cast<FieldDef&>(bad->fields[1]).primitive_type = TypeId::kInt64;
  EXPECT_TRUE(reg.RegisterVersion(bad).IsIncompatibleSchema());
}

TEST(EvolutionRulesTest, VersionMustIncrease) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.RegisterVersion(MmeSchema(5)).ok());
  EXPECT_TRUE(reg.RegisterVersion(MmeSchema(3)).IsIncompatibleSchema());
  EXPECT_TRUE(reg.RegisterVersion(MmeSchema(5)).IsIncompatibleSchema());
}

TEST(EvolutionRulesTest, PrimaryKeyChangeRejected) {
  SchemaRegistry reg;
  ASSERT_TRUE(reg.RegisterVersion(MmeSchema(3)).ok());
  auto bad = MmeSchema(4);
  const_cast<RecordSchema&>(*bad).primary_key = "state";
  EXPECT_TRUE(reg.RegisterVersion(bad).IsIncompatibleSchema());
}

TEST(EvolutionRulesTest, FirstVersionNeedsValidPrimaryKey) {
  SchemaRegistry reg;
  auto s = std::make_shared<RecordSchema>();
  s->name = "x";
  s->version = 1;
  s->primary_key = "missing";
  s->fields = {PrimitiveField("a", TypeId::kInt64, Value(0))};
  EXPECT_TRUE(reg.RegisterVersion(s).IsInvalidArgument());
}

TEST(EvolutionRulesTest, NestedRecordEvolutionValidated) {
  SchemaRegistry reg;
  auto inner1 = std::make_shared<RecordSchema>();
  inner1->name = "inner";
  inner1->version = 1;
  inner1->primary_key = "i";
  inner1->fields = {PrimitiveField("i", TypeId::kInt64, Value(0))};

  auto outer1 = std::make_shared<RecordSchema>();
  outer1->name = "outer";
  outer1->version = 1;
  outer1->primary_key = "k";
  outer1->fields = {PrimitiveField("k", TypeId::kInt64, Value(0)),
                    RecordField("nested", inner1)};
  ASSERT_TRUE(reg.RegisterVersion(outer1).ok());

  // v2 deletes a field INSIDE the nested record: rejected.
  auto inner_bad = std::make_shared<RecordSchema>();
  inner_bad->name = "inner";
  inner_bad->version = 2;
  inner_bad->primary_key = "i";
  inner_bad->fields = {PrimitiveField("j", TypeId::kInt64, Value(0))};
  auto outer2 = std::make_shared<RecordSchema>();
  outer2->name = "outer";
  outer2->version = 2;
  outer2->primary_key = "k";
  outer2->fields = {PrimitiveField("k", TypeId::kInt64, Value(0)),
                    RecordField("nested", inner_bad)};
  EXPECT_TRUE(reg.RegisterVersion(outer2).IsIncompatibleSchema());
}

TEST(EvolutionRulesTest, NestedAddIsFineAndUpgradesRecursively) {
  SchemaRegistry reg;
  auto inner1 = std::make_shared<RecordSchema>();
  inner1->name = "inner";
  inner1->version = 1;
  inner1->primary_key = "i";
  inner1->fields = {PrimitiveField("i", TypeId::kInt64, Value(0))};
  auto outer1 = std::make_shared<RecordSchema>();
  outer1->name = "outer";
  outer1->version = 1;
  outer1->primary_key = "k";
  outer1->fields = {PrimitiveField("k", TypeId::kInt64, Value(0)),
                    ArrayField("items", inner1)};
  ASSERT_TRUE(reg.RegisterVersion(outer1).ok());

  auto inner2 = std::make_shared<RecordSchema>();
  inner2->name = "inner";
  inner2->version = 2;
  inner2->primary_key = "i";
  inner2->fields = {PrimitiveField("i", TypeId::kInt64, Value(0)),
                    PrimitiveField("extra", TypeId::kInt64, Value(7))};
  auto outer2 = std::make_shared<RecordSchema>();
  outer2->name = "outer";
  outer2->version = 2;
  outer2->primary_key = "k";
  outer2->fields = {PrimitiveField("k", TypeId::kInt64, Value(0)),
                    ArrayField("items", inner2)};
  ASSERT_TRUE(reg.RegisterVersion(outer2).ok());

  // Build a v1 object with one array element; upgrade fills nested default.
  auto obj = TreeObject::Defaults(*outer1);
  std::vector<TreeObjectPtr> items = {TreeObject::Defaults(*inner1)};
  obj->Set("items", items);
  auto up = reg.Convert("outer", *obj, 1, 2);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ((*up)->GetPath("items[0].extra").ValueOrDie().AsInt(), 7);
}

}  // namespace
}  // namespace ofi::gmdb
