/// \file column_groupby_test.cc
/// \brief The vectorized grouped-aggregation kernel (DESIGN.md §3e):
/// brute-force equivalence over randomized data (NULL keys and values,
/// dictionary-string keys, multi-column keys, filter-fed selections),
/// serial vs morsel-parallel bit-identity, chunk pruning carry-through,
/// and the chunk-on-demand row materializer. The randomized equivalence
/// tests also run under the tsan preset via scripts/check.sh.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "storage/column_store.h"

namespace ofi::storage {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema SalesSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"region", TypeId::kString, ""},
                 Column{"amount", TypeId::kInt64, ""}});
}

/// Randomized sales rows: small key domains (forces collisions), NULLs in
/// both a key column and the aggregated column.
std::vector<Row> RandomRows(size_t n, uint64_t seed) {
  ofi::Rng rng(seed);
  const char* regions[] = {"east", "west", "north", "south", "central"};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row r;
    r.push_back(Value(rng.Uniform(0, 6)));
    if (rng.Uniform(0, 9) == 0) {
      r.push_back(Value::Null());
    } else {
      r.push_back(Value(std::string(regions[rng.Uniform(0, 4)])));
    }
    if (rng.Uniform(0, 7) == 0) {
      r.push_back(Value::Null());
    } else {
      r.push_back(Value(rng.Uniform(-500, 499)));
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

ColumnTable BuildTable(const std::vector<Row>& rows) {
  ColumnTable t(SalesSchema());
  for (const auto& r : rows) EXPECT_TRUE(t.Append(r).ok());
  t.Seal();
  return t;
}

/// Reference aggregate state, mirroring the kernel's NULL semantics.
struct RefState {
  int64_t count_star = 0;
  int64_t count = 0;
  int64_t sum = 0;
  std::optional<int64_t> min, max;
};

/// Brute-force reference: group key rendered as a collision-free string.
std::map<std::string, RefState> Reference(const std::vector<Row>& rows,
                                          const std::vector<size_t>& key_cols,
                                          size_t agg_col) {
  std::map<std::string, RefState> ref;
  for (const auto& r : rows) {
    std::string key;
    for (size_t kc : key_cols) {
      key += r[kc].is_null() ? std::string("\x01<null>") : r[kc].ToString();
      key += '\x1f';
    }
    RefState& s = ref[key];
    ++s.count_star;
    if (!r[agg_col].is_null()) {
      const int64_t v = r[agg_col].AsInt();
      ++s.count;
      s.sum += v;
      s.min = s.min ? std::min(*s.min, v) : v;
      s.max = s.max ? std::max(*s.max, v) : v;
    }
  }
  return ref;
}

std::vector<GroupedAggSpec> AllAggs() {
  return {{GroupedAggOp::kCountStar, ""},
          {GroupedAggOp::kCount, "amount"},
          {GroupedAggOp::kSum, "amount"},
          {GroupedAggOp::kMin, "amount"},
          {GroupedAggOp::kMax, "amount"}};
}

/// Renders result group g with the same key encoding as Reference().
std::string ResultKey(const GroupedAggResult& res, size_t g) {
  std::string key;
  for (const auto& kc : res.keys) {
    if (kc.valid[g] == 0) {
      key += "\x01<null>";
    } else if (kc.type == TypeId::kString) {
      key += "'" + kc.strs[g] + "'";  // Value::ToString quotes strings
    } else {
      key += std::to_string(kc.ints[g]);
    }
    key += '\x1f';
  }
  return key;
}

void ExpectMatchesReference(const GroupedAggResult& res,
                            const std::map<std::string, RefState>& ref) {
  ASSERT_EQ(res.num_groups, ref.size());
  for (size_t g = 0; g < res.num_groups; ++g) {
    const std::string key = ResultKey(res, g);
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "unexpected group " << key;
    const RefState& s = it->second;
    EXPECT_EQ(res.aggs[0].value[g], s.count_star) << key;
    EXPECT_EQ(res.aggs[1].value[g], s.count) << key;
    EXPECT_EQ(res.aggs[2].value[g], s.sum) << key;
    if (s.count > 0) {
      EXPECT_EQ(res.aggs[3].value[g], *s.min) << key;
      EXPECT_EQ(res.aggs[4].value[g], *s.max) << key;
    }
    // SUM/MIN/MAX over zero non-null inputs surface as count == 0 (the
    // executor renders that NULL).
    EXPECT_EQ(res.aggs[2].count[g], s.count) << key;
  }
}

TEST(ColumnGroupByTest, IntKeyMatchesBruteForce) {
  const auto rows = RandomRows(10'000, /*seed=*/7);
  ColumnTable t = BuildTable(rows);
  auto res = t.GroupedAggregate({"k"}, AllAggs());
  ASSERT_TRUE(res.ok());
  ExpectMatchesReference(*res, Reference(rows, {0}, 2));
}

TEST(ColumnGroupByTest, DictStringKeyWithNullsMatchesBruteForce) {
  const auto rows = RandomRows(10'000, /*seed=*/11);
  ColumnTable t = BuildTable(rows);
  auto res = t.GroupedAggregate({"region"}, AllAggs());
  ASSERT_TRUE(res.ok());
  ExpectMatchesReference(*res, Reference(rows, {1}, 2));
}

TEST(ColumnGroupByTest, MultiColumnKeyMatchesBruteForce) {
  const auto rows = RandomRows(10'000, /*seed=*/13);
  ColumnTable t = BuildTable(rows);
  auto res = t.GroupedAggregate({"region", "k"}, AllAggs());
  ASSERT_TRUE(res.ok());
  ExpectMatchesReference(*res, Reference(rows, {1, 0}, 2));
}

TEST(ColumnGroupByTest, SelectionFedMatchesFilteredBruteForce) {
  const auto rows = RandomRows(10'000, /*seed=*/17);
  ColumnTable t = BuildTable(rows);
  auto sel = t.FilterBetweenInt64("amount", 0, 250, {});
  ASSERT_TRUE(sel.ok());
  auto res = t.GroupedAggregate({"k"}, AllAggs(), &*sel);
  ASSERT_TRUE(res.ok());
  std::vector<Row> kept;
  for (uint32_t r : *sel) kept.push_back(rows[r]);
  ExpectMatchesReference(*res, Reference(kept, {0}, 2));
}

TEST(ColumnGroupByTest, EmptySelectionYieldsZeroGroups) {
  ColumnTable t = BuildTable(RandomRows(1'000, /*seed=*/19));
  std::vector<uint32_t> none;
  ScanStats stats;
  auto res = t.GroupedAggregate({"k"}, AllAggs(), &none, {}, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_groups, 0u);
  EXPECT_EQ(stats.chunks_scanned, 0u);
  EXPECT_EQ(stats.chunks_pruned, stats.chunks_total);
}

TEST(ColumnGroupByTest, SerialAndMorselParallelAreBitIdentical) {
  const auto rows = RandomRows(40'000, /*seed=*/23);
  ColumnTable t = BuildTable(rows);
  common::ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    auto serial = t.GroupedAggregate({"region", "k"}, AllAggs());
    ASSERT_TRUE(serial.ok());
    ScanOptions par;
    par.parallel = true;
    par.pool = &pool;
    par.morsel_chunks = 1 + static_cast<size_t>(round);
    auto parallel = t.GroupedAggregate({"region", "k"}, AllAggs(), nullptr, par);
    ASSERT_TRUE(parallel.ok());
    // Bit-identical: same group order (first appearance in chunk order),
    // same key payloads, same aggregate states.
    ASSERT_EQ(serial->num_groups, parallel->num_groups);
    for (size_t k = 0; k < serial->keys.size(); ++k) {
      EXPECT_EQ(serial->keys[k].ints, parallel->keys[k].ints);
      EXPECT_EQ(serial->keys[k].strs, parallel->keys[k].strs);
      EXPECT_EQ(serial->keys[k].valid, parallel->keys[k].valid);
    }
    for (size_t j = 0; j < serial->aggs.size(); ++j) {
      EXPECT_EQ(serial->aggs[j].value, parallel->aggs[j].value);
      EXPECT_EQ(serial->aggs[j].count, parallel->aggs[j].count);
    }
  }
}

TEST(ColumnGroupByTest, SelectionPruningCarriesThroughGroupBy) {
  // Clustered int key: a narrow filter selects rows in one chunk, so the
  // grouped kernel must charge only that chunk's column set.
  Schema schema({Column{"v", TypeId::kInt64, ""},
                 Column{"g", TypeId::kInt64, ""}});
  ColumnTable t(schema);
  const size_t chunks = 6;
  for (size_t i = 0; i < chunks * ColumnTable::kChunkRows; ++i) {
    ASSERT_TRUE(t.Append({Value(static_cast<int64_t>(i)),
                          Value(static_cast<int64_t>(i % 3))}).ok());
  }
  t.Seal();
  auto sel = t.FilterBetweenInt64("v", 10, 20, {});
  ASSERT_TRUE(sel.ok());
  ScanStats stats;
  auto res = t.GroupedAggregate({"g"}, {{GroupedAggOp::kSum, "v"}}, &*sel, {},
                                &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_groups, 3u);
  // Two used columns (g, v) in exactly one chunk; 5 of 6 chunks pruned.
  EXPECT_EQ(stats.chunks_total, chunks * 2);
  EXPECT_EQ(stats.chunks_scanned, 2u);
  EXPECT_EQ(stats.chunks_pruned, (chunks - 1) * 2);
}

TEST(ColumnGroupByTest, RejectsUnsupportedKeyAndAggTypes) {
  Schema schema({Column{"d", TypeId::kDouble, ""},
                 Column{"v", TypeId::kInt64, ""}});
  ColumnTable t(schema);
  ASSERT_TRUE(t.Append({Value(1.5), Value(int64_t{1})}).ok());
  t.Seal();
  // Double group key: not a hashable kernel key type.
  EXPECT_FALSE(t.GroupedAggregate({"d"}, {{GroupedAggOp::kSum, "v"}}).ok());
  // Double aggregate input: kernels are int64-only.
  EXPECT_FALSE(t.GroupedAggregate({"v"}, {{GroupedAggOp::kSum, "d"}}).ok());
  // No group keys is the global kernels' job, not this one's.
  EXPECT_FALSE(t.GroupedAggregate({}, {{GroupedAggOp::kSum, "v"}}).ok());
  // Unknown column.
  EXPECT_FALSE(t.GroupedAggregate({"nope"}, {{GroupedAggOp::kSum, "v"}}).ok());
}

TEST(ColumnGroupByTest, MaterializeRowsMatchesGatherWithChunkOnDemandCost) {
  const auto rows = RandomRows(3 * ColumnTable::kChunkRows, /*seed=*/29);
  ColumnTable t = BuildTable(rows);
  // A selection confined to the second chunk.
  std::vector<uint32_t> sel;
  for (uint32_t r = ColumnTable::kChunkRows + 5;
       r < ColumnTable::kChunkRows + 105; ++r) {
    sel.push_back(r);
  }
  ScanStats stats;
  auto mat = t.MaterializeRows(sel, &stats);
  ASSERT_TRUE(mat.ok());
  auto gathered = t.Gather(sel);
  ASSERT_TRUE(gathered.ok());
  ASSERT_EQ(mat->size(), gathered->size());
  for (size_t i = 0; i < mat->size(); ++i) {
    ASSERT_EQ((*mat)[i].size(), (*gathered)[i].size());
    for (size_t c = 0; c < (*mat)[i].size(); ++c) {
      EXPECT_EQ((*mat)[i][c].ToString(), (*gathered)[i][c].ToString());
    }
  }
  // One touched chunk, three columns: 3 column-chunks scanned of 9 total.
  EXPECT_EQ(stats.chunks_total, 9u);
  EXPECT_EQ(stats.chunks_scanned, 3u);
  EXPECT_EQ(stats.chunks_pruned, 6u);
}

TEST(ColumnGroupByTest, PruneEstimatesMatchClusteredLayout) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  const size_t chunks = 5;
  for (size_t i = 0; i < chunks * ColumnTable::kChunkRows; ++i) {
    ASSERT_TRUE(t.Append({Value(static_cast<int64_t>(i))}).ok());
  }
  t.Seal();
  const int64_t n = ColumnTable::kChunkRows;
  auto est = t.EstimatePruningInt64("v", 2 * n + 1, 2 * n + 10);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->chunks_total, chunks);
  EXPECT_EQ(est->chunks_prunable, chunks - 1);
}

}  // namespace
}  // namespace ofi::storage
