#include "storage/mvcc_table.h"

#include <gtest/gtest.h>

#include "txn/local_txn_manager.h"

namespace ofi::storage {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;
using txn::LocalTxnManager;
using txn::Snapshot;
using txn::VisibilityChecker;
using txn::Xid;

Schema TestSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
}

class MvccTableTest : public ::testing::Test {
 protected:
  MvccTableTest() : table_(TestSchema()) {}

  // Runs `fn` inside a fresh committed transaction.
  template <typename Fn>
  void Committed(Fn fn) {
    Xid xid = mgr_.Begin();
    Snapshot snap = mgr_.TakeSnapshot();
    VisibilityChecker vis(&snap, &mgr_.clog(), xid);
    fn(xid, vis);
    ASSERT_TRUE(mgr_.Commit(xid).ok());
  }

  VisibilityChecker ReaderAt(Xid* out_xid, Snapshot* snap) {
    *out_xid = mgr_.Begin();
    *snap = mgr_.TakeSnapshot();
    return VisibilityChecker(snap, &mgr_.clog(), *out_xid);
  }

  MvccTable table_;
  LocalTxnManager mgr_;
};

TEST_F(MvccTableTest, InsertThenReadVisibleAfterCommit) {
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    ASSERT_TRUE(table_.Insert(Value(1), {Value(1), Value(100)}, xid, vis).ok());
  });
  Xid rx;
  Snapshot snap;
  auto vis = ReaderAt(&rx, &snap);
  auto row = table_.Read(Value(1), vis);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 100);
}

TEST_F(MvccTableTest, UncommittedInsertInvisibleToOthersVisibleToSelf) {
  Xid writer = mgr_.Begin();
  Snapshot wsnap = mgr_.TakeSnapshot();
  VisibilityChecker wvis(&wsnap, &mgr_.clog(), writer);
  ASSERT_TRUE(table_.Insert(Value(1), {Value(1), Value(5)}, writer, wvis).ok());

  // Writer sees its own write.
  EXPECT_TRUE(table_.Read(Value(1), wvis).ok());

  // A concurrent reader does not.
  Xid rx;
  Snapshot rsnap;
  auto rvis = ReaderAt(&rx, &rsnap);
  EXPECT_TRUE(table_.Read(Value(1), rvis).status().IsNotFound());
  ASSERT_TRUE(mgr_.Commit(writer).ok());
}

TEST_F(MvccTableTest, SnapshotIsolationReaderKeepsOldVersion) {
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    ASSERT_TRUE(table_.Insert(Value(7), {Value(7), Value(1)}, xid, vis).ok());
  });
  // Reader takes its snapshot now.
  Xid rx;
  Snapshot rsnap;
  auto rvis = ReaderAt(&rx, &rsnap);

  // A later writer updates and commits.
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    ASSERT_TRUE(table_.Update(Value(7), {Value(7), Value(2)}, xid, vis).ok());
  });

  // The old reader still sees version 1 (repeatable read).
  auto row = table_.Read(Value(7), rvis);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 1);

  // A fresh reader sees version 2.
  Xid rx2;
  Snapshot rsnap2;
  auto rvis2 = ReaderAt(&rx2, &rsnap2);
  EXPECT_EQ(table_.Read(Value(7), rvis2).ValueOrDie()[1].AsInt(), 2);
}

TEST_F(MvccTableTest, WriteWriteConflictAbortsSecondWriter) {
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    ASSERT_TRUE(table_.Insert(Value(3), {Value(3), Value(0)}, xid, vis).ok());
  });
  Xid w1 = mgr_.Begin();
  Snapshot s1 = mgr_.TakeSnapshot();
  VisibilityChecker v1(&s1, &mgr_.clog(), w1);
  Xid w2 = mgr_.Begin();
  Snapshot s2 = mgr_.TakeSnapshot();
  VisibilityChecker v2(&s2, &mgr_.clog(), w2);

  ASSERT_TRUE(table_.Update(Value(3), {Value(3), Value(10)}, w1, v1).ok());
  // Second writer must abort: first-updater-wins.
  EXPECT_TRUE(table_.Update(Value(3), {Value(3), Value(20)}, w2, v2).IsAborted());
  ASSERT_TRUE(mgr_.Commit(w1).ok());
  ASSERT_TRUE(mgr_.Abort(w2).ok());
}

TEST_F(MvccTableTest, DeleteHidesRowAfterCommit) {
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    ASSERT_TRUE(table_.Insert(Value(4), {Value(4), Value(9)}, xid, vis).ok());
  });
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    ASSERT_TRUE(table_.Delete(Value(4), xid, vis).ok());
  });
  Xid rx;
  Snapshot snap;
  auto vis = ReaderAt(&rx, &snap);
  EXPECT_TRUE(table_.Read(Value(4), vis).status().IsNotFound());
}

TEST_F(MvccTableTest, AbortedInsertInvisibleAndKeyReusable) {
  Xid w = mgr_.Begin();
  Snapshot ws = mgr_.TakeSnapshot();
  VisibilityChecker wv(&ws, &mgr_.clog(), w);
  ASSERT_TRUE(table_.Insert(Value(5), {Value(5), Value(1)}, w, wv).ok());
  ASSERT_TRUE(mgr_.Abort(w).ok());

  Xid rx;
  Snapshot snap;
  auto vis = ReaderAt(&rx, &snap);
  EXPECT_TRUE(table_.Read(Value(5), vis).status().IsNotFound());

  // Key can be inserted again by a new transaction.
  Committed([&](Xid xid, const VisibilityChecker& vis2) {
    EXPECT_TRUE(table_.Insert(Value(5), {Value(5), Value(2)}, xid, vis2).ok());
  });
}

TEST_F(MvccTableTest, RollbackKeyClearsXmax) {
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    ASSERT_TRUE(table_.Insert(Value(6), {Value(6), Value(1)}, xid, vis).ok());
  });
  Xid w = mgr_.Begin();
  Snapshot ws = mgr_.TakeSnapshot();
  VisibilityChecker wv(&ws, &mgr_.clog(), w);
  ASSERT_TRUE(table_.Update(Value(6), {Value(6), Value(2)}, w, wv).ok());
  table_.RollbackKey(Value(6), w);
  ASSERT_TRUE(mgr_.Abort(w).ok());

  // Another writer can now update without a conflict.
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    EXPECT_TRUE(table_.Update(Value(6), {Value(6), Value(3)}, xid, vis).ok());
  });
  Xid rx;
  Snapshot snap;
  auto vis = ReaderAt(&rx, &snap);
  EXPECT_EQ(table_.Read(Value(6), vis).ValueOrDie()[1].AsInt(), 3);
}

TEST_F(MvccTableTest, VacuumRemovesDeadVersions) {
  for (int i = 0; i < 5; ++i) {
    Committed([&](Xid xid, const VisibilityChecker& vis) {
      if (i == 0) {
        ASSERT_TRUE(table_.Insert(Value(8), {Value(8), Value(i)}, xid, vis).ok());
      } else {
        ASSERT_TRUE(table_.Update(Value(8), {Value(8), Value(i)}, xid, vis).ok());
      }
    });
  }
  EXPECT_EQ(table_.num_versions(), 5u);
  size_t removed = table_.Vacuum(mgr_.next_xid(), mgr_.clog());
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(table_.num_versions(), 1u);
  // Latest version still readable.
  Xid rx;
  Snapshot snap;
  auto vis = ReaderAt(&rx, &snap);
  EXPECT_EQ(table_.Read(Value(8), vis).ValueOrDie()[1].AsInt(), 4);
}

TEST_F(MvccTableTest, ScanVisibleReturnsOnlyLiveRows) {
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(table_.Insert(Value(i), {Value(i), Value(i * 10)}, xid, vis).ok());
    }
  });
  Committed([&](Xid xid, const VisibilityChecker& vis) {
    for (int i = 0; i < 10; i += 2) {
      ASSERT_TRUE(table_.Delete(Value(i), xid, vis).ok());
    }
  });
  Xid rx;
  Snapshot snap;
  auto vis = ReaderAt(&rx, &snap);
  EXPECT_EQ(table_.ScanVisible(vis).size(), 5u);
}

TEST_F(MvccTableTest, ArityMismatchRejected) {
  Xid w = mgr_.Begin();
  Snapshot ws = mgr_.TakeSnapshot();
  VisibilityChecker wv(&ws, &mgr_.clog(), w);
  EXPECT_TRUE(table_.Insert(Value(1), {Value(1)}, w, wv).IsInvalidArgument());
  ASSERT_TRUE(mgr_.Abort(w).ok());
}

}  // namespace
}  // namespace ofi::storage
