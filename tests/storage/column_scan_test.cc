/// \file column_scan_test.cc
/// \brief Zone-map pruning edge cases and morsel-parallel vs serial scan
/// equivalence (the determinism contract of DESIGN.md §3c). The randomized
/// equivalence tests also run under the tsan preset via scripts/check.sh.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "storage/column_store.h"

namespace ofi::storage {
namespace {

using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema IntSchema() { return Schema({Column{"v", TypeId::kInt64, ""}}); }

/// kChunkRows-aligned table with clustered (monotone) keys: chunk c spans
/// exactly [c * kChunkRows, (c+1) * kChunkRows).
ColumnTable ClusteredTable(size_t chunks) {
  ColumnTable t(IntSchema());
  for (size_t i = 0; i < chunks * ColumnTable::kChunkRows; ++i) {
    EXPECT_TRUE(t.Append({Value(static_cast<int64_t>(i))}).ok());
  }
  t.Seal();
  return t;
}

TEST(ZoneMapPruningTest, ClusteredKeysPruneNonOverlappingChunks) {
  ColumnTable t = ClusteredTable(8);
  const int64_t n = ColumnTable::kChunkRows;
  ScanStats stats;
  // Range fully inside chunk 2: 7 of 8 chunks must be pruned.
  auto sel = t.FilterBetweenInt64("v", 2 * n + 10, 2 * n + 20, {}, &stats);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 11u);
  EXPECT_EQ(stats.chunks_total, 8u);
  EXPECT_EQ(stats.chunks_pruned, 7u);
  EXPECT_EQ(stats.chunks_scanned, 1u);
  EXPECT_LE(stats.rows_decoded, static_cast<size_t>(n));
  EXPECT_EQ(stats.rows_matched, sel->size());
}

TEST(ZoneMapPruningTest, AllChunksPruned) {
  ColumnTable t = ClusteredTable(4);
  ScanStats stats;
  auto sel = t.FilterGeInt64("v", 1'000'000'000, {}, &stats);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());
  EXPECT_EQ(stats.chunks_pruned, 4u);
  EXPECT_EQ(stats.chunks_scanned, 0u);
  EXPECT_EQ(stats.rows_decoded, 0u);
}

TEST(ZoneMapPruningTest, FullRangeEmitsWithoutDecoding) {
  ColumnTable t = ClusteredTable(4);
  ScanStats stats;
  // Every chunk lies fully inside the range and has no NULLs: indices are
  // emitted straight from chunk bounds, no value decoded.
  auto sel = t.FilterGeInt64("v", 0, {}, &stats);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 4 * ColumnTable::kChunkRows);
  EXPECT_EQ(stats.rows_decoded, 0u);
  EXPECT_EQ(stats.chunks_pruned, 4u);
}

TEST(ZoneMapPruningTest, EmptyTable) {
  ColumnTable t(IntSchema());
  t.Seal();
  ScanStats stats;
  auto sel = t.FilterGtInt64("v", 0, {}, &stats);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());
  EXPECT_EQ(stats.chunks_total, 0u);
  auto sum = t.SumInt64("v");
  ASSERT_TRUE(sum.ok());
  EXPECT_FALSE(sum->has_value());
  auto cnt = t.CountInt64("v");
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(*cnt, 0);
}

TEST(ZoneMapPruningTest, SingleChunk) {
  ColumnTable t(IntSchema());
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(t.Append({Value(i)}).ok());
  t.Seal();
  ScanStats stats;
  auto sel = t.FilterBetweenInt64("v", 40, 49, {}, &stats);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 10u);
  EXPECT_EQ(stats.chunks_total, 1u);
  EXPECT_EQ(stats.chunks_scanned, 1u);
}

TEST(ZoneMapPruningTest, AllNullChunkIsPruned) {
  ColumnTable t(IntSchema());
  for (size_t i = 0; i < ColumnTable::kChunkRows; ++i) {
    ASSERT_TRUE(t.Append({Value::Null()}).ok());
  }
  for (size_t i = 0; i < ColumnTable::kChunkRows; ++i) {
    ASSERT_TRUE(t.Append({Value(static_cast<int64_t>(i))}).ok());
  }
  t.Seal();
  ScanStats stats;
  auto sel = t.FilterGeInt64("v", std::numeric_limits<int64_t>::min(), {}, &stats);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), ColumnTable::kChunkRows);
  // The all-NULL chunk never scans; zone maps carry its null count.
  EXPECT_GE(stats.chunks_pruned, 1u);
  for (uint32_t idx : *sel) EXPECT_GE(idx, ColumnTable::kChunkRows);
}

TEST(ZoneMapPruningTest, BoundExactlyAtChunkMinAndMax) {
  ColumnTable t = ClusteredTable(3);
  const int64_t n = ColumnTable::kChunkRows;
  // lo == chunk 1's min, hi == chunk 1's max: chunk 1 full-range-matches,
  // chunks 0 and 2 prune. Boundary rows must be included exactly once.
  ScanStats stats;
  auto sel = t.FilterBetweenInt64("v", n, 2 * n - 1, {}, &stats);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), static_cast<size_t>(n));
  EXPECT_EQ((*sel)[0], static_cast<uint32_t>(n));
  EXPECT_EQ(sel->back(), static_cast<uint32_t>(2 * n - 1));
  EXPECT_EQ(stats.chunks_scanned, 0u);  // prune + full-range short-circuit
  // One past the max: nothing from chunk 1's right edge leaks.
  auto above = t.FilterGtInt64("v", 2 * n - 1, {}, &stats);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(above->front(), static_cast<uint32_t>(2 * n));
}

TEST(ZoneMapPruningTest, MinMaxCountAnsweredFromZoneMapsAlone) {
  ColumnTable t = ClusteredTable(4);
  ScanStats stats;
  auto mn = t.MinInt64("v", nullptr, {}, &stats);
  auto mx = t.MaxInt64("v", nullptr, {}, &stats);
  auto cnt = t.CountInt64("v", nullptr, {}, &stats);
  ASSERT_TRUE(mn.ok() && mx.ok() && cnt.ok());
  EXPECT_EQ(**mn, 0);
  EXPECT_EQ(**mx, static_cast<int64_t>(4 * ColumnTable::kChunkRows - 1));
  EXPECT_EQ(*cnt, static_cast<int64_t>(4 * ColumnTable::kChunkRows));
  EXPECT_EQ(stats.rows_decoded, 0u);
  EXPECT_EQ(stats.chunks_scanned, 0u);
}

TEST(ZoneMapPruningTest, StringEqualityPrunesByLexicographicSpan) {
  ColumnTable t(Schema({Column{"s", TypeId::kString, ""}}));
  for (size_t i = 0; i < ColumnTable::kChunkRows; ++i) {
    ASSERT_TRUE(t.Append({Value(i % 2 ? "apple" : "avocado")}).ok());
  }
  for (size_t i = 0; i < ColumnTable::kChunkRows; ++i) {
    ASSERT_TRUE(t.Append({Value(i % 2 ? "mango" : "melon")}).ok());
  }
  t.Seal();
  ScanStats stats;
  auto sel = t.FilterEqString("s", "mango", {}, &stats);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), ColumnTable::kChunkRows / 2);
  EXPECT_EQ(stats.chunks_pruned, 1u);  // the a* chunk cannot contain "mango"
  EXPECT_EQ(stats.chunks_scanned, 1u);
}

TEST(ZoneMapPruningTest, SumOverRleRunsDoesNotDecodeRows) {
  ColumnTable t(IntSchema());
  const size_t n = 2 * ColumnTable::kChunkRows;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Append({Value(static_cast<int64_t>(i / 1024))}).ok());
  }
  t.Seal();
  ScanStats stats;
  auto sum = t.SumInt64("v", nullptr, {}, &stats);
  ASSERT_TRUE(sum.ok());
  int64_t expect = 0;
  for (size_t i = 0; i < n; ++i) expect += static_cast<int64_t>(i / 1024);
  EXPECT_EQ(**sum, expect);
  // Runs of 1024 identical values: rows_decoded counts runs, not rows.
  EXPECT_LE(stats.rows_decoded, n / 1024 + 2);
}

// ---------------------------------------------------------------------------
// Morsel-parallel vs serial equivalence. Randomized data (values, NULLs,
// runs), every kernel, multiple morsel sizes — results must be bit-identical.
// ---------------------------------------------------------------------------

ColumnTable RandomTable(uint64_t seed, size_t rows) {
  Rng rng(seed);
  ColumnTable t(Schema({Column{"k", TypeId::kInt64, ""},
                        Column{"s", TypeId::kString, ""}}));
  static const char* kTags[] = {"red", "green", "blue", "cyan"};
  size_t i = 0;
  while (i < rows) {
    // Mix runs (RLE-friendly) and unique stretches (plain), with NULLs.
    size_t run = 1 + rng.Next() % 512;
    bool make_run = rng.Next() % 2 == 0;
    int64_t run_value = static_cast<int64_t>(rng.Next() % 10'000);
    for (size_t r = 0; r < run && i < rows; ++r, ++i) {
      bool null_row = rng.Next() % 10 == 0;
      int64_t v = make_run ? run_value : static_cast<int64_t>(rng.Next() % 10'000);
      EXPECT_TRUE(t.Append({null_row ? Value::Null() : Value(v),
                            Value(kTags[rng.Next() % 4])})
                      .ok());
    }
  }
  t.Seal();
  return t;
}

TEST(MorselParallelTest, RandomizedParallelMatchesSerialBitIdentical) {
  common::ThreadPool pool(4);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ColumnTable t = RandomTable(seed, 6 * ColumnTable::kChunkRows + 123);
    for (size_t morsel_chunks : {1, 2, 3, 16}) {
      ScanOptions par{/*parallel=*/true, &pool, morsel_chunks};
      ScanOptions ser{/*parallel=*/false, nullptr, morsel_chunks};

      auto s1 = t.FilterBetweenInt64("k", 2'000, 7'999, ser, nullptr);
      auto p1 = t.FilterBetweenInt64("k", 2'000, 7'999, par, nullptr);
      ASSERT_TRUE(s1.ok() && p1.ok());
      EXPECT_EQ(*s1, *p1) << "seed=" << seed << " morsel=" << morsel_chunks;

      auto s2 = t.FilterGtInt64("k", 5'000, ser, nullptr);
      auto p2 = t.FilterGtInt64("k", 5'000, par, nullptr);
      ASSERT_TRUE(s2.ok() && p2.ok());
      EXPECT_EQ(*s2, *p2);

      auto s3 = t.FilterEqString("s", "blue", ser, nullptr);
      auto p3 = t.FilterEqString("s", "blue", par, nullptr);
      ASSERT_TRUE(s3.ok() && p3.ok());
      EXPECT_EQ(*s3, *p3);

      auto s4 = t.SumInt64("k", nullptr, ser, nullptr);
      auto p4 = t.SumInt64("k", nullptr, par, nullptr);
      ASSERT_TRUE(s4.ok() && p4.ok());
      EXPECT_EQ(*s4, *p4);
    }
  }
}

TEST(MorselParallelTest, ParallelStatsMatchSerialStats) {
  common::ThreadPool pool(4);
  ColumnTable t = RandomTable(11, 8 * ColumnTable::kChunkRows);
  ScanStats ser_stats, par_stats;
  auto s = t.FilterBetweenInt64("k", 1'000, 3'000, {false, nullptr, 2}, &ser_stats);
  auto p = t.FilterBetweenInt64("k", 1'000, 3'000, {true, &pool, 2}, &par_stats);
  ASSERT_TRUE(s.ok() && p.ok());
  EXPECT_EQ(ser_stats.chunks_total, par_stats.chunks_total);
  EXPECT_EQ(ser_stats.chunks_scanned, par_stats.chunks_scanned);
  EXPECT_EQ(ser_stats.chunks_pruned, par_stats.chunks_pruned);
  EXPECT_EQ(ser_stats.rows_decoded, par_stats.rows_decoded);
  EXPECT_EQ(ser_stats.rows_matched, par_stats.rows_matched);
  EXPECT_EQ(ser_stats.morsels, par_stats.morsels);
  EXPECT_GT(par_stats.morsels, 1u);
}

TEST(MorselParallelTest, SharedPoolDefault) {
  // parallel=true with no explicit pool uses ThreadPool::Shared().
  ColumnTable t = ClusteredTable(4);
  ScanOptions opts;
  opts.parallel = true;
  auto sel = t.FilterGeInt64("v", 0, opts, nullptr);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 4 * ColumnTable::kChunkRows);
}

TEST(ZoneSummaryTest, ExactRollupWithoutDecode) {
  ColumnTable t(Schema({Column{"k", TypeId::kInt64, ""},
                        Column{"s", TypeId::kString, ""}}));
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.Append({i % 7 == 0 ? Value::Null() : Value(i),
                          Value(i % 2 ? "aa" : "zz")})
                    .ok());
  }
  t.Seal();
  auto ks = t.ZoneSummary("k");
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->rows, 5000u);
  EXPECT_EQ(ks->nulls, 5000u / 7 + 1);
  ASSERT_TRUE(ks->has_int_range);
  EXPECT_EQ(ks->min, 1);
  EXPECT_EQ(ks->max, 4999);
  auto ss = t.ZoneSummary("s");
  ASSERT_TRUE(ss.ok());
  ASSERT_TRUE(ss->has_string_range);
  EXPECT_EQ(ss->str_min, "aa");
  EXPECT_EQ(ss->str_max, "zz");
  EXPECT_EQ(ss->dict_ndv, 2u);
  EXPECT_GT(ss->plain_bytes, 0u);
}

}  // namespace
}  // namespace ofi::storage
