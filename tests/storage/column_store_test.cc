#include "storage/column_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ofi::storage {
namespace {

using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema SalesSchema() {
  return Schema({Column{"region", TypeId::kString, ""},
                 Column{"amount", TypeId::kInt64, ""},
                 Column{"price", TypeId::kDouble, ""}});
}

TEST(EncodingTest, RleCompressesRuns) {
  std::vector<int64_t> runs(10'000, 7);
  Int64Chunk chunk = EncodeInt64(runs);
  EXPECT_EQ(chunk.encoding, Encoding::kRle);
  EXPECT_LT(chunk.CompressedBytes(), runs.size() * sizeof(int64_t) / 100);
  std::vector<int64_t> decoded;
  chunk.Decode(&decoded);
  EXPECT_EQ(decoded, runs);
}

TEST(EncodingTest, RandomDataStaysPlain) {
  Rng rng(1);
  std::vector<int64_t> random;
  for (int i = 0; i < 1000; ++i) random.push_back(static_cast<int64_t>(rng.Next()));
  Int64Chunk chunk = EncodeInt64(random);
  EXPECT_EQ(chunk.encoding, Encoding::kPlain);
}

TEST(EncodingTest, DictCompressesLowCardinalityStrings) {
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 2 ? "east" : "west");
  StringChunk chunk = EncodeString(values);
  EXPECT_EQ(chunk.encoding, Encoding::kDict);
  EXPECT_EQ(chunk.At(0), "west");
  EXPECT_EQ(chunk.At(1), "east");
}

TEST(EncodingTest, UniqueStringsStayPlain) {
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) values.push_back("unique_" + std::to_string(i));
  EXPECT_EQ(EncodeString(values).encoding, Encoding::kPlain);
}

class ColumnTableTest : public ::testing::Test {
 protected:
  ColumnTableTest() : table_(SalesSchema()) {
    Rng rng(2);
    for (int64_t i = 0; i < kRows; ++i) {
      const char* region = i % 3 == 0 ? "east" : (i % 3 == 1 ? "west" : "north");
      EXPECT_TRUE(table_
                      .Append({Value(region), Value(i % 100),
                               Value(static_cast<double>(i) * 0.5)})
                      .ok());
    }
    table_.Seal();
  }
  static constexpr int64_t kRows = 10'000;
  ColumnTable table_;
};

TEST_F(ColumnTableTest, FilterGtMatchesRowStoreSemantics) {
  auto sel = table_.FilterGtInt64("amount", 89);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), kRows / 100 * 10);
  for (uint32_t idx : *sel) EXPECT_GT(static_cast<int64_t>(idx % 100), 89);
}

TEST_F(ColumnTableTest, FilterEqStringUsesDictionary) {
  auto sel = table_.FilterEqString("region", "east");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), (kRows + 2) / 3);
  auto none = table_.FilterEqString("region", "south");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(ColumnTableTest, SumWithAndWithoutSelection) {
  auto total = table_.SumInt64("amount");
  ASSERT_TRUE(total.ok());
  // sum over i%100 for 10k rows = 100 * (0+..+99) = 100*4950.
  EXPECT_EQ(*total, 100 * 4950);
  auto sel = table_.FilterGtInt64("amount", 97);  // values 98, 99
  ASSERT_TRUE(sel.ok());
  auto partial = table_.SumInt64("amount", &*sel);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(*partial, 100 * (98 + 99));
}

TEST_F(ColumnTableTest, GatherMaterializesRows) {
  auto sel = table_.FilterEqString("region", "north");
  ASSERT_TRUE(sel.ok());
  auto rows = table_.Gather(*sel);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), sel->size());
  EXPECT_EQ((*rows)[0][0].AsString(), "north");
  EXPECT_EQ((*rows)[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ((*rows)[0][2].AsDouble(), 1.0);
}

TEST_F(ColumnTableTest, CompressionSavesSpace) {
  EXPECT_LT(table_.CompressedBytes(), table_.PlainBytes());
}

TEST_F(ColumnTableTest, TypeMismatchRejected) {
  EXPECT_FALSE(table_.FilterGtInt64("region", 1).ok());
  EXPECT_FALSE(table_.FilterEqString("amount", "x").ok());
  EXPECT_FALSE(table_.SumInt64("nope").ok());
}

TEST(ColumnTableEdgeTest, UnsealedTailInvisibleUntilSeal) {
  ColumnTable t(SalesSchema());
  ASSERT_TRUE(t.Append({Value("east"), Value(1), Value(1.0)}).ok());
  auto sel = t.FilterGtInt64("amount", 0);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());  // buffered, not yet encoded
  t.Seal();
  sel = t.FilterGtInt64("amount", 0);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 1u);
}

TEST(ColumnTableEdgeTest, ArityMismatch) {
  ColumnTable t(SalesSchema());
  EXPECT_TRUE(t.Append({Value("east")}).IsInvalidArgument());
}

TEST(ColumnTableEdgeTest, MultiChunkBoundary) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  const int64_t n = ColumnTable::kChunkRows * 2 + 17;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Append({Value(i)}).ok());
  }
  t.Seal();
  auto sel = t.FilterGtInt64("v", -1);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), static_cast<size_t>(n));
  auto sum = t.SumInt64("v");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, n * (n - 1) / 2);
}

}  // namespace
}  // namespace ofi::storage
