#include "storage/column_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ofi::storage {
namespace {

using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema SalesSchema() {
  return Schema({Column{"region", TypeId::kString, ""},
                 Column{"amount", TypeId::kInt64, ""},
                 Column{"price", TypeId::kDouble, ""}});
}

TEST(EncodingTest, RleCompressesRuns) {
  std::vector<int64_t> runs(10'000, 7);
  Int64Chunk chunk = EncodeInt64(runs);
  EXPECT_EQ(chunk.encoding, Encoding::kRle);
  EXPECT_LT(chunk.CompressedBytes(), runs.size() * sizeof(int64_t) / 100);
  std::vector<int64_t> decoded;
  chunk.Decode(&decoded);
  EXPECT_EQ(decoded, runs);
}

TEST(EncodingTest, RandomDataStaysPlain) {
  Rng rng(1);
  std::vector<int64_t> random;
  for (int i = 0; i < 1000; ++i) random.push_back(static_cast<int64_t>(rng.Next()));
  Int64Chunk chunk = EncodeInt64(random);
  EXPECT_EQ(chunk.encoding, Encoding::kPlain);
}

TEST(EncodingTest, DictCompressesLowCardinalityStrings) {
  std::vector<std::string> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 2 ? "east" : "west");
  StringChunk chunk = EncodeString(values);
  EXPECT_EQ(chunk.encoding, Encoding::kDict);
  EXPECT_EQ(chunk.At(0), "west");
  EXPECT_EQ(chunk.At(1), "east");
}

TEST(EncodingTest, UniqueStringsStayPlain) {
  std::vector<std::string> values;
  for (int i = 0; i < 100; ++i) values.push_back("unique_" + std::to_string(i));
  EXPECT_EQ(EncodeString(values).encoding, Encoding::kPlain);
}

class ColumnTableTest : public ::testing::Test {
 protected:
  ColumnTableTest() : table_(SalesSchema()) {
    Rng rng(2);
    for (int64_t i = 0; i < kRows; ++i) {
      const char* region = i % 3 == 0 ? "east" : (i % 3 == 1 ? "west" : "north");
      EXPECT_TRUE(table_
                      .Append({Value(region), Value(i % 100),
                               Value(static_cast<double>(i) * 0.5)})
                      .ok());
    }
    table_.Seal();
  }
  static constexpr int64_t kRows = 10'000;
  ColumnTable table_;
};

TEST_F(ColumnTableTest, FilterGtMatchesRowStoreSemantics) {
  auto sel = table_.FilterGtInt64("amount", 89);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), kRows / 100 * 10);
  for (uint32_t idx : *sel) EXPECT_GT(static_cast<int64_t>(idx % 100), 89);
}

TEST_F(ColumnTableTest, FilterEqStringUsesDictionary) {
  auto sel = table_.FilterEqString("region", "east");
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), (kRows + 2) / 3);
  auto none = table_.FilterEqString("region", "south");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(ColumnTableTest, SumWithAndWithoutSelection) {
  auto total = table_.SumInt64("amount");
  ASSERT_TRUE(total.ok());
  // sum over i%100 for 10k rows = 100 * (0+..+99) = 100*4950.
  EXPECT_EQ(*total, 100 * 4950);
  auto sel = table_.FilterGtInt64("amount", 97);  // values 98, 99
  ASSERT_TRUE(sel.ok());
  auto partial = table_.SumInt64("amount", &*sel);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(*partial, 100 * (98 + 99));
}

TEST_F(ColumnTableTest, GatherMaterializesRows) {
  auto sel = table_.FilterEqString("region", "north");
  ASSERT_TRUE(sel.ok());
  auto rows = table_.Gather(*sel);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), sel->size());
  EXPECT_EQ((*rows)[0][0].AsString(), "north");
  EXPECT_EQ((*rows)[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ((*rows)[0][2].AsDouble(), 1.0);
}

TEST_F(ColumnTableTest, CompressionSavesSpace) {
  EXPECT_LT(table_.CompressedBytes(), table_.PlainBytes());
}

TEST_F(ColumnTableTest, TypeMismatchRejected) {
  EXPECT_FALSE(table_.FilterGtInt64("region", 1).ok());
  EXPECT_FALSE(table_.FilterEqString("amount", "x").ok());
  EXPECT_FALSE(table_.SumInt64("nope").ok());
}

TEST(ColumnTableEdgeTest, UnsealedTailInvisibleUntilSeal) {
  ColumnTable t(SalesSchema());
  ASSERT_TRUE(t.Append({Value("east"), Value(1), Value(1.0)}).ok());
  auto sel = t.FilterGtInt64("amount", 0);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());  // buffered, not yet encoded
  t.Seal();
  sel = t.FilterGtInt64("amount", 0);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 1u);
}

TEST(ColumnTableEdgeTest, ArityMismatch) {
  ColumnTable t(SalesSchema());
  EXPECT_TRUE(t.Append({Value("east")}).IsInvalidArgument());
}

TEST_F(ColumnTableTest, WidenedFilterKernels) {
  auto lt = table_.FilterLtInt64("amount", 10);
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->size(), kRows / 100 * 10);
  for (uint32_t idx : *lt) EXPECT_LT(static_cast<int64_t>(idx % 100), 10);

  auto ge = table_.FilterGeInt64("amount", 90);
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->size(), kRows / 100 * 10);

  auto le = table_.FilterLeInt64("amount", 9);
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(*le, *lt);

  auto between = table_.FilterBetweenInt64("amount", 10, 19);
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(between->size(), kRows / 100 * 10);
  for (uint32_t idx : *between) {
    EXPECT_GE(static_cast<int64_t>(idx % 100), 10);
    EXPECT_LE(static_cast<int64_t>(idx % 100), 19);
  }
}

TEST_F(ColumnTableTest, MinMaxCountKernels) {
  auto mn = table_.MinInt64("amount");
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(*mn, 0);
  auto mx = table_.MaxInt64("amount");
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(*mx, 99);
  auto cnt = table_.CountInt64("amount");
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(*cnt, kRows);

  auto sel = table_.FilterBetweenInt64("amount", 40, 49);
  ASSERT_TRUE(sel.ok());
  auto mn2 = table_.MinInt64("amount", &*sel);
  auto mx2 = table_.MaxInt64("amount", &*sel);
  auto cnt2 = table_.CountInt64("amount", &*sel);
  ASSERT_TRUE(mn2.ok() && mx2.ok() && cnt2.ok());
  EXPECT_EQ(*mn2, 40);
  EXPECT_EQ(*mx2, 49);
  EXPECT_EQ(*cnt2, static_cast<int64_t>(sel->size()));
}

TEST_F(ColumnTableTest, SaturatedBoundsDoNotWrap) {
  auto gt_max = table_.FilterGtInt64("amount", std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(gt_max.ok());
  EXPECT_TRUE(gt_max->empty());
  auto lt_min = table_.FilterLtInt64("amount", std::numeric_limits<int64_t>::min());
  ASSERT_TRUE(lt_min.ok());
  EXPECT_TRUE(lt_min->empty());
}

TEST(ColumnNullTest, FiltersNeverMatchNull) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Append({i % 2 == 0 ? Value(i) : Value::Null()}).ok());
  }
  t.Seal();
  // NULL placeholders are stored as 0; a filter covering 0 must not see them.
  auto sel = t.FilterGeInt64("v", 0);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 50u);
  for (uint32_t idx : *sel) EXPECT_EQ(idx % 2, 0u);
}

TEST(ColumnNullTest, AggregatesSkipNulls) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  int64_t expect_sum = 0;
  for (int64_t i = 1; i <= 100; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(t.Append({Value::Null()}).ok());
    } else {
      ASSERT_TRUE(t.Append({Value(i)}).ok());
      expect_sum += i;
    }
  }
  t.Seal();
  auto sum = t.SumInt64("v");
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(sum->has_value());
  EXPECT_EQ(**sum, expect_sum);
  auto cnt = t.CountInt64("v");
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(*cnt, 100 - 100 / 3);
  auto mn = t.MinInt64("v");
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(**mn, 1);  // i=3 is NULL, 1 and 2 are not
}

TEST(ColumnNullTest, AllNullColumnAggregatesToNull) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Append({Value::Null()}).ok());
  t.Seal();
  auto sum = t.SumInt64("v");
  ASSERT_TRUE(sum.ok());
  EXPECT_FALSE(sum->has_value());
  auto mn = t.MinInt64("v");
  ASSERT_TRUE(mn.ok());
  EXPECT_FALSE(mn->has_value());
  auto mx = t.MaxInt64("v");
  ASSERT_TRUE(mx.ok());
  EXPECT_FALSE(mx->has_value());
  auto cnt = t.CountInt64("v");
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(*cnt, 0);
  auto sel = t.FilterGeInt64("v", std::numeric_limits<int64_t>::min());
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());
}

TEST(ColumnNullTest, GatherMaterializesNullBack) {
  ColumnTable t(SalesSchema());
  ASSERT_TRUE(t.Append({Value("east"), Value(1), Value(1.5)}).ok());
  ASSERT_TRUE(t.Append({Value::Null(), Value::Null(), Value::Null()}).ok());
  ASSERT_TRUE(t.Append({Value("west"), Value(3), Value(3.5)}).ok());
  t.Seal();
  auto rows = t.Gather({0, 1, 2});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_FALSE((*rows)[0][0].is_null());
  EXPECT_TRUE((*rows)[1][0].is_null());
  EXPECT_TRUE((*rows)[1][1].is_null());
  EXPECT_TRUE((*rows)[1][2].is_null());
  EXPECT_EQ((*rows)[2][1].AsInt(), 3);
  EXPECT_DOUBLE_EQ((*rows)[2][2].AsDouble(), 3.5);
}

TEST(ColumnNullTest, NullStringNeverMatchesEquality) {
  ColumnTable t(Schema({Column{"s", TypeId::kString, ""}}));
  ASSERT_TRUE(t.Append({Value("")}).ok());
  ASSERT_TRUE(t.Append({Value::Null()}).ok());  // placeholder is also ""
  ASSERT_TRUE(t.Append({Value("x")}).ok());
  t.Seal();
  auto sel = t.FilterEqString("s", "");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ((*sel)[0], 0u);
}

TEST(SealTest, SealIsIdempotent) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(t.Append({Value(i)}).ok());
  t.Seal();
  EXPECT_EQ(t.num_chunks(), 1u);
  EXPECT_EQ(t.sealed_rows(), 100u);
  t.Seal();  // no new appends: must not create an empty/duplicate chunk
  t.Seal();
  EXPECT_EQ(t.num_chunks(), 1u);
  auto sum = t.SumInt64("v");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 4950);
}

TEST(SealTest, AppendAfterSealEncodesOnlyNewTail) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(t.Append({Value(i)}).ok());
  t.Seal();
  ASSERT_EQ(t.num_chunks(), 1u);
  for (int64_t i = 100; i < 150; ++i) ASSERT_TRUE(t.Append({Value(i)}).ok());
  EXPECT_EQ(t.sealed_rows(), 100u);  // tail buffered, not yet visible
  t.Seal();
  EXPECT_EQ(t.num_chunks(), 2u);  // old chunk untouched, tail became its own
  EXPECT_EQ(t.sealed_rows(), 150u);
  auto sum = t.SumInt64("v");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 150 * 149 / 2);
  auto sel = t.FilterGeInt64("v", 100);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 50u);
}

TEST(ColumnTableEdgeTest, MultiChunkBoundary) {
  ColumnTable t(Schema({Column{"v", TypeId::kInt64, ""}}));
  const int64_t n = ColumnTable::kChunkRows * 2 + 17;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Append({Value(i)}).ok());
  }
  t.Seal();
  auto sel = t.FilterGtInt64("v", -1);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), static_cast<size_t>(n));
  auto sum = t.SumInt64("v");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, n * (n - 1) / 2);
}

}  // namespace
}  // namespace ofi::storage
