/// Concurrency smoke test for the shared-mutex read path the parallel MPP
/// scatter relies on: concurrent ScanVisible/Read against MvccTable while
/// writer threads insert and commit through LocalTxnManager. Correctness
/// assertions are deliberately coarse (snapshot isolation bounds); the real
/// teeth are under ThreadSanitizer (the tsan CMake preset).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "storage/mvcc_table.h"
#include "txn/local_txn_manager.h"

namespace ofi::storage {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

TEST(MvccConcurrencyTest, ConcurrentScansAndCommittedWrites) {
  MvccTable table(Schema({Column{"k", TypeId::kInt64, ""},
                          Column{"v", TypeId::kInt64, ""}}));
  txn::LocalTxnManager mgr;
  constexpr int kWriters = 2;
  constexpr int kPerWriter = 200;
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        int64_t key = w * kPerWriter + i;
        txn::Xid xid = mgr.Begin();
        txn::Snapshot snap = mgr.TakeSnapshot();
        txn::VisibilityChecker vis(&snap, &mgr.clog(), xid);
        ASSERT_TRUE(
            table.Insert(Value(key), {Value(key), Value(key * 2)}, xid, vis)
                .ok());
        ASSERT_TRUE(mgr.Commit(xid).ok());
      }
    });
  }

  std::vector<std::thread> readers;
  std::atomic<int> scans{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        txn::Xid xid = mgr.Begin();
        txn::Snapshot snap = mgr.TakeSnapshot();
        txn::VisibilityChecker vis(&snap, &mgr.clog(), xid);
        std::vector<Row> rows = table.ScanVisible(vis);
        // Snapshot isolation: only committed inserts are visible, each with
        // an intact (key, 2*key) payload.
        EXPECT_LE(rows.size(), static_cast<size_t>(kWriters * kPerWriter));
        for (const auto& row : rows) {
          ASSERT_EQ(row.size(), 2u);
          EXPECT_EQ(row[1].AsInt(), row[0].AsInt() * 2);
        }
        ASSERT_TRUE(mgr.Commit(xid).ok());
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(scans.load(), 0);

  // Final state: everything committed and visible.
  txn::Xid xid = mgr.Begin();
  txn::Snapshot snap = mgr.TakeSnapshot();
  txn::VisibilityChecker vis(&snap, &mgr.clog(), xid);
  EXPECT_EQ(table.ScanVisible(vis).size(),
            static_cast<size_t>(kWriters * kPerWriter));
  ASSERT_TRUE(mgr.Commit(xid).ok());
}

TEST(MvccConcurrencyTest, PoolScansWhileWriterCommits) {
  MvccTable table(Schema({Column{"k", TypeId::kInt64, ""},
                          Column{"v", TypeId::kInt64, ""}}));
  txn::LocalTxnManager mgr;
  // Seed rows.
  for (int64_t i = 0; i < 50; ++i) {
    txn::Xid xid = mgr.Begin();
    txn::Snapshot snap = mgr.TakeSnapshot();
    txn::VisibilityChecker vis(&snap, &mgr.clog(), xid);
    ASSERT_TRUE(table.Insert(Value(i), {Value(i), Value(i)}, xid, vis).ok());
    ASSERT_TRUE(mgr.Commit(xid).ok());
  }

  std::thread writer([&] {
    for (int64_t i = 50; i < 150; ++i) {
      txn::Xid xid = mgr.Begin();
      txn::Snapshot snap = mgr.TakeSnapshot();
      txn::VisibilityChecker vis(&snap, &mgr.clog(), xid);
      ASSERT_TRUE(table.Insert(Value(i), {Value(i), Value(i)}, xid, vis).ok());
      ASSERT_TRUE(mgr.Commit(xid).ok());
    }
  });

  // The MPP scatter shape: ParallelFor over "shards", each task scanning
  // under its own snapshot while the writer runs.
  common::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(4, [&](int) {
      txn::Xid xid = mgr.Begin();
      txn::Snapshot snap = mgr.TakeSnapshot();
      txn::VisibilityChecker vis(&snap, &mgr.clog(), xid);
      std::vector<Row> rows = table.ScanVisible(vis);
      EXPECT_GE(rows.size(), 50u);
      EXPECT_LE(rows.size(), 150u);
      ASSERT_TRUE(mgr.Commit(xid).ok());
    });
  }
  writer.join();
}

}  // namespace
}  // namespace ofi::storage
