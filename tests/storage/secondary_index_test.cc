/// Randomized writer-vs-oracle equivalence for the MVCC-aware secondary
/// index (storage/secondary_index.h). The oracle is the heap itself:
/// ScanVisible under the same VisibilityChecker, filtered on the indexed
/// column. A probe must match the oracle bit for bit at ANY snapshot —
/// current or saved — across inserts, updates, deletes, delete/reinsert
/// cycles, rollbacks, and Compact. The concurrent sections are sized so the
/// tsan preset gives them real teeth.
#include "storage/secondary_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/delta_store.h"
#include "storage/mvcc_table.h"
#include "txn/local_txn_manager.h"

namespace ofi::storage {
namespace {

using ofi::Rng;
using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema TestSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"grp", TypeId::kInt64, ""},
                 Column{"payload", TypeId::kInt64, ""}});
}

bool RowLess(const Row& a, const Row& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (size_t i = 0; i < a.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return false;
}

std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

/// The full-scan oracle: every visible row whose indexed column is in
/// [lo, hi] (equality = lo == hi).
std::vector<Row> OracleRange(const MvccTable& table,
                             const txn::VisibilityChecker& vis, size_t col,
                             const Value& lo, const Value& hi) {
  std::vector<Row> out;
  for (auto& row : table.ScanVisible(vis)) {
    if (!(row[col] < lo) && !(hi < row[col])) out.push_back(std::move(row));
  }
  return Sorted(std::move(out));
}

struct Harness {
  MvccTable table{TestSchema()};
  txn::LocalTxnManager mgr;
  std::shared_ptr<SecondaryIndex> index;
  ListenerId listener = 0;

  explicit Harness(SecondaryIndex::Kind kind) {
    index = *SecondaryIndex::Make(TestSchema(), "grp", kind);
    HeapDump dump = table.AttachChangeListener(
        [idx = index](const HeapChange& c) { idx->OnHeapChange(c); },
        &listener);
    index->InstallBase(std::move(dump));
  }

  txn::VisibilityChecker CheckerFor(const txn::Snapshot* snap,
                                    txn::Xid xid) const {
    return txn::VisibilityChecker(snap, &mgr.clog(), xid);
  }

  void CheckEquivalence(const txn::Snapshot* snap, txn::Xid xid,
                        int64_t max_grp) {
    txn::VisibilityChecker vis = CheckerFor(snap, xid);
    for (int64_t g = 0; g <= max_grp; ++g) {
      Value v(g);
      std::vector<Row> got = Sorted(index->Probe(v, vis));
      std::vector<Row> want = OracleRange(table, vis, 1, v, v);
      ASSERT_EQ(got, want) << "equality probe grp=" << g;
    }
    if (index->kind() == SecondaryIndex::Kind::kOrdered) {
      Value lo(max_grp / 3), hi(2 * max_grp / 3);
      std::vector<Row> got = Sorted(index->RangeProbe(lo, hi, vis));
      std::vector<Row> want = OracleRange(table, vis, 1, lo, hi);
      ASSERT_EQ(got, want) << "range probe";
    }
  }
};

/// One committed mutation step driven by the rng: insert a fresh key,
/// update an existing key to a new group, delete a key, reinsert a deleted
/// key, or begin-and-rollback a mutation.
void RandomStep(Harness* h, Rng* rng, std::vector<int64_t>* live,
                std::vector<int64_t>* dead, int64_t* next_key,
                int64_t max_grp) {
  txn::Xid xid = h->mgr.Begin();
  txn::Snapshot snap = h->mgr.TakeSnapshot();
  txn::VisibilityChecker vis = h->CheckerFor(&snap, xid);
  const double dice = rng->NextDouble();
  bool wrote = false;
  if (dice < 0.35 || live->empty()) {
    int64_t k = (*next_key)++;
    ASSERT_TRUE(h->table
                    .Insert(Value(k),
                            {Value(k), Value(rng->Uniform(0, max_grp)),
                             Value(rng->Uniform(0, 1000))},
                            xid, vis)
                    .ok());
    live->push_back(k);
    wrote = true;
  } else if (dice < 0.60) {
    int64_t k = (*live)[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(live->size()) - 1))];
    ASSERT_TRUE(h->table
                    .Update(Value(k),
                            {Value(k), Value(rng->Uniform(0, max_grp)),
                             Value(rng->Uniform(0, 1000))},
                            xid, vis)
                    .ok());
    wrote = true;
  } else if (dice < 0.80) {
    size_t at = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(live->size()) - 1));
    int64_t k = (*live)[at];
    ASSERT_TRUE(h->table.Delete(Value(k), xid, vis).ok());
    live->erase(live->begin() + static_cast<long>(at));
    dead->push_back(k);
    wrote = true;
  } else if (dice < 0.90 && !dead->empty()) {
    // Delete/reinsert cycle: the key gets a brand-new version chain entry
    // while older dead versions still hold postings.
    size_t at = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(dead->size()) - 1));
    int64_t k = (*dead)[at];
    ASSERT_TRUE(h->table
                    .Insert(Value(k),
                            {Value(k), Value(rng->Uniform(0, max_grp)),
                             Value(rng->Uniform(0, 1000))},
                            xid, vis)
                    .ok());
    dead->erase(dead->begin() + static_cast<long>(at));
    live->push_back(k);
    wrote = true;
  }
  if (wrote && rng->Chance(0.1)) {
    h->table.RollbackXid(xid);
    h->mgr.Abort(xid);
    // Undo the bookkeeping: the heap state did not change.
    // (Cheapest correct fix: rebuild live/dead from the oracle.)
    live->clear();
    dead->clear();
    txn::Snapshot s2 = h->mgr.TakeSnapshot();
    txn::VisibilityChecker v2 = h->CheckerFor(&s2, h->mgr.Begin());
    for (const auto& row : h->table.ScanVisible(v2)) {
      live->push_back(row[0].AsInt());
    }
    for (int64_t k = 0; k < *next_key; ++k) {
      if (std::find(live->begin(), live->end(), k) == live->end()) {
        dead->push_back(k);
      }
    }
    return;
  }
  ASSERT_TRUE(h->mgr.Commit(xid).ok());
}

class SecondaryIndexEquivalenceTest
    : public ::testing::TestWithParam<SecondaryIndex::Kind> {};

TEST_P(SecondaryIndexEquivalenceTest, RandomizedWriterVsOracle) {
  Harness h(GetParam());
  Rng rng(GetParam() == SecondaryIndex::Kind::kHash ? 7 : 8);
  constexpr int64_t kMaxGrp = 12;
  std::vector<int64_t> live, dead;
  int64_t next_key = 0;

  // Saved snapshots (with a live reader xid each) re-checked at the end:
  // probes must answer correctly AT ANY SNAPSHOT, not just the newest.
  std::vector<std::pair<txn::Snapshot, txn::Xid>> saved;

  for (int step = 0; step < 400; ++step) {
    ASSERT_NO_FATAL_FAILURE(
        RandomStep(&h, &rng, &live, &dead, &next_key, kMaxGrp));
    if (step % 25 == 7) {
      txn::Xid rd = h.mgr.Begin();
      saved.emplace_back(h.mgr.TakeSnapshot(), rd);
    }
    if (step % 50 == 13) {
      txn::Xid rd = h.mgr.Begin();
      txn::Snapshot snap = h.mgr.TakeSnapshot();
      ASSERT_NO_FATAL_FAILURE(h.CheckEquivalence(&snap, rd, kMaxGrp));
      ASSERT_TRUE(h.mgr.Commit(rd).ok());
    }
  }
  // Old snapshots still answer exactly as the heap does under them.
  for (auto& [snap, xid] : saved) {
    ASSERT_NO_FATAL_FAILURE(h.CheckEquivalence(&snap, xid, kMaxGrp));
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SecondaryIndexEquivalenceTest,
                         ::testing::Values(SecondaryIndex::Kind::kHash,
                                           SecondaryIndex::Kind::kOrdered));

TEST(SecondaryIndexTest, ProbeHeapKeyMatchesHeapRead) {
  Harness h(SecondaryIndex::Kind::kHash);
  Rng rng(11);
  std::vector<int64_t> live, dead;
  int64_t next_key = 0;
  for (int step = 0; step < 200; ++step) {
    ASSERT_NO_FATAL_FAILURE(RandomStep(&h, &rng, &live, &dead, &next_key, 6));
  }
  txn::Xid rd = h.mgr.Begin();
  txn::Snapshot snap = h.mgr.TakeSnapshot();
  txn::VisibilityChecker vis = h.CheckerFor(&snap, rd);
  for (int64_t k = 0; k < next_key; ++k) {
    Result<Row> via_index = h.index->ProbeHeapKey(Value(k), vis);
    Result<Row> via_heap = h.table.Read(Value(k), vis);
    ASSERT_EQ(via_index.ok(), via_heap.ok()) << "key " << k;
    if (via_index.ok()) {
      ASSERT_EQ(*via_index, *via_heap) << "key " << k;
    }
  }
}

TEST(SecondaryIndexTest, CompactPrunesDeadPostingsOnly) {
  Harness h(SecondaryIndex::Kind::kOrdered);
  txn::Xid w1 = h.mgr.Begin();
  {
    txn::Snapshot s = h.mgr.TakeSnapshot();
    txn::VisibilityChecker vis = h.CheckerFor(&s, w1);
    for (int64_t k = 0; k < 20; ++k) {
      ASSERT_TRUE(
          h.table.Insert(Value(k), {Value(k), Value(k % 4), Value(k)}, w1, vis)
              .ok());
    }
  }
  ASSERT_TRUE(h.mgr.Commit(w1).ok());
  // Delete half; the deleted versions become universally dead once the
  // deleter commits below the horizon.
  txn::Xid w2 = h.mgr.Begin();
  {
    txn::Snapshot s = h.mgr.TakeSnapshot();
    txn::VisibilityChecker vis = h.CheckerFor(&s, w2);
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(h.table.Delete(Value(k), w2, vis).ok());
    }
  }
  ASSERT_TRUE(h.mgr.Commit(w2).ok());
  ASSERT_EQ(h.index->postings(), 20u);

  txn::Xid horizon = h.mgr.Begin();
  ASSERT_TRUE(h.mgr.Commit(horizon).ok());
  size_t pruned = h.index->Compact(h.mgr.clog(), horizon);
  EXPECT_EQ(pruned, 10u);
  EXPECT_EQ(h.index->postings(), 10u);

  // Probes after Compact still mirror the heap exactly.
  txn::Xid rd = h.mgr.Begin();
  txn::Snapshot snap = h.mgr.TakeSnapshot();
  ASSERT_NO_FATAL_FAILURE(h.CheckEquivalence(&snap, rd, 4));
}

TEST(SecondaryIndexTest, HashIndexReturnsEmptyForRangeProbe) {
  Harness h(SecondaryIndex::Kind::kHash);
  txn::Xid w = h.mgr.Begin();
  {
    txn::Snapshot s = h.mgr.TakeSnapshot();
    txn::VisibilityChecker vis = h.CheckerFor(&s, w);
    ASSERT_TRUE(
        h.table.Insert(Value(1), {Value(1), Value(2), Value(3)}, w, vis).ok());
  }
  ASSERT_TRUE(h.mgr.Commit(w).ok());
  txn::Xid rd = h.mgr.Begin();
  txn::Snapshot snap = h.mgr.TakeSnapshot();
  txn::VisibilityChecker vis = h.CheckerFor(&snap, rd);
  EXPECT_TRUE(h.index->RangeProbe(Value(0), Value(9), vis).empty());
  EXPECT_EQ(h.index->Probe(Value(2), vis).size(), 1u);
}

TEST(SecondaryIndexTest, CoexistsWithDeltaStoreListener) {
  // The multi-listener heap: a columnar delta shard and a secondary index
  // attached to the SAME table, fed by the same event stream; detaching one
  // must not starve the other.
  MvccTable table(TestSchema());
  txn::LocalTxnManager mgr;

  auto index = *SecondaryIndex::Make(TestSchema(), "grp",
                                     SecondaryIndex::Kind::kHash);
  ListenerId index_listener = 0;
  HeapDump dump1 = table.AttachChangeListener(
      [index](const HeapChange& c) { index->OnHeapChange(c); },
      &index_listener);
  index->InstallBase(std::move(dump1));

  auto shard = std::make_shared<DeltaShard>(table.schema());
  ListenerId delta_listener = 0;
  HeapDump dump2 = table.AttachChangeListener(
      [shard](const HeapChange& c) { shard->OnHeapChange(c); },
      &delta_listener);
  shard->InstallBase(std::move(dump2), &mgr.clog(),
                     mgr.TakeSnapshot().xmin, txn::kNoGxid, table.epoch());

  auto write = [&](int64_t k) {
    txn::Xid xid = mgr.Begin();
    txn::Snapshot s = mgr.TakeSnapshot();
    txn::VisibilityChecker vis(&s, &mgr.clog(), xid);
    ASSERT_TRUE(
        table.Insert(Value(k), {Value(k), Value(k % 3), Value(k)}, xid, vis)
            .ok());
    ASSERT_TRUE(mgr.Commit(xid).ok());
  };
  for (int64_t k = 0; k < 10; ++k) write(k);

  txn::Xid rd = mgr.Begin();
  txn::Snapshot snap = mgr.TakeSnapshot();
  txn::VisibilityChecker vis(&snap, &mgr.clog(), rd);
  EXPECT_EQ(index->Probe(Value(0), vis).size(), 4u);  // 0,3,6,9
  DeltaShard::View view = shard->Snapshot(vis);
  EXPECT_EQ(view.sealed->sealed_rows() + view.delta_rows.size(), 10u);

  // Detach the delta listener; the index keeps receiving events.
  table.DetachChangeListener(delta_listener);
  for (int64_t k = 10; k < 16; ++k) write(k);
  txn::Xid rd2 = mgr.Begin();
  txn::Snapshot snap2 = mgr.TakeSnapshot();
  txn::VisibilityChecker vis2(&snap2, &mgr.clog(), rd2);
  EXPECT_EQ(index->Probe(Value(0), vis2).size(), 6u);  // +12, +15
  table.DetachChangeListener(index_listener);
}

TEST(SecondaryIndexConcurrencyTest, ConcurrentWritersAndProbes) {
  // Writers mutate through the txn manager while probe threads hammer the
  // index. Assertions are coarse (every returned row carries the probed
  // group; ProbeHeapKey agrees with the heap); the real teeth are under
  // the tsan preset.
  Harness h(SecondaryIndex::Kind::kOrdered);
  constexpr int kWriters = 2;
  constexpr int kPerWriter = 150;
  constexpr int64_t kMaxGrp = 5;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(100 + w);
      for (int i = 0; i < kPerWriter; ++i) {
        int64_t k = w * kPerWriter + i;
        txn::Xid xid = h.mgr.Begin();
        txn::Snapshot s = h.mgr.TakeSnapshot();
        txn::VisibilityChecker vis = h.CheckerFor(&s, xid);
        ASSERT_TRUE(h.table
                        .Insert(Value(k),
                                {Value(k), Value(rng.Uniform(0, kMaxGrp)),
                                 Value(k)},
                                xid, vis)
                        .ok());
        if (rng.Chance(0.3)) {
          ASSERT_TRUE(h.table
                          .Update(Value(k),
                                  {Value(k), Value(rng.Uniform(0, kMaxGrp)),
                                   Value(k + 1)},
                                  xid, vis)
                          .ok());
        }
        if (rng.Chance(0.15)) {
          h.table.RollbackXid(xid);
          h.mgr.Abort(xid);
        } else {
          ASSERT_TRUE(h.mgr.Commit(xid).ok());
        }
      }
    });
  }

  std::vector<std::thread> probers;
  std::atomic<int> probes{0};
  for (int r = 0; r < 2; ++r) {
    probers.emplace_back([&, r] {
      Rng rng(200 + r);
      while (!stop.load(std::memory_order_acquire)) {
        txn::Xid xid = h.mgr.Begin();
        txn::Snapshot s = h.mgr.TakeSnapshot();
        txn::VisibilityChecker vis = h.CheckerFor(&s, xid);
        Value g(rng.Uniform(0, kMaxGrp));
        for (const Row& row : h.index->Probe(g, vis)) {
          ASSERT_EQ(row.size(), 3u);
          ASSERT_TRUE(row[1].Equals(g));
        }
        int64_t k = rng.Uniform(0, kWriters * kPerWriter - 1);
        Result<Row> via_index = h.index->ProbeHeapKey(Value(k), vis);
        Result<Row> via_heap = h.table.Read(Value(k), vis);
        ASSERT_EQ(via_index.ok(), via_heap.ok());
        if (via_index.ok()) {
          ASSERT_EQ(*via_index, *via_heap);
        }
        ASSERT_TRUE(h.mgr.Commit(xid).ok());
        probes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : probers) t.join();
  EXPECT_GT(probes.load(), 0);

  // Final full equivalence once quiescent.
  txn::Xid rd = h.mgr.Begin();
  txn::Snapshot snap = h.mgr.TakeSnapshot();
  ASSERT_NO_FATAL_FAILURE(h.CheckEquivalence(&snap, rd, kMaxGrp));
}

}  // namespace
}  // namespace ofi::storage
