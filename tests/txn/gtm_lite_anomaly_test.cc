/// Reproduces the two visibility anomalies of paper §II-A2 (experiment E2)
/// and verifies that Algorithm 1's UPGRADE/DOWNGRADE resolutions fix them.
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema KvSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
}

/// Finds an int64 key owned by `shard`.
Value KeyOnShard(const Cluster& cluster, int shard, int64_t start = 0) {
  for (int64_t k = start;; ++k) {
    if (cluster.ShardFor(Value(k)) == shard) return Value(k);
  }
}

class GtmLiteAnomalyTest : public ::testing::Test {
 protected:
  GtmLiteAnomalyTest() : cluster_(2, Protocol::kGtmLite) {
    EXPECT_TRUE(cluster_.CreateTable("t", KvSchema()).ok());
    ka_ = KeyOnShard(cluster_, 0);
    kb_ = KeyOnShard(cluster_, 1);
    // Seed both keys with v=0 via committed single-shard transactions.
    for (const Value& k : {ka_, kb_}) {
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(t.Insert("t", k, {k, Value(0)}).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
  }

  int64_t MustRead(Txn& t, const Value& k) {
    auto row = t.Read("t", k);
    EXPECT_TRUE(row.ok()) << row.status().ToString();
    return row.ok() ? (*row)[1].AsInt() : -999;
  }

  Cluster cluster_;
  Value ka_, kb_;
};

// ---------------------------------------------------------------------------
// Anomaly1: global snapshot says committed, local state still prepared.
// The reader must UPGRADE (wait for the commit confirmation) and see the
// writer's data on *every* data node.
// ---------------------------------------------------------------------------
TEST_F(GtmLiteAnomalyTest, Anomaly1UpgradeWaitsForCommitConfirmation) {
  cluster_.set_delay_commit_confirmations(true);

  // Multi-shard writer: commits at the GTM; confirmations stay queued.
  Txn writer = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(writer.Update("t", ka_, {ka_, Value(1)}).ok());
  ASSERT_TRUE(writer.Update("t", kb_, {kb_, Value(1)}).ok());
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_GT(cluster_.dn(0)->pending_commit_count(), 0u);
  EXPECT_GT(cluster_.dn(1)->pending_commit_count(), 0u);

  // Reader begins after the GTM commit: its global snapshot proves the
  // writer committed, but both DNs still see it as prepared.
  Txn reader = cluster_.Begin(TxnScope::kMultiShard);
  EXPECT_EQ(MustRead(reader, ka_), 1);
  EXPECT_EQ(MustRead(reader, kb_), 1);
  EXPECT_GE(reader.upgrades(), 2);
  ASSERT_TRUE(reader.Commit().ok());
}

TEST_F(GtmLiteAnomalyTest, Anomaly1NoWaitWhenConfirmationsAlreadyLanded) {
  Txn writer = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(writer.Update("t", ka_, {ka_, Value(1)}).ok());
  ASSERT_TRUE(writer.Update("t", kb_, {kb_, Value(1)}).ok());
  ASSERT_TRUE(writer.Commit().ok());

  Txn reader = cluster_.Begin(TxnScope::kMultiShard);
  EXPECT_EQ(MustRead(reader, ka_), 1);
  EXPECT_EQ(MustRead(reader, kb_), 1);
  EXPECT_EQ(reader.upgrades(), 0);
  ASSERT_TRUE(reader.Commit().ok());
}

// ---------------------------------------------------------------------------
// Anomaly2 (paper Fig. 2): reader's global snapshot is OLD (writer T1 still
// active in it) but its local snapshot is NEW (T1 and a dependent
// single-shard T3 already committed locally). Without DOWNGRADE the reader
// would see T3's update but not T1's — the anomaly. With DOWNGRADE it sees
// neither: the consistent pre-T1 state.
// ---------------------------------------------------------------------------
TEST_F(GtmLiteAnomalyTest, Anomaly2DowngradeHidesDependentLocalCommits) {
  // T2 (reader) begins first: its global snapshot will list T1 as active.
  Txn t1 = cluster_.Begin(TxnScope::kMultiShard);
  Txn t2 = cluster_.Begin(TxnScope::kMultiShard);

  // T1: multi-shard write a=1 (DN0) and b=1 (DN1); full commit.
  ASSERT_TRUE(t1.Update("t", ka_, {ka_, Value(1)}).ok());
  ASSERT_TRUE(t1.Update("t", kb_, {kb_, Value(1)}).ok());
  ASSERT_TRUE(t1.Commit().ok());

  // T3: same session as T1, single-shard dependent write a=2 on DN0.
  Txn t3 = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t3.Update("t", ka_, {ka_, Value(2)}).ok());
  ASSERT_TRUE(t3.Commit().ok());

  // T2 now reads a: local snapshot (taken at first touch, i.e. now) has T1
  // and T3 committed; global snapshot says T1 active. DOWNGRADE must hide
  // both, yielding the original a=0, NOT the anomalous a=2.
  EXPECT_EQ(MustRead(t2, ka_), 0);
  EXPECT_GE(t2.downgrades(), 1);
  ASSERT_TRUE(t2.Commit().ok());

  // A fresh reader sees the final state a=2, b=1.
  Txn t4 = cluster_.Begin(TxnScope::kMultiShard);
  EXPECT_EQ(MustRead(t4, ka_), 2);
  EXPECT_EQ(MustRead(t4, kb_), 1);
  EXPECT_EQ(t4.downgrades(), 0);
  ASSERT_TRUE(t4.Commit().ok());
}

// The exact Fig. 2 tuple-chain walkthrough at the storage level: after T1
// (delete tuple1, insert tuple2) and T3 (update tuple2 -> tuple3), the key's
// version chain holds three versions with the paper's xmin/xmax pattern.
TEST_F(GtmLiteAnomalyTest, Fig2VersionChainShape) {
  Txn t1 = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(t1.Update("t", ka_, {ka_, Value(1)}).ok());
  ASSERT_TRUE(t1.Update("t", kb_, {kb_, Value(1)}).ok());
  ASSERT_TRUE(t1.Commit().ok());
  Txn t3 = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t3.Update("t", ka_, {ka_, Value(2)}).ok());
  ASSERT_TRUE(t3.Commit().ok());

  auto table = cluster_.dn(0)->GetTable("t");
  ASSERT_TRUE(table.ok());
  const auto* chain = (*table)->Versions(ka_);
  ASSERT_NE(chain, nullptr);
  ASSERT_EQ(chain->size(), 3u);
  // tuple1: xmax = T1; tuple2: xmin = T1, xmax = T3; tuple3: xmin = T3.
  EXPECT_NE((*chain)[0].xmax, txn::kInvalidXid);
  EXPECT_EQ((*chain)[1].xmin, (*chain)[0].xmax);
  EXPECT_EQ((*chain)[2].xmin, (*chain)[1].xmax);
  EXPECT_EQ((*chain)[2].xmax, txn::kInvalidXid);
  EXPECT_EQ((*chain)[0].data[1].AsInt(), 0);
  EXPECT_EQ((*chain)[1].data[1].AsInt(), 1);
  EXPECT_EQ((*chain)[2].data[1].AsInt(), 2);
}

// An old global snapshot alone (no dependent T3) must also hide T1's
// locally committed writes — the simple half of Anomaly2.
TEST_F(GtmLiteAnomalyTest, OldGlobalSnapshotHidesCommittedWriter) {
  Txn reader = cluster_.Begin(TxnScope::kMultiShard);
  Txn writer = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(writer.Update("t", ka_, {ka_, Value(42)}).ok());
  ASSERT_TRUE(writer.Update("t", kb_, {kb_, Value(42)}).ok());
  ASSERT_TRUE(writer.Commit().ok());

  EXPECT_EQ(MustRead(reader, ka_), 0);
  EXPECT_EQ(MustRead(reader, kb_), 0);
  ASSERT_TRUE(reader.Commit().ok());
}

// Consistency across shards: a multi-shard reader must see a multi-shard
// writer's effects on ALL shards or NONE, under any begin interleaving.
TEST_F(GtmLiteAnomalyTest, MultiShardReadsAreAllOrNothing) {
  for (int iteration = 0; iteration < 8; ++iteration) {
    bool reader_first = iteration % 2 == 0;
    Txn writer = cluster_.Begin(TxnScope::kMultiShard);
    std::optional<Txn> reader;
    if (reader_first) reader.emplace(cluster_.Begin(TxnScope::kMultiShard));
    ASSERT_TRUE(writer.Update("t", ka_, {ka_, Value(100 + iteration)}).ok());
    ASSERT_TRUE(writer.Update("t", kb_, {kb_, Value(100 + iteration)}).ok());
    ASSERT_TRUE(writer.Commit().ok());
    if (!reader_first) reader.emplace(cluster_.Begin(TxnScope::kMultiShard));

    int64_t va = MustRead(*reader, ka_);
    int64_t vb = MustRead(*reader, kb_);
    EXPECT_EQ(va, vb) << "torn read at iteration " << iteration;
    ASSERT_TRUE(reader->Commit().ok());
  }
}

// ---------------------------------------------------------------------------
// Protocol plumbing.
// ---------------------------------------------------------------------------
TEST_F(GtmLiteAnomalyTest, SingleShardTxnNeverContactsGtm) {
  uint64_t before = cluster_.gtm().requests_served();
  Txn t = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t.Update("t", ka_, {ka_, Value(5)}).ok());
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_EQ(cluster_.gtm().requests_served(), before);
}

TEST_F(GtmLiteAnomalyTest, SingleShardTxnRejectsSecondShard) {
  Txn t = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t.Update("t", ka_, {ka_, Value(5)}).ok());
  EXPECT_TRUE(t.Update("t", kb_, {kb_, Value(5)}).IsInvalidArgument());
  ASSERT_TRUE(t.Abort().ok());
}

TEST_F(GtmLiteAnomalyTest, AbortRollsBackAcrossShards) {
  Txn t = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(t.Update("t", ka_, {ka_, Value(77)}).ok());
  ASSERT_TRUE(t.Update("t", kb_, {kb_, Value(77)}).ok());
  ASSERT_TRUE(t.Abort().ok());

  Txn r = cluster_.Begin(TxnScope::kMultiShard);
  EXPECT_EQ(MustRead(r, ka_), 0);
  EXPECT_EQ(MustRead(r, kb_), 0);
  ASSERT_TRUE(r.Commit().ok());

  // And the key is writable again (no stranded xmax).
  Txn w = cluster_.Begin(TxnScope::kSingleShard);
  EXPECT_TRUE(w.Update("t", ka_, {ka_, Value(78)}).ok());
  ASSERT_TRUE(w.Commit().ok());
}

TEST_F(GtmLiteAnomalyTest, CommittedTxnCannotBeAborted) {
  Txn t = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t.Update("t", ka_, {ka_, Value(9)}).ok());
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_TRUE(t.Abort().IsInvalidArgument());
  // The committed value survives.
  Txn r = cluster_.Begin(TxnScope::kSingleShard);
  EXPECT_EQ(MustRead(r, ka_), 9);
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(GtmLiteAnomalyTest, WriteWriteConflictAcrossProtocols) {
  Txn w1 = cluster_.Begin(TxnScope::kSingleShard);
  Txn w2 = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(w1.Update("t", ka_, {ka_, Value(1)}).ok());
  EXPECT_TRUE(w2.Update("t", ka_, {ka_, Value(2)}).IsAborted());
  ASSERT_TRUE(w2.Abort().ok());
  ASSERT_TRUE(w1.Commit().ok());
}

// ---------------------------------------------------------------------------
// Baseline protocol sanity: global snapshots make reads consistent without
// any merge machinery.
// ---------------------------------------------------------------------------
class BaselineProtocolTest : public ::testing::Test {
 protected:
  BaselineProtocolTest() : cluster_(2, Protocol::kBaselineGtm) {
    EXPECT_TRUE(cluster_.CreateTable("t", KvSchema()).ok());
    ka_ = KeyOnShard(cluster_, 0);
    kb_ = KeyOnShard(cluster_, 1);
    for (const Value& k : {ka_, kb_}) {
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(t.Insert("t", k, {k, Value(0)}).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
  }
  Cluster cluster_;
  Value ka_, kb_;
};

TEST_F(BaselineProtocolTest, EveryTxnContactsGtm) {
  uint64_t before = cluster_.gtm().requests_served();
  Txn t = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t.Update("t", ka_, {ka_, Value(1)}).ok());
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_GT(cluster_.gtm().requests_served(), before);
}

TEST_F(BaselineProtocolTest, GlobalSnapshotConsistentAcrossShards) {
  Txn reader = cluster_.Begin(TxnScope::kMultiShard);
  Txn writer = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(writer.Update("t", ka_, {ka_, Value(9)}).ok());
  ASSERT_TRUE(writer.Update("t", kb_, {kb_, Value(9)}).ok());
  ASSERT_TRUE(writer.Commit().ok());

  auto ra = reader.Read("t", ka_);
  auto rb = reader.Read("t", kb_);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ((*ra)[1].AsInt(), 0);
  EXPECT_EQ((*rb)[1].AsInt(), 0);
  ASSERT_TRUE(reader.Commit().ok());

  Txn fresh = cluster_.Begin(TxnScope::kMultiShard);
  EXPECT_EQ(fresh.Read("t", ka_).ValueOrDie()[1].AsInt(), 9);
  EXPECT_EQ(fresh.Read("t", kb_).ValueOrDie()[1].AsInt(), 9);
  ASSERT_TRUE(fresh.Commit().ok());
}

}  // namespace
}  // namespace ofi::cluster
