/// Group-commit window semantics in the transaction layer: staged commits
/// must stay invisible (InProgress/Prepared state, active set, snapshots)
/// until the window flushes, aborts inside an open window must win, and a
/// 2PC recovery sweep that resolves a staged transaction first must leave
/// the flush idempotent — the clog and the GTM always agree.
#include <gtest/gtest.h>

#include "txn/gtm.h"
#include "txn/local_txn_manager.h"

namespace ofi::txn {
namespace {

TEST(CommitLogGroupCommitTest, StagedCommitStaysInProgressUntilFlush) {
  CommitLog clog;
  clog.Begin(1);
  ASSERT_TRUE(clog.StageCommit(1).ok());

  // The window is open: the transaction must not be visible yet.
  EXPECT_TRUE(clog.IsInProgress(1));
  EXPECT_FALSE(clog.IsCommitted(1));
  EXPECT_EQ(clog.staged_count(), 1u);
  EXPECT_TRUE(clog.lco().empty());

  std::vector<Xid> flushed = clog.FlushStaged();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], 1u);
  EXPECT_TRUE(clog.IsCommitted(1));
  ASSERT_EQ(clog.lco().size(), 1u);
  EXPECT_EQ(clog.lco()[0].xid, 1u);
  EXPECT_EQ(clog.staged_count(), 0u);
}

TEST(CommitLogGroupCommitTest, StagedPreparedKeepsPreparedState) {
  CommitLog clog;
  clog.Begin(7);
  ASSERT_TRUE(clog.Prepare(7).ok());
  ASSERT_TRUE(clog.StageCommit(7, /*gxid=*/42).ok());

  // Prepared-but-unflushed: still prepared, still in-doubt for recovery.
  EXPECT_TRUE(clog.IsPrepared(7));
  ASSERT_EQ(clog.PreparedXids().size(), 1u);

  std::vector<Xid> flushed = clog.FlushStaged();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_TRUE(clog.IsCommitted(7));
  ASSERT_EQ(clog.lco().size(), 1u);
  EXPECT_EQ(clog.lco()[0].gxid, 42u);
}

TEST(CommitLogGroupCommitTest, AbortInsideOpenWindowWins) {
  CommitLog clog;
  clog.Begin(1);
  clog.Begin(2);
  clog.Begin(3);
  ASSERT_TRUE(clog.StageCommit(1).ok());
  ASSERT_TRUE(clog.StageCommit(2).ok());
  ASSERT_TRUE(clog.StageCommit(3).ok());

  // Transaction 2 aborts while the window is still open (e.g. its session
  // crashed between commit-ready and flush).
  ASSERT_TRUE(clog.Abort(2).ok());

  std::vector<Xid> flushed = clog.FlushStaged();
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0], 1u);
  EXPECT_EQ(flushed[1], 3u);
  EXPECT_TRUE(clog.IsAborted(2));
  ASSERT_EQ(clog.lco().size(), 2u);
}

TEST(CommitLogGroupCommitTest, StageValidation) {
  CommitLog clog;
  EXPECT_TRUE(clog.StageCommit(99).IsNotFound());

  clog.Begin(1);
  ASSERT_TRUE(clog.Abort(1).ok());
  EXPECT_TRUE(clog.StageCommit(1).IsInvalidArgument());

  clog.Begin(2);
  ASSERT_TRUE(clog.StageCommit(2).ok());
  ASSERT_TRUE(clog.StageCommit(2).ok());  // staging twice is a no-op
  EXPECT_EQ(clog.staged_count(), 1u);
}

TEST(CommitLogGroupCommitTest, RecoveryResolvingFirstMakesFlushIdempotent) {
  // A recovery sweep may commit a prepared transaction (per the GTM's
  // verdict) while it is still staged in an open window. The later flush
  // must not double-apply it.
  CommitLog clog;
  clog.Begin(5);
  ASSERT_TRUE(clog.Prepare(5).ok());
  ASSERT_TRUE(clog.StageCommit(5, /*gxid=*/11).ok());

  ASSERT_TRUE(clog.Commit(5, 11).ok());  // recovery resolved it first
  EXPECT_TRUE(clog.StageCommit(5, 11).ok());  // idempotent re-stage

  std::vector<Xid> flushed = clog.FlushStaged();
  EXPECT_TRUE(flushed.empty());
  ASSERT_EQ(clog.lco().size(), 1u);  // exactly one LCO entry
  EXPECT_EQ(clog.lco()[0].xid, 5u);
}

TEST(LocalTxnManagerGroupCommitTest, StagedXidStaysActiveAndInvisible) {
  LocalTxnManager mgr;
  Xid xid = mgr.Begin();
  ASSERT_TRUE(mgr.StageCommit(xid).ok());

  // Still in the active set: a snapshot taken now treats it as in-flight,
  // so no reader can observe the staged-but-unflushed commit.
  EXPECT_EQ(mgr.active_count(), 1u);
  Snapshot before = mgr.TakeSnapshot();
  EXPECT_TRUE(before.InFlight(xid));

  EXPECT_EQ(mgr.FlushStaged(), 1u);
  EXPECT_EQ(mgr.active_count(), 0u);
  Snapshot after = mgr.TakeSnapshot();
  EXPECT_FALSE(after.InFlight(xid));
  EXPECT_TRUE(mgr.clog().IsCommitted(xid));
}

TEST(LocalTxnManagerGroupCommitTest, FlushAgreesWithGtmAfterRecovery) {
  // The in-doubt protocol end to end: a prepared multi-shard transaction is
  // staged, the GTM has already decided commit, and a recovery sweep runs
  // before the flush. Sweep and flush must agree: committed exactly once.
  Gtm gtm;
  LocalTxnManager mgr;
  Gxid gxid = gtm.BeginGlobal();
  Xid xid = mgr.Begin();
  mgr.BindGxid(xid, gxid);
  ASSERT_TRUE(mgr.Prepare(xid).ok());
  ASSERT_TRUE(gtm.CommitGlobal(gxid).ok());
  ASSERT_TRUE(mgr.StageCommit(xid, gxid).ok());

  // Recovery sweep (DataNode::RecoverInDoubt equivalent): the GTM says
  // committed, so the prepared xid commits immediately.
  for (const auto& [prepared_xid, prepared_gxid] : mgr.clog().PreparedXids()) {
    ASSERT_EQ(prepared_xid, xid);
    ASSERT_EQ(prepared_gxid, gxid);
    ASSERT_TRUE(gtm.IsCommitted(prepared_gxid));
    ASSERT_TRUE(mgr.Commit(prepared_xid, prepared_gxid).ok());
  }

  EXPECT_EQ(mgr.FlushStaged(), 0u);  // nothing left to apply
  EXPECT_TRUE(mgr.clog().IsCommitted(xid));
  EXPECT_EQ(mgr.clog().lco().size(), 1u);
  EXPECT_EQ(mgr.active_count(), 0u);
}

}  // namespace
}  // namespace ofi::txn
