/// Property-based tests over the transaction stack: randomized transfer
/// workloads across protocols, cluster sizes and multi-shard mixes must
/// conserve money, never tear multi-shard reads, and leave no stranded
/// locks — the invariants behind the GTM-lite correctness claim.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

struct PropertyParam {
  Protocol protocol;
  int num_dns;
  double multi_shard_fraction;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto& p = info.param;
  return std::string(p.protocol == Protocol::kBaselineGtm ? "Baseline" : "GtmLite") +
         "_dns" + std::to_string(p.num_dns) + "_ms" +
         std::to_string(static_cast<int>(p.multi_shard_fraction * 100)) + "_s" +
         std::to_string(p.seed);
}

class TransferPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

constexpr int kAccounts = 64;
constexpr int64_t kInitialBalance = 1000;

TEST_P(TransferPropertyTest, MoneyConservedAndReadsConsistent) {
  const PropertyParam& param = GetParam();
  Cluster cluster(param.num_dns, param.protocol);
  ASSERT_TRUE(cluster
                  .CreateTable("acct", Schema({Column{"id", TypeId::kInt64, ""},
                                               Column{"bal", TypeId::kInt64, ""}}))
                  .ok());
  for (int64_t i = 0; i < kAccounts; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("acct", Value(i), {Value(i), Value(kInitialBalance)}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  Rng rng(param.seed);
  int committed = 0, aborted = 0;
  for (int op = 0; op < 400; ++op) {
    if (rng.Chance(0.15)) {
      // Consistency probe: a multi-shard reader sums every account; the
      // total must equal the initial grand total at every instant.
      Txn reader = cluster.Begin(TxnScope::kMultiShard);
      int64_t total = 0;
      bool ok = true;
      for (int dn = 0; dn < param.num_dns && ok; ++dn) {
        auto rows = reader.ScanShard("acct", dn);
        ASSERT_TRUE(rows.ok());
        for (const Row& r : *rows) total += r[1].AsInt();
      }
      EXPECT_EQ(total, kAccounts * kInitialBalance) << "op " << op;
      ASSERT_TRUE(reader.Commit().ok());
      continue;
    }

    int64_t from = rng.Uniform(0, kAccounts - 1);
    int64_t to = rng.Uniform(0, kAccounts - 1);
    if (from == to) continue;
    bool cross_shard =
        cluster.ShardFor(Value(from)) != cluster.ShardFor(Value(to));
    // Single-shard scope is only legal when both keys co-locate.
    bool declare_multi = cross_shard || rng.Chance(param.multi_shard_fraction);
    Txn t = cluster.Begin(declare_multi ? TxnScope::kMultiShard
                                        : TxnScope::kSingleShard);
    int64_t amount = rng.Uniform(1, 50);
    auto run = [&]() -> Status {
      OFI_ASSIGN_OR_RETURN(Row src, t.Read("acct", Value(from)));
      OFI_ASSIGN_OR_RETURN(Row dst, t.Read("acct", Value(to)));
      src[1] = Value(src[1].AsInt() - amount);
      dst[1] = Value(dst[1].AsInt() + amount);
      OFI_RETURN_NOT_OK(t.Update("acct", Value(from), src));
      OFI_RETURN_NOT_OK(t.Update("acct", Value(to), dst));
      return t.Commit();
    };
    if (run().ok()) {
      ++committed;
    } else {
      (void)t.Abort();
      ++aborted;
    }
  }
  EXPECT_GT(committed, 100);

  // Post-run: every account is still updatable (no stranded write locks
  // from aborted transactions).
  for (int64_t i = 0; i < kAccounts; ++i) {
    Txn t = cluster.Begin(TxnScope::kMultiShard);
    auto row = t.Read("acct", Value(i));
    ASSERT_TRUE(row.ok());
    ASSERT_TRUE(t.Update("acct", Value(i), *row).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransferPropertyTest,
    ::testing::Values(PropertyParam{Protocol::kGtmLite, 1, 0.0, 1},
                      PropertyParam{Protocol::kGtmLite, 2, 0.1, 2},
                      PropertyParam{Protocol::kGtmLite, 4, 0.1, 3},
                      PropertyParam{Protocol::kGtmLite, 4, 0.5, 4},
                      PropertyParam{Protocol::kGtmLite, 8, 0.2, 5},
                      PropertyParam{Protocol::kBaselineGtm, 2, 0.1, 6},
                      PropertyParam{Protocol::kBaselineGtm, 4, 0.5, 7}),
    ParamName);

// Both protocols, fed the same deterministic workload, must end in the
// same final database state (protocol equivalence).
TEST(ProtocolEquivalenceTest, SameWorkloadSameFinalState) {
  auto run = [](Protocol protocol) {
    Cluster cluster(4, protocol);
    (void)cluster.CreateTable("acct",
                              Schema({Column{"id", TypeId::kInt64, ""},
                                      Column{"bal", TypeId::kInt64, ""}}));
    for (int64_t i = 0; i < 32; ++i) {
      Txn t = cluster.Begin(TxnScope::kSingleShard);
      (void)t.Insert("acct", Value(i), {Value(i), Value(100)});
      (void)t.Commit();
    }
    Rng rng(99);
    for (int op = 0; op < 200; ++op) {
      int64_t from = rng.Uniform(0, 31), to = rng.Uniform(0, 31);
      if (from == to) continue;
      Txn t = cluster.Begin(TxnScope::kMultiShard);
      auto src = t.Read("acct", Value(from));
      auto dst = t.Read("acct", Value(to));
      if (src.ok() && dst.ok()) {
        Row s = *src, d = *dst;
        s[1] = Value(s[1].AsInt() - 1);
        d[1] = Value(d[1].AsInt() + 1);
        if (t.Update("acct", Value(from), s).ok() &&
            t.Update("acct", Value(to), d).ok()) {
          (void)t.Commit();
          continue;
        }
      }
      (void)t.Abort();
    }
    // Read out the final balances.
    std::vector<int64_t> balances;
    Txn r = cluster.Begin(TxnScope::kMultiShard);
    for (int64_t i = 0; i < 32; ++i) {
      balances.push_back(r.Read("acct", Value(i)).ValueOrDie()[1].AsInt());
    }
    (void)r.Commit();
    return balances;
  };
  // Sequential workload with no concurrency: both protocols commit every
  // transfer, so the final states must match exactly.
  EXPECT_EQ(run(Protocol::kGtmLite), run(Protocol::kBaselineGtm));
}

}  // namespace
}  // namespace ofi::cluster
