/// Unit tests for Algorithm 1 (MergeSnapshot) in isolation: upgrade,
/// downgrade, LCO-suffix tainting, horizon pruning.
#include "txn/merge_snapshot.h"

#include <gtest/gtest.h>

#include "txn/gtm.h"
#include "txn/local_txn_manager.h"

namespace ofi::txn {
namespace {

CommitWaiter NoWait() {
  return [](Xid, Gxid) {
    ADD_FAILURE() << "unexpected UPGRADE wait";
    return TxnState::kCommitted;
  };
}

TEST(MergeSnapshotTest, GloballyActiveLocalCommitHidden) {
  LocalTxnManager mgr;
  // Multi-shard T1 commits locally but is active in the reader's global
  // snapshot (gxid 10).
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Commit(t1, 10).ok());

  Snapshot global{.xmin = 10, .xmax = 11, .active = {10}};
  Snapshot local = mgr.TakeSnapshot();
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), NoWait());

  VisibilityChecker vis(&merged, &mgr.clog(), /*reader=*/999);
  EXPECT_FALSE(vis.XidVisible(t1));
}

TEST(MergeSnapshotTest, UpgradeWaitsForPreparedTxn) {
  LocalTxnManager mgr;
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Prepare(t1).ok());

  // Global snapshot: gxid 10 already committed (not in active, < xmax).
  Snapshot global{.xmin = 11, .xmax = 11, .active = {}};
  Snapshot local = mgr.TakeSnapshot();

  int waits = 0;
  auto waiter = [&](Xid lxid, Gxid gxid) {
    EXPECT_EQ(lxid, t1);
    EXPECT_EQ(gxid, 10u);
    ++waits;
    EXPECT_TRUE(mgr.Commit(lxid, gxid).ok());
    return TxnState::kCommitted;
  };
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), waiter);
  EXPECT_EQ(waits, 1);
  EXPECT_EQ(merged.upgrades, 1);
  VisibilityChecker vis(&merged, &mgr.clog(), 999);
  EXPECT_TRUE(vis.XidVisible(t1));
}

TEST(MergeSnapshotTest, UpgradeOfAbortedTxnStaysInvisible) {
  LocalTxnManager mgr;
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Prepare(t1).ok());

  Snapshot global{.xmin = 11, .xmax = 11, .active = {}};
  Snapshot local = mgr.TakeSnapshot();
  auto waiter = [&](Xid lxid, Gxid) {
    EXPECT_TRUE(mgr.Abort(lxid).ok());
    return TxnState::kAborted;
  };
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), waiter);
  VisibilityChecker vis(&merged, &mgr.clog(), 999);
  EXPECT_FALSE(vis.XidVisible(t1));
}

TEST(MergeSnapshotTest, LcoSuffixDowngradesDependents) {
  LocalTxnManager mgr;
  // LCO: [S1(local), T1(gxid 10), S2(local), T2(gxid 11)].
  Xid s1 = mgr.Begin();
  ASSERT_TRUE(mgr.Commit(s1).ok());
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Commit(t1, 10).ok());
  Xid s2 = mgr.Begin();
  ASSERT_TRUE(mgr.Commit(s2).ok());
  Xid t2 = mgr.Begin();
  mgr.BindGxid(t2, 11);
  ASSERT_TRUE(mgr.Commit(t2, 11).ok());

  // Reader's global snapshot: T1 (gxid 10) active, T2 (gxid 11) unborn.
  Snapshot global{.xmin = 10, .xmax = 11, .active = {10}};
  Snapshot local = mgr.TakeSnapshot();
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), NoWait());

  VisibilityChecker vis(&merged, &mgr.clog(), 999);
  EXPECT_TRUE(vis.XidVisible(s1));    // before the taint: visible
  EXPECT_FALSE(vis.XidVisible(t1));   // globally active
  EXPECT_FALSE(vis.XidVisible(s2));   // downgraded (after T1 in LCO)
  EXPECT_FALSE(vis.XidVisible(t2));   // downgraded + unborn globally
  EXPECT_GE(merged.downgrades, 2);
}

TEST(MergeSnapshotTest, CleanMergeNoAdjustments) {
  LocalTxnManager mgr;
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Commit(t1, 10).ok());
  // Global snapshot sees gxid 10 as committed.
  Snapshot global{.xmin = 11, .xmax = 11, .active = {}};
  Snapshot local = mgr.TakeSnapshot();
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), NoWait());
  EXPECT_EQ(merged.upgrades, 0);
  EXPECT_EQ(merged.downgrades, 0);
  VisibilityChecker vis(&merged, &mgr.clog(), 999);
  EXPECT_TRUE(vis.XidVisible(t1));
}

TEST(MergeSnapshotTest, MergedXminCoversDowngradedXids) {
  LocalTxnManager mgr;
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Commit(t1, 10).ok());
  for (int i = 0; i < 5; ++i) {
    Xid s = mgr.Begin();
    ASSERT_TRUE(mgr.Commit(s).ok());
  }
  Snapshot global{.xmin = 10, .xmax = 11, .active = {10}};
  Snapshot local = mgr.TakeSnapshot();
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), NoWait());
  for (Xid x : merged.local.active) {
    EXPECT_GE(x, merged.local.xmin);
  }
}

// Regression: an UPGRADEd multi-shard commit can carry a local xid at or
// above the reader's local xmax (the local snapshot was taken before the
// writer's local begin, but the global snapshot proves it committed).
// MergeSnapshots must raise merged.local.xmax above every forced-committed
// xid so the snapshot invariant (visible => xid < xmax) holds for plain
// consumers of merged.local — without leaking other late commits in.
TEST(MergeSnapshotTest, UpgradeAboveLocalXmaxRaisesXmax) {
  LocalTxnManager mgr;
  Snapshot local = mgr.TakeSnapshot();  // before any local activity: xmax == 1

  // After the snapshot: a local commit, then a multi-shard commit.
  Xid s = mgr.Begin();
  ASSERT_TRUE(mgr.Commit(s).ok());
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Commit(t1, 10).ok());
  ASSERT_GE(t1, local.xmax);  // the premise of the regression

  // Reader's global snapshot has gxid 10 committed -> UPGRADE t1.
  Snapshot global{.xmin = 11, .xmax = 11, .active = {}};
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), NoWait());
  ASSERT_EQ(merged.forced_committed.count(t1), 1u);

  // Invariant restored: the forced-committed xid sits below the merged xmax.
  EXPECT_GT(merged.local.xmax, t1);
  EXPECT_FALSE(merged.local.InFlight(t1));

  VisibilityChecker vis(&merged, &mgr.clog(), 999);
  EXPECT_TRUE(vis.XidVisible(t1));
  // The unrelated local commit in the raised window stays invisible: it
  // happened after the reader's snapshot and nothing upgraded it.
  EXPECT_FALSE(vis.XidVisible(s));
  EXPECT_TRUE(merged.local.InFlight(s));
}

TEST(MergeSnapshotTest, UpgradeBelowLocalXmaxLeavesXmaxAlone) {
  LocalTxnManager mgr;
  Xid t1 = mgr.Begin();
  mgr.BindGxid(t1, 10);
  ASSERT_TRUE(mgr.Commit(t1, 10).ok());
  Snapshot local = mgr.TakeSnapshot();  // already covers t1
  ASSERT_LT(t1, local.xmax);

  Snapshot global{.xmin = 11, .xmax = 11, .active = {}};
  MergedSnapshot merged = MergeSnapshots(global, local, mgr.clog(), NoWait());
  EXPECT_EQ(merged.local.xmax, local.xmax);
  VisibilityChecker vis(&merged, &mgr.clog(), 999);
  EXPECT_TRUE(vis.XidVisible(t1));
}

TEST(CommitLogTest, PruneBelowHorizon) {
  CommitLog clog;
  // Three multi-shard commits with gxids 5, 10, 15 plus local ones between.
  for (int i = 0; i < 3; ++i) {
    Xid x = static_cast<Xid>(i * 2 + 1);
    clog.Begin(x);
    clog.MapGxid(5 + 5 * i, x);
    ASSERT_TRUE(clog.Commit(x, 5 + 5 * i).ok());
    Xid local = x + 1;
    clog.Begin(local);
    ASSERT_TRUE(clog.Commit(local).ok());
  }
  ASSERT_EQ(clog.lco().size(), 6u);

  clog.PruneBelowHorizon(/*horizon=*/11);
  // Entries up to (gxid 10 + its trailing local) pruned; gxid 15 kept.
  ASSERT_EQ(clog.lco().size(), 2u);
  EXPECT_EQ(clog.lco()[0].gxid, 15u);
  EXPECT_EQ(clog.LocalXidFor(5), kInvalidXid);
  EXPECT_EQ(clog.LocalXidFor(10), kInvalidXid);
  EXPECT_NE(clog.LocalXidFor(15), kInvalidXid);
  // States survive pruning (tuple visibility still needs them).
  EXPECT_TRUE(clog.IsCommitted(1));
}

TEST(CommitLogTest, PruneKeepsPreparedMappings) {
  CommitLog clog;
  clog.Begin(1);
  clog.MapGxid(5, 1);
  ASSERT_TRUE(clog.Prepare(1).ok());
  clog.PruneBelowHorizon(100);
  // Still prepared: the mapping must survive for a future UPGRADE wait.
  EXPECT_EQ(clog.LocalXidFor(5), 1u);
}

TEST(GtmTest, SafeHorizonTracksOldestSnapshot) {
  Gtm gtm;
  Gxid g1 = gtm.BeginGlobal();
  EXPECT_EQ(gtm.SafeHorizon(), g1);
  Gxid g2 = gtm.BeginGlobal();
  // g2's snapshot can reference g1; horizon stays at g1 even after g1 ends.
  ASSERT_TRUE(gtm.CommitGlobal(g1).ok());
  EXPECT_EQ(gtm.SafeHorizon(), g1);
  ASSERT_TRUE(gtm.CommitGlobal(g2).ok());
  EXPECT_EQ(gtm.SafeHorizon(), gtm.next_gxid());
}

TEST(GtmTest, CommitAbortStateMachine) {
  Gtm gtm;
  Gxid g = gtm.BeginGlobal();
  ASSERT_TRUE(gtm.CommitGlobal(g).ok());
  EXPECT_TRUE(gtm.IsCommitted(g));
  EXPECT_TRUE(gtm.AbortGlobal(g).IsInvalidArgument());
  Gxid g2 = gtm.BeginGlobal();
  ASSERT_TRUE(gtm.AbortGlobal(g2).ok());
  EXPECT_TRUE(gtm.CommitGlobal(g2).IsInvalidArgument());
  EXPECT_TRUE(gtm.CommitGlobal(9999).IsNotFound());
}

}  // namespace
}  // namespace ofi::txn
