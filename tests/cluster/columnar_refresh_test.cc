/// Cluster::RefreshColumnar — synchronous force-merge of the columnar delta
/// tails (only DNs with outstanding tail records or dead sealed rows do
/// work; quiescent shards are untouched) — and the columnar_morsel_parallel
/// footgun: combining it with a parallel scatter is now an InvalidArgument
/// instead of a silent no-op. Columnar scans are fresh with or without a
/// refresh; the merge only moves work off the scan path.
#include <gtest/gtest.h>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

class ColumnarRefreshTest : public ::testing::Test {
 protected:
  ColumnarRefreshTest() : cluster_(4, Protocol::kGtmLite) {
    Schema schema({Column{"k", TypeId::kInt64, ""},
                   Column{"amount", TypeId::kInt64, ""}});
    EXPECT_TRUE(cluster_.CreateTable("sales", schema).ok());
    Rng rng(11);
    for (int64_t k = 0; k < 200; ++k) {
      Insert({Value(k), Value(rng.Uniform(1, 100))});
    }
    EXPECT_TRUE(cluster_.RegisterColumnar("sales").ok());
  }

  void Insert(Row row) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("sales", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  size_t ColumnarShardsUsed() {
    auto res = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                    {{AggFunc::kCount, "", "n"},
                                     {AggFunc::kSum, "amount", "s"}});
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res->columnar_shards;
  }

  Cluster cluster_;
};

TEST_F(ColumnarRefreshTest, RefreshIsNoOpWhenEverythingIsFresh) {
  ASSERT_EQ(ColumnarShardsUsed(), 4u);
  auto n = cluster_.RefreshColumnar("sales");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ(cluster_.metrics().Get("columnar.refreshes"), 0);
}

TEST_F(ColumnarRefreshTest, RefreshMergesOnlyTheMutatedShard) {
  // One insert lands one delta-tail record on exactly one DN. Every shard
  // STAYS columnar — the new row is served from the tail immediately.
  Insert({Value(int64_t{100000}), Value(int64_t{42})});
  ASSERT_EQ(ColumnarShardsUsed(), 4u);
  auto before = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->table.rows()[0][0].AsInt(), 201);
  EXPECT_EQ(before->scan_stats.delta_rows, 1u);

  // Force-merge folds the record into sealed chunks; only the mutated
  // shard does work.
  auto n = cluster_.RefreshColumnar("sales");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(cluster_.metrics().Get("columnar.refreshes"), 1);

  // Same answer, now entirely from sealed chunks.
  auto res = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                  {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->columnar_shards, 4u);
  EXPECT_EQ(res->table.rows()[0][0].AsInt(), 201);
  EXPECT_EQ(res->scan_stats.delta_rows, 0u);

  // Refreshing again merges nothing.
  auto again = cluster_.RefreshColumnar("sales");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST_F(ColumnarRefreshTest, DeleteIsVisibleImmediatelyAndMergeDropsTheRow) {
  // Deletes mark the sealed row's sidecar xmax; scans exclude it at once
  // (no tail record involved) and the merge physically drops it.
  Txn t = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t.Delete("sales", Value(7)).ok());
  ASSERT_TRUE(t.Commit().ok());
  ASSERT_EQ(ColumnarShardsUsed(), 4u);
  auto before = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->table.rows()[0][0].AsInt(), 199);

  auto n = cluster_.RefreshColumnar("sales");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto res = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                  {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->columnar_shards, 4u);
  EXPECT_EQ(res->table.rows()[0][0].AsInt(), 199);
}

TEST_F(ColumnarRefreshTest, RefreshUnregisteredTableIsNotFound) {
  auto n = cluster_.RefreshColumnar("nope");
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsNotFound());

  cluster_.DropColumnar("sales");
  auto dropped = cluster_.RefreshColumnar("sales");
  EXPECT_FALSE(dropped.ok());
}

TEST_F(ColumnarRefreshTest, MorselParallelWithParallelScatterIsRejected) {
  // Historically this combination silently disabled morsel parallelism;
  // now it is a loud configuration error.
  DistributedOptions opts;
  opts.parallel = true;
  opts.columnar_morsel_parallel = true;
  auto res = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                  {{AggFunc::kCount, "", "n"}}, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsInvalidArgument());

  // The documented combination still works (the filter forces a real
  // morsel-parallel kernel scan — an unfiltered COUNT(*) answers from
  // metadata and touches no morsels).
  opts.parallel = false;
  auto ok = DistributedAggregate(&cluster_, "sales",
                                 sql::Expr::Gt("amount", Value(0)), {},
                                 {{AggFunc::kCount, "", "n"}}, opts);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->table.rows()[0][0].AsInt(), 200);
  EXPECT_GT(ok->scan_stats.morsels, 0u);
}

}  // namespace
}  // namespace ofi::cluster
