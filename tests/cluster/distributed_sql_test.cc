/// End-to-end distributed SQL: statements through the text front-end,
/// lowered onto the distributed physical-operator layer, must return
/// bit-identical rows (canonical ordering) to the ordinary single-node
/// executor over the same data — across randomized filters, NULLs, joins,
/// GROUP BYs, empty shards and a downed primary. Aggregate arguments stay
/// int64: partial SUM/COUNT states are exact, so even AVG's CN-side
/// division is reproducible (both sides divide the same exact operands).
#include <algorithm>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "cluster/distributed_sql.h"
#include "common/rng.h"
#include "optimizer/sql_session.h"

namespace ofi::cluster {
namespace {

using sql::Row;
using sql::Table;

std::string RowKey(const Row& row) {
  std::string key;
  for (const auto& v : row) {
    key += v.is_null() ? "\x01<null>" : v.ToString();
    key += '\x1f';
  }
  return key;
}

std::vector<std::string> Canonical(const Table& t) {
  std::vector<std::string> keys;
  keys.reserve(t.num_rows());
  for (const auto& row : t.rows()) keys.push_back(RowKey(row));
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ExpectSameRows(const Table& got, const Table& want,
                    const std::string& context) {
  EXPECT_EQ(got.schema().num_columns(), want.schema().num_columns()) << context;
  auto g = Canonical(got);
  auto w = Canonical(want);
  ASSERT_EQ(g.size(), w.size()) << context;
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i], w[i]) << context << " row " << i;
  }
}

/// Both sessions fed identical statements; every SELECT is answered twice
/// and compared. The single-node optimizer::SqlSession is the oracle.
class DistributedSqlTest : public ::testing::Test {
 protected:
  DistributedSqlTest() : dist_(4), local_(/*capture_threshold=*/-1) {}

  void Exec(const std::string& stmt) {
    auto d = dist_.Execute(stmt);
    ASSERT_TRUE(d.ok()) << stmt << ": " << d.status().ToString();
    auto l = local_.Execute(stmt);
    ASSERT_TRUE(l.ok()) << stmt << ": " << l.status().ToString();
  }

  /// Runs one SELECT on both sessions, asserts identical rows, returns the
  /// distributed result for extra assertions.
  Table Query(const std::string& query) {
    auto d = dist_.Execute(query);
    EXPECT_TRUE(d.ok()) << query << ": " << d.status().ToString();
    auto l = local_.Execute(query);
    EXPECT_TRUE(l.ok()) << query << ": " << l.status().ToString();
    if (!d.ok() || !l.ok()) return Table{};
    ExpectSameRows(*d, *l, query);
    return std::move(*d);
  }

  void CreateOrdersCustomers() {
    Exec("CREATE TABLE orders (o_id BIGINT, cust BIGINT, amount BIGINT, "
         "qty BIGINT)");
    Exec("CREATE TABLE customers (c_id BIGINT, segment BIGINT)");
  }

  /// Random data with NULL keys/amounts sprinkled in; dangling cust ids on
  /// purpose (they must drop out of inner joins on both paths).
  void LoadRandom(uint64_t seed, int orders, int customers) {
    Rng rng(seed);
    for (int64_t c = 0; c < customers; ++c) {
      Exec("INSERT INTO customers VALUES (" + std::to_string(c) + ", " +
           std::to_string(rng.Uniform(0, 3)) + ")");
    }
    for (int64_t o = 0; o < orders; ++o) {
      std::string cust = rng.Chance(0.08)
                             ? "NULL"
                             : std::to_string(rng.Uniform(0, customers + 4));
      std::string amount =
          rng.Chance(0.05) ? "NULL" : std::to_string(rng.Uniform(1, 500));
      Exec("INSERT INTO orders VALUES (" + std::to_string(o) + ", " + cust +
           ", " + amount + ", " + std::to_string(rng.Uniform(1, 9)) + ")");
    }
  }

  DistributedSqlSession dist_;
  optimizer::SqlSession local_;
};

TEST_F(DistributedSqlTest, RandomizedScanEquivalence) {
  CreateOrdersCustomers();
  LoadRandom(101, 120, 20);
  Rng rng(202);
  const char* ops[] = {">", "<", "=", ">=", "<="};
  for (int q = 0; q < 12; ++q) {
    std::string pred = "amount " + std::string(ops[q % 5]) + " " +
                       std::to_string(rng.Uniform(0, 520));
    Query("SELECT o_id, amount FROM orders WHERE " + pred);
    EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
    Query("SELECT * FROM orders WHERE " + pred + " AND qty > " +
          std::to_string(rng.Uniform(0, 8)));
  }
  // Unfiltered + ORDER BY + LIMIT exercise the CN-side post pipeline.
  Query("SELECT * FROM orders");
  Query("SELECT o_id, amount FROM orders ORDER BY o_id LIMIT 10");
  EXPECT_TRUE(dist_.last().distributed);
}

TEST_F(DistributedSqlTest, RandomizedAggregateEquivalence) {
  CreateOrdersCustomers();
  LoadRandom(303, 150, 25);
  Rng rng(404);
  for (int q = 0; q < 10; ++q) {
    std::string where =
        rng.Chance(0.5)
            ? (" WHERE amount > " + std::to_string(rng.Uniform(0, 400)))
            : "";
    // Global: one row, COUNT 0 / NULL extrema when the filter kills all.
    Query("SELECT COUNT(*) AS n, SUM(amount) AS s, MIN(amount) AS lo, "
          "MAX(amount) AS hi, AVG(amount) AS av FROM orders" + where);
    EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
    // Grouped: NULL cust forms its own group on both paths.
    Query("SELECT cust, COUNT(*) AS n, SUM(qty) AS q FROM orders" + where +
          " GROUP BY cust");
    EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
  }
  Query("SELECT COUNT(cust) AS nonnull, COUNT(*) AS all_rows FROM orders");
}

TEST_F(DistributedSqlTest, RandomizedJoinEquivalence) {
  CreateOrdersCustomers();
  LoadRandom(606, 140, 18);
  dist_.Analyze();
  local_.Analyze();
  Rng rng(707);
  for (int q = 0; q < 8; ++q) {
    std::string where = " WHERE amount > " + std::to_string(rng.Uniform(0, 450));
    Query("SELECT segment, COUNT(*) AS n, SUM(amount) AS total FROM orders "
          "JOIN customers ON cust = c_id" + where + " GROUP BY segment");
    EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
    EXPECT_TRUE(dist_.last().stats.joined);
    Query("SELECT o_id, amount, segment FROM orders JOIN customers ON "
          "cust = c_id" + where);
  }
  // Residual predicate on the joined row (cross-relation, not the hash key).
  Query("SELECT COUNT(*) AS n FROM orders JOIN customers ON cust = c_id "
        "WHERE amount > segment");
  EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
}

TEST_F(DistributedSqlTest, EmptyTablesAndEmptyShards) {
  CreateOrdersCustomers();
  // Fully empty: global agg yields the COUNT=0 row, grouped agg none.
  Query("SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders");
  Query("SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust");
  Query("SELECT * FROM orders WHERE amount > 10");
  // Two rows: most shards stay empty.
  Exec("INSERT INTO orders VALUES (1, 5, 100, 1)");
  Exec("INSERT INTO customers VALUES (5, 2)");
  Query("SELECT segment, SUM(amount) AS s FROM orders JOIN customers ON "
        "cust = c_id GROUP BY segment");
  EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
}

TEST_F(DistributedSqlTest, FailoverServesEveryShardExactlyOnce) {
  CreateOrdersCustomers();
  ASSERT_TRUE(dist_.cluster().EnableReplication().ok());
  LoadRandom(808, 100, 15);
  ASSERT_TRUE(dist_.cluster().FailDn(2).ok());

  Query("SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders");
  EXPECT_TRUE(dist_.last().distributed);
  EXPECT_EQ(dist_.last().stats.num_serving, 3);
  Query("SELECT cust, COUNT(*) AS n FROM orders GROUP BY cust");
  Query("SELECT segment, SUM(amount) AS s FROM orders JOIN customers ON "
        "cust = c_id WHERE amount > 100 GROUP BY segment");
  EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
}

TEST_F(DistributedSqlTest, ColumnarPathStaysFreshAndRefreshMerges) {
  CreateOrdersCustomers();
  LoadRandom(909, 120, 15);
  ASSERT_TRUE(dist_.RegisterColumnar("orders").ok());

  Query("SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders WHERE "
        "amount > 250");
  EXPECT_TRUE(dist_.last().distributed);
  EXPECT_EQ(dist_.last().stats.columnar_shards, 4u);

  // A write lands in the mutated shard's delta tail; every shard stays
  // columnar and the new row is visible immediately. RefreshColumnar then
  // folds the tail so the next scan is all sealed chunks again.
  Exec("INSERT INTO orders VALUES (100000, 1, 300, 1)");
  Query("SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders WHERE "
        "amount > 250");
  EXPECT_EQ(dist_.last().stats.columnar_shards, 4u);
  EXPECT_GE(dist_.last().stats.scan_stats.delta_rows, 1u);
  auto merged = dist_.RefreshColumnar("orders");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 1u);
  Query("SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders WHERE "
        "amount > 250");
  EXPECT_EQ(dist_.last().stats.columnar_shards, 4u);
  EXPECT_EQ(dist_.last().stats.scan_stats.delta_rows, 0u);
}

TEST_F(DistributedSqlTest, FallbackShapesStillAnswerCorrectly) {
  CreateOrdersCustomers();
  LoadRandom(111, 60, 10);

  Query("SELECT o_id, segment FROM orders LEFT JOIN customers ON "
        "cust = c_id WHERE amount > 100");
  EXPECT_FALSE(dist_.last().distributed);
  EXPECT_FALSE(dist_.last().fallback_reason.empty());

  Query("SELECT SUM(amount + qty) AS s FROM orders");
  EXPECT_FALSE(dist_.last().distributed);

  Query("SELECT DISTINCT cust FROM orders WHERE amount > 400");
  EXPECT_FALSE(dist_.last().distributed);

  Query("SELECT cust FROM orders WHERE amount > 450 UNION ALL "
        "SELECT c_id FROM customers WHERE segment = 0");
  EXPECT_FALSE(dist_.last().distributed);
}

TEST_F(DistributedSqlTest, AcceptanceJoinAggregateOverFourDns) {
  // The headline shape: SELECT with WHERE + equi-join + GROUP BY through
  // the SQL front-end, distributed across >= 3 DNs, bit-identical to the
  // single-node executor, with EXPLAIN naming scan path + join strategy.
  CreateOrdersCustomers();
  LoadRandom(1234, 200, 30);
  dist_.Analyze();
  local_.Analyze();

  const std::string q =
      "SELECT segment, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS "
      "av FROM orders JOIN customers ON cust = c_id WHERE amount > 120 "
      "GROUP BY segment";
  Table result = Query(q);
  EXPECT_GT(result.num_rows(), 0u);
  ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
  EXPECT_GE(dist_.last().stats.num_serving, 3);
  EXPECT_TRUE(dist_.last().stats.joined);

  auto explain = dist_.Explain(q);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("DISTRIBUTED PLAN"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("FINALAGG"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("PARTIALAGG"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("HASHJOIN"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("DISTSCAN"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("path=row"), std::string::npos) << *explain;
  EXPECT_TRUE(explain->find("strategy=broadcast") != std::string::npos ||
              explain->find("strategy=repartition") != std::string::npos)
      << *explain;
}

TEST_F(DistributedSqlTest, CappedExchangeSpillsAndStaysEquivalent) {
  // A channel cap tiny enough that every exchange batch overflows the
  // in-memory window: the whole randomized join suite must keep returning
  // bit-identical rows (the oracle comparison inside Query), with the
  // overflow accounted in spill_bytes / exchange.bytes_spilled and every
  // temp segment cleaned up before the query returns.
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / "ofi-sql-spill-capped";
  fs::remove_all(dir);
  fs::create_directories(dir);

  CreateOrdersCustomers();
  LoadRandom(606, 140, 18);
  dist_.Analyze();
  local_.Analyze();
  dist_.exec_options().max_channel_bytes = 48;
  dist_.exec_options().spill_dir = dir.string();

  Rng rng(707);
  size_t spilling_queries = 0;
  for (int q = 0; q < 6; ++q) {
    std::string where = " WHERE amount > " + std::to_string(rng.Uniform(0, 450));
    Query("SELECT segment, COUNT(*) AS n, SUM(amount) AS total FROM orders "
          "JOIN customers ON cust = c_id" + where + " GROUP BY segment");
    ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
    EXPECT_TRUE(dist_.last().stats.joined);
    if (dist_.last().stats.spill_bytes > 0) ++spilling_queries;
    EXPECT_TRUE(fs::is_empty(dir));  // segments never outlive their query
  }
  EXPECT_EQ(spilling_queries, 6u);
  EXPECT_GT(dist_.cluster().metrics().Get("exchange.bytes_spilled"), 0);
  EXPECT_EQ(dist_.cluster().metrics().Get("exchange.bytes_denied"), 0);

  // Deterministic receive order: with the cap lifted the same query must
  // produce the identical row sequence, not just the same row set.
  const std::string q =
      "SELECT o_id, amount, segment FROM orders JOIN customers ON cust = c_id";
  auto capped = dist_.Execute(q);
  ASSERT_TRUE(capped.ok());
  EXPECT_GT(dist_.last().stats.spill_bytes, 0u);
  dist_.exec_options().max_channel_bytes = 0;
  auto uncapped = dist_.Execute(q);
  ASSERT_TRUE(uncapped.ok());
  EXPECT_EQ(dist_.last().stats.spill_bytes, 0u);
  ASSERT_EQ(capped->num_rows(), uncapped->num_rows());
  for (size_t i = 0; i < capped->num_rows(); ++i) {
    EXPECT_EQ(RowKey(capped->rows()[i]), RowKey(uncapped->rows()[i]))
        << "row order diverged at " << i;
  }
  fs::remove_all(dir);
}

TEST_F(DistributedSqlTest, PipelinedMatchesBarrierBitIdentical) {
  // Every query shape runs twice — barrier then pipelined — and must
  // produce the identical row *sequence* (not just set): the streaming
  // scatter keeps batch framing and the deterministic receive order, so
  // thread interleaving cannot leak into results.
  CreateOrdersCustomers();
  LoadRandom(1717, 140, 18);
  dist_.Analyze();
  local_.Analyze();

  Rng rng(2718);
  auto both_modes = [&](const std::string& q) {
    dist_.exec_options().pipeline = false;
    auto barrier = dist_.Execute(q);
    ASSERT_TRUE(barrier.ok()) << q << ": " << barrier.status().ToString();
    EXPECT_FALSE(dist_.last().stats.pipelined);
    dist_.exec_options().pipeline = true;
    auto piped = dist_.Execute(q);
    ASSERT_TRUE(piped.ok()) << q << ": " << piped.status().ToString();
    if (dist_.last().distributed) {
      EXPECT_TRUE(dist_.last().stats.pipelined) << q;
    }
    ASSERT_EQ(piped->num_rows(), barrier->num_rows()) << q;
    for (size_t i = 0; i < piped->num_rows(); ++i) {
      ASSERT_EQ(RowKey(piped->rows()[i]), RowKey(barrier->rows()[i]))
          << q << " row order diverged at " << i;
    }
  };

  for (int q = 0; q < 5; ++q) {
    std::string where =
        " WHERE amount > " + std::to_string(rng.Uniform(0, 450));
    both_modes("SELECT o_id, amount, segment FROM orders JOIN customers ON "
               "cust = c_id" + where);
    both_modes("SELECT segment, COUNT(*) AS n, SUM(amount) AS total FROM "
               "orders JOIN customers ON cust = c_id" + where +
               " GROUP BY segment");
  }
  both_modes("SELECT cust, COUNT(*) AS n, SUM(qty) AS q FROM orders "
             "GROUP BY cust");
  both_modes("SELECT * FROM orders");
  both_modes("SELECT o_id, amount FROM orders ORDER BY o_id LIMIT 10");
}

TEST_F(DistributedSqlTest, PipelinedCappedExchangeStaysEquivalentNoLeaks) {
  // Tiny channel cap under the pipelined executor: results stay equivalent
  // to the single-node oracle and no spill segment outlives its query.
  // Exact spill counters are NOT asserted — under pipelining they depend
  // on how far each consumer lagged its producer (the sim charges the
  // deterministic modeled spill instead).
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / "ofi-sql-pipe-capped";
  fs::remove_all(dir);
  fs::create_directories(dir);

  CreateOrdersCustomers();
  LoadRandom(606, 140, 18);
  dist_.Analyze();
  local_.Analyze();
  dist_.exec_options().pipeline = true;
  dist_.exec_options().max_channel_bytes = 48;
  dist_.exec_options().spill_dir = dir.string();

  Rng rng(707);
  for (int q = 0; q < 4; ++q) {
    std::string where =
        " WHERE amount > " + std::to_string(rng.Uniform(0, 450));
    Query("SELECT segment, COUNT(*) AS n, SUM(amount) AS total FROM orders "
          "JOIN customers ON cust = c_id" + where + " GROUP BY segment");
    ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
    EXPECT_TRUE(dist_.last().stats.pipelined);
    EXPECT_TRUE(fs::is_empty(dir));  // segments never outlive their query
  }

  // Identical row sequence with and without the cap, same as the barrier
  // guarantee.
  const std::string q =
      "SELECT o_id, amount, segment FROM orders JOIN customers ON cust = c_id";
  auto capped = dist_.Execute(q);
  ASSERT_TRUE(capped.ok());
  dist_.exec_options().max_channel_bytes = 0;
  auto uncapped = dist_.Execute(q);
  ASSERT_TRUE(uncapped.ok());
  ASSERT_EQ(capped->num_rows(), uncapped->num_rows());
  for (size_t i = 0; i < capped->num_rows(); ++i) {
    EXPECT_EQ(RowKey(capped->rows()[i]), RowKey(uncapped->rows()[i]))
        << "row order diverged at " << i;
  }
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

TEST_F(DistributedSqlTest, PipelinedFailoverStaysEquivalent) {
  CreateOrdersCustomers();
  ASSERT_TRUE(dist_.cluster().EnableReplication().ok());
  LoadRandom(808, 100, 15);
  ASSERT_TRUE(dist_.cluster().FailDn(2).ok());
  dist_.exec_options().pipeline = true;

  Query("SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders");
  EXPECT_TRUE(dist_.last().distributed);
  EXPECT_EQ(dist_.last().stats.num_serving, 3);
  Query("SELECT segment, SUM(amount) AS s FROM orders JOIN customers ON "
        "cust = c_id WHERE amount > 100 GROUP BY segment");
  EXPECT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
  EXPECT_TRUE(dist_.last().stats.pipelined);
}

TEST_F(DistributedSqlTest, PipelinedOverlapsProducerAndConsumerFrontiers) {
  // The deterministic overlap assertion: the same join on two identically
  // loaded clusters (same statements, same sharding — a query's sim
  // latency depends on the DN timelines, so the two modes must not share
  // one session) reports pipeline_overlap_us > 0 in pipelined mode (some
  // consumer decode began before the last producer finished) and finishes
  // no later in simulated time than the barrier run.
  DistributedSqlSession barrier_sess(4);
  DistributedSqlSession piped_sess(4);
  auto exec_both = [&](const std::string& stmt) {
    ASSERT_TRUE(barrier_sess.Execute(stmt).ok()) << stmt;
    ASSERT_TRUE(piped_sess.Execute(stmt).ok()) << stmt;
  };
  exec_both("CREATE TABLE orders (o_id BIGINT, cust BIGINT, amount BIGINT, "
            "qty BIGINT)");
  exec_both("CREATE TABLE customers (c_id BIGINT, segment BIGINT)");
  Rng rng(3141);
  for (int64_t c = 0; c < 20; ++c) {
    exec_both("INSERT INTO customers VALUES (" + std::to_string(c) + ", " +
              std::to_string(rng.Uniform(0, 3)) + ")");
  }
  for (int64_t o = 0; o < 160; ++o) {
    exec_both("INSERT INTO orders VALUES (" + std::to_string(o) + ", " +
              std::to_string(rng.Uniform(0, 20)) + ", " +
              std::to_string(rng.Uniform(1, 500)) + ", " +
              std::to_string(rng.Uniform(1, 9)) + ")");
  }
  barrier_sess.Analyze();
  piped_sess.Analyze();
  piped_sess.exec_options().pipeline = true;

  const std::string q =
      "SELECT segment, COUNT(*) AS n, SUM(amount) AS total FROM orders "
      "JOIN customers ON cust = c_id GROUP BY segment";
  auto b = barrier_sess.Execute(q);
  ASSERT_TRUE(b.ok());
  const auto barrier = barrier_sess.last().stats;
  ASSERT_TRUE(barrier_sess.last().distributed);
  EXPECT_FALSE(barrier.pipelined);
  EXPECT_EQ(barrier.pipeline_overlap_us, 0);
  EXPECT_EQ(barrier.batches_streamed, 0u);

  auto pr = piped_sess.Execute(q);
  ASSERT_TRUE(pr.ok());
  const auto piped = piped_sess.last().stats;
  ASSERT_TRUE(piped_sess.last().distributed);
  EXPECT_TRUE(piped.pipelined);
  EXPECT_GT(piped.pipeline_overlap_us, 0);
  EXPECT_GT(piped.batches_streamed, 0u);
  EXPECT_LE(piped.sim_latency_us, barrier.sim_latency_us);
  EXPECT_LT(piped.sim_latency_us, piped.sim_latency_serial_us);
  // Same answer, bit-identical row order, from both clusters.
  ASSERT_EQ(b->num_rows(), pr->num_rows());
  for (size_t i = 0; i < b->num_rows(); ++i) {
    EXPECT_EQ(RowKey(b->rows()[i]), RowKey(pr->rows()[i]));
  }
}

TEST_F(DistributedSqlTest, PipelineFallsBackToBarrierUnderStrictCaps) {
  // Strict channel limits deny at a timing-dependent point under overlap,
  // so the executor silently keeps the barrier there (and says so in
  // EXPLAIN).
  CreateOrdersCustomers();
  LoadRandom(999, 60, 10);
  dist_.exec_options().pipeline = true;
  dist_.exec_options().max_channel_bytes = 1 << 20;  // roomy: sends succeed
  dist_.exec_options().strict_channel_limit = true;

  const std::string q =
      "SELECT segment, COUNT(*) AS n FROM orders JOIN customers ON "
      "cust = c_id GROUP BY segment";
  auto explain = dist_.Explain(q);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("exec=barrier (pipeline disabled under strict"),
            std::string::npos)
      << *explain;
  Query(q);
  ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
  EXPECT_FALSE(dist_.last().stats.pipelined);

  dist_.exec_options().strict_channel_limit = false;
  auto piped = dist_.Explain(q);
  ASSERT_TRUE(piped.ok());
  EXPECT_NE(piped->find("exec=pipelined"), std::string::npos) << *piped;
}

TEST_F(DistributedSqlTest, BuildSideBudgetSpoolsWithoutChangingResults) {
  CreateOrdersCustomers();
  LoadRandom(909, 120, 16);
  dist_.Analyze();
  local_.Analyze();
  dist_.exec_options().max_build_bytes = 128;  // far below any build side

  Query("SELECT segment, SUM(amount) AS total FROM orders JOIN customers "
        "ON cust = c_id GROUP BY segment");
  ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
  EXPECT_GT(dist_.last().stats.build_spill_bytes, 0u);
  EXPECT_GT(dist_.cluster().metrics().Get("exchange.bytes_spilled"), 0);
}

TEST_F(DistributedSqlTest, ExplainReportsSpillPolicy) {
  CreateOrdersCustomers();
  Exec("INSERT INTO orders VALUES (1, 5, 100, 1)");
  Exec("INSERT INTO customers VALUES (5, 2)");
  dist_.exec_options().max_channel_bytes = 4096;
  dist_.exec_options().max_spill_bytes = 1 << 20;
  dist_.exec_options().max_build_bytes = 8192;

  const std::string q =
      "SELECT segment, COUNT(*) AS n FROM orders JOIN customers ON "
      "cust = c_id GROUP BY segment";
  auto spills = dist_.Explain(q);
  ASSERT_TRUE(spills.ok());
  EXPECT_NE(spills->find("exchange: channel cap 4096B"), std::string::npos)
      << *spills;
  EXPECT_NE(spills->find("overflow spills to"), std::string::npos) << *spills;
  EXPECT_NE(spills->find("spill budget 1048576B"), std::string::npos)
      << *spills;
  EXPECT_NE(spills->find("join build: in-memory cap 8192B"), std::string::npos)
      << *spills;

  dist_.exec_options().strict_channel_limit = true;
  auto strict = dist_.Explain(q);
  ASSERT_TRUE(strict.ok());
  EXPECT_NE(strict->find("overflow denied (strict)"), std::string::npos)
      << *strict;
}

// --- Plan-layer unit tests ---------------------------------------------------

TEST(DistPlanShapeTest, MalformedPlansAreRejected) {
  Cluster cluster(3, Protocol::kGtmLite);
  sql::Schema schema({sql::Column{"k", sql::TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster.CreateTable("t", schema).ok());

  // No Gather at the root.
  auto bare = ExecuteDistPlan(&cluster, MakeDistScan("t", nullptr));
  ASSERT_FALSE(bare.ok());
  EXPECT_TRUE(bare.status().IsInvalidArgument());

  // PartialAgg without FinalAgg.
  auto lonely = ExecuteDistPlan(
      &cluster, MakeGather(MakeDistPartialAgg(MakeDistScan("t", nullptr), {},
                                              {{sql::AggFunc::kCount, "", "n"}}),
                           /*gather_rows=*/false));
  ASSERT_FALSE(lonely.ok());
  EXPECT_TRUE(lonely.status().IsInvalidArgument());

  // The morsel footgun is rejected at the plan executor too.
  DistExecOptions bad;
  bad.parallel = true;
  bad.columnar_morsel_parallel = true;
  auto footgun = ExecuteDistPlan(
      &cluster, MakeGather(MakeDistScan("t", nullptr), /*gather_rows=*/true),
      bad);
  ASSERT_FALSE(footgun.ok());
  EXPECT_TRUE(footgun.status().IsInvalidArgument());
}

TEST(DistPlanShapeTest, PlainDistributedScanGathersRows) {
  Cluster cluster(3, Protocol::kGtmLite);
  sql::Schema schema({sql::Column{"k", sql::TypeId::kInt64, ""},
                      sql::Column{"v", sql::TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster.CreateTable("t", schema).ok());
  for (int64_t k = 0; k < 30; ++k) {
    Txn txn = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(txn.Insert("t", sql::Value(k), {sql::Value(k), sql::Value(k * 2)}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  auto res = ExecuteDistPlan(
      &cluster,
      MakeGather(MakeDistScan("t", sql::Expr::Gt("v", sql::Value(40))),
                 /*gather_rows=*/true));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->table.num_rows(), 9u);  // v = 42..58 even
  EXPECT_GT(res->stats.result_bytes, 0u);
  EXPECT_GT(res->stats.sim_latency_us, 0);
}

}  // namespace
}  // namespace ofi::cluster
