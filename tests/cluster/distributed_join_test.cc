/// Cross-shard joins over the exchange: under BOTH movement strategies the
/// distributed result must be bit-identical (after canonical ordering) to
/// the single-node hash-join reference, on randomized workloads and on the
/// edge cases (empty shard, all rows on one shard, NULL join keys,
/// duplicate keys). Byte accounting must favor the right strategy.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cluster/mpp_query.h"
#include "common/rng.h"
#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::Table;
using sql::TypeId;
using sql::Value;

Schema OrdersSchema() {
  return Schema({Column{"o_id", TypeId::kInt64, ""},
                 Column{"cust", TypeId::kInt64, ""},
                 Column{"amount", TypeId::kInt64, ""}});
}

Schema CustomersSchema() {
  return Schema({Column{"c_id", TypeId::kInt64, ""},
                 Column{"segment", TypeId::kInt64, ""}});
}

/// Total order over rows so "bit-identical after canonical ordering" is a
/// straight vector comparison. Compares the rendered values (NULL sorts
/// first) column by column.
std::string RowKey(const Row& r) {
  std::string k;
  for (const auto& v : r) {
    k += v.is_null() ? std::string("\x01<null>") : v.ToString();
    k += '\x1f';
  }
  return k;
}

std::vector<Row> Canonical(const Table& t) {
  std::vector<Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return RowKey(a) < RowKey(b);
  });
  return rows;
}

void ExpectSameRows(const Table& got, const Table& want) {
  std::vector<Row> g = Canonical(got), w = Canonical(want);
  ASSERT_EQ(g.size(), w.size());
  for (size_t i = 0; i < g.size(); ++i) {
    ASSERT_EQ(g[i].size(), w[i].size()) << "row " << i;
    for (size_t c = 0; c < g[i].size(); ++c) {
      // Bit-identical: same type AND same payload, not just Compare-equal.
      EXPECT_EQ(g[i][c].type(), w[i][c].type()) << i << "," << c;
      EXPECT_TRUE(g[i][c].Equals(w[i][c]))
          << i << "," << c << ": " << g[i][c].ToString() << " vs "
          << w[i][c].ToString();
    }
  }
}

/// Single-node reference: both tables whole in one catalog, same join plan.
Table ReferenceJoin(const std::vector<Row>& left, const std::vector<Row>& right,
                    const DistributedJoinSpec& spec) {
  sql::Catalog catalog;
  catalog.Register(spec.left_table, Table(OrdersSchema(), left));
  catalog.Register(spec.right_table, Table(CustomersSchema(), right));
  sql::ExprPtr pred = Expr::EqCols(spec.left_key, spec.right_key);
  if (spec.residual) pred = Expr::And(pred, spec.residual->Clone());
  auto plan = sql::MakeJoin(
      sql::MakeScan(spec.left_table,
                    spec.left_filter ? spec.left_filter->Clone() : nullptr),
      sql::MakeScan(spec.right_table,
                    spec.right_filter ? spec.right_filter->Clone() : nullptr),
      pred);
  sql::Executor exec(&catalog);
  return exec.Execute(plan).ValueOrDie();
}

class DistributedJoinTest : public ::testing::Test {
 protected:
  DistributedJoinTest() : cluster_(4, Protocol::kGtmLite) {
    EXPECT_TRUE(cluster_.CreateTable("orders", OrdersSchema()).ok());
    EXPECT_TRUE(cluster_.CreateTable("customers", CustomersSchema()).ok());
  }

  void InsertOrder(Row row) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("orders", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
    orders_.push_back(std::move(row));
  }

  void InsertCustomer(Row row) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("customers", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
    customers_.push_back(std::move(row));
  }

  void LoadRandom(int num_orders, int num_customers, uint64_t seed,
                  double null_fraction = 0.05) {
    Rng rng(seed);
    for (int64_t c = 0; c < num_customers; ++c) {
      InsertCustomer({Value(c), Value(rng.Uniform(0, 3))});
    }
    for (int64_t o = 0; o < num_orders; ++o) {
      // Duplicate keys on both sides by construction; some orders point at
      // customers that do not exist, some have NULL keys.
      Value cust = rng.Chance(null_fraction)
                       ? Value::Null()
                       : Value(rng.Uniform(0, num_customers + 5));
      InsertOrder({Value(o), cust, Value(rng.Uniform(1, 1000))});
    }
  }

  DistributedJoinSpec Spec() {
    DistributedJoinSpec spec;
    spec.left_table = "orders";
    spec.right_table = "customers";
    spec.left_key = "cust";
    spec.right_key = "c_id";
    return spec;
  }

  void ExpectMatchesReference(const DistributedJoinSpec& spec,
                              JoinStrategy strategy) {
    DistributedJoinOptions opts;
    opts.strategy = strategy;
    auto result = DistributedJoin(&cluster_, spec, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(result->table, ReferenceJoin(orders_, customers_, spec));
  }

  Cluster cluster_;
  std::vector<Row> orders_;
  std::vector<Row> customers_;
};

TEST_F(DistributedJoinTest, RandomizedBothStrategiesMatchReference) {
  LoadRandom(300, 40, /*seed=*/101);
  ExpectMatchesReference(Spec(), JoinStrategy::kBroadcast);
  ExpectMatchesReference(Spec(), JoinStrategy::kRepartition);
}

TEST_F(DistributedJoinTest, TinyChannelCapSpillsEveryExchangeBitIdentical) {
  // A cap smaller than any encoded batch forces spill on every exchange
  // channel, both strategies. The join must stay bit-identical to the
  // single-node reference AND to the uncapped distributed run row-for-row
  // (deterministic receive order survives the disk round trip), with the
  // overflow accounted in spill_bytes and charged in simulated latency.
  LoadRandom(300, 40, /*seed=*/101);
  for (auto strategy : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    DistributedJoinOptions plain;
    plain.strategy = strategy;
    auto uncapped = DistributedJoin(&cluster_, Spec(), plain);
    ASSERT_TRUE(uncapped.ok());
    EXPECT_EQ(uncapped->spill_bytes, 0u);

    DistributedJoinOptions capped = plain;
    capped.max_channel_bytes = 16;
    auto spilled = DistributedJoin(&cluster_, Spec(), capped);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    EXPECT_GT(spilled->spill_bytes, 0u);
    // Lifetime traffic accounting is cap-independent.
    EXPECT_EQ(spilled->shuffle_bytes, uncapped->shuffle_bytes);
    EXPECT_EQ(spilled->broadcast_bytes, uncapped->broadcast_bytes);
    EXPECT_EQ(spilled->exchange_batches, uncapped->exchange_batches);
    // The spilled run is strictly slower in simulated time — disk I/O is
    // charged, not free.
    EXPECT_GT(spilled->sim_latency_us, uncapped->sim_latency_us);

    // Row-for-row identical gather order, then the reference check.
    ASSERT_EQ(spilled->table.num_rows(), uncapped->table.num_rows());
    for (size_t i = 0; i < uncapped->table.num_rows(); ++i) {
      const Row& a = uncapped->table.rows()[i];
      const Row& b = spilled->table.rows()[i];
      ASSERT_EQ(a.size(), b.size());
      for (size_t c = 0; c < a.size(); ++c) {
        EXPECT_TRUE(a[c].Equals(b[c])) << "row " << i << " col " << c;
      }
    }
    ExpectSameRows(spilled->table, ReferenceJoin(orders_, customers_, Spec()));
  }
  EXPECT_GT(cluster_.metrics().Get("exchange.bytes_spilled"), 0);
  EXPECT_EQ(cluster_.metrics().Get("exchange.bytes_denied"), 0);
}

TEST_F(DistributedJoinTest, SeveralSeedsUnderAutoStrategy) {
  // Fresh cluster per seed; kAuto must pick some strategy and stay exact.
  for (uint64_t seed : {7u, 8u, 9u}) {
    Cluster cluster(4, Protocol::kGtmLite);
    ASSERT_TRUE(cluster.CreateTable("orders", OrdersSchema()).ok());
    ASSERT_TRUE(cluster.CreateTable("customers", CustomersSchema()).ok());
    std::vector<Row> orders, customers;
    Rng rng(seed);
    for (int64_t c = 0; c < 25; ++c) {
      Row row = {Value(c), Value(rng.Uniform(0, 2))};
      Txn t = cluster.Begin(TxnScope::kSingleShard);
      ASSERT_TRUE(t.Insert("customers", row[0], row).ok());
      ASSERT_TRUE(t.Commit().ok());
      customers.push_back(row);
    }
    for (int64_t o = 0; o < 120; ++o) {
      Row row = {Value(o), Value(rng.Uniform(0, 30)), Value(rng.Uniform(1, 99))};
      Txn t = cluster.Begin(TxnScope::kSingleShard);
      ASSERT_TRUE(t.Insert("orders", row[0], row).ok());
      ASSERT_TRUE(t.Commit().ok());
      orders.push_back(row);
    }
    DistributedJoinSpec spec;
    spec.left_table = "orders";
    spec.right_table = "customers";
    spec.left_key = "cust";
    spec.right_key = "c_id";
    auto result = DistributedJoin(&cluster, spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(result->table, ReferenceJoin(orders, customers, spec));
  }
}

TEST_F(DistributedJoinTest, FiltersPushedBelowExchangeAndResidualApplied) {
  LoadRandom(200, 30, /*seed=*/55);
  DistributedJoinSpec spec = Spec();
  spec.left_filter = Expr::Gt("amount", Value(300));
  spec.right_filter = Expr::Lt("segment", Value(3));
  spec.residual = Expr::Gt("amount", Value(350));
  ExpectMatchesReference(spec, JoinStrategy::kBroadcast);
  ExpectMatchesReference(spec, JoinStrategy::kRepartition);
}

TEST_F(DistributedJoinTest, NullKeysNeverMatch) {
  InsertCustomer({Value(int64_t{1}), Value(int64_t{0})});
  InsertCustomer({Value(int64_t{2}), Value(int64_t{1})});
  InsertOrder({Value(int64_t{10}), Value::Null(), Value(int64_t{5})});
  InsertOrder({Value(int64_t{11}), Value(int64_t{1}), Value(int64_t{6})});
  InsertOrder({Value(int64_t{12}), Value::Null(), Value(int64_t{7})});
  for (auto s : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    DistributedJoinOptions opts;
    opts.strategy = s;
    auto result = DistributedJoin(&cluster_, Spec(), opts);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->table.num_rows(), 1u);
    EXPECT_EQ(result->table.rows()[0][0].AsInt(), 11);
    ExpectSameRows(result->table, ReferenceJoin(orders_, customers_, Spec()));
  }
}

TEST_F(DistributedJoinTest, DuplicateKeysProduceFullCrossProductPerKey) {
  // c_id doubles as the storage key, so right-side duplicates are not
  // representable here (the self-join below covers both-sides duplicates);
  // this pins the left-side multiplicity exactly: 3 orders sharing key 7 x
  // 1 customer -> 3 joined rows.
  InsertCustomer({Value(int64_t{7}), Value(int64_t{0})});
  for (int64_t o = 0; o < 3; ++o) {
    InsertOrder({Value(o), Value(int64_t{7}), Value(o * 10)});
  }
  for (auto s : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    DistributedJoinOptions opts;
    opts.strategy = s;
    auto result = DistributedJoin(&cluster_, Spec(), opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.num_rows(), 3u);
    ExpectSameRows(result->table, ReferenceJoin(orders_, customers_, Spec()));
  }
}

// Self-join on a non-unique column: duplicate join keys on BOTH sides, so
// every key with multiplicity m contributes m^2 joined rows.
TEST_F(DistributedJoinTest, SelfJoinWithDuplicatesOnBothSides) {
  Rng rng(17);
  for (int64_t o = 0; o < 60; ++o) {
    InsertOrder({Value(o), Value(rng.Uniform(0, 9)), Value(rng.Uniform(1, 50))});
  }
  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "orders";
  spec.left_key = "cust";
  spec.right_key = "cust";
  sql::Catalog catalog;
  catalog.Register("orders", Table(OrdersSchema(), orders_));
  sql::Executor exec(&catalog);
  Table want = exec.Execute(sql::MakeJoin(sql::MakeScan("orders"),
                                          sql::MakeScan("orders"),
                                          Expr::EqCols("cust", "cust")))
                   .ValueOrDie();
  for (auto s : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    DistributedJoinOptions opts;
    opts.strategy = s;
    auto result = DistributedJoin(&cluster_, spec, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(result->table, want);
  }
}

TEST_F(DistributedJoinTest, EmptyTablesAndEmptyShards) {
  // Both sides empty.
  for (auto s : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    DistributedJoinOptions opts;
    opts.strategy = s;
    auto result = DistributedJoin(&cluster_, Spec(), opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->table.num_rows(), 0u);
    EXPECT_EQ(result->table.schema().num_columns(), 5u);
  }
  // All rows on ONE shard: every key hashes to the same DN.
  int64_t k = 0;
  int dn0 = cluster_.ShardFor(Value(k));
  std::vector<int64_t> same_shard;
  for (int64_t i = 0; same_shard.size() < 6; ++i) {
    if (cluster_.ShardFor(Value(i)) == dn0) same_shard.push_back(i);
  }
  for (size_t i = 0; i < same_shard.size(); ++i) {
    if (i < 2) {
      InsertCustomer({Value(same_shard[i]), Value(int64_t{1})});
    } else {
      InsertOrder({Value(same_shard[i]), Value(same_shard[0]),
                   Value(static_cast<int64_t>(i))});
    }
  }
  for (auto s : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    DistributedJoinOptions opts;
    opts.strategy = s;
    auto result = DistributedJoin(&cluster_, Spec(), opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.num_rows(), 4u);
    ExpectSameRows(result->table, ReferenceJoin(orders_, customers_, Spec()));
  }
}

TEST_F(DistributedJoinTest, SerialAndParallelExecutionBitIdentical) {
  LoadRandom(150, 20, /*seed=*/31);
  DistributedJoinOptions par, ser;
  ser.parallel = false;
  cluster_.ResetSimTime();
  auto a = DistributedJoin(&cluster_, Spec(), par);
  cluster_.ResetSimTime();
  auto b = DistributedJoin(&cluster_, Spec(), ser);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->strategy, b->strategy);
  EXPECT_EQ(a->shuffle_bytes, b->shuffle_bytes);
  EXPECT_EQ(a->broadcast_bytes, b->broadcast_bytes);
  EXPECT_EQ(a->sim_latency_us, b->sim_latency_us);
  // NOT canonicalized: the gather order itself must be deterministic.
  ASSERT_EQ(a->table.num_rows(), b->table.num_rows());
  for (size_t i = 0; i < a->table.num_rows(); ++i) {
    for (size_t c = 0; c < a->table.schema().num_columns(); ++c) {
      EXPECT_TRUE(a->table.rows()[i][c].Equals(b->table.rows()[i][c]));
    }
  }
}

TEST_F(DistributedJoinTest, AutoPrefersBroadcastForSmallBuildSide) {
  LoadRandom(400, 8, /*seed=*/77, /*null_fraction=*/0.0);
  auto result = DistributedJoin(&cluster_, Spec());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, JoinStrategy::kBroadcast);
  EXPECT_FALSE(result->broadcast_left);  // customers (right) is tiny
  EXPECT_GT(result->broadcast_bytes, 0u);
  EXPECT_EQ(result->shuffle_bytes, 0u);
}

TEST_F(DistributedJoinTest, AutoPrefersRepartitionWhenBothSidesLarge) {
  Rng rng(13);
  for (int64_t c = 0; c < 300; ++c) {
    InsertCustomer({Value(c), Value(rng.Uniform(0, 3))});
  }
  for (int64_t o = 0; o < 300; ++o) {
    InsertOrder({Value(o), Value(rng.Uniform(0, 299)), Value(o)});
  }
  auto result = DistributedJoin(&cluster_, Spec());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, JoinStrategy::kRepartition);
  EXPECT_GT(result->shuffle_bytes, 0u);
  EXPECT_EQ(result->broadcast_bytes, 0u);
  // Repartition must also ship fewer bytes than forcing broadcast here.
  DistributedJoinOptions bc;
  bc.strategy = JoinStrategy::kBroadcast;
  auto forced = DistributedJoin(&cluster_, Spec(), bc);
  ASSERT_TRUE(forced.ok());
  EXPECT_LT(result->shuffle_bytes, forced->broadcast_bytes);
  ExpectSameRows(result->table, forced->table);
}

TEST_F(DistributedJoinTest, OptimizerStatsDriveTheStrategyDecision) {
  LoadRandom(200, 10, /*seed=*/3, /*null_fraction=*/0.0);
  // Stats claiming both sides are huge flip kAuto to repartition even
  // though the actual small build side would have favored broadcast.
  optimizer::TableStats big;
  big.num_rows = 1000000;
  optimizer::ColumnStats wide;
  wide.avg_width = 64;
  big.columns["x"] = wide;
  optimizer::StatsRegistry registry;
  registry.Put("orders", big);
  registry.Put("customers", big);
  DistributedJoinOptions opts;
  opts.stats = &registry;
  auto result = DistributedJoin(&cluster_, Spec(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, JoinStrategy::kRepartition);
  // And without the registry the same data picks broadcast.
  auto untouched = DistributedJoin(&cluster_, Spec());
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(untouched->strategy, JoinStrategy::kBroadcast);
  ExpectSameRows(result->table, untouched->table);
}

TEST_F(DistributedJoinTest, ChannelAccountingAndMetricsAreConsistent) {
  LoadRandom(250, 25, /*seed=*/9);
  cluster_.metrics().Reset();
  DistributedJoinOptions opts;
  opts.strategy = JoinStrategy::kRepartition;
  auto result = DistributedJoin(&cluster_, Spec(), opts);
  ASSERT_TRUE(result.ok());
  // Channel stats (cross-DN part) must sum to shuffle_bytes.
  size_t cross = 0, loop = 0;
  for (const auto& ch : result->channels) {
    (ch.src == ch.dst ? loop : cross) += ch.bytes;
  }
  EXPECT_EQ(cross, result->shuffle_bytes);
  EXPECT_GT(loop, 0u);  // loopback traffic exists but is not "moved"
  EXPECT_EQ(cluster_.metrics().Get("exchange.bytes"),
            static_cast<int64_t>(result->shuffle_bytes));
  EXPECT_EQ(cluster_.metrics().Get("exchange.batches"),
            static_cast<int64_t>(result->exchange_batches));
  EXPECT_EQ(cluster_.metrics().Get("join.repartition"), 1);
  // Per-pair counters sum back to the total.
  int64_t pair_sum = 0;
  for (const auto& [name, v] : cluster_.metrics().counters()) {
    if (name.rfind("exchange.bytes.d", 0) == 0) pair_sum += v;
  }
  EXPECT_EQ(pair_sum, static_cast<int64_t>(result->shuffle_bytes));
}

TEST_F(DistributedJoinTest, LatencyModelsAndByteBaselinesBehave) {
  LoadRandom(300, 30, /*seed=*/21);
  cluster_.ResetSimTime();
  auto result = DistributedJoin(&cluster_, Spec());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->sim_latency_us, 0);
  // The chained model must cost strictly more than max-over-DNs on 4 DNs.
  EXPECT_GT(result->sim_latency_serial_us, result->sim_latency_us);
  // Either strategy moves less than shipping both relations to one node.
  EXPECT_LT(result->shuffle_bytes + result->broadcast_bytes,
            result->naive_bytes);
  EXPECT_GT(result->result_bytes, 0u);
}

TEST_F(DistributedJoinTest, FailoverServesEveryRowExactlyOnce) {
  Cluster cluster(4, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.EnableReplication().ok());
  ASSERT_TRUE(cluster.CreateTable("orders", OrdersSchema()).ok());
  ASSERT_TRUE(cluster.CreateTable("customers", CustomersSchema()).ok());
  std::vector<Row> orders, customers;
  Rng rng(5);
  for (int64_t c = 0; c < 20; ++c) {
    Row row = {Value(c), Value(rng.Uniform(0, 2))};
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("customers", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
    customers.push_back(row);
  }
  for (int64_t o = 0; o < 100; ++o) {
    Row row = {Value(o), Value(rng.Uniform(0, 21)), Value(o)};
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("orders", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
    orders.push_back(row);
  }
  ASSERT_TRUE(cluster.FailDn(2).ok());
  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "customers";
  spec.left_key = "cust";
  spec.right_key = "c_id";
  for (auto s : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
    DistributedJoinOptions opts;
    opts.strategy = s;
    auto result = DistributedJoin(&cluster, spec, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameRows(result->table, ReferenceJoin(orders, customers, spec));
  }
}

TEST_F(DistributedJoinTest, UnknownTableOrKeyFails) {
  DistributedJoinSpec spec = Spec();
  spec.left_table = "nope";
  EXPECT_FALSE(DistributedJoin(&cluster_, spec).ok());
  spec = Spec();
  spec.right_key = "no_such_col";
  EXPECT_FALSE(DistributedJoin(&cluster_, spec).ok());
}

}  // namespace
}  // namespace ofi::cluster
