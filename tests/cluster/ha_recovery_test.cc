/// High availability (replication + failover) and 2PC in-doubt recovery —
/// failure-injection tests for the MPP substrate.
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema KvSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
}

Value KeyOnShard(const Cluster& cluster, int shard, int64_t start = 0) {
  for (int64_t k = start;; ++k) {
    if (cluster.ShardFor(Value(k)) == shard) return Value(k);
  }
}

class HaTest : public ::testing::Test {
 protected:
  HaTest() : cluster_(3, Protocol::kGtmLite) {
    EXPECT_TRUE(cluster_.CreateTable("t", KvSchema()).ok());
    EXPECT_TRUE(cluster_.EnableReplication().ok());
    for (int shard = 0; shard < 3; ++shard) {
      keys_.push_back(KeyOnShard(cluster_, shard));
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(t.Insert("t", keys_[shard], {keys_[shard], Value(shard * 10)}).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
  }

  Cluster cluster_;
  std::vector<Value> keys_;
};

TEST_F(HaTest, CommittedWritesShipToBackupShadow) {
  EXPECT_GT(cluster_.shadow(0).records_applied(), 0u);
  EXPECT_GT(cluster_.shadow(0).bytes_received(), 0u);
  EXPECT_EQ(cluster_.shadow(0).live_rows(), 1u);
}

TEST_F(HaTest, FailoverServesCommittedData) {
  ASSERT_TRUE(cluster_.FailDn(0).ok());
  EXPECT_TRUE(cluster_.IsDown(0));
  EXPECT_EQ(cluster_.EffectiveDn(0), 1);

  // The committed row of shard 0 is readable from the promoted backup.
  Txn r = cluster_.Begin(TxnScope::kSingleShard);
  auto row = r.Read("t", keys_[0]);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_EQ((*row)[1].AsInt(), 0);
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(HaTest, WritesContinueAfterFailover) {
  ASSERT_TRUE(cluster_.FailDn(0).ok());
  Txn w = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(w.Update("t", keys_[0], {keys_[0], Value(777)}).ok());
  ASSERT_TRUE(w.Commit().ok());

  Txn r = cluster_.Begin(TxnScope::kSingleShard);
  EXPECT_EQ(r.Read("t", keys_[0]).ValueOrDie()[1].AsInt(), 777);
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(HaTest, UncommittedWorkIsLostOnFailure) {
  // An in-flight transaction on DN0 never replicates.
  Txn inflight = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(inflight.Update("t", keys_[0], {keys_[0], Value(999)}).ok());
  ASSERT_TRUE(cluster_.FailDn(0).ok());

  Txn r = cluster_.Begin(TxnScope::kSingleShard);
  EXPECT_EQ(r.Read("t", keys_[0]).ValueOrDie()[1].AsInt(), 0);  // old value
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(HaTest, DeletesReplicateAsTombstones) {
  Txn d = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(d.Delete("t", keys_[0]).ok());
  ASSERT_TRUE(d.Commit().ok());
  ASSERT_TRUE(cluster_.FailDn(0).ok());

  Txn r = cluster_.Begin(TxnScope::kSingleShard);
  EXPECT_TRUE(r.Read("t", keys_[0]).status().IsNotFound());
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(HaTest, DoubleFailureRejected) {
  ASSERT_TRUE(cluster_.FailDn(0).ok());
  EXPECT_TRUE(cluster_.FailDn(0).IsInvalidArgument());
  // DN2's backup is DN0, which is down: failing DN2 would lose data.
  EXPECT_TRUE(cluster_.FailDn(2).IsUnavailable());
  // DN1's backup is DN2 (alive): failing DN1 is survivable.
  ASSERT_TRUE(cluster_.FailDn(1).ok());
}

TEST_F(HaTest, MultiShardTxnAcrossFailover) {
  ASSERT_TRUE(cluster_.FailDn(0).ok());
  Txn t = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(t.Update("t", keys_[0], {keys_[0], Value(1)}).ok());  // on backup
  ASSERT_TRUE(t.Update("t", keys_[2], {keys_[2], Value(1)}).ok());
  ASSERT_TRUE(t.Commit().ok());

  Txn r = cluster_.Begin(TxnScope::kMultiShard);
  EXPECT_EQ(r.Read("t", keys_[0]).ValueOrDie()[1].AsInt(), 1);
  EXPECT_EQ(r.Read("t", keys_[2]).ValueOrDie()[1].AsInt(), 1);
  ASSERT_TRUE(r.Commit().ok());
}

TEST(HaConfigTest, ReplicationNeedsTwoNodes) {
  Cluster single(1, Protocol::kGtmLite);
  EXPECT_TRUE(single.EnableReplication().IsInvalidArgument());
  Cluster pair(2, Protocol::kGtmLite);
  EXPECT_TRUE(pair.FailDn(0).IsInvalidArgument());  // not enabled yet
}

// ---------------------------------------------------------------------------
// 2PC in-doubt recovery.
// ---------------------------------------------------------------------------
class InDoubtTest : public ::testing::Test {
 protected:
  InDoubtTest() : cluster_(2, Protocol::kGtmLite) {
    EXPECT_TRUE(cluster_.CreateTable("t", KvSchema()).ok());
    ka_ = KeyOnShard(cluster_, 0);
    kb_ = KeyOnShard(cluster_, 1);
    for (const Value& k : {ka_, kb_}) {
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(t.Insert("t", k, {k, Value(0)}).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
  }
  Cluster cluster_;
  Value ka_, kb_;
};

TEST_F(InDoubtTest, RecoveryCommitsGloballyCommittedTxns) {
  cluster_.set_delay_commit_confirmations(true);
  Txn w = cluster_.Begin(TxnScope::kMultiShard);
  ASSERT_TRUE(w.Update("t", ka_, {ka_, Value(5)}).ok());
  ASSERT_TRUE(w.Update("t", kb_, {kb_, Value(5)}).ok());
  ASSERT_TRUE(w.Commit().ok());
  // "Coordinator crashed" before confirmations: both DNs hold prepared state.
  ASSERT_GT(cluster_.dn(0)->pending_commit_count(), 0u);

  int resolved = cluster_.RecoverInDoubtTransactions();
  EXPECT_EQ(resolved, 2);
  EXPECT_EQ(cluster_.dn(0)->pending_commit_count(), 0u);

  cluster_.set_delay_commit_confirmations(false);
  Txn r = cluster_.Begin(TxnScope::kMultiShard);
  EXPECT_EQ(r.Read("t", ka_).ValueOrDie()[1].AsInt(), 5);
  EXPECT_EQ(r.Read("t", kb_).ValueOrDie()[1].AsInt(), 5);
  ASSERT_TRUE(r.Commit().ok());
}

TEST_F(InDoubtTest, RecoveryRollsBackGloballyAbortedTxns) {
  // Build a prepared-but-globally-aborted state by hand.
  DataNode* dn0 = cluster_.dn(0);
  txn::Gxid gxid = cluster_.gtm().BeginGlobal();
  txn::Xid xid = dn0->txn_mgr().Begin();
  dn0->txn_mgr().BindGxid(xid, gxid);
  txn::Snapshot snap = dn0->txn_mgr().TakeSnapshot();
  txn::VisibilityChecker vis(&snap, &dn0->txn_mgr().clog(), xid);
  auto table = dn0->GetTable("t");
  ASSERT_TRUE((*table)->Update(ka_, {ka_, Value(42)}, xid, vis).ok());
  ASSERT_TRUE(dn0->txn_mgr().Prepare(xid).ok());
  ASSERT_TRUE(cluster_.gtm().AbortGlobal(gxid).ok());

  EXPECT_EQ(cluster_.RecoverInDoubtTransactions(), 1);
  EXPECT_TRUE(dn0->txn_mgr().clog().IsAborted(xid));

  // The write was rolled back: the key is still writable and reads old data.
  Txn r = cluster_.Begin(TxnScope::kSingleShard);
  EXPECT_EQ(r.Read("t", ka_).ValueOrDie()[1].AsInt(), 0);
  ASSERT_TRUE(r.Commit().ok());
  Txn w = cluster_.Begin(TxnScope::kSingleShard);
  EXPECT_TRUE(w.Update("t", ka_, {ka_, Value(1)}).ok());
  ASSERT_TRUE(w.Commit().ok());
}

TEST_F(InDoubtTest, RecoveryLeavesLiveTransactionsPrepared) {
  DataNode* dn0 = cluster_.dn(0);
  txn::Gxid gxid = cluster_.gtm().BeginGlobal();
  txn::Xid xid = dn0->txn_mgr().Begin();
  dn0->txn_mgr().BindGxid(xid, gxid);
  ASSERT_TRUE(dn0->txn_mgr().Prepare(xid).ok());

  EXPECT_EQ(cluster_.RecoverInDoubtTransactions(), 0);
  EXPECT_TRUE(dn0->txn_mgr().clog().IsPrepared(xid));
  ASSERT_TRUE(cluster_.gtm().AbortGlobal(gxid).ok());
  EXPECT_EQ(cluster_.RecoverInDoubtTransactions(), 1);
}

}  // namespace
}  // namespace ofi::cluster
