/// Exchange subsystem units: the wire codec must round-trip every value
/// type and reject corrupt input; the partition hash must be consistent
/// with Value equality; shuffle/broadcast must deliver deterministically
/// with exact byte/batch accounting; the simulated exchange must keep the
/// max-over-senders (not chained) shape.
#include "cluster/exchange/exchange.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace ofi::cluster::exchange {
namespace {

using sql::Row;
using sql::Value;

Row MixedRow(int64_t i) {
  return {Value(i), Value(static_cast<double>(i) + 0.5),
          Value("s" + std::to_string(i)), Value(i % 2 == 0),
          Value::Timestamp(1000 + i), Value::Null()};
}

TEST(ExchangeCodecTest, RoundTripsEveryValueType) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back(MixedRow(i));
  rows.push_back({});  // empty row
  std::string batch = EncodeBatch(rows, 0, rows.size());
  auto decoded = DecodeBatch(batch);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_EQ((*decoded)[r].size(), rows[r].size()) << "row " << r;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      EXPECT_EQ((*decoded)[r][c].type(), rows[r][c].type());
      EXPECT_TRUE((*decoded)[r][c].Equals(rows[r][c])) << r << "," << c;
    }
  }
}

TEST(ExchangeCodecTest, EncodedSizeMatchesActualEncoding) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 7; ++i) rows.push_back(MixedRow(i));
  std::string batch = EncodeBatch(rows, 0, rows.size());
  size_t per_row = 0;
  for (const auto& r : rows) per_row += EncodedRowSize(r);
  EXPECT_EQ(batch.size(), per_row + 4);  // + batch header
  EXPECT_EQ(EncodedBytes(rows, rows.size()), batch.size());
  // Framed into batches of 2: ceil(7/2)=4 headers.
  EXPECT_EQ(EncodedBytes(rows, 2), per_row + 4 * 4);
}

TEST(ExchangeCodecTest, RejectsCorruptInput) {
  std::vector<Row> rows = {MixedRow(1)};
  std::string batch = EncodeBatch(rows, 0, rows.size());
  // Truncations at every prefix length must fail, never crash.
  for (size_t cut = 0; cut < batch.size(); ++cut) {
    EXPECT_FALSE(DecodeBatch(batch.substr(0, cut)).ok()) << "cut " << cut;
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(DecodeBatch(batch + "x").ok());
  // Unknown type tag.
  std::string bad = batch;
  bad[8] = '\x77';  // first value's tag byte (4 count + 4 value-count)
  EXPECT_FALSE(DecodeBatch(bad).ok());
}

TEST(ExchangePartitionHashTest, ConsistentWithValueEquality) {
  // 1, 1.0 and TIMESTAMP(1) compare equal, so a repartitioned join must
  // route them to one node: equal values -> equal hashes.
  EXPECT_EQ(HashForPartition(Value(int64_t{1})), HashForPartition(Value(1.0)));
  EXPECT_EQ(HashForPartition(Value(int64_t{1})),
            HashForPartition(Value::Timestamp(1)));
  EXPECT_EQ(HashForPartition(Value::Null()), HashForPartition(Value::Null()));
  EXPECT_NE(HashForPartition(Value(int64_t{1})), HashForPartition(Value(1.5)));
  EXPECT_NE(HashForPartition(Value("a")), HashForPartition(Value("b")));
  // Distinct int keys spread over more than one partition residue.
  std::set<uint64_t> residues;
  for (int64_t i = 0; i < 64; ++i) {
    residues.insert(HashForPartition(Value(i)) % 4);
  }
  EXPECT_GT(residues.size(), 1u);
}

TEST(ExchangeNetworkTest, ShuffleDeliversEveryRowExactlyOnceCoPartitioned) {
  const int n = 4;
  ExchangeNetwork net(n, /*batch_rows=*/3);
  Rng rng(11);
  size_t total = 0;
  for (int src = 0; src < n; ++src) {
    std::vector<Row> rows;
    for (int i = 0; i < 20; ++i) {
      rows.push_back({Value(rng.Uniform(0, 50)), Value(int64_t{src})});
    }
    total += rows.size();
    ShufflePartition(&net, src, rows, /*key_idx=*/0);
  }
  size_t received = 0;
  std::set<int64_t> seen_keys;
  for (int dst = 0; dst < n; ++dst) {
    auto rows = net.ReceiveRows(dst);
    ASSERT_TRUE(rows.ok());
    received += rows->size();
    for (const auto& r : *rows) {
      // Co-partitioning: every row with this key landed HERE.
      EXPECT_EQ(HashForPartition(r[0]) % n, static_cast<uint64_t>(dst));
      seen_keys.insert(r[0].AsInt());
    }
  }
  EXPECT_EQ(received, total);
}

TEST(ExchangeNetworkTest, ReceiveOrderIsSourceOrderThenSendOrder) {
  const int n = 3;
  ExchangeNetwork net(n, /*batch_rows=*/2);
  // Sources send to node 0 out of source order; the receiver must still see
  // src-0 rows, then src-1, then src-2, each in send order.
  net.SendRows(2, 0, {{Value(int64_t{20})}, {Value(int64_t{21})}});
  net.SendRows(0, 0, {{Value(int64_t{0})}, {Value(int64_t{1})}, {Value(int64_t{2})}});
  net.SendRows(1, 0, {{Value(int64_t{10})}});
  auto rows = net.ReceiveRows(0);
  ASSERT_TRUE(rows.ok());
  std::vector<int64_t> got;
  for (const auto& r : *rows) got.push_back(r[0].AsInt());
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2, 10, 20, 21}));
}

TEST(ExchangeNetworkTest, BroadcastReachesEveryNodeAndCountsCrossTraffic) {
  const int n = 4;
  ExchangeNetwork net(n, /*batch_rows=*/8);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value(i)});
  BroadcastRows(&net, 1, rows);
  const size_t encoded = EncodedBytes(rows, 8);
  for (int dst = 0; dst < n; ++dst) {
    auto got = net.ReceiveRows(dst);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), rows.size()) << "dst " << dst;
  }
  // Loopback excluded from cross-node accounting: (n-1) copies move.
  EXPECT_EQ(net.CrossNodeBytes(), encoded * (n - 1));
  EXPECT_EQ(net.OutBytes(1), encoded * (n - 1));
  EXPECT_EQ(net.OutBytes(0), 0u);
  EXPECT_EQ(net.InBytes(1), 0u);
  EXPECT_EQ(net.InBytes(2), encoded);
  // ceil(10/8) = 2 batches per destination.
  EXPECT_EQ(net.CrossNodeBatches(), 2u * (n - 1));
  // Stats cover every non-empty channel, loopback included.
  size_t stat_bytes = 0;
  for (const auto& s : net.Stats()) stat_bytes += s.bytes;
  EXPECT_EQ(stat_bytes, encoded * n);
}

TEST(ExchangeSimTest, ParallelExchangeIsMaxOverSendersNotSum) {
  ExchangeLatencyParams p;  // hop 25, batch 4, kb 2
  auto run = [&](int n) {
    SimScheduler sched;
    std::vector<int> res;
    for (int i = 0; i < n; ++i) res.push_back(sched.AddResource());
    ExchangeNetwork net(n, 64);
    std::vector<Row> rows;
    for (int64_t i = 0; i < 200; ++i) rows.push_back({Value(i), Value(i * 7)});
    for (int src = 0; src < n; ++src) ShufflePartition(&net, src, rows, 0);
    std::vector<SimTime> start(static_cast<size_t>(n), 100);
    auto done = SimulateExchange(&sched, res, {&net}, start, p);
    SimTime max_done = 0;
    for (SimTime d : done) max_done = std::max(max_done, d);
    return max_done - 100;
  };
  SimTime two = run(2);
  SimTime eight = run(8);
  // Each node's send/receive work SHRINKS with n (same rows split n ways) —
  // the parallel exchange must not grow linearly in node count.
  EXPECT_LT(eight, 3 * two);
}

TEST(ExchangeSimTest, NoTrafficChargesNothing) {
  SimScheduler sched;
  std::vector<int> res = {sched.AddResource(), sched.AddResource()};
  ExchangeNetwork net(2, 64);
  std::vector<SimTime> start = {40, 60};
  auto done = SimulateExchange(&sched, res, {&net}, start,
                               ExchangeLatencyParams{});
  EXPECT_EQ(done[0], 40);
  EXPECT_EQ(done[1], 60);
}

TEST(ExchangeSimTest, ReceiverWaitsForSlowestSenderPlusHop) {
  ExchangeLatencyParams p;
  SimScheduler sched;
  std::vector<int> res = {sched.AddResource(), sched.AddResource(),
                          sched.AddResource()};
  ExchangeNetwork net(3, 64);
  // Nodes 1 and 2 ship one small batch each to node 0; node 2 starts late.
  net.SendRows(1, 0, {{Value(int64_t{1})}});
  net.SendRows(2, 0, {{Value(int64_t{2})}});
  std::vector<SimTime> start = {0, 0, 500};
  auto done = SimulateExchange(&sched, res, {&net}, start, p);
  size_t batch_bytes = net.channel(1, 0).bytes();
  SimTime send_service = ExchangeServiceTime(batch_bytes, 1, p);
  // Node 2 sends at 500..500+s; node 0 decodes after that + one hop.
  SimTime slowest_arrival = 500 + send_service + p.network_hop_us;
  EXPECT_EQ(done[0],
            slowest_arrival + ExchangeServiceTime(2 * batch_bytes, 2, p));
}

}  // namespace
}  // namespace ofi::cluster::exchange
