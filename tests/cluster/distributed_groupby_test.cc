/// \file distributed_groupby_test.cc
/// \brief The distributed grouped-kernel path end to end: randomized
/// GROUP BY queries over columnar-registered sharded tables must return
/// bit-identical rows (canonical ordering) to the single-node oracle —
/// across NULL keys, dictionary-string keys, multi-column keys, empty
/// shards, kernel vs forced-materialize vs row fallback, and morsel-
/// parallel vs serial execution. Also pins every `columnar.fallback_*`
/// counter to its branch, the opt-in auto-refresh, and the EXPLAIN
/// surfacing. Runs under the tsan preset via scripts/check.sh.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/distributed_sql.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "optimizer/sql_session.h"

namespace ofi::cluster {
namespace {

using sql::Row;
using sql::Table;

std::string RowKey(const Row& row) {
  std::string key;
  for (const auto& v : row) {
    key += v.is_null() ? "\x01<null>" : v.ToString();
    key += '\x1f';
  }
  return key;
}

std::vector<std::string> Canonical(const Table& t) {
  std::vector<std::string> keys;
  keys.reserve(t.num_rows());
  for (const auto& row : t.rows()) keys.push_back(RowKey(row));
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ExpectSameRows(const Table& got, const Table& want,
                    const std::string& context) {
  EXPECT_EQ(got.schema().num_columns(), want.schema().num_columns()) << context;
  auto g = Canonical(got);
  auto w = Canonical(want);
  ASSERT_EQ(g.size(), w.size()) << context;
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i], w[i]) << context << " row " << i;
  }
}

/// Exact (order-sensitive) equality: the determinism contract between two
/// distributed runs of the same plan.
void ExpectIdenticalTables(const Table& a, const Table& b,
                           const std::string& context) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << context;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(RowKey(a.rows()[i]), RowKey(b.rows()[i]))
        << context << " row " << i;
  }
}

class DistributedGroupByTest : public ::testing::Test {
 protected:
  DistributedGroupByTest() : dist_(4), local_(/*capture_threshold=*/-1) {}

  void Exec(const std::string& stmt) {
    auto d = dist_.Execute(stmt);
    ASSERT_TRUE(d.ok()) << stmt << ": " << d.status().ToString();
    auto l = local_.Execute(stmt);
    ASSERT_TRUE(l.ok()) << stmt << ": " << l.status().ToString();
  }

  Table Query(const std::string& query) {
    auto d = dist_.Execute(query);
    EXPECT_TRUE(d.ok()) << query << ": " << d.status().ToString();
    auto l = local_.Execute(query);
    EXPECT_TRUE(l.ok()) << query << ": " << l.status().ToString();
    if (!d.ok() || !l.ok()) return Table{};
    ExpectSameRows(*d, *l, query);
    return std::move(*d);
  }

  /// sales(id BIGINT, k BIGINT, region VARCHAR, amount BIGINT) with NULLs
  /// in the string key and the aggregated column. The leading column is the
  /// cluster's unique shard key, so ids are sequential; grouping happens on
  /// the low-cardinality k / region columns.
  void CreateAndLoadSales(uint64_t seed, int rows) {
    Exec("CREATE TABLE sales (id BIGINT, k BIGINT, region VARCHAR, "
         "amount BIGINT)");
    Rng rng(seed);
    const char* regions[] = {"east", "west", "north", "south", "central"};
    for (int i = 0; i < rows; ++i) {
      std::string region = rng.Chance(0.1)
                               ? "NULL"
                               : "'" + std::string(regions[rng.Uniform(0, 4)]) +
                                     "'";
      std::string amount =
          rng.Chance(0.08) ? "NULL" : std::to_string(rng.Uniform(-200, 800));
      Exec("INSERT INTO sales VALUES (" + std::to_string(i) + ", " +
           std::to_string(rng.Uniform(0, 30)) + ", " + region + ", " + amount +
           ")");
    }
  }

  int64_t Metric(const std::string& name) {
    return dist_.cluster().metrics().Get(name);
  }

  DistributedSqlSession dist_;
  optimizer::SqlSession local_;
};

TEST_F(DistributedGroupByTest, RandomizedGroupedKernelEquivalence) {
  CreateAndLoadSales(/*seed=*/31, /*rows=*/300);
  ASSERT_TRUE(dist_.RegisterColumnar("sales").ok());
  const int64_t filter0 = Metric("columnar.fallback_filter");
  const int64_t agg0 = Metric("columnar.fallback_agg");
  const int64_t gb0 = Metric("columnar.fallback_groupby_type");

  Rng rng(42);
  struct Shape {
    const char* select_list;
    const char* group_by;
  };
  const Shape shapes[] = {
      {"k, COUNT(*) AS n, SUM(amount) AS s, MIN(amount) AS lo, "
       "MAX(amount) AS hi, AVG(amount) AS a",
       "k"},
      {"region, COUNT(*) AS n, SUM(amount) AS s", "region"},
      {"region, k, SUM(amount) AS s, COUNT(amount) AS c", "region, k"},
  };
  for (const Shape& shape : shapes) {
    for (int round = 0; round < 3; ++round) {
      std::string sql = "SELECT " + std::string(shape.select_list) +
                        " FROM sales";
      if (round > 0) {
        sql += " WHERE amount > " + std::to_string(rng.Uniform(-250, 700));
      }
      sql += " GROUP BY " + std::string(shape.group_by);
      Query(sql);
      ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
      // Every fresh shard ran the grouped kernel — no fallback of any kind.
      EXPECT_EQ(dist_.last().stats.columnar_shards, 4u) << sql;
      ASSERT_EQ(dist_.last().stats.per_dn.size(), 4u) << sql;
      for (const auto& info : dist_.last().stats.per_dn) {
        EXPECT_EQ(info.path, "columnar(grouped-kernel)") << sql;
      }
    }
  }
  EXPECT_EQ(Metric("columnar.fallback_filter"), filter0);
  EXPECT_EQ(Metric("columnar.fallback_agg"), agg0);
  EXPECT_EQ(Metric("columnar.fallback_groupby_type"), gb0);
}

TEST_F(DistributedGroupByTest, EmptyShardsContributeNothing) {
  Exec("CREATE TABLE sales (id BIGINT, k BIGINT, region VARCHAR, "
       "amount BIGINT)");
  // Three rows over four DNs: at least one shard's columnar copy is empty.
  Exec("INSERT INTO sales VALUES (1, 1, 'east', 10), (2, 1, 'east', 20), "
       "(3, 1, 'west', NULL)");
  ASSERT_TRUE(dist_.RegisterColumnar("sales").ok());
  Table t = Query(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS s FROM sales "
      "GROUP BY region");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(dist_.last().distributed);
  EXPECT_EQ(dist_.last().stats.columnar_shards, 4u);
}

TEST_F(DistributedGroupByTest, MorselParallelIsBitIdenticalToSerial) {
  CreateAndLoadSales(/*seed=*/37, /*rows=*/400);
  ASSERT_TRUE(dist_.RegisterColumnar("sales").ok());
  const std::string sql =
      "SELECT region, k, COUNT(*) AS n, SUM(amount) AS s, MIN(amount) AS lo "
      "FROM sales GROUP BY region, k";
  auto serial = dist_.Execute(sql);
  ASSERT_TRUE(serial.ok());
  common::ThreadPool pool(4);
  dist_.exec_options().parallel = false;
  dist_.exec_options().columnar_morsel_parallel = true;
  dist_.exec_options().pool = &pool;
  for (int round = 0; round < 3; ++round) {
    auto parallel = dist_.Execute(sql);
    ASSERT_TRUE(parallel.ok());
    // Same partial tables per shard -> same gathered order -> identical
    // rows in identical order, not just as a set.
    ExpectIdenticalTables(*serial, *parallel, sql);
  }
}

TEST_F(DistributedGroupByTest, ForcedMaterializeMatchesKernelAndCostsMore) {
  CreateAndLoadSales(/*seed=*/41, /*rows=*/300);
  ASSERT_TRUE(dist_.RegisterColumnar("sales").ok());
  const std::string sql =
      "SELECT k, COUNT(*) AS n, SUM(amount) AS s FROM sales GROUP BY k";
  auto kernel = dist_.Execute(sql);
  ASSERT_TRUE(kernel.ok());
  const auto kstats = dist_.last().stats;
  for (const auto& info : kstats.per_dn) {
    EXPECT_EQ(info.path, "columnar(grouped-kernel)");
  }

  dist_.exec_options().columnar_force_materialize = true;
  auto mat = dist_.Execute(sql);
  ASSERT_TRUE(mat.ok());
  const auto mstats = dist_.last().stats;
  for (const auto& info : mstats.per_dn) {
    EXPECT_EQ(info.path, "columnar(materialize:forced)");
  }
  // Same group set either way; the orders differ (kernel = first appearance
  // in chunk order, row executor = hash-map iteration), so compare
  // canonically.
  ExpectSameRows(*kernel, *mat, sql);
  // The kernel reads only the referenced columns (k, amount); materialize
  // decodes whole rows (all four columns) — strictly more column-chunks
  // and a strictly higher simulated latency on the same data.
  EXPECT_LT(kstats.scan_stats.chunks_scanned, mstats.scan_stats.chunks_scanned);
  EXPECT_LT(kstats.sim_latency_us, mstats.sim_latency_us);
}

TEST_F(DistributedGroupByTest, EveryFallbackReasonHasItsOwnCounter) {
  Exec("CREATE TABLE mixed (k BIGINT, region VARCHAR, amount BIGINT, "
       "weight DOUBLE)");
  Exec("INSERT INTO mixed VALUES (1, 'east', 10, 1.5), (2, 'west', 20, 2.5), "
       "(3, 'east', 30, 3.5), (4, NULL, NULL, 4.5)");
  ASSERT_TRUE(dist_.RegisterColumnar("mixed").ok());

  // Unrecognized filter (OR): lowering pre-demotes to the row path.
  const int64_t filter0 = Metric("columnar.fallback_filter");
  Query("SELECT k, SUM(amount) AS s FROM mixed WHERE k < 2 OR k > 3 "
        "GROUP BY k");
  EXPECT_TRUE(dist_.last().distributed);
  EXPECT_GT(Metric("columnar.fallback_filter"), filter0);
  EXPECT_EQ(dist_.last().stats.columnar_shards, 0u);

  // Unsupported aggregate input type (DOUBLE): columnar materialize path.
  const int64_t agg0 = Metric("columnar.fallback_agg");
  {
    auto d = dist_.Execute("SELECT k, SUM(weight) AS w FROM mixed GROUP BY k");
    ASSERT_TRUE(d.ok()) << d.status().ToString();
  }
  EXPECT_GT(Metric("columnar.fallback_agg"), agg0);
  for (const auto& info : dist_.last().stats.per_dn) {
    EXPECT_EQ(info.path, "columnar(materialize:agg)");
  }

  // Unsupported group-key type (DOUBLE): columnar materialize path, exact
  // results either way (grouping only, int64 aggregate).
  const int64_t gb0 = Metric("columnar.fallback_groupby_type");
  Query("SELECT weight, SUM(amount) AS s FROM mixed GROUP BY weight");
  EXPECT_GT(Metric("columnar.fallback_groupby_type"), gb0);
  for (const auto& info : dist_.last().stats.per_dn) {
    EXPECT_EQ(info.path, "columnar(materialize:groupby-type)");
  }

  // A write after registration is NOT a fallback reason: the mutated shard
  // serves the new row from its delta tail and stays on the grouped kernel.
  const int64_t delta0 = Metric("columnar.delta_rows");
  Exec("INSERT INTO mixed VALUES (5, 'west', 50, 5.0)");
  Query("SELECT k, SUM(amount) AS s FROM mixed GROUP BY k");
  EXPECT_GT(Metric("columnar.delta_rows"), delta0);
  for (const auto& info : dist_.last().stats.per_dn) {
    EXPECT_EQ(info.path, "columnar(grouped-kernel)");
  }
  EXPECT_GE(dist_.last().stats.scan_stats.delta_rows, 1u);
}

TEST_F(DistributedGroupByTest, AutoRefreshMergesDeltaTailsBeforeTheScan) {
  CreateAndLoadSales(/*seed=*/43, /*rows=*/100);
  ASSERT_TRUE(dist_.RegisterColumnar("sales").ok());
  Exec("INSERT INTO sales VALUES (1000, 7, 'east', 99)");  // one tail record

  dist_.exec_options().auto_refresh_columnar = true;
  const int64_t refresh0 = Metric("columnar.auto_refreshes");
  Query("SELECT region, SUM(amount) AS s FROM sales GROUP BY region");
  // The pre-scan force-merge folded the tail: the scan itself saw no delta.
  EXPECT_GT(Metric("columnar.auto_refreshes"), refresh0);
  EXPECT_EQ(dist_.last().stats.columnar_shards, 4u);
  EXPECT_EQ(dist_.last().stats.scan_stats.delta_rows, 0u);
  for (const auto& info : dist_.last().stats.per_dn) {
    EXPECT_EQ(info.path, "columnar(grouped-kernel)");
  }
  // Quiescent cluster: the next query merges nothing.
  const int64_t refresh1 = Metric("columnar.auto_refreshes");
  Query("SELECT k, COUNT(*) AS n FROM sales GROUP BY k");
  EXPECT_EQ(Metric("columnar.auto_refreshes"), refresh1);
}

TEST_F(DistributedGroupByTest, ExplainShowsGroupedKernelAndPerDnForecast) {
  CreateAndLoadSales(/*seed=*/47, /*rows=*/60);
  ASSERT_TRUE(dist_.RegisterColumnar("sales").ok());
  auto plan = dist_.Explain(
      "SELECT region, SUM(amount) AS s FROM sales WHERE amount > 100 "
      "GROUP BY region");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("scan=columnar(grouped-kernel)"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("scan forecast:"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("dn0 sales: columnar(grouped-kernel)"),
            std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("prune~"), std::string::npos) << *plan;

  // The realized per-DN report matches after execution.
  Query("SELECT region, SUM(amount) AS s FROM sales WHERE amount > 100 "
        "GROUP BY region");
  std::string report = dist_.LastScanReport();
  EXPECT_NE(report.find("columnar(grouped-kernel) chunks="), std::string::npos)
      << report;

  // An unsupported group key is advertised as the materialize fallback.
  Exec("CREATE TABLE weights (w DOUBLE, v BIGINT)");
  Exec("INSERT INTO weights VALUES (1.5, 10)");
  ASSERT_TRUE(dist_.RegisterColumnar("weights").ok());
  auto plan2 = dist_.Explain("SELECT w, SUM(v) AS s FROM weights GROUP BY w");
  ASSERT_TRUE(plan2.ok());
  EXPECT_NE(plan2->find("scan=columnar(materialize:groupby-type)"),
            std::string::npos)
      << *plan2;
}

}  // namespace
}  // namespace ofi::cluster
