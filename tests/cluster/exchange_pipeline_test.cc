/// Pipelined exchange primitives: blocking PopBatchWait (condition-variable
/// wakeup, fail-fast on producer error, TimedOut on deadline),
/// Close(status) propagation, sequence-tagged rollback that stays correct
/// when a consumer drained batches between the mark and the rollback (the
/// producer-fails-mid-stream path), StreamingScatter's bit-identical
/// framing vs the one-shot scatter operators, and the deterministic
/// pipelined latency replay (consumer frontier starts before the skewed
/// producer's frontier ends). The concurrent stress cases run under tsan
/// in CI via the sanitizer focus list (scripts/check.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "cluster/exchange/exchange.h"
#include "common/rng.h"

namespace ofi::cluster {
namespace {

namespace fs = std::filesystem;

using exchange::ExchangeChannel;
using exchange::ExchangeNetwork;
using sql::Row;
using sql::Value;

Row MakeRow(int64_t k, const std::string& pad) {
  return Row{Value(k), Value(pad)};
}

std::vector<Row> MakeRows(int count, int64_t key_mod, size_t pad = 40) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    rows.push_back(MakeRow(i % key_mod,
                           std::string(pad, static_cast<char>('a' + i % 26))));
  }
  return rows;
}

// --- PopBatchWait / Close(status) -------------------------------------------

TEST(ExchangePipelineTest, PopBatchWaitDrainsThenSignalsEndOfStream) {
  ExchangeChannel ch;
  ASSERT_TRUE(ch.Send("one").ok());
  ASSERT_TRUE(ch.Send("two").ok());
  ch.Close();

  auto a = ch.PopBatchWait(1000);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(**a, "one");
  auto b = ch.PopBatchWait(1000);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(**b, "two");
  // Clean close: drained channel reports end-of-stream, not an error.
  auto end = ch.PopBatchWait(1000);
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
  // Sending after close is a producer bug, surfaced loudly.
  EXPECT_FALSE(ch.Send("late").ok());
}

TEST(ExchangePipelineTest, ErrorCloseFailsFastEvenWithQueuedBatches) {
  ExchangeChannel ch;
  ASSERT_TRUE(ch.Send("queued").ok());
  ch.Close(Status::Internal("producer died"));

  // Fail fast outranks the queued payload: a consumer must never assemble
  // a partial stream from a failed producer.
  auto waited = ch.PopBatchWait(1000);
  ASSERT_FALSE(waited.ok());
  EXPECT_NE(waited.status().ToString().find("producer died"),
            std::string::npos);
  auto polled = ch.PopBatch();
  ASSERT_FALSE(polled.ok());

  // First non-OK close wins; a later OK close never masks it.
  ch.Close();
  EXPECT_FALSE(ch.close_status().ok());
}

TEST(ExchangePipelineTest, PopBatchWaitTimesOutOnSilentProducer) {
  ExchangeChannel ch;
  auto r = ch.PopBatchWait(10);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimedOut()) << r.status().ToString();
}

TEST(ExchangePipelineTest, PopBatchWaitWakesOnSendAndOnClose) {
  ExchangeChannel ch;
  std::atomic<int> got{0};
  std::thread consumer([&] {
    auto r = ch.PopBatchWait(30'000);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "payload");
    got.fetch_add(1);
    auto end = ch.PopBatchWait(30'000);
    ASSERT_TRUE(end.ok());
    EXPECT_FALSE(end->has_value());
    got.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(ch.Send("payload").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.Close();
  consumer.join();
  EXPECT_EQ(got.load(), 2);
}

// --- Sequence-tagged rollback under interleaved consumption -----------------

TEST(ExchangePipelineTest, RollbackDropsOnlyPostMarkBatches) {
  ExchangeChannel ch;
  ASSERT_TRUE(ch.Send("aaaa").ok());
  ExchangeChannel::Checkpoint cp = ch.Mark();
  ASSERT_TRUE(ch.Send("bbbb").ok());
  ASSERT_TRUE(ch.Send("cccc").ok());

  // A consumer drains the pre-mark batch AND one post-mark batch before the
  // rollback lands — the count-based scheme this replaces would then have
  // dropped the wrong items.
  ASSERT_EQ(**ch.PopBatch(), "aaaa");
  ASSERT_EQ(**ch.PopBatch(), "bbbb");

  ch.RollbackTo(cp);
  // Only the undelivered post-mark batch is dropped; lifetime accounting
  // rewinds to the mark and the whole post-mark payload (drained or not)
  // lands in aborted_bytes.
  EXPECT_FALSE(ch.PopBatch()->has_value());
  EXPECT_EQ(ch.bytes(), 4u);
  EXPECT_EQ(ch.batches(), 1u);
  EXPECT_EQ(ch.aborted_bytes(), 8u);

  // The channel stays usable: a retry's sends flow normally.
  ASSERT_TRUE(ch.Send("dddd").ok());
  EXPECT_EQ(**ch.PopBatch(), "dddd");
  EXPECT_EQ(ch.bytes(), 8u);
}

TEST(ExchangePipelineTest, RollbackWithSpilledSegmentsAndInterleavedPops) {
  fs::path dir = fs::path(::testing::TempDir()) / "ofi-pipe-rollback";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    exchange::SpillBudget budget;
    exchange::ExchangeSpillConfig cfg{dir.string(), /*strict=*/false, &budget};
    ExchangeChannel::SendLimits limits{32, &cfg};
    ExchangeChannel ch;

    // Two pre-mark batches (second spills past the 32B window).
    ASSERT_TRUE(ch.Send(std::string(20, 'a'), limits).ok());
    ASSERT_TRUE(ch.Send(std::string(20, 'b'), limits).ok());
    ExchangeChannel::Checkpoint cp = ch.Mark();
    // Post-mark: all spill (the window is still full).
    ASSERT_TRUE(ch.Send(std::string(20, 'c'), limits).ok());
    ASSERT_TRUE(ch.Send(std::string(20, 'd'), limits).ok());
    EXPECT_EQ(ch.spill_segments(), 3u);

    // Consumer drains one pre-mark batch concurrently with the "failure".
    ASSERT_EQ(**ch.PopBatch(), std::string(20, 'a'));

    ch.RollbackTo(cp);
    EXPECT_EQ(ch.bytes(), 40u);
    EXPECT_EQ(ch.aborted_bytes(), 40u);
    EXPECT_EQ(budget.used.load(), 20u);  // only the pre-mark segment remains
    // The surviving pre-mark payload is still deliverable, in order.
    ASSERT_EQ(**ch.PopBatch(), std::string(20, 'b'));
    EXPECT_FALSE(ch.PopBatch()->has_value());
    EXPECT_EQ(budget.used.load(), 0u);
  }
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

TEST(ExchangePipelineTest, RollbackToEmptyMarkRemovesSpillFile) {
  fs::path dir = fs::path(::testing::TempDir()) / "ofi-pipe-rollback-empty";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    exchange::SpillBudget budget;
    exchange::ExchangeSpillConfig cfg{dir.string(), /*strict=*/false, &budget};
    ExchangeChannel::SendLimits limits{16, &cfg};
    ExchangeChannel ch;
    ExchangeChannel::Checkpoint cp = ch.Mark();
    ASSERT_TRUE(ch.Send(std::string(20, 'x'), limits).ok());
    ASSERT_TRUE(ch.Send(std::string(20, 'y'), limits).ok());
    EXPECT_FALSE(ch.spill_path().empty());
    ch.RollbackTo(cp);
    // No pre-mark segments survive: the spill file itself is deleted and
    // the budget fully released, not merely truncated.
    EXPECT_TRUE(ch.spill_path().empty());
    EXPECT_EQ(budget.used.load(), 0u);
    EXPECT_TRUE(fs::is_empty(dir));
  }
  fs::remove_all(dir);
}

// Producer fails mid-stream while a consumer is draining with the blocking
// pop: the ScatterGuard rollback races the consumer's PopBatchWait on the
// same channels. Run under tsan in CI; single-threaded invariants (no file
// leak, budget drained, abort accounting) are asserted every iteration.
TEST(ExchangePipelineTest, ProducerFailsMidStreamWhileConsumerDrains) {
  fs::path dir = fs::path(::testing::TempDir()) / "ofi-pipe-stress";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::vector<Row> rows = MakeRows(160, 7);
  for (int iter = 0; iter < 20; ++iter) {
    exchange::SpillBudget budget;
    exchange::ExchangeSpillConfig cfg{dir.string(), /*strict=*/false, &budget};
    {
      ExchangeNetwork net(2, /*batch_rows=*/8, /*max_channel_bytes=*/256, cfg);
      std::thread consumer([&] {
        auto r = net.ReceiveRowsWait(1, /*timeout_ms=*/30'000);
        // Depending on how far the drain got before the rollback + error
        // close, the consumer either fails fast with the producer's status
        // or (when it drained everything first) sees a clean close from
        // node 1 and the error from node 0.
        if (!r.ok()) {
          EXPECT_NE(r.status().ToString().find("injected"), std::string::npos)
              << r.status().ToString();
        }
      });
      {
        exchange::ScatterGuard guard(&net, 0);
        exchange::StreamingScatter scatter(&net, 0, /*key_idx=*/0);
        size_t pushed = 0;
        for (const Row& row : rows) {
          ASSERT_TRUE(scatter.Push(row).ok());
          // Fail partway through, at a different point each iteration.
          if (++pushed > static_cast<size_t>(16 + iter * 5)) break;
        }
        // No Commit: the guard rolls back node 0's partial scatter while
        // the consumer may still be popping.
      }
      net.CloseAllFrom(0, Status::Internal("injected producer failure"));
      net.CloseAllFrom(1);  // node 1 produced nothing and closed cleanly
      consumer.join();
      EXPECT_GT(net.AbortedBytes(), 0u);
    }
    // Channels destroyed: every spill byte must be returned and no temp
    // file may survive the failed query.
    EXPECT_EQ(budget.used.load(), 0u) << "iteration " << iter;
    EXPECT_TRUE(fs::is_empty(dir)) << "iteration " << iter;
  }
  fs::remove_all(dir);
}

// --- StreamingScatter framing equivalence -----------------------------------

std::vector<std::string> DrainAll(ExchangeNetwork* net, int src, int dst) {
  std::vector<std::string> batches;
  while (true) {
    auto b = net->channel(src, dst).PopBatch();
    EXPECT_TRUE(b.ok());
    if (!b->has_value()) break;
    batches.push_back(std::move(**b));
  }
  return batches;
}

TEST(ExchangePipelineTest, StreamingScatterMatchesShufflePartition) {
  const std::vector<Row> rows = MakeRows(100, 11);
  ExchangeNetwork one_shot(3, /*batch_rows=*/8);
  ASSERT_TRUE(exchange::ShufflePartition(&one_shot, 0, rows, 0).ok());

  ExchangeNetwork streamed(3, /*batch_rows=*/8);
  exchange::StreamingScatter scatter(&streamed, 0, /*key_idx=*/0);
  for (const Row& row : rows) ASSERT_TRUE(scatter.Push(row).ok());
  ASSERT_TRUE(scatter.Finish().ok());

  size_t flushed_bytes = 0;
  for (const auto& rec : scatter.send_log()) flushed_bytes += rec.bytes;
  EXPECT_EQ(flushed_bytes, one_shot.channel(0, 0).bytes() +
                               one_shot.channel(0, 1).bytes() +
                               one_shot.channel(0, 2).bytes());
  for (int dst = 0; dst < 3; ++dst) {
    // Same batch boundaries, same payload, same order — the execution mode
    // cannot leak into downstream results.
    EXPECT_EQ(DrainAll(&streamed, 0, dst), DrainAll(&one_shot, 0, dst))
        << "dst " << dst;
  }
}

TEST(ExchangePipelineTest, StreamingScatterMatchesBroadcastRows) {
  const std::vector<Row> rows = MakeRows(37, 5);
  ExchangeNetwork one_shot(3, /*batch_rows=*/8);
  ASSERT_TRUE(exchange::BroadcastRows(&one_shot, 1, rows).ok());

  ExchangeNetwork streamed(3, /*batch_rows=*/8);
  exchange::StreamingScatter scatter(&streamed, 1, /*key_idx=*/std::nullopt);
  for (const Row& row : rows) ASSERT_TRUE(scatter.Push(row).ok());
  ASSERT_TRUE(scatter.Finish().ok());

  for (int dst = 0; dst < 3; ++dst) {
    EXPECT_EQ(DrainAll(&streamed, 1, dst), DrainAll(&one_shot, 1, dst))
        << "dst " << dst;
  }
}

TEST(ExchangePipelineTest, ReceiveRowsWaitMatchesReceiveRowsOrder) {
  const std::vector<Row> rows = MakeRows(90, 13);
  ExchangeNetwork a(3, /*batch_rows=*/8);
  ExchangeNetwork b(3, /*batch_rows=*/8);
  for (int src = 0; src < 3; ++src) {
    ASSERT_TRUE(exchange::ShufflePartition(&a, src, rows, 0).ok());
    ASSERT_TRUE(exchange::ShufflePartition(&b, src, rows, 0).ok());
    b.CloseAllFrom(src);
  }
  for (int dst = 0; dst < 3; ++dst) {
    auto plain = a.ReceiveRows(dst);
    ASSERT_TRUE(plain.ok());
    size_t streamed_batches = 0;
    auto waited = b.ReceiveRowsWait(dst, /*timeout_ms=*/1000,
                                    &streamed_batches);
    ASSERT_TRUE(waited.ok());
    ASSERT_EQ(plain->size(), waited->size());
    for (size_t i = 0; i < plain->size(); ++i) {
      EXPECT_EQ((*plain)[i].size(), (*waited)[i].size());
      for (size_t c = 0; c < (*plain)[i].size(); ++c) {
        EXPECT_EQ((*plain)[i][c].ToString(), (*waited)[i][c].ToString());
      }
    }
    EXPECT_GT(streamed_batches, 0u);
  }
}

// --- Deterministic pipelined latency replay ---------------------------------

/// Builds the skewed two-node traffic (node 0 ships `heavy` rows to node 1,
/// node 1 ships a single light batch back) on a fresh network and returns
/// the producer send logs, using the streaming scatter (hash keys: even ->
/// node 0, odd -> node 1).
std::vector<std::vector<exchange::PipelinedSendRec>> SkewedTraffic(
    ExchangeNetwork* net, int heavy) {
  std::vector<std::vector<exchange::PipelinedSendRec>> logs(2);
  for (int src = 0; src < 2; ++src) {
    exchange::StreamingScatter scatter(net, src, /*key_idx=*/0);
    const int count = src == 0 ? heavy : 4;
    for (int i = 0; i < count; ++i) {
      // Everything node 0 produces is odd-keyed (routes to node 1) and
      // vice versa: maximal cross-traffic with one dominant producer.
      EXPECT_TRUE(
          scatter.Push(MakeRow(2 * i + (src == 0 ? 1 : 0),
                               std::string(64, 'p'))).ok());
    }
    EXPECT_TRUE(scatter.Finish().ok());
    for (const auto& rec : scatter.send_log()) {
      logs[static_cast<size_t>(src)].push_back(
          exchange::PipelinedSendRec{0, rec.dst, rec.bytes});
    }
  }
  return logs;
}

TEST(ExchangePipelineTest, PipelinedReplayOverlapsSkewedProducer) {
  exchange::ExchangeLatencyParams p;
  const std::vector<SimTime> start = {0, 0};
  const std::vector<int> resources = {0, 1};

  ExchangeNetwork barrier_net(2, /*batch_rows=*/8);
  auto barrier_logs = SkewedTraffic(&barrier_net, /*heavy=*/400);
  SimScheduler barrier_sched;
  barrier_sched.AddResource();
  barrier_sched.AddResource();
  std::vector<SimTime> barrier_done = exchange::SimulateExchange(
      &barrier_sched, resources, {&barrier_net}, start, p);

  ExchangeNetwork piped_net(2, /*batch_rows=*/8);
  auto logs = SkewedTraffic(&piped_net, /*heavy=*/400);
  SimScheduler sched;
  sched.AddResource();
  sched.AddResource();
  exchange::PipelinedSimResult sim = exchange::SimulatePipelinedExchange(
      &sched, resources, {&piped_net}, logs, start, p);

  // The consumer frontier starts strictly before the slow producer's
  // frontier ends — the overlap the barrier model forbids by construction.
  EXPECT_LT(sim.first_consume[1], sim.producer_done[0]);
  EXPECT_GT(sim.overlap_us, 0);
  // And the overlap translates into lower end-to-end readiness than the
  // barrier replay of the identical traffic.
  EXPECT_LT(*std::max_element(sim.ready.begin(), sim.ready.end()),
            *std::max_element(barrier_done.begin(), barrier_done.end()));

  // Deterministic: a second replay of the same logs on a fresh scheduler
  // lands on identical times.
  SimScheduler sched2;
  sched2.AddResource();
  sched2.AddResource();
  exchange::PipelinedSimResult again = exchange::SimulatePipelinedExchange(
      &sched2, resources, {&piped_net}, logs, start, p);
  EXPECT_EQ(again.ready, sim.ready);
  EXPECT_EQ(again.producer_done, sim.producer_done);
  EXPECT_EQ(again.first_consume, sim.first_consume);
  EXPECT_EQ(again.overlap_us, sim.overlap_us);
}

TEST(ExchangePipelineTest, PipelinedReplayChargesModeledSpill) {
  exchange::ExchangeLatencyParams p;
  const std::vector<SimTime> start = {0, 0};
  const std::vector<int> resources = {0, 1};

  // A tiny channel cap: the replay must account spill deterministically
  // from the send/drain schedule (the real counters race the consumer).
  fs::path dir = fs::path(::testing::TempDir()) / "ofi-pipe-sim-spill";
  fs::remove_all(dir);
  fs::create_directories(dir);
  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir.string(), /*strict=*/false, &budget};
  ExchangeNetwork capped(2, /*batch_rows=*/8, /*max_channel_bytes=*/128, cfg);
  auto logs = SkewedTraffic(&capped, /*heavy=*/400);

  SimScheduler sched;
  sched.AddResource();
  sched.AddResource();
  exchange::PipelinedSimResult sim = exchange::SimulatePipelinedExchange(
      &sched, resources, {&capped}, logs, start, p);
  EXPECT_GT(sim.modeled_spill_bytes, 0u);

  // Uncapped replay of the same traffic finishes no later than the capped
  // one (spill only ever adds service).
  ExchangeNetwork uncapped(2, /*batch_rows=*/8);
  auto free_logs = SkewedTraffic(&uncapped, /*heavy=*/400);
  SimScheduler sched2;
  sched2.AddResource();
  sched2.AddResource();
  exchange::PipelinedSimResult free_sim = exchange::SimulatePipelinedExchange(
      &sched2, resources, {&uncapped}, free_logs, start, p);
  EXPECT_EQ(free_sim.modeled_spill_bytes, 0u);
  EXPECT_LE(*std::max_element(free_sim.ready.begin(), free_sim.ready.end()),
            *std::max_element(sim.ready.begin(), sim.ready.end()));

  // Drain so the channels are clean before teardown (keeps the temp dir
  // empty for the leak check).
  for (int dst = 0; dst < 2; ++dst) {
    ASSERT_TRUE(capped.ReceiveRows(dst).ok());
    ASSERT_TRUE(uncapped.ReceiveRows(dst).ok());
  }
  EXPECT_EQ(budget.used.load(), 0u);
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ofi::cluster
