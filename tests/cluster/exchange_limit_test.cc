/// Per-channel byte limits on the exchange. The cap now bounds the
/// in-memory window: an over-cap Send transparently spills to a temp file
/// (spill path covered in exchange_spill_test.cc); this suite pins the
/// *limit* semantics — strict mode restores the historical deny with
/// ResourceExhausted, denial is accounted in denied_bytes / the
/// exchange.bytes_denied metric, and a capped distributed join either
/// completes via spill (default) or fails loudly (strict) instead of
/// silently dropping rows.
#include <gtest/gtest.h>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Row MakeRow(int64_t k, const std::string& pad) {
  return Row{Value(k), Value(pad)};
}

exchange::ExchangeChannel::SendLimits Strict(size_t cap,
                                             exchange::ExchangeSpillConfig* c) {
  c->strict = true;
  return exchange::ExchangeChannel::SendLimits{cap, c};
}

TEST(ExchangeLimitTest, StrictChannelDeniesOverLimitSend) {
  exchange::ExchangeChannel ch;
  exchange::ExchangeSpillConfig cfg;
  auto limits = Strict(64, &cfg);
  std::string small(10, 'x');
  std::string mid(60, 'y');
  ASSERT_TRUE(ch.Send(small, limits).ok());
  EXPECT_EQ(ch.queued_bytes(), 10u);

  Status denied = ch.Send(mid, limits);  // 10 + 60 > 64
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  // The denied batch was not queued and the lifetime totals exclude it.
  EXPECT_EQ(ch.queued_bytes(), 10u);
  EXPECT_EQ(ch.bytes(), 10u);
  EXPECT_EQ(ch.batches(), 1u);
  EXPECT_EQ(ch.denied_bytes(), 60u);
  EXPECT_EQ(ch.spilled_bytes(), 0u);

  // Draining frees the budget: the same batch fits afterwards.
  auto drained = ch.Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 1u);
  EXPECT_EQ(ch.queued_bytes(), 0u);
  ASSERT_TRUE(ch.Send(std::move(mid), limits).ok());
  EXPECT_EQ(ch.queued_bytes(), 60u);
}

TEST(ExchangeLimitTest, CapWithNoSpillConfigDenies) {
  // A raw SendLimits cap with spill == nullptr has nowhere to overflow to:
  // the channel must deny, not crash or silently drop.
  exchange::ExchangeChannel ch;
  exchange::ExchangeChannel::SendLimits limits{16, nullptr};
  ASSERT_TRUE(ch.Send(std::string(10, 'a'), limits).ok());
  Status st = ch.Send(std::string(10, 'b'), limits);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ch.denied_bytes(), 10u);
}

TEST(ExchangeLimitTest, ZeroLimitMeansUnbounded) {
  exchange::ExchangeChannel ch;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ch.Send(std::string(1000, 'z')).ok());
  }
  EXPECT_EQ(ch.denied_bytes(), 0u);
  EXPECT_EQ(ch.spilled_bytes(), 0u);
  EXPECT_EQ(ch.queued_bytes(), 100000u);
}

TEST(ExchangeLimitTest, StrictNetworkSendRowsHonorsTheCap) {
  // A cap smaller than one encoded batch under strict mode: every SendRows
  // with data fails, DeniedBytes aggregates across channels, and the failed
  // operator's rollback leaves no queued payload behind.
  exchange::ExchangeSpillConfig strict;
  strict.strict = true;
  exchange::ExchangeNetwork net(2, /*batch_rows=*/8, /*max_channel_bytes=*/4,
                                strict);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 20; ++i) rows.push_back(MakeRow(i, "padpadpad"));

  Status st = net.SendRows(0, 1, rows);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(net.DeniedBytes(), 0u);
  EXPECT_TRUE(net.SendRows(0, 1, {}).ok());  // nothing to send, nothing denied

  exchange::ExchangeNetwork roomy(2, /*batch_rows=*/8);
  ASSERT_TRUE(roomy.SendRows(0, 1, rows).ok());
  EXPECT_EQ(roomy.DeniedBytes(), 0u);
}

TEST(ExchangeLimitTest, CappedJoinSpillsByDefaultAndDeniesUnderStrict) {
  Cluster cluster(4, Protocol::kGtmLite);
  Schema orders({Column{"o_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  Schema lookup({Column{"l_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  ASSERT_TRUE(cluster.CreateTable("orders", orders).ok());
  ASSERT_TRUE(cluster.CreateTable("lookup", lookup).ok());
  std::string pad(64, 'p');
  for (int64_t i = 0; i < 64; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("orders", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  for (int64_t i = 0; i < 8; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("lookup", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "lookup";
  spec.left_key = "o_id";
  spec.right_key = "l_id";

  // Unbounded run first: the join works, nothing spilled or denied.
  DistributedJoinOptions opts;
  opts.strategy = JoinStrategy::kRepartition;
  auto ok = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->table.num_rows(), 8u);
  EXPECT_EQ(ok->spill_bytes, 0u);
  EXPECT_EQ(cluster.metrics().Get("exchange.bytes_spilled"), 0);
  EXPECT_EQ(cluster.metrics().Get("exchange.bytes_denied"), 0);

  // A cap below one encoded batch: the retired failure mode. The shuffle
  // now spills on every channel and the join completes with the same rows,
  // only slower in simulated time.
  opts.max_channel_bytes = 16;
  auto capped = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->table.num_rows(), 8u);
  EXPECT_GT(capped->spill_bytes, 0u);
  EXPECT_GT(cluster.metrics().Get("exchange.bytes_spilled"), 0);
  EXPECT_GT(capped->sim_latency_us, ok->sim_latency_us);

  // Strict mode restores the hard limit: the query fails loudly instead of
  // silently dropping rows, counted in exchange.bytes_denied.
  opts.strict_channel_limit = true;
  auto denied = DistributedJoin(&cluster, spec, opts);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(cluster.metrics().Get("exchange.bytes_denied"), 0);

  // Roomy cap: behaves exactly like unbounded in either mode.
  opts.max_channel_bytes = 1 << 20;
  auto roomy = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(roomy.ok());
  EXPECT_EQ(roomy->table.num_rows(), 8u);
  EXPECT_EQ(roomy->spill_bytes, 0u);
}

}  // namespace
}  // namespace ofi::cluster
