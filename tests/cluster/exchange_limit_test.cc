/// Per-channel byte limits on the exchange (spill-to-disk backpressure,
/// simulated as denial): a Send that would overflow the cap must fail with
/// ResourceExhausted without corrupting the channel, the denied payload
/// must be counted, and a distributed join over a capped exchange must
/// surface the error as its Status plus the exchange.bytes_spilled_denied
/// metric.
#include <gtest/gtest.h>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Row MakeRow(int64_t k, const std::string& pad) {
  return Row{Value(k), Value(pad)};
}

TEST(ExchangeLimitTest, ChannelDeniesOverLimitSend) {
  exchange::ExchangeChannel ch;
  std::string small(10, 'x');
  std::string mid(60, 'y');
  ASSERT_TRUE(ch.Send(small, /*max_bytes=*/64).ok());
  EXPECT_EQ(ch.queued_bytes(), 10u);

  Status denied = ch.Send(mid, /*max_bytes=*/64);  // 10 + 60 > 64
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  // The denied batch was not queued and the lifetime totals exclude it.
  EXPECT_EQ(ch.queued_bytes(), 10u);
  EXPECT_EQ(ch.bytes(), 10u);
  EXPECT_EQ(ch.batches(), 1u);
  EXPECT_EQ(ch.denied_bytes(), 60u);

  // Draining frees the budget: the same batch fits afterwards.
  EXPECT_EQ(ch.Drain().size(), 1u);
  EXPECT_EQ(ch.queued_bytes(), 0u);
  ASSERT_TRUE(ch.Send(std::move(mid), /*max_bytes=*/64).ok());
  EXPECT_EQ(ch.queued_bytes(), 60u);
}

TEST(ExchangeLimitTest, ZeroLimitMeansUnbounded) {
  exchange::ExchangeChannel ch;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ch.Send(std::string(1000, 'z')).ok());
  }
  EXPECT_EQ(ch.denied_bytes(), 0u);
  EXPECT_EQ(ch.queued_bytes(), 100000u);
}

TEST(ExchangeLimitTest, NetworkSendRowsHonorsTheCap) {
  // A cap smaller than one encoded batch: every SendRows with data fails,
  // and DeniedBytes aggregates across channels.
  exchange::ExchangeNetwork net(2, /*batch_rows=*/8, /*max_channel_bytes=*/4);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 20; ++i) rows.push_back(MakeRow(i, "padpadpad"));

  Status st = net.SendRows(0, 1, rows);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(net.DeniedBytes(), 0u);
  EXPECT_TRUE(net.SendRows(0, 1, {}).ok());  // nothing to send, nothing denied

  exchange::ExchangeNetwork roomy(2, /*batch_rows=*/8);
  ASSERT_TRUE(roomy.SendRows(0, 1, rows).ok());
  EXPECT_EQ(roomy.DeniedBytes(), 0u);
}

TEST(ExchangeLimitTest, DistributedJoinSurfacesDenialAndMetric) {
  Cluster cluster(4, Protocol::kGtmLite);
  Schema orders({Column{"o_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  Schema lookup({Column{"l_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  ASSERT_TRUE(cluster.CreateTable("orders", orders).ok());
  ASSERT_TRUE(cluster.CreateTable("lookup", lookup).ok());
  std::string pad(64, 'p');
  for (int64_t i = 0; i < 64; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("orders", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  for (int64_t i = 0; i < 8; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("lookup", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "lookup";
  spec.left_key = "o_id";
  spec.right_key = "l_id";

  // Unbounded run first: the join works and nothing is denied.
  DistributedJoinOptions opts;
  opts.strategy = JoinStrategy::kRepartition;
  auto ok = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->table.num_rows(), 8u);
  EXPECT_EQ(cluster.metrics().Get("exchange.bytes_spilled_denied"), 0);

  // A cap below one encoded batch: the shuffle is denied on every DN and
  // the query fails loudly instead of silently dropping rows.
  opts.max_channel_bytes = 16;
  auto capped = DistributedJoin(&cluster, spec, opts);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(cluster.metrics().Get("exchange.bytes_spilled_denied"), 0);

  // Roomy cap: behaves exactly like unbounded.
  opts.max_channel_bytes = 1 << 20;
  auto roomy = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(roomy.ok());
  EXPECT_EQ(roomy->table.num_rows(), 8u);
}

}  // namespace
}  // namespace ofi::cluster
