/// MPP scatter-gather aggregation: partial/final decomposition must equal a
/// centralized computation, move only group-sized state, and read one
/// consistent snapshot.
#include "cluster/mpp_query.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

class MppQueryTest : public ::testing::Test {
 protected:
  MppQueryTest() : cluster_(4, Protocol::kGtmLite) {
    Schema schema({Column{"k", TypeId::kInt64, ""},
                   Column{"region", TypeId::kInt64, ""},
                   Column{"amount", TypeId::kInt64, ""}});
    EXPECT_TRUE(cluster_.CreateTable("sales", schema).ok());
    Rng rng(77);
    for (int64_t i = 0; i < 400; ++i) {
      Row row = {Value(i), Value(i % 5), Value(rng.Uniform(1, 100))};
      reference_.push_back(row);
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(t.Insert("sales", Value(i), row).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
  }

  /// Centralized reference: the same aggregate on one local table.
  sql::Table Centralized(sql::ExprPtr filter,
                         std::vector<std::string> group_by,
                         std::vector<sql::AggSpec> aggs) {
    sql::Catalog catalog;
    catalog.Register("sales",
                     sql::Table(Schema({Column{"k", TypeId::kInt64, ""},
                                        Column{"region", TypeId::kInt64, ""},
                                        Column{"amount", TypeId::kInt64, ""}}),
                                reference_));
    sql::Executor exec(&catalog);
    auto plan = sql::MakeAggregate(sql::MakeScan("sales", filter),
                                   std::move(group_by), std::move(aggs));
    return exec.Execute(plan).ValueOrDie();
  }

  Cluster cluster_;
  std::vector<Row> reference_;
};

TEST_F(MppQueryTest, GlobalCountSumMinMax) {
  auto result = DistributedAggregate(
      &cluster_, "sales", nullptr, {},
      {{AggFunc::kCount, "", "n"},
       {AggFunc::kSum, "amount", "total"},
       {AggFunc::kMin, "amount", "lo"},
       {AggFunc::kMax, "amount", "hi"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  sql::Table expected = Centralized(
      nullptr, {},
      {{AggFunc::kCount, nullptr, "n"},
       {AggFunc::kSum, Expr::ColumnRef("amount"), "total"},
       {AggFunc::kMin, Expr::ColumnRef("amount"), "lo"},
       {AggFunc::kMax, Expr::ColumnRef("amount"), "hi"}});
  ASSERT_EQ(result->table.num_rows(), 1u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(result->table.rows()[0][c].Equals(expected.rows()[0][c])) << c;
  }
}

TEST_F(MppQueryTest, GroupByMatchesCentralized) {
  auto result = DistributedAggregate(
      &cluster_, "sales", nullptr, {"region"},
      {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "total"}});
  ASSERT_TRUE(result.ok());
  sql::Table expected =
      Centralized(nullptr, {"region"},
                  {{AggFunc::kCount, nullptr, "n"},
                   {AggFunc::kSum, Expr::ColumnRef("amount"), "total"}});
  ASSERT_EQ(result->table.num_rows(), 5u);
  // Compare as maps (row order is unspecified).
  auto to_map = [](const sql::Table& t) {
    std::map<int64_t, std::pair<int64_t, int64_t>> m;
    for (const auto& r : t.rows()) {
      m[r[0].AsInt()] = {r[1].AsInt(), r[2].AsInt()};
    }
    return m;
  };
  EXPECT_EQ(to_map(result->table), to_map(expected));
}

TEST_F(MppQueryTest, AvgDecomposesIntoSumCount) {
  auto result = DistributedAggregate(&cluster_, "sales", nullptr, {"region"},
                                     {{AggFunc::kAvg, "amount", "avg_amt"}});
  ASSERT_TRUE(result.ok());
  sql::Table expected =
      Centralized(nullptr, {"region"},
                  {{AggFunc::kAvg, Expr::ColumnRef("amount"), "avg_amt"}});
  std::map<int64_t, double> got, want;
  for (const auto& r : result->table.rows()) got[r[0].AsInt()] = r[1].AsDouble();
  for (const auto& r : expected.rows()) want[r[0].AsInt()] = r[1].AsDouble();
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [k, v] : want) {
    EXPECT_NEAR(got[k], v, 1e-9) << "region " << k;
  }
}

TEST_F(MppQueryTest, FilterPushedToShards) {
  auto result = DistributedAggregate(&cluster_, "sales",
                                     Expr::Gt("amount", Value(50)), {},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok());
  int64_t expected = 0;
  for (const auto& r : reference_) expected += r[2].AsInt() > 50;
  EXPECT_EQ(result->table.rows()[0][0].AsInt(), expected);
}

TEST_F(MppQueryTest, PartialStateMuchSmallerThanRows) {
  auto result = DistributedAggregate(&cluster_, "sales", nullptr, {"region"},
                                     {{AggFunc::kSum, "amount", "total"}});
  ASSERT_TRUE(result.ok());
  // 400 rows stay put; only ~5 groups x 4 shards of state move.
  EXPECT_LT(result->partial_bytes * 5, result->naive_bytes);
  EXPECT_GT(result->naive_bytes, 0u);
}

TEST_F(MppQueryTest, EmptyFilterResultYieldsCountZero) {
  auto result = DistributedAggregate(&cluster_, "sales",
                                     Expr::Gt("amount", Value(100000)), {},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(result->table.rows()[0][0].AsInt(), 0);
}

TEST_F(MppQueryTest, UnknownTableFails) {
  EXPECT_FALSE(DistributedAggregate(&cluster_, "nope", nullptr, {},
                                    {{AggFunc::kCount, "", "n"}})
                   .ok());
}

}  // namespace
}  // namespace ofi::cluster
