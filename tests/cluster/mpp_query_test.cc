/// MPP scatter-gather aggregation: partial/final decomposition must equal a
/// centralized computation, move only group-sized state, and read one
/// consistent snapshot.
#include "cluster/mpp_query.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

class MppQueryTest : public ::testing::Test {
 protected:
  MppQueryTest() : cluster_(4, Protocol::kGtmLite) {
    Schema schema({Column{"k", TypeId::kInt64, ""},
                   Column{"region", TypeId::kInt64, ""},
                   Column{"amount", TypeId::kInt64, ""}});
    EXPECT_TRUE(cluster_.CreateTable("sales", schema).ok());
    Rng rng(77);
    for (int64_t i = 0; i < 400; ++i) {
      Row row = {Value(i), Value(i % 5), Value(rng.Uniform(1, 100))};
      reference_.push_back(row);
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(t.Insert("sales", Value(i), row).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
  }

  /// Centralized reference: the same aggregate on one local table.
  sql::Table Centralized(sql::ExprPtr filter,
                         std::vector<std::string> group_by,
                         std::vector<sql::AggSpec> aggs) {
    sql::Catalog catalog;
    catalog.Register("sales",
                     sql::Table(Schema({Column{"k", TypeId::kInt64, ""},
                                        Column{"region", TypeId::kInt64, ""},
                                        Column{"amount", TypeId::kInt64, ""}}),
                                reference_));
    sql::Executor exec(&catalog);
    auto plan = sql::MakeAggregate(sql::MakeScan("sales", filter),
                                   std::move(group_by), std::move(aggs));
    return exec.Execute(plan).ValueOrDie();
  }

  Cluster cluster_;
  std::vector<Row> reference_;
};

TEST_F(MppQueryTest, GlobalCountSumMinMax) {
  auto result = DistributedAggregate(
      &cluster_, "sales", nullptr, {},
      {{AggFunc::kCount, "", "n"},
       {AggFunc::kSum, "amount", "total"},
       {AggFunc::kMin, "amount", "lo"},
       {AggFunc::kMax, "amount", "hi"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  sql::Table expected = Centralized(
      nullptr, {},
      {{AggFunc::kCount, nullptr, "n"},
       {AggFunc::kSum, Expr::ColumnRef("amount"), "total"},
       {AggFunc::kMin, Expr::ColumnRef("amount"), "lo"},
       {AggFunc::kMax, Expr::ColumnRef("amount"), "hi"}});
  ASSERT_EQ(result->table.num_rows(), 1u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(result->table.rows()[0][c].Equals(expected.rows()[0][c])) << c;
  }
}

TEST_F(MppQueryTest, GroupByMatchesCentralized) {
  auto result = DistributedAggregate(
      &cluster_, "sales", nullptr, {"region"},
      {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "total"}});
  ASSERT_TRUE(result.ok());
  sql::Table expected =
      Centralized(nullptr, {"region"},
                  {{AggFunc::kCount, nullptr, "n"},
                   {AggFunc::kSum, Expr::ColumnRef("amount"), "total"}});
  ASSERT_EQ(result->table.num_rows(), 5u);
  // Compare as maps (row order is unspecified).
  auto to_map = [](const sql::Table& t) {
    std::map<int64_t, std::pair<int64_t, int64_t>> m;
    for (const auto& r : t.rows()) {
      m[r[0].AsInt()] = {r[1].AsInt(), r[2].AsInt()};
    }
    return m;
  };
  EXPECT_EQ(to_map(result->table), to_map(expected));
}

TEST_F(MppQueryTest, AvgDecomposesIntoSumCount) {
  auto result = DistributedAggregate(&cluster_, "sales", nullptr, {"region"},
                                     {{AggFunc::kAvg, "amount", "avg_amt"}});
  ASSERT_TRUE(result.ok());
  sql::Table expected =
      Centralized(nullptr, {"region"},
                  {{AggFunc::kAvg, Expr::ColumnRef("amount"), "avg_amt"}});
  std::map<int64_t, double> got, want;
  for (const auto& r : result->table.rows()) got[r[0].AsInt()] = r[1].AsDouble();
  for (const auto& r : expected.rows()) want[r[0].AsInt()] = r[1].AsDouble();
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [k, v] : want) {
    EXPECT_NEAR(got[k], v, 1e-9) << "region " << k;
  }
}

TEST_F(MppQueryTest, FilterPushedToShards) {
  auto result = DistributedAggregate(&cluster_, "sales",
                                     Expr::Gt("amount", Value(50)), {},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok());
  int64_t expected = 0;
  for (const auto& r : reference_) expected += r[2].AsInt() > 50;
  EXPECT_EQ(result->table.rows()[0][0].AsInt(), expected);
}

TEST_F(MppQueryTest, PartialStateMuchSmallerThanRows) {
  auto result = DistributedAggregate(&cluster_, "sales", nullptr, {"region"},
                                     {{AggFunc::kSum, "amount", "total"}});
  ASSERT_TRUE(result.ok());
  // 400 rows stay put; only ~5 groups x 4 shards of state move.
  EXPECT_LT(result->partial_bytes * 5, result->naive_bytes);
  EXPECT_GT(result->naive_bytes, 0u);
}

TEST_F(MppQueryTest, EmptyFilterResultYieldsCountZero) {
  auto result = DistributedAggregate(&cluster_, "sales",
                                     Expr::Gt("amount", Value(100000)), {},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(result->table.rows()[0][0].AsInt(), 0);
}

TEST_F(MppQueryTest, UnknownTableFails) {
  EXPECT_FALSE(DistributedAggregate(&cluster_, "nope", nullptr, {},
                                    {{AggFunc::kCount, "", "n"}})
                   .ok());
}

// Regression: a group whose aggregated column is NULL on EVERY shard merges
// to (SUM=NULL, COUNT=0) at the CN; the AVG final merge must yield SQL NULL,
// not divide by zero or invent a value.
TEST_F(MppQueryTest, AvgOfAllNullGroupIsNull) {
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"g", TypeId::kInt64, ""},
                 Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster_.CreateTable("sparse", schema).ok());
  for (int64_t i = 0; i < 40; ++i) {
    // Group 3's v is NULL in every row, on every shard it lands on.
    Value v = (i % 4 == 3) ? Value::Null() : Value(i);
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("sparse", Value(i), {Value(i), Value(i % 4), v}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  auto result = DistributedAggregate(&cluster_, "sparse", nullptr, {"g"},
                                     {{AggFunc::kAvg, "v", "av"},
                                      {AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.num_rows(), 4u);
  for (const auto& r : result->table.rows()) {
    int64_t g = r[0].AsInt();
    EXPECT_EQ(r[2].AsInt(), 10) << "group " << g;  // rows per group
    if (g == 3) {
      EXPECT_TRUE(r[1].is_null()) << "all-NULL group must AVG to NULL";
    } else {
      // v values for group g: g, g+4, ..., g+36 -> mean g+18.
      ASSERT_FALSE(r[1].is_null()) << "group " << g;
      EXPECT_NEAR(r[1].AsDouble(), static_cast<double>(g) + 18.0, 1e-9);
    }
  }
}

// Global AVG over an entirely NULL column: every shard ships (NULL, 0).
TEST_F(MppQueryTest, AvgOfAllNullColumnGlobalIsNull) {
  Schema schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster_.CreateTable("nulls", schema).ok());
  for (int64_t i = 0; i < 20; ++i) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("nulls", Value(i), {Value(i), Value::Null()}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  auto result = DistributedAggregate(&cluster_, "nulls", nullptr, {},
                                     {{AggFunc::kAvg, "v", "av"}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_TRUE(result->table.rows()[0][0].is_null());
}

// Group-by output naming: `a.x` and `b.x` must not both strip to `x`.
TEST_F(MppQueryTest, QualifiedGroupByColumnsKeepDistinctNames) {
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"x", TypeId::kInt64, "a"},
                 Column{"x", TypeId::kInt64, "b"},
                 Column{"amount", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster_.CreateTable("dup", schema).ok());
  for (int64_t i = 0; i < 24; ++i) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(
        t.Insert("dup", Value(i), {Value(i), Value(i % 2), Value(i % 3), Value(i)})
            .ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  auto result = DistributedAggregate(&cluster_, "dup", nullptr, {"a.x", "b.x"},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.schema().column(0).name, "a.x");
  EXPECT_EQ(result->table.schema().column(1).name, "b.x");
  EXPECT_EQ(result->table.num_rows(), 6u);  // 2 x 3 group combinations
}

// With no collision the bare name is used for readability.
TEST_F(MppQueryTest, UnambiguousQualifiedGroupByStripsToBareName) {
  auto result = DistributedAggregate(&cluster_, "sales", nullptr, {"region"},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.schema().column(0).name, "region");
  EXPECT_EQ(result->table.schema().column(1).name, "n");
}

// Output names that still collide after disambiguation are an error, not a
// silently shadowed column.
TEST_F(MppQueryTest, DuplicateOutputNamesRejected) {
  auto result = DistributedAggregate(
      &cluster_, "sales", nullptr, {},
      {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "n"}});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  auto result2 = DistributedAggregate(&cluster_, "sales", nullptr, {"region"},
                                      {{AggFunc::kSum, "amount", "region"}});
  EXPECT_FALSE(result2.ok());
}

TEST_F(MppQueryTest, EmptyTableEdgeCases) {
  Schema schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster_.CreateTable("void", schema).ok());
  // Global aggregate: one row, COUNT 0, SUM NULL.
  auto global = DistributedAggregate(&cluster_, "void", nullptr, {},
                                     {{AggFunc::kCount, "", "n"},
                                      {AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(global.ok());
  ASSERT_EQ(global->table.num_rows(), 1u);
  EXPECT_EQ(global->table.rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(global->table.rows()[0][1].is_null());
  // Grouped aggregate: no groups, no rows.
  auto grouped = DistributedAggregate(&cluster_, "void", nullptr, {"v"},
                                      {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->table.num_rows(), 0u);
}

TEST_F(MppQueryTest, FilterEliminatingAllRowsGroupedYieldsNoRows) {
  auto result = DistributedAggregate(&cluster_, "sales",
                                     Expr::Gt("amount", Value(100000)),
                                     {"region"}, {{AggFunc::kSum, "amount", "s"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 0u);
}

TEST(MppQuerySingleDnTest, SingleDnMatchesLocalAggregate) {
  Cluster cluster(1, Protocol::kGtmLite);
  Schema schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster.CreateTable("t", schema).ok());
  int64_t total = 0;
  for (int64_t i = 0; i < 30; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("t", Value(i), {Value(i), Value(i * 3)}).ok());
    ASSERT_TRUE(t.Commit().ok());
    total += i * 3;
  }
  auto result = DistributedAggregate(&cluster, "t", nullptr, {},
                                     {{AggFunc::kCount, "", "n"},
                                      {AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.rows()[0][0].AsInt(), 30);
  EXPECT_EQ(result->table.rows()[0][1].AsInt(), total);
  EXPECT_GT(result->sim_latency_us, 0);
}

// With a failed primary, its promoted backup serves both shards and the
// distributed answer still matches the full-data reference — each row
// counted exactly once.
TEST(MppQueryFailoverTest, DownDnServedByBackupMatchesReference) {
  Cluster cluster(4, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.EnableReplication().ok());
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"g", TypeId::kInt64, ""},
                 Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster.CreateTable("t", schema).ok());
  std::map<int64_t, std::pair<int64_t, int64_t>> want;  // g -> (count, sum)
  for (int64_t i = 0; i < 120; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("t", Value(i), {Value(i), Value(i % 3), Value(i)}).ok());
    ASSERT_TRUE(t.Commit().ok());
    want[i % 3].first++;
    want[i % 3].second += i;
  }
  ASSERT_TRUE(cluster.FailDn(1).ok());
  auto result = DistributedAggregate(&cluster, "t", nullptr, {"g"},
                                     {{AggFunc::kCount, "", "n"},
                                      {AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<int64_t, std::pair<int64_t, int64_t>> got;
  for (const auto& r : result->table.rows()) {
    got[r[0].AsInt()] = {r[1].AsInt(), r[2].AsInt()};
  }
  EXPECT_EQ(got, want);
}

TEST_F(MppQueryTest, ParallelAndSerialExecutionAgree) {
  DistributedOptions serial;
  serial.parallel = false;
  // Start each run from a clean simulated schedule so the two latency
  // numbers are comparable (the scheduler retains busy intervals per query).
  cluster_.ResetSimTime();
  auto a = DistributedAggregate(&cluster_, "sales", Expr::Gt("amount", Value(20)),
                                {"region"},
                                {{AggFunc::kCount, "", "n"},
                                 {AggFunc::kAvg, "amount", "av"}});
  cluster_.ResetSimTime();
  auto b = DistributedAggregate(&cluster_, "sales", Expr::Gt("amount", Value(20)),
                                {"region"},
                                {{AggFunc::kCount, "", "n"},
                                 {AggFunc::kAvg, "amount", "av"}},
                                serial);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The execution mode changes wall-clock only: identical rows (order-
  // insensitive) and identical simulated latencies.
  EXPECT_EQ(a->sim_latency_us, b->sim_latency_us);
  EXPECT_EQ(a->sim_latency_serial_us, b->sim_latency_serial_us);
  auto to_map = [](const sql::Table& t) {
    std::map<int64_t, std::pair<int64_t, double>> m;
    for (const auto& r : t.rows()) m[r[0].AsInt()] = {r[1].AsInt(), r[2].AsDouble()};
    return m;
  };
  EXPECT_EQ(to_map(a->table), to_map(b->table));
}

// The latency-model change the tentpole exists for: scatter charged as
// max-over-DNs stays ~flat as shards are added, while the old chained-sum
// estimate grows linearly.
TEST(MppQueryLatencyTest, ParallelLatencyFlatSerialLatencyLinear) {
  auto run = [](int num_dns) {
    Cluster cluster(num_dns, Protocol::kGtmLite);
    Schema schema(
        {Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
    EXPECT_TRUE(cluster.CreateTable("t", schema).ok());
    for (int64_t i = 0; i < 20 * num_dns; ++i) {
      Txn t = cluster.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(t.Insert("t", Value(i), {Value(i), Value(i)}).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
    cluster.ResetSimTime();  // measure the query alone, not the data load
    auto result = DistributedAggregate(&cluster, "t", nullptr, {},
                                       {{AggFunc::kSum, "v", "s"}});
    EXPECT_TRUE(result.ok());
    return *result;
  };
  DistributedResult one = run(1);
  DistributedResult eight = run(8);
  // Parallel model: 8 shards cost at most 2x one shard (gather term only).
  EXPECT_LT(eight.sim_latency_us, 2 * one.sim_latency_us);
  // Serial model: 8 shards cost several times the parallel number.
  EXPECT_GT(eight.sim_latency_serial_us, 3 * eight.sim_latency_us);
  // On one shard the two models agree up to nothing at all: same single
  // round trip, same gather term.
  EXPECT_EQ(one.sim_latency_us, one.sim_latency_serial_us);
}

}  // namespace
}  // namespace ofi::cluster
