/// The OLTP traffic subsystem end to end: the pipelined session engine,
/// group commit through Cluster::CommitBatch (bit-identical applied state
/// vs per-commit, aborted prepares excluded), CN admission control (queue
/// wait charged, overflow shed), input validation, latency percentiles,
/// and the headline scaling claim — at 2048 sessions, group commit +
/// batched 2PC must at least double throughput at no worse p99.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "cluster/tpcc_workload.h"
#include "cluster/traffic/traffic.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;
using traffic::RunTraffic;
using traffic::TrafficOptions;
using traffic::TrafficResult;

Schema KvSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
}

/// Every visible row of every DN, keyed for exact comparison.
std::map<std::pair<int, int64_t>, int64_t> SnapshotTable(Cluster* cluster,
                                                         const std::string& table) {
  std::map<std::pair<int, int64_t>, int64_t> out;
  for (int dn = 0; dn < cluster->num_dns(); ++dn) {
    Txn t = cluster->Begin(TxnScope::kMultiShard);
    auto rows = t.ScanShard(table, dn);
    EXPECT_TRUE(rows.ok());
    for (const Row& row : *rows) out[{dn, row[0].AsInt()}] = row[1].AsInt();
    EXPECT_TRUE(t.Commit().ok());
  }
  return out;
}

constexpr int64_t kKvKeys = 128;

/// Applies `n` deterministic single- and multi-shard increments over
/// per-transaction-disjoint keys (open transactions in one window must not
/// conflict under first-updater-wins). Per-commit mode commits each
/// transaction individually; grouped mode holds windows of 8 open and
/// commits each window through one CommitBatch.
void RunDeterministicWrites(Cluster* cluster, int n, bool grouped) {
  ASSERT_LE(n, 48);  // keeps key sets i and (i + 67) % kKvKeys disjoint
  std::deque<Txn> open;
  std::vector<Txn*> window;
  auto flush = [&](SimTime at) {
    if (window.empty()) return;
    for (const GroupCommitOutcome& out : cluster->CommitBatch(window, at)) {
      EXPECT_TRUE(out.status.ok());
    }
    window.clear();
    open.clear();
  };
  for (int i = 0; i < n; ++i) {
    TxnScope scope = (i % 3 == 0) ? TxnScope::kMultiShard : TxnScope::kSingleShard;
    Txn t = cluster->Begin(scope, /*start_time=*/i * 10);
    auto bump = [&](int64_t k) {
      auto row = t.Read("kv", Value(k));
      ASSERT_TRUE(row.ok());
      (*row)[1] = Value((*row)[1].AsInt() + i + 1);
      ASSERT_TRUE(t.Update("kv", Value(k), std::move(*row)).ok());
    };
    bump(i);
    if (scope == TxnScope::kMultiShard) bump((i + 67) % kKvKeys);
    if (!grouped) {
      ASSERT_TRUE(t.Commit().ok());
      continue;
    }
    open.push_back(std::move(t));
    window.push_back(&open.back());
    if (window.size() == 8) flush(i * 10 + 100);
  }
  if (grouped) flush(n * 10 + 100);
}

TEST(CommitBatchTest, AppliedStateBitIdenticalToPerCommit) {
  Cluster per_commit(2, Protocol::kGtmLite);
  Cluster grouped(2, Protocol::kGtmLite);
  for (Cluster* c : {&per_commit, &grouped}) {
    ASSERT_TRUE(c->CreateTable("kv", KvSchema()).ok());
    for (int64_t k = 0; k < kKvKeys; ++k) {
      Txn t = c->Begin(TxnScope::kSingleShard);
      ASSERT_TRUE(t.Insert("kv", Value(k), {Value(k), Value(0)}).ok());
      ASSERT_TRUE(t.Commit().ok());
    }
  }

  RunDeterministicWrites(&per_commit, 48, /*grouped=*/false);
  RunDeterministicWrites(&grouped, 48, /*grouped=*/true);

  EXPECT_EQ(SnapshotTable(&per_commit, "kv"), SnapshotTable(&grouped, "kv"));
}

TEST(CommitBatchTest, BatchAmortizesLogWrites) {
  Cluster cluster(2, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.CreateTable("kv", KvSchema()).ok());
  for (int64_t k = 0; k < kKvKeys; ++k) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("kv", Value(k), {Value(k), Value(0)}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  int64_t before = cluster.metrics().Get("commitlog.log_writes");

  RunDeterministicWrites(&cluster, 48, /*grouped=*/true);

  // 48 transactions in windows of 8 on 2 DNs: each window costs at most one
  // prepare force plus one apply force per DN (4 total) — far fewer than
  // one per transaction.
  int64_t writes = cluster.metrics().Get("commitlog.log_writes") - before;
  EXPECT_GT(writes, 0);
  EXPECT_LE(writes, 4 * (48 / 8));
  EXPECT_EQ(cluster.metrics().Get("group_commit.txns"), 48);
}

TEST(CommitBatchTest, FinishedTxnRejectedOthersProceed) {
  Cluster cluster(2, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.CreateTable("kv", KvSchema()).ok());
  for (int64_t k = 0; k < 4; ++k) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("kv", Value(k), {Value(k), Value(0)}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  Txn good = cluster.Begin(TxnScope::kSingleShard, 0);
  auto row = good.Read("kv", Value(1));
  ASSERT_TRUE(row.ok());
  (*row)[1] = Value(7);
  ASSERT_TRUE(good.Update("kv", Value(1), std::move(*row)).ok());

  Txn dead = cluster.Begin(TxnScope::kSingleShard, 0);
  ASSERT_TRUE(dead.Abort().ok());  // already finished before the flush

  std::vector<GroupCommitOutcome> out =
      cluster.CommitBatch({&good, &dead}, /*flush_time=*/100);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[1].status.IsInvalidArgument());
  std::pair<int, int64_t> key1{cluster.ShardFor(Value(1)), 1};
  EXPECT_EQ(SnapshotTable(&cluster, "kv")[key1], 7);
}

TEST(TrafficValidationTest, RejectsNonsense) {
  Cluster cluster(2, Protocol::kGtmLite);
  TpccConfig cfg;
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());

  TrafficOptions opts;
  opts.sessions = 0;
  EXPECT_TRUE(RunTraffic(&cluster, cfg, opts).status().IsInvalidArgument());

  TpccConfig bad = cfg;
  bad.duration_us = 0;
  opts.sessions = 4;
  EXPECT_TRUE(RunTraffic(&cluster, bad, opts).status().IsInvalidArgument());
  EXPECT_TRUE(RunTraffic(nullptr, cfg, opts).status().IsInvalidArgument());
}

TEST(TrafficValidationTest, LoadTpccRejectsNonsense) {
  TpccConfig bad;
  bad.warehouses_per_dn = 0;
  Cluster c1(2, Protocol::kGtmLite);
  EXPECT_TRUE(LoadTpcc(&c1, bad).IsInvalidArgument());

  bad = TpccConfig{};
  bad.clients_per_dn = -1;
  Cluster c2(2, Protocol::kGtmLite);
  EXPECT_TRUE(LoadTpcc(&c2, bad).IsInvalidArgument());

  bad = TpccConfig{};
  bad.duration_us = 0;
  Cluster c3(2, Protocol::kGtmLite);
  EXPECT_TRUE(LoadTpcc(&c3, bad).IsInvalidArgument());

  bad = TpccConfig{};
  bad.multi_shard_fraction = 1.5;
  Cluster c4(2, Protocol::kGtmLite);
  EXPECT_TRUE(LoadTpcc(&c4, bad).IsInvalidArgument());
}

TpccConfig SmallTraffic() {
  TpccConfig cfg;
  cfg.warehouses_per_dn = 8;
  cfg.duration_us = 300'000;
  cfg.customers_per_warehouse = 40;
  cfg.stock_per_warehouse = 40;
  return cfg;
}

TEST(TrafficEngineTest, ReportsOrderedPercentiles) {
  Cluster cluster(2, Protocol::kGtmLite);
  TpccConfig cfg = SmallTraffic();
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());

  TrafficOptions opts;
  opts.sessions = 32;
  auto run = RunTraffic(&cluster, cfg, opts);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->committed, 100u);
  EXPECT_GT(run->latency_p50_us, 0);
  EXPECT_LE(run->latency_p50_us, run->latency_p95_us);
  EXPECT_LE(run->latency_p95_us, run->latency_p99_us);
  EXPECT_GT(run->throughput_tps, 0.0);
}

TEST(TrafficEngineTest, RunTpccReportsPercentiles) {
  Cluster cluster(2, Protocol::kGtmLite);
  TpccConfig cfg = SmallTraffic();
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());
  TpccResult r = RunTpcc(&cluster, cfg);
  EXPECT_GT(r.committed, 100u);
  EXPECT_GT(r.latency_p50_us, 0);
  EXPECT_LE(r.latency_p50_us, r.latency_p99_us);
}

TEST(TrafficAdmissionTest, QueueWaitChargedAndBounded) {
  Cluster cluster(2, Protocol::kGtmLite);
  TpccConfig cfg = SmallTraffic();
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());

  TrafficOptions gated;
  gated.sessions = 64;
  gated.admission.max_in_flight = 8;
  gated.admission.max_queue = 1024;
  auto run = RunTraffic(&cluster, cfg, gated);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->committed, 0u);
  EXPECT_LE(run->max_in_flight_seen, 8);
  EXPECT_GT(run->admission_queued, 0);
  EXPECT_GT(run->admission_wait_us, 0);
  EXPECT_EQ(run->admission_shed, 0);
  EXPECT_EQ(cluster.metrics().Get("admission.queued"), run->admission_queued);
  EXPECT_EQ(cluster.metrics().Get("admission.wait_us"), run->admission_wait_us);
}

TEST(TrafficAdmissionTest, FullQueueSheds) {
  Cluster cluster(2, Protocol::kGtmLite);
  TpccConfig cfg = SmallTraffic();
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());

  TrafficOptions tight;
  tight.sessions = 64;
  tight.abort_backoff_us = 2000;
  tight.admission.max_in_flight = 4;
  tight.admission.max_queue = 4;
  auto run = RunTraffic(&cluster, cfg, tight);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->shed, 0u);
  EXPECT_EQ(run->shed, static_cast<uint64_t>(run->admission_shed));
  EXPECT_GT(run->committed, 0u);  // degraded, not collapsed
}

/// A commit-heavy latency model (Fig3Latency precedent): statements are
/// cheap, the durable log force is expensive — the regime where group
/// commit pays. Used by the headline scaling assertion below.
LatencyModel CommitBoundLatency() {
  LatencyModel m;
  m.network_hop_us = 5;
  m.gtm_service_us = 1;
  m.dn_stmt_service_us = 5;
  m.dn_commit_service_us = 15;
  m.log_write_service_us = 250;
  m.dn_batch_record_service_us = 3;
  return m;
}

TEST(TrafficScaleTest, GroupCommitDoublesThroughputAt2048Sessions) {
  TpccConfig cfg;
  cfg.warehouses_per_dn = 256;  // 1024 warehouses: 2 sessions per warehouse
  cfg.duration_us = 250'000;
  cfg.customers_per_warehouse = 30;
  cfg.stock_per_warehouse = 30;
  cfg.multi_shard_fraction = 0.1;

  auto run_mode = [&](bool grouped) {
    Cluster cluster(4, Protocol::kGtmLite, CommitBoundLatency());
    EXPECT_TRUE(LoadTpcc(&cluster, cfg).ok());
    TrafficOptions opts;
    opts.sessions = 2048;
    opts.group_commit.enabled = grouped;
    opts.group_commit.window_us = 2000;
    opts.group_commit.max_batch = 64;
    auto run = RunTraffic(&cluster, cfg, opts);
    EXPECT_TRUE(run.ok());
    return *run;
  };

  TrafficResult per_commit = run_mode(false);
  TrafficResult grouped = run_mode(true);

  ASSERT_GT(per_commit.committed, 1000u);
  ASSERT_GT(grouped.committed, 1000u);
  EXPECT_GT(grouped.group_batches, 0);
  EXPECT_GT(grouped.group_txns, 0);
  // Far fewer log forces than transactions.
  EXPECT_LT(grouped.log_writes, static_cast<int64_t>(grouped.committed));

  // The acceptance bar: >= 2x throughput at equal-or-better tail latency.
  EXPECT_GE(grouped.throughput_tps, 2.0 * per_commit.throughput_tps);
  EXPECT_LE(grouped.latency_p99_us, per_commit.latency_p99_us);
}

}  // namespace
}  // namespace ofi::cluster
