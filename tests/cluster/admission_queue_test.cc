/// AdmissionController under concurrency: FIFO fairness of the wait queue,
/// conservation of slots (in_flight never exceeds the gate), and a
/// multi-threaded stress run — the test the tsan CI focus exercises to
/// prove the controller is safe when driven from a real front end instead
/// of the single-threaded simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/traffic/admission.h"

namespace ofi::cluster::traffic {
namespace {

TEST(AdmissionControllerTest, UnlimitedGateAdmitsEverything) {
  AdmissionController adm(AdmissionConfig{/*max_in_flight=*/0, /*max_queue=*/4});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(adm.Request(i, i), AdmissionDecision::kAdmitted);
  }
  EXPECT_EQ(adm.total_queued(), 0);
  EXPECT_EQ(adm.total_shed(), 0);
}

TEST(AdmissionControllerTest, QueueIsFifoAndWaitAccounted) {
  AdmissionController adm(AdmissionConfig{/*max_in_flight=*/2, /*max_queue=*/8});
  EXPECT_EQ(adm.Request(1, 0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(adm.Request(2, 0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(adm.Request(3, 10), AdmissionDecision::kQueued);
  EXPECT_EQ(adm.Request(4, 20), AdmissionDecision::kQueued);
  EXPECT_EQ(adm.queue_depth(), 2u);

  int64_t ticket = 0;
  SimTime admitted_at = 0;
  ASSERT_TRUE(adm.Release(100, &ticket, &admitted_at));
  EXPECT_EQ(ticket, 3);  // FIFO: first queued, first promoted
  EXPECT_EQ(admitted_at, 100);
  ASSERT_TRUE(adm.Release(150, &ticket, &admitted_at));
  EXPECT_EQ(ticket, 4);
  EXPECT_EQ(adm.total_wait_us(), (100 - 10) + (150 - 20));
  EXPECT_FALSE(adm.Release(200, &ticket, &admitted_at));  // queue empty
  EXPECT_EQ(adm.in_flight(), 1);
}

TEST(AdmissionControllerTest, FullQueueSheds) {
  AdmissionController adm(AdmissionConfig{/*max_in_flight=*/1, /*max_queue=*/2});
  EXPECT_EQ(adm.Request(1, 0), AdmissionDecision::kAdmitted);
  EXPECT_EQ(adm.Request(2, 0), AdmissionDecision::kQueued);
  EXPECT_EQ(adm.Request(3, 0), AdmissionDecision::kQueued);
  EXPECT_EQ(adm.Request(4, 0), AdmissionDecision::kShed);
  EXPECT_EQ(adm.total_shed(), 1);
}

TEST(AdmissionControllerStressTest, ConcurrentRequestersConserveSlots) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  constexpr int kMaxInFlight = 6;
  AdmissionController adm(
      AdmissionConfig{/*max_in_flight=*/kMaxInFlight, /*max_queue=*/64});

  std::atomic<int64_t> completed{0};
  std::atomic<bool> overshoot{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        SimTime now = t * kOpsPerThread + i;
        AdmissionDecision d = adm.Request(t, now);
        if (adm.in_flight() > kMaxInFlight) overshoot.store(true);
        if (d == AdmissionDecision::kAdmitted) {
          // Holder finishes immediately; promotion keeps the slot busy, so
          // the promoted waiter's "transaction" ends here too.
          int64_t ticket = 0;
          SimTime at = 0;
          while (adm.Release(now, &ticket, &at)) {
          }
          completed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_FALSE(overshoot.load());
  EXPECT_GT(completed.load(), 0);
  // Drain anything still parked; the books must balance.
  int64_t ticket = 0;
  SimTime at = 0;
  while (adm.Release(1 << 30, &ticket, &at)) {
  }
  EXPECT_EQ(adm.queue_depth(), 0u);
  // Books balance: every request was admitted immediately (counted in
  // `completed`), queued (all promoted by now), or shed.
  EXPECT_EQ(adm.total_admitted(), completed.load() + adm.total_queued());
  EXPECT_EQ(completed.load() + adm.total_queued() + adm.total_shed(),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace ofi::cluster::traffic
