/// Stress: background vacuum running concurrently with distributed joins
/// over the exchange. Vacuum takes unique locks on the MVCC tables while
/// join workers scan them through shared locks and move rows through the
/// exchange channels on the thread pool — under tsan this exercises every
/// cross-thread edge the subsystem has (storage locks, channel mutexes,
/// metrics registry). Correctness check: the data is immutable during the
/// concurrent phase (updates create garbage BEFORE it), so every join must
/// equal the precomputed reference no matter when vacuum runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "cluster/mpp_query.h"
#include "common/rng.h"
#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::Table;
using sql::TypeId;
using sql::Value;

std::string RowKey(const Row& r) {
  std::string k;
  for (const auto& v : r) {
    k += v.is_null() ? std::string("\x01<null>") : v.ToString();
    k += '\x1f';
  }
  return k;
}

std::vector<Row> Canonical(const Table& t) {
  std::vector<Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return RowKey(a) < RowKey(b); });
  return rows;
}

TEST(VacuumExchangeStressTest, JoinsStayExactWhileVacuumRuns) {
  Cluster cluster(4, Protocol::kGtmLite);
  Schema fact({Column{"id", TypeId::kInt64, ""},
               Column{"dim_id", TypeId::kInt64, ""},
               Column{"v", TypeId::kInt64, ""}});
  Schema dim({Column{"d_id", TypeId::kInt64, ""},
              Column{"tag", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster.CreateTable("fact", fact).ok());
  ASSERT_TRUE(cluster.CreateTable("dim", dim).ok());

  Rng rng(99);
  std::vector<Row> fact_rows, dim_rows;
  for (int64_t d = 0; d < 30; ++d) {
    Row row = {Value(d), Value(rng.Uniform(0, 4))};
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("dim", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
    dim_rows.push_back(row);
  }
  for (int64_t i = 0; i < 240; ++i) {
    Row row = {Value(i), Value(rng.Uniform(0, 29)), Value(rng.Uniform(1, 100))};
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("fact", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
    fact_rows.push_back(row);
  }
  // Churn: update every fact row a few times so vacuum has dead versions to
  // reclaim during the concurrent phase. The FINAL image is the reference.
  for (int round = 0; round < 3; ++round) {
    for (int64_t i = 0; i < 240; ++i) {
      Row row = {Value(i), Value(rng.Uniform(0, 29)), Value(rng.Uniform(1, 100))};
      Txn t = cluster.Begin(TxnScope::kSingleShard);
      ASSERT_TRUE(t.Update("fact", row[0], row).ok());
      ASSERT_TRUE(t.Commit().ok());
      fact_rows[static_cast<size_t>(i)] = row;
    }
  }

  DistributedJoinSpec spec;
  spec.left_table = "fact";
  spec.right_table = "dim";
  spec.left_key = "dim_id";
  spec.right_key = "d_id";

  // Single-node reference over the final committed images.
  sql::Catalog catalog;
  catalog.Register("fact", Table(fact, fact_rows));
  catalog.Register("dim", Table(dim, dim_rows));
  sql::Executor exec(&catalog);
  Table want_table =
      exec.Execute(sql::MakeJoin(sql::MakeScan("fact"), sql::MakeScan("dim"),
                                 Expr::EqCols("dim_id", "d_id")))
          .ValueOrDie();
  std::vector<Row> want = Canonical(want_table);

  // Vacuum thread: hammer cluster-wide GC (unique locks + metrics writes)
  // until the joins are done.
  std::atomic<bool> stop{false};
  std::atomic<size_t> total_removed{0};
  std::thread vacuumer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      total_removed.fetch_add(cluster.Vacuum(), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  for (int iter = 0; iter < 12; ++iter) {
    DistributedJoinOptions opts;
    opts.strategy = iter % 2 == 0 ? JoinStrategy::kBroadcast
                                  : JoinStrategy::kRepartition;
    auto result = DistributedJoin(&cluster, spec, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Row> got = Canonical(result->table);
    ASSERT_EQ(got.size(), want.size()) << "iter " << iter;
    for (size_t i = 0; i < got.size(); ++i) {
      for (size_t c = 0; c < got[i].size(); ++c) {
        ASSERT_TRUE(got[i][c].Equals(want[i][c]))
            << "iter " << iter << " row " << i << " col " << c;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  vacuumer.join();

  // The churn left ~3x240 dead versions; the concurrent vacuum reclaimed
  // them (possibly across several passes) without upsetting any join.
  EXPECT_GT(total_removed.load(), 0u);
}

}  // namespace
}  // namespace ofi::cluster
