/// The columnar MPP scan path: every DistributedAggregate shape must return
/// exactly what the row path returns (zone maps, kernels, morsels and the
/// gather fallback are pure execution detail), writes must be served
/// immediately through the delta-tail union (freshness is a property, not a
/// fallback), and zone-map pruning must be visible in the simulated latency
/// (pruned chunks are free).
#include <algorithm>

#include <gtest/gtest.h>

#include "cluster/mpp_query.h"
#include "common/rng.h"
#include "sql/executor.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

std::vector<Row> SortedRows(const sql::Table& t) {
  std::vector<Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

void ExpectSameTable(const sql::Table& got, const sql::Table& want) {
  auto g = SortedRows(got);
  auto w = SortedRows(want);
  ASSERT_EQ(g.size(), w.size());
  for (size_t r = 0; r < g.size(); ++r) {
    ASSERT_EQ(g[r].size(), w[r].size()) << "row " << r;
    for (size_t c = 0; c < g[r].size(); ++c) {
      EXPECT_TRUE(g[r][c].Equals(w[r][c]))
          << "row " << r << " col " << c;
    }
  }
}

/// 400 rows with NULL amounts sprinkled in, columnar copy registered. The
/// key invariant every test leans on: use_columnar toggles only HOW shards
/// are scanned, never what comes back.
class ColumnarMppTest : public ::testing::Test {
 protected:
  ColumnarMppTest() : cluster_(4, Protocol::kGtmLite) {
    Schema schema({Column{"k", TypeId::kInt64, ""},
                   Column{"region", TypeId::kInt64, ""},
                   Column{"amount", TypeId::kInt64, ""}});
    EXPECT_TRUE(cluster_.CreateTable("sales", schema).ok());
    Rng rng(77);
    for (int64_t i = 0; i < 400; ++i) {
      // Every 8th amount NULL: filters must never match it, SUM/AVG skip it.
      Value amount = Value(rng.Uniform(1, 100));
      if (i % 8 == 3) amount = Value::Null();
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      EXPECT_TRUE(
          t.Insert("sales", Value(i), {Value(i), Value(i % 5), amount}).ok());
      EXPECT_TRUE(t.Commit().ok());
    }
    EXPECT_TRUE(cluster_.RegisterColumnar("sales").ok());
  }

  /// Runs the same aggregate through the columnar path and the forced row
  /// path and asserts identical tables; returns the columnar result.
  DistributedResult RunBoth(const std::function<sql::ExprPtr()>& filter,
                            std::vector<std::string> group_by,
                            std::vector<DistributedAgg> aggs) {
    auto columnar =
        DistributedAggregate(&cluster_, "sales", filter(), group_by, aggs);
    DistributedOptions row_only;
    row_only.use_columnar = false;
    auto rows = DistributedAggregate(&cluster_, "sales", filter(), group_by,
                                     aggs, row_only);
    EXPECT_TRUE(columnar.ok()) << columnar.status().ToString();
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->columnar_shards, 0u);
    ExpectSameTable(columnar->table, rows->table);
    return std::move(*columnar);
  }

  Cluster cluster_;
};

TEST_F(ColumnarMppTest, GlobalKernelAggregatesMatchRowPath) {
  auto res = RunBoth([] { return sql::ExprPtr{}; }, {},
                     {{AggFunc::kCount, "", "n"},
                      {AggFunc::kSum, "amount", "total"},
                      {AggFunc::kMin, "amount", "lo"},
                      {AggFunc::kMax, "amount", "hi"}});
  // All four shards fresh -> all served columnar, via the pure-kernel path.
  EXPECT_EQ(res.columnar_shards, 4u);
  EXPECT_GT(res.scan_stats.chunks_total, 0u);
  // MIN/MAX come from zone maps; SUM decodes. COUNT(amount) is not asked,
  // so at least SUM's rows are decoded.
  EXPECT_GT(res.scan_stats.rows_decoded, 0u);
}

TEST_F(ColumnarMppTest, IntRangeFiltersMatchRowPath) {
  // One-sided compares and an And-of-ranges (Between after intersection).
  auto gt = RunBoth([] { return Expr::Gt("amount", Value(50)); }, {},
                    {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "s"}});
  EXPECT_EQ(gt.columnar_shards, 4u);
  RunBoth([] { return Expr::Ge("amount", Value(97)); }, {},
          {{AggFunc::kCount, "", "n"}});
  RunBoth([] { return Expr::Lt("k", Value(37)); }, {},
          {{AggFunc::kMax, "k", "m"}});
  auto between = RunBoth(
      [] {
        return Expr::And(Expr::Ge("k", Value(100)), Expr::Le("k", Value(299)));
      },
      {}, {{AggFunc::kCount, "", "n"}, {AggFunc::kMin, "amount", "lo"}});
  EXPECT_EQ(between.columnar_shards, 4u);
  ASSERT_EQ(between.table.num_rows(), 1u);
  EXPECT_EQ(between.table.rows()[0][0].AsInt(), 200);
}

TEST_F(ColumnarMppTest, FilterEliminatingEverythingMatchesRowPath) {
  auto res = RunBoth([] { return Expr::Gt("amount", Value(100000)); }, {},
                     {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "s"}});
  EXPECT_EQ(res.columnar_shards, 4u);
  ASSERT_EQ(res.table.num_rows(), 1u);
  EXPECT_EQ(res.table.rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(res.table.rows()[0][1].is_null());
  // amount's zone tops out far below the bound: every chunk pruned, none
  // scanned, nothing decoded.
  EXPECT_EQ(res.scan_stats.chunks_scanned, 0u);
  EXPECT_EQ(res.scan_stats.rows_decoded, 0u);
}

TEST_F(ColumnarMppTest, GroupByUsesGroupedKernelAndMatchesRowPath) {
  const int64_t fallback_agg0 = cluster_.metrics().Get("columnar.fallback_agg");
  const int64_t fallback_gb0 =
      cluster_.metrics().Get("columnar.fallback_groupby_type");
  auto res = RunBoth([] { return sql::ExprPtr{}; }, {"region"},
                     {{AggFunc::kCount, "", "n"},
                      {AggFunc::kSum, "amount", "total"},
                      {AggFunc::kAvg, "amount", "av"}});
  // GROUP BY runs the vectorized grouped hash kernel on every fresh shard:
  // no row materialization, no fallback counters.
  EXPECT_EQ(res.columnar_shards, 4u);
  EXPECT_EQ(res.table.num_rows(), 5u);
  EXPECT_EQ(cluster_.metrics().Get("columnar.fallback_agg"), fallback_agg0);
  EXPECT_EQ(cluster_.metrics().Get("columnar.fallback_groupby_type"),
            fallback_gb0);
  // The kernel decodes only the referenced columns (region, amount): one
  // chunk each on every shard — 2 column-chunks x 4 shards. A materializing
  // path would have decoded all three columns.
  EXPECT_EQ(res.scan_stats.chunks_scanned, 8u);
}

TEST_F(ColumnarMppTest, FilteredGroupByMatchesRowPath) {
  auto res = RunBoth([] { return Expr::Gt("amount", Value(30)); }, {"region"},
                     {{AggFunc::kAvg, "amount", "av"},
                      {AggFunc::kCount, "", "n"}});
  EXPECT_EQ(res.columnar_shards, 4u);
}

TEST_F(ColumnarMppTest, UnsupportedFilterFallsBackToRowStore) {
  auto res = RunBoth(
      [] {
        return Expr::Or(Expr::Gt("amount", Value(90)),
                        Expr::Lt("amount", Value(10)));
      },
      {}, {{AggFunc::kCount, "", "n"}});
  // Or is not a recognizable range -> whole query takes the row path.
  EXPECT_EQ(res.columnar_shards, 0u);
  EXPECT_GE(cluster_.metrics().Get("columnar.fallback_filter"), 1);
}

TEST_F(ColumnarMppTest, WritesAreServedColumnarWithoutRefresh) {
  // Delete one row: the mutated shard marks the sealed row's sidecar xmax
  // and every shard stays columnar — the delete is visible immediately,
  // with no stale fallback and no refresh.
  Txn t = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t.Delete("sales", Value(7)).ok());
  ASSERT_TRUE(t.Commit().ok());

  auto res = RunBoth([] { return sql::ExprPtr{}; }, {},
                     {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "s"}});
  EXPECT_EQ(res.columnar_shards, 4u);
  ASSERT_EQ(res.table.num_rows(), 1u);
  EXPECT_EQ(res.table.rows()[0][0].AsInt(), 399);

  // An insert is served from the delta tail the same way.
  Txn t2 = cluster_.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t2.Insert("sales", Value(int64_t{100000}),
                        {Value(int64_t{100000}), Value(0), Value(int64_t{5})})
                  .ok());
  ASSERT_TRUE(t2.Commit().ok());
  auto fresh = RunBoth([] { return sql::ExprPtr{}; }, {},
                       {{AggFunc::kCount, "", "n"}});
  EXPECT_EQ(fresh.columnar_shards, 4u);
  EXPECT_EQ(fresh.table.rows()[0][0].AsInt(), 400);
  EXPECT_GE(fresh.scan_stats.delta_rows, 1u);
}

TEST_F(ColumnarMppTest, DropColumnarRestoresPureRowPath) {
  cluster_.DropColumnar("sales");
  auto res = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                  {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->columnar_shards, 0u);
  EXPECT_EQ(res->table.rows()[0][0].AsInt(), 400);
}

TEST_F(ColumnarMppTest, MorselParallelAndPoolScatterAllAgree) {
  auto filter = [] { return Expr::Gt("amount", Value(20)); };
  std::vector<DistributedAgg> aggs = {{AggFunc::kCount, "", "n"},
                                      {AggFunc::kSum, "amount", "s"}};
  DistributedOptions inline_morsel;
  inline_morsel.parallel = false;
  inline_morsel.columnar_morsel_parallel = true;
  cluster_.ResetSimTime();
  auto a = DistributedAggregate(&cluster_, "sales", filter(), {}, aggs,
                                inline_morsel);
  cluster_.ResetSimTime();
  auto b = DistributedAggregate(&cluster_, "sales", filter(), {}, aggs);
  DistributedOptions row_only;
  row_only.use_columnar = false;
  auto c = DistributedAggregate(&cluster_, "sales", filter(), {}, aggs,
                                row_only);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->columnar_shards, 4u);
  EXPECT_EQ(b->columnar_shards, 4u);
  ExpectSameTable(a->table, b->table);
  ExpectSameTable(a->table, c->table);
  // Chunk-order merge: morsel parallelism changes neither results nor the
  // scan counters nor the simulated latency.
  EXPECT_EQ(a->scan_stats.chunks_scanned, b->scan_stats.chunks_scanned);
  EXPECT_EQ(a->scan_stats.rows_decoded, b->scan_stats.rows_decoded);
  EXPECT_EQ(a->sim_latency_us, b->sim_latency_us);
}

TEST_F(ColumnarMppTest, ScanMetricsPublished) {
  cluster_.metrics().Reset();
  auto res = DistributedAggregate(&cluster_, "sales",
                                  Expr::Gt("amount", Value(50)), {},
                                  {{AggFunc::kSum, "amount", "s"}});
  ASSERT_TRUE(res.ok());
  auto& m = cluster_.metrics();
  EXPECT_EQ(m.Get("columnar.scans"), 4);
  EXPECT_EQ(m.Get("columnar.chunks_scanned"),
            static_cast<int64_t>(res->scan_stats.chunks_scanned));
  EXPECT_EQ(m.Get("columnar.rows_filtered"),
            static_cast<int64_t>(res->scan_stats.rows_matched));
}

TEST_F(ColumnarMppTest, StringEqualityFilterServedFromDictionary) {
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"tag", TypeId::kString, ""},
                 Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster_.CreateTable("events", schema).ok());
  const char* tags[] = {"alpha", "beta", "gamma"};
  for (int64_t i = 0; i < 120; ++i) {
    Value tag = (i % 10 == 9) ? Value::Null() : Value(tags[i % 3]);
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(
        t.Insert("events", Value(i), {Value(i), tag, Value(i * 2)}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(cluster_.RegisterColumnar("events").ok());

  auto run = [&](bool columnar) {
    DistributedOptions o;
    o.use_columnar = columnar;
    return DistributedAggregate(&cluster_, "events",
                                Expr::Eq("tag", Value("beta")), {},
                                {{AggFunc::kCount, "", "n"},
                                 {AggFunc::kSum, "v", "s"}},
                                o);
  };
  auto col = run(true);
  auto row = run(false);
  ASSERT_TRUE(col.ok()) << col.status().ToString();
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(col->columnar_shards, 4u);
  ExpectSameTable(col->table, row->table);
}

TEST_F(ColumnarMppTest, EmptyTableRegisteredColumnar) {
  Schema schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster_.CreateTable("void", schema).ok());
  ASSERT_TRUE(cluster_.RegisterColumnar("void").ok());
  auto res = DistributedAggregate(&cluster_, "void", nullptr, {},
                                  {{AggFunc::kCount, "", "n"},
                                   {AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->columnar_shards, 4u);
  ASSERT_EQ(res->table.num_rows(), 1u);
  EXPECT_EQ(res->table.rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(res->table.rows()[0][1].is_null());
}

// Failover: the promoted backup's heap absorbed the failed primary's rows
// under a recovery transaction; the heap listener fed those rows into the
// backup's delta tail, so the promoted node serves the columnar path too —
// no stale fallback. Every row is counted exactly once.
TEST(ColumnarMppFailoverTest, PromotedBackupServesColumnarFromDeltaTail) {
  Cluster cluster(4, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.EnableReplication().ok());
  Schema schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster.CreateTable("t", schema).ok());
  int64_t total = 0;
  for (int64_t i = 0; i < 120; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("t", Value(i), {Value(i), Value(i)}).ok());
    ASSERT_TRUE(t.Commit().ok());
    total += i;
  }
  ASSERT_TRUE(cluster.RegisterColumnar("t").ok());
  ASSERT_TRUE(cluster.FailDn(0).ok());
  auto res = DistributedAggregate(&cluster, "t", nullptr, {},
                                  {{AggFunc::kCount, "", "n"},
                                   {AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->table.rows()[0][0].AsInt(), 120);
  EXPECT_EQ(res->table.rows()[0][1].AsInt(), total);
  // 3 serving nodes, every one columnar — the promoted backup included.
  EXPECT_EQ(res->columnar_shards, 3u);
}

// The tentpole's latency story: a selective range over clustered keys prunes
// most chunks, and pruned chunks charge nothing, so the simulated scan is
// strictly cheaper than a full sweep of the same shards.
TEST(ColumnarMppPruningTest, SelectiveRangeIsCheaperThanFullScan) {
  Cluster cluster(2, Protocol::kGtmLite);
  Schema schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
  ASSERT_TRUE(cluster.CreateTable("big", schema).ok());
  // ~10k rows per DN -> 3 chunks per shard after the clustered (sorted)
  // rebuild. Batched multi-shard transactions keep the load fast.
  constexpr int64_t kRows = 20000;
  for (int64_t base = 0; base < kRows; base += 1000) {
    Txn t = cluster.Begin(TxnScope::kMultiShard);
    for (int64_t i = base; i < base + 1000; ++i) {
      ASSERT_TRUE(t.Insert("big", Value(i), {Value(i), Value(i % 97)}).ok());
    }
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(cluster.RegisterColumnar("big").ok());

  cluster.ResetSimTime();
  auto full = DistributedAggregate(&cluster, "big", nullptr, {},
                                   {{AggFunc::kSum, "v", "s"}});
  cluster.ResetSimTime();
  auto selective = DistributedAggregate(
      &cluster, "big",
      Expr::And(Expr::Ge("k", Value(0)), Expr::Le("k", Value(99))), {},
      {{AggFunc::kSum, "v", "s"}});
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(selective.ok());
  EXPECT_EQ(full->columnar_shards, 2u);
  EXPECT_EQ(selective->columnar_shards, 2u);

  // Keys are clustered, so [0, 99] lives in each shard's first chunk: the
  // rest are pruned by zone maps and never charged.
  EXPECT_GT(selective->scan_stats.chunks_pruned, 0u);
  EXPECT_LT(selective->scan_stats.chunks_scanned,
            full->scan_stats.chunks_scanned);
  EXPECT_LT(selective->scan_stats.rows_decoded, full->scan_stats.rows_decoded);
  EXPECT_LT(selective->sim_latency_us, full->sim_latency_us);

  // Cross-check the answer against the row path.
  DistributedOptions row_only;
  row_only.use_columnar = false;
  auto reference = DistributedAggregate(
      &cluster, "big",
      Expr::And(Expr::Ge("k", Value(0)), Expr::Le("k", Value(99))), {},
      {{AggFunc::kSum, "v", "s"}}, row_only);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(selective->table.rows()[0][0].Equals(reference->table.rows()[0][0]));
}

}  // namespace
}  // namespace ofi::cluster
