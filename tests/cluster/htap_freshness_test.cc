/// HTAP freshness: the per-shard columnar delta store (storage/delta_store)
/// must make columnar scans bit-identical to the forced row path at ANY
/// point in a write stream — inserts, updates, and deletes are visible the
/// moment they commit, with no refresh, no rebuild, and no stale fallback —
/// while background merges compact the delta tails without ever blocking a
/// scan or changing an answer.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace ofi::cluster {
namespace {

using sql::AggFunc;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

std::vector<Row> SortedRows(const sql::Table& t) {
  std::vector<Row> rows = t.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

void ExpectSameTable(const sql::Table& got, const sql::Table& want,
                     const std::string& what) {
  auto g = SortedRows(got);
  auto w = SortedRows(want);
  ASSERT_EQ(g.size(), w.size()) << what;
  for (size_t r = 0; r < g.size(); ++r) {
    ASSERT_EQ(g[r].size(), w[r].size()) << what << " row " << r;
    for (size_t c = 0; c < g[r].size(); ++c) {
      EXPECT_TRUE(g[r][c].Equals(w[r][c]))
          << what << " row " << r << " col " << c;
    }
  }
}

class HtapFreshnessTest : public ::testing::Test {
 protected:
  HtapFreshnessTest() : cluster_(4, Protocol::kGtmLite) {
    Schema schema({Column{"k", TypeId::kInt64, ""},
                   Column{"region", TypeId::kInt64, ""},
                   Column{"amount", TypeId::kInt64, ""}});
    EXPECT_TRUE(cluster_.CreateTable("sales", schema).ok());
  }

  Row MakeRow(int64_t k, Rng* rng) {
    Value amount = (rng->Uniform(0, 7) == 3) ? Value::Null()
                                             : Value(rng->Uniform(1, 1000));
    return {Value(k), Value(rng->Uniform(0, 4)), amount};
  }

  void Insert(int64_t k, Rng* rng) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    Row row = MakeRow(k, rng);
    ASSERT_TRUE(t.Insert("sales", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  void Update(int64_t k, Rng* rng) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    Row row = MakeRow(k, rng);
    ASSERT_TRUE(t.Update("sales", row[0], row).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  void Delete(int64_t k) {
    Txn t = cluster_.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Delete("sales", Value(k)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  /// Runs one aggregate shape through the columnar path and the forced row
  /// path and asserts identical tables. Every shard must serve columnar —
  /// freshness is a property of the delta store, never a fallback reason.
  void CompareBoth(sql::ExprPtr col_filter, sql::ExprPtr row_filter,
                   std::vector<std::string> group_by,
                   std::vector<DistributedAgg> aggs, const std::string& what) {
    auto columnar = DistributedAggregate(&cluster_, "sales",
                                         std::move(col_filter), group_by, aggs);
    DistributedOptions row_only;
    row_only.use_columnar = false;
    auto rows = DistributedAggregate(&cluster_, "sales", std::move(row_filter),
                                     group_by, aggs, row_only);
    ASSERT_TRUE(columnar.ok()) << what << ": " << columnar.status().ToString();
    ASSERT_TRUE(rows.ok()) << what << ": " << rows.status().ToString();
    EXPECT_EQ(columnar->columnar_shards, 4u) << what;
    EXPECT_EQ(rows->columnar_shards, 0u) << what;
    ExpectSameTable(columnar->table, rows->table, what);
  }

  void CompareAllShapes(const std::string& tag, Rng* rng) {
    CompareBoth(nullptr, nullptr, {},
                {{AggFunc::kCount, "", "n"},
                 {AggFunc::kSum, "amount", "s"},
                 {AggFunc::kMin, "amount", "lo"},
                 {AggFunc::kMax, "amount", "hi"}},
                tag + " global");
    const int64_t bound = rng->Uniform(-100, 1100);
    auto filt = [&] { return Expr::Gt("amount", Value(bound)); };
    CompareBoth(filt(), filt(), {},
                {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "s"}},
                tag + " filtered");
    CompareBoth(nullptr, nullptr, {"region"},
                {{AggFunc::kCount, "", "n"},
                 {AggFunc::kSum, "amount", "s"},
                 {AggFunc::kAvg, "amount", "a"}},
                tag + " grouped");
    auto range = [&] {
      return Expr::And(Expr::Ge("k", Value(int64_t{50})),
                       Expr::Le("k", Value(int64_t{400})));
    };
    CompareBoth(range(), range(), {"region"},
                {{AggFunc::kCount, "", "n"}, {AggFunc::kMax, "amount", "hi"}},
                tag + " filtered-grouped");
  }

  Cluster cluster_;
};

// The tentpole acceptance: a randomized insert/update/delete stream with
// periodic columnar-vs-row comparisons at every tail length — short tails,
// long tails, tails mid-background-merge, and freshly merged tails.
TEST_F(HtapFreshnessTest, RandomizedWriteStreamMatchesRowOracle) {
  Rng rng(2026);
  std::vector<int64_t> live;
  int64_t next_key = 0;
  for (; next_key < 150; ++next_key) {
    Insert(next_key, &rng);
    live.push_back(next_key);
  }
  ASSERT_TRUE(cluster_.RegisterColumnar("sales").ok());
  // Low threshold so the stream triggers real background merges mid-test.
  cluster_.set_delta_merge_threshold(24);

  const int64_t fallback_filter0 =
      cluster_.metrics().Get("columnar.fallback_filter");
  const int64_t fallback_agg0 = cluster_.metrics().Get("columnar.fallback_agg");

  for (int step = 0; step < 360; ++step) {
    const int64_t dice = rng.Uniform(0, 99);
    if (dice < 55 || live.empty()) {
      Insert(next_key, &rng);
      live.push_back(next_key++);
    } else if (dice < 80) {
      Update(live[static_cast<size_t>(rng.Uniform(
                 0, static_cast<int64_t>(live.size()) - 1))],
             &rng);
    } else {
      size_t pick = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      Delete(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 30 == 29) {
      CompareAllShapes("step " + std::to_string(step), &rng);
    }
    if (step % 120 == 119) {
      // A sync force-merge mid-stream must not change any answer either.
      auto merged = cluster_.RefreshColumnar("sales");
      ASSERT_TRUE(merged.ok());
      CompareAllShapes("post-refresh step " + std::to_string(step), &rng);
    }
  }
  cluster_.WaitForMerges();
  CompareAllShapes("final", &rng);

  // The stream was long enough to cross the merge threshold repeatedly.
  EXPECT_GT(cluster_.metrics().Get("columnar.merges"), 0);
  EXPECT_GT(cluster_.metrics().Get("columnar.merge_rows"), 0);
  // Freshness never demoted a shard: the only fallback counters that exist
  // are filter/agg/groupby-type, and this stream tripped none of them.
  EXPECT_EQ(cluster_.metrics().Get("columnar.fallback_filter"),
            fallback_filter0);
  EXPECT_EQ(cluster_.metrics().Get("columnar.fallback_agg"), fallback_agg0);
  EXPECT_EQ(cluster_.metrics().Get("columnar.fallback_stale"), 0);
}

// Delete + reinsert of the same key exercises the sealed-row xmax sidecar,
// the delta tail, and the merge's dead-row rewrite path in one stream.
TEST_F(HtapFreshnessTest, DeleteReinsertCyclesStayExact) {
  Rng rng(99);
  for (int64_t k = 0; k < 80; ++k) Insert(k, &rng);
  ASSERT_TRUE(cluster_.RegisterColumnar("sales").ok());

  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int64_t k = cycle * 7; k < cycle * 7 + 20; ++k) Delete(k % 80);
    CompareAllShapes("deleted cycle " + std::to_string(cycle), &rng);
    for (int64_t k = cycle * 7; k < cycle * 7 + 20; ++k) Insert(k % 80, &rng);
    CompareAllShapes("reinserted cycle " + std::to_string(cycle), &rng);
    // Merging dead sealed rows forces the full rewrite path; answers hold.
    auto merged = cluster_.RefreshColumnar("sales");
    ASSERT_TRUE(merged.ok());
    CompareAllShapes("merged cycle " + std::to_string(cycle), &rng);
  }
  EXPECT_GT(cluster_.metrics().Get("columnar.merge_rows"), 0);
}

// Background merges must never block scans or writers: a writer thread, two
// scanner threads, and pool merges all run concurrently; per-thread scan
// counts are monotone (insert-only stream + snapshot isolation) and the
// final answer is exact.
TEST_F(HtapFreshnessTest, ConcurrentMergeScanWriteStress) {
  Rng rng(7);
  for (int64_t k = 0; k < 60; ++k) Insert(k, &rng);
  ASSERT_TRUE(cluster_.RegisterColumnar("sales").ok());
  cluster_.set_delta_merge_threshold(16);

  constexpr int kWriterRows = 240;
  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    Rng wrng(17);
    for (int64_t k = 0; k < kWriterRows; ++k) {
      Txn t = cluster_.Begin(TxnScope::kSingleShard);
      Value amount =
          (k % 9 == 4) ? Value::Null() : Value(wrng.Uniform(1, 1000));
      Row row = {Value(k + 1000), Value(k % 4), amount};
      if (!t.Insert("sales", row[0], row).ok() || !t.Commit().ok()) {
        ++failures;
        return;
      }
    }
    writer_done = true;
  });

  auto scanner = [&] {
    DistributedOptions opts;
    opts.parallel = false;  // inline scatter; pool stays free for merges
    int64_t last = 0;
    while (!writer_done.load()) {
      auto res = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                      {{AggFunc::kCount, "", "n"}}, opts);
      if (!res.ok() || res->columnar_shards != 4u) {
        ++failures;
        return;
      }
      int64_t n = res->table.rows()[0][0].AsInt();
      if (n < last) {  // snapshots only move forward under insert-only load
        ++failures;
        return;
      }
      last = n;
    }
  };
  std::thread s1(scanner), s2(scanner);
  writer.join();
  s1.join();
  s2.join();
  ASSERT_EQ(failures.load(), 0);

  cluster_.WaitForMerges();
  CompareBoth(nullptr, nullptr, {},
              {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "s"}},
              "post-stress");
  auto final_count = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                          {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->table.rows()[0][0].AsInt(), 60 + kWriterRows);
  EXPECT_GT(cluster_.metrics().Get("columnar.merges"), 0);
}

// Merge accounting: merges charge the DN resource (off the scan's critical
// path), shrink delta_rows back to zero, and publish their row counts.
TEST_F(HtapFreshnessTest, MergeShrinksDeltaAndPublishesMetrics) {
  Rng rng(5);
  for (int64_t k = 0; k < 100; ++k) Insert(k, &rng);
  ASSERT_TRUE(cluster_.RegisterColumnar("sales").ok());
  cluster_.set_auto_merge(false);  // keep the tails until we say so

  for (int64_t k = 100; k < 140; ++k) Insert(k, &rng);
  auto tailed = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                     {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(tailed.ok());
  EXPECT_EQ(tailed->table.rows()[0][0].AsInt(), 140);
  EXPECT_EQ(tailed->scan_stats.delta_rows, 40u);
  EXPECT_EQ(cluster_.metrics().Get("columnar.merges"), 0);

  auto merged = cluster_.RefreshColumnar("sales");
  ASSERT_TRUE(merged.ok());
  EXPECT_GT(*merged, 0u);
  EXPECT_GT(cluster_.metrics().Get("columnar.merges"), 0);
  EXPECT_EQ(cluster_.metrics().Get("columnar.merge_rows"), 40);

  auto clean = DistributedAggregate(&cluster_, "sales", nullptr, {},
                                    {{AggFunc::kCount, "", "n"}});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->table.rows()[0][0].AsInt(), 140);
  EXPECT_EQ(clean->scan_stats.delta_rows, 0u);
}

}  // namespace
}  // namespace ofi::cluster
