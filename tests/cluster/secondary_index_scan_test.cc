/// End-to-end coverage of the optimizer-chosen secondary-index fast path:
/// DistIndexScan must return bit-identical rows to the full scan (the
/// single-node mirror is the oracle, and --no-index the cross-check), route
/// shard-key point probes to ONE DN under kSingleShard, beat the full scan
/// by >= 5x simulated latency at seed scale, speed up TPC-C point reads,
/// and never deadlock index builds against background delta merges.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/distributed_sql.h"
#include "cluster/tpcc_workload.h"
#include "common/rng.h"
#include "optimizer/sql_session.h"

namespace ofi::cluster {
namespace {

using sql::Row;
using sql::Table;
using sql::Value;

std::string RowKey(const Row& row) {
  std::string key;
  for (const auto& v : row) {
    key += v.is_null() ? "\x01<null>" : v.ToString();
    key += '\x1f';
  }
  return key;
}

std::vector<std::string> Canonical(const Table& t) {
  std::vector<std::string> keys;
  keys.reserve(t.num_rows());
  for (const auto& row : t.rows()) keys.push_back(RowKey(row));
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ExpectSameRows(const Table& got, const Table& want,
                    const std::string& context) {
  EXPECT_EQ(got.schema().num_columns(), want.schema().num_columns()) << context;
  auto g = Canonical(got);
  auto w = Canonical(want);
  ASSERT_EQ(g.size(), w.size()) << context;
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i], w[i]) << context << " row " << i;
  }
}

/// Distributed session + single-node mirror oracle, plus a bulk loader
/// (multi-row INSERT statements keep the per-statement overhead sane).
class SecondaryIndexScanTest : public ::testing::Test {
 protected:
  SecondaryIndexScanTest() : dist_(4), local_(/*capture_threshold=*/-1) {}

  void Exec(const std::string& stmt) {
    auto d = dist_.Execute(stmt);
    ASSERT_TRUE(d.ok()) << stmt << ": " << d.status().ToString();
    auto l = local_.Execute(stmt);
    ASSERT_TRUE(l.ok()) << stmt << ": " << l.status().ToString();
  }

  Table Query(const std::string& query) {
    auto d = dist_.Execute(query);
    EXPECT_TRUE(d.ok()) << query << ": " << d.status().ToString();
    auto l = local_.Execute(query);
    EXPECT_TRUE(l.ok()) << query << ": " << l.status().ToString();
    if (!d.ok() || !l.ok()) return Table{};
    ExpectSameRows(*d, *l, query);
    return std::move(*d);
  }

  /// pts(k, grp, val): k unique 0..rows-1 (the shard key), grp uniform in
  /// [0, groups), val = k * 3.
  void CreateAndLoadPts(int64_t rows, int64_t groups) {
    Exec("CREATE TABLE pts (k BIGINT, grp BIGINT, val BIGINT)");
    Rng rng(42);
    constexpr int64_t kBatch = 512;
    for (int64_t base = 0; base < rows; base += kBatch) {
      std::string stmt = "INSERT INTO pts VALUES ";
      for (int64_t k = base; k < std::min(rows, base + kBatch); ++k) {
        if (k != base) stmt += ",";
        stmt += "(" + std::to_string(k) + "," +
                std::to_string(rng.Uniform(0, groups - 1)) + "," +
                std::to_string(k * 3) + ")";
      }
      Exec(stmt);
    }
  }

  /// The realized access path of the last distributed SELECT, e.g.
  /// "index(k)" or "row".
  std::string LastPath() const {
    if (dist_.last().stats.per_dn.empty()) return "";
    return dist_.last().stats.per_dn[0].path;
  }

  DistributedSqlSession dist_;
  optimizer::SqlSession local_;
};

TEST_F(SecondaryIndexScanTest, PointLookupMatchesScanBitForBit) {
  CreateAndLoadPts(800, 10);
  Exec("CREATE INDEX pts_k ON pts (k)");
  Rng rng(7);
  for (int q = 0; q < 12; ++q) {
    // Present keys, plus a few misses past the domain.
    int64_t k = rng.Uniform(0, 899);
    std::string query = "SELECT * FROM pts WHERE k = " + std::to_string(k);
    Table via_index = Query(query);
    ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
    EXPECT_EQ(LastPath(), "index(k)") << query;
    // Shard-key equality probes route to exactly one DN.
    EXPECT_EQ(dist_.last().stats.num_serving, 1) << query;

    dist_.exec_options().use_index = false;
    Table via_scan = Query(query);
    EXPECT_NE(LastPath(), "index(k)") << query;
    dist_.exec_options().use_index = true;
    ExpectSameRows(via_index, via_scan, query + " [index vs scan]");
  }
}

TEST_F(SecondaryIndexScanTest, PointLookupAtLeastFiveTimesFaster) {
  // Seed scale: 4 DNs x ~4096 heap rows per shard. The full scan pays the
  // per-statement DN service plus one row-block charge per 256 rows on
  // every DN; the probe pays one single-DN index charge.
  CreateAndLoadPts(16384, 100);
  Exec("CREATE INDEX pts_k ON pts (k)");
  const std::string query = "SELECT * FROM pts WHERE k = 9001";

  // Measure on an idle cluster (pure service cost, not queueing behind the
  // bulk load) — the same convention LoadTpcc uses.
  dist_.cluster().ResetSimTime();
  Table via_index = Query(query);
  ASSERT_EQ(LastPath(), "index(k)");
  long long index_lat = dist_.last().stats.sim_latency_us;

  dist_.exec_options().use_index = false;
  dist_.cluster().ResetSimTime();
  Table via_scan = Query(query);
  long long scan_lat = dist_.last().stats.sim_latency_us;
  dist_.exec_options().use_index = true;

  ExpectSameRows(via_index, via_scan, query);
  EXPECT_GT(index_lat, 0);
  EXPECT_GE(scan_lat, 5 * index_lat)
      << "scan=" << scan_lat << "us index=" << index_lat << "us";
}

TEST_F(SecondaryIndexScanTest, OrderedIndexServesSelectiveRanges) {
  CreateAndLoadPts(2000, 500);
  Exec("CREATE INDEX pts_grp ON pts (grp) ORDERED");
  dist_.Analyze();
  local_.Analyze();

  // ~1% selective: stats say the probe wins.
  std::string narrow = "SELECT * FROM pts WHERE grp >= 100 AND grp <= 104";
  Query(narrow);
  ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
  EXPECT_EQ(LastPath(), "index(grp)") << narrow;
  EXPECT_EQ(dist_.last().stats.num_serving, 4);  // non-key column: every DN
  EXPECT_GT(dist_.last().stats.scan_stats.index_rows, 0u);

  // ~full table: the crossover heuristic must keep the scan.
  std::string wide = "SELECT * FROM pts WHERE grp >= 0";
  Query(wide);
  ASSERT_TRUE(dist_.last().distributed) << dist_.last().fallback_reason;
  EXPECT_NE(LastPath(), "index(grp)") << wide;

  // Equality on the non-key column probes the ordered index on all DNs.
  std::string eq = "SELECT val FROM pts WHERE grp = 250";
  Query(eq);
  EXPECT_EQ(LastPath(), "index(grp)") << eq;
}

TEST_F(SecondaryIndexScanTest, ExplainAndScanReportShowAccessPath) {
  CreateAndLoadPts(600, 10);
  Exec("CREATE INDEX pts_k ON pts (k)");
  const std::string query = "SELECT * FROM pts WHERE k = 123";

  auto plan = dist_.Explain(query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("INDEXSCAN"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("access=index(k)"), std::string::npos) << *plan;

  dist_.exec_options().use_index = false;
  auto scan_plan = dist_.Explain(query);
  ASSERT_TRUE(scan_plan.ok()) << scan_plan.status().ToString();
  EXPECT_EQ(scan_plan->find("access=index"), std::string::npos) << *scan_plan;
  EXPECT_NE(scan_plan->find("access=scan"), std::string::npos) << *scan_plan;
  dist_.exec_options().use_index = true;

  // Realized rows per DN pair with EXPLAIN's forecast.
  Query(query);
  std::string report = dist_.LastScanReport();
  EXPECT_NE(report.find("index(k)"), std::string::npos) << report;
  EXPECT_NE(report.find(" rows="), std::string::npos) << report;
}

TEST_F(SecondaryIndexScanTest, CreateDropIndexSqlRoundTrip) {
  CreateAndLoadPts(400, 10);
  auto missing = dist_.Execute("CREATE INDEX i ON nope (k)");
  EXPECT_FALSE(missing.ok());

  ASSERT_TRUE(dist_.Execute("CREATE INDEX pts_k ON pts (k)").ok());
  auto dup = dist_.Execute("CREATE INDEX pts_k2 ON pts (k)");
  EXPECT_FALSE(dup.ok()) << "duplicate index must be rejected";
  EXPECT_GE(dist_.cluster().metrics().Get("index.created"), 1);

  Query("SELECT * FROM pts WHERE k = 7");
  EXPECT_EQ(LastPath(), "index(k)");

  ASSERT_TRUE(dist_.Execute("DROP INDEX ON pts").ok());
  Query("SELECT * FROM pts WHERE k = 7");
  EXPECT_NE(LastPath(), "index(k)") << "dropped index must not be chosen";
}

TEST_F(SecondaryIndexScanTest, TxnReadFastPathProbesTheIndex) {
  CreateAndLoadPts(400, 10);
  Exec("CREATE INDEX pts_k ON pts (k)");
  // A write AFTER the build rides the listener (index.maintenance_ops).
  Exec("INSERT INTO pts VALUES (400, 0, 1200)");
  Cluster& cluster = dist_.cluster();
  int64_t lookups_before = cluster.metrics().Get("index.lookups");

  Txn t = cluster.Begin(TxnScope::kSingleShard);
  auto row = t.Read("pts", Value(int64_t{250}));
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_EQ(row->size(), 3u);
  EXPECT_EQ((*row)[2].AsInt(), 750);
  ASSERT_TRUE(t.Commit().ok());

  EXPECT_GT(cluster.metrics().Get("index.lookups"), lookups_before);
  EXPECT_GT(cluster.metrics().Get("index.rows_returned"), 0);
  EXPECT_GT(cluster.metrics().Get("index.maintenance_ops"), 0);
}

TEST_F(SecondaryIndexScanTest, TpccPointReadsFasterWithIndexes) {
  TpccConfig cfg;
  cfg.warehouses_per_dn = 2;
  cfg.clients_per_dn = 2;
  cfg.multi_shard_fraction = 0.1;
  cfg.duration_us = 200'000;
  cfg.customers_per_warehouse = 50;
  cfg.stock_per_warehouse = 40;

  Cluster indexed(2, Protocol::kGtmLite);
  ASSERT_TRUE(LoadTpcc(&indexed, cfg).ok());
  TpccResult with_index = RunTpcc(&indexed, cfg);

  Cluster baseline(2, Protocol::kGtmLite);
  ASSERT_TRUE(LoadTpcc(&baseline, cfg).ok());
  for (const char* t :
       {"warehouse", "district", "customer", "stock", "orders"}) {
    baseline.DropIndexes(t);
  }
  TpccResult without = RunTpcc(&baseline, cfg);

  ASSERT_GT(with_index.committed, 0u);
  ASSERT_GT(without.committed, 0u);
  // Point reads pay the covering-probe charge instead of a full DN
  // statement: strictly more committed work per simulated second, and the
  // tail must not regress.
  EXPECT_GT(with_index.throughput_tps, without.throughput_tps);
  EXPECT_LE(with_index.latency_p99_us, without.latency_p99_us);
  EXPECT_GT(indexed.metrics().Get("index.lookups"), 0);
}

TEST_F(SecondaryIndexScanTest, IndexBuildsDoNotDeadlockAgainstDeltaMerges) {
  // Regression: index builds are synchronous and take no pool task, so a
  // build running while the pool is saturated with delta merges (tiny
  // threshold below keeps them coming) must always complete.
  Exec("CREATE TABLE hot (k BIGINT, grp BIGINT, val BIGINT)");
  Cluster& cluster = dist_.cluster();
  cluster.set_delta_merge_threshold(8);
  ASSERT_TRUE(dist_.RegisterColumnar("hot").ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t k = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Txn t = cluster.Begin(TxnScope::kSingleShard);
      Value key(k);
      ASSERT_TRUE(t.Insert("hot", key, {key, Value(k % 5), Value(k)}).ok());
      ASSERT_TRUE(t.Commit().ok());
      ++k;
    }
  });

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.CreateIndex("hot", "k").ok()) << "iteration " << i;
    cluster.DropIndexes("hot");
  }
  ASSERT_TRUE(cluster.CreateIndex("hot", "grp", /*ordered=*/true).ok());
  stop.store(true, std::memory_order_release);
  writer.join();
  cluster.WaitForMerges();

  // The surviving index answers exactly like the heap.
  Txn t = cluster.Begin(TxnScope::kMultiShard);
  size_t heap_grp0 = 0;
  for (int dn = 0; dn < cluster.num_dns(); ++dn) {
    auto rows = t.ScanShard("hot", dn);
    ASSERT_TRUE(rows.ok());
    for (const Row& row : *rows) {
      if (row[1].AsInt() == 0) ++heap_grp0;
    }
  }
  ASSERT_TRUE(t.Commit().ok());
  size_t index_grp0 = 0;
  for (int dn = 0; dn < cluster.num_dns(); ++dn) {
    auto index = cluster.IndexOn(dn, "hot", 1);
    ASSERT_NE(index, nullptr);
    auto heap = cluster.dn(dn)->GetTable("hot");
    ASSERT_TRUE(heap.ok());
    txn::Snapshot snap = cluster.dn(dn)->txn_mgr().TakeSnapshot();
    txn::VisibilityChecker vis(&snap, &cluster.dn(dn)->txn_mgr().clog(),
                               cluster.dn(dn)->txn_mgr().next_xid());
    index_grp0 += index->Probe(Value(int64_t{0}), vis).size();
  }
  EXPECT_EQ(index_grp0, heap_grp0);
}

}  // namespace
}  // namespace ofi::cluster
