/// Spill-to-disk backpressure on the exchange: over-cap sends stream
/// through per-channel temp files without changing results, receive order,
/// or (lifetime) byte accounting; spill files live exactly as long as their
/// undelivered segments; a failed query leaks neither files nor accounting;
/// and a truncated or corrupt segment surfaces as an error, never as wrong
/// rows. The failing-query leak test runs under asan in CI (scripts/check.sh
/// focus list), which also catches leaked FILE* streams.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace ofi::cluster {
namespace {

namespace fs = std::filesystem;

using sql::Column;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Row MakeRow(int64_t k, const std::string& pad) {
  return Row{Value(k), Value(pad)};
}

/// A fresh per-test spill directory, removed (with contents check hooks)
/// on teardown.
class ExchangeSpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ofi-spill-test-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  size_t FilesInDir() const {
    size_t n = 0;
    for (auto it = fs::directory_iterator(dir_); it != fs::directory_iterator();
         ++it) {
      ++n;
    }
    return n;
  }

  fs::path dir_;
};

TEST_F(ExchangeSpillTest, ChannelSpillPreservesSendOrder) {
  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir_.string(), /*strict=*/false, &budget};
  exchange::ExchangeChannel::SendLimits limits{32, &cfg};
  exchange::ExchangeChannel ch;

  // 20-byte batches against a 32-byte window: the first fits in memory,
  // everything after spills (and keeps spilling — disk must never reorder
  // ahead of memory).
  std::vector<std::string> sent;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(std::string(20, static_cast<char>('a' + i)));
    ASSERT_TRUE(ch.Send(sent.back(), limits).ok()) << i;
  }
  EXPECT_EQ(ch.bytes(), 160u);
  EXPECT_EQ(ch.batches(), 8u);
  EXPECT_EQ(ch.queued_bytes(), 20u);       // only the first batch is resident
  EXPECT_EQ(ch.spilled_bytes(), 140u);     // the other seven hit disk
  EXPECT_EQ(ch.spill_segments(), 7u);
  EXPECT_EQ(budget.used.load(), 140u);
  EXPECT_FALSE(ch.spill_path().empty());
  EXPECT_TRUE(fs::exists(ch.spill_path()));
  EXPECT_EQ(FilesInDir(), 1u);

  // Receive order is exactly send order, memory window first.
  for (int i = 0; i < 8; ++i) {
    auto batch = ch.PopBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_TRUE(batch->has_value());
    EXPECT_EQ(**batch, sent[static_cast<size_t>(i)]) << i;
  }
  auto end = ch.PopBatch();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());

  // Consuming the last segment freed the budget and deleted the file.
  EXPECT_EQ(budget.used.load(), 0u);
  EXPECT_EQ(FilesInDir(), 0u);
  EXPECT_TRUE(ch.spill_path().empty());

  // The channel is reusable after a full drain: memory path again.
  ASSERT_TRUE(ch.Send(std::string(10, 'z'), limits).ok());
  EXPECT_EQ(ch.queued_bytes(), 10u);
}

TEST_F(ExchangeSpillTest, DiscardDeletesSpillAndRollsBackAccounting) {
  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir_.string(), false, &budget};
  exchange::ExchangeChannel::SendLimits limits{16, &cfg};
  {
    exchange::ExchangeChannel ch;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ch.Send(std::string(10, 'q'), limits).ok());
    }
    EXPECT_EQ(ch.spilled_bytes(), 30u);
    EXPECT_EQ(FilesInDir(), 1u);

    ch.Discard();
    // Undelivered payload moved wholesale to aborted accounting.
    EXPECT_EQ(ch.bytes(), 0u);
    EXPECT_EQ(ch.batches(), 0u);
    EXPECT_EQ(ch.spilled_bytes(), 0u);
    EXPECT_EQ(ch.aborted_bytes(), 40u);
    EXPECT_EQ(budget.used.load(), 0u);
    EXPECT_EQ(FilesInDir(), 0u);

    // Destructor path: leave a spilled batch behind on scope exit.
    ASSERT_TRUE(ch.Send(std::string(20, 'r'), limits).ok());
    ASSERT_TRUE(ch.Send(std::string(20, 's'), limits).ok());
    EXPECT_EQ(FilesInDir(), 1u);
  }
  EXPECT_EQ(budget.used.load(), 0u);
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(ExchangeSpillTest, SpillBudgetExhaustionDenies) {
  exchange::SpillBudget budget(/*max=*/50);
  exchange::ExchangeSpillConfig cfg{dir_.string(), false, &budget};
  exchange::ExchangeChannel::SendLimits limits{16, &cfg};
  exchange::ExchangeChannel ch;

  ASSERT_TRUE(ch.Send(std::string(10, 'a'), limits).ok());  // memory
  ASSERT_TRUE(ch.Send(std::string(30, 'b'), limits).ok());  // spill, 30/50
  Status st = ch.Send(std::string(30, 'c'), limits);        // would be 60/50
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ch.denied_bytes(), 30u);
  EXPECT_EQ(ch.spilled_bytes(), 30u);
  ASSERT_TRUE(ch.Send(std::string(20, 'd'), limits).ok());  // fits, 50/50

  // Draining releases the budget as segments are consumed.
  auto drained = ch.Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 3u);
  EXPECT_EQ(budget.used.load(), 0u);
  ASSERT_TRUE(ch.Send(std::string(30, 'e'), limits).ok());
}

TEST_F(ExchangeSpillTest, NetworkSpillDeliversBitIdenticalRowsInOrder) {
  ofi::Rng rng(77);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 300; ++i) {
    rows.push_back(MakeRow(static_cast<int64_t>(rng.Next() % 1000),
                           std::string(1 + i % 40, 'x')));
  }

  exchange::ExchangeNetwork uncapped(3, /*batch_rows=*/16);
  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir_.string(), false, &budget};
  exchange::ExchangeNetwork capped(3, /*batch_rows=*/16,
                                   /*max_channel_bytes=*/64, cfg);

  for (int src = 0; src < 3; ++src) {
    ASSERT_TRUE(exchange::ShufflePartition(&uncapped, src, rows, 0).ok());
    ASSERT_TRUE(exchange::ShufflePartition(&capped, src, rows, 0).ok());
  }
  EXPECT_GT(capped.SpilledBytes(), 0u);
  EXPECT_EQ(capped.DeniedBytes(), 0u);
  // Identical lifetime traffic accounting, spilled or not.
  EXPECT_EQ(capped.CrossNodeBytes(), uncapped.CrossNodeBytes());
  EXPECT_EQ(capped.CrossNodeBatches(), uncapped.CrossNodeBatches());

  size_t total = 0;
  for (int dst = 0; dst < 3; ++dst) {
    auto want = uncapped.ReceiveRows(dst);
    auto got = capped.ReceiveRows(dst);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Bit-identical rows in the identical (deterministic) order.
    ASSERT_EQ(got->size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      ASSERT_EQ((*got)[i].size(), (*want)[i].size());
      for (size_t c = 0; c < (*want)[i].size(); ++c) {
        EXPECT_TRUE((*got)[i][c].Equals((*want)[i][c]));
      }
    }
    total += got->size();
  }
  EXPECT_EQ(total, 3 * rows.size());
  // Every consumed segment freed its budget and deleted its file.
  EXPECT_EQ(budget.used.load(), 0u);
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(ExchangeSpillTest, FailedShuffleRollsBackPartialSends) {
  // Strict mode with a cap that admits some batches and then denies: the
  // failed operator must leave zero queued payload, zero cross-node
  // accounting, and no spill files — the old partial-send bug.
  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir_.string(), /*strict=*/true, &budget};
  exchange::ExchangeNetwork net(2, /*batch_rows=*/4,
                                /*max_channel_bytes=*/200, cfg);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 64; ++i) rows.push_back(MakeRow(i, "padpadpad"));

  Status st = exchange::ShufflePartition(&net, 0, rows, 0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(net.DeniedBytes(), 0u);
  // Rollback: nothing stays queued or counted, the payload is quarantined
  // in the aborted counter instead of inflating traffic stats.
  EXPECT_EQ(net.CrossNodeBytes(), 0u);
  EXPECT_EQ(net.CrossNodeBatches(), 0u);
  EXPECT_GT(net.AbortedBytes(), 0u);
  for (int dst = 0; dst < 2; ++dst) {
    EXPECT_EQ(net.channel(0, dst).queued_bytes(), 0u);
  }
  auto empty = net.ReceiveRows(1);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(ExchangeSpillTest, TruncatedSpillSegmentIsCorruption) {
  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir_.string(), false, &budget};
  exchange::ExchangeChannel::SendLimits limits{8, &cfg};
  exchange::ExchangeChannel ch;
  ASSERT_TRUE(ch.Send(std::string(8, 'm'), limits).ok());   // memory
  ASSERT_TRUE(ch.Send(std::string(64, 's'), limits).ok());  // spill
  ASSERT_FALSE(ch.spill_path().empty());

  // Truncate the segment behind the channel's back (torn write / bad disk).
  fs::resize_file(ch.spill_path(), 10);

  auto mem = ch.PopBatch();
  ASSERT_TRUE(mem.ok());  // the resident batch is unaffected
  auto spilled = ch.PopBatch();
  ASSERT_FALSE(spilled.ok());
  EXPECT_EQ(spilled.status().code(), StatusCode::kCorruption);
}

TEST_F(ExchangeSpillTest, CorruptSpilledBatchFailsDecodeNotSilently) {
  // Same-size garbage passes the segment read but must then fail
  // DecodeBatch with InvalidArgument on the receive path — corrupt spill
  // can never turn into wrong rows.
  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir_.string(), false, &budget};
  exchange::ExchangeNetwork net(2, /*batch_rows=*/4, /*max_channel_bytes=*/8,
                                cfg);
  std::vector<Row> rows;
  for (int64_t i = 0; i < 16; ++i) rows.push_back(MakeRow(i, "padpad"));
  ASSERT_TRUE(net.SendRows(0, 1, rows).ok());
  std::string path = net.channel(0, 1).spill_path();
  ASSERT_FALSE(path.empty());
  {
    std::ofstream f(path, std::ios::binary | std::ios::in);
    f.seekp(0);
    f.write("\xff\xff\xff\xff\xff\xff\xff\xff", 8);
  }
  auto got = net.ReceiveRows(1);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ExchangeSpillTest, FailingQueryLeaksNoSpillFiles) {
  // End-to-end lifecycle check (asan also verifies no FILE* leaks): a
  // distributed join that spills and then fails on an exhausted spill
  // budget must leave the spill directory empty.
  Cluster cluster(4, Protocol::kGtmLite);
  Schema orders({Column{"o_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  Schema lookup({Column{"l_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  ASSERT_TRUE(cluster.CreateTable("orders", orders).ok());
  ASSERT_TRUE(cluster.CreateTable("lookup", lookup).ok());
  std::string pad(128, 'p');
  for (int64_t i = 0; i < 96; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("orders", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  for (int64_t i = 0; i < 16; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("lookup", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "lookup";
  spec.left_key = "o_id";
  spec.right_key = "l_id";

  DistributedJoinOptions opts;
  opts.strategy = JoinStrategy::kRepartition;
  opts.parallel = false;  // deterministic send order across DNs
  opts.max_channel_bytes = 64;
  opts.spill_dir = dir_.string();
  // A budget bigger than any one batch (~1.2KB at 8 rows/batch) but
  // smaller than the first DN's orders partition (~3.5KB): the first
  // shuffle is guaranteed to spill at least one batch and then run out
  // mid-operator — exercising rollback (aborted accounting) as well as
  // denial, with live spill files for the failure path to clean up.
  opts.batch_rows = 8;
  opts.max_spill_bytes = 2048;
  auto fail = DistributedJoin(&cluster, spec, opts);
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(cluster.metrics().Get("exchange.bytes_denied"), 0);
  EXPECT_GT(cluster.metrics().Get("exchange.bytes_aborted"), 0);
  EXPECT_EQ(FilesInDir(), 0u);  // every spill segment was cleaned up

  // Same query with a sufficient budget completes — and still cleans up.
  opts.max_spill_bytes = 0;
  auto ok = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->table.num_rows(), 16u);
  EXPECT_GT(ok->spill_bytes, 0u);
  EXPECT_EQ(FilesInDir(), 0u);
}

TEST_F(ExchangeSpillTest, BuildSideSpillKeepsJoinBitIdentical) {
  Cluster cluster(4, Protocol::kGtmLite);
  Schema orders({Column{"o_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  Schema lookup({Column{"l_id", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kString, ""}});
  ASSERT_TRUE(cluster.CreateTable("orders", orders).ok());
  ASSERT_TRUE(cluster.CreateTable("lookup", lookup).ok());
  std::string pad(64, 'p');
  for (int64_t i = 0; i < 64; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("orders", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  for (int64_t i = 0; i < 32; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("lookup", Value(i), MakeRow(i, pad)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }

  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "lookup";
  spec.left_key = "o_id";
  spec.right_key = "l_id";

  DistributedJoinOptions opts;
  opts.strategy = JoinStrategy::kBroadcast;
  auto plain = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(plain.ok());

  opts.max_build_bytes = 256;  // well under the broadcast side's size
  opts.spill_dir = dir_.string();
  auto spooled = DistributedJoin(&cluster, spec, opts);
  ASSERT_TRUE(spooled.ok()) << spooled.status().ToString();
  EXPECT_GT(spooled->build_spill_bytes, 0u);
  EXPECT_GT(spooled->sim_latency_us, plain->sim_latency_us);
  EXPECT_GT(cluster.metrics().Get("exchange.bytes_spilled"), 0);
  EXPECT_EQ(FilesInDir(), 0u);

  // Bit-identical result rows (both gathers are deterministic DN-order).
  ASSERT_EQ(spooled->table.num_rows(), plain->table.num_rows());
  for (size_t i = 0; i < plain->table.num_rows(); ++i) {
    const Row& a = plain->table.rows()[i];
    const Row& b = spooled->table.rows()[i];
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_TRUE(a[c].Equals(b[c]));
    }
  }
}

TEST_F(ExchangeSpillTest, PipelinedCappedExchangeLeaksNoFilesOrBudget) {
  // The pipelined path: producers stream batches through StreamingScatter
  // while consumers concurrently drain with the blocking receive. Whatever
  // the thread interleaving does to the *amount* spilled (a consumer that
  // keeps up prevents spill entirely), the invariants hold: bit-identical
  // rows in deterministic order, every spill byte returned to the budget,
  // and no temp file outliving the exchange.
  std::vector<Row> rows;
  Rng rng(42);
  for (int i = 0; i < 120; ++i) {
    rows.push_back(MakeRow(rng.Uniform(0, 1000), std::string(30, 'p')));
  }

  // Reference: uncapped barrier scatter for the expected receive order.
  exchange::ExchangeNetwork plain(3, /*batch_rows=*/8);
  for (int src = 0; src < 3; ++src) {
    ASSERT_TRUE(exchange::ShufflePartition(&plain, src, rows, 0).ok());
  }
  std::vector<std::vector<Row>> want(3);
  for (int dst = 0; dst < 3; ++dst) {
    auto r = plain.ReceiveRows(dst);
    ASSERT_TRUE(r.ok());
    want[static_cast<size_t>(dst)] = std::move(*r);
  }

  exchange::SpillBudget budget;
  exchange::ExchangeSpillConfig cfg{dir_.string(), /*strict=*/false, &budget};
  {
    exchange::ExchangeNetwork net(3, /*batch_rows=*/8,
                                  /*max_channel_bytes=*/64, cfg);
    std::vector<std::vector<Row>> got(3);
    std::vector<std::thread> threads;
    for (int src = 0; src < 3; ++src) {
      threads.emplace_back([&, src] {
        exchange::StreamingScatter scatter(&net, src, /*key_idx=*/0);
        for (const Row& row : rows) ASSERT_TRUE(scatter.Push(row).ok());
        ASSERT_TRUE(scatter.Finish().ok());
        net.CloseAllFrom(src);
      });
    }
    for (int dst = 0; dst < 3; ++dst) {
      threads.emplace_back([&, dst] {
        auto r = net.ReceiveRowsWait(dst, /*timeout_ms=*/30'000);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        got[static_cast<size_t>(dst)] = std::move(*r);
      });
    }
    for (auto& t : threads) t.join();

    for (int dst = 0; dst < 3; ++dst) {
      const auto& w = want[static_cast<size_t>(dst)];
      const auto& g = got[static_cast<size_t>(dst)];
      ASSERT_EQ(g.size(), w.size()) << "dst " << dst;
      for (size_t i = 0; i < w.size(); ++i) {
        ASSERT_EQ(g[i].size(), w[i].size());
        for (size_t c = 0; c < w[i].size(); ++c) {
          EXPECT_TRUE(g[i][c].Equals(w[i][c])) << "dst " << dst << " row " << i;
        }
      }
    }
    // Fully drained: the per-channel delete-on-last-consume already removed
    // every spill file, whether or not this run spilled at all.
    EXPECT_EQ(budget.used.load(), 0u);
    EXPECT_EQ(FilesInDir(), 0u);
  }
  EXPECT_EQ(FilesInDir(), 0u);
}

}  // namespace
}  // namespace ofi::cluster
