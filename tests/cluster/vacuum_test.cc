/// Cluster-wide garbage collection: vacuum removes dead versions below the
/// local visibility horizon and never removes anything a snapshot can see.
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace ofi::cluster {
namespace {

using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

Schema KvSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""}, Column{"v", TypeId::kInt64, ""}});
}

TEST(ClusterVacuumTest, RemovesDeadVersionsAfterUpdates) {
  Cluster cluster(2, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.CreateTable("t", KvSchema()).ok());
  Value key(1);
  {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("t", key, {key, Value(0)}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  for (int i = 1; i <= 10; ++i) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Update("t", key, {key, Value(i)}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  int dn = cluster.EffectiveDn(cluster.ShardFor(key));
  EXPECT_EQ((*cluster.dn(dn)->GetTable("t"))->num_versions(), 11u);

  size_t removed = cluster.Vacuum();
  EXPECT_EQ(removed, 10u);
  EXPECT_EQ((*cluster.dn(dn)->GetTable("t"))->num_versions(), 1u);

  // The survivor is the latest committed version.
  Txn r = cluster.Begin(TxnScope::kSingleShard);
  EXPECT_EQ(r.Read("t", key).ValueOrDie()[1].AsInt(), 10);
  ASSERT_TRUE(r.Commit().ok());
}

TEST(ClusterVacuumTest, OpenSnapshotBlocksReclaim) {
  Cluster cluster(1, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.CreateTable("t", KvSchema()).ok());
  Value key(1);
  {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    ASSERT_TRUE(t.Insert("t", key, {key, Value(0)}).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  // An old reader holds a snapshot (its local xid pins the horizon).
  Txn old_reader = cluster.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(old_reader.Read("t", key).ok());

  Txn w = cluster.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(w.Update("t", key, {key, Value(1)}).ok());
  ASSERT_TRUE(w.Commit().ok());

  // The old version is still visible to old_reader; vacuum (horizon = the
  // reader's xid) must not remove it.
  size_t removed = cluster.Vacuum();
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(old_reader.Read("t", key).ValueOrDie()[1].AsInt(), 0);
  ASSERT_TRUE(old_reader.Commit().ok());

  // Reader gone: the dead version is now reclaimable.
  EXPECT_EQ(cluster.Vacuum(), 1u);
}

TEST(ClusterVacuumTest, AbortedInsertionsReclaimed) {
  Cluster cluster(1, Protocol::kGtmLite);
  ASSERT_TRUE(cluster.CreateTable("t", KvSchema()).ok());
  Txn t = cluster.Begin(TxnScope::kSingleShard);
  ASSERT_TRUE(t.Insert("t", Value(5), {Value(5), Value(1)}).ok());
  ASSERT_TRUE(t.Abort().ok());
  EXPECT_EQ((*cluster.dn(0)->GetTable("t"))->num_versions(), 1u);
  EXPECT_EQ(cluster.Vacuum(), 1u);
  EXPECT_EQ((*cluster.dn(0)->GetTable("t"))->num_keys(), 0u);
}

}  // namespace
}  // namespace ofi::cluster
