/// The modified-TPC-C workload harness (experiment E1's engine): loading,
/// conservation invariants across protocols, simulated-time behaviour.
#include "cluster/tpcc_workload.h"

#include <gtest/gtest.h>

namespace ofi::cluster {
namespace {

using sql::Row;
using sql::Value;

TpccConfig SmallConfig(double ms_fraction) {
  TpccConfig cfg;
  cfg.warehouses_per_dn = 2;
  cfg.clients_per_dn = 2;
  cfg.multi_shard_fraction = ms_fraction;
  cfg.duration_us = 200'000;
  cfg.customers_per_warehouse = 50;
  cfg.stock_per_warehouse = 40;
  return cfg;
}

class TpccTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(TpccTest, LoadPopulatesAllShards) {
  Cluster cluster(2, GetParam());
  TpccConfig cfg = SmallConfig(0.0);
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());
  for (int dn = 0; dn < 2; ++dn) {
    auto t = cluster.dn(dn)->GetTable("warehouse");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->num_keys(), 2u);  // 2 warehouses per DN
  }
}

TEST_P(TpccTest, RunCommitsTransactions) {
  Cluster cluster(2, GetParam());
  TpccConfig cfg = SmallConfig(0.1);
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());
  TpccResult r = RunTpcc(&cluster, cfg);
  EXPECT_GT(r.committed, 100u);
  EXPECT_GT(r.throughput_tps, 0);
}

// Money conservation: every committed Payment moves exactly 10 from a
// customer balance into warehouse+district ytd. Whatever the interleaving
// and protocol, sum(balance) + sum(w.ytd) must equal the initial total.
TEST_P(TpccTest, PaymentMoneyConservation) {
  Cluster cluster(2, GetParam());
  TpccConfig cfg = SmallConfig(0.1);
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());
  int64_t total_customers = 4 * cfg.customers_per_warehouse;
  int64_t initial = total_customers * 1000;

  TpccResult run = RunTpcc(&cluster, cfg);

  int64_t balances = 0, wh_ytd = 0, di_ytd = 0;
  for (int dn = 0; dn < cluster.num_dns(); ++dn) {
    Txn t = cluster.Begin(TxnScope::kMultiShard);
    auto customers = t.ScanShard("customer", dn);
    ASSERT_TRUE(customers.ok());
    for (const Row& row : *customers) balances += row[1].AsInt();
    auto warehouses = t.ScanShard("warehouse", dn);
    ASSERT_TRUE(warehouses.ok());
    for (const Row& row : *warehouses) wh_ytd += row[1].AsInt();
    auto districts = t.ScanShard("district", dn);
    ASSERT_TRUE(districts.ok());
    for (const Row& row : *districts) di_ytd += row[1].AsInt();
    ASSERT_TRUE(t.Commit().ok());
  }
  EXPECT_EQ(balances + wh_ytd, initial);
  // District ytd = payment amounts + one unit per committed NewOrder (it
  // doubles as the next_o_id counter); warehouse ytd additionally pays out
  // delivery credits. So di - wh = new_orders + delivered_orders, bounded
  // by two orders' worth of work per committed transaction.
  int64_t di_minus_wh = di_ytd - wh_ytd;
  EXPECT_GE(di_minus_wh, 0);
  EXPECT_LE(di_minus_wh, 2 * static_cast<int64_t>(run.committed));
}

INSTANTIATE_TEST_SUITE_P(Protocols, TpccTest,
                         ::testing::Values(Protocol::kBaselineGtm,
                                           Protocol::kGtmLite),
                         [](const auto& info) {
                           return info.param == Protocol::kBaselineGtm
                                      ? "Baseline"
                                      : "GtmLite";
                         });

TEST(TpccProtocolContrastTest, GtmLiteSsNeverTouchesGtm) {
  Cluster cluster(2, Protocol::kGtmLite);
  TpccConfig cfg = SmallConfig(0.0);
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());
  TpccResult r = RunTpcc(&cluster, cfg);
  EXPECT_EQ(r.gtm_requests, 0u);
  EXPECT_GT(r.committed, 0u);
}

TEST(TpccProtocolContrastTest, BaselineAlwaysTouchesGtm) {
  Cluster cluster(2, Protocol::kBaselineGtm);
  TpccConfig cfg = SmallConfig(0.0);
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());
  TpccResult r = RunTpcc(&cluster, cfg);
  EXPECT_GE(r.gtm_requests, (r.committed + r.aborted) * 2);
}

TEST(TpccProtocolContrastTest, MsWorkloadUsesGtmProportionally) {
  Cluster cluster(2, Protocol::kGtmLite);
  TpccConfig cfg = SmallConfig(0.1);
  ASSERT_TRUE(LoadTpcc(&cluster, cfg).ok());
  TpccResult r = RunTpcc(&cluster, cfg);
  uint64_t total = r.committed + r.aborted;
  EXPECT_GT(r.gtm_requests, 0u);
  // Roughly 10% of transactions took ~3 GTM requests each.
  EXPECT_LT(r.gtm_requests, total);
}

TEST(TpccProtocolContrastTest, ThroughputScalesWithDns) {
  TpccConfig cfg = SmallConfig(0.0);
  Cluster one(1, Protocol::kGtmLite);
  ASSERT_TRUE(LoadTpcc(&one, cfg).ok());
  double tps1 = RunTpcc(&one, cfg).throughput_tps;
  Cluster four(4, Protocol::kGtmLite);
  ASSERT_TRUE(LoadTpcc(&four, cfg).ok());
  double tps4 = RunTpcc(&four, cfg).throughput_tps;
  EXPECT_GT(tps4, tps1 * 2.5);
}

TEST(TpccKeyLayoutTest, WarehouseColocation) {
  using namespace tpcc;
  EXPECT_EQ(WarehouseOf(WarehouseKey(3)), 3);
  EXPECT_EQ(WarehouseOf(DistrictKey(3, 9)), 3);
  EXPECT_EQ(WarehouseOf(CustomerKey(3, 299)), 3);
  EXPECT_EQ(WarehouseOf(StockKey(3, 199)), 3);
  EXPECT_EQ(WarehouseOf(OrderKey(3, 400'000)), 3);
}

}  // namespace
}  // namespace ofi::cluster
