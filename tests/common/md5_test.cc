#include "common/md5.h"

#include <gtest/gtest.h>

namespace ofi {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::HexDigest(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::HexDigest("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::HexDigest("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::HexDigest("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::HexDigest("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(Md5::HexDigest(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::HexDigest("1234567890123456789012345678901234567890123456789"
                           "0123456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  std::string data(1000, 'x');
  Md5 h;
  for (size_t i = 0; i < data.size(); i += 37) {
    h.Update(std::string_view(data).substr(i, 37));
  }
  auto digest = h.Digest();
  std::string hex;
  static const char kHex[] = "0123456789abcdef";
  for (uint8_t b : digest) {
    hex += kHex[b >> 4];
    hex += kHex[b & 0xF];
  }
  EXPECT_EQ(hex, Md5::HexDigest(data));
}

TEST(Md5Test, BoundarySizesAroundBlock) {
  // Lengths straddling the 64-byte block and 56-byte padding boundary.
  for (size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string a(n, 'q');
    EXPECT_EQ(Md5::HexDigest(a).size(), 32u) << n;
    // Deterministic: same input, same digest.
    EXPECT_EQ(Md5::HexDigest(a), Md5::HexDigest(std::string(n, 'q'))) << n;
  }
}

TEST(Md5Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::HexDigest("SCAN(T1,PREDICATE(B1>10))"),
            Md5::HexDigest("SCAN(T1,PREDICATE(B1>11))"));
}

}  // namespace
}  // namespace ofi
