#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace ofi {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing row");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing row");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::IncompatibleSchema("x").IsIncompatibleSchema());
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::PermissionDenied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, CopyShares) {
  Status a = Status::Aborted("conflict");
  Status b = a;
  EXPECT_TRUE(b.IsAborted());
  EXPECT_EQ(a, b);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  OFI_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  OFI_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  Result<int> err = ParsePositive(0);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(5).ValueOrDie(), 10);
  EXPECT_FALSE(Doubled(-5).ok());
}

TEST(ResultTest, ValueOrFallback) {
  EXPECT_EQ(ParsePositive(7).ValueOr(-1), 7);
  EXPECT_EQ(ParsePositive(-7).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 9);
}

}  // namespace
}  // namespace ofi
