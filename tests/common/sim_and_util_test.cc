#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace ofi {
namespace {

TEST(SimSchedulerTest, SerializedResourceQueues) {
  SimScheduler sched;
  int r = sched.AddResource();
  EXPECT_EQ(sched.Charge(r, 0, 100), 100);
  EXPECT_EQ(sched.Charge(r, 0, 100), 200);   // queues behind the first
  EXPECT_EQ(sched.Charge(r, 500, 100), 600); // idle gap, starts at arrival
}

TEST(SimSchedulerTest, GapFittingBackfillsIdleTime) {
  SimScheduler sched;
  int r = sched.AddResource();
  // A future charge first (out-of-order issue)...
  EXPECT_EQ(sched.Charge(r, 10'000, 100), 10'100);
  // ...must not starve an earlier arrival: it backfills the idle prefix.
  EXPECT_EQ(sched.Charge(r, 0, 100), 100);
  // A long job that doesn't fit before the reserved interval slides past it.
  EXPECT_EQ(sched.Charge(r, 200, 9'900), 20'000);
}

TEST(SimSchedulerTest, ExactGapFits) {
  SimScheduler sched;
  int r = sched.AddResource();
  sched.Charge(r, 0, 100);     // [0,100)
  sched.Charge(r, 300, 100);   // [300,400)
  EXPECT_EQ(sched.Charge(r, 100, 200), 300);  // exactly fills [100,300)
}

TEST(SimSchedulerTest, BusyTimeAndTrim) {
  SimScheduler sched;
  int r = sched.AddResource();
  sched.Charge(r, 0, 50);
  sched.Charge(r, 100, 50);
  EXPECT_EQ(sched.BusyTime(r), 100);
  sched.Trim(75);
  EXPECT_EQ(sched.BusyTime(r), 100);  // trimmed work still counted
  sched.Reset();
  EXPECT_EQ(sched.BusyTime(r), 0);
}

TEST(SimSchedulerTest, IndependentResources) {
  SimScheduler sched;
  int a = sched.AddResource();
  int b = sched.AddResource();
  EXPECT_EQ(sched.Charge(a, 0, 100), 100);
  EXPECT_EQ(sched.Charge(b, 0, 100), 100);  // no cross-resource queueing
}

TEST(RngTest, DeterministicAndUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng r(7);
  int64_t lo = 100, hi = 0;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = r.Uniform(0, 99);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 99);
}

TEST(RngTest, NURandStaysInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NURand(1023, 0, 2999);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 2999);
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.Chance(0.1);
  EXPECT_NEAR(hits / 100'000.0, 0.1, 0.01);
}

TEST(ZipfianTest, SkewsTowardLowRanks) {
  Zipfian z(1000, 0.99, 3);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100'000; ++i) {
    uint64_t v = z.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 must dominate the tail decisively.
  EXPECT_GT(counts[0], counts[500] * 10);
  EXPECT_GT(counts[0] + counts[1] + counts[2], 100'000 / 10);
}

TEST(LatencyHistogramTest, PercentilesAndMerge) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_NEAR(h.Mean(), 500.5, 0.1);
  // Bucketed percentiles are approximate: within a bucket width.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 150);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990, 300);

  LatencyHistogram other;
  other.Record(5000);
  h.Merge(other);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_EQ(h.max(), 5000);
}

TEST(LatencyHistogramTest, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(99), 0);
  h.Record(10);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistryTest, CountersAndHistograms) {
  MetricsRegistry m;
  m.Add("txn.commit");
  m.Add("txn.commit", 4);
  EXPECT_EQ(m.Get("txn.commit"), 5);
  EXPECT_EQ(m.Get("unknown"), 0);
  m.Histogram("lat").Record(100);
  EXPECT_EQ(m.Histogram("lat").count(), 1u);
  m.Reset();
  EXPECT_EQ(m.Get("txn.commit"), 0);
}

}  // namespace
}  // namespace ofi
