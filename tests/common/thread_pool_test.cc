/// The shared thread pool behind the parallel MPP scatter: every submitted
/// task runs exactly once, ParallelFor covers every index and blocks until
/// done, and the destructor drains the queue before joining.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace ofi::common {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains the queue and joins.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](int i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForBlocksUntilAllDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.ParallelFor(50, [&done](int) { done.fetch_add(1); });
  // If ParallelFor returned early this would race; with the barrier it is
  // always exactly 50 here.
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ParallelForSmallCountsRunInline) {
  ThreadPool pool(4);
  int plain = 0;  // no atomic needed: n <= 1 runs on the caller thread
  pool.ParallelFor(0, [&plain](int) { ++plain; });
  EXPECT_EQ(plain, 0);
  pool.ParallelFor(1, [&plain](int i) {
    EXPECT_EQ(i, 0);
    ++plain;
  });
  EXPECT_EQ(plain, 1);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.ParallelFor(4, [&ran](int) { ran = true; });
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, SharedPoolHasAtLeastTwoThreads) {
  // Sized for parallelism even on single-core CI hosts.
  EXPECT_GE(ThreadPool::Shared().num_threads(), 2);
}

TEST(ThreadPoolTest, TasksSeeWritesFromSubmitter) {
  ThreadPool pool(3);
  std::vector<int> results(64, 0);
  pool.ParallelFor(64, [&results](int i) { results[static_cast<size_t>(i)] = i * i; });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

}  // namespace
}  // namespace ofi::common
