#include "timeseries/timeseries.h"

#include <gtest/gtest.h>

namespace ofi::timeseries {
namespace {

using sql::Column;
using sql::TypeId;
using sql::Value;

TEST(SeriesTest, RangeQuery) {
  Series s;
  for (int i = 0; i < 100; ++i) s.Append(i * 10, i);
  auto range = s.Range(100, 200);
  ASSERT_EQ(range.size(), 10u);
  EXPECT_EQ(range.front().ts, 100);
  EXPECT_EQ(range.back().ts, 190);
}

TEST(SeriesTest, OutOfOrderAppendsSortLazily) {
  Series s;
  s.Append(30, 3);
  s.Append(10, 1);
  s.Append(20, 2);
  auto range = s.Range(0, 100);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].ts, 10);
  EXPECT_EQ(range[2].ts, 30);
  EXPECT_EQ(s.max_ts(), 30);
}

TEST(SeriesTest, DownsampleAggregations) {
  Series s;
  // Two windows of 5 samples each: values 0..4 then 10..14.
  for (int i = 0; i < 5; ++i) s.Append(i, i);
  for (int i = 0; i < 5; ++i) s.Append(100 + i, 10 + i);
  auto avg = s.Downsample(0, 200, 100, AggKind::kAvg);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_DOUBLE_EQ(avg[0].value, 2.0);
  EXPECT_DOUBLE_EQ(avg[1].value, 12.0);
  auto mx = s.Downsample(0, 200, 100, AggKind::kMax);
  EXPECT_DOUBLE_EQ(mx[0].value, 4.0);
  auto cnt = s.Downsample(0, 200, 100, AggKind::kCount);
  EXPECT_DOUBLE_EQ(cnt[1].value, 5.0);
}

TEST(SeriesTest, DownsampleOmitsEmptyWindows) {
  Series s;
  s.Append(10, 1);
  s.Append(510, 2);
  auto out = s.Downsample(0, 600, 100, AggKind::kSum);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].window_start, 0);
  EXPECT_EQ(out[1].window_start, 500);
}

TEST(SeriesTest, Retention) {
  Series s;
  for (int i = 0; i < 10; ++i) s.Append(i, i);
  EXPECT_EQ(s.Retain(5), 5u);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.min_ts(), 5);
}

TEST(MetricStoreTest, NamedSeries) {
  MetricStore m;
  m.Append("cpu", 1, 0.5);
  m.Append("cpu", 2, 0.6);
  m.Append("mem", 1, 100);
  EXPECT_EQ(m.num_series(), 2u);
  ASSERT_TRUE(m.Get("cpu").ok());
  EXPECT_EQ((*m.Get("cpu"))->size(), 2u);
  EXPECT_TRUE(m.Get("disk").status().IsNotFound());
}

TEST(ContinuousAggregateTest, IngestMaintainsRollups) {
  ContinuousAggregate agg(100, AggKind::kAvg);
  for (int i = 0; i < 10; ++i) agg.Ingest(i * 25, i);  // windows 0,100,200
  EXPECT_EQ(agg.num_windows(), 3u);
  auto windows = agg.Windows(0, 300);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[0].value, 1.5);  // samples 0..3 -> mean 1.5
}

TEST(ContinuousAggregateTest, NegativeTimestampsBucketCorrectly) {
  ContinuousAggregate agg(100, AggKind::kCount);
  agg.Ingest(-150, 1);
  agg.Ingest(-50, 1);
  auto windows = agg.Windows(-200, 0);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window_start, -200);
  EXPECT_EQ(windows[1].window_start, -100);
}

class EventStoreTest : public ::testing::Test {
 protected:
  EventStoreTest()
      : store_({Column{"carid", TypeId::kInt64, ""},
                Column{"juncid", TypeId::kInt64, ""}}) {}
  EventStore store_;
};

TEST_F(EventStoreTest, SchemaHasTimeFirst) {
  EXPECT_EQ(store_.schema().num_columns(), 3u);
  EXPECT_EQ(store_.schema().column(0).name, "time");
  EXPECT_EQ(store_.schema().column(0).type, TypeId::kTimestamp);
}

TEST_F(EventStoreTest, WindowQueryIsTheGtimeseriesExpr) {
  // Cars seen at junctions over 60 minutes; query the last 30 minutes.
  const int64_t kMinute = 60'000'000;
  for (int64_t m = 0; m < 60; ++m) {
    ASSERT_TRUE(store_.Append(m * kMinute, {Value(m % 7), Value(m % 3)}).ok());
  }
  sql::Table recent = store_.Window(/*now=*/59 * kMinute, 30 * kMinute);
  EXPECT_EQ(recent.num_rows(), 31u);  // minutes 29..59 inclusive
  // All rows inside the window.
  for (const auto& row : recent.rows()) {
    EXPECT_GE(row[0].AsInt(), 29 * kMinute);
  }
}

TEST_F(EventStoreTest, ArityChecked) {
  EXPECT_TRUE(store_.Append(0, {Value(1)}).IsInvalidArgument());
}

TEST_F(EventStoreTest, RetainDropsOldEvents) {
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_.Append(i, {Value(i), Value(0)}).ok());
  }
  EXPECT_EQ(store_.Retain(7), 7u);
  EXPECT_EQ(store_.size(), 3u);
}

}  // namespace
}  // namespace ofi::timeseries
