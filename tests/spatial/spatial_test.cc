#include "spatial/spatial.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ofi::spatial {
namespace {

TEST(GridIndexTest, InsertAndBoxQuery) {
  GridIndex idx(10.0);
  idx.Insert(1, {5, 5});
  idx.Insert(2, {15, 15});
  idx.Insert(3, {50, 50});
  auto hits = idx.QueryBox({0, 0, 20, 20});
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 2}));
}

TEST(GridIndexTest, BoxBoundariesInclusive) {
  GridIndex idx(1.0);
  idx.Insert(1, {10, 10});
  EXPECT_EQ(idx.QueryBox({10, 10, 10, 10}).size(), 1u);
  EXPECT_EQ(idx.QueryBox({10.001, 10, 11, 11}).size(), 0u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex idx(10.0);
  idx.Insert(1, {-5, -5});
  idx.Insert(2, {-25, -25});
  EXPECT_EQ(idx.QueryBox({-30, -30, 0, 0}).size(), 2u);
  EXPECT_EQ(idx.QueryBox({-10, -10, 0, 0}).size(), 1u);
}

TEST(GridIndexTest, RadiusQuery) {
  GridIndex idx(5.0);
  idx.Insert(1, {0, 0});
  idx.Insert(2, {3, 4});   // distance 5
  idx.Insert(3, {10, 0});  // distance 10
  EXPECT_EQ(idx.QueryRadius({0, 0}, 5.0).size(), 2u);
  EXPECT_EQ(idx.QueryRadius({0, 0}, 4.9).size(), 1u);
}

TEST(GridIndexTest, NearestNeighbours) {
  GridIndex idx(1.0);
  for (int64_t i = 0; i < 10; ++i) idx.Insert(i, {static_cast<double>(i), 0});
  auto nn = idx.Nearest({3.2, 0}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0], 3);
  EXPECT_EQ(nn[1], 4);
  EXPECT_EQ(nn[2], 2);
}

TEST(GridIndexTest, NearestMatchesBruteForce) {
  Rng rng(99);
  GridIndex idx(8.0);
  std::vector<Point> pts;
  for (int64_t i = 0; i < 200; ++i) {
    Point p{rng.NextDouble() * 100, rng.NextDouble() * 100};
    pts.push_back(p);
    idx.Insert(i, p);
  }
  Point q{50, 50};
  auto nn = idx.Nearest(q, 5);
  // Brute-force check.
  std::vector<int64_t> ids(200);
  for (int64_t i = 0; i < 200; ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [&](int64_t a, int64_t b) {
    double da = DistanceSquared(pts[a], q), db = DistanceSquared(pts[b], q);
    return da != db ? da < db : a < b;
  });
  ids.resize(5);
  EXPECT_EQ(nn, ids);
}

TEST(GridIndexTest, RemoveAndUpsert) {
  GridIndex idx(1.0);
  idx.Insert(1, {0, 0});
  ASSERT_TRUE(idx.Remove(1).ok());
  EXPECT_TRUE(idx.Remove(1).IsNotFound());
  idx.Upsert(2, {1, 1});
  idx.Upsert(2, {50, 50});
  EXPECT_EQ(idx.QueryBox({0, 0, 2, 2}).size(), 0u);
  EXPECT_EQ(idx.QueryBox({49, 49, 51, 51}).size(), 1u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(SpatioTemporalTest, BoxPlusTimeWindow) {
  SpatioTemporalIndex idx(10.0);
  // Vehicle 7 drives east, one observation per tick.
  for (int64_t t = 0; t < 10; ++t) {
    idx.Insert(7, {static_cast<double>(t * 10), 0}, t);
  }
  // Vehicle 8 parked far away.
  idx.Insert(8, {500, 500}, 5);
  auto obs = idx.QueryBoxTime({0, -1, 45, 1}, 2, 8);
  EXPECT_EQ(obs.size(), 3u);  // positions 20,30,40 at t=2,3,4
}

TEST(SpatioTemporalTest, TableMaterialization) {
  SpatioTemporalIndex idx(10.0);
  idx.Insert(1, {5, 5}, 100);
  sql::Table t = idx.QueryBoxTimeTable({0, 0, 10, 10}, 0, 200);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.schema().num_columns(), 5u);
  EXPECT_EQ(t.rows()[0][1].AsInt(), 1);  // object_id
}

TEST(BoundingBoxTest, IntersectsAndContains) {
  BoundingBox a{0, 0, 10, 10}, b{5, 5, 15, 15}, c{20, 20, 30, 30};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains({10, 10}));
  EXPECT_FALSE(a.Contains({10.5, 10}));
}

}  // namespace
}  // namespace ofi::spatial
