#include "vision/vision.h"

#include <gtest/gtest.h>

namespace ofi::vision {
namespace {

Detection Det(int64_t frame, Timestamp ts, const char* label, double conf,
              BBox box) {
  Detection d;
  d.frame = frame;
  d.ts = ts;
  d.label = label;
  d.confidence = conf;
  d.bbox = box;
  return d;
}

TEST(BBoxTest, IouBasics) {
  BBox a{0, 0, 10, 10}, b{5, 5, 10, 10}, c{100, 100, 1, 1};
  EXPECT_NEAR(a.Iou(b), 25.0 / 175.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.Iou(c), 0.0);
  EXPECT_DOUBLE_EQ(a.Iou(a), 1.0);
  EXPECT_DOUBLE_EQ(a.Center().x, 5.0);
}

TEST(VisionStoreTest, QueryByLabelTimeConfidence) {
  VisionStore store;
  store.Ingest(Det(1, 100, "car", 0.9, {0, 0, 5, 5}));
  store.Ingest(Det(1, 100, "pedestrian", 0.8, {10, 0, 2, 4}));
  store.Ingest(Det(2, 200, "car", 0.4, {1, 0, 5, 5}));
  store.Ingest(Det(3, 300, "car", 0.95, {2, 0, 5, 5}));

  EXPECT_EQ(store.Query("car", 0, 1000).size(), 3u);
  EXPECT_EQ(store.Query("car", 0, 1000, 0.5).size(), 2u);
  EXPECT_EQ(store.Query("car", 150, 250).size(), 1u);
  EXPECT_EQ(store.Query("bicycle", 0, 1000).size(), 0u);
}

TEST(VisionStoreTest, GreedyIouTrackingLinksDetections) {
  VisionStore store;
  // A car moving right ~2px/frame: boxes overlap heavily -> one track.
  for (int f = 0; f < 5; ++f) {
    store.Ingest(Det(f, f * 33, "car", 0.9,
                     {static_cast<double>(f * 2), 0, 20, 10}));
  }
  // Another car far away -> second track.
  store.Ingest(Det(0, 0, "car", 0.9, {500, 500, 20, 10}));

  EXPECT_EQ(store.num_tracks(), 2);
  auto track0 = store.Track(0);
  ASSERT_EQ(track0.size(), 5u);
  // Time-ordered path.
  for (size_t i = 1; i < track0.size(); ++i) {
    EXPECT_LT(track0[i - 1]->ts, track0[i]->ts);
  }
}

TEST(VisionStoreTest, TrackingRespectsLabels) {
  VisionStore store;
  store.Ingest(Det(0, 0, "car", 0.9, {0, 0, 10, 10}));
  // Same place, later frame, different label: must NOT join the car track.
  store.Ingest(Det(1, 33, "pedestrian", 0.9, {0, 0, 10, 10}));
  EXPECT_EQ(store.num_tracks(), 2);
}

TEST(VisionStoreTest, DistinctTracksCountsObjectsNotDetections) {
  VisionStore store;
  for (int f = 0; f < 10; ++f) {
    store.Ingest(Det(f, f * 33, "car", 0.9,
                     {static_cast<double>(f), 0, 20, 10}));
  }
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.DistinctTracks("car", 0, 1000), 1);
}

TEST(VisionStoreTest, CountByLabelWindow) {
  VisionStore store;
  store.Ingest(Det(0, 10, "car", 0.9, {0, 0, 5, 5}));
  store.Ingest(Det(0, 10, "pedestrian", 0.9, {9, 0, 2, 4}));
  store.Ingest(Det(1, 500, "car", 0.9, {100, 0, 5, 5}));
  auto counts = store.CountByLabel(0, 100);
  EXPECT_EQ(counts["car"], 1);
  EXPECT_EQ(counts["pedestrian"], 1);
  EXPECT_EQ(store.CountByLabel(0, 1000)["car"], 2);
}

TEST(VisionStoreTest, ExplicitTrackIdsHonored) {
  VisionStore store;
  Detection d = Det(0, 0, "car", 0.9, {0, 0, 5, 5});
  d.track = 42;
  store.Ingest(d);
  EXPECT_EQ(store.Track(42).size(), 1u);
  EXPECT_GE(store.num_tracks(), 43);
}

TEST(VisionStoreTest, RelationalView) {
  VisionStore store;
  store.Ingest(Det(7, 123, "car", 0.87, {1, 2, 3, 4}));
  sql::Table t = store.AsTable();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.schema().num_columns(), 10u);
  EXPECT_EQ(t.rows()[0][3].AsString(), "car");
  EXPECT_DOUBLE_EQ(t.rows()[0][4].AsDouble(), 0.87);
}

}  // namespace
}  // namespace ofi::vision
