/// Statistics, cardinality estimation and the execute-and-learn loop
/// (experiment E4): the plan store visibly reduces q-error on re-planning.
#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ofi::optimizer {
namespace {

using sql::Column;
using sql::Expr;
using sql::Schema;
using sql::Table;
using sql::TypeId;
using sql::Value;

Table UniformTable(int64_t rows, int64_t distinct) {
  Table t{Schema({Column{"id", TypeId::kInt64, "t"},
                  Column{"grp", TypeId::kInt64, "t"},
                  Column{"val", TypeId::kDouble, "t"}})};
  Rng rng(11);
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        t.Append({Value(i), Value(i % distinct), Value(rng.NextDouble() * 100)})
            .ok());
  }
  return t;
}

TEST(StatsTest, AnalyzeBasics) {
  Table t = UniformTable(1000, 10);
  TableStats stats = AnalyzeTable(t);
  EXPECT_EQ(stats.num_rows, 1000u);
  const ColumnStats* grp = stats.Column("grp");
  ASSERT_NE(grp, nullptr);
  EXPECT_EQ(grp->ndv, 10u);
  EXPECT_DOUBLE_EQ(grp->min, 0);
  EXPECT_DOUBLE_EQ(grp->max, 9);
}

TEST(StatsTest, QualifiedColumnLookup) {
  Table t = UniformTable(100, 10);
  TableStats stats = AnalyzeTable(t);
  EXPECT_NE(stats.Column("t.grp"), nullptr);
  EXPECT_EQ(stats.Column("nope"), nullptr);
}

TEST(StatsTest, EqSelectivityUniform) {
  Table t = UniformTable(1000, 10);
  TableStats stats = AnalyzeTable(t);
  EXPECT_NEAR(stats.Column("grp")->EqSelectivity(Value(3)), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(stats.Column("grp")->EqSelectivity(Value(99)), 0.0);
}

TEST(StatsTest, HistogramRangeSelectivity) {
  Table t = UniformTable(1000, 1000);  // id uniform 0..999
  TableStats stats = AnalyzeTable(t);
  const ColumnStats* id = stats.Column("id");
  EXPECT_NEAR(id->LtSelectivity(Value(500)), 0.5, 0.05);
  EXPECT_NEAR(id->LtSelectivity(Value(100)), 0.1, 0.05);
  EXPECT_DOUBLE_EQ(id->LtSelectivity(Value(-5)), 0.0);
  EXPECT_DOUBLE_EQ(id->LtSelectivity(Value(5000)), 1.0);
}

TEST(StatsTest, NullCounting) {
  Table t{Schema({Column{"v", TypeId::kInt64, ""}})};
  ASSERT_TRUE(t.Append({Value(1)}).ok());
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  TableStats stats = AnalyzeTable(t);
  EXPECT_EQ(stats.Column("v")->num_nulls, 2u);
  EXPECT_EQ(stats.Column("v")->num_values, 1u);
}

TEST(StatsTest, McvCapturesSkew) {
  // 90% of rows are value 7; the rest spread over 0..99.
  Table t{Schema({Column{"v", TypeId::kInt64, ""}})};
  Rng rng(5);
  for (int64_t i = 0; i < 10'000; ++i) {
    int64_t v = rng.Chance(0.9) ? 7 : rng.Uniform(0, 99);
    EXPECT_TRUE(t.Append({Value(v)}).ok());
  }
  TableStats stats = AnalyzeTable(t);
  const ColumnStats* cs = stats.Column("v");
  ASSERT_FALSE(cs->mcv.empty());
  EXPECT_EQ(cs->mcv[0].first.AsInt(), 7);
  // Exact for the heavy hitter (~0.9, not 1/ndv = 0.01).
  EXPECT_NEAR(cs->EqSelectivity(Value(7)), 0.9, 0.02);
  // Non-MCV values estimate against the residual mass, not the whole table.
  EXPECT_LT(cs->EqSelectivity(Value(3)), 0.01);
  EXPECT_GT(cs->EqSelectivity(Value(3)), 0.0);
}

TEST(StatsTest, UniformColumnsHaveNoMcv) {
  Table t{Schema({Column{"v", TypeId::kInt64, ""}})};
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(t.Append({Value(i % 10)}).ok());
  }
  TableStats stats = AnalyzeTable(t);
  EXPECT_TRUE(stats.Column("v")->mcv.empty());
  EXPECT_NEAR(stats.Column("v")->EqSelectivity(Value(3)), 0.1, 1e-9);
}

class LearningLoopTest : public ::testing::Test {
 protected:
  LearningLoopTest() {
    // A *correlated* table: a > 500 implies b > 500 (b == a). The
    // independence assumption underestimates "a>500 AND b>500" by ~2x.
    Table t{Schema({Column{"a", TypeId::kInt64, "c"},
                    Column{"b", TypeId::kInt64, "c"}})};
    for (int64_t i = 0; i < 1000; ++i) {
      EXPECT_TRUE(t.Append({Value(i), Value(i)}).ok());
    }
    catalog_.Register("corr", std::move(t));

    Table dim{Schema({Column{"k", TypeId::kInt64, "d"},
                      Column{"name", TypeId::kString, "d"}})};
    for (int64_t i = 0; i < 100; ++i) {
      EXPECT_TRUE(dim.Append({Value(i), Value("n" + std::to_string(i))}).ok());
    }
    catalog_.Register("dim", std::move(dim));
    stats_.AnalyzeAll(catalog_);
  }

  sql::ExprPtr CorrelatedPred() {
    return Expr::And(Expr::Gt("c.a", Value(500)), Expr::Gt("c.b", Value(500)));
  }

  sql::Catalog catalog_;
  StatsRegistry stats_;
};

TEST_F(LearningLoopTest, IndependenceAssumptionUnderestimates) {
  CardinalityEstimator est(&stats_, nullptr);
  auto scan = sql::MakeScan("corr", CorrelatedPred());
  est.Annotate(scan.get());
  // True cardinality 499; independence predicts ~1000 * 0.5 * 0.5 = 250.
  EXPECT_LT(scan->estimated_rows, 300);
  EXPECT_GT(scan->estimated_rows, 150);
}

TEST_F(LearningLoopTest, FeedbackCorrectsEstimateOnSecondPlanning) {
  PlanStore store(0.3);
  Optimizer opt(&catalog_, &stats_, &store);

  auto plan = sql::MakeScan("corr", CorrelatedPred());
  opt.Annotate(plan);
  double first_q = -1;
  {
    int captured = 0;
    auto result = opt.ExecuteAndLearn(plan, &captured);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_rows(), 499u);
    EXPECT_GE(captured, 1);
    first_q = Optimizer::MaxQError(*plan);
    EXPECT_GT(first_q, 1.5);
  }
  // Re-plan the same (canned) query: the store supplies the actual.
  auto plan2 = sql::MakeScan("corr", CorrelatedPred());
  opt.Annotate(plan2);
  EXPECT_DOUBLE_EQ(plan2->estimated_rows, 499);
  auto result2 = opt.ExecuteAndLearn(plan2, nullptr);
  ASSERT_TRUE(result2.ok());
  EXPECT_LT(Optimizer::MaxQError(*plan2), first_q);
  EXPECT_NEAR(Optimizer::MaxQError(*plan2), 1.0, 1e-9);
}

TEST_F(LearningLoopTest, PredicateOrderStillHitsStore) {
  PlanStore store(0.3);
  Optimizer opt(&catalog_, &stats_, &store);
  auto plan = sql::MakeScan("corr", CorrelatedPred());
  opt.Annotate(plan);
  ASSERT_TRUE(opt.ExecuteAndLearn(plan, nullptr).ok());

  // Same semantics, reversed conjunct order.
  auto reversed = Expr::And(Expr::Gt("c.b", Value(500)), Expr::Gt("c.a", Value(500)));
  auto plan2 = sql::MakeScan("corr", reversed);
  opt.Annotate(plan2);
  EXPECT_DOUBLE_EQ(plan2->estimated_rows, 499);
}

TEST_F(LearningLoopTest, JoinOrderPrefersConnectedJoins) {
  Optimizer opt(&catalog_, &stats_, nullptr);
  auto plan = opt.PlanJoinQuery(
      {ScanSpec{"corr", Expr::Gt("c.a", Value(900)), "c"},
       ScanSpec{"dim", nullptr, "d"}},
      {Expr::EqCols("c.a", "d.k")});
  ASSERT_TRUE(plan.ok());
  // Root is the join (no leftover cross-product filter).
  EXPECT_EQ((*plan)->kind, sql::PlanKind::kJoin);
  sql::Executor exec(&catalog_);
  auto result = exec.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);  // dim.k < 100, c.a > 900
}

TEST_F(LearningLoopTest, JoinCardinalityEstimate) {
  CardinalityEstimator est(&stats_, nullptr);
  auto join = sql::MakeJoin(sql::MakeScan("corr", nullptr, "c"),
                            sql::MakeScan("dim", nullptr, "d"),
                            Expr::EqCols("c.a", "d.k"));
  est.Annotate(join.get());
  // |corr| * |dim| / max(ndv(a)=1000, ndv(k)=100) = 100.
  EXPECT_NEAR(join->estimated_rows, 100, 5);
}

TEST_F(LearningLoopTest, QErrorHelpers) {
  EXPECT_DOUBLE_EQ(Optimizer::StepQError(10, 100), 10);
  EXPECT_DOUBLE_EQ(Optimizer::StepQError(100, 10), 10);
  EXPECT_DOUBLE_EQ(Optimizer::StepQError(0, 0), 1);
}

}  // namespace
}  // namespace ofi::optimizer
