/// End-to-end SQL: parse -> rewrite -> cost-based plan -> execute -> learn.
#include "optimizer/sql_session.h"

#include <gtest/gtest.h>

#include "sql/planner.h"

namespace ofi::optimizer {
namespace {

using sql::Value;

class SqlSessionTest : public ::testing::Test {
 protected:
  SqlSessionTest() {
    Must("CREATE TABLE emp (id BIGINT, name VARCHAR, dept BIGINT, salary BIGINT)");
    Must("CREATE TABLE dept (id BIGINT, dname VARCHAR)");
    Must("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'ops')");
    Must("INSERT INTO emp VALUES "
         "(1, 'ada', 1, 120), (2, 'grace', 1, 130), (3, 'edsger', 1, 110),"
         "(4, 'barb', 2, 90), (5, 'don', 2, 95), (6, 'alan', 3, 80)");
    session_.Analyze();
  }

  sql::Table Must(const std::string& stmt) {
    auto r = session_.Execute(stmt);
    EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).ValueOrDie() : sql::Table{};
  }

  SqlSession session_;
};

TEST_F(SqlSessionTest, PointQuery) {
  sql::Table t = Must("SELECT name FROM emp WHERE id = 4");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsString(), "barb");
}

TEST_F(SqlSessionTest, Projection) {
  sql::Table t = Must("SELECT name, salary * 2 AS double_pay FROM emp WHERE dept = 1");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_TRUE(t.schema().IndexOf("double_pay").ok());
}

TEST_F(SqlSessionTest, JoinQuery) {
  sql::Table t = Must(
      "SELECT e.name, d.dname FROM emp e, dept d "
      "WHERE e.dept = d.id AND d.dname = 'eng' ORDER BY e.name");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.rows()[0][0].AsString(), "ada");
  EXPECT_EQ(t.rows()[0][1].AsString(), "eng");
}

TEST_F(SqlSessionTest, ExplicitJoinSyntax) {
  sql::Table t = Must(
      "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id "
      "WHERE d.dname = 'sales'");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(SqlSessionTest, LeftJoinKeepsUnmatched) {
  Must("INSERT INTO dept VALUES (9, 'empty')");
  sql::Table t = Must(
      "SELECT d.dname, e.name FROM dept d LEFT JOIN emp e ON d.id = e.dept");
  // 6 matched emp rows + 1 unmatched dept.
  EXPECT_EQ(t.num_rows(), 7u);
}

TEST_F(SqlSessionTest, GroupByHavingOrder) {
  sql::Table t = Must(
      "SELECT dept, COUNT(*) AS n, AVG(salary) AS pay FROM emp "
      "GROUP BY dept HAVING n >= 2 ORDER BY pay DESC");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 1);  // eng pays most
  EXPECT_EQ(t.rows()[0][1].AsInt(), 3);
}

TEST_F(SqlSessionTest, GlobalAggregate) {
  sql::Table t = Must("SELECT COUNT(*), MIN(salary), MAX(salary) FROM emp");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 6);
  EXPECT_EQ(t.rows()[0][1].AsInt(), 80);
  EXPECT_EQ(t.rows()[0][2].AsInt(), 130);
}

TEST_F(SqlSessionTest, SetOperations) {
  sql::Table t = Must(
      "SELECT name FROM emp WHERE dept = 1 "
      "UNION ALL SELECT name FROM emp WHERE salary > 100");
  EXPECT_EQ(t.num_rows(), 6u);  // 3 + 3 (overlap kept)
  sql::Table u = Must(
      "SELECT name FROM emp WHERE dept = 1 "
      "UNION SELECT name FROM emp WHERE salary > 100");
  EXPECT_EQ(u.num_rows(), 3u);  // deduped
}

TEST_F(SqlSessionTest, LimitOffset) {
  sql::Table t = Must("SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsString(), "ada");
}

TEST_F(SqlSessionTest, InBetweenNot) {
  EXPECT_EQ(Must("SELECT * FROM emp WHERE dept IN (1, 3)").num_rows(), 4u);
  EXPECT_EQ(Must("SELECT * FROM emp WHERE salary BETWEEN 90 AND 110").num_rows(),
            3u);
  EXPECT_EQ(Must("SELECT * FROM emp WHERE NOT dept = 1").num_rows(), 3u);
}

TEST_F(SqlSessionTest, ExplainShowsPlanWithEstimates) {
  auto plan = session_.Explain(
      "SELECT e.name FROM emp e, dept d WHERE e.dept = d.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("JOIN"), std::string::npos);
  EXPECT_NE(plan->find("est="), std::string::npos);
}

TEST_F(SqlSessionTest, DdlErrors) {
  EXPECT_TRUE(session_.Execute("CREATE TABLE emp (x BIGINT)")
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(session_.Execute("DROP TABLE nope").status().IsNotFound());
  EXPECT_TRUE(session_.Execute("SELECT * FROM nope").status().IsNotFound());
  EXPECT_TRUE(session_.Execute("INSERT INTO emp VALUES (1)")
                  .status()
                  .IsInvalidArgument());
  Must("CREATE TABLE temp2 (x BIGINT)");
  Must("DROP TABLE temp2");
}

TEST_F(SqlSessionTest, LearningLoopThroughSqlInterface) {
  // Correlated columns: classic underestimate, corrected on re-run.
  Must("CREATE TABLE corr (a BIGINT, b BIGINT)");
  std::string insert = "INSERT INTO corr VALUES ";
  for (int i = 0; i < 500; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i) + ", " + std::to_string(i) + ")";
  }
  Must(insert);
  session_.Analyze();

  Must("SELECT COUNT(*) FROM corr WHERE a > 250 AND b > 250");
  double first = session_.last_max_qerror();
  EXPECT_GT(first, 1.5);
  Must("SELECT COUNT(*) FROM corr WHERE b > 250 AND a > 250");  // reordered
  EXPECT_LT(session_.last_max_qerror(), first);
  EXPECT_GT(session_.plan_store().hits(), 0u);
}

// --- Rewrite rules ------------------------------------------------------------
TEST(RewriteTest, ConstantFolding) {
  auto e = sql::ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  sql::ExprPtr folded = sql::FoldConstants(*e);
  ASSERT_EQ(folded->kind(), sql::ExprKind::kLiteral);
  EXPECT_EQ(folded->literal().AsInt(), 7);
}

TEST(RewriteTest, BooleanIdentities) {
  auto e = sql::ParseExpression("TRUE AND a > 1");
  ASSERT_TRUE(e.ok());
  sql::ExprPtr folded = sql::FoldConstants(*e);
  EXPECT_EQ(folded->ToCanonicalString(), "a>1");

  auto e2 = sql::ParseExpression("a > 1 OR TRUE");
  sql::ExprPtr folded2 = sql::FoldConstants(*e2);
  ASSERT_EQ(folded2->kind(), sql::ExprKind::kLiteral);
  EXPECT_TRUE(folded2->literal().AsBool());

  auto e3 = sql::ParseExpression("FALSE AND a > 1");
  sql::ExprPtr folded3 = sql::FoldConstants(*e3);
  ASSERT_EQ(folded3->kind(), sql::ExprKind::kLiteral);
  EXPECT_FALSE(folded3->literal().AsBool());
}

TEST(RewriteTest, PredicateClassification) {
  auto where = sql::ParseExpression("t.a > 1 AND u.b < 2 AND t.a = u.b");
  ASSERT_TRUE(where.ok());
  std::vector<std::vector<std::string>> rels = {{"a", "t.a"}, {"b", "u.b"}};
  std::vector<sql::ExprPtr> per_rel;
  std::vector<sql::ExprPtr> cross;
  sql::ClassifyPredicates(*where, rels, &per_rel, &cross);
  ASSERT_NE(per_rel[0], nullptr);
  ASSERT_NE(per_rel[1], nullptr);
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0]->ToCanonicalString(), "t.a=u.b");
}

}  // namespace
}  // namespace ofi::optimizer
