/// Tests for the learned optimizer's plan store and canonical step text
/// (paper §II-C, Table I — experiment E3).
#include "optimizer/plan_store.h"

#include <gtest/gtest.h>

#include "optimizer/step_text.h"
#include "sql/executor.h"

namespace ofi::optimizer {
namespace {

using sql::Column;
using sql::Expr;
using sql::MakeAggregate;
using sql::MakeJoin;
using sql::MakeLimit;
using sql::MakeProject;
using sql::MakeScan;
using sql::MakeSetOp;
using sql::MakeSort;
using sql::Schema;
using sql::TypeId;
using sql::Value;

// The paper's running example: select * from OLAP.t1, OLAP.t2
// where OLAP.t1.a1 = OLAP.t2.a2 and OLAP.t1.b1 > 10.
sql::PlanPtr TableIPlan() {
  auto scan1 = MakeScan("OLAP.T1", Expr::Gt("OLAP.T1.B1", Value(10)));
  auto scan2 = MakeScan("OLAP.T2");
  return MakeJoin(scan1, scan2, Expr::EqCols("OLAP.T1.A1", "OLAP.T2.A2"));
}

TEST(StepTextTest, TableIScanForm) {
  auto plan = TableIPlan();
  EXPECT_EQ(StepText(*plan->children[0]),
            "SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10))");
  EXPECT_EQ(StepText(*plan->children[1]), "SCAN(OLAP.T2)");
}

TEST(StepTextTest, TableIJoinFormIncludesFullChildren) {
  auto plan = TableIPlan();
  EXPECT_EQ(StepText(*plan),
            "JOIN(SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10)), SCAN(OLAP.T2), "
            "PREDICATE(OLAP.T1.A1=OLAP.T2.A2))");
}

TEST(StepTextTest, JoinChildOrderIndependent) {
  auto scan1 = MakeScan("OLAP.T1", Expr::Gt("OLAP.T1.B1", Value(10)));
  auto scan2 = MakeScan("OLAP.T2");
  auto j1 = MakeJoin(scan1, scan2, Expr::EqCols("OLAP.T1.A1", "OLAP.T2.A2"));
  auto j2 = MakeJoin(scan2, scan1, Expr::EqCols("OLAP.T2.A2", "OLAP.T1.A1"));
  EXPECT_EQ(StepText(*j1), StepText(*j2));
}

TEST(StepTextTest, OuterJoinOrderDependent) {
  auto s1 = MakeScan("A");
  auto s2 = MakeScan("B");
  auto l = MakeJoin(s1, s2, nullptr, sql::JoinType::kLeftOuter);
  auto r = MakeJoin(s2, s1, nullptr, sql::JoinType::kLeftOuter);
  EXPECT_NE(StepText(*l), StepText(*r));
}

TEST(StepTextTest, ProjectAndSortAreTransparent) {
  auto scan = MakeScan("T", Expr::Gt("c", Value(1)));
  auto projected = MakeProject(scan, {Expr::ColumnRef("c")}, {"c"});
  auto sorted = MakeSort(projected, {{Expr::ColumnRef("c"), true}});
  EXPECT_EQ(StepText(*sorted), StepText(*scan));
}

TEST(StepTextTest, AggregateGroupByColumnsSorted) {
  auto a1 = MakeAggregate(MakeScan("T"), {"b", "a"}, {});
  auto a2 = MakeAggregate(MakeScan("T"), {"a", "b"}, {});
  EXPECT_EQ(StepText(*a1), StepText(*a2));
  EXPECT_EQ(StepText(*a1), "AGG(SCAN(T), GROUPBY(a,b))");
}

TEST(StepTextTest, LimitAndSetOps) {
  auto l = MakeLimit(MakeScan("T"), 7);
  EXPECT_EQ(StepText(*l), "LIMIT(SCAN(T), 7)");
  auto u1 = MakeSetOp(sql::SetOpType::kUnion, MakeScan("A"), MakeScan("B"));
  auto u2 = MakeSetOp(sql::SetOpType::kUnion, MakeScan("B"), MakeScan("A"));
  EXPECT_EQ(StepText(*u1), StepText(*u2));
  auto e1 = MakeSetOp(sql::SetOpType::kExcept, MakeScan("A"), MakeScan("B"));
  auto e2 = MakeSetOp(sql::SetOpType::kExcept, MakeScan("B"), MakeScan("A"));
  EXPECT_NE(StepText(*e1), StepText(*e2));
}

// ---------------------------------------------------------------------------
// Plan store behaviour.
// ---------------------------------------------------------------------------
TEST(PlanStoreTest, CaptureOnlyLargeDifferentials) {
  PlanStore store(/*capture_threshold=*/0.5);
  auto plan = TableIPlan();
  plan->children[0]->estimated_rows = 50;
  plan->children[0]->actual_rows = 100;  // differential 1.0 -> captured
  plan->children[1]->estimated_rows = 100;
  plan->children[1]->actual_rows = 110;  // differential 0.1 -> skipped
  plan->estimated_rows = 50;
  plan->actual_rows = 100;  // captured
  EXPECT_EQ(store.CapturePlan(*plan), 2);
  EXPECT_EQ(store.size(), 2u);
}

TEST(PlanStoreTest, ConsumerLookupReturnsActual) {
  PlanStore store(0.2);
  auto plan = TableIPlan();
  plan->children[0]->estimated_rows = 50;
  plan->children[0]->actual_rows = 100;
  store.CapturePlan(*plan->children[0]);
  auto hit = store.LookupActual("SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10))");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 100.0);
  EXPECT_FALSE(store.LookupActual("SCAN(OLAP.T3)").has_value());
  EXPECT_EQ(store.lookups(), 2u);
  EXPECT_EQ(store.hits(), 1u);
}

TEST(PlanStoreTest, RecaptureRefreshesActual) {
  PlanStore store(0.2);
  store.Put("SCAN(T)", 10, 100);
  store.Put("SCAN(T)", 10, 200);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(*store.LookupActual("SCAN(T)"), 200.0);
}

TEST(PlanStoreTest, UnexecutedStepsNotCaptured) {
  PlanStore store(0.1);
  auto plan = TableIPlan();
  plan->estimated_rows = 5;  // actual_rows stays -1
  EXPECT_EQ(store.CapturePlan(*plan), 0);
}

TEST(PlanStoreTest, TableIRendering) {
  PlanStore store(0.2);
  auto plan = TableIPlan();
  plan->children[0]->estimated_rows = 50;
  plan->children[0]->actual_rows = 100;
  plan->estimated_rows = 50;
  plan->actual_rows = 100;
  store.CapturePlan(*plan);
  std::string table = store.ToTableString();
  EXPECT_NE(table.find("SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10)) | 50 | 100"),
            std::string::npos);
  EXPECT_NE(table.find("JOIN("), std::string::npos);
}

TEST(PlanStoreTest, SerializeDeserializeRoundTrip) {
  PlanStore store(0.2);
  store.Put("SCAN(T1, PREDICATE(T1.a>10))", 50, 100);
  store.Put("JOIN(SCAN(T1), SCAN(T2), PREDICATE(T1.a=T2.b))", 400, 40);
  std::string blob = store.Serialize();

  PlanStore restored(0.2);
  auto loaded = restored.Deserialize(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2);
  EXPECT_DOUBLE_EQ(*restored.LookupActual("SCAN(T1, PREDICATE(T1.a>10))"), 100);
  EXPECT_DOUBLE_EQ(
      *restored.LookupActual("JOIN(SCAN(T1), SCAN(T2), PREDICATE(T1.a=T2.b))"),
      40);
}

TEST(PlanStoreTest, DeserializeMergesAndValidates) {
  PlanStore store(0.2);
  store.Put("SCAN(T)", 1, 2);
  ASSERT_TRUE(store.Deserialize("3.000000\t9.000000\tSCAN(T)\n").ok());
  EXPECT_DOUBLE_EQ(*store.LookupActual("SCAN(T)"), 9);

  EXPECT_TRUE(store.Deserialize("garbage line").status().code() ==
              StatusCode::kCorruption);
  EXPECT_TRUE(store.Deserialize("x\t2\tSCAN(T)").status().code() ==
              StatusCode::kCorruption);
}

TEST(PlanStoreTest, Md5KeysBoundKeySize) {
  // Keys are MD5 hex digests regardless of step complexity.
  PlanStore store(0.0);
  std::string huge_pred_col(10'000, 'x');
  store.Put("SCAN(T, PREDICATE(" + huge_pred_col + ">10))", 1, 2);
  EXPECT_EQ(store.size(), 1u);  // stored under a 32-char key internally
}

}  // namespace
}  // namespace ofi::optimizer
