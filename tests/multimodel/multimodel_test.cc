/// Integration test for the multi-model database (paper §II-B) culminating
/// in the full Example 1 query: a Gremlin graph traversal and a time-series
/// window encapsulated as table expressions inside one relational plan.
#include "multimodel/multimodel.h"

#include <gtest/gtest.h>

namespace ofi::multimodel {
namespace {

using graph::Gp;
using graph::Traversal;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::Table;
using sql::TypeId;
using sql::Value;

constexpr int64_t kMinute = 60'000'000;

/// The investigation scenario: phones, calls, car sightings, car ownership.
class Example1Test : public ::testing::Test {
 protected:
  Example1Test() {
    // Graph: persons; person cid=11111 gets 4 recent calls (suspect),
    // cid=11112 gets 1 (innocent).
    auto g = db_.CreateGraph("callgraph");
    EXPECT_TRUE(g.ok());
    graph::PropertyGraph* pg = *g;
    std::vector<graph::VertexId> people;
    for (int i = 0; i < 4; ++i) {
      people.push_back(pg->AddVertex(
          "person",
          {{"cid", Value(11111 + i)}, {"phone", Value(5550000 + i)}}));
    }
    auto call = [&](int from, int to, int64_t t) {
      EXPECT_TRUE(pg->AddEdge(people[from], people[to], "call",
                              {{"time", Value::Timestamp(t)}})
                      .ok());
    };
    for (int i = 1; i <= 4; ++i) call(i % 4 == 0 ? 2 : i, 0, 1000 + i);
    call(3, 1, 1001);

    // Time series: high_speed_view events (time, carid, juncid).
    auto es = db_.CreateEventStore("high_speed_view",
                                   {Column{"carid", TypeId::kInt64, ""},
                                    Column{"juncid", TypeId::kInt64, ""}});
    EXPECT_TRUE(es.ok());
    // Car 201 seen 10 minutes ago (inside the 30-minute window); car 202
    // seen 45 minutes ago (outside); car 203 seen 5 minutes ago.
    now_ = 60 * kMinute;
    EXPECT_TRUE((*es)->Append(now_ - 10 * kMinute, {Value(201), Value(7)}).ok());
    EXPECT_TRUE((*es)->Append(now_ - 45 * kMinute, {Value(202), Value(7)}).ok());
    EXPECT_TRUE((*es)->Append(now_ - 5 * kMinute, {Value(203), Value(8)}).ok());

    // Relational: car2cid ownership. Suspect 11111 owns car 201; innocent
    // 11112 owns car 203; 202's owner is clean anyway.
    Table car2cid{Schema({Column{"carid", TypeId::kInt64, "cc"},
                          Column{"cid", TypeId::kInt64, "cc"}})};
    EXPECT_TRUE(car2cid.Append({Value(201), Value(11111)}).ok());
    EXPECT_TRUE(car2cid.Append({Value(202), Value(11113)}).ok());
    EXPECT_TRUE(car2cid.Append({Value(203), Value(11112)}).ok());
    db_.RegisterTable("car2cid", std::move(car2cid));
  }

  MultiModelDb db_;
  int64_t now_ = 0;
};

TEST_F(Example1Test, FullCrossModelQuery) {
  // with cars(carid) as (select * from gtimeseries(... 30 minutes))
  auto cars = db_.TimeSeriesWindowExpr("high_speed_view", now_, 30 * kMinute, "c");
  ASSERT_TRUE(cars.ok());

  // suspects(cid) as (ggraph(g.V().where(inE(call).has(time>..).count>3)))
  auto g = db_.Gremlin("callgraph");
  ASSERT_TRUE(g.ok());
  Traversal suspects = g->V().Where(
      [](Traversal t) {
        return std::move(
            t.InE("call").Has("time", Gp::Gt(Value::Timestamp(1000))));
      },
      Gp::Gt(Value(3)));
  sql::PlanPtr suspects_plan = db_.GraphTableExpr(suspects, {"cid", "phone"}, "s");

  // select s.cid, s.phone, c.carid from suspects s, cars c, car2cid cc
  // where cc.carid = c.carid and s.cid = cc.cid
  auto join1 = sql::MakeJoin(*cars, sql::MakeScan("car2cid"),
                             Expr::EqCols("c.carid", "cc.carid"));
  auto join2 = sql::MakeJoin(suspects_plan, join1, Expr::EqCols("s.cid", "cc.cid"));
  auto project = sql::MakeProject(
      join2,
      {Expr::ColumnRef("s.cid"), Expr::ColumnRef("s.phone"),
       Expr::ColumnRef("c.carid")},
      {"cid", "phone", "carid"});

  auto result = db_.Execute(project);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->rows()[0][0].AsInt(), 11111);
  EXPECT_EQ(result->rows()[0][1].AsInt(), 5550000);
  EXPECT_EQ(result->rows()[0][2].AsInt(), 201);
}

TEST_F(Example1Test, WindowExcludesOldSightings) {
  auto cars = db_.TimeSeriesWindowExpr("high_speed_view", now_, 30 * kMinute, "c");
  ASSERT_TRUE(cars.ok());
  auto result = db_.Execute(*cars);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 2u);  // cars 201 and 203; 202 is too old
}

TEST_F(Example1Test, GraphEngineMissingIsError) {
  EXPECT_TRUE(db_.GetGraph("nope").status().IsNotFound());
  EXPECT_TRUE(db_.Gremlin("nope").status().IsNotFound());
  EXPECT_TRUE(
      db_.TimeSeriesWindowExpr("nope", 0, 1, "x").status().IsNotFound());
}

TEST_F(Example1Test, DuplicateEngineNamesRejected) {
  EXPECT_TRUE(db_.CreateGraph("callgraph").status().IsAlreadyExists());
  EXPECT_TRUE(db_.CreateEventStore("high_speed_view", {})
                  .status()
                  .IsAlreadyExists());
}

TEST(MultiModelTest, SpatialTableExpr) {
  MultiModelDb db;
  auto idx = db.CreateSpatialIndex("trips", 10.0);
  ASSERT_TRUE(idx.ok());
  (*idx)->Insert(42, {5, 5}, 100);
  (*idx)->Insert(43, {500, 500}, 100);
  auto expr = db.SpatialBoxTimeExpr("trips", {0, 0, 10, 10}, 0, 200, "sp");
  ASSERT_TRUE(expr.ok());
  auto result = db.Execute(*expr);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->rows()[0][1].AsInt(), 42);
}

TEST(MultiModelTest, MetricStoreRoundTrip) {
  MultiModelDb db;
  auto ms = db.CreateMetricStore("sensors");
  ASSERT_TRUE(ms.ok());
  (*ms)->Append("temp", 1, 20.5);
  ASSERT_TRUE(db.GetMetricStore("sensors").ok());
  EXPECT_TRUE(db.GetMetricStore("nope").status().IsNotFound());
}

TEST(MultiModelTest, TableByteSizeAccounting) {
  Table t{Schema({Column{"a", TypeId::kInt64, ""}, Column{"b", TypeId::kString, ""}})};
  ASSERT_TRUE(t.Append({Value(1), Value("xyz")}).ok());
  EXPECT_EQ(TableByteSize(t), 8u + 3u + 4u);
}

}  // namespace
}  // namespace ofi::multimodel
