/// The device-edge-cloud sync platform (paper §IV-B): version vectors,
/// no-loss/no-dup sync, deterministic conflict convergence, dynamic
/// membership, direct-vs-cloud latency, subscriptions.
#include <gtest/gtest.h>

#include "edge/platform.h"

namespace ofi::edge {
namespace {

using sql::Value;

TEST(VersionVectorTest, CausalOrdering) {
  VersionVector a, b;
  a.Bump(1);
  EXPECT_EQ(a.Compare(b), VersionVector::Order::kAfter);
  EXPECT_EQ(b.Compare(a), VersionVector::Order::kBefore);
  b.Bump(1);
  EXPECT_EQ(a.Compare(b), VersionVector::Order::kEqual);
  a.Bump(1);
  b.Bump(2);
  EXPECT_EQ(a.Compare(b), VersionVector::Order::kConcurrent);
}

TEST(VersionVectorTest, MergeMaxDominatesBoth) {
  VersionVector a, b;
  a.Bump(1);
  a.Bump(1);
  b.Bump(2);
  VersionVector m = a;
  m.MergeMax(b);
  EXPECT_EQ(m.Compare(a), VersionVector::Order::kAfter);
  EXPECT_EQ(m.Compare(b), VersionVector::Order::kAfter);
  EXPECT_EQ(m.TotalEvents(), 3u);
}

TEST(ReplicatedStoreTest, LocalPutGetDelete) {
  ReplicatedStore s(1);
  s.Put("k", Value(10));
  EXPECT_EQ(s.Get("k").ValueOrDie().AsInt(), 10);
  s.Delete("k");
  EXPECT_TRUE(s.Get("k").status().IsNotFound());
  EXPECT_EQ(s.size(), 1u);       // tombstone retained
  EXPECT_EQ(s.live_size(), 0u);
}

TEST(ReplicatedStoreTest, MergeDominanceAndStale) {
  ReplicatedStore a(1), b(2);
  a.Put("k", Value(1));
  // Ship a's entry to b.
  Entry e = a.entries().at("k");
  EXPECT_EQ(b.Merge(e), MergeResult::kApplied);
  EXPECT_EQ(b.Merge(e), MergeResult::kStale);  // idempotent
  // b updates on top; shipping back applies at a.
  b.Put("k", Value(2));
  EXPECT_EQ(a.Merge(b.entries().at("k")), MergeResult::kApplied);
  EXPECT_EQ(a.Get("k").ValueOrDie().AsInt(), 2);
}

TEST(ReplicatedStoreTest, ConcurrentUpdatesConvergeIdentically) {
  ReplicatedStore a(1), b(2);
  a.Put("k", Value(100));
  b.Put("k", Value(200));  // concurrent with a's
  Entry ea = a.entries().at("k");
  Entry eb = b.entries().at("k");
  a.Merge(eb);
  b.Merge(ea);
  // Both replicas resolve to the same winner.
  EXPECT_EQ(a.Get("k").ValueOrDie().AsInt(), b.Get("k").ValueOrDie().AsInt());
  // And the merged version dominates both originals (no livelock).
  EXPECT_EQ(a.entries().at("k").version.Compare(ea.version),
            VersionVector::Order::kAfter);
}

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest() {
    phone_ = platform_.AddNode("phone", Tier::kDevice);
    watch_ = platform_.AddNode("watch", Tier::kDevice);
    cloud_ = platform_.AddNode("cloud", Tier::kCloud);
  }
  Platform platform_;
  SyncNode* phone_;
  SyncNode* watch_;
  SyncNode* cloud_;
};

TEST_F(PlatformTest, PairSyncNoLoss) {
  phone_->Put("photos/1", Value("sunset"));
  phone_->Put("photos/2", Value("beach"));
  watch_->Put("health/steps", Value(4200));
  SyncStats s = platform_.SyncPair(phone_->id(), watch_->id());
  EXPECT_EQ(s.entries_sent, 3u);
  EXPECT_EQ(watch_->Get("photos/1").ValueOrDie().AsString(), "sunset");
  EXPECT_EQ(phone_->Get("health/steps").ValueOrDie().AsInt(), 4200);
}

TEST_F(PlatformTest, ResyncSendsNothing) {
  phone_->Put("a", Value(1));
  platform_.SyncPair(phone_->id(), watch_->id());
  SyncStats again = platform_.SyncPair(phone_->id(), watch_->id());
  EXPECT_EQ(again.entries_sent, 0u);  // no redundant data
}

TEST_F(PlatformTest, DeleteReplicatesAsTombstone) {
  phone_->Put("a", Value(1));
  platform_.SyncPair(phone_->id(), watch_->id());
  phone_->Delete("a");
  platform_.SyncPair(phone_->id(), watch_->id());
  EXPECT_TRUE(watch_->Get("a").status().IsNotFound());
}

TEST_F(PlatformTest, DirectSyncFasterThanThroughCloud) {
  phone_->Put("video/clip", Value(std::string(2000, 'v')));
  // Measure both paths from identical starting states by using two fresh
  // target devices.
  SyncNode* tablet = platform_.AddNode("tablet", Tier::kDevice);
  SyncStats direct = platform_.SyncPair(phone_->id(), tablet->id());

  phone_->Put("video/clip2", Value(std::string(2000, 'w')));
  auto through = platform_.SyncThroughCloud(phone_->id(), watch_->id());
  ASSERT_TRUE(through.ok());
  // The paper claims direct D2D is at least ~10x faster.
  EXPECT_GT(through->latency_us, direct.latency_us * 5);
  EXPECT_TRUE(watch_->Get("video/clip2").ok());
}

TEST_F(PlatformTest, GossipConvergesAllNodes) {
  phone_->Put("p", Value(1));
  watch_->Put("w", Value(2));
  cloud_->Put("c", Value(3));
  platform_.SyncAllPairs();
  for (SyncNode* n : {phone_, watch_, cloud_}) {
    EXPECT_TRUE(n->Get("p").ok());
    EXPECT_TRUE(n->Get("w").ok());
    EXPECT_TRUE(n->Get("c").ok());
  }
}

TEST_F(PlatformTest, ConflictsCountedAndConverge) {
  phone_->Put("k", Value("from-phone"));
  watch_->Put("k", Value("from-watch"));
  platform_.SyncPair(phone_->id(), watch_->id());
  EXPECT_EQ(phone_->Get("k").ValueOrDie().AsString(),
            watch_->Get("k").ValueOrDie().AsString());
}

TEST_F(PlatformTest, DynamicMembership) {
  SyncNode* newdev = platform_.AddNode("car", Tier::kDevice);
  phone_->Put("route", Value("A->B"));
  platform_.SyncPair(phone_->id(), newdev->id());
  EXPECT_TRUE(newdev->Get("route").ok());
  NodeId id = newdev->id();
  ASSERT_TRUE(platform_.RemoveNode(id).ok());
  EXPECT_EQ(platform_.node(id), nullptr);
  EXPECT_TRUE(platform_.RemoveNode(id).IsNotFound());
}

TEST_F(PlatformTest, SubscriptionsFireOnLocalAndSyncedChanges) {
  int events = 0;
  std::string last_key;
  watch_->Subscribe("photos/", [&](const std::string& k, const Value& v) {
    ++events;
    last_key = k;
  });
  watch_->Put("photos/selfie", Value("x"));  // local change
  EXPECT_EQ(events, 1);
  phone_->Put("photos/remote", Value("y"));
  phone_->Put("music/song", Value("z"));  // outside the prefix
  platform_.SyncPair(phone_->id(), watch_->id());
  EXPECT_EQ(events, 2);
  EXPECT_EQ(last_key, "photos/remote");
}

TEST_F(PlatformTest, OfflineThenReconnectCatchesUp) {
  // "Works without Internet": two devices sync directly, cloud joins later.
  phone_->Put("note", Value("offline edit"));
  platform_.SyncPair(phone_->id(), watch_->id());
  EXPECT_TRUE(watch_->Get("note").ok());
  EXPECT_TRUE(cloud_->Get("note").status().IsNotFound());
  platform_.SyncPair(watch_->id(), cloud_->id());
  EXPECT_TRUE(cloud_->Get("note").ok());
}

TEST_F(PlatformTest, PlacementPolicyKeepsPrivateDataOffTheCloud) {
  // §IV-B1 "Secure": home camera footage never leaves the device tier.
  platform_.policy().AddRule({"camera/private/", Tier::kDevice});
  platform_.policy().AddRule({"camera/", Tier::kEdge});

  phone_->Put("camera/private/living_room", Value("footage"));
  phone_->Put("camera/doorbell", Value("clip"));
  phone_->Put("notes/todo", Value("milk"));

  // Device-to-device: everything flows.
  SyncStats d2d = platform_.SyncPair(phone_->id(), watch_->id());
  EXPECT_EQ(d2d.blocked_by_policy, 0u);
  EXPECT_TRUE(watch_->Get("camera/private/living_room").ok());

  // To the cloud: private footage AND camera clips are withheld.
  SyncStats to_cloud = platform_.SyncPair(phone_->id(), cloud_->id());
  EXPECT_EQ(to_cloud.blocked_by_policy, 2u);
  EXPECT_TRUE(cloud_->Get("camera/private/living_room").status().IsNotFound());
  EXPECT_TRUE(cloud_->Get("camera/doorbell").status().IsNotFound());
  EXPECT_TRUE(cloud_->Get("notes/todo").ok());
}

TEST_F(PlatformTest, LongestPrefixRuleWins) {
  platform_.policy().AddRule({"media/", Tier::kDevice});
  platform_.policy().AddRule({"media/public/", Tier::kCloud});
  phone_->Put("media/secret", Value(1));
  phone_->Put("media/public/post", Value(2));
  platform_.SyncPair(phone_->id(), cloud_->id());
  EXPECT_FALSE(cloud_->Get("media/secret").ok());
  EXPECT_TRUE(cloud_->Get("media/public/post").ok());
}

TEST_F(PlatformTest, NoCloudNodeError) {
  Platform p;
  p.AddNode("d1", Tier::kDevice);
  EXPECT_TRUE(p.CloudNode().status().IsNotFound());
}

}  // namespace
}  // namespace ofi::edge
