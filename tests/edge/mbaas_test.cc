/// MBaaS facade (paper §IV-B2): collections/records over the sync platform,
/// change listeners, D2D vs via-cloud sync, field-grained deltas.
#include "edge/mbaas.h"

#include <gtest/gtest.h>

namespace ofi::edge {
namespace {

using sql::Value;

class MbaasTest : public ::testing::Test {
 protected:
  MbaasTest()
      : phone_(&platform_, platform_.AddNode("phone", Tier::kDevice), "notesapp"),
        tablet_(&platform_, platform_.AddNode("tablet", Tier::kDevice),
                "notesapp") {
    platform_.AddNode("cloud", Tier::kCloud);
  }

  Platform platform_;
  MbaasClient phone_;
  MbaasClient tablet_;
};

TEST_F(MbaasTest, PutGetListDelete) {
  phone_.Put("notes", "n1", {{"title", Value("groceries")}, {"pinned", Value(true)}});
  phone_.Put("notes", "n2", {{"title", Value("ideas")}});

  auto n1 = phone_.Get("notes", "n1");
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(n1->at("title").AsString(), "groceries");
  EXPECT_TRUE(n1->at("pinned").AsBool());
  EXPECT_EQ(phone_.List("notes").size(), 2u);

  phone_.Delete("notes", "n1");
  EXPECT_TRUE(phone_.Get("notes", "n1").status().IsNotFound());
  EXPECT_EQ(phone_.List("notes").size(), 1u);
}

TEST_F(MbaasTest, DirectDeviceSyncMovesRecords) {
  phone_.Put("notes", "trip", {{"title", Value("pack bags")}});
  SyncStats s = phone_.SyncWith(&tablet_);
  EXPECT_GT(s.entries_sent, 0u);
  auto got = tablet_.Get("notes", "trip");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->at("title").AsString(), "pack bags");
}

TEST_F(MbaasTest, ViaCloudAlsoWorksButSlower) {
  phone_.Put("notes", "a", {{"title", Value("x")}});
  auto via = phone_.SyncViaCloud(&tablet_);
  ASSERT_TRUE(via.ok());
  EXPECT_TRUE(tablet_.Get("notes", "a").ok());

  tablet_.Put("notes", "b", {{"title", Value("y")}});
  SyncStats direct = tablet_.SyncWith(&phone_);
  EXPECT_GT(via->latency_us, direct.latency_us);
}

TEST_F(MbaasTest, ListenersFireForRemoteChanges) {
  std::vector<std::string> events;
  tablet_.Listen("notes", [&](const std::string& coll, const std::string& id,
                              const Record& fields) {
    for (const auto& [f, v] : fields) {
      events.push_back(id + "." + f);
    }
    if (fields.empty()) events.push_back(id + ".DELETED");
  });

  phone_.Put("notes", "n1", {{"title", Value("hello")}});
  phone_.SyncWith(&tablet_);
  ASSERT_FALSE(events.empty());
  EXPECT_NE(std::find(events.begin(), events.end(), "n1.title"), events.end());

  events.clear();
  phone_.Delete("notes", "n1");
  phone_.SyncWith(&tablet_);
  EXPECT_NE(std::find(events.begin(), events.end(), "n1.DELETED"), events.end());
}

TEST_F(MbaasTest, FieldGrainedDeltas) {
  Record big;
  big["body"] = Value(std::string(4000, 'b'));
  big["title"] = Value("doc");
  phone_.Put("notes", "doc", big);
  phone_.SyncWith(&tablet_);

  // Editing only the title ships only the title field, not the 4KB body.
  phone_.Put("notes", "doc", {{"title", Value("doc v2")}});
  SyncStats s = phone_.SyncWith(&tablet_);
  EXPECT_LT(s.bytes_on_wire, 2000u);
  EXPECT_EQ(tablet_.Get("notes", "doc")->at("title").AsString(), "doc v2");
  EXPECT_EQ(tablet_.Get("notes", "doc")->at("body").AsString().size(), 4000u);
}

TEST_F(MbaasTest, ConcurrentEditsConverge) {
  phone_.Put("notes", "n", {{"title", Value("from phone")}});
  phone_.SyncWith(&tablet_);
  // Both edit the same field offline.
  phone_.Put("notes", "n", {{"title", Value("phone edit")}});
  tablet_.Put("notes", "n", {{"title", Value("tablet edit")}});
  phone_.SyncWith(&tablet_);
  EXPECT_EQ(phone_.Get("notes", "n")->at("title").AsString(),
            tablet_.Get("notes", "n")->at("title").AsString());
}

TEST_F(MbaasTest, AppsAreNamespaced) {
  MbaasClient other_app(&platform_, phone_.node(), "todoapp");
  phone_.Put("notes", "n1", {{"title", Value("x")}});
  EXPECT_TRUE(other_app.Get("notes", "n1").status().IsNotFound());
  EXPECT_TRUE(other_app.List("notes").empty());
}

}  // namespace
}  // namespace ofi::edge
