/// Property-based convergence tests for the edge sync platform: after
/// arbitrary interleavings of writes, deletes and pairwise syncs followed
/// by full gossip rounds, every replica holds an identical store.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "edge/platform.h"

namespace ofi::edge {
namespace {

using sql::Value;

struct SweepParam {
  int num_devices;
  int num_keys;
  int operations;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return "n" + std::to_string(info.param.num_devices) + "_k" +
         std::to_string(info.param.num_keys) + "_ops" +
         std::to_string(info.param.operations) + "_s" +
         std::to_string(info.param.seed);
}

class ConvergenceTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConvergenceTest, GossipConvergesToIdenticalReplicas) {
  const SweepParam& p = GetParam();
  Platform platform;
  std::vector<SyncNode*> nodes;
  for (int i = 0; i < p.num_devices; ++i) {
    nodes.push_back(platform.AddNode("dev" + std::to_string(i), Tier::kDevice));
  }

  Rng rng(p.seed);
  for (int op = 0; op < p.operations; ++op) {
    SyncNode* node = nodes[rng.Uniform(0, p.num_devices - 1)];
    std::string key = "k" + std::to_string(rng.Uniform(0, p.num_keys - 1));
    double action = rng.NextDouble();
    if (action < 0.6) {
      node->Put(key, Value(rng.Uniform(0, 1'000'000)));
    } else if (action < 0.75) {
      node->Delete(key);
    } else {
      // Random partial sync.
      NodeId a = nodes[rng.Uniform(0, p.num_devices - 1)]->id();
      NodeId b = nodes[rng.Uniform(0, p.num_devices - 1)]->id();
      if (a != b) platform.SyncPair(a, b);
    }
  }

  // Anti-entropy to convergence: N-1 full rounds suffice for any topology;
  // run until a round ships nothing for robustness.
  for (int round = 0; round < p.num_devices; ++round) {
    if (platform.SyncAllPairs().entries_sent == 0) break;
  }
  SyncStats final_round = platform.SyncAllPairs();
  EXPECT_EQ(final_round.entries_sent, 0u) << "did not converge";

  // Every replica identical: same keys, values and tombstones.
  const auto& reference = nodes[0]->store().entries();
  for (int i = 1; i < p.num_devices; ++i) {
    const auto& other = nodes[i]->store().entries();
    ASSERT_EQ(other.size(), reference.size()) << "node " << i;
    for (const auto& [key, entry] : reference) {
      auto it = other.find(key);
      ASSERT_NE(it, other.end()) << key;
      EXPECT_EQ(it->second.tombstone, entry.tombstone) << key;
      if (!entry.tombstone) {
        EXPECT_TRUE(it->second.value.Equals(entry.value)) << key;
      }
      EXPECT_EQ(it->second.version.Compare(entry.version),
                VersionVector::Order::kEqual)
          << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvergenceTest,
    ::testing::Values(SweepParam{2, 4, 50, 11}, SweepParam{3, 8, 100, 12},
                      SweepParam{5, 16, 200, 13}, SweepParam{8, 8, 300, 14},
                      SweepParam{4, 2, 150, 15}),  // high-conflict: few keys
    ParamName);

// Sync is idempotent and commutative at the pair level: syncing (a,b) then
// (b,a) ships nothing the second time, whatever the histories.
TEST(SyncAlgebraTest, PairSyncIdempotent) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Platform platform;
    SyncNode* a = platform.AddNode("a", Tier::kDevice);
    SyncNode* b = platform.AddNode("b", Tier::kDevice);
    for (int i = 0; i < 20; ++i) {
      (rng.Chance(0.5) ? a : b)
          ->Put("k" + std::to_string(rng.Uniform(0, 5)),
                Value(rng.Uniform(0, 100)));
    }
    platform.SyncPair(a->id(), b->id());
    SyncStats again = platform.SyncPair(b->id(), a->id());
    EXPECT_EQ(again.entries_sent, 0u) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ofi::edge
