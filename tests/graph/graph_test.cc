#include <gtest/gtest.h>

#include "graph/traversal.h"

namespace ofi::graph {
namespace {

using sql::Value;

/// Builds the Example-1-style call graph: persons with cid property and
/// "call" edges carrying a time property.
class CallGraphTest : public ::testing::Test {
 protected:
  CallGraphTest() {
    for (int i = 0; i < 6; ++i) {
      people_.push_back(graph_.AddVertex(
          "person", {{"cid", Value(11111 + i)}, {"phone", Value(5550000 + i)}}));
    }
    // Person 0 receives 4 recent calls, person 1 receives 2 old calls.
    for (int i = 1; i <= 4; ++i) {
      AddCall(people_[i], people_[0], 1000 + i);
    }
    AddCall(people_[2], people_[1], 10);
    AddCall(people_[3], people_[1], 20);
  }

  void AddCall(VertexId from, VertexId to, int64_t ts) {
    auto e = graph_.AddEdge(from, to, "call", {{"time", Value::Timestamp(ts)}});
    ASSERT_TRUE(e.ok());
  }

  PropertyGraph graph_;
  std::vector<VertexId> people_;
};

TEST_F(CallGraphTest, BasicCounts) {
  EXPECT_EQ(graph_.num_vertices(), 6u);
  EXPECT_EQ(graph_.num_edges(), 6u);
}

TEST_F(CallGraphTest, PropertyIndexLookup) {
  auto hits = graph_.VerticesByProperty("cid", Value(11113));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], people_[2]);
}

TEST_F(CallGraphTest, EdgeLabelsFiltered) {
  ASSERT_TRUE(graph_.AddEdge(people_[0], people_[1], "knows").ok());
  EXPECT_EQ(graph_.OutEdges(people_[0], "call").size(), 0u);
  EXPECT_EQ(graph_.OutEdges(people_[0], "knows").size(), 1u);
  EXPECT_EQ(graph_.InEdges(people_[0], "call").size(), 4u);
}

TEST_F(CallGraphTest, GremlinHasAndCount) {
  GraphTraversalSource g(&graph_);
  EXPECT_EQ(g.V().Has("cid", Value(11111)).Count(), 1);
  EXPECT_EQ(g.V().HasLabel("person").Count(), 6);
  EXPECT_EQ(g.V().HasLabel("vehicle").Count(), 0);
}

// Example 1's graph fragment:
// g.V().has(cid,11111).inE(call).has(time, gt(cutoff)).count().gt(3)
TEST_F(CallGraphTest, Example1SuspectPattern) {
  GraphTraversalSource g(&graph_);
  auto recent_callers = [&](Traversal t) {
    return std::move(t.InE("call").Has("time", Gp::Gt(Value::Timestamp(1000))));
  };
  // Person with cid 11111 has 4 recent incoming calls -> suspect.
  Traversal suspects =
      g.V().Where(recent_callers, Gp::Gt(Value(3)));
  EXPECT_EQ(suspects.Count(), 1);
  EXPECT_EQ(suspects.VertexIds()[0], people_[0]);

  // Person 11112's calls are old: not a suspect.
  Traversal t2 = g.V().Has("cid", Value(11112)).Where(recent_callers, Gp::Gt(Value(3)));
  EXPECT_EQ(t2.Count(), 0);
}

TEST_F(CallGraphTest, MoveStepsOutInAndValues) {
  GraphTraversalSource g(&graph_);
  // Who called person 0?
  auto callers = g.V().Has("cid", Value(11111)).In("call").Dedup();
  EXPECT_EQ(callers.Count(), 4);
  auto phones = g.V().Has("cid", Value(11111)).PropertyValues("phone");
  ASSERT_EQ(phones.Values().size(), 1u);
  EXPECT_EQ(phones.Values()[0].AsInt(), 5550000);
}

TEST_F(CallGraphTest, TraversalToTableForCrossModelJoin) {
  GraphTraversalSource g(&graph_);
  sql::Table t = g.V().HasLabel("person").Limit(3).ToTable({"cid"});
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.schema().num_columns(), 2u);
}

TEST_F(CallGraphTest, RelationalViews) {
  sql::Table verts = graph_.VerticesAsTable({"cid"});
  sql::Table edges = graph_.EdgesAsTable({"time"});
  EXPECT_EQ(verts.num_rows(), 6u);
  EXPECT_EQ(edges.num_rows(), 6u);
  EXPECT_TRUE(edges.schema().IndexOf("src").ok());
}

TEST(GraphAlgorithmsTest, ShortestPath) {
  PropertyGraph g;
  std::vector<VertexId> v;
  for (int i = 0; i < 5; ++i) v.push_back(g.AddVertex("n"));
  ASSERT_TRUE(g.AddEdge(v[0], v[1], "e").ok());
  ASSERT_TRUE(g.AddEdge(v[1], v[2], "e").ok());
  ASSERT_TRUE(g.AddEdge(v[2], v[4], "e").ok());
  ASSERT_TRUE(g.AddEdge(v[0], v[3], "e").ok());
  ASSERT_TRUE(g.AddEdge(v[3], v[4], "e").ok());
  auto path = g.ShortestPath(v[0], v[4]);
  EXPECT_EQ(path.size(), 3u);  // 0 -> 3 -> 4 (or 0->1->2->4 is longer)
  EXPECT_TRUE(g.ShortestPath(v[4], v[0]).empty());  // directed
}

TEST(GraphAlgorithmsTest, PageRankSumsToOneAndRanksHub) {
  PropertyGraph g;
  VertexId hub = g.AddVertex("hub");
  std::vector<VertexId> spokes;
  for (int i = 0; i < 9; ++i) {
    VertexId s = g.AddVertex("spoke");
    spokes.push_back(s);
    ASSERT_TRUE(g.AddEdge(s, hub, "link").ok());
  }
  auto rank = g.PageRank(30);
  double total = 0;
  for (const auto& [id, r] : rank) total += r;
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (VertexId s : spokes) EXPECT_GT(rank[hub], rank[s]);
}

TEST(GraphAlgorithmsTest, ConnectedComponents) {
  PropertyGraph g;
  VertexId a = g.AddVertex("n"), b = g.AddVertex("n");
  VertexId c = g.AddVertex("n"), d = g.AddVertex("n");
  ASSERT_TRUE(g.AddEdge(a, b, "e").ok());
  ASSERT_TRUE(g.AddEdge(d, c, "e").ok());
  auto comp = g.ConnectedComponents();
  EXPECT_EQ(comp[a], comp[b]);
  EXPECT_EQ(comp[c], comp[d]);
  EXPECT_NE(comp[a], comp[c]);
}

TEST(GraphAlgorithmsTest, BothAndRepeatSteps) {
  PropertyGraph g;
  // Chain a -> b -> c -> d plus a side edge e -> b.
  std::vector<VertexId> v;
  for (int i = 0; i < 5; ++i) v.push_back(g.AddVertex("n"));
  ASSERT_TRUE(g.AddEdge(v[0], v[1], "knows").ok());
  ASSERT_TRUE(g.AddEdge(v[1], v[2], "knows").ok());
  ASSERT_TRUE(g.AddEdge(v[2], v[3], "knows").ok());
  ASSERT_TRUE(g.AddEdge(v[4], v[1], "knows").ok());

  // Both from b: out {c}, in {a, e}.
  Traversal both(&g, {v[1]});
  EXPECT_EQ(both.Both("knows").Count(), 3);

  // Repeat 2 hops from a: a -> b -> c.
  Traversal two_hops(&g, {v[0]});
  two_hops.Repeat("knows", 2);
  ASSERT_EQ(two_hops.Count(), 1);
  EXPECT_EQ(two_hops.VertexIds()[0], v[2]);

  // 3 hops reach d; 4 hops reach nothing.
  Traversal three(&g, {v[0]});
  EXPECT_EQ(three.Repeat("knows", 3).Count(), 1);
  Traversal four(&g, {v[0]});
  EXPECT_EQ(four.Repeat("knows", 4).Count(), 0);
}

TEST(GraphAlgorithmsTest, RepeatDedupsCycles) {
  PropertyGraph g;
  VertexId a = g.AddVertex("n"), b = g.AddVertex("n");
  ASSERT_TRUE(g.AddEdge(a, b, "e").ok());
  ASSERT_TRUE(g.AddEdge(b, a, "e").ok());
  Traversal t(&g, {a});
  // Even hops land back on {a}; dedup keeps the frontier size 1.
  EXPECT_EQ(t.Repeat("e", 10).Count(), 1);
}

TEST(GraphTest, EdgeToUnknownVertexRejected) {
  PropertyGraph g;
  VertexId a = g.AddVertex("n");
  EXPECT_TRUE(g.AddEdge(a, 999, "e").status().IsNotFound());
  EXPECT_TRUE(g.AddEdge(999, a, "e").status().IsNotFound());
}

}  // namespace
}  // namespace ofi::graph
