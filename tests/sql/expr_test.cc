#include "sql/expr.h"

#include <gtest/gtest.h>

namespace ofi::sql {
namespace {

Schema TwoColSchema() {
  return Schema({Column{"a", TypeId::kInt64, "t"}, Column{"b", TypeId::kString, "t"},
                 Column{"c", TypeId::kDouble, "t"}});
}

Row MakeRow(int64_t a, const char* b, double c) {
  return {Value(a), Value(b), Value(c)};
}

TEST(ValueTest, CompareAcrossNumericTypes) {
  EXPECT_EQ(Value(1).Compare(Value(1.0)), 0);
  EXPECT_LT(Value(1).Compare(Value(2)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2)), 0);
  EXPECT_EQ(Value::Timestamp(5).Compare(Value(5)), 0);
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null().Compare(Value(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(Value(7).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value(std::string("x")).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(true).ToString(), "TRUE");
}

TEST(ExprTest, ComparisonEval) {
  Schema s = TwoColSchema();
  auto e = Expr::Gt("a", Value(10));
  ASSERT_TRUE(e->Bind(s).ok());
  EXPECT_TRUE(e->Eval(MakeRow(11, "x", 0)).AsBool());
  EXPECT_FALSE(e->Eval(MakeRow(10, "x", 0)).AsBool());
}

TEST(ExprTest, QualifiedColumnLookup) {
  Schema s = TwoColSchema();
  auto e = Expr::Eq("t.b", Value("hello"));
  ASSERT_TRUE(e->Bind(s).ok());
  EXPECT_TRUE(e->Eval(MakeRow(0, "hello", 0)).AsBool());
}

TEST(ExprTest, ThreeValuedLogicWithNull) {
  Schema s = TwoColSchema();
  auto cmp = Expr::Gt("a", Value(0));
  ASSERT_TRUE(cmp->Bind(s).ok());
  Row null_row = {Value::Null(), Value("x"), Value(1.0)};
  EXPECT_TRUE(cmp->Eval(null_row).is_null());

  // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE.
  auto and_false = Expr::And(cmp, Expr::Literal(Value(false)));
  auto or_true = Expr::Or(cmp, Expr::Literal(Value(true)));
  ASSERT_TRUE(and_false->Bind(s).ok());
  ASSERT_TRUE(or_true->Bind(s).ok());
  EXPECT_FALSE(and_false->Eval(null_row).AsBool());
  EXPECT_TRUE(or_true->Eval(null_row).AsBool());
}

TEST(ExprTest, ArithmeticIntAndDouble) {
  Schema s = TwoColSchema();
  auto sum = Expr::Arith(ArithOp::kAdd, Expr::ColumnRef("a"), Expr::Literal(Value(5)));
  ASSERT_TRUE(sum->Bind(s).ok());
  EXPECT_EQ(sum->Eval(MakeRow(2, "x", 0)).AsInt(), 7);

  auto div = Expr::Arith(ArithOp::kDiv, Expr::ColumnRef("a"), Expr::Literal(Value(0)));
  ASSERT_TRUE(div->Bind(s).ok());
  EXPECT_TRUE(div->Eval(MakeRow(2, "x", 0)).is_null());  // div by zero -> NULL
}

TEST(ExprTest, InListAndIsNull) {
  Schema s = TwoColSchema();
  auto in = Expr::InList(Expr::ColumnRef("a"), {Value(1), Value(3), Value(5)});
  ASSERT_TRUE(in->Bind(s).ok());
  EXPECT_TRUE(in->Eval(MakeRow(3, "x", 0)).AsBool());
  EXPECT_FALSE(in->Eval(MakeRow(2, "x", 0)).AsBool());

  auto isnull = Expr::IsNull(Expr::ColumnRef("a"));
  ASSERT_TRUE(isnull->Bind(s).ok());
  EXPECT_FALSE(isnull->Eval(MakeRow(3, "x", 0)).AsBool());
  Row null_row = {Value::Null(), Value("x"), Value(1.0)};
  EXPECT_TRUE(isnull->Eval(null_row).AsBool());
}

// --- Canonical text: the property the plan store depends on -----------------
TEST(ExprCanonicalTest, PredicateOrderDoesNotChangeText) {
  auto p1 = Expr::And(Expr::Gt("t.a", Value(10)), Expr::Eq("t.b", Value("x")));
  auto p2 = Expr::And(Expr::Eq("t.b", Value("x")), Expr::Gt("t.a", Value(10)));
  EXPECT_EQ(p1->ToCanonicalString(), p2->ToCanonicalString());
}

TEST(ExprCanonicalTest, SymmetricEqualityOrderIndependent) {
  auto p1 = Expr::EqCols("t1.a1", "t2.a2");
  auto p2 = Expr::EqCols("t2.a2", "t1.a1");
  EXPECT_EQ(p1->ToCanonicalString(), p2->ToCanonicalString());
  EXPECT_EQ(p1->ToCanonicalString(), "t1.a1=t2.a2");
}

TEST(ExprCanonicalTest, NestedAndFlattens) {
  auto a = Expr::Gt("x", Value(1));
  auto b = Expr::Gt("y", Value(2));
  auto c = Expr::Gt("z", Value(3));
  auto left = Expr::And(Expr::And(a, b), c);
  auto right = Expr::And(c, Expr::And(b, a));
  EXPECT_EQ(left->ToCanonicalString(), right->ToCanonicalString());
}

TEST(ExprCanonicalTest, InListSorted) {
  auto p1 = Expr::InList(Expr::ColumnRef("a"), {Value(3), Value(1)});
  auto p2 = Expr::InList(Expr::ColumnRef("a"), {Value(1), Value(3)});
  EXPECT_EQ(p1->ToCanonicalString(), p2->ToCanonicalString());
}

TEST(ExprTest, CollectColumns) {
  auto p = Expr::And(Expr::Gt("t.a", Value(1)), Expr::EqCols("t.b", "u.c"));
  std::vector<std::string> cols;
  p->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 3u);
}

TEST(SchemaTest, AmbiguousBareNameRejected) {
  Schema s({Column{"a", TypeId::kInt64, "t1"}, Column{"a", TypeId::kInt64, "t2"}});
  EXPECT_TRUE(s.IndexOf("a").status().IsAlreadyExists());
  EXPECT_TRUE(s.IndexOf("t1.a").ok());
  EXPECT_TRUE(s.IndexOf("t2.a").ok());
}

TEST(SchemaTest, ConcatAndQualify) {
  Schema a({Column{"x", TypeId::kInt64, ""}});
  Schema b({Column{"y", TypeId::kInt64, ""}});
  Schema c = a.Concat(b).WithQualifier("j");
  EXPECT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.column(0).QualifiedName(), "j.x");
}

}  // namespace
}  // namespace ofi::sql
