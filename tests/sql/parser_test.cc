#include "sql/parser.h"

#include <gtest/gtest.h>

namespace ofi::sql {
namespace {

Statement MustParse(const std::string& text) {
  auto r = Parse(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).ValueOrDie() : Statement{};
}

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a.b, 'it''s', 3.14 FROM t -- comment\nWHERE x<>2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "a.b");
  EXPECT_EQ((*tokens)[3].type, TokenType::kString);
  EXPECT_EQ((*tokens)[3].text, "it's");
  EXPECT_EQ((*tokens)[5].type, TokenType::kFloat);
  // The comment is skipped entirely.
  bool has_where = false;
  for (const auto& t : *tokens) has_where |= t.IsKeyword("WHERE");
  EXPECT_TRUE(has_where);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

TEST(ParserTest, SimpleSelect) {
  Statement s = MustParse("SELECT a, b FROM t WHERE a > 10");
  ASSERT_EQ(s.kind, StatementKind::kSelect);
  EXPECT_EQ(s.select->items.size(), 2u);
  EXPECT_EQ(s.select->from.size(), 1u);
  EXPECT_EQ(s.select->from[0].table, "t");
  ASSERT_NE(s.select->where, nullptr);
  EXPECT_EQ(s.select->where->ToCanonicalString(), "a>10");
}

TEST(ParserTest, SelectStarWithAliasAndSemicolon) {
  Statement s = MustParse("SELECT * FROM orders o;");
  EXPECT_TRUE(s.select->select_star);
  EXPECT_EQ(s.select->from[0].alias, "o");
}

TEST(ParserTest, CommaJoinAndQualifiedColumns) {
  Statement s = MustParse(
      "SELECT t1.a1 FROM OLAP.T1 t1, OLAP.T2 t2 "
      "WHERE t1.a1 = t2.a2 AND t1.b1 > 10");
  EXPECT_EQ(s.select->from.size(), 2u);
  EXPECT_EQ(s.select->from[0].table, "OLAP.T1");
}

TEST(ParserTest, ExplicitJoins) {
  Statement s = MustParse(
      "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.y = c.z");
  ASSERT_EQ(s.select->joins.size(), 2u);
  EXPECT_EQ(s.select->joins[0].type, JoinType::kInner);
  EXPECT_EQ(s.select->joins[1].type, JoinType::kLeftOuter);
  EXPECT_NE(s.select->joins[1].on, nullptr);
}

TEST(ParserTest, AggregatesGroupByHaving) {
  Statement s = MustParse(
      "SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) "
      "FROM sales GROUP BY region HAVING COUNT(*) > 5");
  ASSERT_EQ(s.select->items.size(), 4u);
  EXPECT_FALSE(s.select->items[0].is_aggregate);
  EXPECT_TRUE(s.select->items[1].is_aggregate);
  EXPECT_EQ(s.select->items[1].name, "n");
  EXPECT_EQ(s.select->items[3].name, "avg");
  EXPECT_EQ(s.select->group_by, std::vector<std::string>{"region"});
  EXPECT_NE(s.select->having, nullptr);
}

TEST(ParserTest, OrderLimitOffset) {
  Statement s = MustParse(
      "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5");
  ASSERT_EQ(s.select->order_by.size(), 2u);
  EXPECT_FALSE(s.select->order_by[0].ascending);
  EXPECT_TRUE(s.select->order_by[1].ascending);
  EXPECT_EQ(*s.select->limit, 10u);
  EXPECT_EQ(s.select->offset, 5u);
}

TEST(ParserTest, SetOperations) {
  Statement s =
      MustParse("SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM v");
  ASSERT_TRUE(s.select->set_op.has_value());
  EXPECT_EQ(*s.select->set_op, SetOpType::kUnionAll);
  ASSERT_NE(s.select->set_rhs, nullptr);
  EXPECT_EQ(*s.select->set_rhs->set_op, SetOpType::kExcept);
}

TEST(ParserTest, InsertMultipleRows) {
  Statement s = MustParse(
      "INSERT INTO t VALUES (1, 'a', 2.5, TRUE, NULL), (-2, 'b', 0.0, FALSE, 3)");
  ASSERT_EQ(s.kind, StatementKind::kInsert);
  ASSERT_EQ(s.insert->rows.size(), 2u);
  EXPECT_EQ(s.insert->rows[0][0].AsInt(), 1);
  EXPECT_EQ(s.insert->rows[1][0].AsInt(), -2);
  EXPECT_TRUE(s.insert->rows[0][4].is_null());
}

TEST(ParserTest, CreateAndDropTable) {
  Statement s = MustParse(
      "CREATE TABLE t (id BIGINT, name VARCHAR(32), price DOUBLE, "
      "live BOOLEAN, seen TIMESTAMP)");
  ASSERT_EQ(s.kind, StatementKind::kCreateTable);
  EXPECT_EQ(s.create_table->schema.num_columns(), 5u);
  EXPECT_EQ(s.create_table->schema.column(1).type, TypeId::kString);
  EXPECT_EQ(s.create_table->schema.column(4).type, TypeId::kTimestamp);

  Statement d = MustParse("DROP TABLE t");
  ASSERT_EQ(d.kind, StatementKind::kDropTable);
  EXPECT_EQ(d.drop_table->table, "t");
}

TEST(ParserTest, ExpressionForms) {
  auto e1 = ParseExpression("a IN (1, 2, 3)");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ((*e1)->kind(), ExprKind::kInList);

  auto e2 = ParseExpression("x BETWEEN 5 AND 10");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->ToCanonicalString(), "x<=10 AND x>=5");

  auto e3 = ParseExpression("NOT a IS NULL");
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ((*e3)->kind(), ExprKind::kNot);

  auto e4 = ParseExpression("a + 2 * b - 1 > c / 4");
  ASSERT_TRUE(e4.ok());

  auto e5 = ParseExpression("(a = 1 OR b = 2) AND NOT c IN (7)");
  ASSERT_TRUE(e5.ok());
}

TEST(ParserTest, ErrorMessages) {
  EXPECT_FALSE(Parse("SELECT").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("FROB x").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t garbage trailing").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (a WIBBLE)").ok());
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM t").ok());
}

}  // namespace
}  // namespace ofi::sql
