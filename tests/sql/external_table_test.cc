#include "sql/external_table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ofi::sql {
namespace {

Schema PeopleSchema() {
  return Schema({Column{"id", TypeId::kInt64, ""},
                 Column{"name", TypeId::kString, ""},
                 Column{"score", TypeId::kDouble, ""},
                 Column{"active", TypeId::kBool, ""}});
}

TEST(CsvTest, BasicParseWithHeader) {
  std::string csv =
      "id,name,score,active\n"
      "1,ada,9.5,true\n"
      "2,grace,8.25,false\n";
  auto t = ParseCsv(csv, PeopleSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->rows()[0][1].AsString(), "ada");
  EXPECT_DOUBLE_EQ(t->rows()[1][2].AsDouble(), 8.25);
  EXPECT_FALSE(t->rows()[1][3].AsBool());
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  std::string csv =
      "id,name,score,active\n"
      "1,\"smith, jr. said \"\"hi\"\"\",1.0,true\n";
  auto t = ParseCsv(csv, PeopleSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->rows()[0][1].AsString(), "smith, jr. said \"hi\"");
}

TEST(CsvTest, NullTokensAndEmptyFields) {
  std::string csv = "id,name,score,active\n3,\\N,,true\n";
  auto t = ParseCsv(csv, PeopleSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->rows()[0][1].is_null());
  EXPECT_TRUE(t->rows()[0][2].is_null());
}

TEST(CsvTest, TypeErrorsReportedWithLocation) {
  std::string csv = "id,name,score,active\nxx,ada,1.0,true\n";
  auto t = ParseCsv(csv, PeopleSchema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(t.status().message().find("column id"), std::string::npos);
}

TEST(CsvTest, MaxErrorsTolerance) {
  std::string csv =
      "id,name,score,active\n"
      "bad,x,1.0,true\n"
      "2,ok,2.0,true\n"
      "3,ok,3.0,maybe\n";
  CsvOptions opts;
  opts.max_errors = 2;
  auto t = ParseCsv(csv, PeopleSchema(), opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 1u);  // only the clean row survives

  CsvOptions strict;
  strict.max_errors = 0;
  EXPECT_FALSE(ParseCsv(csv, PeopleSchema(), strict).ok());
}

TEST(CsvTest, ArityMismatchCounted) {
  std::string csv = "id,name,score,active\n1,ada\n";
  auto t = ParseCsv(csv, PeopleSchema());
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("expected 4 fields"), std::string::npos);
}

TEST(CsvTest, NoHeaderModeAndCrlf) {
  std::string csv = "7,bob,1.5,true\r\n8,eve,2.5,false\r\n";
  CsvOptions opts;
  opts.has_header = false;
  auto t = ParseCsv(csv, PeopleSchema(), opts);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->rows()[1][1].AsString(), "eve");
}

TEST(CsvTest, RoundTrip) {
  Table t{PeopleSchema()};
  ASSERT_TRUE(t.Append({Value(1), Value("a,b"), Value(1.5), Value(true)}).ok());
  ASSERT_TRUE(t.Append({Value(2), Value::Null(), Value(2.5), Value(false)}).ok());
  std::string csv = WriteCsv(t);
  auto back = ParseCsv(csv, PeopleSchema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->rows()[0][1].AsString(), "a,b");
  EXPECT_TRUE(back->rows()[1][1].is_null());
}

TEST(CsvTest, FileLoadAndMissingFile) {
  std::string path = testing::TempDir() + "/ofi_csv_test.csv";
  {
    std::ofstream out(path);
    out << "id,name,score,active\n5,file,0.5,true\n";
  }
  auto t = LoadCsvTable(path, PeopleSchema());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->rows()[0][1].AsString(), "file");
  std::remove(path.c_str());

  EXPECT_TRUE(LoadCsvTable("/no/such/file.csv", PeopleSchema())
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace ofi::sql
