#include "sql/executor.h"

#include <gtest/gtest.h>

namespace ofi::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    // t1(a1, b1): 10 rows; t2(a2, c2): 5 rows keyed to join.
    Table t1{Schema({Column{"a1", TypeId::kInt64, "t1"},
                     Column{"b1", TypeId::kInt64, "t1"}})};
    for (int64_t i = 0; i < 10; ++i) {
      EXPECT_TRUE(t1.Append({Value(i % 5), Value(i * 10)}).ok());
    }
    catalog_.Register("t1", std::move(t1));

    Table t2{Schema({Column{"a2", TypeId::kInt64, "t2"},
                     Column{"c2", TypeId::kString, "t2"}})};
    for (int64_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(t2.Append({Value(i), Value("name" + std::to_string(i))}).ok());
    }
    catalog_.Register("t2", std::move(t2));
  }

  Table MustExecute(const PlanPtr& plan) {
    Executor exec(&catalog_);
    auto r = exec.Execute(plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).ValueOrDie() : Table{};
  }

  Catalog catalog_;
};

TEST_F(ExecutorTest, ScanAll) {
  EXPECT_EQ(MustExecute(MakeScan("t1")).num_rows(), 10u);
}

TEST_F(ExecutorTest, ScanWithPredicate) {
  auto plan = MakeScan("t1", Expr::Gt("b1", Value(40)));
  EXPECT_EQ(MustExecute(plan).num_rows(), 5u);
}

TEST_F(ExecutorTest, ScanMissingTableFails) {
  Executor exec(&catalog_);
  EXPECT_TRUE(exec.Execute(MakeScan("nope")).status().IsNotFound());
}

TEST_F(ExecutorTest, FilterOnTopOfScan) {
  auto plan = MakeFilter(MakeScan("t1"), Expr::Eq("a1", Value(2)));
  EXPECT_EQ(MustExecute(plan).num_rows(), 2u);
}

TEST_F(ExecutorTest, ProjectComputesExpressions) {
  auto plan = MakeProject(
      MakeScan("t2"),
      {Expr::ColumnRef("a2"),
       Expr::Arith(ArithOp::kMul, Expr::ColumnRef("a2"), Expr::Literal(Value(2)))},
      {"a2", "doubled"});
  Table out = MustExecute(plan);
  ASSERT_EQ(out.num_rows(), 5u);
  EXPECT_TRUE(out.schema().IndexOf("doubled").ok());
  for (const auto& row : out.rows()) {
    EXPECT_EQ(row[1].AsInt(), row[0].AsInt() * 2);
  }
}

TEST_F(ExecutorTest, HashJoinOnEquiPredicate) {
  auto plan = MakeJoin(MakeScan("t1"), MakeScan("t2"), Expr::EqCols("a1", "a2"));
  Table out = MustExecute(plan);
  // Every t1 row (a1 in 0..4, twice each) matches exactly one t2 row.
  EXPECT_EQ(out.num_rows(), 10u);
  EXPECT_EQ(out.schema().num_columns(), 4u);
}

TEST_F(ExecutorTest, JoinWithResidualPredicate) {
  auto pred = Expr::And(Expr::EqCols("a1", "a2"), Expr::Gt("b1", Value(40)));
  auto plan = MakeJoin(MakeScan("t1"), MakeScan("t2"), pred);
  EXPECT_EQ(MustExecute(plan).num_rows(), 5u);
}

TEST_F(ExecutorTest, LeftOuterJoinKeepsUnmatched) {
  // t2 row with a2 = 99 has no partner in t1... reversed: t1 has a1 in 0..4;
  // join t2 (left) with filtered t1 (a1 > 3): only a2=4 matches.
  auto right = MakeScan("t1", Expr::Gt("a1", Value(3)));
  auto plan = MakeJoin(MakeScan("t2"), right, Expr::EqCols("a2", "a1"),
                       JoinType::kLeftOuter);
  Table out = MustExecute(plan);
  // a2=4 matches 2 t1 rows, others unmatched -> 4 null-padded + 2 = 6.
  EXPECT_EQ(out.num_rows(), 6u);
  size_t nulls = 0;
  for (const auto& row : out.rows()) nulls += row[2].is_null();
  EXPECT_EQ(nulls, 4u);
}

TEST_F(ExecutorTest, SemiJoinEmitsLeftOnceEach) {
  auto plan = MakeJoin(MakeScan("t2"), MakeScan("t1"), Expr::EqCols("a2", "a1"),
                       JoinType::kSemi);
  Table out = MustExecute(plan);
  EXPECT_EQ(out.num_rows(), 5u);               // each t2 row matched
  EXPECT_EQ(out.schema().num_columns(), 2u);   // left schema only
}

TEST_F(ExecutorTest, NestedLoopForNonEquiJoin) {
  auto plan = MakeJoin(MakeScan("t2"), MakeScan("t2", nullptr, "u"),
                       Expr::Compare(CompareOp::kLt, Expr::ColumnRef("t2.a2"),
                                     Expr::ColumnRef("u.a2")));
  EXPECT_EQ(MustExecute(plan).num_rows(), 10u);  // C(5,2)
}

TEST_F(ExecutorTest, AggregateGroupBy) {
  auto plan = MakeAggregate(
      MakeScan("t1"), {"a1"},
      {AggSpec{AggFunc::kCount, nullptr, "n"},
       AggSpec{AggFunc::kSum, Expr::ColumnRef("b1"), "total"},
       AggSpec{AggFunc::kMax, Expr::ColumnRef("b1"), "mx"}});
  Table out = MustExecute(plan);
  EXPECT_EQ(out.num_rows(), 5u);
  for (const auto& row : out.rows()) {
    EXPECT_EQ(row[1].AsInt(), 2);  // two rows per group
  }
}

TEST_F(ExecutorTest, GlobalAggregateOnEmptyInput) {
  auto plan = MakeAggregate(MakeScan("t1", Expr::Gt("b1", Value(10000))), {},
                            {AggSpec{AggFunc::kCount, nullptr, "n"},
                             AggSpec{AggFunc::kSum, Expr::ColumnRef("b1"), "s"}});
  Table out = MustExecute(plan);
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 0);
  EXPECT_TRUE(out.rows()[0][1].is_null());
}

TEST_F(ExecutorTest, AvgSkipsNulls) {
  Table t{Schema({Column{"v", TypeId::kInt64, ""}})};
  ASSERT_TRUE(t.Append({Value(10)}).ok());
  ASSERT_TRUE(t.Append({Value::Null()}).ok());
  ASSERT_TRUE(t.Append({Value(20)}).ok());
  catalog_.Register("nulls", std::move(t));
  auto plan = MakeAggregate(MakeScan("nulls"), {},
                            {AggSpec{AggFunc::kAvg, Expr::ColumnRef("v"), "a"},
                             AggSpec{AggFunc::kCount, Expr::ColumnRef("v"), "n"}});
  Table out = MustExecute(plan);
  EXPECT_DOUBLE_EQ(out.rows()[0][0].AsDouble(), 15.0);
  EXPECT_EQ(out.rows()[0][1].AsInt(), 2);  // COUNT(v) skips NULL
}

TEST_F(ExecutorTest, SortAscendingDescending) {
  auto plan = MakeSort(MakeScan("t1"),
                       {SortKey{Expr::ColumnRef("a1"), true},
                        SortKey{Expr::ColumnRef("b1"), false}});
  Table out = MustExecute(plan);
  for (size_t i = 1; i < out.num_rows(); ++i) {
    int64_t prev_a = out.rows()[i - 1][0].AsInt();
    int64_t cur_a = out.rows()[i][0].AsInt();
    EXPECT_LE(prev_a, cur_a);
    if (prev_a == cur_a) {
      EXPECT_GE(out.rows()[i - 1][1].AsInt(), out.rows()[i][1].AsInt());
    }
  }
}

TEST_F(ExecutorTest, LimitAndOffset) {
  auto plan = MakeLimit(MakeSort(MakeScan("t1"),
                                 {SortKey{Expr::ColumnRef("b1"), true}}),
                        3, 2);
  Table out = MustExecute(plan);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.rows()[0][1].AsInt(), 20);
}

TEST_F(ExecutorTest, SetOperations) {
  auto low = MakeScan("t2", Expr::Lt("a2", Value(3)));   // 0,1,2
  auto high = MakeScan("t2", Expr::Gt("a2", Value(1)));  // 2,3,4
  EXPECT_EQ(MustExecute(MakeSetOp(SetOpType::kUnionAll, low, high)).num_rows(), 6u);
  EXPECT_EQ(MustExecute(MakeSetOp(SetOpType::kUnion, low, high)).num_rows(), 5u);
  EXPECT_EQ(MustExecute(MakeSetOp(SetOpType::kIntersect, low, high)).num_rows(), 1u);
  EXPECT_EQ(MustExecute(MakeSetOp(SetOpType::kExcept, low, high)).num_rows(), 2u);
}

TEST_F(ExecutorTest, ValuesNodeWithAlias) {
  Table inline_table{Schema({Column{"x", TypeId::kInt64, ""}})};
  ASSERT_TRUE(inline_table.Append({Value(1)}).ok());
  auto plan = MakeValues(std::move(inline_table), "v");
  Table out = MustExecute(plan);
  EXPECT_TRUE(out.schema().IndexOf("v.x").ok());
}

TEST_F(ExecutorTest, ActualRowsRecordedOnEveryNode) {
  auto scan = MakeScan("t1", Expr::Gt("b1", Value(40)));
  auto join = MakeJoin(scan, MakeScan("t2"), Expr::EqCols("a1", "a2"));
  MustExecute(join);
  EXPECT_EQ(scan->actual_rows, 5);
  EXPECT_EQ(join->actual_rows, 5);
}

TEST_F(ExecutorTest, NullJoinKeysNeverMatch) {
  Table l{Schema({Column{"k", TypeId::kInt64, "l"}})};
  ASSERT_TRUE(l.Append({Value::Null()}).ok());
  ASSERT_TRUE(l.Append({Value(1)}).ok());
  Table r{Schema({Column{"k", TypeId::kInt64, "r"}})};
  ASSERT_TRUE(r.Append({Value::Null()}).ok());
  ASSERT_TRUE(r.Append({Value(1)}).ok());
  catalog_.Register("l", std::move(l));
  catalog_.Register("r", std::move(r));
  auto plan = MakeJoin(MakeScan("l"), MakeScan("r"), Expr::EqCols("l.k", "r.k"));
  EXPECT_EQ(MustExecute(plan).num_rows(), 1u);
}

}  // namespace
}  // namespace ofi::sql
