/// \file bench_column_groupby.cc
/// \brief Experiment E17 — vectorized grouped aggregation. Two layers:
///
///  * storage: the GroupedAggregate hash kernel vs the old fallback
///    (materialize every row, then the row executor's partial aggregate),
///    serial vs morsel-parallel — the kernel touches only the referenced
///    columns and never builds a sql::Row;
///  * distributed: the same GROUP BY plan over a simulated 4-DN and 8-DN
///    cluster, grouped kernel vs forced materialize vs pure row path,
///    reported in simulated microseconds and column-chunks scanned.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>

#include "cluster/distributed_plan.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sql/executor.h"
#include "storage/column_store.h"

namespace {

using namespace ofi;  // NOLINT
using sql::AggFunc;
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

constexpr int64_t kRows = 1'000'000;
constexpr int64_t kGroups = 200;

/// Three columns so the materializing fallback pays for one more column
/// than the kernel (which reads only g and v).
Schema GroupSchema() {
  return Schema({Column{"g", TypeId::kInt64, ""},
                 Column{"v", TypeId::kInt64, ""},
                 Column{"pad", TypeId::kInt64, ""}});
}

storage::ColumnTable BuildTable() {
  storage::ColumnTable t(GroupSchema());
  Rng rng(17);
  for (int64_t i = 0; i < kRows; ++i) {
    (void)t.Append({Value(rng.Uniform(0, kGroups - 1)),
                    Value(rng.Uniform(1, 1000)), Value(i)});
  }
  t.Seal();
  return t;
}

std::vector<storage::GroupedAggSpec> KernelAggs() {
  return {{storage::GroupedAggOp::kCountStar, ""},
          {storage::GroupedAggOp::kSum, "v"}};
}

/// The executor-shaped fallback the kernel replaces: decode every selected
/// row into sql::Rows, then run the ordinary partial aggregate over them.
void MaterializeAndRowAgg(const storage::ColumnTable& t,
                          const std::vector<uint32_t>& all,
                          storage::ScanStats* stats = nullptr) {
  auto rows = t.MaterializeRows(all, stats);
  sql::Catalog catalog;
  catalog.Register("shard", sql::Table(t.schema(), std::move(*rows)));
  std::vector<sql::AggSpec> specs;
  specs.push_back(sql::AggSpec{AggFunc::kCount, nullptr, "n"});
  specs.push_back(sql::AggSpec{AggFunc::kSum, sql::Expr::ColumnRef("v"), "s"});
  sql::PlanPtr plan =
      sql::MakeAggregate(sql::MakeScan("shard"), {"g"}, std::move(specs));
  sql::Executor exec(&catalog);
  benchmark::DoNotOptimize(exec.Execute(plan));
}

void BM_GroupedKernelSerial(benchmark::State& state) {
  storage::ColumnTable t = BuildTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.GroupedAggregate({"g"}, KernelAggs()));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_GroupedKernelSerial)->Unit(benchmark::kMillisecond);

void BM_GroupedKernelMorselParallel(benchmark::State& state) {
  storage::ColumnTable t = BuildTable();
  storage::ScanOptions opts;
  opts.parallel = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.GroupedAggregate({"g"}, KernelAggs(), nullptr, opts));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_GroupedKernelMorselParallel)->Unit(benchmark::kMillisecond);

void BM_MaterializeRowAgg(benchmark::State& state) {
  storage::ColumnTable t = BuildTable();
  std::vector<uint32_t> all(t.sealed_rows());
  std::iota(all.begin(), all.end(), 0u);
  for (auto _ : state) MaterializeAndRowAgg(t, all);
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_MaterializeRowAgg)->Unit(benchmark::kMillisecond);

// --- Distributed layer -------------------------------------------------------

constexpr int64_t kClusterRows = 40'000;

cluster::Cluster* BuildCluster(int dns) {
  auto* c = new cluster::Cluster(dns, cluster::Protocol::kGtmLite);
  Schema schema({Column{"id", TypeId::kInt64, ""},
                 Column{"g", TypeId::kInt64, ""},
                 Column{"v", TypeId::kInt64, ""}});
  (void)c->CreateTable("sales", schema);
  Rng rng(29);
  for (int64_t i = 0; i < kClusterRows; ++i) {
    cluster::Txn t = c->Begin(cluster::TxnScope::kSingleShard);
    (void)t.Insert("sales", Value(i),
                   {Value(i), Value(rng.Uniform(0, kGroups - 1)),
                    Value(rng.Uniform(1, 1000))});
    (void)t.Commit();
  }
  (void)c->RegisterColumnar("sales");
  return c;
}

cluster::DistOpPtr GroupByPlan(cluster::ScanPath path) {
  std::vector<cluster::DistributedAgg> aggs{{AggFunc::kCount, "", "n"},
                                            {AggFunc::kSum, "v", "s"}};
  return cluster::MakeDistFinalAgg(
      cluster::MakeGather(
          cluster::MakeDistPartialAgg(
              cluster::MakeDistScan("sales", nullptr, path), {"g"}, aggs),
          /*gather_rows=*/false),
      {"g"}, aggs);
}

struct DistProbe {
  long long sim_us = 0;
  size_t chunks = 0;
  size_t rows_decoded = 0;
  double wall_ms = 0;
};

DistProbe RunDist(cluster::Cluster* c, cluster::ScanPath path,
                  bool force_materialize) {
  cluster::DistExecOptions opts;
  opts.use_columnar = path == cluster::ScanPath::kColumnar;
  opts.columnar_force_materialize = force_materialize;
  auto t0 = std::chrono::steady_clock::now();
  auto res = cluster::ExecuteDistPlan(c, GroupByPlan(path), opts);
  DistProbe p;
  p.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  if (res.ok()) {
    p.sim_us = static_cast<long long>(res->stats.sim_latency_us);
    p.chunks = res->stats.scan_stats.chunks_scanned;
    p.rows_decoded = res->stats.scan_stats.rows_decoded;
  }
  return p;
}

void PrintSummary() {
  printf("\n=== E17: vectorized grouped aggregation ===\n");
  storage::ColumnTable t = BuildTable();
  std::vector<uint32_t> all(t.sealed_rows());
  std::iota(all.begin(), all.end(), 0u);

  storage::ScanStats kstats;
  auto time_it = [](auto&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  double kernel_ms = time_it(
      [&] { (void)t.GroupedAggregate({"g"}, KernelAggs(), nullptr, {}, &kstats); });
  storage::ScanOptions par;
  par.parallel = true;
  double morsel_ms =
      time_it([&] { (void)t.GroupedAggregate({"g"}, KernelAggs(), nullptr, par); });
  storage::ScanStats mstats;
  double mat_ms = time_it([&] { MaterializeAndRowAgg(t, all, &mstats); });
  printf("storage (%lld rows, %lld groups):\n", (long long)kRows,
         (long long)kGroups);
  printf("  grouped kernel      %8.2f ms  (%zu column-chunks)\n", kernel_ms,
         kstats.chunks_scanned);
  printf("  kernel morsel-par   %8.2f ms  (%.1fx, %d workers)\n", morsel_ms,
         kernel_ms / std::max(morsel_ms, 0.01),
         common::ThreadPool::Shared().num_threads());
  printf("  materialize+rowagg  %8.2f ms  (%zu column-chunks, %.1fx slower)\n",
         mat_ms, mstats.chunks_scanned, mat_ms / std::max(kernel_ms, 0.01));

  printf("distributed GROUP BY (%lld rows):\n", (long long)kClusterRows);
  for (int dns : {4, 8}) {
    cluster::Cluster* c = BuildCluster(dns);
    DistProbe kernel = RunDist(c, cluster::ScanPath::kColumnar, false);
    DistProbe mat = RunDist(c, cluster::ScanPath::kColumnar, true);
    DistProbe row = RunDist(c, cluster::ScanPath::kRow, false);
    // The absolute sim time includes draining the load phase's insert
    // queue (shared per-DN resource); the paths differ only in the scan
    // statements, so report the delta against the kernel run.
    printf("  %d DNs  grouped-kernel sim=%6lld us chunks=%3zu decoded=%7zu\n",
           dns, kernel.sim_us, kernel.chunks, kernel.rows_decoded);
    printf("  %d DNs  materialize    sim=%6lld us chunks=%3zu decoded=%7zu "
           "(+%lld us)\n",
           dns, mat.sim_us, mat.chunks, mat.rows_decoded,
           mat.sim_us - kernel.sim_us);
    printf("  %d DNs  row path       sim=%6lld us (+%lld us)\n", dns,
           row.sim_us, row.sim_us - kernel.sim_us);
    delete c;
  }
  printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintSummary();
  return 0;
}
