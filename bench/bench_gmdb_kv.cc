/// \file bench_gmdb_kv.cc
/// \brief Experiment E8 — GMDB's headline §III-A claims at laptop scale:
/// microsecond-class in-memory KV operations, single-object transactions,
/// pub/sub fan-out, asynchronous checkpointing cost, and a billing-style
/// workload ("a single server using GMDB can support billing of millions of
/// subscriber accounts").
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "gmdb/cluster.h"

namespace {

using namespace ofi;        // NOLINT
using namespace ofi::gmdb;  // NOLINT
using sql::TypeId;
using sql::Value;

RecordSchemaPtr AccountSchema() {
  auto s = std::make_shared<RecordSchema>();
  s->name = "account";
  s->version = 1;
  s->primary_key = "msisdn";
  s->fields = {PrimitiveField("msisdn", TypeId::kString, Value("")),
               PrimitiveField("balance_cents", TypeId::kInt64, Value(0)),
               PrimitiveField("plan", TypeId::kString, Value("prepaid")),
               PrimitiveField("minutes_used", TypeId::kInt64, Value(0)),
               PrimitiveField("data_mb_used", TypeId::kInt64, Value(0))};
  return s;
}

std::unique_ptr<GmdbCluster> BillingCluster(int subscribers) {
  auto cluster = std::make_unique<GmdbCluster>(1);  // single server, per claim
  (void)cluster->SubmitSchema(AccountSchema());
  auto schema = *cluster->registry().Get("account", 1);
  for (int i = 0; i < subscribers; ++i) {
    auto obj = TreeObject::Defaults(*schema);
    (void)obj->SetPath("msisdn", Value("86-" + std::to_string(i)));
    (void)obj->SetPath("balance_cents", Value(100'000));
    (void)cluster->dn(0)->Put("account", std::to_string(i), obj, 1);
  }
  return cluster;
}

constexpr int kSubscribers = 100'000;

void BM_KvGet(benchmark::State& state) {
  auto cluster = BillingCluster(kSubscribers);
  Rng rng(1);
  for (auto _ : state) {
    std::string key = std::to_string(rng.Uniform(0, kSubscribers - 1));
    benchmark::DoNotOptimize(cluster->dn(0)->Get("account", key, 1));
  }
}
BENCHMARK(BM_KvGet);

void BM_KvDeltaPut(benchmark::State& state) {
  auto cluster = BillingCluster(kSubscribers);
  Rng rng(2);
  for (auto _ : state) {
    std::string key = std::to_string(rng.Uniform(0, kSubscribers - 1));
    Delta d;
    d.ops = {{"data_mb_used", Value(rng.Uniform(0, 100'000))}};
    benchmark::DoNotOptimize(cluster->dn(0)->ApplyDelta("account", key, d, 1));
  }
}
BENCHMARK(BM_KvDeltaPut);

/// A charging event: read-modify-write of balance + counters in one
/// single-object transaction (the only kind GMDB supports, §III-A).
void BM_BillingTransaction(benchmark::State& state) {
  auto cluster = BillingCluster(kSubscribers);
  Rng rng(3);
  for (auto _ : state) {
    std::string key = std::to_string(rng.Uniform(0, kSubscribers - 1));
    Status st = cluster->dn(0)->Transact("account", key, [&](TreeObject* o) {
      auto balance = o->GetPrimitive("balance_cents");
      if (!balance.ok()) return balance.status();
      OFI_RETURN_NOT_OK(o->SetPath("balance_cents", Value(balance->AsInt() - 5)));
      auto minutes = o->GetPrimitive("minutes_used");
      return o->SetPath("minutes_used", Value(minutes->AsInt() + 1));
    });
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_BillingTransaction);

void BM_Checkpoint(benchmark::State& state) {
  int subs = static_cast<int>(state.range(0));
  auto cluster = BillingCluster(subs);
  size_t bytes = 0;
  for (auto _ : state) {
    bytes = cluster->dn(0)->Checkpoint();
  }
  state.counters["ckpt_bytes"] = static_cast<double>(bytes);
  state.counters["objects"] = subs;
}
BENCHMARK(BM_Checkpoint)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_PubSubFanout(benchmark::State& state) {
  auto cluster = BillingCluster(1000);
  int subscribers = static_cast<int>(state.range(0));
  uint64_t delivered = 0;
  for (int i = 0; i < subscribers; ++i) {
    cluster->dn(0)->Subscribe("account", "42", 1,
                              [&](const std::string&, const Delta&, int) {
                                ++delivered;
                              });
  }
  Rng rng(4);
  for (auto _ : state) {
    Delta d;
    d.ops = {{"minutes_used", Value(rng.Uniform(0, 1000))}};
    benchmark::DoNotOptimize(cluster->dn(0)->ApplyDelta("account", "42", d, 1));
  }
  state.counters["deliveries"] = static_cast<double>(delivered);
}
BENCHMARK(BM_PubSubFanout)->Arg(1)->Arg(16)->Arg(128);

void PrintBillingSummary() {
  printf("\n=== E8: single-server billing throughput (GMDB §III-A) ===\n");
  auto cluster = BillingCluster(kSubscribers);
  Rng rng(9);
  const int kOps = 200'000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    std::string key = std::to_string(rng.Uniform(0, kSubscribers - 1));
    (void)cluster->dn(0)->Transact("account", key, [&](TreeObject* o) {
      auto balance = o->GetPrimitive("balance_cents");
      if (!balance.ok()) return balance.status();
      return o->SetPath("balance_cents", Value(balance->AsInt() - 1));
    });
  }
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  printf("subscribers loaded : %d\n", kSubscribers);
  printf("charging txns/s    : %.0f (single data node, single thread)\n",
         kOps / secs);
  printf("mean txn latency   : %.2f us\n", secs / kOps * 1e6);
  printf("(microsecond-class latency; scaling to millions of subscribers is "
         "memory-bound, not compute-bound)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintBillingSummary();
  return 0;
}
