/// \file bench_distributed_sql.cc
/// \brief SQL-to-cluster lowering end to end (E16): the same SELECT text
/// answered by (a) the single-node optimizer/executor and (b) the
/// distributed physical-operator layer over N DNs, measuring wall time
/// plus the simulated-latency and data-movement accounting the lowering
/// is supposed to optimize. Also isolates the planning+lowering overhead
/// itself (EXPLAIN-only loop).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "cluster/distributed_sql.h"
#include "common/rng.h"
#include "optimizer/sql_session.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT

constexpr const char* kJoinAggQuery =
    "SELECT segment, COUNT(*) AS n, SUM(amount) AS total FROM orders "
    "JOIN customers ON cust = c_id WHERE amount > 250 GROUP BY segment";
constexpr const char* kScanAggQuery =
    "SELECT cust, COUNT(*) AS n, SUM(amount) AS total FROM orders "
    "WHERE amount > 100 GROUP BY cust";

/// Loads the orders/customers pair through any SQL Execute-shaped session.
template <typename Session>
void LoadSql(Session* s, int64_t orders, int64_t customers, uint64_t seed) {
  (void)s->Execute(
      "CREATE TABLE orders (o_id BIGINT, cust BIGINT, amount BIGINT)");
  (void)s->Execute("CREATE TABLE customers (c_id BIGINT, segment BIGINT)");
  Rng rng(seed);
  for (int64_t c = 0; c < customers; ++c) {
    (void)s->Execute("INSERT INTO customers VALUES (" + std::to_string(c) +
                     ", " + std::to_string(rng.Uniform(0, 7)) + ")");
  }
  for (int64_t o = 0; o < orders; ++o) {
    (void)s->Execute("INSERT INTO orders VALUES (" + std::to_string(o) + ", " +
                     std::to_string(rng.Uniform(0, customers - 1)) + ", " +
                     std::to_string(rng.Uniform(1, 1000)) + ")");
  }
  s->Analyze();
}

/// range: dns, orders, query (0 scan-agg / 1 join-agg).
void BM_DistributedSqlSelect(benchmark::State& state) {
  int dns = static_cast<int>(state.range(0));
  auto session = std::make_unique<DistributedSqlSession>(dns);
  LoadSql(session.get(), state.range(1), 200, 17);
  const char* query = state.range(2) == 0 ? kScanAggQuery : kJoinAggQuery;
  size_t rows = 0;
  for (auto _ : state) {
    auto r = session->Execute(query);
    if (r.ok()) rows = r->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  const auto& info = session->last();
  state.counters["distributed"] = info.distributed ? 1 : 0;
  state.counters["sim_us"] = static_cast<double>(info.stats.sim_latency_us);
  state.counters["sim_serial_us"] =
      static_cast<double>(info.stats.sim_latency_serial_us);
  state.counters["moved_bytes"] = static_cast<double>(
      info.stats.shuffle_bytes + info.stats.broadcast_bytes);
  state.counters["partial_bytes"] = static_cast<double>(info.stats.partial_bytes);
}
BENCHMARK(BM_DistributedSqlSelect)
    ->ArgNames({"dns", "orders", "query"})
    ->Args({4, 4000, 0})
    ->Args({4, 4000, 1})
    ->Args({8, 4000, 0})
    ->Args({8, 4000, 1})
    ->Unit(benchmark::kMillisecond);

/// The single-node oracle on the same data and query text.
void BM_SingleNodeSqlSelect(benchmark::State& state) {
  auto session = std::make_unique<optimizer::SqlSession>(-1.0);
  LoadSql(session.get(), state.range(0), 200, 17);
  const char* query = state.range(1) == 0 ? kScanAggQuery : kJoinAggQuery;
  size_t rows = 0;
  for (auto _ : state) {
    auto r = session->Execute(query);
    if (r.ok()) rows = r->num_rows();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SingleNodeSqlSelect)
    ->ArgNames({"orders", "query"})
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Unit(benchmark::kMillisecond);

/// Parse + plan + lower only (EXPLAIN): the CN-side overhead the operator
/// layer adds before any shard is touched.
void BM_PlanAndLower(benchmark::State& state) {
  auto session = std::make_unique<DistributedSqlSession>(4);
  LoadSql(session.get(), 500, 100, 17);
  for (auto _ : state) {
    auto e = session->Explain(kJoinAggQuery);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_PlanAndLower)->Unit(benchmark::kMicrosecond);

/// Columnar vs row scan path for the same lowered SELECT.
void BM_DistributedSqlColumnar(benchmark::State& state) {
  auto session = std::make_unique<DistributedSqlSession>(4);
  LoadSql(session.get(), state.range(0), 200, 17);
  if (state.range(1) != 0) (void)session->RegisterColumnar("orders");
  size_t rows = 0;
  for (auto _ : state) {
    auto r = session->Execute(kScanAggQuery);
    if (r.ok()) rows = r->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["columnar_shards"] =
      static_cast<double>(session->last().stats.columnar_shards);
  state.counters["sim_us"] =
      static_cast<double>(session->last().stats.sim_latency_us);
}
BENCHMARK(BM_DistributedSqlColumnar)
    ->ArgNames({"orders", "columnar"})
    ->Args({4000, 0})
    ->Args({4000, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
