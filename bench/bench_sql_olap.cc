/// \file bench_sql_olap.cc
/// \brief Ablation bench for the optimizer's design choices (DESIGN.md):
/// on a star-schema OLAP workload run through the full SQL stack,
/// compares
///   * cost-based join ordering (statistics-driven, smallest intermediate
///     first) vs the naive left-deep syntactic order, and
///   * query rewrites (predicate pushdown into scans) on vs off,
/// measuring executor work (rows processed) — machine-independent.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "cluster/mpp_query.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace {

using namespace ofi;             // NOLINT
using namespace ofi::optimizer;  // NOLINT
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

/// Star schema: big fact table, two small dimensions.
void BuildStarSchema(sql::Catalog* catalog) {
  Rng rng(51);
  sql::Table fact{Schema({Column{"cust", TypeId::kInt64, "f"},
                          Column{"prod", TypeId::kInt64, "f"},
                          Column{"amount", TypeId::kInt64, "f"}})};
  for (int64_t i = 0; i < 50'000; ++i) {
    (void)fact.Append({Value(rng.Uniform(0, 999)), Value(rng.Uniform(0, 99)),
                       Value(rng.Uniform(1, 500))});
  }
  catalog->Register("fact", std::move(fact));

  sql::Table customers{Schema({Column{"id", TypeId::kInt64, "c"},
                               Column{"country", TypeId::kInt64, "c"}})};
  for (int64_t i = 0; i < 1'000; ++i) {
    (void)customers.Append({Value(i), Value(i % 20)});
  }
  catalog->Register("customers", std::move(customers));

  sql::Table products{Schema({Column{"id", TypeId::kInt64, "p"},
                              Column{"category", TypeId::kInt64, "p"}})};
  for (int64_t i = 0; i < 100; ++i) {
    (void)products.Append({Value(i), Value(i % 5)});
  }
  catalog->Register("products", std::move(products));
}

/// The star query: one selective dimension filter (customers) and one
/// unfiltered dimension (products), written FACT FIRST so the naive
/// left-deep order joins fact x products before the selective customers
/// filter can shrink anything — the classic join-ordering trap.
const char* kStarQuery =
    "SELECT COUNT(*) AS n, SUM(f.amount) AS total "
    "FROM fact f, products p, customers c "
    "WHERE f.cust = c.id AND f.prod = p.id AND c.country = 7";

struct RunCost {
  uint64_t rows_processed = 0;
  size_t result_rows = 0;
};

RunCost RunWithPlanner(const sql::Catalog& catalog, const StatsRegistry* stats,
                       bool cost_based, bool pushdown) {
  auto stmt = sql::Parse(kStarQuery);
  if (!stmt.ok()) return {};

  sql::JoinPlanner planner = nullptr;
  Optimizer opt(&catalog, stats, nullptr);
  if (cost_based) {
    planner = [&opt](std::vector<sql::PlannedScan> scans,
                     std::vector<sql::ExprPtr> preds) -> Result<sql::PlanPtr> {
      std::vector<ScanSpec> specs;
      for (auto& s : scans) {
        specs.push_back(ScanSpec{s.table, s.predicate, s.alias});
      }
      return opt.PlanJoinQuery(std::move(specs), std::move(preds));
    };
  } else if (!pushdown) {
    // Naive order AND no predicate pushdown: join keys stay on the joins
    // (else intermediates explode), but the selective dimension filters are
    // hoisted above every join — the rewrite being ablated.
    planner = [&catalog](std::vector<sql::PlannedScan> scans,
                         std::vector<sql::ExprPtr> preds) -> Result<sql::PlanPtr> {
      sql::PlanPtr plan;
      std::vector<sql::ExprPtr> hoisted;
      std::vector<bool> used(preds.size(), false);
      std::vector<std::string> in_scope;
      auto covers = [&](const sql::ExprPtr& pred) {
        std::vector<std::string> cols;
        pred->CollectColumns(&cols);
        for (const auto& c : cols) {
          if (std::find(in_scope.begin(), in_scope.end(), c) == in_scope.end()) {
            return false;
          }
        }
        return true;
      };
      for (size_t i = 0; i < scans.size(); ++i) {
        if (scans[i].predicate) hoisted.push_back(scans[i].predicate);
        OFI_ASSIGN_OR_RETURN(auto table, catalog.Get(scans[i].table));
        sql::Schema schema = scans[i].alias.empty()
                                 ? table->schema()
                                 : table->schema().WithQualifier(scans[i].alias);
        for (const auto& c : schema.columns()) {
          in_scope.push_back(c.name);
          in_scope.push_back(c.QualifiedName());
        }
        sql::PlanPtr scan = sql::MakeScan(scans[i].table, nullptr, scans[i].alias);
        if (plan == nullptr) {
          plan = scan;
          continue;
        }
        // Join keys attach as soon as both sides are in scope (else the
        // intermediate result explodes and the ablation measures OOM, not
        // the rewrite).
        std::vector<sql::ExprPtr> applicable;
        for (size_t pidx = 0; pidx < preds.size(); ++pidx) {
          if (!used[pidx] && covers(preds[pidx])) {
            applicable.push_back(preds[pidx]);
            used[pidx] = true;
          }
        }
        plan = sql::MakeJoin(plan, scan, sql::ConjoinAll(applicable));
      }
      for (size_t pidx = 0; pidx < preds.size(); ++pidx) {
        if (!used[pidx]) hoisted.push_back(preds[pidx]);
      }
      return sql::MakeFilter(plan, sql::ConjoinAll(hoisted));
    };
  }
  auto plan = sql::PlanSelect(*stmt->select, catalog, planner);
  if (!plan.ok()) return {};
  sql::Executor exec(&catalog);
  auto result = exec.Execute(*plan);
  RunCost cost;
  cost.rows_processed = exec.rows_processed();
  cost.result_rows = result.ok() ? result->num_rows() : 0;
  return cost;
}

void BM_StarQueryCostBased(benchmark::State& state) {
  sql::Catalog catalog;
  BuildStarSchema(&catalog);
  StatsRegistry stats;
  stats.AnalyzeAll(catalog);
  RunCost cost;
  for (auto _ : state) {
    cost = RunWithPlanner(catalog, &stats, true, true);
  }
  state.counters["rows_processed"] = static_cast<double>(cost.rows_processed);
}
BENCHMARK(BM_StarQueryCostBased)->Unit(benchmark::kMillisecond);

void BM_StarQueryNaiveOrder(benchmark::State& state) {
  sql::Catalog catalog;
  BuildStarSchema(&catalog);
  RunCost cost;
  for (auto _ : state) {
    cost = RunWithPlanner(catalog, nullptr, false, true);
  }
  state.counters["rows_processed"] = static_cast<double>(cost.rows_processed);
}
BENCHMARK(BM_StarQueryNaiveOrder)->Unit(benchmark::kMillisecond);

void BM_StarQueryNoPushdown(benchmark::State& state) {
  sql::Catalog catalog;
  BuildStarSchema(&catalog);
  RunCost cost;
  for (auto _ : state) {
    cost = RunWithPlanner(catalog, nullptr, false, false);
  }
  state.counters["rows_processed"] = static_cast<double>(cost.rows_processed);
}
BENCHMARK(BM_StarQueryNoPushdown)->Unit(benchmark::kMillisecond);

/// The same star-schema fact table, hash-sharded across a simulated MPP
/// cluster: distributed GROUP BY via scatter-gather, serial inline scatter
/// vs the shared thread pool (range(1): 0 = serial, 1 = pool).
void BM_DistributedFactAggregate(benchmark::State& state) {
  int dns = static_cast<int>(state.range(0));
  cluster::DistributedOptions options;
  options.parallel = state.range(1) != 0;
  auto cl = std::make_unique<cluster::Cluster>(dns, cluster::Protocol::kGtmLite);
  Schema schema({Column{"k", TypeId::kInt64, "f"},
                 Column{"cust", TypeId::kInt64, "f"},
                 Column{"prod", TypeId::kInt64, "f"},
                 Column{"amount", TypeId::kInt64, "f"}});
  (void)cl->CreateTable("fact", schema);
  Rng rng(51);
  for (int64_t i = 0; i < 50'000; ++i) {
    cluster::Txn t = cl->Begin(cluster::TxnScope::kSingleShard);
    (void)t.Insert("fact", Value(i),
                   {Value(i), Value(rng.Uniform(0, 999)),
                    Value(rng.Uniform(0, 99)), Value(rng.Uniform(1, 500))});
    (void)t.Commit();
  }
  cluster::DistributedResult last;
  for (auto _ : state) {
    auto r = cluster::DistributedAggregate(
        cl.get(), "fact", nullptr, {"f.prod"},
        {{sql::AggFunc::kSum, "f.amount", "total"},
         {sql::AggFunc::kCount, "", "n"}},
        options);
    if (r.ok()) last = std::move(r).ValueOrDie();
    benchmark::DoNotOptimize(last.table);
  }
  state.counters["sim_us"] = static_cast<double>(last.sim_latency_us);
  state.counters["sim_serial_us"] =
      static_cast<double>(last.sim_latency_serial_us);
}
BENCHMARK(BM_DistributedFactAggregate)
    ->ArgNames({"dns", "pool"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

void PrintAblation() {
  printf("\n=== optimizer ablation on the star query (executor rows processed) ===\n");
  sql::Catalog catalog;
  BuildStarSchema(&catalog);
  StatsRegistry stats;
  stats.AnalyzeAll(catalog);

  RunCost cost_based = RunWithPlanner(catalog, &stats, true, true);
  RunCost naive = RunWithPlanner(catalog, nullptr, false, true);
  RunCost no_pushdown = RunWithPlanner(catalog, nullptr, false, false);
  printf("%-38s %16s %12s\n", "configuration", "rows processed", "result");
  printf("%-38s %16llu %12zu\n", "cost-based order + pushdown",
         (unsigned long long)cost_based.rows_processed, cost_based.result_rows);
  printf("%-38s %16llu %12zu\n", "naive left-deep order + pushdown",
         (unsigned long long)naive.rows_processed, naive.result_rows);
  printf("%-38s %16llu %12zu\n", "naive order, no predicate pushdown",
         (unsigned long long)no_pushdown.rows_processed, no_pushdown.result_rows);
  printf("(all three return identical answers; the rewrites and the "
         "cost-based order cut work by %.1fx)\n\n",
         static_cast<double>(no_pushdown.rows_processed) /
             static_cast<double>(cost_based.rows_processed));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintAblation();
  return 0;
}
