/// \file bench_multimodel.cc
/// \brief Experiment E5 — the multi-model database (paper §II-B, Example 1).
/// The paper's argument for an integrated MMDB is that "the multi-system
/// solution is not expected to perform since data need to be moved around".
/// We run Example 1's investigation query two ways:
///   * integrated: graph + time-series results feed one relational plan
///     in-process (our MMDB), and
///   * multi-system: each engine is a separate system; intermediate results
///     are serialized over a simulated network before the relational join.
/// Reported: execution work, bytes moved, simulated end-to-end latency.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "multimodel/multimodel.h"

namespace {

using namespace ofi;              // NOLINT
using namespace ofi::multimodel;  // NOLINT
using graph::Gp;
using graph::Traversal;
using sql::Column;
using sql::Expr;
using sql::Schema;
using sql::TypeId;
using sql::Value;

constexpr int64_t kMinute = 60'000'000;

struct Scenario {
  MultiModelDb db;
  int64_t now = 60 * kMinute;
  int num_people = 0;
};

/// Builds the investigation scenario at a given scale.
std::unique_ptr<Scenario> BuildScenario(int people, int sightings) {
  auto s = std::make_unique<Scenario>();
  s->num_people = people;
  Rng rng(7);

  auto g = *s->db.CreateGraph("callgraph");
  std::vector<graph::VertexId> verts;
  for (int i = 0; i < people; ++i) {
    verts.push_back(g->AddVertex(
        "person", {{"cid", Value(10'000 + i)}, {"phone", Value(5'550'000 + i)}}));
  }
  // 2% of people are "suspects" with 5 recent incoming calls; everyone else
  // gets 1-2 old calls.
  for (int i = 0; i < people; ++i) {
    bool suspect = i % 50 == 0;
    int calls = suspect ? 5 : static_cast<int>(rng.Uniform(1, 2));
    for (int c = 0; c < calls; ++c) {
      int64_t from = rng.Uniform(0, people - 1);
      int64_t when = suspect ? s->now - 5 * kMinute : 1000 + c;
      (void)g->AddEdge(verts[from], verts[i], "call",
                       {{"time", Value::Timestamp(when)}});
    }
  }

  auto es = *s->db.CreateEventStore(
      "high_speed_view",
      {Column{"carid", TypeId::kInt64, ""}, Column{"juncid", TypeId::kInt64, ""}});
  for (int i = 0; i < sightings; ++i) {
    int64_t car = rng.Uniform(0, people - 1);  // car i belongs to person i
    int64_t when = s->now - rng.Uniform(0, 59) * kMinute;
    (void)es->Append(when, {Value(200'000 + car), Value(rng.Uniform(0, 20))});
  }

  sql::Table car2cid{Schema({Column{"carid", TypeId::kInt64, "cc"},
                             Column{"cid", TypeId::kInt64, "cc"}})};
  for (int i = 0; i < people; ++i) {
    (void)car2cid.Append({Value(200'000 + i), Value(10'000 + i)});
  }
  s->db.RegisterTable("car2cid", std::move(car2cid));
  return s;
}

Traversal SuspectTraversal(Scenario* s) {
  auto g = *s->db.Gremlin("callgraph");
  int64_t cutoff = s->now - 30 * kMinute;
  return g.V().Where(
      [cutoff](Traversal t) {
        return std::move(
            t.InE("call").Has("time", Gp::Gt(Value::Timestamp(cutoff))));
      },
      Gp::Gt(Value(3)));
}

/// Runs Example 1 integrated; returns (result rows, rows processed).
std::pair<size_t, uint64_t> RunIntegrated(Scenario* s) {
  auto cars = *s->db.TimeSeriesWindowExpr("high_speed_view", s->now,
                                          30 * kMinute, "c");
  auto suspects =
      s->db.GraphTableExpr(SuspectTraversal(s), {"cid", "phone"}, "s");
  auto join1 = sql::MakeJoin(cars, sql::MakeScan("car2cid"),
                             Expr::EqCols("c.carid", "cc.carid"));
  auto join2 = sql::MakeJoin(suspects, join1, Expr::EqCols("s.cid", "cc.cid"));
  auto result = s->db.Execute(join2);
  return {result.ok() ? result->num_rows() : 0, s->db.last_rows_processed()};
}

/// The multi-system route: every intermediate table crosses a 10Gbps-ish
/// simulated link (80 us per round trip + 0.8 us per KB) and the relational
/// system re-materializes it before joining.
struct MultiSystemCost {
  size_t result_rows = 0;
  size_t bytes_moved = 0;
  double latency_us = 0;
};

MultiSystemCost RunMultiSystem(Scenario* s) {
  MultiSystemCost cost;
  auto ship = [&](const sql::Table& t) {
    size_t bytes = TableByteSize(t);
    cost.bytes_moved += bytes;
    cost.latency_us += 80.0 + static_cast<double>(bytes) / 1024.0 * 0.8;
  };
  // System 1 (graph engine) computes suspects, ships them.
  sql::Table suspects = SuspectTraversal(s).ToTable({"cid", "phone"});
  ship(suspects);
  // System 2 (time-series engine) computes the window, ships it.
  auto es = *s->db.GetEventStore("high_speed_view");
  sql::Table cars = es->Window(s->now, 30 * kMinute);
  ship(cars);
  // System 3 (relational) registers the shipped copies and joins.
  s->db.RegisterTable("shipped_suspects",
                      sql::Table(suspects.schema().WithQualifier("s"),
                                 std::move(suspects.mutable_rows())));
  s->db.RegisterTable("shipped_cars",
                      sql::Table(cars.schema().WithQualifier("c"),
                                 std::move(cars.mutable_rows())));
  auto join1 = sql::MakeJoin(sql::MakeScan("shipped_cars"),
                             sql::MakeScan("car2cid"),
                             Expr::EqCols("c.carid", "cc.carid"));
  auto join2 = sql::MakeJoin(sql::MakeScan("shipped_suspects"), join1,
                             Expr::EqCols("s.cid", "cc.cid"));
  auto result = s->db.Execute(join2);
  cost.result_rows = result.ok() ? result->num_rows() : 0;
  return cost;
}

void BM_Example1Integrated(benchmark::State& state) {
  auto s = BuildScenario(static_cast<int>(state.range(0)), 5'000);
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunIntegrated(s.get()).first;
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Example1Integrated)->Arg(1'000)->Arg(5'000)->Unit(benchmark::kMillisecond);

void BM_Example1MultiSystem(benchmark::State& state) {
  auto s = BuildScenario(static_cast<int>(state.range(0)), 5'000);
  MultiSystemCost cost;
  for (auto _ : state) {
    cost = RunMultiSystem(s.get());
  }
  state.counters["bytes_moved"] = static_cast<double>(cost.bytes_moved);
  state.counters["wire_latency_us"] = cost.latency_us;
}
BENCHMARK(BM_Example1MultiSystem)->Arg(1'000)->Arg(5'000)->Unit(benchmark::kMillisecond);

void PrintComparison() {
  printf("\n=== E5: Example 1 — integrated MMDB vs multi-system ===\n");
  printf("%-8s %12s %12s %14s %16s\n", "people", "rows(int)", "rows(multi)",
         "bytes moved", "wire latency us");
  for (int people : {1'000, 5'000, 20'000}) {
    auto s1 = BuildScenario(people, 5'000);
    auto [rows_int, work] = RunIntegrated(s1.get());
    auto s2 = BuildScenario(people, 5'000);
    MultiSystemCost multi = RunMultiSystem(s2.get());
    printf("%-8d %12zu %12zu %14zu %16.0f\n", people, rows_int,
           multi.result_rows, multi.bytes_moved, multi.latency_us);
  }
  printf("(same answers; the multi-system route pays data movement, the "
         "integrated plan pays none — the paper's §II-B argument)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintComparison();
  return 0;
}
