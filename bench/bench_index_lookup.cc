/// \file bench_index_lookup.cc
/// \brief Experiment E22 — the secondary-index point-lookup curve: simulated
/// query latency for the optimizer-chosen DistIndexScan vs the full
/// distributed scan, swept over
///   * table size     : 4k → 64k rows (the scan grows linearly, the probe
///                      stays flat — the ROADMAP's "millions-of-users point
///                      lookups" regime in miniature)
///   * selectivity    : range width over an ORDERED index from 0.1% to 50%
///                      of the table, showing where the crossover heuristic
///                      flips from probe to scan
///   * write stream   : probe latency re-measured while batches of inserts
///                      land (index maintenance rides the heap listener;
///                      the probe must not degrade as the heap grows only
///                      the scan should)
///
/// Besides the plain-text tables, the binary writes the full sweep as
/// machine-readable JSON (default `BENCH_index_lookup.json`, override with
/// the OFI_BENCH_JSON env var) so trajectory tooling can diff runs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster/distributed_sql.h"
#include "common/rng.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT

constexpr int kDns = 4;
constexpr int64_t kGroups = 1000;  // grp cardinality for the range sweep

/// Bulk-loads pts(k, grp, val) through the SQL front-end in multi-row
/// INSERT batches: k unique (the shard key), grp uniform in [0, kGroups).
void Load(DistributedSqlSession* sess, int64_t from, int64_t to) {
  Rng rng(900 + from);
  constexpr int64_t kBatch = 512;
  for (int64_t base = from; base < to; base += kBatch) {
    std::string stmt = "INSERT INTO pts VALUES ";
    for (int64_t k = base; k < std::min(to, base + kBatch); ++k) {
      if (k != base) stmt += ",";
      stmt += "(" + std::to_string(k) + "," +
              std::to_string(rng.Uniform(0, kGroups - 1)) + "," +
              std::to_string(k * 3) + ")";
    }
    auto r = sess->Execute(stmt);
    if (!r.ok()) {
      fprintf(stderr, "load failed: %s\n", r.status().ToString().c_str());
      return;
    }
  }
}

std::unique_ptr<DistributedSqlSession> FreshSession(int64_t rows) {
  auto sess = std::make_unique<DistributedSqlSession>(kDns);
  auto r = sess->Execute("CREATE TABLE pts (k BIGINT, grp BIGINT, val BIGINT)");
  if (!r.ok()) fprintf(stderr, "%s\n", r.status().ToString().c_str());
  Load(sess.get(), 0, rows);
  return sess;
}

/// One measured query; returns its simulated latency and records the
/// realized access path. The simulation is deterministic, so a single shot
/// is the whole sample. Sim time resets first: queries are measured on an
/// idle cluster (pure service cost), not queued behind the bulk load.
long long Measure(DistributedSqlSession* sess, const std::string& query,
                  std::string* path_out = nullptr) {
  sess->cluster().ResetSimTime();
  auto r = sess->Execute(query);
  if (!r.ok()) {
    fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    return -1;
  }
  if (path_out != nullptr) {
    *path_out = sess->last().stats.per_dn.empty()
                    ? "?"
                    : sess->last().stats.per_dn[0].path;
  }
  return sess->last().stats.sim_latency_us;
}

struct SizeLeg {
  int64_t rows;
  long long index_us;
  long long scan_us;
};

std::vector<SizeLeg> RunSizeSweep() {
  std::vector<SizeLeg> legs;
  for (int64_t rows : {int64_t{4096}, int64_t{16384}, int64_t{65536}}) {
    auto sess = FreshSession(rows);
    auto st = sess->Execute("CREATE INDEX pts_k ON pts (k)");
    if (!st.ok()) fprintf(stderr, "%s\n", st.status().ToString().c_str());
    std::string probe =
        "SELECT * FROM pts WHERE k = " + std::to_string(rows / 2);
    long long index_us = Measure(sess.get(), probe);
    sess->exec_options().use_index = false;
    long long scan_us = Measure(sess.get(), probe);
    legs.push_back(SizeLeg{rows, index_us, scan_us});
  }
  return legs;
}

struct SelLeg {
  double pct;          // fraction of the grp domain the range covers
  std::string path;    // what the planner actually chose
  long long chosen_us;
  long long scan_us;   // forced full scan for the same predicate
};

std::vector<SelLeg> RunSelectivitySweep() {
  auto sess = FreshSession(16384);
  auto st = sess->Execute("CREATE INDEX pts_grp ON pts (grp) ORDERED");
  if (!st.ok()) fprintf(stderr, "%s\n", st.status().ToString().c_str());
  sess->Analyze();  // the crossover heuristic needs ndv / selectivity
  std::vector<SelLeg> legs;
  for (double pct : {0.001, 0.01, 0.10, 0.50}) {
    int64_t width = static_cast<int64_t>(pct * kGroups);
    if (width < 1) width = 1;
    std::string pred = "grp >= 100 AND grp <= " + std::to_string(99 + width);
    std::string query = "SELECT * FROM pts WHERE " + pred;
    SelLeg leg;
    leg.pct = pct;
    leg.chosen_us = Measure(sess.get(), query, &leg.path);
    sess->exec_options().use_index = false;
    leg.scan_us = Measure(sess.get(), query);
    sess->exec_options().use_index = true;
    legs.push_back(std::move(leg));
  }
  return legs;
}

struct WriteLeg {
  int64_t rows;  // heap size when measured
  long long index_us;
  long long scan_us;
  long long maintenance_ops;
};

std::vector<WriteLeg> RunWriteStream() {
  constexpr int64_t kStart = 4096, kBatchWrites = 4096, kBatches = 4;
  auto sess = FreshSession(kStart);
  auto st = sess->Execute("CREATE INDEX pts_k ON pts (k)");
  if (!st.ok()) fprintf(stderr, "%s\n", st.status().ToString().c_str());
  std::vector<WriteLeg> legs;
  int64_t rows = kStart;
  for (int64_t b = 0; b <= kBatches; ++b) {
    WriteLeg leg;
    leg.rows = rows;
    std::string probe = "SELECT * FROM pts WHERE k = " + std::to_string(rows / 2);
    leg.index_us = Measure(sess.get(), probe);
    sess->exec_options().use_index = false;
    leg.scan_us = Measure(sess.get(), probe);
    sess->exec_options().use_index = true;
    leg.maintenance_ops = sess->cluster().metrics().Get("index.maintenance_ops");
    legs.push_back(leg);
    if (b < kBatches) {
      Load(sess.get(), rows, rows + kBatchWrites);
      rows += kBatchWrites;
    }
  }
  return legs;
}

void BM_E22(benchmark::State& state) {
  int64_t rows = state.range(0);
  long long index_us = 0, scan_us = 0;
  for (auto _ : state) {
    auto sess = FreshSession(rows);
    auto st = sess->Execute("CREATE INDEX pts_k ON pts (k)");
    benchmark::DoNotOptimize(st.ok());
    std::string probe =
        "SELECT * FROM pts WHERE k = " + std::to_string(rows / 2);
    index_us = Measure(sess.get(), probe);
    sess->exec_options().use_index = false;
    scan_us = Measure(sess.get(), probe);
  }
  state.counters["index_us"] = static_cast<double>(index_us);
  state.counters["scan_us"] = static_cast<double>(scan_us);
  state.counters["speedup"] =
      index_us > 0 ? static_cast<double>(scan_us) / index_us : 0.0;
}

void RegisterAll() {
  benchmark::RegisterBenchmark("E22/point_lookup/rows:16384", BM_E22)
      ->Args({16384})
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void PrintTables(const std::vector<SizeLeg>& sizes,
                 const std::vector<SelLeg>& sels,
                 const std::vector<WriteLeg>& writes) {
  printf("\n=== E22: point lookup vs table size (4 DNs, hash index on the "
         "shard key) ===\n");
  printf("%10s %10s %10s %8s\n", "rows", "index_us", "scan_us", "speedup");
  for (const SizeLeg& l : sizes) {
    printf("%10lld %10lld %10lld %7.1fx\n", static_cast<long long>(l.rows),
           l.index_us, l.scan_us,
           l.index_us > 0 ? static_cast<double>(l.scan_us) / l.index_us : 0.0);
  }
  printf("(expect: scan grows with rows, probe stays flat; >=5x at 16k)\n");

  printf("\n=== E22: range selectivity sweep (16k rows, ORDERED index, "
         "ANALYZEd) ===\n");
  printf("%8s %-12s %10s %10s\n", "sel", "chosen", "chosen_us", "scan_us");
  for (const SelLeg& l : sels) {
    printf("%7.1f%% %-12s %10lld %10lld\n", l.pct * 100, l.path.c_str(),
           l.chosen_us, l.scan_us);
  }
  printf("(expect: index at low selectivity, crossover back to scan as the "
         "range widens)\n");

  printf("\n=== E22: probe latency under a write stream (hash index riding "
         "the heap listener) ===\n");
  printf("%10s %10s %10s %16s\n", "rows", "index_us", "scan_us",
         "maintenance_ops");
  for (const WriteLeg& l : writes) {
    printf("%10lld %10lld %10lld %16lld\n", static_cast<long long>(l.rows),
           l.index_us, l.scan_us, l.maintenance_ops);
  }
  printf("(expect: scan_us grows with the heap, index_us flat, maintenance "
         "counted per landed write)\n\n");
}

void WriteJson(const std::vector<SizeLeg>& sizes,
               const std::vector<SelLeg>& sels,
               const std::vector<WriteLeg>& writes) {
  const char* path = std::getenv("OFI_BENCH_JSON");
  if (path == nullptr) path = "BENCH_index_lookup.json";
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const LatencyModel model;
  fprintf(f, "{\n  \"bench\": \"index_lookup\",\n");
  fprintf(f,
          "  \"config\": {\"dns\": %d, \"protocol\": \"gtm_lite\", "
          "\"groups\": %lld, \"index_probe_service_us\": %lld, "
          "\"index_row_service_us\": %lld, "
          "\"row_scan_block_service_us\": %lld},\n",
          kDns, static_cast<long long>(kGroups),
          static_cast<long long>(model.index_probe_service_us),
          static_cast<long long>(model.index_row_service_us),
          static_cast<long long>(model.row_scan_block_service_us));
  fprintf(f, "  \"point_lookup\": [\n");
  for (size_t i = 0; i < sizes.size(); ++i) {
    const SizeLeg& l = sizes[i];
    fprintf(f,
            "    {\"rows\": %lld, \"index_us\": %lld, \"scan_us\": %lld, "
            "\"speedup\": %.2f}%s\n",
            static_cast<long long>(l.rows), l.index_us, l.scan_us,
            l.index_us > 0 ? static_cast<double>(l.scan_us) / l.index_us : 0.0,
            i + 1 == sizes.size() ? "" : ",");
  }
  fprintf(f, "  ],\n  \"range_selectivity\": [\n");
  for (size_t i = 0; i < sels.size(); ++i) {
    const SelLeg& l = sels[i];
    fprintf(f,
            "    {\"selectivity\": %.3f, \"chosen\": \"%s\", "
            "\"chosen_us\": %lld, \"scan_us\": %lld}%s\n",
            l.pct, l.path.c_str(), l.chosen_us, l.scan_us,
            i + 1 == sels.size() ? "" : ",");
  }
  fprintf(f, "  ],\n  \"write_stream\": [\n");
  for (size_t i = 0; i < writes.size(); ++i) {
    const WriteLeg& l = writes[i];
    fprintf(f,
            "    {\"rows\": %lld, \"index_us\": %lld, \"scan_us\": %lld, "
            "\"maintenance_ops\": %lld}%s\n",
            static_cast<long long>(l.rows), l.index_us, l.scan_us,
            l.maintenance_ops, i + 1 == writes.size() ? "" : ",");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::vector<SizeLeg> sizes = RunSizeSweep();
  std::vector<SelLeg> sels = RunSelectivitySweep();
  std::vector<WriteLeg> writes = RunWriteStream();
  PrintTables(sizes, sels, writes);
  WriteJson(sizes, sels, writes);
  return 0;
}
