/// \file bench_oltp_traffic.cc
/// \brief Experiment E19 — the headline OLTP traffic scale curve: modified
/// TPC-C throughput and p99 latency vs concurrent session count (256 → 2048)
/// for
///   * per-commit   : every transaction pays its own 2PC round + log force
///   * group commit : commit-ready txns flush in batched windows
///                    (batched prepares per DN, one GTM round, one log force)
/// at both the all-single-shard (SS) and 90%-single-shard (MS) mixes, plus an
/// admission-control sweep showing graceful degradation under a max-in-flight
/// gate.
///
/// The latency model is the commit-bound calibration: statement service is
/// cheap (5 µs) relative to the durable log force (250 µs), the regime where
/// amortizing the force across a window pays — the same model the
/// TrafficScaleTest acceptance gate uses.
///
/// Besides the plain-text tables, the binary writes the full sweep as
/// machine-readable JSON (default `BENCH_oltp_traffic.json`, override with
/// the OFI_BENCH_JSON env var) so trajectory tooling can diff runs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/traffic/traffic.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using traffic::RunTraffic;
using traffic::TrafficOptions;
using traffic::TrafficResult;

constexpr int kDns = 4;
constexpr SimTime kWindowUs = 2000;
constexpr int kMaxBatch = 64;

LatencyModel CommitBoundLatency() {
  LatencyModel m;
  m.network_hop_us = 5;
  m.gtm_service_us = 1;
  m.dn_stmt_service_us = 5;
  m.dn_commit_service_us = 15;
  m.log_write_service_us = 250;
  m.dn_batch_record_service_us = 3;
  return m;
}

TpccConfig E19Config(double multi_shard_fraction) {
  TpccConfig cfg;
  cfg.warehouses_per_dn = 256;  // 1024 warehouses across 4 DNs
  cfg.customers_per_warehouse = 30;
  cfg.stock_per_warehouse = 30;
  cfg.multi_shard_fraction = multi_shard_fraction;
  cfg.duration_us = 250'000;
  return cfg;
}

TrafficResult RunOnce(int sessions, bool grouped, double ms_fraction,
                      int max_in_flight = 0) {
  Cluster cluster(kDns, Protocol::kGtmLite, CommitBoundLatency());
  TpccConfig cfg = E19Config(ms_fraction);
  Status st = LoadTpcc(&cluster, cfg);
  if (!st.ok()) {
    fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return {};
  }
  TrafficOptions opts;
  opts.sessions = sessions;
  opts.group_commit.enabled = grouped;
  opts.group_commit.window_us = kWindowUs;
  opts.group_commit.max_batch = kMaxBatch;
  opts.admission.max_in_flight = max_in_flight;
  opts.admission.max_queue = sessions;  // queue, never shed, in the sweep
  Result<TrafficResult> r = RunTraffic(&cluster, cfg, opts);
  if (!r.ok()) {
    fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
    return {};
  }
  return *r;
}

struct Leg {
  const char* mix;
  const char* mechanism;
  int sessions;
  int max_in_flight;
  TrafficResult r;
};

std::vector<Leg> RunScaleSweep() {
  std::vector<Leg> legs;
  for (double ms : {0.0, 0.10}) {
    const char* mix = ms == 0.0 ? "ss" : "ms90";
    for (bool grouped : {false, true}) {
      for (int sessions : {256, 512, 1024, 2048}) {
        legs.push_back(Leg{mix, grouped ? "grouped" : "percommit", sessions, 0,
                           RunOnce(sessions, grouped, ms)});
      }
    }
  }
  return legs;
}

std::vector<Leg> RunAdmissionSweep() {
  std::vector<Leg> legs;
  for (int gate : {0, 1024, 512, 256}) {
    legs.push_back(
        Leg{"ms90", "grouped", 2048, gate, RunOnce(2048, true, 0.10, gate)});
  }
  return legs;
}

void BM_E19(benchmark::State& state) {
  int sessions = static_cast<int>(state.range(0));
  bool grouped = state.range(1) != 0;
  TrafficResult last{};
  for (auto _ : state) {
    last = RunOnce(sessions, grouped, 0.10);
    benchmark::DoNotOptimize(last.committed);
  }
  state.counters["tps"] = last.throughput_tps;
  state.counters["p99_us"] = static_cast<double>(last.latency_p99_us);
  state.counters["aborted"] = static_cast<double>(last.aborted);
  state.counters["log_writes"] = static_cast<double>(last.log_writes);
}

void RegisterAll() {
  for (int grouped : {0, 1}) {
    benchmark::RegisterBenchmark(
        (std::string("E19/MS90/") + (grouped ? "grouped" : "percommit") +
         "/sessions:2048")
            .c_str(),
        BM_E19)
        ->Args({2048, grouped})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintScaleTable(const std::vector<Leg>& legs) {
  printf("\n=== E19: OLTP traffic scale curve (4 DNs, GTM-Lite, "
         "window=%lldus max_batch=%d) ===\n",
         static_cast<long long>(kWindowUs), kMaxBatch);
  printf("%-5s %-10s %9s %10s %9s %9s %9s %8s %10s\n", "mix", "mechanism",
         "sessions", "tps", "p50_us", "p95_us", "p99_us", "aborted",
         "log_writes");
  for (const Leg& l : legs) {
    printf("%-5s %-10s %9d %10.0f %9lld %9lld %9lld %8llu %10lld\n", l.mix,
           l.mechanism, l.sessions, l.r.throughput_tps,
           static_cast<long long>(l.r.latency_p50_us),
           static_cast<long long>(l.r.latency_p95_us),
           static_cast<long long>(l.r.latency_p99_us),
           static_cast<unsigned long long>(l.r.aborted),
           static_cast<long long>(l.r.log_writes));
  }
  printf("(expect: grouped >=2x per-commit tps at 2048 sessions, at equal or "
         "better p99)\n");
}

void PrintAdmissionTable(const std::vector<Leg>& legs) {
  printf("\n=== E19: admission control at 2048 sessions (grouped, MS90) ===\n");
  printf("%-13s %10s %9s %9s %9s %12s\n", "max_in_flight", "tps", "p99_us",
         "queued", "shed", "avg_wait_us");
  for (const Leg& l : legs) {
    double avg_wait =
        l.r.admission_queued > 0
            ? static_cast<double>(l.r.admission_wait_us) /
                  static_cast<double>(l.r.admission_queued)
            : 0.0;
    printf("%-13s %10.0f %9lld %9lld %9lld %12.0f\n",
           l.max_in_flight == 0 ? "unlimited"
                                : std::to_string(l.max_in_flight).c_str(),
           l.r.throughput_tps, static_cast<long long>(l.r.latency_p99_us),
           static_cast<long long>(l.r.admission_queued),
           static_cast<long long>(l.r.admission_shed), avg_wait);
  }
  printf("(expect: tighter gates trade tps for queue wait gracefully — no "
         "collapse)\n\n");
}

void WriteJson(const std::vector<Leg>& scale, const std::vector<Leg>& adm) {
  const char* path = std::getenv("OFI_BENCH_JSON");
  if (path == nullptr) path = "BENCH_oltp_traffic.json";
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  auto emit_leg = [f](const Leg& l, bool admission, bool last) {
    fprintf(f,
            "    {\"mix\": \"%s\", \"mechanism\": \"%s\", \"sessions\": %d, ",
            l.mix, l.mechanism, l.sessions);
    if (admission) fprintf(f, "\"max_in_flight\": %d, ", l.max_in_flight);
    fprintf(f,
            "\"tps\": %.1f, \"p50_us\": %lld, \"p95_us\": %lld, "
            "\"p99_us\": %lld, \"mean_us\": %.1f, \"committed\": %llu, "
            "\"aborted\": %llu, \"shed\": %llu, \"gtm_requests\": %llu, "
            "\"group_batches\": %lld, \"group_txns\": %lld, "
            "\"log_writes\": %lld, \"admission_queued\": %lld, "
            "\"admission_shed\": %lld, \"admission_wait_us\": %lld}%s\n",
            l.r.throughput_tps, static_cast<long long>(l.r.latency_p50_us),
            static_cast<long long>(l.r.latency_p95_us),
            static_cast<long long>(l.r.latency_p99_us), l.r.latency_mean_us,
            static_cast<unsigned long long>(l.r.committed),
            static_cast<unsigned long long>(l.r.aborted),
            static_cast<unsigned long long>(l.r.shed),
            static_cast<unsigned long long>(l.r.gtm_requests),
            static_cast<long long>(l.r.group_batches),
            static_cast<long long>(l.r.group_txns),
            static_cast<long long>(l.r.log_writes),
            static_cast<long long>(l.r.admission_queued),
            static_cast<long long>(l.r.admission_shed),
            static_cast<long long>(l.r.admission_wait_us), last ? "" : ",");
  };
  fprintf(f, "{\n  \"bench\": \"oltp_traffic\",\n");
  fprintf(f,
          "  \"config\": {\"dns\": %d, \"protocol\": \"gtm_lite\", "
          "\"warehouses_per_dn\": 256, \"duration_us\": 250000, "
          "\"window_us\": %lld, \"max_batch\": %d, "
          "\"log_write_service_us\": 250, \"dn_stmt_service_us\": 5},\n",
          kDns, static_cast<long long>(kWindowUs), kMaxBatch);
  fprintf(f, "  \"scale_curve\": [\n");
  for (size_t i = 0; i < scale.size(); ++i) {
    emit_leg(scale[i], false, i + 1 == scale.size());
  }
  fprintf(f, "  ],\n  \"admission\": [\n");
  for (size_t i = 0; i < adm.size(); ++i) {
    emit_leg(adm[i], true, i + 1 == adm.size());
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::vector<Leg> scale = RunScaleSweep();
  std::vector<Leg> adm = RunAdmissionSweep();
  PrintScaleTable(scale);
  PrintAdmissionTable(adm);
  WriteJson(scale, adm);
  return 0;
}
