/// \file bench_storage_exec.cc
/// \brief Experiment E11 — FI-MPPDB's storage/execution claims (paper
/// Fig. 1 / §II): hybrid row-column storage with compression and a
/// vectorized execution engine. Compares the row path (MVCC heap scan +
/// row-at-a-time expression evaluation) against the columnar path
/// (compressed chunks + vectorized filter/aggregate kernels), and reports
/// compression ratios.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "sql/executor.h"
#include "storage/column_store.h"

namespace {

using namespace ofi;  // NOLINT
using sql::Column;
using sql::Expr;
using sql::Schema;
using sql::TypeId;
using sql::Value;

constexpr int64_t kRows = 200'000;

Schema SalesSchema() {
  return Schema({Column{"region", TypeId::kString, "f"},
                 Column{"quantity", TypeId::kInt64, "f"},
                 Column{"amount", TypeId::kInt64, "f"}});
}

sql::Table BuildRowTable() {
  sql::Table t{SalesSchema()};
  Rng rng(3);
  static const char* kRegions[] = {"north", "south", "east", "west"};
  for (int64_t i = 0; i < kRows; ++i) {
    (void)t.Append({Value(kRegions[rng.Uniform(0, 3)]),
                    Value(rng.Uniform(1, 100)), Value(rng.Uniform(1, 10'000))});
  }
  return t;
}

storage::ColumnTable BuildColumnTable() {
  storage::ColumnTable t(SalesSchema());
  Rng rng(3);
  static const char* kRegions[] = {"north", "south", "east", "west"};
  for (int64_t i = 0; i < kRows; ++i) {
    (void)t.Append({Value(kRegions[rng.Uniform(0, 3)]),
                    Value(rng.Uniform(1, 100)), Value(rng.Uniform(1, 10'000))});
  }
  t.Seal();
  return t;
}

/// Row path: scan + filter + SUM through the volcano-style executor.
void BM_RowFilterSum(benchmark::State& state) {
  sql::Catalog catalog;
  catalog.Register("fact", BuildRowTable());
  for (auto _ : state) {
    auto plan = sql::MakeAggregate(
        sql::MakeScan("fact", Expr::Gt("f.quantity", Value(90))), {},
        {sql::AggSpec{sql::AggFunc::kSum, Expr::ColumnRef("f.amount"), "total"}});
    sql::Executor exec(&catalog);
    benchmark::DoNotOptimize(exec.Execute(plan));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_RowFilterSum)->Unit(benchmark::kMillisecond);

/// Column path: vectorized filter + selective sum on compressed chunks.
void BM_ColumnFilterSum(benchmark::State& state) {
  storage::ColumnTable table = BuildColumnTable();
  for (auto _ : state) {
    auto sel = table.FilterGtInt64("quantity", 90);
    auto sum = table.SumInt64("amount", &*sel);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ColumnFilterSum)->Unit(benchmark::kMillisecond);

void BM_RowStringFilter(benchmark::State& state) {
  sql::Catalog catalog;
  catalog.Register("fact", BuildRowTable());
  for (auto _ : state) {
    auto plan = sql::MakeScan("fact", Expr::Eq("f.region", Value("east")));
    sql::Executor exec(&catalog);
    benchmark::DoNotOptimize(exec.Execute(plan));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_RowStringFilter)->Unit(benchmark::kMillisecond);

void BM_ColumnStringFilter(benchmark::State& state) {
  storage::ColumnTable table = BuildColumnTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.FilterEqString("region", "east"));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ColumnStringFilter)->Unit(benchmark::kMillisecond);

void BM_ColumnFullSum(benchmark::State& state) {
  storage::ColumnTable table = BuildColumnTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.SumInt64("amount"));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ColumnFullSum)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  printf("\n=== E11: row vs columnar storage/execution ===\n");
  storage::ColumnTable ct = BuildColumnTable();
  sql::Table rt = BuildRowTable();
  size_t row_bytes = 0;
  for (const auto& row : rt.rows()) row_bytes += sql::RowByteSize(row);
  printf("row-store footprint      : %zu bytes\n", row_bytes);
  printf("column plain footprint   : %zu bytes\n", ct.PlainBytes());
  printf("column compressed        : %zu bytes (%.1fx vs plain columns, "
         "%.1fx vs rows)\n",
         ct.CompressedBytes(),
         static_cast<double>(ct.PlainBytes()) / ct.CompressedBytes(),
         static_cast<double>(row_bytes) / ct.CompressedBytes());

  auto time_it = [](auto&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  sql::Catalog catalog;
  catalog.Register("fact", BuildRowTable());
  double row_ms = time_it([&] {
    auto plan = sql::MakeAggregate(
        sql::MakeScan("fact", Expr::Gt("f.quantity", Value(90))), {},
        {sql::AggSpec{sql::AggFunc::kSum, Expr::ColumnRef("f.amount"), "total"}});
    sql::Executor exec(&catalog);
    benchmark::DoNotOptimize(exec.Execute(plan));
  });
  double col_ms = time_it([&] {
    auto sel = ct.FilterGtInt64("quantity", 90);
    benchmark::DoNotOptimize(ct.SumInt64("amount", &*sel));
  });
  printf("filter+sum over %lld rows: row path %.2f ms, vectorized column "
         "path %.2f ms (%.1fx)\n\n",
         static_cast<long long>(kRows), row_ms, col_ms, row_ms / col_ms);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintSummary();
  return 0;
}
