/// \file bench_column_scan.cc
/// \brief Experiment E15 — morsel-parallel columnar scans with zone-map
/// pruning. Two axes:
///
///  * pruning: the same range filter over a CLUSTERED key column (sorted
///    append, tight per-chunk zones — most chunks pruned) vs a SHUFFLED one
///    (every chunk's zone spans the whole domain — nothing prunes);
///  * parallelism: serial scan vs morsel-parallel on the shared thread
///    pool, which is bit-identical by construction (chunk-order merge).
///
/// The summary reports the machine-independent counters (chunks pruned,
/// rows decoded) alongside wall clock, matching EXPERIMENTS.md E15.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "storage/column_store.h"

namespace {

using namespace ofi;  // NOLINT
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

constexpr int64_t kRows = 1'000'000;
// A selective range: ~2% of the key domain.
constexpr int64_t kLo = 100'000;
constexpr int64_t kHi = 119'999;

Schema ScanSchema() {
  return Schema({Column{"k", TypeId::kInt64, ""},
                 Column{"v", TypeId::kInt64, ""}});
}

/// Clustered: keys appended in order, so each chunk's zone is a tight
/// ~4k-wide interval and a 2% range filter overlaps ~2% of chunks.
storage::ColumnTable BuildClustered() {
  storage::ColumnTable t(ScanSchema());
  Rng rng(11);
  for (int64_t i = 0; i < kRows; ++i) {
    (void)t.Append({Value(i), Value(rng.Uniform(1, 1000))});
  }
  t.Seal();
  return t;
}

/// Shuffled: same keys in random order, so every chunk's zone spans nearly
/// the full domain and the zone maps prune nothing.
storage::ColumnTable BuildShuffled() {
  std::vector<int64_t> keys(kRows);
  for (int64_t i = 0; i < kRows; ++i) keys[i] = i;
  Rng rng(11);
  for (int64_t i = kRows - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.Uniform(0, i)]);
  }
  storage::ColumnTable t(ScanSchema());
  for (int64_t i = 0; i < kRows; ++i) {
    (void)t.Append({Value(keys[i]), Value(rng.Uniform(1, 1000))});
  }
  t.Seal();
  return t;
}

void RunFilterSum(const storage::ColumnTable& t,
                  const storage::ScanOptions& opts,
                  storage::ScanStats* stats = nullptr) {
  auto sel = t.FilterBetweenInt64("k", kLo, kHi, opts, stats);
  benchmark::DoNotOptimize(t.SumInt64("v", &*sel, opts, stats));
}

void BM_ClusteredSerial(benchmark::State& state) {
  storage::ColumnTable t = BuildClustered();
  for (auto _ : state) RunFilterSum(t, storage::ScanOptions{});
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ClusteredSerial)->Unit(benchmark::kMillisecond);

void BM_ClusteredMorselParallel(benchmark::State& state) {
  storage::ColumnTable t = BuildClustered();
  storage::ScanOptions opts;
  opts.parallel = true;
  for (auto _ : state) RunFilterSum(t, opts);
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ClusteredMorselParallel)->Unit(benchmark::kMillisecond);

void BM_ShuffledSerial(benchmark::State& state) {
  storage::ColumnTable t = BuildShuffled();
  for (auto _ : state) RunFilterSum(t, storage::ScanOptions{});
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ShuffledSerial)->Unit(benchmark::kMillisecond);

void BM_ShuffledMorselParallel(benchmark::State& state) {
  storage::ColumnTable t = BuildShuffled();
  storage::ScanOptions opts;
  opts.parallel = true;
  for (auto _ : state) RunFilterSum(t, opts);
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ShuffledMorselParallel)->Unit(benchmark::kMillisecond);

/// Full-table aggregate (no filter): morsels split the chunk list itself.
void BM_FullSumSerial(benchmark::State& state) {
  storage::ColumnTable t = BuildClustered();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.SumInt64("v"));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_FullSumSerial)->Unit(benchmark::kMillisecond);

void BM_FullSumMorselParallel(benchmark::State& state) {
  storage::ColumnTable t = BuildClustered();
  storage::ScanOptions opts;
  opts.parallel = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.SumInt64("v", nullptr, opts));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_FullSumMorselParallel)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  printf("\n=== E15: zone-map pruning + morsel-parallel scan ===\n");
  storage::ColumnTable clustered = BuildClustered();
  storage::ColumnTable shuffled = BuildShuffled();

  auto probe = [](const storage::ColumnTable& t, const char* label) {
    storage::ScanStats st;
    auto sel = t.FilterBetweenInt64("k", kLo, kHi, storage::ScanOptions{}, &st);
    double pruned = st.chunks_total == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(st.chunks_pruned) /
                              static_cast<double>(st.chunks_total);
    printf("%-9s filter [%lld,%lld]: %zu/%zu chunks pruned (%.1f%%), "
           "%zu rows decoded, %zu matched\n",
           label, static_cast<long long>(kLo), static_cast<long long>(kHi),
           st.chunks_pruned, st.chunks_total, pruned, st.rows_decoded,
           st.rows_matched);
    return st;
  };
  storage::ScanStats cl = probe(clustered, "clustered");
  probe(shuffled, "shuffled");
  printf("decode reduction clustered vs full column: %.1fx fewer rows\n",
         static_cast<double>(kRows) /
             static_cast<double>(std::max<size_t>(1, cl.rows_decoded)));

  auto time_it = [](auto&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  storage::ScanOptions par;
  par.parallel = true;
  double serial_ms = time_it([&] { RunFilterSum(shuffled, {}); });
  double morsel_ms = time_it([&] { RunFilterSum(shuffled, par); });
  printf("unpruned filter+sum: serial %.2f ms, morsel-parallel %.2f ms "
         "(%.1fx, %d workers)\n\n",
         serial_ms, morsel_ms, serial_ms / morsel_ms,
         common::ThreadPool::Shared().num_threads());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintSummary();
  return 0;
}
