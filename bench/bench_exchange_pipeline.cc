/// \file bench_exchange_pipeline.cc
/// \brief Experiment E20 — pipelined vs barrier fragment execution across
/// the streaming exchange. A repartition-fused-aggregate join whose left
/// (orders) side is deliberately piled onto one hot producer DN via an
/// application sharder: under barrier execution every consumer waits for
/// the slowest producer's full encode before the first decode starts,
/// while the pipelined scheduler overlaps the hot producer's encode with
/// the idle consumers' decode/probe work, so the cluster-observed simulated
/// latency drops toward max(encode, decode) instead of their sum.
///
/// Sweeps producer skew (0.5 / 0.75 / 0.9 of orders on DN 0), cluster size
/// (2 / 4 DNs) and the exchange channel cap (uncapped / 64 KiB / 8 KiB —
/// capped legs pay modeled spill I/O in both modes). Every leg executes the
/// same loaded cluster in both modes with the scheduler reset in between,
/// so both start from idle resources at the same clock, and checks the row
/// sequences are bit-identical (the pipelined path's core contract).
///
/// Besides the plain-text tables, the binary writes the sweep as JSON
/// (default `BENCH_exchange_pipeline.json`, override with OFI_BENCH_JSON),
/// including the headline barrier/pipelined speedup the acceptance gate
/// reads (>= 1.5x at 2 DNs, skew 0.9, default caps).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/distributed_plan.h"
#include "common/rng.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

/// Orders are sharded by o_id under an identity sharder (o_id % dns), and
/// o_id values are drawn so ~`skew` of them land on DN 0 — the hot
/// producer. The join key (cust) stays uniform over the customers, so the
/// repartition exchange still spreads rows across every DN.
std::unique_ptr<Cluster> BuildCluster(int dns, int64_t orders,
                                      int64_t customers, double skew) {
  auto cluster = std::make_unique<Cluster>(dns, Protocol::kGtmLite);
  cluster->set_sharder(
      [](const sql::Value& v) { return static_cast<int>(v.AsInt()); });
  Schema orders_schema({Column{"o_id", TypeId::kInt64, ""},
                        Column{"cust", TypeId::kInt64, ""},
                        Column{"amount", TypeId::kInt64, ""}});
  Schema customers_schema({Column{"c_id", TypeId::kInt64, ""},
                           Column{"segment", TypeId::kInt64, ""}});
  (void)cluster->CreateTable("orders", orders_schema);
  (void)cluster->CreateTable("customers", customers_schema);
  Rng rng(20250808);
  for (int64_t c = 0; c < customers; ++c) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("customers", Value(c), {Value(c), Value(rng.Uniform(0, 7))});
    (void)t.Commit();
  }
  // Unique o_id per DN: id = slot * dns + dn, with the dn drawn hot-first.
  std::vector<int64_t> next_slot(dns, 0);
  for (int64_t o = 0; o < orders; ++o) {
    int dn = 0;
    if (static_cast<double>(rng.Uniform(0, 9999)) >= skew * 10000.0 &&
        dns > 1) {
      dn = static_cast<int>(rng.Uniform(1, dns - 1));
    }
    int64_t id = next_slot[dn]++ * dns + dn;
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("orders", Value(id),
                   {Value(id), Value(rng.Uniform(0, customers - 1)),
                    Value(rng.Uniform(1, 1000))});
    (void)t.Commit();
  }
  return cluster;
}

/// SELECT segment, SUM(amount), COUNT(*) FROM orders JOIN customers ON
/// cust = c_id GROUP BY segment, forced repartition, partial/final split.
DistOpPtr BuildPlan() {
  std::vector<DistributedAgg> aggs{
      DistributedAgg{sql::AggFunc::kSum, "amount", "total"},
      DistributedAgg{sql::AggFunc::kCount, "", "n"}};
  DistOpPtr core = MakeDistHashJoin(
      MakeDistScan("orders", nullptr), MakeDistScan("customers", nullptr),
      "cust", "c_id", nullptr, JoinStrategy::kRepartition);
  return MakeDistFinalAgg(
      MakeGather(MakeDistPartialAgg(std::move(core), {"segment"}, aggs),
                 /*gather_rows=*/false),
      {"segment"}, aggs);
}

std::string Canonical(const sql::Table& t) {
  std::string out;
  for (const auto& row : t.rows()) {
    for (const auto& v : row) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

struct Leg {
  int dns = 0;
  double skew = 0.0;
  int64_t orders = 0;
  size_t cap = 0;
  bool identical = false;
  DistExecStats barrier;
  DistExecStats piped;
  double speedup() const {
    return piped.sim_latency_us > 0
               ? static_cast<double>(barrier.sim_latency_us) /
                     static_cast<double>(piped.sim_latency_us)
               : 0.0;
  }
};

Leg RunOnce(int dns, double skew, int64_t orders, int64_t customers,
            size_t cap) {
  Leg leg;
  leg.dns = dns;
  leg.skew = skew;
  leg.orders = orders;
  leg.cap = cap;
  auto cluster = BuildCluster(dns, orders, customers, skew);
  DistExecOptions opts;
  opts.max_channel_bytes = cap;
  // Both modes run on idle resources at clock 0: without the resets the
  // second execution gap-fits behind the first's (and the load's) busy
  // intervals and the comparison measures queueing, not execution.
  cluster->scheduler().Reset();
  opts.pipeline = false;
  auto barrier = ExecuteDistPlan(cluster.get(), BuildPlan(), opts);
  if (!barrier.ok()) {
    fprintf(stderr, "barrier run failed: %s\n",
            barrier.status().ToString().c_str());
    return leg;
  }
  cluster->scheduler().Reset();
  opts.pipeline = true;
  auto piped = ExecuteDistPlan(cluster.get(), BuildPlan(), opts);
  if (!piped.ok()) {
    fprintf(stderr, "pipelined run failed: %s\n",
            piped.status().ToString().c_str());
    return leg;
  }
  leg.barrier = barrier->stats;
  leg.piped = piped->stats;
  leg.identical = Canonical(barrier->table) == Canonical(piped->table);
  return leg;
}

constexpr int64_t kHeadlineOrders = 32'000;
constexpr int64_t kSweepOrders = 8'000;
constexpr int64_t kCustomers = 200;

Leg RunHeadline() { return RunOnce(2, 0.9, kHeadlineOrders, kCustomers, 0); }

std::vector<Leg> RunSkewSweep() {
  std::vector<Leg> legs;
  for (int dns : {2, 4}) {
    for (double skew : {0.5, 0.75, 0.9}) {
      legs.push_back(RunOnce(dns, skew, kSweepOrders, kCustomers, 0));
    }
  }
  return legs;
}

std::vector<Leg> RunCapSweep() {
  std::vector<Leg> legs;
  for (size_t cap : {size_t{0}, size_t{64} * 1024, size_t{8} * 1024}) {
    legs.push_back(RunOnce(2, 0.9, kSweepOrders, kCustomers, cap));
  }
  return legs;
}

void BM_E20(benchmark::State& state) {
  bool pipelined = state.range(0) != 0;
  auto cluster = BuildCluster(2, kSweepOrders, kCustomers, 0.9);
  DistExecOptions opts;
  opts.pipeline = pipelined;
  DistExecStats last;
  for (auto _ : state) {
    cluster->scheduler().Reset();
    auto r = ExecuteDistPlan(cluster.get(), BuildPlan(), opts);
    if (r.ok()) last = r->stats;
    benchmark::DoNotOptimize(last.sim_latency_us);
  }
  state.counters["sim_us"] = static_cast<double>(last.sim_latency_us);
  state.counters["overlap_us"] = static_cast<double>(last.pipeline_overlap_us);
  state.counters["batches_streamed"] =
      static_cast<double>(last.batches_streamed);
}

void RegisterAll() {
  for (int pipelined : {0, 1}) {
    benchmark::RegisterBenchmark(
        (std::string("E20/skew90/dns:2/") +
         (pipelined ? "pipelined" : "barrier"))
            .c_str(),
        BM_E20)
        ->Args({pipelined})
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void PrintLegRow(const Leg& l) {
  printf("%4d %5.2f %8lld %9zu %12lld %12lld %8.2fx %11lld %9zu %5s\n", l.dns,
         l.skew, static_cast<long long>(l.orders), l.cap,
         static_cast<long long>(l.barrier.sim_latency_us),
         static_cast<long long>(l.piped.sim_latency_us), l.speedup(),
         static_cast<long long>(l.piped.pipeline_overlap_us),
         l.piped.batches_streamed, l.identical ? "yes" : "NO");
}

void PrintTables(const Leg& headline, const std::vector<Leg>& skew,
                 const std::vector<Leg>& caps) {
  printf("\n=== E20: pipelined vs barrier exchange "
         "(repartition fused-agg join, hot producer on DN 0) ===\n");
  printf("%4s %5s %8s %9s %12s %12s %9s %11s %9s %5s\n", "dns", "skew",
         "orders", "cap_B", "barrier_us", "piped_us", "speedup", "overlap_us",
         "streamed", "ident");
  printf("-- headline --\n");
  PrintLegRow(headline);
  printf("-- skew sweep --\n");
  for (const Leg& l : skew) PrintLegRow(l);
  printf("-- channel-cap sweep (2 DNs, skew 0.9) --\n");
  for (const Leg& l : caps) PrintLegRow(l);
  printf("(expect: headline speedup >= 1.5x, every leg bit-identical, "
         "speedup grows with skew and shrinks with dns)\n\n");
}

void EmitLeg(FILE* f, const Leg& l, bool last) {
  fprintf(f,
          "    {\"dns\": %d, \"skew\": %.2f, \"orders\": %lld, "
          "\"cap_bytes\": %zu, \"barrier_us\": %lld, \"pipelined_us\": %lld, "
          "\"speedup\": %.3f, \"overlap_us\": %lld, "
          "\"batches_streamed\": %zu, \"shuffle_bytes\": %zu, "
          "\"spill_bytes\": %zu, \"identical\": %s}%s\n",
          l.dns, l.skew, static_cast<long long>(l.orders), l.cap,
          static_cast<long long>(l.barrier.sim_latency_us),
          static_cast<long long>(l.piped.sim_latency_us), l.speedup(),
          static_cast<long long>(l.piped.pipeline_overlap_us),
          l.piped.batches_streamed, l.piped.shuffle_bytes,
          l.piped.spill_bytes, l.identical ? "true" : "false",
          last ? "" : ",");
}

void WriteJson(const Leg& headline, const std::vector<Leg>& skew,
               const std::vector<Leg>& caps) {
  const char* path = std::getenv("OFI_BENCH_JSON");
  if (path == nullptr) path = "BENCH_exchange_pipeline.json";
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(f, "{\n  \"bench\": \"exchange_pipeline\",\n");
  fprintf(f,
          "  \"config\": {\"protocol\": \"gtm_lite\", \"customers\": %lld, "
          "\"headline_orders\": %lld, \"sweep_orders\": %lld, "
          "\"join\": \"repartition fused-agg orders x customers\"},\n",
          static_cast<long long>(kCustomers),
          static_cast<long long>(kHeadlineOrders),
          static_cast<long long>(kSweepOrders));
  fprintf(f, "  \"speedup_headline\": %.3f,\n", headline.speedup());
  fprintf(f, "  \"headline\": [\n");
  EmitLeg(f, headline, true);
  fprintf(f, "  ],\n  \"skew_sweep\": [\n");
  for (size_t i = 0; i < skew.size(); ++i) {
    EmitLeg(f, skew[i], i + 1 == skew.size());
  }
  fprintf(f, "  ],\n  \"cap_sweep\": [\n");
  for (size_t i = 0; i < caps.size(); ++i) {
    EmitLeg(f, caps[i], i + 1 == caps.size());
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  Leg headline = RunHeadline();
  std::vector<Leg> skew = RunSkewSweep();
  std::vector<Leg> caps = RunCapSweep();
  PrintTables(headline, skew, caps);
  WriteJson(headline, skew, caps);
  return 0;
}
