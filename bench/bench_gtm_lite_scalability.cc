/// \file bench_gtm_lite_scalability.cc
/// \brief Experiment E1 — reproduces paper Fig. 3 ("GTM-Lite scalability"):
/// modified TPC-C throughput at 1/2/4/8 data nodes for
///   * Baseline  : Postgres-XC-style protocol, every transaction through GTM
///   * GTM-Lite SS: 100% single-shard transactions
///   * GTM-Lite MS: 90% single-shard / 10% multi-shard
///
/// Expected shape (matching the paper): the baseline saturates once the
/// serialized GTM becomes the bottleneck (flat beyond ~2-4 nodes); GTM-Lite
/// scales out with the node count, SS best of all.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cluster/tpcc_workload.h"

namespace {

using namespace ofi;          // NOLINT
using namespace ofi::cluster; // NOLINT

LatencyModel Fig3Latency() {
  LatencyModel m;
  m.network_hop_us = 25;
  m.gtm_service_us = 35;  // serialized GTM critical section
  m.dn_stmt_service_us = 40;
  m.dn_commit_service_us = 15;
  // This calibration predates the explicit durable log force (E19); the
  // commit service time above already stands in for durability here.
  m.log_write_service_us = 0;
  return m;
}

TpccConfig Fig3Config(double multi_shard_fraction) {
  TpccConfig cfg;
  cfg.warehouses_per_dn = 12;
  cfg.clients_per_dn = 12;
  cfg.multi_shard_fraction = multi_shard_fraction;
  cfg.duration_us = 1'000'000;  // 1 simulated second
  return cfg;
}

TpccResult RunOnce(int dns, Protocol protocol, double ms_fraction) {
  Cluster cluster(dns, protocol, Fig3Latency());
  TpccConfig cfg = Fig3Config(ms_fraction);
  Status st = LoadTpcc(&cluster, cfg);
  if (!st.ok()) {
    fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return {};
  }
  return RunTpcc(&cluster, cfg);
}

void BM_Fig3(benchmark::State& state) {
  int dns = static_cast<int>(state.range(0));
  int variant = static_cast<int>(state.range(1));
  Protocol protocol = variant == 0 ? Protocol::kBaselineGtm : Protocol::kGtmLite;
  double ms = variant == 2 ? 0.10 : 0.0;

  TpccResult last{};
  for (auto _ : state) {
    last = RunOnce(dns, protocol, ms);
    benchmark::DoNotOptimize(last.committed);
  }
  state.counters["ktps"] = last.throughput_tps / 1000.0;
  state.counters["gtm_req"] = static_cast<double>(last.gtm_requests);
  state.counters["aborted"] = static_cast<double>(last.aborted);
  state.counters["upgrades"] = static_cast<double>(last.upgrades);
  state.counters["downgrades"] = static_cast<double>(last.downgrades);
}

void RegisterAll() {
  for (int variant : {0, 1, 2}) {
    for (int dns : {1, 2, 4, 8}) {
      const char* name = variant == 0   ? "Baseline"
                         : variant == 1 ? "GTMLite_SS"
                                        : "GTMLite_MS";
      benchmark::RegisterBenchmark(
          (std::string("Fig3/") + name + "/dns:" + std::to_string(dns)).c_str(),
          BM_Fig3)
          ->Args({dns, variant})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

/// Prints the Fig. 3 table exactly like the paper's series.
void PrintFig3Table() {
  printf("\n=== Fig. 3 reproduction: GTM-Lite scalability (TPC-C-like, ktps) ===\n");
  printf("%-6s %12s %14s %14s\n", "nodes", "Baseline", "GTM-Lite SS", "GTM-Lite MS");
  for (int dns : {1, 2, 4, 8}) {
    TpccResult base = RunOnce(dns, Protocol::kBaselineGtm, 0.0);
    TpccResult ss = RunOnce(dns, Protocol::kGtmLite, 0.0);
    TpccResult ms = RunOnce(dns, Protocol::kGtmLite, 0.10);
    printf("%-6d %12.1f %14.1f %14.1f\n", dns, base.throughput_tps / 1000.0,
           ss.throughput_tps / 1000.0, ms.throughput_tps / 1000.0);
  }
  printf("(expect: baseline flattens at the GTM ceiling; GTM-Lite scales, SS "
         "highest)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintFig3Table();
  return 0;
}
