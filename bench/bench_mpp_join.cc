/// \file bench_mpp_join.cc
/// \brief Cross-shard joins over the exchange (paper Fig. 1: data nodes
/// "exchange data on-demand and execute the query in parallel"). Compares
/// broadcast vs repartition vs the naive ship-everything baseline on skewed
/// and uniform key distributions: bytes moved, exchange batches, and both
/// simulated-latency models (parallel max-over-DNs vs chained round trips).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

/// Orders (left, `rows` rows) joined to customers (right, `dim_rows` rows)
/// on customer id. skew=false draws keys uniformly; skew=true draws them
/// Zipf(0.99), piling most orders onto a few hot customers.
std::unique_ptr<Cluster> BuildJoinCluster(int dns, int64_t rows,
                                          int64_t dim_rows, bool skew) {
  auto cluster = std::make_unique<Cluster>(dns, Protocol::kGtmLite);
  Schema orders({Column{"o_id", TypeId::kInt64, ""},
                 Column{"cust", TypeId::kInt64, ""},
                 Column{"amount", TypeId::kInt64, ""}});
  Schema customers({Column{"c_id", TypeId::kInt64, ""},
                    Column{"segment", TypeId::kInt64, ""}});
  (void)cluster->CreateTable("orders", orders);
  (void)cluster->CreateTable("customers", customers);
  Rng rng(41);
  Zipfian zipf(static_cast<uint64_t>(dim_rows), 0.99, 41);
  for (int64_t c = 0; c < dim_rows; ++c) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("customers", Value(c), {Value(c), Value(rng.Uniform(0, 7))});
    (void)t.Commit();
  }
  for (int64_t o = 0; o < rows; ++o) {
    int64_t cust = skew ? static_cast<int64_t>(zipf.Next())
                        : rng.Uniform(0, dim_rows - 1);
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("orders", Value(o),
                   {Value(o), Value(cust), Value(rng.Uniform(1, 1000))});
    (void)t.Commit();
  }
  return cluster;
}

DistributedJoinSpec JoinSpec() {
  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "customers";
  spec.left_key = "cust";
  spec.right_key = "c_id";
  return spec;
}

/// range: dns, dim_rows, strategy (0 broadcast / 1 repartition / 2 auto),
/// skew.
void BM_DistributedJoin(benchmark::State& state) {
  int dns = static_cast<int>(state.range(0));
  int64_t dim_rows = state.range(1);
  auto cluster = BuildJoinCluster(dns, 8'000, dim_rows, state.range(3) != 0);
  DistributedJoinOptions options;
  options.strategy = state.range(2) == 0   ? JoinStrategy::kBroadcast
                     : state.range(2) == 1 ? JoinStrategy::kRepartition
                                           : JoinStrategy::kAuto;
  DistributedJoinResult last;
  for (auto _ : state) {
    auto r = DistributedJoin(cluster.get(), JoinSpec(), options);
    if (r.ok()) last = std::move(r).ValueOrDie();
    benchmark::DoNotOptimize(last.table);
  }
  state.counters["moved_bytes"] =
      static_cast<double>(last.shuffle_bytes + last.broadcast_bytes);
  state.counters["naive_bytes"] = static_cast<double>(last.naive_bytes);
  state.counters["batches"] = static_cast<double>(last.exchange_batches);
  state.counters["sim_us"] = static_cast<double>(last.sim_latency_us);
  state.counters["sim_serial_us"] =
      static_cast<double>(last.sim_latency_serial_us);
}
BENCHMARK(BM_DistributedJoin)
    ->ArgNames({"dns", "dim", "strat", "skew"})
    ->Args({4, 100, 0, 0})
    ->Args({4, 100, 1, 0})
    ->Args({4, 100, 2, 0})
    ->Args({4, 8000, 0, 0})
    ->Args({4, 8000, 1, 0})
    ->Args({4, 8000, 2, 0})
    ->Args({4, 8000, 1, 1})
    ->Args({8, 8000, 1, 0})
    ->Unit(benchmark::kMillisecond);

const char* StratName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kBroadcast: return "broadcast";
    case JoinStrategy::kRepartition: return "repartition";
    case JoinStrategy::kAuto: return "auto";
  }
  return "?";
}

/// Bytes moved per strategy vs the naive baseline, small and large build
/// sides, uniform and skewed keys.
void PrintMovementTable() {
  printf("\n=== Distributed join: bytes moved across DNs (4 DNs, 8000 orders) "
         "===\n");
  printf("%-9s %-8s %-12s %12s %12s %12s %8s\n", "dim rows", "keys", "strategy",
         "moved (B)", "naive (B)", "batches", "auto?");
  for (auto [dim_rows, skew] :
       {std::pair<int64_t, bool>{100, false}, {8000, false}, {8000, true}}) {
    auto cluster = BuildJoinCluster(4, 8'000, dim_rows, skew);
    auto auto_r = DistributedJoin(cluster.get(), JoinSpec());
    JoinStrategy chosen =
        auto_r.ok() ? auto_r->strategy : JoinStrategy::kBroadcast;
    for (auto strat : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
      DistributedJoinOptions options;
      options.strategy = strat;
      auto r = DistributedJoin(cluster.get(), JoinSpec(), options);
      if (!r.ok()) continue;
      printf("%-9lld %-8s %-12s %12zu %12zu %12zu %8s\n", (long long)dim_rows,
             skew ? "zipf" : "uniform", StratName(strat),
             r->shuffle_bytes + r->broadcast_bytes, r->naive_bytes,
             r->exchange_batches, strat == chosen ? "<-" : "");
    }
  }
  printf("(broadcast ~ |small| x (N-1) wins on a small build side; "
         "repartition ~ (|L|+|R|) x (N-1)/N wins when both sides are large; "
         "skew does not change totals, only per-channel balance)\n\n");
}

/// Per-channel balance under skew: repartition sends each key to one owner,
/// so a Zipf-hot key concentrates bytes on one destination DN.
void PrintSkewTable() {
  printf("=== Repartition channel balance: uniform vs zipf keys (4 DNs) ===\n");
  printf("%-8s %14s %14s %8s\n", "keys", "max in (B)", "min in (B)",
         "imbal");
  for (bool skew : {false, true}) {
    auto cluster = BuildJoinCluster(4, 8'000, 8'000, skew);
    DistributedJoinOptions options;
    options.strategy = JoinStrategy::kRepartition;
    auto r = DistributedJoin(cluster.get(), JoinSpec(), options);
    if (!r.ok()) continue;
    std::map<int, size_t> in_bytes;
    for (const auto& ch : r->channels) {
      if (ch.src != ch.dst) in_bytes[ch.dst] += ch.bytes;
    }
    size_t max_in = 0, min_in = SIZE_MAX;
    for (const auto& [dst, b] : in_bytes) {
      max_in = std::max(max_in, b);
      min_in = std::min(min_in, b);
    }
    if (min_in == SIZE_MAX) min_in = 0;
    printf("%-8s %14zu %14zu %7.2fx\n", skew ? "zipf" : "uniform", max_in,
           min_in,
           static_cast<double>(max_in) /
               static_cast<double>(std::max<size_t>(1, min_in)));
  }
  printf("(the hot key's owner DN receives disproportionate bytes under "
         "zipf — the classic shuffle-skew problem broadcast avoids)\n\n");
}

/// Both simulated-latency models across cluster sizes.
void PrintLatencyTable() {
  printf("=== Distributed join: simulated latency, parallel vs chained ===\n");
  printf("%-4s %-12s %14s %16s\n", "DNs", "strategy", "sim par (us)",
         "sim serial (us)");
  for (int dns : {2, 4, 8}) {
    auto cluster = BuildJoinCluster(dns, 8'000, 8'000, false);
    for (auto strat : {JoinStrategy::kBroadcast, JoinStrategy::kRepartition}) {
      DistributedJoinOptions options;
      options.strategy = strat;
      cluster->ResetSimTime();
      auto r = DistributedJoin(cluster.get(), JoinSpec(), options);
      if (!r.ok()) continue;
      printf("%-4d %-12s %14lld %16lld\n", dns, StratName(strat),
             (long long)r->sim_latency_us, (long long)r->sim_latency_serial_us);
    }
  }
  printf("(parallel: exchange completes at the slowest sender + one hop, so "
         "repartition IMPROVES with DNs as each node ships/decodes 1/N; the "
         "chained model grows with N)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintMovementTable();
  PrintSkewTable();
  PrintLatencyTable();
  return 0;
}
