/// \file bench_mpp_aggregate.cc
/// \brief The MPP execution claim of paper Fig. 1: distributed aggregation
/// with partial/final decomposition ships only group-sized state to the
/// coordinator. Reports bytes moved (partial vs naive ship-all-rows) and
/// wall time across cluster sizes and group cardinalities.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::AggFunc;
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

std::unique_ptr<Cluster> BuildSalesCluster(int dns, int64_t rows,
                                           int64_t groups) {
  auto cluster = std::make_unique<Cluster>(dns, Protocol::kGtmLite);
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"region", TypeId::kInt64, ""},
                 Column{"amount", TypeId::kInt64, ""}});
  (void)cluster->CreateTable("sales", schema);
  Rng rng(3);
  for (int64_t i = 0; i < rows; ++i) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("sales", Value(i),
                   {Value(i), Value(i % groups), Value(rng.Uniform(1, 1000))});
    (void)t.Commit();
  }
  return cluster;
}

/// range(2): 0 = serial inline scatter, 1 = thread-pool scatter.
void BM_DistributedGroupBy(benchmark::State& state) {
  int dns = static_cast<int>(state.range(0));
  int64_t groups = state.range(1);
  DistributedOptions options;
  options.parallel = state.range(2) != 0;
  auto cluster = BuildSalesCluster(dns, 20'000, groups);
  DistributedResult last;
  for (auto _ : state) {
    auto r = DistributedAggregate(cluster.get(), "sales", nullptr, {"region"},
                                  {{AggFunc::kSum, "amount", "total"},
                                   {AggFunc::kCount, "", "n"}},
                                  options);
    if (r.ok()) last = std::move(r).ValueOrDie();
    benchmark::DoNotOptimize(last.table);
  }
  state.counters["partial_bytes"] = static_cast<double>(last.partial_bytes);
  state.counters["naive_bytes"] = static_cast<double>(last.naive_bytes);
  state.counters["sim_us"] = static_cast<double>(last.sim_latency_us);
  state.counters["sim_serial_us"] =
      static_cast<double>(last.sim_latency_serial_us);
}
BENCHMARK(BM_DistributedGroupBy)
    ->ArgNames({"dns", "groups", "pool"})
    ->Args({1, 10, 0})
    ->Args({1, 10, 1})
    ->Args({2, 10, 0})
    ->Args({2, 10, 1})
    ->Args({4, 10, 0})
    ->Args({4, 10, 1})
    ->Args({8, 10, 0})
    ->Args({8, 10, 1})
    ->Args({4, 1000, 1})
    ->Unit(benchmark::kMillisecond);

void PrintMovementTable() {
  printf("\n=== MPP partial/final aggregation: data moved DN -> CN ===\n");
  printf("%-6s %-8s %14s %14s %10s\n", "DNs", "groups", "partial (B)",
         "ship-rows (B)", "saving");
  for (auto [dns, groups] : {std::pair<int, int64_t>{2, 10},
                             {4, 10},
                             {8, 10},
                             {4, 1000},
                             {4, 10000}}) {
    auto cluster = BuildSalesCluster(dns, 20'000, groups);
    auto r = DistributedAggregate(cluster.get(), "sales", nullptr, {"region"},
                                  {{AggFunc::kSum, "amount", "total"},
                                   {AggFunc::kCount, "", "n"}});
    if (!r.ok()) continue;
    printf("%-6d %-8lld %14zu %14zu %9.0fx\n", dns, (long long)groups,
           r->partial_bytes, r->naive_bytes,
           static_cast<double>(r->naive_bytes) /
               static_cast<double>(std::max<size_t>(1, r->partial_bytes)));
  }
  printf("(partial state grows with groups x shards, never with row count — "
         "the reason MPP engines push aggregation below the exchange)\n\n");
}

/// Serial-vs-parallel scatter: wall clock (thread pool) and simulated
/// latency (max-over-DNs vs chained-sum) at 1/2/4/8 DNs.
void PrintScatterTable() {
  printf("=== MPP scatter: serial vs thread-pool, wall + simulated ===\n");
  printf("%-4s %12s %12s %8s %12s %14s\n", "DNs", "serial (ms)", "pool (ms)",
         "speedup", "sim par (us)", "sim serial (us)");
  for (int dns : {1, 2, 4, 8}) {
    auto cluster = BuildSalesCluster(dns, 40'000, 10);
    auto time_run = [&](bool parallel) {
      DistributedOptions options;
      options.parallel = parallel;
      cluster->ResetSimTime();
      auto t0 = std::chrono::steady_clock::now();
      auto r = DistributedAggregate(cluster.get(), "sales", nullptr, {"region"},
                                    {{AggFunc::kSum, "amount", "total"},
                                     {AggFunc::kCount, "", "n"}},
                                    options);
      auto t1 = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      return std::pair<double, DistributedResult>(
          ms, r.ok() ? std::move(r).ValueOrDie() : DistributedResult{});
    };
    (void)time_run(true);  // warm-up: touch every shard before timing
    auto [serial_ms, serial_r] = time_run(false);
    auto [pool_ms, pool_r] = time_run(true);
    (void)serial_r;
    printf("%-4d %12.2f %12.2f %7.2fx %12lld %14lld\n", dns, serial_ms, pool_ms,
           serial_ms / std::max(pool_ms, 1e-9), (long long)pool_r.sim_latency_us,
           (long long)pool_r.sim_latency_serial_us);
  }
  printf("(wall-clock speedup needs a multi-core host; simulated latency is "
         "deterministic: max-over-DNs stays ~flat, chained-sum grows with N)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintMovementTable();
  PrintScatterTable();
  return 0;
}
