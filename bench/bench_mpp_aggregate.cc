/// \file bench_mpp_aggregate.cc
/// \brief The MPP execution claim of paper Fig. 1: distributed aggregation
/// with partial/final decomposition ships only group-sized state to the
/// coordinator. Reports bytes moved (partial vs naive ship-all-rows) and
/// wall time across cluster sizes and group cardinalities.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::AggFunc;
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

std::unique_ptr<Cluster> BuildSalesCluster(int dns, int64_t rows,
                                           int64_t groups) {
  auto cluster = std::make_unique<Cluster>(dns, Protocol::kGtmLite);
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"region", TypeId::kInt64, ""},
                 Column{"amount", TypeId::kInt64, ""}});
  (void)cluster->CreateTable("sales", schema);
  Rng rng(3);
  for (int64_t i = 0; i < rows; ++i) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("sales", Value(i),
                   {Value(i), Value(i % groups), Value(rng.Uniform(1, 1000))});
    (void)t.Commit();
  }
  return cluster;
}

void BM_DistributedGroupBy(benchmark::State& state) {
  int dns = static_cast<int>(state.range(0));
  int64_t groups = state.range(1);
  auto cluster = BuildSalesCluster(dns, 20'000, groups);
  DistributedResult last;
  for (auto _ : state) {
    auto r = DistributedAggregate(cluster.get(), "sales", nullptr, {"region"},
                                  {{AggFunc::kSum, "amount", "total"},
                                   {AggFunc::kCount, "", "n"}});
    if (r.ok()) last = std::move(r).ValueOrDie();
    benchmark::DoNotOptimize(last.table);
  }
  state.counters["partial_bytes"] = static_cast<double>(last.partial_bytes);
  state.counters["naive_bytes"] = static_cast<double>(last.naive_bytes);
}
BENCHMARK(BM_DistributedGroupBy)
    ->Args({2, 10})
    ->Args({4, 10})
    ->Args({8, 10})
    ->Args({4, 1000})
    ->Unit(benchmark::kMillisecond);

void PrintMovementTable() {
  printf("\n=== MPP partial/final aggregation: data moved DN -> CN ===\n");
  printf("%-6s %-8s %14s %14s %10s\n", "DNs", "groups", "partial (B)",
         "ship-rows (B)", "saving");
  for (auto [dns, groups] : {std::pair<int, int64_t>{2, 10},
                             {4, 10},
                             {8, 10},
                             {4, 1000},
                             {4, 10000}}) {
    auto cluster = BuildSalesCluster(dns, 20'000, groups);
    auto r = DistributedAggregate(cluster.get(), "sales", nullptr, {"region"},
                                  {{AggFunc::kSum, "amount", "total"},
                                   {AggFunc::kCount, "", "n"}});
    if (!r.ok()) continue;
    printf("%-6d %-8lld %14zu %14zu %9.0fx\n", dns, (long long)groups,
           r->partial_bytes, r->naive_bytes,
           static_cast<double>(r->naive_bytes) /
               static_cast<double>(std::max<size_t>(1, r->partial_bytes)));
  }
  printf("(partial state grows with groups x shards, never with row count — "
         "the reason MPP engines push aggregation below the exchange)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintMovementTable();
  return 0;
}
