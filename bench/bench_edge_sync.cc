/// \file bench_edge_sync.cc
/// \brief Experiment E9 — the device-edge-cloud data collaboration platform
/// (paper §IV-B2). Measures direct device-to-device sync versus the
/// current-MBaaS baseline (sync through the cloud): simulated latency,
/// bytes on the WAN, and the paper's "at least 10X faster" claim; plus
/// gossip convergence cost as the ad-hoc network grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "edge/platform.h"

namespace {

using namespace ofi;        // NOLINT
using namespace ofi::edge;  // NOLINT
using sql::Value;

/// A platform with n devices, one edge server and one cloud region,
/// with `payload` fresh keys written on device 0.
std::unique_ptr<Platform> BuildPlatform(int devices, int payload_keys,
                                        size_t value_bytes) {
  auto p = std::make_unique<Platform>();
  std::vector<SyncNode*> devs;
  for (int i = 0; i < devices; ++i) {
    devs.push_back(p->AddNode("device" + std::to_string(i), Tier::kDevice));
  }
  p->AddNode("edge0", Tier::kEdge);
  p->AddNode("cloud", Tier::kCloud);
  Rng rng(13);
  for (int k = 0; k < payload_keys; ++k) {
    devs[0]->Put("photos/" + std::to_string(k),
                 Value(rng.AlphaString(value_bytes)));
  }
  return p;
}

void BM_DirectDeviceSync(benchmark::State& state) {
  SyncStats stats;
  for (auto _ : state) {
    auto p = BuildPlatform(2, 20, 1024);
    stats = p->SyncPair(1, 2);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["sim_latency_us"] = static_cast<double>(stats.latency_us);
  state.counters["bytes"] = static_cast<double>(stats.bytes_on_wire);
}
BENCHMARK(BM_DirectDeviceSync)->Unit(benchmark::kMillisecond);

void BM_ThroughCloudSync(benchmark::State& state) {
  SyncStats stats;
  for (auto _ : state) {
    auto p = BuildPlatform(2, 20, 1024);
    auto r = p->SyncThroughCloud(1, 2);
    if (r.ok()) stats = *r;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["sim_latency_us"] = static_cast<double>(stats.latency_us);
  state.counters["bytes"] = static_cast<double>(stats.bytes_on_wire);
}
BENCHMARK(BM_ThroughCloudSync)->Unit(benchmark::kMillisecond);

void BM_GossipConvergence(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  SyncStats stats;
  for (auto _ : state) {
    auto p = BuildPlatform(devices, 10, 256);
    stats = p->SyncAllPairs();
    benchmark::DoNotOptimize(stats);
  }
  state.counters["entries_sent"] = static_cast<double>(stats.entries_sent);
}
BENCHMARK(BM_GossipConvergence)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void PrintComparison() {
  printf("\n=== E9: device-to-device sync — direct vs through-cloud ===\n");
  printf("%-10s %18s %18s %10s\n", "payload", "direct (sim us)",
         "via cloud (sim us)", "ratio");
  for (size_t bytes : {256, 1024, 4096, 16384}) {
    auto p1 = BuildPlatform(2, 20, bytes);
    SyncStats direct = p1->SyncPair(1, 2);
    auto p2 = BuildPlatform(2, 20, bytes);
    auto through = p2->SyncThroughCloud(1, 2);
    double ratio = through.ok() && direct.latency_us > 0
                       ? static_cast<double>(through->latency_us) /
                             static_cast<double>(direct.latency_us)
                       : 0;
    printf("%-10zu %18lld %18lld %9.1fx\n", bytes * 20,
           static_cast<long long>(direct.latency_us),
           static_cast<long long>(through.ok() ? through->latency_us : 0), ratio);
  }
  printf("(paper: direct communication is at least 10X faster than going "
         "through the Internet)\n");

  printf("\n=== E9b: no-loss / no-dup accounting ===\n");
  auto p = BuildPlatform(4, 50, 512);
  SyncStats round1 = p->SyncAllPairs();
  SyncStats round2 = p->SyncAllPairs();
  printf("gossip round 1: %zu entries shipped\n", round1.entries_sent);
  printf("gossip round 2: %zu entries shipped (converged -> nothing resent)\n",
         round2.entries_sent);
  printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintComparison();
  return 0;
}
