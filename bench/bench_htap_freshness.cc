/// \file bench_htap_freshness.cc
/// \brief Experiment E21 — HTAP freshness cost: what a columnar scan pays
/// to see the freshest committed data, swept over write rate and merge
/// threshold. Three strategies over the same write-then-scan stream:
///
///   delta    — the shipped design: scans union sealed kernels with the
///              row-format delta tail; background merges (threshold T)
///              compact the tail OFF the query critical path.
///   rebuild  — the pre-delta-store alternative: re-encode the whole shard
///              before every query (modelled as a force-merge plus a full
///              re-encode charge on each DN, queued ahead of the scan).
///   row      — the old stale-fallback: give up on columnar and scan the
///              MVCC heap (flat per-statement DN charge, no kernels, no
///              zone maps).
///
/// Every strategy returns bit-identical results (checked); the sweep is
/// purely about the simulated critical path. Expected shape: delta pays a
/// small per-query tail term that grows with writes-per-query and is
/// capped by the merge threshold; rebuild pays the full re-encode on every
/// query; row pays the heap-scan statement cost. Delta wins across the
/// sweep — the reason the delta store exists.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::AggFunc;
using sql::Column;
using sql::Expr;
using sql::Row;
using sql::Schema;
using sql::TypeId;
using sql::Value;

constexpr int kDns = 4;
constexpr int64_t kBaseRows = 20000;
constexpr int kQueries = 40;

struct Leg {
  const char* strategy;
  int writes_per_query;
  size_t merge_threshold;  // 0 = not applicable
  double mean_scan_us = 0;
  long long max_scan_us = 0;
  double mean_delta_rows = 0;
  long long merges = 0;
  long long merge_rows = 0;
  long long count = 0;  // final COUNT(*) — cross-strategy sanity anchor
};

void LoadBase(Cluster* cluster, int64_t* next_key) {
  Rng rng(404);
  for (int64_t base = 0; base < kBaseRows; base += 1000) {
    Txn t = cluster->Begin(TxnScope::kMultiShard);
    for (int64_t i = base; i < base + 1000; ++i) {
      Row row = {Value(i), Value(i % 5), Value(rng.Uniform(1, 1000))};
      if (!t.Insert("sales", row[0], row).ok()) std::abort();
    }
    if (!t.Commit().ok()) std::abort();
  }
  *next_key = kBaseRows;
}

Leg RunLeg(const char* strategy, int writes_per_query,
           size_t merge_threshold) {
  Cluster cluster(kDns, Protocol::kGtmLite);
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"region", TypeId::kInt64, ""},
                 Column{"amount", TypeId::kInt64, ""}});
  if (!cluster.CreateTable("sales", schema).ok()) std::abort();
  int64_t next_key = 0;
  LoadBase(&cluster, &next_key);
  if (!cluster.RegisterColumnar("sales").ok()) std::abort();

  const bool delta = std::string(strategy) == "delta";
  const bool rebuild = std::string(strategy) == "rebuild";
  cluster.set_auto_merge(delta);
  if (delta) cluster.set_delta_merge_threshold(merge_threshold);

  DistributedOptions opts;
  opts.use_columnar = std::string(strategy) != "row";

  Leg leg{strategy, writes_per_query, delta ? merge_threshold : 0};
  Rng rng(7 + writes_per_query);
  double total_us = 0, total_delta = 0;
  for (int q = 0; q < kQueries; ++q) {
    for (int w = 0; w < writes_per_query; ++w) {
      Txn t = cluster.Begin(TxnScope::kSingleShard);
      Row row = {Value(next_key), Value(next_key % 5),
                 Value(rng.Uniform(1, 1000))};
      ++next_key;
      if (!t.Insert("sales", row[0], row).ok()) std::abort();
      if (!t.Commit().ok()) std::abort();
    }
    // Background merges complete between queries (they run on the pool and
    // never block a scan; the bench waits so each leg is deterministic).
    cluster.WaitForMerges();
    // Each query is measured from an idle simulated cluster: whatever a
    // strategy queues on the DNs ahead of the scan IS its freshness cost.
    cluster.ResetSimTime();
    if (rebuild) {
      // Old world: refresh synchronously and re-encode every shard from
      // scratch on the query path.
      auto merged = cluster.RefreshColumnar("sales");
      if (!merged.ok()) std::abort();
      for (int dn = 0; dn < kDns; ++dn) {
        (void)cluster.ChargeDnMerge(
            dn, 0, static_cast<size_t>(next_key) / kDns);
      }
    }
    auto res = DistributedAggregate(
        &cluster, "sales", Expr::Gt("amount", Value(int64_t{500})), {},
        {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "s"}}, opts);
    if (!res.ok()) std::abort();
    total_us += static_cast<double>(res->sim_latency_us);
    leg.max_scan_us =
        std::max(leg.max_scan_us, static_cast<long long>(res->sim_latency_us));
    total_delta += static_cast<double>(res->scan_stats.delta_rows);
  }
  leg.mean_scan_us = total_us / kQueries;
  leg.mean_delta_rows = total_delta / kQueries;
  leg.merges = cluster.metrics().Get("columnar.merges");
  leg.merge_rows = cluster.metrics().Get("columnar.merge_rows");
  auto final_res = DistributedAggregate(&cluster, "sales", nullptr, {},
                                        {{AggFunc::kCount, "", "n"}});
  if (!final_res.ok()) std::abort();
  leg.count = final_res->table.rows()[0][0].AsInt();
  return leg;
}

std::vector<Leg> RunSweep() {
  std::vector<Leg> legs;
  const int write_rates[] = {4, 32, 128};
  const size_t thresholds[] = {64, 256, 1024};
  for (int w : write_rates) {
    for (size_t t : thresholds) legs.push_back(RunLeg("delta", w, t));
    legs.push_back(RunLeg("rebuild", w, 0));
    legs.push_back(RunLeg("row", w, 0));
  }
  return legs;
}

void PrintTable(const std::vector<Leg>& legs) {
  printf("\n=== E21: HTAP freshness — scan cost vs write rate x merge "
         "threshold ===\n");
  printf("%-8s %8s %10s %12s %11s %8s %10s\n", "strategy", "writes/q",
         "threshold", "mean_scan_us", "max_scan_us", "merges",
         "avg_delta");
  for (const Leg& l : legs) {
    printf("%-8s %8d %10s %12.1f %11lld %8lld %10.1f\n", l.strategy,
           l.writes_per_query,
           l.merge_threshold == 0 ? "-"
                                  : std::to_string(l.merge_threshold).c_str(),
           l.mean_scan_us, l.max_scan_us, l.merges, l.mean_delta_rows);
  }
  printf("(expect: delta at a tuned threshold beats row and rebuild at every "
         "write rate — the tail union costs blocks, the rebuild costs the "
         "whole shard; an over-eager threshold instead fragments the sealed "
         "table into short merge chunks and buys the tail savings back)\n");
}

void WriteJson(const std::vector<Leg>& legs) {
  const char* path = std::getenv("OFI_BENCH_JSON");
  if (path == nullptr) path = "BENCH_htap_freshness.json";
  FILE* f = fopen(path, "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  fprintf(f, "{\n  \"bench\": \"htap_freshness\",\n");
  fprintf(f,
          "  \"config\": {\"dns\": %d, \"protocol\": \"gtm_lite\", "
          "\"base_rows\": %lld, \"queries_per_leg\": %d, "
          "\"query\": \"COUNT+SUM(amount) WHERE amount > 500\"},\n",
          kDns, static_cast<long long>(kBaseRows), kQueries);
  fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < legs.size(); ++i) {
    const Leg& l = legs[i];
    fprintf(f,
            "    {\"strategy\": \"%s\", \"writes_per_query\": %d, "
            "\"merge_threshold\": %zu, \"mean_scan_us\": %.1f, "
            "\"max_scan_us\": %lld, \"mean_delta_rows\": %.1f, "
            "\"merges\": %lld, \"merge_rows\": %lld, \"count\": %lld}%s\n",
            l.strategy, l.writes_per_query, l.merge_threshold, l.mean_scan_us,
            l.max_scan_us, l.mean_delta_rows, l.merges, l.merge_rows, l.count,
            i + 1 == legs.size() ? "" : ",");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("wrote %s\n", path);
}

/// Wall-clock microbenchmark of one delta-union scan with a 256-row tail —
/// the real-time cost of the union machinery itself (snapshot copy, tail
/// filter, partial merge), as opposed to the simulated critical path above.
void BM_DeltaUnionScan(benchmark::State& state) {
  Cluster cluster(kDns, Protocol::kGtmLite);
  Schema schema({Column{"k", TypeId::kInt64, ""},
                 Column{"region", TypeId::kInt64, ""},
                 Column{"amount", TypeId::kInt64, ""}});
  if (!cluster.CreateTable("sales", schema).ok()) std::abort();
  int64_t next_key = 0;
  LoadBase(&cluster, &next_key);
  if (!cluster.RegisterColumnar("sales").ok()) std::abort();
  cluster.set_auto_merge(false);
  Rng rng(3);
  for (int w = 0; w < 256; ++w) {
    Txn t = cluster.Begin(TxnScope::kSingleShard);
    Row row = {Value(next_key), Value(next_key % 5),
               Value(rng.Uniform(1, 1000))};
    ++next_key;
    if (!t.Insert("sales", row[0], row).ok()) std::abort();
    if (!t.Commit().ok()) std::abort();
  }
  for (auto _ : state) {
    auto res = DistributedAggregate(
        &cluster, "sales", Expr::Gt("amount", Value(int64_t{500})), {},
        {{AggFunc::kCount, "", "n"}, {AggFunc::kSum, "amount", "s"}});
    if (!res.ok()) std::abort();
    benchmark::DoNotOptimize(res->table.rows()[0][0].AsInt());
  }
}
BENCHMARK(BM_DeltaUnionScan)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::vector<Leg> legs = RunSweep();
  PrintTable(legs);
  WriteJson(legs);
  return 0;
}
