/// \file bench_gmdb_schema.cc
/// \brief Experiments E6 + E7 — GMDB online schema evolution (paper §III-B,
/// Figs. 8 and 11). Prints the Fig. 8 upgrade/downgrade matrix for the MME
/// version chain, then reproduces the Fig. 11 experiment with synthetic MME
/// session objects (5-10 KB tree objects, as the paper states): read
/// throughput at same-version vs upgrade vs downgrade evolution, and the
/// bandwidth of delta sync vs whole-object sync.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "gmdb/cluster.h"

namespace {

using namespace ofi;        // NOLINT
using namespace ofi::gmdb;  // NOLINT
using sql::TypeId;
using sql::Value;

RecordSchemaPtr BearerSchema() {
  auto s = std::make_shared<RecordSchema>();
  s->name = "bearer";
  s->version = 1;
  s->primary_key = "ebi";
  s->fields = {PrimitiveField("ebi", TypeId::kInt64, Value(5)),
               PrimitiveField("qci", TypeId::kInt64, Value(9)),
               PrimitiveField("apn", TypeId::kString, Value("internet")),
               PrimitiveField("gtp_teid", TypeId::kInt64, Value(0)),
               PrimitiveField("pgw", TypeId::kString, Value("pgw-01.site"))};
  return s;
}

/// MME session schema versions 3,5,6,7,8 — each adds fields (Fig. 8 chain).
RecordSchemaPtr MmeSchema(int version) {
  auto s = std::make_shared<RecordSchema>();
  s->name = "mme_session";
  s->version = version;
  s->primary_key = "imsi";
  s->fields = {PrimitiveField("imsi", TypeId::kString, Value("")),
               PrimitiveField("state", TypeId::kString, Value("idle")),
               PrimitiveField("tac", TypeId::kInt64, Value(0)),
               PrimitiveField("cell_id", TypeId::kInt64, Value(0)),
               ArrayField("bearers", BearerSchema())};
  if (version >= 5) {
    s->fields.push_back(PrimitiveField("volte", TypeId::kBool, Value(false)));
    s->fields.push_back(PrimitiveField("apn_ambr", TypeId::kInt64, Value(50)));
  }
  if (version >= 6) {
    s->fields.push_back(PrimitiveField("dcnr", TypeId::kBool, Value(false)));
  }
  if (version >= 7) {
    s->fields.push_back(PrimitiveField("slice_id", TypeId::kInt64, Value(0)));
  }
  if (version >= 8) {
    s->fields.push_back(PrimitiveField("edge_site", TypeId::kString, Value("")));
  }
  return s;
}

/// A realistic 5-10 KB session object: several bearers with padded strings.
TreeObjectPtr MakeSession(const RecordSchema& schema, int64_t imsi, Rng* rng) {
  auto obj = TreeObject::Defaults(schema);
  (void)obj->SetPath("imsi", Value("460-00-" + std::to_string(imsi)));
  (void)obj->SetPath("state", Value("connected"));
  (void)obj->SetPath("tac", Value(rng->Uniform(1, 65535)));
  std::vector<TreeObjectPtr> bearers;
  for (int b = 0; b < 8; ++b) {
    auto bearer = TreeObject::Defaults(*BearerSchema());
    (void)bearer->SetPath("ebi", Value(5 + b));
    (void)bearer->SetPath("gtp_teid", Value(rng->Uniform(1, 1 << 30)));
    // Pad to push the whole object into the paper's 5-10 KB band.
    (void)bearer->SetPath("pgw", Value("pgw-" + rng->AlphaString(340)));
    (void)bearer->SetPath("apn", Value("apn-" + rng->AlphaString(340)));
    bearers.push_back(bearer);
  }
  obj->Set("bearers", bearers);
  return obj;
}

std::unique_ptr<GmdbCluster> BuildCluster(int objects, int stored_version) {
  auto cluster = std::make_unique<GmdbCluster>(2);
  for (int v : {3, 5, 6, 7, 8}) {
    (void)cluster->SubmitSchema(MmeSchema(v));
  }
  Rng rng(31);
  auto schema = *cluster->registry().Get("mme_session", stored_version);
  for (int i = 0; i < objects; ++i) {
    auto obj = MakeSession(*schema, i, &rng);
    (void)cluster->ShardFor("s" + std::to_string(i))
        ->Put("mme_session", "s" + std::to_string(i), obj, stored_version);
  }
  return cluster;
}

constexpr int kObjects = 500;

void BM_ReadSameVersion(benchmark::State& state) {
  auto cluster = BuildCluster(kObjects, 5);
  int i = 0;
  for (auto _ : state) {
    std::string key = "s" + std::to_string(i++ % kObjects);
    auto obj = cluster->ShardFor(key)->Get("mme_session", key, 5);
    benchmark::DoNotOptimize(obj);
  }
}
BENCHMARK(BM_ReadSameVersion);

void BM_ReadUpgradeEvolution(benchmark::State& state) {
  auto cluster = BuildCluster(kObjects, 5);
  int i = 0;
  for (auto _ : state) {
    std::string key = "s" + std::to_string(i++ % kObjects);
    auto obj = cluster->ShardFor(key)->Get("mme_session", key, 6);  // V5 -> V6
    benchmark::DoNotOptimize(obj);
  }
}
BENCHMARK(BM_ReadUpgradeEvolution);

void BM_ReadDowngradeEvolution(benchmark::State& state) {
  auto cluster = BuildCluster(kObjects, 5);
  int i = 0;
  for (auto _ : state) {
    std::string key = "s" + std::to_string(i++ % kObjects);
    auto obj = cluster->ShardFor(key)->Get("mme_session", key, 3);  // V5 -> V3
    benchmark::DoNotOptimize(obj);
  }
}
BENCHMARK(BM_ReadDowngradeEvolution);

void BM_DeltaUpdate(benchmark::State& state) {
  auto cluster = BuildCluster(kObjects, 5);
  Rng rng(5);
  int i = 0;
  for (auto _ : state) {
    std::string key = "s" + std::to_string(i++ % kObjects);
    Delta d;
    d.ops = {{"cell_id", Value(rng.Uniform(1, 1 << 20))},
             {"state", Value("connected")}};
    benchmark::DoNotOptimize(
        cluster->ShardFor(key)->ApplyDelta("mme_session", key, d, 5));
  }
}
BENCHMARK(BM_DeltaUpdate);

void PrintFig8AndFig11() {
  printf("\n=== E6: Fig. 8 — MME schema conversion matrix ===\n");
  auto cluster = BuildCluster(1, 5);
  printf("%s\n", cluster->registry().MatrixToString("mme_session").c_str());

  printf("=== E7: Fig. 11 — online schema evolution, MME-like sessions ===\n");
  Rng rng(77);
  auto v5 = *cluster->registry().Get("mme_session", 5);
  auto sample = MakeSession(*v5, 0, &rng);
  printf("session object size: %zu bytes (paper: 5-10KB)\n\n", sample->ByteSize());

  // Read-path ops/s per mode, measured over a fixed op count.
  auto measure = [&](int requested_version) {
    auto c = BuildCluster(kObjects, 5);
    const int kOps = 20'000;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      std::string key = "s" + std::to_string(i % kObjects);
      auto r = c->ShardFor(key)->Get("mme_session", key, requested_version);
      benchmark::DoNotOptimize(r);
    }
    auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
    return kOps / dt.count();
  };
  printf("%-28s %14s\n", "read mode", "ops/s");
  printf("%-28s %14.0f\n", "same version (V5->V5)", measure(5));
  printf("%-28s %14.0f\n", "upgrade evolution (V5->V6)", measure(6));
  printf("%-28s %14.0f\n", "downgrade evolution (V5->V3)", measure(3));

  // Delta vs whole-object sync bandwidth for a typical 2-field update.
  Delta d;
  d.ops = {{"cell_id", Value(12345)}, {"state", Value("connected")}};
  printf("\nsync bandwidth per update: delta=%zu bytes, whole object=%zu bytes "
         "(%.0fx saving)\n\n",
         d.ByteSize(), sample->ByteSize(),
         static_cast<double>(sample->ByteSize()) / d.ByteSize());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintFig8AndFig11();
  return 0;
}
