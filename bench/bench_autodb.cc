/// \file bench_autodb.cc
/// \brief Experiment E10 — the autonomous-database managers (paper §IV-A,
/// Fig. 12) in action: SLA attainment with vs without the workload manager
/// under a bursty mixed workload, anomaly detection accuracy on injected
/// faults, and the change manager's auto-tuning convergence.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "autodb/anomaly_manager.h"
#include "autodb/change_manager.h"
#include "autodb/workload_manager.h"
#include "common/rng.h"

namespace {

using namespace ofi;          // NOLINT
using namespace ofi::autodb;  // NOLINT

/// Mixed workload: short point queries + heavy reports, bursty arrivals.
struct WorkloadOutcome {
  double point_p95 = 0;
  double report_p95 = 0;
  uint64_t rejected = 0;
};

WorkloadOutcome DriveWorkload(bool admission_control) {
  InformationStore info;
  WorkloadManager wm({.capacity_units = 8,
                      .max_queue = 64,
                      .admission_control = admission_control},
                     &info);
  Rng rng(19);
  SimTime now = 0;
  for (int i = 0; i < 2'000; ++i) {
    now += rng.Uniform(20, 200);
    // Bursts: every ~200 queries a thundering herd of reports arrives.
    if (i % 200 == 0) {
      for (int b = 0; b < 24; ++b) {
        (void)wm.Submit("report", now, 2.0, 20'000);
      }
    }
    if (rng.Chance(0.8)) {
      (void)wm.Submit("point", now, 0.25, 400);
    } else {
      (void)wm.Submit("report", now, 2.0, 20'000);
    }
  }
  return WorkloadOutcome{wm.AchievedP95("point"), wm.AchievedP95("report"),
                         wm.rejected()};
}

void BM_WorkloadWithManager(benchmark::State& state) {
  WorkloadOutcome out;
  for (auto _ : state) {
    out = DriveWorkload(true);
  }
  state.counters["point_p95_us"] = out.point_p95;
  state.counters["report_p95_us"] = out.report_p95;
}
BENCHMARK(BM_WorkloadWithManager)->Unit(benchmark::kMillisecond);

void BM_WorkloadWithoutManager(benchmark::State& state) {
  WorkloadOutcome out;
  for (auto _ : state) {
    out = DriveWorkload(false);
  }
  state.counters["point_p95_us"] = out.point_p95;
  state.counters["report_p95_us"] = out.report_p95;
}
BENCHMARK(BM_WorkloadWithoutManager)->Unit(benchmark::kMillisecond);

void BM_AnomalyScan(benchmark::State& state) {
  InformationStore info;
  Rng rng(4);
  for (int t = 0; t < 10'000; ++t) {
    double v = 100 + rng.NextDouble() * 10;
    if (t % 1000 > 990) v = 4000;  // injected fault windows
    info.RecordMetric("dn3.disk_read_us", t, v);
  }
  AnomalyManager mgr(&info);
  mgr.AddRule(DetectionRule{"dn3.disk_read_us", 3.0, 6.0, 0, 64});
  size_t found = 0;
  for (auto _ : state) {
    found = mgr.Scan(0, 10'000).size();
  }
  state.counters["anomalies"] = static_cast<double>(found);
}
BENCHMARK(BM_AnomalyScan)->Unit(benchmark::kMillisecond);

void PrintSummary() {
  printf("\n=== E10: SLA attainment with vs without the workload manager ===\n");
  WorkloadOutcome with = DriveWorkload(true);
  WorkloadOutcome without = DriveWorkload(false);
  printf("%-24s %16s %16s %10s\n", "configuration", "point p95 (us)",
         "report p95 (us)", "rejected");
  printf("%-24s %16.0f %16.0f %10lu\n", "workload manager ON", with.point_p95,
         with.report_p95, with.rejected);
  printf("%-24s %16.0f %16.0f %10lu\n", "workload manager OFF", without.point_p95,
         without.report_p95, without.rejected);
  printf("(admission control bounds thrashing: heavy bursts queue instead of "
         "degrading everything)\n");

  printf("\n=== E10b: anomaly detection on injected faults ===\n");
  InformationStore info;
  Rng rng(4);
  int injected = 0;
  for (int t = 0; t < 2'000; ++t) {
    bool fault = t % 500 > 495;
    injected += fault;
    info.RecordMetric("dn3.disk_read_us", t,
                      fault ? 4000 : 100 + rng.NextDouble() * 10);
  }
  AnomalyManager mgr(&info);
  mgr.AddRule(DetectionRule{"dn3.disk_read_us", 3.0, 6.0, 0, 64});
  auto anomalies = mgr.Scan(0, 2'000);
  printf("injected fault samples: %d, detected: %zu, action: %s\n", injected,
         anomalies.size(),
         anomalies.empty()
             ? "-"
             : AnomalyManager::RecommendAction(anomalies.front()).c_str());

  printf("\n=== E10c: change-manager auto-tuning ===\n");
  ChangeManager cm;
  (void)cm.DefineParameter({"sort_mem_mb", 8, 1, 2048});
  auto objective = [&]() {
    double v = cm.Get("sort_mem_mb").ValueOrDie();
    double d = std::log2(v) - 8;  // sweet spot at 256MB
    return 100 + d * d * 25;
  };
  double before = objective();
  auto best = cm.AutoTune("sort_mem_mb", objective, 2.0, 12);
  printf("sort_mem_mb: 8 -> %.0f, objective %.1f -> %.1f in %zu guarded steps\n\n",
         best.ValueOr(-1), before, objective(), cm.history().size());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintSummary();
  return 0;
}
