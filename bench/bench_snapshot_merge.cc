/// \file bench_snapshot_merge.cc
/// \brief Experiment E2 — cost of Algorithm 1 (MergeSnapshot) and the rates
/// of its UPGRADE/DOWNGRADE resolutions. The paper has no figure for this;
/// we report the merge cost as a function of the commit-history size a DN
/// retains (the LCO/xidMap the algorithm traverses), showing why the safe
/// horizon pruning matters.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "txn/gtm.h"
#include "txn/local_txn_manager.h"
#include "txn/merge_snapshot.h"

namespace {

using namespace ofi::txn;  // NOLINT

/// Fills a DN commit log with `history` committed transactions, a
/// `multi_shard_fraction` of which carry gxids. (LocalTxnManager holds a
/// mutex, so it is filled in place rather than returned by value.)
void BuildHistory(LocalTxnManager* mgr, int history,
                  double multi_shard_fraction, Gxid* next_gxid) {
  for (int i = 0; i < history; ++i) {
    Xid x = mgr->Begin();
    bool multi = (i % 100) < static_cast<int>(multi_shard_fraction * 100);
    if (multi) {
      Gxid g = (*next_gxid)++;
      mgr->BindGxid(x, g);
      mgr->Commit(x, g);
    } else {
      mgr->Commit(x);
    }
  }
}

void BM_MergeSnapshot(benchmark::State& state) {
  int history = static_cast<int>(state.range(0));
  Gxid next_gxid = 1;
  LocalTxnManager mgr;
  BuildHistory(&mgr, history, 0.10, &next_gxid);
  Snapshot global{.xmin = next_gxid, .xmax = next_gxid, .active = {}};
  Snapshot local = mgr.TakeSnapshot();
  auto waiter = [](Xid, Gxid) { return TxnState::kCommitted; };
  for (auto _ : state) {
    MergedSnapshot m = MergeSnapshots(global, local, mgr.clog(), waiter);
    benchmark::DoNotOptimize(m);
  }
  state.counters["lco_entries"] = static_cast<double>(mgr.clog().lco().size());
}
BENCHMARK(BM_MergeSnapshot)->Arg(100)->Arg(1'000)->Arg(10'000);

void BM_MergeSnapshotAfterPrune(benchmark::State& state) {
  int history = static_cast<int>(state.range(0));
  Gxid next_gxid = 1;
  LocalTxnManager mgr;
  BuildHistory(&mgr, history, 0.10, &next_gxid);
  // Horizon pruning: everything committed is below the horizon.
  mgr.mutable_clog().PruneBelowHorizon(next_gxid);
  Snapshot global{.xmin = next_gxid, .xmax = next_gxid, .active = {}};
  Snapshot local = mgr.TakeSnapshot();
  auto waiter = [](Xid, Gxid) { return TxnState::kCommitted; };
  for (auto _ : state) {
    MergedSnapshot m = MergeSnapshots(global, local, mgr.clog(), waiter);
    benchmark::DoNotOptimize(m);
  }
  state.counters["lco_entries"] = static_cast<double>(mgr.clog().lco().size());
}
BENCHMARK(BM_MergeSnapshotAfterPrune)->Arg(100)->Arg(1'000)->Arg(10'000);

/// Downgrade-heavy merge: the reader's global snapshot is older than the
/// whole retained history, tainting the LCO early.
void BM_MergeSnapshotWorstCaseDowngrade(benchmark::State& state) {
  int history = static_cast<int>(state.range(0));
  Gxid next_gxid = 1;
  LocalTxnManager mgr;
  BuildHistory(&mgr, history, 0.10, &next_gxid);
  Snapshot global{.xmin = 1, .xmax = 2, .active = {1}};  // ancient snapshot
  Snapshot local = mgr.TakeSnapshot();
  auto waiter = [](Xid, Gxid) { return TxnState::kCommitted; };
  int downgrades = 0;
  for (auto _ : state) {
    MergedSnapshot m = MergeSnapshots(global, local, mgr.clog(), waiter);
    downgrades = m.downgrades;
    benchmark::DoNotOptimize(m);
  }
  state.counters["downgrades"] = downgrades;
}
BENCHMARK(BM_MergeSnapshotWorstCaseDowngrade)->Arg(1'000);

void PrintSummary() {
  printf("\n=== E2: snapshot-merge resolution rates (10%% multi-shard) ===\n");
  for (int history : {100, 1'000, 10'000}) {
    Gxid next_gxid = 1;
    LocalTxnManager mgr;
  BuildHistory(&mgr, history, 0.10, &next_gxid);
    // Old global snapshot that misses the last 10% of gxids.
    Gxid cutoff = next_gxid - next_gxid / 10;
    Snapshot global{.xmin = cutoff, .xmax = cutoff, .active = {}};
    for (Gxid g = cutoff; g < next_gxid; ++g) global.active.insert(g);
    Snapshot local = mgr.TakeSnapshot();
    auto waiter = [](Xid, Gxid) { return TxnState::kCommitted; };
    MergedSnapshot m = MergeSnapshots(global, local, mgr.clog(), waiter);
    printf("history=%6d  upgrades=%4d  downgrades=%6d (suffix rule)\n", history,
           m.upgrades, m.downgrades);
  }
  printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintSummary();
  return 0;
}
