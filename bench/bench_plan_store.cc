/// \file bench_plan_store.cc
/// \brief Experiments E3 + E4 — the learning-based optimizer (paper §II-C).
///
/// E3 regenerates Table I: executing the paper's example query
///   select * from OLAP.T1, OLAP.T2
///   where OLAP.T1.A1 = OLAP.T2.A2 and OLAP.T1.B1 > 10
/// captures exactly the two steps of Table I (the filtered scan and the
/// join) with their estimated and actual row counts.
///
/// E4 runs a canned reporting workload over correlated data and reports the
/// q-error of the optimizer's estimates before and after learning, plus
/// plan-store hit rates and MD5 keying overhead.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/md5.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"

namespace {

using namespace ofi;             // NOLINT
using namespace ofi::optimizer;  // NOLINT
using sql::Column;
using sql::Expr;
using sql::Schema;
using sql::TypeId;
using sql::Value;

/// OLAP.T1(A1, B1) with B1 correlated to A1; OLAP.T2(A2, C2).
void BuildOlapTables(sql::Catalog* catalog) {
  sql::Table t1{Schema({Column{"A1", TypeId::kInt64, "OLAP.T1"},
                        Column{"B1", TypeId::kInt64, "OLAP.T1"}})};
  Rng rng(17);
  for (int64_t i = 0; i < 5000; ++i) {
    // B1 is skewed: mostly small, 2% above 10 — classic mis-estimate bait.
    int64_t b1 = rng.Chance(0.02) ? rng.Uniform(11, 100) : rng.Uniform(0, 10);
    (void)t1.Append({Value(i % 500), Value(b1)});
  }
  catalog->Register("OLAP.T1", std::move(t1));

  sql::Table t2{Schema({Column{"A2", TypeId::kInt64, "OLAP.T2"},
                        Column{"C2", TypeId::kInt64, "OLAP.T2"}})};
  for (int64_t i = 0; i < 500; ++i) {
    (void)t2.Append({Value(i), Value(i * 7)});
  }
  catalog->Register("OLAP.T2", std::move(t2));
}

sql::PlanPtr TableIQuery() {
  auto scan1 = sql::MakeScan("OLAP.T1", Expr::Gt("OLAP.T1.B1", Value(10)));
  auto scan2 = sql::MakeScan("OLAP.T2");
  return sql::MakeJoin(scan1, scan2, Expr::EqCols("OLAP.T1.A1", "OLAP.T2.A2"));
}

/// The canned reporting workload for E4: correlated conjunctive filters that
/// the independence assumption underestimates.
void BuildReportingTables(sql::Catalog* catalog) {
  sql::Table sales{Schema({Column{"region", TypeId::kInt64, "s"},
                           Column{"channel", TypeId::kInt64, "s"},
                           Column{"amount", TypeId::kInt64, "s"}})};
  Rng rng(23);
  for (int64_t i = 0; i < 20'000; ++i) {
    int64_t region = rng.Uniform(0, 9);
    // channel correlates strongly with region.
    int64_t channel = rng.Chance(0.9) ? region : rng.Uniform(0, 9);
    (void)sales.Append({Value(region), Value(channel), Value(rng.Uniform(1, 1000))});
  }
  catalog->Register("sales", std::move(sales));
}

std::vector<sql::PlanPtr> ReportingQueries() {
  std::vector<sql::PlanPtr> queries;
  for (int64_t r = 0; r < 10; ++r) {
    auto pred = Expr::And(Expr::Eq("s.region", Value(r)),
                          Expr::Eq("s.channel", Value(r)));
    queries.push_back(sql::MakeAggregate(
        sql::MakeScan("sales", pred), {},
        {sql::AggSpec{sql::AggFunc::kSum, Expr::ColumnRef("s.amount"), "total"}}));
  }
  return queries;
}

void BM_PlanAndExecuteWithoutStore(benchmark::State& state) {
  sql::Catalog catalog;
  BuildReportingTables(&catalog);
  StatsRegistry stats;
  stats.AnalyzeAll(catalog);
  Optimizer opt(&catalog, &stats, nullptr);
  for (auto _ : state) {
    for (auto& q : ReportingQueries()) {
      opt.Annotate(q);
      benchmark::DoNotOptimize(opt.ExecuteAndLearn(q));
    }
  }
}
BENCHMARK(BM_PlanAndExecuteWithoutStore)->Unit(benchmark::kMillisecond);

void BM_PlanAndExecuteWithStore(benchmark::State& state) {
  sql::Catalog catalog;
  BuildReportingTables(&catalog);
  StatsRegistry stats;
  stats.AnalyzeAll(catalog);
  PlanStore store(0.5);
  Optimizer opt(&catalog, &stats, &store);
  for (auto _ : state) {
    for (auto& q : ReportingQueries()) {
      opt.Annotate(q);
      benchmark::DoNotOptimize(opt.ExecuteAndLearn(q));
    }
  }
  state.counters["store_entries"] = static_cast<double>(store.size());
  state.counters["hit_rate"] =
      store.lookups() ? static_cast<double>(store.hits()) / store.lookups() : 0;
}
BENCHMARK(BM_PlanAndExecuteWithStore)->Unit(benchmark::kMillisecond);

void BM_Md5StepKeying(benchmark::State& state) {
  std::string step =
      "JOIN(SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10)), SCAN(OLAP.T2), "
      "PREDICATE(OLAP.T1.A1=OLAP.T2.A2))";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::HexDigest(step));
  }
}
BENCHMARK(BM_Md5StepKeying);

double GeoMeanQError(const std::vector<sql::PlanPtr>& executed) {
  std::vector<double> qs;
  for (const auto& p : executed) Optimizer::CollectQErrors(*p, &qs);
  double log_sum = 0;
  for (double q : qs) log_sum += std::log(q);
  return qs.empty() ? 1.0 : std::exp(log_sum / qs.size());
}

void PrintTableI() {
  printf("\n=== E3: Table I reproduction (LOGICAL CANONICAL FORM) ===\n");
  sql::Catalog catalog;
  BuildOlapTables(&catalog);
  StatsRegistry stats;
  stats.AnalyzeAll(catalog);
  PlanStore store(0.2);
  Optimizer opt(&catalog, &stats, &store);
  auto plan = TableIQuery();
  opt.Annotate(plan);
  auto result = opt.ExecuteAndLearn(plan);
  if (!result.ok()) {
    printf("execution failed: %s\n", result.status().ToString().c_str());
    return;
  }
  printf("%s", store.ToTableString().c_str());
  printf("(steps captured because |actual-estimate|/estimate >= %.0f%%)\n\n",
         store.capture_threshold() * 100);
}

void PrintLearningCurve() {
  printf("=== E4: learning loop on a canned reporting workload ===\n");
  sql::Catalog catalog;
  BuildReportingTables(&catalog);
  StatsRegistry stats;
  stats.AnalyzeAll(catalog);
  PlanStore store(0.5);
  Optimizer opt(&catalog, &stats, &store);
  printf("%-6s %16s %14s %10s\n", "round", "geomean q-error", "max q-error",
         "hit rate");
  for (int round = 1; round <= 3; ++round) {
    auto queries = ReportingQueries();
    uint64_t lookups_before = store.lookups(), hits_before = store.hits();
    double max_q = 1;
    for (auto& q : queries) {
      opt.Annotate(q);
      (void)opt.ExecuteAndLearn(q);
      max_q = std::max(max_q, Optimizer::MaxQError(*q));
    }
    double hit_rate =
        store.lookups() > lookups_before
            ? static_cast<double>(store.hits() - hits_before) /
                  static_cast<double>(store.lookups() - lookups_before)
            : 0;
    printf("%-6d %16.2f %14.2f %9.0f%%\n", round, GeoMeanQError(queries), max_q,
           hit_rate * 100);
  }
  printf("(round 1 = classic statistics only; later rounds read the store)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintTableI();
  PrintLearningCurve();
  return 0;
}
