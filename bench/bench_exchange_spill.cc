/// \file bench_exchange_spill.cc
/// \brief Spill-to-disk backpressure on the exchange (EXPERIMENTS.md E18).
/// Sweeps the per-channel in-memory cap over a fixed repartitioned join and
/// records what the cap costs: spilled bytes and segments, wall time
/// (the real disk round trip), and the simulated-latency overhead vs the
/// uncapped run. Also compares against strict mode (the historical hard
/// limit), where the same caps simply kill the query — the retired failure
/// mode. The lifetime bytes-moved accounting is cap-independent: spilling
/// changes WHERE queued payload waits, never how much traffic exists.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <utility>

#include "cluster/mpp_query.h"
#include "common/rng.h"

namespace {

using namespace ofi;           // NOLINT
using namespace ofi::cluster;  // NOLINT
using sql::Column;
using sql::Schema;
using sql::TypeId;
using sql::Value;

/// Same fact/dim shape as bench_mpp_join: `rows` orders joined to
/// `dim_rows` customers on customer id, keys uniform.
std::unique_ptr<Cluster> BuildJoinCluster(int dns, int64_t rows,
                                          int64_t dim_rows) {
  auto cluster = std::make_unique<Cluster>(dns, Protocol::kGtmLite);
  Schema orders({Column{"o_id", TypeId::kInt64, ""},
                 Column{"cust", TypeId::kInt64, ""},
                 Column{"amount", TypeId::kInt64, ""}});
  Schema customers({Column{"c_id", TypeId::kInt64, ""},
                    Column{"segment", TypeId::kInt64, ""}});
  (void)cluster->CreateTable("orders", orders);
  (void)cluster->CreateTable("customers", customers);
  Rng rng(41);
  for (int64_t c = 0; c < dim_rows; ++c) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("customers", Value(c), {Value(c), Value(rng.Uniform(0, 7))});
    (void)t.Commit();
  }
  for (int64_t o = 0; o < rows; ++o) {
    Txn t = cluster->Begin(TxnScope::kSingleShard);
    (void)t.Insert("orders", Value(o),
                   {Value(o), Value(rng.Uniform(0, dim_rows - 1)),
                    Value(rng.Uniform(1, 1000))});
    (void)t.Commit();
  }
  return cluster;
}

DistributedJoinSpec JoinSpec() {
  DistributedJoinSpec spec;
  spec.left_table = "orders";
  spec.right_table = "customers";
  spec.left_key = "cust";
  spec.right_key = "c_id";
  return spec;
}

/// range: dns, channel cap in bytes (0 = uncapped).
void BM_RepartitionJoinUnderCap(benchmark::State& state) {
  int dns = static_cast<int>(state.range(0));
  auto cluster = BuildJoinCluster(dns, 8'000, 8'000);
  DistributedJoinOptions options;
  options.strategy = JoinStrategy::kRepartition;
  options.max_channel_bytes = static_cast<size_t>(state.range(1));
  DistributedJoinResult last;
  for (auto _ : state) {
    cluster->ResetSimTime();
    auto r = DistributedJoin(cluster.get(), JoinSpec(), options);
    if (r.ok()) last = std::move(r).ValueOrDie();
    benchmark::DoNotOptimize(last.table);
  }
  state.counters["moved_bytes"] =
      static_cast<double>(last.shuffle_bytes + last.broadcast_bytes);
  state.counters["spilled_bytes"] = static_cast<double>(last.spill_bytes);
  state.counters["sim_us"] = static_cast<double>(last.sim_latency_us);
}
BENCHMARK(BM_RepartitionJoinUnderCap)
    ->ArgNames({"dns", "cap"})
    ->Args({4, 0})
    ->Args({4, 1 << 16})
    ->Args({4, 1 << 14})
    ->Args({4, 1 << 12})
    ->Args({4, 1 << 10})
    ->Unit(benchmark::kMillisecond);

/// The E18 headline: capped vs uncapped across cap sizes — spill volume,
/// simulated-latency overhead, and the fate of the same query under the
/// old strict (deny) semantics.
void PrintCapSweepTable() {
  printf("\n=== Exchange spill: repartition join vs channel cap (4 DNs, "
         "8000x8000 rows, ~58B/row encoded) ===\n");
  printf("%-10s %12s %12s %12s %10s %-14s\n", "cap (B)", "moved (B)",
         "spill (B)", "sim (us)", "overhead", "strict mode");
  auto cluster = BuildJoinCluster(4, 8'000, 8'000);
  SimTime base_us = 0;
  for (size_t cap : {size_t{0}, size_t{1} << 18, size_t{1} << 16,
                     size_t{1} << 14, size_t{1} << 12, size_t{1} << 10,
                     size_t{64}}) {
    DistributedJoinOptions options;
    options.strategy = JoinStrategy::kRepartition;
    options.max_channel_bytes = cap;
    cluster->ResetSimTime();
    auto r = DistributedJoin(cluster.get(), JoinSpec(), options);
    if (!r.ok()) continue;
    if (cap == 0) base_us = r->sim_latency_us;

    DistributedJoinOptions strict = options;
    strict.strict_channel_limit = true;
    auto s = DistributedJoin(cluster.get(), JoinSpec(), strict);
    const char* strict_fate =
        cap == 0 ? "n/a" : (s.ok() ? "completes" : "QUERY FAILS");

    char capbuf[24];
    if (cap == 0) {
      snprintf(capbuf, sizeof(capbuf), "unbounded");
    } else {
      snprintf(capbuf, sizeof(capbuf), "%zu", cap);
    }
    printf("%-10s %12zu %12zu %12lld %9.2fx %-14s\n", capbuf,
           r->shuffle_bytes + r->broadcast_bytes, r->spill_bytes,
           (long long)r->sim_latency_us,
           base_us == 0 ? 1.0
                        : static_cast<double>(r->sim_latency_us) /
                              static_cast<double>(base_us),
           strict_fate);
  }
  printf("(the cap trades memory for simulated disk time: results are "
         "bit-identical at every cap, only sim latency grows; under the old "
         "strict semantics every spilling row is a failed query)\n\n");
}

/// Build-side spooling: the same broadcast join under shrinking per-DN
/// build budgets.
void PrintBuildSpillTable() {
  printf("=== Join build-side spill: broadcast join vs per-DN build budget "
         "(4 DNs, 8000 orders x 256 customers) ===\n");
  printf("%-12s %16s %12s %10s\n", "budget (B)", "build spill (B)", "sim (us)",
         "rows");
  auto cluster = BuildJoinCluster(4, 8'000, 256);
  for (size_t budget : {size_t{0}, size_t{1} << 14, size_t{1} << 12,
                        size_t{1} << 10}) {
    DistributedJoinOptions options;
    options.strategy = JoinStrategy::kBroadcast;
    options.max_build_bytes = budget;
    cluster->ResetSimTime();
    auto r = DistributedJoin(cluster.get(), JoinSpec(), options);
    if (!r.ok()) continue;
    char budbuf[24];
    if (budget == 0) {
      snprintf(budbuf, sizeof(budbuf), "unbounded");
    } else {
      snprintf(budbuf, sizeof(budbuf), "%zu", budget);
    }
    printf("%-12s %16zu %12lld %10zu\n", budbuf, r->build_spill_bytes,
           (long long)r->sim_latency_us, r->table.num_rows());
  }
  printf("(a build partition over budget spools through a spill file and is "
         "re-read at build time — same rows, extra disk charge)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintCapSweepTable();
  PrintBuildSpillTable();
  return 0;
}
