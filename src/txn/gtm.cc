#include "txn/gtm.h"

#include <algorithm>
#include <mutex>

namespace ofi::txn {

Gxid Gtm::BeginGlobal() {
  std::unique_lock lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Gxid gxid = next_gxid_++;
  // Record the oldest transaction this one's snapshot can reference.
  snapshot_xmin_[gxid] = active_.empty() ? gxid : *active_.begin();
  active_.insert(gxid);
  states_[gxid] = TxnState::kInProgress;
  return gxid;
}

Gxid Gtm::SafeHorizon() const {
  std::shared_lock lock(mu_);
  Gxid horizon = next_gxid_;
  for (Gxid g : active_) {
    auto it = snapshot_xmin_.find(g);
    horizon = std::min(horizon, it == snapshot_xmin_.end() ? g : it->second);
  }
  return horizon;
}

Snapshot Gtm::TakeGlobalSnapshot() {
  std::shared_lock lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  Snapshot s;
  s.xmax = next_gxid_;
  s.xmin = active_.empty() ? s.xmax : *active_.begin();
  s.active.insert(active_.begin(), active_.end());
  return s;
}

Status Gtm::CommitGlobal(Gxid gxid) {
  std::unique_lock lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto it = states_.find(gxid);
  if (it == states_.end()) return Status::NotFound("gtm: unknown gxid");
  if (it->second == TxnState::kAborted) {
    return Status::InvalidArgument("gtm: gxid already aborted");
  }
  it->second = TxnState::kCommitted;
  active_.erase(gxid);
  snapshot_xmin_.erase(gxid);
  return Status::OK();
}

Status Gtm::AbortGlobal(Gxid gxid) {
  std::unique_lock lock(mu_);
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto it = states_.find(gxid);
  if (it == states_.end()) return Status::NotFound("gtm: unknown gxid");
  if (it->second == TxnState::kCommitted) {
    return Status::InvalidArgument("gtm: gxid already committed");
  }
  it->second = TxnState::kAborted;
  active_.erase(gxid);
  snapshot_xmin_.erase(gxid);
  return Status::OK();
}

}  // namespace ofi::txn
