/// \file local_txn_manager.h
/// \brief Per-data-node transaction manager: local XID allocation, local
/// snapshots, and the commit log. Under GTM-lite, single-shard transactions
/// live entirely here — no GTM round trips (paper §II-A2).
///
/// Thread safety: xid allocation and the active set are guarded by a
/// std::shared_mutex (snapshot readers concurrent, begin/commit/abort
/// exclusive) so parallel MPP scatter workers can take visibility decisions
/// while other transactions run. The commit log has its own internal lock.
#pragma once

#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/result.h"
#include "txn/commit_log.h"
#include "txn/snapshot.h"
#include "txn/types.h"

namespace ofi::txn {

/// \brief Owns local xids and the clog for one DN.
class LocalTxnManager {
 public:
  /// Starts a local transaction: allocates a local xid and registers it.
  Xid Begin();

  /// Registers an externally chosen xid (the baseline Postgres-XC protocol
  /// uses the GXID directly as every node's xid). Advances the local xid
  /// horizon past it.
  void BeginExternal(Xid xid);

  /// Takes a local snapshot (xmin/xmax over local xids + active list).
  Snapshot TakeSnapshot() const;

  /// Associates a multi-shard transaction's gxid with its local xid.
  void BindGxid(Xid xid, Gxid gxid) { clog_.MapGxid(gxid, xid); }

  /// 2PC phase one.
  Status Prepare(Xid xid) { return clog_.Prepare(xid); }

  /// Commits; removes from the active set and appends to the LCO.
  Status Commit(Xid xid, Gxid gxid = kNoGxid);

  /// Stages a commit into the clog's group-commit window. The xid STAYS in
  /// the active set (new snapshots keep it invisible) until FlushStaged()
  /// applies the whole window durably.
  Status StageCommit(Xid xid, Gxid gxid = kNoGxid);

  /// Flushes the open window: staged xids become committed, leave the
  /// active set, and enter the LCO in stage order. Returns how many
  /// transactions this flush made visible.
  size_t FlushStaged();

  Status Abort(Xid xid);

  const CommitLog& clog() const { return clog_; }
  CommitLog& mutable_clog() { return clog_; }

  Xid next_xid() const {
    std::shared_lock lock(mu_);
    return next_xid_;
  }
  size_t active_count() const {
    std::shared_lock lock(mu_);
    return active_.size();
  }

 private:
  mutable std::shared_mutex mu_;  // guards next_xid_ and active_
  Xid next_xid_ = 1;
  std::set<Xid> active_;  // in-progress and prepared local xids
  CommitLog clog_;
};

}  // namespace ofi::txn
