#include "txn/commit_log.h"

namespace ofi::txn {

Status CommitLog::Prepare(Xid xid) {
  std::unique_lock lock(mu_);
  auto it = states_.find(xid);
  if (it == states_.end()) return Status::NotFound("prepare: unknown xid");
  if (it->second != TxnState::kInProgress) {
    return Status::InvalidArgument("prepare: xid not in progress");
  }
  it->second = TxnState::kPrepared;
  return Status::OK();
}

Status CommitLog::Commit(Xid xid, Gxid gxid) {
  std::unique_lock lock(mu_);
  auto it = states_.find(xid);
  if (it == states_.end()) return Status::NotFound("commit: unknown xid");
  if (it->second == TxnState::kCommitted) return Status::OK();  // idempotent
  if (it->second == TxnState::kAborted) {
    return Status::InvalidArgument("commit: xid already aborted");
  }
  it->second = TxnState::kCommitted;
  lco_.push_back(LcoEntry{xid, gxid});
  return Status::OK();
}

Status CommitLog::Abort(Xid xid) {
  std::unique_lock lock(mu_);
  auto it = states_.find(xid);
  if (it == states_.end()) return Status::NotFound("abort: unknown xid");
  if (it->second == TxnState::kCommitted) {
    return Status::InvalidArgument("abort: xid already committed");
  }
  it->second = TxnState::kAborted;
  return Status::OK();
}

Status CommitLog::StageCommit(Xid xid, Gxid gxid) {
  std::unique_lock lock(mu_);
  auto it = states_.find(xid);
  if (it == states_.end()) return Status::NotFound("stage: unknown xid");
  if (it->second == TxnState::kAborted) {
    return Status::InvalidArgument("stage: xid already aborted");
  }
  if (it->second == TxnState::kCommitted) return Status::OK();  // idempotent
  for (const LcoEntry& e : staged_) {
    if (e.xid == xid) return Status::OK();  // already in the window
  }
  staged_.push_back(LcoEntry{xid, gxid});
  return Status::OK();
}

std::vector<Xid> CommitLog::FlushStaged() {
  std::unique_lock lock(mu_);
  std::vector<Xid> flushed;
  flushed.reserve(staged_.size());
  for (const LcoEntry& e : staged_) {
    auto it = states_.find(e.xid);
    // Aborted in the window (2PC coordinator decided abort) or already
    // committed (recovery sweep resolved it): nothing to apply here.
    if (it == states_.end() || it->second == TxnState::kAborted ||
        it->second == TxnState::kCommitted) {
      continue;
    }
    it->second = TxnState::kCommitted;
    lco_.push_back(e);
    flushed.push_back(e.xid);
  }
  staged_.clear();
  return flushed;
}

void CommitLog::PruneBelowHorizon(Gxid horizon) {
  std::unique_lock lock(mu_);
  // LCO: remove the longest prefix of entries that can never taint a future
  // merge (local-only, or multi-shard already below the horizon).
  size_t prefix = 0;
  while (prefix < lco_.size()) {
    const LcoEntry& e = lco_[prefix];
    if (e.gxid != kNoGxid && e.gxid >= horizon) break;
    ++prefix;
  }
  if (prefix > 0) {
    lco_.erase(lco_.begin(), lco_.begin() + static_cast<ptrdiff_t>(prefix));
  }
  // xidMap: entries below the horizon are globally visible everywhere;
  // upgradeTX would be a no-op for them.
  for (auto it = gxid_to_local_.begin(); it != gxid_to_local_.end();) {
    // A still-prepared local xid must stay mapped: a reader may yet need the
    // UPGRADE wait for its delayed commit confirmation.
    TxnState st = StateLocked(it->second);
    bool finished = st == TxnState::kCommitted || st == TxnState::kAborted;
    if (it->first < horizon && finished) {
      local_to_gxid_.erase(it->second);
      it = gxid_to_local_.erase(it);
    } else {
      ++it;
    }
  }
}

void CommitLog::TrimLco(size_t keep_last) {
  std::unique_lock lock(mu_);
  if (lco_.size() <= keep_last) return;
  lco_.erase(lco_.begin(), lco_.end() - static_cast<ptrdiff_t>(keep_last));
}

}  // namespace ofi::txn
