/// \file merge_snapshot.h
/// \brief Algorithm 1 from the paper (§II-A2): merging a multi-shard
/// reader's global snapshot with its per-DN local snapshot, resolving the
/// two visibility anomalies:
///
/// * Anomaly1 — global says committed, local says still prepared: the reader
///   *waits* for the local commit confirmation (UPGRADE). There is a slim
///   window between PREPARE and the COMMIT confirmation; the wait closes it.
/// * Anomaly2 — global says active, local says committed (the reader's
///   global snapshot is older than its local snapshot): locally committed
///   transactions that depend on a globally uncommitted write must be hidden
///   (DOWNGRADE). No physical rollback: the reader only adjusts its snapshot.
///
/// Dependency tracking: the paper keys DOWNGRADE off "local commits
/// dependent on uncommitted global writes". We implement the conservative
/// Local-Commit-Order suffix rule: once an entry of the LCO is globally
/// invisible, every *later* local commit on that DN is treated as
/// potentially dependent and downgraded too. This can hide an independent
/// commit (freshness loss) but can never produce the Fig. 2 anomaly
/// (correctness), and it needs no per-tuple dependency graph.
#pragma once

#include <functional>

#include "txn/commit_log.h"
#include "txn/snapshot.h"

namespace ofi::txn {

/// Callback used by UPGRADE: block until the local commit/abort of
/// `local_xid` (owned by `gxid`) lands, and return the final state. In the
/// simulated cluster this forces delivery of the pending commit-confirmation
/// message and charges the simulated wait.
using CommitWaiter = std::function<TxnState(Xid local_xid, Gxid gxid)>;

/// \brief Algorithm 1 (MergeSnapshot).
///
/// \param global  the reader's global snapshot (over gxids)
/// \param local   the reader's local snapshot on this DN (over local xids)
/// \param clog    this DN's commit log: provides the LCO and the xidMap
/// \param waiter  UPGRADE wait hook; must not be null
/// \return the merged snapshot used as the visibility criterion on this DN
MergedSnapshot MergeSnapshots(const Snapshot& global, const Snapshot& local,
                              const CommitLog& clog, const CommitWaiter& waiter);

}  // namespace ofi::txn
