/// \file types.h
/// \brief Shared transaction identifiers and states.
#pragma once

#include <cstdint>

namespace ofi::txn {

/// A data-node-local transaction id. Monotonic per DN. 0 = invalid.
using Xid = uint64_t;

/// A global transaction id issued by the GTM. Monotonic. 0 = "local-only"
/// (single-shard GTM-lite transactions never get a GXID — that is the point
/// of the protocol, paper §II-A).
using Gxid = uint64_t;

constexpr Xid kInvalidXid = 0;
constexpr Gxid kNoGxid = 0;

/// Lifecycle of a transaction as recorded in a commit log.
enum class TxnState : uint8_t {
  kInProgress = 0,
  kPrepared,   // 2PC: locally prepared, waiting for global decision
  kCommitted,
  kAborted,
};

}  // namespace ofi::txn
