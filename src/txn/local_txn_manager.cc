#include "txn/local_txn_manager.h"

namespace ofi::txn {

Xid LocalTxnManager::Begin() {
  Xid xid;
  {
    std::unique_lock lock(mu_);
    xid = next_xid_++;
    active_.insert(xid);
  }
  clog_.Begin(xid);
  return xid;
}

void LocalTxnManager::BeginExternal(Xid xid) {
  {
    std::unique_lock lock(mu_);
    active_.insert(xid);
    if (xid >= next_xid_) next_xid_ = xid + 1;
  }
  clog_.Begin(xid);
}

Snapshot LocalTxnManager::TakeSnapshot() const {
  std::shared_lock lock(mu_);
  Snapshot s;
  s.xmax = next_xid_;
  s.xmin = active_.empty() ? s.xmax : *active_.begin();
  s.active.insert(active_.begin(), active_.end());
  return s;
}

Status LocalTxnManager::Commit(Xid xid, Gxid gxid) {
  OFI_RETURN_NOT_OK(clog_.Commit(xid, gxid));
  std::unique_lock lock(mu_);
  active_.erase(xid);
  return Status::OK();
}

Status LocalTxnManager::StageCommit(Xid xid, Gxid gxid) {
  return clog_.StageCommit(xid, gxid);
}

size_t LocalTxnManager::FlushStaged() {
  std::vector<Xid> flushed = clog_.FlushStaged();
  if (!flushed.empty()) {
    std::unique_lock lock(mu_);
    for (Xid xid : flushed) active_.erase(xid);
  }
  return flushed.size();
}

Status LocalTxnManager::Abort(Xid xid) {
  OFI_RETURN_NOT_OK(clog_.Abort(xid));
  std::unique_lock lock(mu_);
  active_.erase(xid);
  return Status::OK();
}

}  // namespace ofi::txn
