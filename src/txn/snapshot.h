/// \file snapshot.h
/// \brief MVCC snapshots. Local snapshots range over a DN's local xids;
/// global snapshots over GXIDs; merged snapshots (Algorithm 1 output) are
/// local snapshots extended with UPGRADE/DOWNGRADE overlay sets.
#pragma once

#include <string>
#include <unordered_set>

#include "txn/commit_log.h"
#include "txn/types.h"

namespace ofi::txn {

/// \brief A classic xmin/xmax/active-list snapshot.
///
/// Semantics (PostgreSQL convention):
///  * xid < xmin            → definitely finished before the snapshot
///  * xid >= xmax           → started after the snapshot, never visible
///  * xid in active         → running at snapshot time, not visible
struct Snapshot {
  Xid xmin = 1;
  Xid xmax = 1;
  std::unordered_set<Xid> active;

  /// True if `xid` was still running (or unborn) at snapshot time.
  bool InFlight(Xid xid) const {
    return xid >= xmax || active.count(xid) > 0;
  }

  std::string ToString() const;
};

/// \brief Output of Algorithm 1 (MergeSnapshot): a local-xid snapshot plus
/// the resolution overlays.
///
/// * `forced_committed` — local xids UPGRADEd: the global snapshot proved
///   them committed, the reader waited out the commit confirmation window.
/// * `forced_active` — local xids DOWNGRADEd: locally committed but
///   (transitively) dependent on a globally uncommitted write; the reader
///   adjusts its visibility, no physical rollback happens (paper §II-A2).
struct MergedSnapshot {
  Snapshot local;
  std::unordered_set<Xid> forced_committed;
  std::unordered_set<Xid> forced_active;
  /// Statistics for benches: how many txns each resolution touched.
  int upgrades = 0;
  int downgrades = 0;

  std::string ToString() const;
};

/// \brief Visibility oracle shared by storage scans: answers "are the
/// effects of local xid X visible to this reader?".
class VisibilityChecker {
 public:
  /// A plain local-snapshot reader (single-shard GTM-lite transactions and
  /// all baseline transactions).
  VisibilityChecker(const Snapshot* snapshot, const CommitLog* clog,
                    Xid reader_xid)
      : snapshot_(snapshot), merged_(nullptr), clog_(clog), reader_(reader_xid) {}

  /// A merged-snapshot reader (multi-shard GTM-lite transactions).
  VisibilityChecker(const MergedSnapshot* merged, const CommitLog* clog,
                    Xid reader_xid)
      : snapshot_(&merged->local), merged_(merged), clog_(clog),
        reader_(reader_xid) {}

  /// True if the writes of `xid` are visible to the reader.
  bool XidVisible(Xid xid) const {
    if (xid == kInvalidXid) return false;
    if (xid == reader_) return true;  // own writes
    if (merged_ != nullptr) {
      if (merged_->forced_committed.count(xid)) return true;
      if (merged_->forced_active.count(xid)) return false;
    }
    if (snapshot_->InFlight(xid)) return false;
    return clog_->IsCommitted(xid);
  }

  /// Standard tuple-level check over (xmin, xmax) headers: created by a
  /// visible txn and not deleted by a visible txn.
  bool TupleVisible(Xid xmin, Xid xmax) const {
    if (!XidVisible(xmin)) return false;
    if (xmax != kInvalidXid && XidVisible(xmax)) return false;
    return true;
  }

  Xid reader_xid() const { return reader_; }

 private:
  const Snapshot* snapshot_;
  const MergedSnapshot* merged_;
  const CommitLog* clog_;
  Xid reader_;
};

}  // namespace ofi::txn
