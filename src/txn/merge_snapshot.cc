#include "txn/merge_snapshot.h"

#include <algorithm>

namespace ofi::txn {

MergedSnapshot MergeSnapshots(const Snapshot& global, const Snapshot& local,
                              const CommitLog& clog, const CommitWaiter& waiter) {
  MergedSnapshot merged;
  merged.local = local;

  // Snapshot the clog structures up front (shared-lock copies): the merge
  // must iterate a stable view while concurrent writers append to the LCO,
  // and the UPGRADE waiter itself commits entries mid-merge.
  const auto xid_map = clog.XidMapCopy();
  const auto lco = clog.LcoCopy();

  // Step 1-2 (Algorithm 1 lines 1-4): seed the merged active map with the
  // local images of globally active transactions plus all locally active
  // transactions. `local` already carries the latter; add the former.
  for (Gxid gxid : global.active) {
    Xid lxid = clog.LocalXidFor(gxid);
    if (lxid != kInvalidXid) merged.local.active.insert(lxid);
  }

  // Line 6 (upgradeTX) — run before the downgrade scan so that waits
  // complete first and the downgrade can still override the result for
  // dependency-ordered entries.
  //
  // For every multi-shard transaction known to this DN whose gxid is
  // *visible* in the global snapshot: the reader must see it. If it is still
  // prepared (Anomaly1 window) wait for the commit confirmation.
  for (const auto& [gxid, lxid] : xid_map) {
    if (global.InFlight(gxid)) continue;  // globally active: stays invisible
    TxnState state = clog.State(lxid);
    if (state == TxnState::kPrepared || state == TxnState::kInProgress) {
      state = waiter(lxid, gxid);
      ++merged.upgrades;
    }
    if (state == TxnState::kCommitted) {
      merged.forced_committed.insert(lxid);
    }
  }

  // Line 5 (downgradeTX): traverse the LCO oldest-to-newest; from the first
  // entry whose owning global transaction is invisible in the global
  // snapshot, treat that entry and every later local commit as "active".
  bool tainted = false;
  for (const LcoEntry& e : lco) {
    if (!tainted && e.gxid != kNoGxid && global.InFlight(e.gxid)) {
      tainted = true;
    }
    if (tainted) {
      // Only count entries that would otherwise have been visible.
      if (merged.local.active.insert(e.xid).second) ++merged.downgrades;
      merged.forced_active.insert(e.xid);
      merged.forced_committed.erase(e.xid);  // downgrade wins over upgrade
    }
  }

  // Line 7: adjust merged horizons. Downgraded xids may predate local.xmin,
  // so pull xmin down to keep the invariant xmin <= every active xid.
  for (Xid x : merged.local.active) {
    merged.local.xmin = std::min(merged.local.xmin, x);
  }

  // Line 7 (continued): an UPGRADEd xid can sit at or above local.xmax —
  // the local snapshot predates the multi-shard writer's local begin while
  // the global snapshot already proves it committed. Raise xmax above every
  // forced-committed xid so the snapshot invariant (every visible xid <
  // xmax) holds for all consumers of `merged.local`, and push each *other*
  // xid inside the raised window onto the active list so raising xmax never
  // leaks an unrelated late commit into visibility.
  Xid raised_xmax = merged.local.xmax;
  for (Xid x : merged.forced_committed) {
    if (x >= raised_xmax) raised_xmax = x + 1;
  }
  for (Xid x = merged.local.xmax; x < raised_xmax; ++x) {
    if (merged.forced_committed.count(x) == 0) merged.local.active.insert(x);
  }
  merged.local.xmax = raised_xmax;

  return merged;
}

}  // namespace ofi::txn
