/// \file gtm.h
/// \brief Global Transaction Manager. In the baseline (Postgres-XC style)
/// protocol every transaction acquires a GXID and a global snapshot here —
/// each call is a serialized critical section, which is why the GTM
/// saturates as the cluster grows (paper §II-A1). Under GTM-lite only
/// multi-shard transactions call in.
#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <shared_mutex>
#include <unordered_map>

#include "common/result.h"
#include "txn/snapshot.h"
#include "txn/types.h"

namespace ofi::txn {

/// \brief The global transaction authority: GXID allocation, the global
/// active-transaction list, global snapshots, and the global commit record.
///
/// Thread safety: mutators take the internal lock exclusive; read-only
/// queries (IsCommitted / IsAborted / SafeHorizon / accessors) take it
/// shared, so background delta-merge tasks can poll the safe horizon while
/// the foreground runs transactions.
class Gtm {
 public:
  /// Allocates a GXID and enqueues it on the active list. One serialized
  /// round trip in the real system.
  Gxid BeginGlobal();

  /// Global snapshot: xmin/xmax over GXIDs plus the active list copy.
  /// A second serialized round trip.
  Snapshot TakeGlobalSnapshot();

  /// Marks the transaction committed *at the GTM first* (paper: transactions
  /// are marked committed in GTM and then on all nodes, creating the
  /// Anomaly1 window).
  Status CommitGlobal(Gxid gxid);

  Status AbortGlobal(Gxid gxid);

  /// True once CommitGlobal succeeded.
  bool IsCommitted(Gxid gxid) const {
    std::shared_lock lock(mu_);
    auto it = states_.find(gxid);
    return it != states_.end() && it->second == TxnState::kCommitted;
  }
  bool IsAborted(Gxid gxid) const {
    std::shared_lock lock(mu_);
    auto it = states_.find(gxid);
    return it != states_.end() && it->second == TxnState::kAborted;
  }

  /// Total serialized requests served — the bench's GTM load measure.
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t active_count() const {
    std::shared_lock lock(mu_);
    return active_.size();
  }
  Gxid next_gxid() const {
    std::shared_lock lock(mu_);
    return next_gxid_;
  }

  /// A gxid below which every transaction is finished AND visible in every
  /// snapshot still held by an active global transaction. Data nodes may
  /// prune LCO / xidMap state below this horizon: no current or future
  /// merged snapshot can need a DOWNGRADE triggered by those entries.
  Gxid SafeHorizon() const;

 private:
  mutable std::shared_mutex mu_;
  Gxid next_gxid_ = 1;
  std::set<Gxid> active_;  // ordered so xmin = *begin()
  std::unordered_map<Gxid, Gxid> snapshot_xmin_;  // active gxid -> xmin at begin
  std::unordered_map<Gxid, TxnState> states_;
  std::atomic<uint64_t> requests_{0};
};

}  // namespace ofi::txn
