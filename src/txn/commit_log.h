/// \file commit_log.h
/// \brief Per-data-node transaction status: xid states, the Local Commit
/// Order (LCO) consumed by Algorithm 1's downgradeTX, and the xidMap from
/// global to local xids for multi-shard transactions.
///
/// Thread safety: all methods are guarded by an internal std::shared_mutex
/// (readers concurrent, writers exclusive) so the parallel MPP scatter can
/// run visibility checks from pool workers while writers commit. The
/// reference accessors lco() / xid_map() are the exception — they hand out
/// views into guarded state and are for single-threaded use (tests);
/// concurrent code must use LcoCopy() / XidMapCopy().
#pragma once

#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "txn/types.h"

namespace ofi::txn {

/// One entry of the local commit order.
struct LcoEntry {
  Xid xid = kInvalidXid;
  Gxid gxid = kNoGxid;  // kNoGxid for single-shard (local-only) transactions
};

/// \brief Commit log (pg "clog" analogue) for one data node.
class CommitLog {
 public:
  /// Registers a new in-progress transaction.
  void Begin(Xid xid) {
    std::unique_lock lock(mu_);
    states_[xid] = TxnState::kInProgress;
  }

  /// Transitions to Prepared (2PC phase one). InProgress only.
  Status Prepare(Xid xid);

  /// Commits. Allowed from InProgress (1PC local commit) or Prepared.
  /// Appends to the LCO, recording the owning gxid (kNoGxid if local-only).
  Status Commit(Xid xid, Gxid gxid = kNoGxid);

  // --- Group commit (batched durable apply) ---------------------------------
  /// Stages a commit into the open group-commit window WITHOUT making it
  /// visible: the xid keeps its InProgress/Prepared state (so snapshots and
  /// visibility checks treat it as uncommitted) until FlushStaged() forces
  /// the whole window durable in one log write. Idempotent for an xid that
  /// is already committed (a recovery sweep may have resolved it first);
  /// staging an aborted xid is an error, staging twice is a no-op.
  Status StageCommit(Xid xid, Gxid gxid = kNoGxid);

  /// Flushes the open window: every staged xid transitions to Committed and
  /// is appended to the LCO in stage order, under a single lock acquisition
  /// (the simulated counterpart charges one log write for the batch).
  /// Staged xids that were aborted or already committed in the meantime are
  /// skipped. Returns the xids that transitioned to Committed here.
  std::vector<Xid> FlushStaged();

  /// Commits currently staged and awaiting a flush.
  size_t staged_count() const {
    std::shared_lock lock(mu_);
    return staged_.size();
  }

  /// Aborts. Allowed from InProgress or Prepared.
  Status Abort(Xid xid);

  /// Current state; unknown xids report Aborted (pg convention: an xid with
  /// no clog record crashed before commit).
  TxnState State(Xid xid) const {
    std::shared_lock lock(mu_);
    return StateLocked(xid);
  }

  bool IsCommitted(Xid xid) const { return State(xid) == TxnState::kCommitted; }
  bool IsAborted(Xid xid) const { return State(xid) == TxnState::kAborted; }
  bool IsPrepared(Xid xid) const { return State(xid) == TxnState::kPrepared; }
  bool IsInProgress(Xid xid) const { return State(xid) == TxnState::kInProgress; }

  /// The local commit order, oldest first (single-threaded callers only).
  const std::vector<LcoEntry>& lco() const { return lco_; }

  /// Concurrent-safe snapshot of the LCO, oldest first.
  std::vector<LcoEntry> LcoCopy() const {
    std::shared_lock lock(mu_);
    return lco_;
  }

  /// Registers the gxid ↔ local-xid mapping for a multi-shard transaction.
  void MapGxid(Gxid gxid, Xid local_xid) {
    std::unique_lock lock(mu_);
    gxid_to_local_[gxid] = local_xid;
    local_to_gxid_[local_xid] = gxid;
  }

  /// Local xid for a gxid on this DN; kInvalidXid if the transaction never
  /// touched this DN.
  Xid LocalXidFor(Gxid gxid) const {
    std::shared_lock lock(mu_);
    auto it = gxid_to_local_.find(gxid);
    return it == gxid_to_local_.end() ? kInvalidXid : it->second;
  }

  /// Gxid for a local xid; kNoGxid for single-shard transactions.
  Gxid GxidFor(Xid xid) const {
    std::shared_lock lock(mu_);
    return GxidForLocked(xid);
  }

  /// The gxid → local-xid map (single-threaded callers only).
  const std::unordered_map<Gxid, Xid>& xid_map() const { return gxid_to_local_; }

  /// Concurrent-safe snapshot of the gxid → local-xid map.
  std::vector<std::pair<Gxid, Xid>> XidMapCopy() const {
    std::shared_lock lock(mu_);
    return {gxid_to_local_.begin(), gxid_to_local_.end()};
  }

  /// All currently prepared transactions with their gxids (2PC in-doubt
  /// recovery scans this after a coordinator failure).
  std::vector<std::pair<Xid, Gxid>> PreparedXids() const {
    std::shared_lock lock(mu_);
    std::vector<std::pair<Xid, Gxid>> out;
    for (const auto& [xid, state] : states_) {
      if (state == TxnState::kPrepared) out.emplace_back(xid, GxidForLocked(xid));
    }
    return out;
  }

  /// Trims LCO entries older than `keep_from` commits from the tail to bound
  /// memory (all retained readers must have local snapshots newer than the
  /// trimmed prefix).
  void TrimLco(size_t keep_last);

  /// Horizon-based pruning (driven by Gtm::SafeHorizon): drops the LCO
  /// prefix whose multi-shard entries are all globally visible to every
  /// live snapshot (local-only entries in that prefix cannot be tainted by
  /// anything that remains), and drops xidMap entries below the horizon.
  /// Commit *states* are retained — tuple visibility still needs them.
  void PruneBelowHorizon(Gxid horizon);

 private:
  TxnState StateLocked(Xid xid) const {
    auto it = states_.find(xid);
    return it == states_.end() ? TxnState::kAborted : it->second;
  }
  Gxid GxidForLocked(Xid xid) const {
    auto it = local_to_gxid_.find(xid);
    return it == local_to_gxid_.end() ? kNoGxid : it->second;
  }

  mutable std::shared_mutex mu_;
  std::unordered_map<Xid, TxnState> states_;
  std::unordered_map<Gxid, Xid> gxid_to_local_;
  std::unordered_map<Xid, Gxid> local_to_gxid_;
  std::vector<LcoEntry> lco_;
  std::vector<LcoEntry> staged_;  // open group-commit window, stage order
};

}  // namespace ofi::txn
