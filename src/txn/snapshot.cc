#include "txn/snapshot.h"

#include <algorithm>
#include <vector>

namespace ofi::txn {
namespace {

std::string SetToString(const std::unordered_set<Xid>& s) {
  std::vector<Xid> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  std::string out = "{";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v[i]);
  }
  return out + "}";
}

}  // namespace

std::string Snapshot::ToString() const {
  return "Snapshot{xmin=" + std::to_string(xmin) + ", xmax=" + std::to_string(xmax) +
         ", active=" + SetToString(active) + "}";
}

std::string MergedSnapshot::ToString() const {
  return "Merged{" + local.ToString() +
         ", upgraded=" + SetToString(forced_committed) +
         ", downgraded=" + SetToString(forced_active) + "}";
}

}  // namespace ofi::txn
