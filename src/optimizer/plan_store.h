/// \file plan_store.h
/// \brief The learning optimizer's feedback cache (paper §II-C, Fig. 5).
///
/// Producer side: after execution, steps whose actual row count diverges
/// from the estimate by more than a threshold are captured. Consumer side:
/// at planning time the optimizer looks up each step's canonical text and,
/// on a hit, uses the recorded actual cardinality instead of its own
/// estimate. Keys are the MD5 of the step text (32 hex chars) so complex
/// queries do not blow up key size; a hash collision can at worst return a
/// wrong cardinality, which the paper argues is far less likely than a
/// plain mis-estimate.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/md5.h"
#include "sql/plan.h"

namespace ofi::optimizer {

/// One captured step (one row of Table I).
struct StepEntry {
  std::string step_text;  // retained for diagnostics / the Table I printout
  double estimated = 0;
  double actual = 0;
  uint64_t times_captured = 0;
  uint64_t hits = 0;  // consumer lookups served
};

/// \brief The plan store.
class PlanStore {
 public:
  /// \param capture_threshold minimum relative differential
  ///        |actual - estimate| / max(1, estimate) for a step to be captured.
  explicit PlanStore(double capture_threshold = 0.5)
      : capture_threshold_(capture_threshold) {}

  /// Consumer: cardinality for a step, if known. Counts lookups/hits.
  std::optional<double> LookupActual(const std::string& step_text);

  /// Producer: walks an *executed* plan (actual_rows filled) and captures
  /// every cardinality step whose estimate was off by the threshold.
  /// Returns the number of steps captured or refreshed.
  int CapturePlan(const sql::PlanNode& root);

  /// Unconditionally records one step (tests / manual seeding).
  void Put(const std::string& step_text, double estimated, double actual);

  size_t size() const { return entries_.size(); }
  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }
  double capture_threshold() const { return capture_threshold_; }

  /// Entries ordered by step text — the Table I rendering.
  std::vector<const StepEntry*> Entries() const;

  /// Renders the store as the paper's Table I ("LOGICAL CANONICAL FORM").
  std::string ToTableString() const;

  // --- Persistence (the plan store outlives optimizer restarts) ---------------
  /// Line-oriented text format: one entry per line,
  /// `estimated<TAB>actual<TAB>step_text`.
  std::string Serialize() const;
  /// Loads entries produced by Serialize, merging into the current store
  /// (same-step entries are replaced). Returns entries loaded; malformed
  /// lines fail with Corruption naming the line.
  Result<int> Deserialize(const std::string& data);

 private:
  double capture_threshold_;
  std::map<std::string, StepEntry> entries_;  // md5 hex -> entry
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace ofi::optimizer
