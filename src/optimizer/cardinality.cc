#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "optimizer/step_text.h"
#include "sql/executor.h"

namespace ofi::optimizer {
namespace {

constexpr double kDefaultSelectivity = 1.0 / 3.0;
constexpr double kDefaultJoinSelectivity = 0.1;

}  // namespace

double CardinalityEstimator::Selectivity(const sql::Expr& pred,
                                         const TableStats* stats) const {
  using sql::ExprKind;
  switch (pred.kind()) {
    case ExprKind::kCompare: {
      const auto& kids = pred.children();
      // col <op> literal (either orientation).
      const sql::Expr* col = nullptr;
      const sql::Expr* lit = nullptr;
      bool flipped = false;
      if (kids[0]->kind() == ExprKind::kColumn &&
          kids[1]->kind() == ExprKind::kLiteral) {
        col = kids[0].get();
        lit = kids[1].get();
      } else if (kids[1]->kind() == ExprKind::kColumn &&
                 kids[0]->kind() == ExprKind::kLiteral) {
        col = kids[1].get();
        lit = kids[0].get();
        flipped = true;
      } else {
        // col = col within one input: correlation guess.
        return pred.compare_op() == sql::CompareOp::kEq ? 0.05
                                                        : kDefaultSelectivity;
      }
      const ColumnStats* cs =
          stats ? stats->Column(col->column_name()) : nullptr;
      if (cs == nullptr) return kDefaultSelectivity;
      sql::CompareOp op = pred.compare_op();
      if (flipped) {
        switch (op) {
          case sql::CompareOp::kLt: op = sql::CompareOp::kGt; break;
          case sql::CompareOp::kLe: op = sql::CompareOp::kGe; break;
          case sql::CompareOp::kGt: op = sql::CompareOp::kLt; break;
          case sql::CompareOp::kGe: op = sql::CompareOp::kLe; break;
          default: break;
        }
      }
      const sql::Value& v = lit->literal();
      switch (op) {
        case sql::CompareOp::kEq: return cs->EqSelectivity(v);
        case sql::CompareOp::kNe: return 1.0 - cs->EqSelectivity(v);
        case sql::CompareOp::kLt: return cs->LtSelectivity(v);
        case sql::CompareOp::kLe:
          return cs->LtSelectivity(v) + cs->EqSelectivity(v);
        case sql::CompareOp::kGt:
          return std::max(0.0, 1.0 - cs->LtSelectivity(v) - cs->EqSelectivity(v));
        case sql::CompareOp::kGe: return 1.0 - cs->LtSelectivity(v);
      }
      return kDefaultSelectivity;
    }
    case ExprKind::kLogical: {
      double l = Selectivity(*pred.children()[0], stats);
      double r = Selectivity(*pred.children()[1], stats);
      // Independence assumption — the classical source of under-estimates
      // on correlated predicates that the plan store corrects.
      if (pred.logical_op() == sql::LogicalOp::kAnd) return l * r;
      return l + r - l * r;
    }
    case ExprKind::kNot:
      return 1.0 - Selectivity(*pred.children()[0], stats);
    case ExprKind::kInList: {
      const auto& kids = pred.children();
      const ColumnStats* cs =
          stats && kids[0]->kind() == ExprKind::kColumn
              ? stats->Column(kids[0]->column_name())
              : nullptr;
      if (cs == nullptr) return kDefaultSelectivity;
      double s = 0;
      for (const auto& v : pred.in_list()) s += cs->EqSelectivity(v);
      return std::min(1.0, s);
    }
    case ExprKind::kIsNull: {
      const auto& kids = pred.children();
      const ColumnStats* cs =
          stats && kids[0]->kind() == ExprKind::kColumn
              ? stats->Column(kids[0]->column_name())
              : nullptr;
      if (cs == nullptr || cs->num_values + cs->num_nulls == 0) return 0.01;
      return static_cast<double>(cs->num_nulls) /
             static_cast<double>(cs->num_values + cs->num_nulls);
    }
    default:
      return kDefaultSelectivity;
  }
}

double CardinalityEstimator::ColumnNdv(const std::string& column,
                                       double fallback) const {
  for (const auto& [table, ts] : stats_->all()) {
    const ColumnStats* cs = ts.Column(column);
    if (cs != nullptr && cs->ndv > 0) return static_cast<double>(cs->ndv);
  }
  return fallback;
}

double CardinalityEstimator::EstimateJoin(sql::PlanNode* node, double left,
                                          double right) const {
  std::vector<sql::ExprPtr> conjuncts;
  sql::SplitConjuncts(node->predicate, &conjuncts);
  double cross = left * right;
  double card = cross;
  bool any_equi = false;
  for (const auto& c : conjuncts) {
    if (c->kind() == sql::ExprKind::kCompare &&
        c->compare_op() == sql::CompareOp::kEq &&
        c->children()[0]->kind() == sql::ExprKind::kColumn &&
        c->children()[1]->kind() == sql::ExprKind::kColumn) {
      // Classic |L||R| / max(ndv(l), ndv(r)).
      double ndv_l = ColumnNdv(c->children()[0]->column_name(),
                               std::max(1.0, left));
      double ndv_r = ColumnNdv(c->children()[1]->column_name(),
                               std::max(1.0, right));
      card /= std::max({ndv_l, ndv_r, 1.0});
      any_equi = true;
    } else {
      card *= kDefaultJoinSelectivity;
    }
  }
  if (conjuncts.empty()) return cross;
  if (!any_equi) card = std::max(card, 1.0);
  if (node->join_type == sql::JoinType::kLeftOuter) card = std::max(card, left);
  if (node->join_type == sql::JoinType::kSemi) card = std::min(card, left);
  return card;
}

double CardinalityEstimator::EstimateNode(sql::PlanNode* node) const {
  using sql::PlanKind;
  // Children first.
  std::vector<double> child_rows;
  for (auto& c : node->children) {
    child_rows.push_back(EstimateNode(c.get()));
  }

  double est = 0;
  switch (node->kind) {
    case PlanKind::kScan: {
      const TableStats* ts = stats_->Get(node->table_name);
      double base = ts ? static_cast<double>(ts->num_rows) : 1000.0;
      double sel = node->predicate ? Selectivity(*node->predicate, ts) : 1.0;
      est = base * sel;
      break;
    }
    case PlanKind::kFilter: {
      // Filters above joins have no single base table; use the default
      // per-conjunct selectivity against no stats.
      est = child_rows[0] * Selectivity(*node->predicate, nullptr);
      break;
    }
    case PlanKind::kProject:
    case PlanKind::kSort:
      est = child_rows[0];
      break;
    case PlanKind::kJoin:
      est = EstimateJoin(node, child_rows[0], child_rows[1]);
      break;
    case PlanKind::kAggregate: {
      if (node->group_by.empty()) {
        est = 1;
      } else {
        double groups = 1;
        for (const auto& g : node->group_by) {
          groups *= ColumnNdv(g, 10.0);
        }
        est = std::min(groups, child_rows[0]);
      }
      break;
    }
    case PlanKind::kLimit:
      est = std::min<double>(static_cast<double>(node->limit), child_rows[0]);
      break;
    case PlanKind::kSetOp:
      switch (node->set_op) {
        case sql::SetOpType::kUnionAll: est = child_rows[0] + child_rows[1]; break;
        case sql::SetOpType::kUnion:
          est = (child_rows[0] + child_rows[1]) * 0.9;
          break;
        case sql::SetOpType::kIntersect:
          est = std::min(child_rows[0], child_rows[1]) * 0.5;
          break;
        case sql::SetOpType::kExcept: est = child_rows[0] * 0.5; break;
      }
      break;
    case PlanKind::kValues:
      est = node->values ? static_cast<double>(node->values->num_rows()) : 0;
      break;
  }
  est = std::max(est, 0.0);

  // Plan-store override: exact match on the canonical step text wins.
  if (store_ != nullptr && IsCardinalityStep(node->kind)) {
    if (auto learned = store_->LookupActual(StepText(*node))) {
      est = *learned;
    }
  }
  node->estimated_rows = est;
  return est;
}

void CardinalityEstimator::Annotate(sql::PlanNode* node) const {
  EstimateNode(node);
}

}  // namespace ofi::optimizer
