#include "optimizer/sql_session.h"

namespace ofi::optimizer {

SqlSession::SqlSession(double capture_threshold)
    : store_(capture_threshold < 0 ? 1e18 : capture_threshold),
      learning_(capture_threshold >= 0) {}

Result<sql::PlanPtr> SqlSession::PlanQuery(const sql::SelectStatement& stmt) {
  Optimizer opt(&catalog_, &stats_, learning_ ? &store_ : nullptr);
  sql::JoinPlanner join_planner =
      [&opt](std::vector<sql::PlannedScan> scans,
             std::vector<sql::ExprPtr> preds) -> Result<sql::PlanPtr> {
    std::vector<ScanSpec> specs;
    specs.reserve(scans.size());
    for (auto& s : scans) {
      specs.push_back(ScanSpec{s.table, s.predicate, s.alias});
    }
    return opt.PlanJoinQuery(std::move(specs), std::move(preds));
  };
  OFI_ASSIGN_OR_RETURN(sql::PlanPtr plan,
                       sql::PlanSelect(stmt, catalog_, join_planner));
  opt.Annotate(plan);
  return plan;
}

Result<sql::Table> SqlSession::Execute(const std::string& statement) {
  OFI_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(statement));
  switch (stmt.kind) {
    case sql::StatementKind::kCreateTable: {
      const auto& create = *stmt.create_table;
      if (catalog_.Contains(create.table)) {
        return Status::AlreadyExists("table exists: " + create.table);
      }
      // Qualify columns with the table name for qualified references.
      catalog_.Register(create.table,
                        sql::Table(create.schema.WithQualifier(create.table)));
      stats_.Put(create.table, TableStats{});
      return sql::Table{};
    }
    case sql::StatementKind::kDropTable: {
      OFI_RETURN_NOT_OK(catalog_.Drop(stmt.drop_table->table));
      return sql::Table{};
    }
    case sql::StatementKind::kCreateIndex: {
      // Secondary indexes are a physical access-path choice; the
      // single-node executor always scans, so the statement only needs to
      // validate (scripts stay portable between this session and the
      // distributed one).
      if (!catalog_.Contains(stmt.create_index->table)) {
        return Status::NotFound("no such table: " + stmt.create_index->table);
      }
      return sql::Table{};
    }
    case sql::StatementKind::kDropIndex:
      return sql::Table{};
    case sql::StatementKind::kInsert: {
      const auto& insert = *stmt.insert;
      OFI_ASSIGN_OR_RETURN(auto table, catalog_.Get(insert.table));
      for (const auto& row : insert.rows) {
        OFI_RETURN_NOT_OK(table->Append(row));
      }
      // Keep statistics fresh enough for small interactive sessions.
      stats_.Put(insert.table, AnalyzeTable(*table));
      return sql::Table{};
    }
    case sql::StatementKind::kSelect: {
      OFI_ASSIGN_OR_RETURN(sql::PlanPtr plan, PlanQuery(*stmt.select));
      Optimizer opt(&catalog_, &stats_, learning_ ? &store_ : nullptr);
      OFI_ASSIGN_OR_RETURN(sql::Table result, opt.ExecuteAndLearn(plan));
      last_max_qerror_ = Optimizer::MaxQError(*plan);
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::string> SqlSession::Explain(const std::string& query) {
  OFI_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(query));
  if (stmt.kind != sql::StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  OFI_ASSIGN_OR_RETURN(sql::PlanPtr plan, PlanQuery(*stmt.select));
  return plan->ToString();
}

}  // namespace ofi::optimizer
