/// \file optimizer.h
/// \brief The cost-based optimizer facade: greedy left-deep join ordering
/// driven by cardinality estimates, plus the execute-and-learn feedback
/// loop that closes the producer/consumer cycle of Fig. 5.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "optimizer/cardinality.h"
#include "optimizer/plan_store.h"
#include "optimizer/stats.h"
#include "sql/executor.h"
#include "sql/plan.h"

namespace ofi::optimizer {

/// One base relation of a join query.
struct ScanSpec {
  std::string table;
  sql::ExprPtr predicate;  // pushed-down filter, may be null
  std::string alias;       // optional qualifier
};

/// \brief Plans, executes and learns.
class Optimizer {
 public:
  /// \param store may be null to run in pure-statistics mode (the "before
  /// learning" baseline of experiment E4).
  Optimizer(const sql::Catalog* catalog, const StatsRegistry* stats,
            PlanStore* store)
      : catalog_(catalog), estimator_(stats, store), store_(store) {}

  /// Builds a left-deep join plan over `scans`, greedily picking the next
  /// relation that minimizes the estimated intermediate cardinality.
  /// Join predicates are attached as soon as both sides are in the prefix.
  Result<sql::PlanPtr> PlanJoinQuery(std::vector<ScanSpec> scans,
                                     std::vector<sql::ExprPtr> join_preds) const;

  /// Annotates estimated cardinalities (plan store consulted first).
  void Annotate(const sql::PlanPtr& plan) const { estimator_.Annotate(plan.get()); }

  /// Executes the plan and, when a plan store is attached, captures steps
  /// with large estimate/actual differentials (the producer of Fig. 5).
  /// Returns the query result; `captured` (optional) receives the number of
  /// steps captured.
  Result<sql::Table> ExecuteAndLearn(const sql::PlanPtr& plan,
                                     int* captured = nullptr);

  const CardinalityEstimator& estimator() const { return estimator_; }

  /// q-error of one executed+annotated step: max(e,a)/min(e,a), floored at 1.
  static double StepQError(double estimated, double actual);
  /// Collects q-errors of all executed cardinality steps in the plan.
  static void CollectQErrors(const sql::PlanNode& node, std::vector<double>* out);
  /// The maximum q-error across the plan — the headline metric of E4.
  static double MaxQError(const sql::PlanNode& root);

 private:
  const sql::Catalog* catalog_;
  CardinalityEstimator estimator_;
  PlanStore* store_;
};

}  // namespace ofi::optimizer
