#include "optimizer/stats.h"

#include <algorithm>
#include <unordered_map>

namespace ofi::optimizer {

double ColumnStats::EqSelectivity(const sql::Value& v) const {
  if (num_values == 0 || ndv == 0) return 0.0;
  // Out-of-range equality matches nothing (numeric columns).
  if (type != sql::TypeId::kString && !v.is_null()) {
    double d = v.AsDouble();
    if (d < min || d > max) return 0.0;
  }
  // MCV hit: exact frequency.
  uint64_t mcv_rows = 0;
  for (const auto& [value, count] : mcv) {
    if (value.Equals(v)) {
      return static_cast<double>(count) / static_cast<double>(num_values);
    }
    mcv_rows += count;
  }
  // Miss: uniform over the values NOT covered by the MCV list.
  uint64_t rest_rows = num_values > mcv_rows ? num_values - mcv_rows : 0;
  uint64_t rest_ndv = ndv > mcv.size() ? ndv - mcv.size() : 1;
  if (rest_rows == 0) return 0.0;
  return static_cast<double>(rest_rows) / static_cast<double>(rest_ndv) /
         static_cast<double>(num_values);
}

double ColumnStats::LtSelectivity(const sql::Value& v) const {
  if (num_values == 0) return 0.0;
  if (type == sql::TypeId::kString || v.is_null()) return 1.0 / 3.0;  // default
  double d = v.AsDouble();
  if (d <= min) return 0.0;
  if (d > max) return 1.0;
  if (bounds.empty()) {
    return max > min ? (d - min) / (max - min) : 0.5;
  }
  // Equi-depth: each bucket holds 1/bounds.size() of the rows; interpolate
  // linearly inside the bucket containing d.
  double per_bucket = 1.0 / static_cast<double>(bounds.size());
  double lo = min;
  for (size_t i = 0; i < bounds.size(); ++i) {
    double hi = bounds[i];
    if (d <= hi) {
      double frac = hi > lo ? (d - lo) / (hi - lo) : 1.0;
      return per_bucket * (static_cast<double>(i) + frac);
    }
    lo = hi;
  }
  return 1.0;
}

double TableStats::AvgRowBytes() const {
  double total = 0;
  for (const auto& [name, cs] : columns) total += cs.avg_width;
  return std::max(total, 1.0);
}

const ColumnStats* TableStats::Column(const std::string& name) const {
  auto it = columns.find(name);
  if (it != columns.end()) return &it->second;
  // Accept qualified lookups ("OLAP.T1.B1" -> "B1").
  auto dot = name.rfind('.');
  if (dot != std::string::npos) {
    it = columns.find(name.substr(dot + 1));
    if (it != columns.end()) return &it->second;
  }
  return nullptr;
}

TableStats AnalyzeTable(const sql::Table& table, size_t histogram_buckets,
                        size_t mcv_size) {
  TableStats stats;
  stats.num_rows = table.num_rows();
  const sql::Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    ColumnStats cs;
    cs.type = schema.column(c).type;
    std::vector<double> numeric;
    std::unordered_map<sql::Value, uint64_t> frequencies;
    uint64_t width_sum = 0;
    for (const auto& row : table.rows()) {
      const sql::Value& v = row[c];
      width_sum += v.ByteSize();
      if (v.is_null()) {
        ++cs.num_nulls;
        continue;
      }
      ++cs.num_values;
      ++frequencies[v];
      if (v.type() != sql::TypeId::kString && v.type() != sql::TypeId::kBool) {
        numeric.push_back(v.AsDouble());
      }
    }
    cs.ndv = frequencies.size();
    cs.avg_width = stats.num_rows == 0
                       ? 0.0
                       : static_cast<double>(width_sum) /
                             static_cast<double>(stats.num_rows);
    // MCV list: the mcv_size most frequent values, kept only when they are
    // actually skewed (frequency above the uniform expectation).
    if (!frequencies.empty() && mcv_size > 0) {
      std::vector<std::pair<sql::Value, uint64_t>> sorted(frequencies.begin(),
                                                          frequencies.end());
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      double uniform = static_cast<double>(cs.num_values) /
                       static_cast<double>(cs.ndv);
      for (size_t i = 0; i < sorted.size() && cs.mcv.size() < mcv_size; ++i) {
        if (static_cast<double>(sorted[i].second) <= uniform * 1.5) break;
        cs.mcv.push_back(sorted[i]);
      }
    }
    if (!numeric.empty()) {
      std::sort(numeric.begin(), numeric.end());
      cs.min = numeric.front();
      cs.max = numeric.back();
      size_t buckets = std::min(histogram_buckets, numeric.size());
      for (size_t b = 1; b <= buckets; ++b) {
        size_t idx = b * numeric.size() / buckets;
        cs.bounds.push_back(numeric[std::min(idx, numeric.size() - 1)]);
      }
    }
    stats.columns[schema.column(c).name] = std::move(cs);
  }
  return stats;
}

TableStats AnalyzeColumnTableZones(const storage::ColumnTable& table) {
  TableStats stats;
  const sql::Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    auto summary = table.ZoneSummary(schema.column(c).name);
    if (!summary.ok()) continue;
    ColumnStats cs;
    cs.type = summary->type;
    cs.num_nulls = summary->nulls;
    cs.num_values = summary->rows - summary->nulls;
    if (summary->has_int_range) {
      cs.min = static_cast<double>(summary->min);
      cs.max = static_cast<double>(summary->max);
    }
    cs.ndv = summary->dict_ndv;  // strings: lower bound; 0 = unknown
    if (summary->rows > 0) {
      // NULLs take 1 byte in row form; plain_bytes charges full width.
      uint64_t bytes = summary->plain_bytes;
      if (summary->type != sql::TypeId::kString) {
        bytes = cs.num_values * 8 + cs.num_nulls * 1;
      }
      cs.avg_width = static_cast<double>(bytes) / static_cast<double>(summary->rows);
    }
    stats.num_rows = summary->rows;
    stats.columns[schema.column(c).name] = std::move(cs);
  }
  return stats;
}

void StatsRegistry::AnalyzeAll(const sql::Catalog& catalog) {
  for (const auto& name : catalog.TableNames()) {
    auto t = catalog.Get(name);
    if (t.ok()) Put(name, AnalyzeTable(**t));
  }
}

}  // namespace ofi::optimizer
