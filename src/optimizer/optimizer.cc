#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "optimizer/step_text.h"

namespace ofi::optimizer {

Result<sql::PlanPtr> Optimizer::PlanJoinQuery(
    std::vector<ScanSpec> scans, std::vector<sql::ExprPtr> join_preds) const {
  if (scans.empty()) return Status::InvalidArgument("no relations to plan");

  // Build and estimate each base scan.
  struct Rel {
    sql::PlanPtr plan;
    std::vector<std::string> columns;  // output column names (qualified)
    bool used = false;
  };
  std::vector<Rel> rels;
  for (auto& s : scans) {
    OFI_ASSIGN_OR_RETURN(auto table, catalog_->Get(s.table));
    sql::PlanPtr scan = sql::MakeScan(s.table, s.predicate, s.alias);
    estimator_.Annotate(scan.get());
    Rel rel;
    rel.plan = scan;
    const sql::Schema schema = s.alias.empty()
                                   ? table->schema()
                                   : table->schema().WithQualifier(s.alias);
    for (const auto& c : schema.columns()) {
      rel.columns.push_back(c.QualifiedName());
      rel.columns.push_back(c.name);
    }
    rels.push_back(std::move(rel));
  }

  auto rel_has_column = [&](const Rel& r, const std::string& col) {
    return std::find(r.columns.begin(), r.columns.end(), col) != r.columns.end();
  };

  // A predicate is applicable once every referenced column is covered.
  auto pred_applicable = [&](const sql::ExprPtr& p,
                             const std::vector<std::string>& covered) {
    std::vector<std::string> cols;
    p->CollectColumns(&cols);
    for (const auto& c : cols) {
      if (std::find(covered.begin(), covered.end(), c) == covered.end()) {
        return false;
      }
    }
    return true;
  };

  // Start from the smallest estimated relation.
  size_t start = 0;
  for (size_t i = 1; i < rels.size(); ++i) {
    if (rels[i].plan->estimated_rows < rels[start].plan->estimated_rows) start = i;
  }
  rels[start].used = true;
  sql::PlanPtr current = rels[start].plan;
  std::vector<std::string> covered = rels[start].columns;
  std::vector<bool> pred_used(join_preds.size(), false);

  for (size_t step = 1; step < rels.size(); ++step) {
    double best_card = -1;
    size_t best_rel = SIZE_MAX;
    sql::PlanPtr best_plan;
    std::vector<size_t> best_preds;

    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].used) continue;
      // Predicates that become applicable by adding relation i.
      std::vector<std::string> cand_cols = covered;
      cand_cols.insert(cand_cols.end(), rels[i].columns.begin(),
                       rels[i].columns.end());
      std::vector<sql::ExprPtr> applicable;
      std::vector<size_t> applicable_idx;
      for (size_t p = 0; p < join_preds.size(); ++p) {
        if (pred_used[p]) continue;
        if (pred_applicable(join_preds[p], cand_cols)) {
          applicable.push_back(join_preds[p]);
          applicable_idx.push_back(p);
        }
      }
      sql::PlanPtr join =
          sql::MakeJoin(current, rels[i].plan, sql::ConjoinAll(applicable));
      estimator_.Annotate(join.get());
      double card = join->estimated_rows;
      // Prefer connected joins over cross products, then lowest cardinality.
      bool connected = !applicable.empty();
      bool best_connected = !best_preds.empty();
      bool better = best_rel == SIZE_MAX ||
                    (connected && !best_connected) ||
                    (connected == best_connected && card < best_card);
      if (better) {
        best_card = card;
        best_rel = i;
        best_plan = join;
        best_preds = applicable_idx;
      }
    }
    rels[best_rel].used = true;
    covered.insert(covered.end(), rels[best_rel].columns.begin(),
                   rels[best_rel].columns.end());
    for (size_t p : best_preds) pred_used[p] = true;
    current = best_plan;
  }

  // Any predicate never attached (e.g. referencing projected names) becomes
  // a post-join filter.
  std::vector<sql::ExprPtr> leftover;
  for (size_t p = 0; p < join_preds.size(); ++p) {
    if (!pred_used[p]) leftover.push_back(join_preds[p]);
  }
  if (!leftover.empty()) {
    current = sql::MakeFilter(current, sql::ConjoinAll(leftover));
  }
  estimator_.Annotate(current.get());
  return current;
}

Result<sql::Table> Optimizer::ExecuteAndLearn(const sql::PlanPtr& plan,
                                              int* captured) {
  sql::Executor exec(catalog_);
  OFI_ASSIGN_OR_RETURN(sql::Table result, exec.Execute(plan));
  int n = store_ != nullptr ? store_->CapturePlan(*plan) : 0;
  if (captured != nullptr) *captured = n;
  return result;
}

double Optimizer::StepQError(double estimated, double actual) {
  double e = std::max(estimated, 1.0);
  double a = std::max(actual, 1.0);
  return std::max(e, a) / std::min(e, a);
}

void Optimizer::CollectQErrors(const sql::PlanNode& node,
                               std::vector<double>* out) {
  for (const auto& c : node.children) CollectQErrors(*c, out);
  if (IsCardinalityStep(node.kind) && node.actual_rows >= 0 &&
      node.estimated_rows >= 0) {
    out->push_back(StepQError(node.estimated_rows, node.actual_rows));
  }
}

double Optimizer::MaxQError(const sql::PlanNode& root) {
  std::vector<double> qs;
  CollectQErrors(root, &qs);
  double m = 1.0;
  for (double q : qs) m = std::max(m, q);
  return m;
}

}  // namespace ofi::optimizer
