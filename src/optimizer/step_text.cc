#include "optimizer/step_text.h"

#include <algorithm>

namespace ofi::optimizer {

bool IsCardinalityStep(sql::PlanKind kind) {
  switch (kind) {
    case sql::PlanKind::kScan:
    case sql::PlanKind::kFilter:
    case sql::PlanKind::kJoin:
    case sql::PlanKind::kAggregate:
    case sql::PlanKind::kSetOp:
    case sql::PlanKind::kLimit:
      return true;
    case sql::PlanKind::kProject:
    case sql::PlanKind::kSort:
    case sql::PlanKind::kValues:
      return false;
  }
  return false;
}

std::string StepText(const sql::PlanNode& node) {
  using sql::PlanKind;
  switch (node.kind) {
    case PlanKind::kScan: {
      std::string out = "SCAN(" + node.table_name;
      if (node.predicate) {
        out += ", PREDICATE(" + node.predicate->ToCanonicalString() + ")";
      }
      return out + ")";
    }
    case PlanKind::kFilter:
      return "FILTER(" + StepText(*node.children[0]) + ", PREDICATE(" +
             node.predicate->ToCanonicalString() + "))";
    case PlanKind::kJoin: {
      // Order join children so A⋈B and B⋈A share one entry. Outer joins and
      // semijoins are not symmetric, so only inner joins get reordered.
      std::string l = StepText(*node.children[0]);
      std::string r = StepText(*node.children[1]);
      if (node.join_type == sql::JoinType::kInner && r < l) std::swap(l, r);
      std::string tag = node.join_type == sql::JoinType::kInner     ? "JOIN"
                        : node.join_type == sql::JoinType::kSemi    ? "SEMIJOIN"
                                                                    : "LEFTJOIN";
      std::string out = tag + "(" + l + ", " + r;
      if (node.predicate) {
        out += ", PREDICATE(" + node.predicate->ToCanonicalString() + ")";
      }
      return out + ")";
    }
    case PlanKind::kAggregate: {
      std::string out = "AGG(" + StepText(*node.children[0]);
      if (!node.group_by.empty()) {
        std::vector<std::string> cols = node.group_by;
        std::sort(cols.begin(), cols.end());
        out += ", GROUPBY(";
        for (size_t i = 0; i < cols.size(); ++i) {
          if (i) out += ",";
          out += cols[i];
        }
        out += ")";
      }
      return out + ")";
    }
    case PlanKind::kSetOp: {
      std::string l = StepText(*node.children[0]);
      std::string r = StepText(*node.children[1]);
      const char* tag = nullptr;
      bool symmetric = false;
      switch (node.set_op) {
        case sql::SetOpType::kUnionAll: tag = "UNIONALL"; symmetric = true; break;
        case sql::SetOpType::kUnion: tag = "UNION"; symmetric = true; break;
        case sql::SetOpType::kIntersect: tag = "INTERSECT"; symmetric = true; break;
        case sql::SetOpType::kExcept: tag = "EXCEPT"; break;
      }
      if (symmetric && r < l) std::swap(l, r);
      return std::string(tag) + "(" + l + ", " + r + ")";
    }
    case PlanKind::kLimit:
      return "LIMIT(" + StepText(*node.children[0]) + ", " +
             std::to_string(node.limit) + ")";
    case PlanKind::kProject:
    case PlanKind::kSort:
      // Cardinality-neutral: transparent for matching purposes.
      return StepText(*node.children[0]);
    case PlanKind::kValues:
      return "VALUES(" + node.alias + ")";
  }
  return "?";
}

}  // namespace ofi::optimizer
