/// \file sql_session.h
/// \brief The text front door: parse -> rewrite -> cost-based plan ->
/// execute -> learn, in one call. This is the integration point of the
/// whole FI-MPPDB-style analytic stack: the SQL parser and rewriter
/// (src/sql), the statistics + plan-store optimizer (§II-C), and the
/// executor. DDL/DML (CREATE TABLE / INSERT / DROP) maintain the catalog
/// and its statistics.
#pragma once

#include <string>

#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace ofi::optimizer {

/// \brief A stateful SQL session over an in-memory catalog.
class SqlSession {
 public:
  /// \param capture_threshold plan-store capture differential (§II-C);
  ///        pass a negative value to disable learning entirely.
  explicit SqlSession(double capture_threshold = 0.5);

  /// Executes one statement. Queries return their result table; DDL/DML
  /// return an empty table on success.
  Result<sql::Table> Execute(const std::string& statement);

  /// EXPLAIN: parse + plan + annotate, render the plan without executing.
  Result<std::string> Explain(const std::string& query);

  /// Re-ANALYZEs every table (after bulk loads).
  void Analyze() { stats_.AnalyzeAll(catalog_); }

  sql::Catalog& catalog() { return catalog_; }
  const PlanStore& plan_store() const { return store_; }
  PlanStore& mutable_plan_store() { return store_; }
  const StatsRegistry& stats() const { return stats_; }

  /// The last executed query's max q-error (1.0 = perfect estimates).
  double last_max_qerror() const { return last_max_qerror_; }

 private:
  Result<sql::PlanPtr> PlanQuery(const sql::SelectStatement& stmt);

  sql::Catalog catalog_;
  StatsRegistry stats_;
  PlanStore store_;
  bool learning_;
  double last_max_qerror_ = 1.0;
};

}  // namespace ofi::optimizer
