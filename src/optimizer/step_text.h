/// \file step_text.h
/// \brief The paper's "logical canonical form" (§II-C, Table I): every
/// cardinality-affecting plan step renders to a prefix expression over
/// *logical* operators — SCAN instead of index/seq scan, JOIN instead of
/// hash/NL join — with deterministically ordered predicates and join
/// children, so the same (sub)query always produces the same text
/// regardless of physical plan, predicate order or join input order.
///
/// Example (Table I):
///   SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10))
///   JOIN(SCAN(OLAP.T1, PREDICATE(OLAP.T1.B1>10)), SCAN(OLAP.T2),
///        PREDICATE(OLAP.T1.A1=OLAP.T2.A2))
#pragma once

#include <string>

#include "sql/plan.h"

namespace ofi::optimizer {

/// Canonical step text for the subtree rooted at `node`.
///
/// Cardinality-neutral operators (PROJECT, SORT) are transparent: their
/// step text is their child's, so a JOIN over a projected scan matches the
/// same JOIN over the bare scan.
std::string StepText(const sql::PlanNode& node);

/// True if this operator kind affects cardinality and is therefore captured
/// into the plan store (scans, filters, joins, aggregations, set operations
/// and limits — per the paper's list).
bool IsCardinalityStep(sql::PlanKind kind);

}  // namespace ofi::optimizer
