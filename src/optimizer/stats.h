/// \file stats.h
/// \brief Classic optimizer statistics: row counts, per-column min/max,
/// distinct counts and equi-depth histograms. These drive the *traditional*
/// cardinality estimates whose errors the learning component corrects
/// (paper §II-C).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/table.h"
#include "storage/column_store.h"

namespace ofi::optimizer {

/// \brief Statistics for one column.
struct ColumnStats {
  sql::TypeId type = sql::TypeId::kNull;
  uint64_t num_values = 0;   // non-null count
  uint64_t num_nulls = 0;
  uint64_t ndv = 0;          // number of distinct values
  double min = 0;            // numeric columns only
  double max = 0;
  /// Equi-depth histogram bucket upper bounds (numeric columns). Each of the
  /// `bounds.size()` buckets holds ~num_values/bounds.size() rows.
  std::vector<double> bounds;
  /// Most common values with exact frequencies — the standard defense
  /// against skew, where uniform-within-ndv misestimates badly.
  std::vector<std::pair<sql::Value, uint64_t>> mcv;
  /// Mean per-row byte footprint of this column (NULLs included), from
  /// Value::ByteSize. Feeds bytes-moved estimates for the distributed
  /// exchange planner (broadcast vs repartition).
  double avg_width = 0;

  /// Fraction of rows with value == v: exact for MCVs, uniform over the
  /// remaining (non-MCV) values otherwise.
  double EqSelectivity(const sql::Value& v) const;
  /// Fraction of rows with value < v (histogram interpolation).
  double LtSelectivity(const sql::Value& v) const;
};

/// \brief Statistics for one table.
struct TableStats {
  uint64_t num_rows = 0;
  std::map<std::string, ColumnStats> columns;  // by bare column name

  const ColumnStats* Column(const std::string& name) const;

  /// Estimated mean bytes per row (sum of column widths); >= 1 when the
  /// table has columns so size products stay meaningful on empty stats.
  double AvgRowBytes() const;
  /// Estimated total bytes of the relation — the quantity the exchange
  /// planner compares across broadcast and repartition plans.
  double EstimatedBytes() const { return static_cast<double>(num_rows) * AvgRowBytes(); }
};

/// Computes full statistics for a table (ANALYZE).
TableStats AnalyzeTable(const sql::Table& table, size_t histogram_buckets = 32,
                        size_t mcv_size = 8);

/// ANALYZE from a columnar table's zone maps — no chunk is decoded. Row,
/// null and min/max figures are exact (zone maps are exact per chunk);
/// string ndv is a lower bound from the largest per-chunk dictionary;
/// histograms and MCVs are left empty (they need values). avg_width comes
/// from the plain-encoded payload size, feeding the exchange planner's
/// EstimatedBytes without touching data.
TableStats AnalyzeColumnTableZones(const storage::ColumnTable& table);

/// \brief Named stats registry the optimizer consults.
class StatsRegistry {
 public:
  void Put(const std::string& table, TableStats stats) {
    stats_[table] = std::move(stats);
  }
  const TableStats* Get(const std::string& table) const {
    auto it = stats_.find(table);
    return it == stats_.end() ? nullptr : &it->second;
  }
  /// ANALYZEs every table in `catalog`.
  void AnalyzeAll(const sql::Catalog& catalog);

  const std::map<std::string, TableStats>& all() const { return stats_; }

 private:
  std::map<std::string, TableStats> stats_;
};

}  // namespace ofi::optimizer
