#include "optimizer/plan_store.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "optimizer/step_text.h"

namespace ofi::optimizer {

std::optional<double> PlanStore::LookupActual(const std::string& step_text) {
  ++lookups_;
  auto it = entries_.find(Md5::HexDigest(step_text));
  if (it == entries_.end()) return std::nullopt;
  ++hits_;
  ++it->second.hits;
  return it->second.actual;
}

void PlanStore::Put(const std::string& step_text, double estimated,
                    double actual) {
  StepEntry& e = entries_[Md5::HexDigest(step_text)];
  e.step_text = step_text;
  e.estimated = estimated;
  e.actual = actual;
  ++e.times_captured;
}

int PlanStore::CapturePlan(const sql::PlanNode& root) {
  int captured = 0;
  // Post-order walk: capture children first so a re-planned parent can
  // already use corrected child cardinalities.
  for (const auto& c : root.children) captured += CapturePlan(*c);
  if (!IsCardinalityStep(root.kind)) return captured;
  if (root.actual_rows < 0) return captured;  // not executed
  double est = root.estimated_rows < 0 ? 0 : root.estimated_rows;
  double differential =
      std::abs(root.actual_rows - est) / std::max(1.0, est);
  if (differential < capture_threshold_) return captured;
  Put(StepText(root), est, root.actual_rows);
  return captured + 1;
}

std::vector<const StepEntry*> PlanStore::Entries() const {
  std::vector<const StepEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [k, e] : entries_) out.push_back(&e);
  std::sort(out.begin(), out.end(), [](const StepEntry* a, const StepEntry* b) {
    return a->step_text < b->step_text;
  });
  return out;
}

std::string PlanStore::Serialize() const {
  std::string out;
  for (const StepEntry* e : Entries()) {
    out += std::to_string(e->estimated) + "\t" + std::to_string(e->actual) +
           "\t" + e->step_text + "\n";
  }
  return out;
}

Result<int> PlanStore::Deserialize(const std::string& data) {
  int loaded = 0;
  size_t pos = 0;
  int line_no = 0;
  while (pos < data.size()) {
    size_t end = data.find('\n', pos);
    if (end == std::string::npos) end = data.size();
    std::string line = data.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    size_t t1 = line.find('\t');
    size_t t2 = t1 == std::string::npos ? std::string::npos
                                        : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      return Status::Corruption("plan store line " + std::to_string(line_no) +
                                ": expected est\\tact\\tstep");
    }
    char* endptr = nullptr;
    std::string est_s = line.substr(0, t1);
    std::string act_s = line.substr(t1 + 1, t2 - t1 - 1);
    double est = std::strtod(est_s.c_str(), &endptr);
    if (endptr == nullptr || *endptr != '\0') {
      return Status::Corruption("plan store line " + std::to_string(line_no) +
                                ": bad estimate");
    }
    double act = std::strtod(act_s.c_str(), &endptr);
    if (endptr == nullptr || *endptr != '\0') {
      return Status::Corruption("plan store line " + std::to_string(line_no) +
                                ": bad actual");
    }
    Put(line.substr(t2 + 1), est, act);
    ++loaded;
  }
  return loaded;
}

std::string PlanStore::ToTableString() const {
  std::string out;
  out += "| Step Description | Estimate | Actual |\n";
  for (const StepEntry* e : Entries()) {
    out += "| " + e->step_text + " | " + std::to_string((int64_t)e->estimated) +
           " | " + std::to_string((int64_t)e->actual) + " |\n";
  }
  return out;
}

}  // namespace ofi::optimizer
