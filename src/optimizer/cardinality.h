/// \file cardinality.h
/// \brief Cardinality estimation: classic statistics-based estimates
/// (histograms + independence assumption) with opportunistic plan-store
/// overrides — the consumer half of the learning loop (paper §II-C).
#pragma once

#include "optimizer/plan_store.h"
#include "optimizer/stats.h"
#include "sql/plan.h"

namespace ofi::optimizer {

/// \brief Annotates plans with estimated row counts.
class CardinalityEstimator {
 public:
  /// \param stats  ANALYZE output for base tables (required)
  /// \param store  plan store; may be null (pure statistics mode)
  CardinalityEstimator(const StatsRegistry* stats, PlanStore* store)
      : stats_(stats), store_(store) {}

  /// Fills `estimated_rows` on every node, bottom-up. For each
  /// cardinality step the plan store is consulted first; statistics are the
  /// fallback (paper: "if no relevant information can be found at the plan
  /// store, the optimizer proceeds with its own estimates").
  void Annotate(sql::PlanNode* node) const;

  /// Selectivity of `pred` against a table's statistics (independence
  /// assumption across conjuncts — deliberately classical).
  double Selectivity(const sql::Expr& pred, const TableStats* stats) const;

  /// Distinct-count estimate for a column, searched across base tables.
  double ColumnNdv(const std::string& column, double fallback) const;

 private:
  double EstimateNode(sql::PlanNode* node) const;
  double EstimateJoin(sql::PlanNode* node, double left, double right) const;

  const StatsRegistry* stats_;
  PlanStore* store_;
};

}  // namespace ofi::optimizer
