#include "timeseries/timeseries.h"

#include <algorithm>

namespace ofi::timeseries {

void Series::Append(Timestamp ts, double value) {
  if (!samples_.empty() && ts < samples_.back().ts) sorted_ = false;
  samples_.push_back(Sample{ts, value});
}

void Series::EnsureSorted() const {
  if (sorted_) return;
  std::stable_sort(samples_.begin(), samples_.end(),
                   [](const Sample& a, const Sample& b) { return a.ts < b.ts; });
  sorted_ = true;
}

Timestamp Series::max_ts() const {
  EnsureSorted();
  return samples_.empty() ? 0 : samples_.back().ts;
}

std::vector<Sample> Series::Range(Timestamp from, Timestamp to) const {
  EnsureSorted();
  auto lo = std::lower_bound(samples_.begin(), samples_.end(), from,
                             [](const Sample& s, Timestamp t) { return s.ts < t; });
  auto hi = std::lower_bound(samples_.begin(), samples_.end(), to,
                             [](const Sample& s, Timestamp t) { return s.ts < t; });
  return std::vector<Sample>(lo, hi);
}

std::vector<WindowAgg> Series::Downsample(Timestamp from, Timestamp to,
                                          Timestamp window_us, AggKind agg) const {
  std::vector<WindowAgg> out;
  if (window_us <= 0 || to <= from) return out;
  std::vector<Sample> range = Range(from, to);
  size_t i = 0;
  for (Timestamp w = from; w < to; w += window_us) {
    Timestamp end = w + window_us;
    double sum = 0, mn = 0, mx = 0;
    uint64_t count = 0;
    while (i < range.size() && range[i].ts < end) {
      double v = range[i].value;
      if (count == 0) {
        mn = mx = v;
      } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      sum += v;
      ++count;
      ++i;
    }
    if (count == 0) continue;  // sparse output: empty windows omitted
    double value = 0;
    switch (agg) {
      case AggKind::kAvg: value = sum / static_cast<double>(count); break;
      case AggKind::kSum: value = sum; break;
      case AggKind::kMin: value = mn; break;
      case AggKind::kMax: value = mx; break;
      case AggKind::kCount: value = static_cast<double>(count); break;
    }
    out.push_back(WindowAgg{w, value, count});
  }
  return out;
}

size_t Series::Retain(Timestamp cutoff) {
  EnsureSorted();
  auto lo = std::lower_bound(samples_.begin(), samples_.end(), cutoff,
                             [](const Sample& s, Timestamp t) { return s.ts < t; });
  size_t dropped = static_cast<size_t>(lo - samples_.begin());
  samples_.erase(samples_.begin(), lo);
  return dropped;
}

Result<const Series*> MetricStore::Get(const std::string& metric) const {
  auto it = series_.find(metric);
  if (it == series_.end()) return Status::NotFound("no series: " + metric);
  return &it->second;
}

size_t MetricStore::RetainAll(Timestamp cutoff) {
  size_t dropped = 0;
  for (auto& [name, s] : series_) dropped += s.Retain(cutoff);
  return dropped;
}

void ContinuousAggregate::Ingest(Timestamp ts, double value) {
  Timestamp w = ts - (ts % window_us_ + window_us_) % window_us_;
  State& st = windows_[w];
  if (st.count == 0) {
    st.min = st.max = value;
  } else {
    st.min = std::min(st.min, value);
    st.max = std::max(st.max, value);
  }
  st.sum += value;
  ++st.count;
}

std::vector<WindowAgg> ContinuousAggregate::Windows(Timestamp from,
                                                    Timestamp to) const {
  std::vector<WindowAgg> out;
  for (auto it = windows_.lower_bound(from); it != windows_.end() && it->first < to;
       ++it) {
    const State& st = it->second;
    double value = 0;
    switch (agg_) {
      case AggKind::kAvg:
        value = st.count ? st.sum / static_cast<double>(st.count) : 0;
        break;
      case AggKind::kSum: value = st.sum; break;
      case AggKind::kMin: value = st.min; break;
      case AggKind::kMax: value = st.max; break;
      case AggKind::kCount: value = static_cast<double>(st.count); break;
    }
    out.push_back(WindowAgg{it->first, value, st.count});
  }
  return out;
}

EventStore::EventStore(std::vector<sql::Column> value_columns) {
  std::vector<sql::Column> cols = {{"time", sql::TypeId::kTimestamp, ""}};
  cols.insert(cols.end(), value_columns.begin(), value_columns.end());
  schema_ = sql::Schema(std::move(cols));
}

Status EventStore::Append(Timestamp ts, sql::Row values) {
  if (values.size() + 1 != schema_.num_columns()) {
    return Status::InvalidArgument("event arity mismatch");
  }
  if (!events_.empty() && ts < events_.back().ts) sorted_ = false;
  events_.push_back(Event{ts, std::move(values)});
  return Status::OK();
}

void EventStore::EnsureSorted() const {
  if (sorted_) return;
  std::stable_sort(mutable_events()->begin(), mutable_events()->end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  sorted_ = true;
}

sql::Table EventStore::Window(Timestamp now, Timestamp window_us) const {
  return RangeTable(now - window_us, now + 1);
}

sql::Table EventStore::RangeTable(Timestamp from, Timestamp to) const {
  EnsureSorted();
  auto lo = std::lower_bound(events_.begin(), events_.end(), from,
                             [](const Event& e, Timestamp t) { return e.ts < t; });
  auto hi = std::lower_bound(events_.begin(), events_.end(), to,
                             [](const Event& e, Timestamp t) { return e.ts < t; });
  sql::Table out(schema_);
  for (auto it = lo; it != hi; ++it) {
    sql::Row row = {sql::Value::Timestamp(it->ts)};
    row.insert(row.end(), it->values.begin(), it->values.end());
    out.mutable_rows().push_back(std::move(row));
  }
  return out;
}

size_t EventStore::Retain(Timestamp cutoff) {
  EnsureSorted();
  auto lo = std::lower_bound(events_.begin(), events_.end(), cutoff,
                             [](const Event& e, Timestamp t) { return e.ts < t; });
  size_t dropped = static_cast<size_t>(lo - events_.begin());
  mutable_events()->erase(mutable_events()->begin(), lo);
  return dropped;
}

}  // namespace ofi::timeseries
