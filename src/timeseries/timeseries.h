/// \file timeseries.h
/// \brief The time-series runtime engine (paper §II-B): a high-ingest
/// append store for numeric metrics with window queries and downsampling,
/// plus an event store whose recent-window view is the `gtimeseries(...)`
/// table expression used by Example 1. Pre-aggregation (continuous
/// rollups) implements the edge-side "data pre-aggregation for time series
/// data" of §IV-B3.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/table.h"

namespace ofi::timeseries {

/// Microseconds since epoch (matches sql::Value::Timestamp payloads).
using Timestamp = int64_t;

/// One numeric sample.
struct Sample {
  Timestamp ts = 0;
  double value = 0;
};

enum class AggKind { kAvg, kSum, kMin, kMax, kCount };

/// One downsampled window.
struct WindowAgg {
  Timestamp window_start = 0;
  double value = 0;
  uint64_t count = 0;
};

/// \brief A single metric series: append-mostly, tolerant of slightly
/// out-of-order arrivals (kept sorted lazily).
class Series {
 public:
  void Append(Timestamp ts, double value);
  /// Samples with from <= ts < to.
  std::vector<Sample> Range(Timestamp from, Timestamp to) const;
  /// Fixed-window downsampling over [from, to).
  std::vector<WindowAgg> Downsample(Timestamp from, Timestamp to,
                                    Timestamp window_us, AggKind agg) const;
  /// Drops samples older than `cutoff` (retention); returns dropped count.
  size_t Retain(Timestamp cutoff);

  size_t size() const { return samples_.size(); }
  Timestamp min_ts() const { return samples_.empty() ? 0 : samples_.front().ts; }
  Timestamp max_ts() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<Sample> samples_;
  mutable bool sorted_ = true;
};

/// \brief A metric store: named series with tag-free keys ("metric" names).
class MetricStore {
 public:
  void Append(const std::string& metric, Timestamp ts, double value) {
    series_[metric].Append(ts, value);
  }
  Result<const Series*> Get(const std::string& metric) const;
  Series* GetOrCreate(const std::string& metric) { return &series_[metric]; }
  size_t num_series() const { return series_.size(); }
  /// Applies retention to every series.
  size_t RetainAll(Timestamp cutoff);

 private:
  std::map<std::string, Series> series_;
};

/// \brief A continuous aggregate: maintains per-window rollups on ingest so
/// window queries never rescan raw data (edge pre-aggregation, §IV-B3).
class ContinuousAggregate {
 public:
  ContinuousAggregate(Timestamp window_us, AggKind agg)
      : window_us_(window_us), agg_(agg) {}

  void Ingest(Timestamp ts, double value);
  std::vector<WindowAgg> Windows(Timestamp from, Timestamp to) const;
  size_t num_windows() const { return windows_.size(); }

 private:
  struct State {
    double sum = 0, min = 0, max = 0;
    uint64_t count = 0;
  };
  Timestamp window_us_;
  AggKind agg_;
  std::map<Timestamp, State> windows_;
};

/// \brief Timestamped relational events — the storage behind
/// `gtimeseries(select ... where now() - time < W)` table expressions.
/// Schema is fixed at construction; the first column is always `time`.
class EventStore {
 public:
  /// \param value_columns the non-time columns, e.g. {carid, juncid}.
  explicit EventStore(std::vector<sql::Column> value_columns);

  const sql::Schema& schema() const { return schema_; }

  /// Appends an event (row WITHOUT the time column).
  Status Append(Timestamp ts, sql::Row values);

  /// The gtimeseries() table expression: events with now-window <= t < now.
  sql::Table Window(Timestamp now, Timestamp window_us) const;
  /// Events in [from, to).
  sql::Table RangeTable(Timestamp from, Timestamp to) const;

  size_t size() const { return events_.size(); }
  /// Drops events older than cutoff.
  size_t Retain(Timestamp cutoff);

 private:
  struct Event {
    Timestamp ts;
    sql::Row values;
  };
  sql::Schema schema_;  // time + value columns
  std::vector<Event> events_;  // kept in ts order (sorted lazily)
  mutable bool sorted_ = true;
  void EnsureSorted() const;
  std::vector<Event>* mutable_events() const {
    return const_cast<std::vector<Event>*>(&events_);
  }
};

}  // namespace ofi::timeseries
