/// \file value.h
/// \brief The dynamic value type flowing through the relational, graph,
/// time-series and spatial engines. FI-MPPDB stores all models over an
/// extended relational core (paper §II-B), so a single Value type is the
/// interchange currency between engines.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"

namespace ofi::sql {

/// Column/value types supported by the engine.
enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,  // microseconds since epoch, stored as int64 payload
};

/// Renders the type as its SQL-ish keyword ("BIGINT", "VARCHAR", ...).
std::string TypeToString(TypeId type);

/// \brief A dynamically typed SQL value. NULL compares as the smallest value
/// in sort order and never equals anything under SQL comparison semantics
/// (use Equals() for grouping/join keys, which treats NULL = NULL as true).
class Value {
 public:
  Value() : type_(TypeId::kNull) {}
  explicit Value(bool v) : type_(TypeId::kBool), payload_(v) {}
  explicit Value(int64_t v) : type_(TypeId::kInt64), payload_(v) {}
  explicit Value(int v) : type_(TypeId::kInt64), payload_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : type_(TypeId::kDouble), payload_(v) {}
  explicit Value(std::string v) : type_(TypeId::kString), payload_(std::move(v)) {}
  explicit Value(const char* v) : type_(TypeId::kString), payload_(std::string(v)) {}

  /// Tagged constructor for timestamps (payload = microseconds).
  static Value Timestamp(int64_t micros) {
    Value v;
    v.type_ = TypeId::kTimestamp;
    v.payload_ = micros;
    return v;
  }
  static Value Null() { return Value(); }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool AsBool() const { return std::get<bool>(payload_); }
  int64_t AsInt() const { return std::get<int64_t>(payload_); }
  double AsDouble() const {
    if (type_ == TypeId::kInt64 || type_ == TypeId::kTimestamp) {
      return static_cast<double>(std::get<int64_t>(payload_));
    }
    return std::get<double>(payload_);
  }
  const std::string& AsString() const { return std::get<std::string>(payload_); }

  /// Three-way comparison for sorting: NULL first, numeric types compare
  /// across int/double/timestamp, strings lexicographically.
  /// Returns <0, 0, >0. Comparing string with numeric is an ordering by type.
  int Compare(const Value& other) const;

  /// Grouping/join equality: NULL == NULL here (unlike SQL `=`).
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with Equals for hash joins / aggregation.
  size_t Hash() const;

  /// Literal rendering ("42", "'abc'", "NULL") used by canonical step text.
  std::string ToString() const;

  /// Size in bytes for bandwidth accounting (GMDB delta sync, edge sync).
  size_t ByteSize() const;

  bool operator==(const Value& other) const { return Equals(other); }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  TypeId type_;
  std::variant<std::monostate, bool, int64_t, double, std::string> payload_;
};

}  // namespace ofi::sql

namespace std {
template <>
struct hash<ofi::sql::Value> {
  size_t operator()(const ofi::sql::Value& v) const { return v.Hash(); }
};
}  // namespace std
