#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace ofi::sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT",  "FROM",   "WHERE",  "GROUP",    "BY",     "HAVING", "ORDER",
      "LIMIT",   "OFFSET", "AS",     "AND",      "OR",     "NOT",    "IN",
      "IS",      "NULL",   "TRUE",   "FALSE",    "JOIN",   "INNER",  "LEFT",
      "OUTER",   "ON",     "UNION",  "ALL",      "INTERSECT", "EXCEPT",
      "INSERT",  "INTO",   "VALUES", "CREATE",   "TABLE",  "ASC",    "DESC",
      "COUNT",   "SUM",    "AVG",    "MIN",      "MAX",    "BETWEEN", "LIKE",
      "BIGINT",  "DOUBLE", "VARCHAR", "BOOLEAN", "TIMESTAMP", "DISTINCT",
      "SEMI",    "DELETE", "DROP",   "UPDATE",   "SET",    "INDEX",
      "ORDERED"};
  return kKeywords;
}

bool IsIdentStart(char c) { return std::isalpha(c) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(c) || c == '_'; }

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto fail = [&](const std::string& msg) {
    return Status::InvalidArgument(msg + " at position " + std::to_string(i));
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      // Identifier or keyword; swallow dotted qualification for identifiers.
      size_t start = i;
      while (i < sql.size() && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
        // Qualified name: keep consuming ".part".
        while (i + 1 < sql.size() && sql[i] == '.' && IsIdentStart(sql[i + 1])) {
          ++i;  // consume '.'
          size_t part_start = i;
          while (i < sql.size() && IsIdentChar(sql[i])) ++i;
          tok.text += "." + sql.substr(part_start, i - part_start);
        }
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(c)) {
      size_t start = i;
      bool is_float = false;
      while (i < sql.size() && std::isdigit(sql[i])) ++i;
      if (i + 1 < sql.size() && sql[i] == '.' && std::isdigit(sql[i + 1])) {
        is_float = true;
        ++i;
        while (i < sql.size() && std::isdigit(sql[i])) ++i;
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += sql[i++];
      }
      if (!closed) return fail("unterminated string literal");
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < sql.size()) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tok.type = TokenType::kSymbol;
        tok.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(tok));
        i += 2;
        continue;
      }
    }
    if (std::string("(),*+-/=<>.;").find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }
  tokens.push_back(Token{TokenType::kEnd, "", sql.size()});
  return tokens;
}

}  // namespace ofi::sql
