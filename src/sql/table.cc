#include "sql/table.h"

namespace ofi::sql {

std::string Table::ToString(size_t max_rows) const {
  std::string out = schema_.ToString() + "\n";
  size_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows_.size() - max_rows) + " more)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace ofi::sql
