#include "sql/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ofi::sql {
namespace {

size_t HashRow(const Row& row, const std::vector<size_t>& cols) {
  size_t h = 0x811C9DC5;
  for (size_t c : cols) {
    h = h * 1099511628211ULL ^ row[c].Hash();
  }
  return h;
}

bool RowKeysEqual(const Row& a, const std::vector<size_t>& acols, const Row& b,
                  const std::vector<size_t>& bcols) {
  for (size_t i = 0; i < acols.size(); ++i) {
    if (!a[acols[i]].Equals(b[bcols[i]])) return false;
  }
  return true;
}

size_t HashWholeRow(const Row& row) {
  size_t h = 0x811C9DC5;
  for (const auto& v : row) h = h * 1099511628211ULL ^ v.Hash();
  return h;
}

struct WholeRowHash {
  size_t operator()(const Row& r) const { return HashWholeRow(r); }
};
struct WholeRowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

/// Infers an expression's output type by probing the first row (NULL-typed
/// when the input is empty — consumers treat unknown as NULL-compatible).
TypeId InferType(const Expr& e, const Table& input) {
  if (input.num_rows() == 0) return TypeId::kNull;
  return e.Eval(input.rows().front()).type();
}

}  // namespace

void SplitConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out) {
  if (!pred) return;
  if (pred->kind() == ExprKind::kLogical &&
      pred->logical_op() == LogicalOp::kAnd) {
    SplitConjuncts(pred->children()[0], out);
    SplitConjuncts(pred->children()[1], out);
    return;
  }
  out->push_back(pred);
}

bool IsEquiJoinPredicate(const Expr& e, const Schema& left, const Schema& right,
                         std::string* left_col, std::string* right_col) {
  if (e.kind() != ExprKind::kCompare || e.compare_op() != CompareOp::kEq) {
    return false;
  }
  const auto& kids = e.children();
  if (kids[0]->kind() != ExprKind::kColumn || kids[1]->kind() != ExprKind::kColumn) {
    return false;
  }
  const std::string& a = kids[0]->column_name();
  const std::string& b = kids[1]->column_name();
  bool a_left = left.IndexOf(a).ok(), a_right = right.IndexOf(a).ok();
  bool b_left = left.IndexOf(b).ok(), b_right = right.IndexOf(b).ok();
  if (a_left && b_right && !(a_right && b_left)) {
    *left_col = a;
    *right_col = b;
    return true;
  }
  if (b_left && a_right) {
    *left_col = b;
    *right_col = a;
    return true;
  }
  return false;
}

Result<Table> Executor::Execute(const PlanPtr& plan) {
  rows_processed_ = 0;
  if (!plan) return Status::InvalidArgument("null plan");
  return ExecNode(plan.get());
}

Result<Table> Executor::ExecNode(const PlanNode* node) {
  Result<Table> result = [&]() -> Result<Table> {
    switch (node->kind) {
      case PlanKind::kScan: return ExecScan(node);
      case PlanKind::kFilter: return ExecFilter(node);
      case PlanKind::kProject: return ExecProject(node);
      case PlanKind::kJoin: return ExecJoin(node);
      case PlanKind::kAggregate: return ExecAggregate(node);
      case PlanKind::kSort: return ExecSort(node);
      case PlanKind::kLimit: return ExecLimit(node);
      case PlanKind::kSetOp: return ExecSetOp(node);
      case PlanKind::kValues: {
        Table t = *node->values;
        if (!node->alias.empty()) {
          t = Table(t.schema().WithQualifier(node->alias),
                    std::move(t.mutable_rows()));
        }
        return t;
      }
    }
    return Status::Internal("unknown plan kind");
  }();
  if (result.ok()) {
    const_cast<PlanNode*>(node)->actual_rows =
        static_cast<double>(result.ValueOrDie().num_rows());
    rows_processed_ += result.ValueOrDie().num_rows();
  }
  return result;
}

Result<Table> Executor::ExecScan(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(std::shared_ptr<Table> src, catalog_->Get(node->table_name));
  Schema schema = node->alias.empty() ? src->schema()
                                      : src->schema().WithQualifier(node->alias);
  Table out(schema);
  if (node->predicate) {
    OFI_RETURN_NOT_OK(node->predicate->Bind(schema));
  }
  for (const auto& row : src->rows()) {
    if (node->predicate) {
      Value v = node->predicate->Eval(row);
      if (v.is_null() || !v.AsBool()) continue;
    }
    out.mutable_rows().push_back(row);
  }
  return out;
}

Result<Table> Executor::ExecFilter(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(Table in, ExecNode(node->children[0].get()));
  OFI_RETURN_NOT_OK(node->predicate->Bind(in.schema()));
  Table out(in.schema());
  for (auto& row : in.mutable_rows()) {
    Value v = node->predicate->Eval(row);
    if (!v.is_null() && v.AsBool()) out.mutable_rows().push_back(std::move(row));
  }
  return out;
}

Result<Table> Executor::ExecProject(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(Table in, ExecNode(node->children[0].get()));
  std::vector<Column> cols;
  for (size_t i = 0; i < node->projections.size(); ++i) {
    OFI_RETURN_NOT_OK(node->projections[i]->Bind(in.schema()));
    std::string name = i < node->projection_names.size()
                           ? node->projection_names[i]
                           : "col" + std::to_string(i);
    cols.push_back(Column{name, InferType(*node->projections[i], in), ""});
  }
  Table out(Schema(std::move(cols)));
  out.mutable_rows().reserve(in.num_rows());
  for (const auto& row : in.rows()) {
    Row r;
    r.reserve(node->projections.size());
    for (const auto& e : node->projections) r.push_back(e->Eval(row));
    out.mutable_rows().push_back(std::move(r));
  }
  return out;
}

Result<Table> Executor::ExecJoin(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(Table left, ExecNode(node->children[0].get()));
  OFI_ASSIGN_OR_RETURN(Table right, ExecNode(node->children[1].get()));
  Schema out_schema = left.schema().Concat(right.schema());

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(node->predicate, &conjuncts);

  // Separate equi-join keys from residual predicates.
  std::vector<size_t> lkeys, rkeys;
  std::vector<ExprPtr> residual;
  for (const auto& c : conjuncts) {
    std::string lc, rc;
    if (IsEquiJoinPredicate(*c, left.schema(), right.schema(), &lc, &rc)) {
      auto li = left.schema().IndexOf(lc);
      auto ri = right.schema().IndexOf(rc);
      if (li.ok() && ri.ok()) {
        lkeys.push_back(*li);
        rkeys.push_back(*ri);
        continue;
      }
    }
    residual.push_back(c);
  }
  ExprPtr residual_pred = ConjoinAll(residual);
  if (residual_pred) OFI_RETURN_NOT_OK(residual_pred->Bind(out_schema));

  // Semi joins only emit left rows, so their output schema is the left's.
  Table out(node->join_type == JoinType::kSemi ? left.schema() : out_schema);
  auto emit = [&](const Row& l, const Row& r) {
    Row joined = l;
    joined.insert(joined.end(), r.begin(), r.end());
    if (residual_pred) {
      Value v = residual_pred->Eval(joined);
      if (v.is_null() || !v.AsBool()) return false;
    }
    if (node->join_type == JoinType::kSemi) {
      out.mutable_rows().push_back(l);
    } else {
      out.mutable_rows().push_back(std::move(joined));
    }
    return true;
  };

  if (!lkeys.empty()) {
    // Hash join: build on right, probe with left.
    std::unordered_multimap<size_t, size_t> build;
    build.reserve(right.num_rows() * 2);
    for (size_t i = 0; i < right.num_rows(); ++i) {
      build.emplace(HashRow(right.rows()[i], rkeys), i);
    }
    for (const auto& lrow : left.rows()) {
      bool any_null = false;
      for (size_t k : lkeys) any_null |= lrow[k].is_null();
      bool matched = false;
      if (!any_null) {
        auto range = build.equal_range(HashRow(lrow, lkeys));
        for (auto it = range.first; it != range.second; ++it) {
          const Row& rrow = right.rows()[it->second];
          if (!RowKeysEqual(lrow, lkeys, rrow, rkeys)) continue;
          matched |= emit(lrow, rrow);
          if (matched && node->join_type == JoinType::kSemi) break;
        }
      }
      if (!matched && node->join_type == JoinType::kLeftOuter) {
        Row joined = lrow;
        joined.resize(out_schema.num_columns(), Value::Null());
        out.mutable_rows().push_back(std::move(joined));
      }
    }
  } else {
    // Nested loop join.
    for (const auto& lrow : left.rows()) {
      bool matched = false;
      for (const auto& rrow : right.rows()) {
        matched |= emit(lrow, rrow);
        if (matched && node->join_type == JoinType::kSemi) break;
      }
      if (!matched && node->join_type == JoinType::kLeftOuter) {
        Row joined = lrow;
        joined.resize(out_schema.num_columns(), Value::Null());
        out.mutable_rows().push_back(std::move(joined));
      }
    }
  }
  return out;
}

Result<Table> Executor::ExecAggregate(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(Table in, ExecNode(node->children[0].get()));

  std::vector<size_t> group_idx;
  std::vector<Column> out_cols;
  for (const auto& g : node->group_by) {
    OFI_ASSIGN_OR_RETURN(size_t idx, in.schema().IndexOf(g));
    group_idx.push_back(idx);
    out_cols.push_back(in.schema().column(idx));
  }
  for (const auto& a : node->aggregates) {
    if (a.arg) OFI_RETURN_NOT_OK(a.arg->Bind(in.schema()));
    TypeId t = a.func == AggFunc::kCount
                   ? TypeId::kInt64
                   : (a.func == AggFunc::kAvg
                          ? TypeId::kDouble
                          : (a.arg ? InferType(*a.arg, in) : TypeId::kInt64));
    out_cols.push_back(Column{a.name, t, ""});
  }

  struct AggState {
    Row group_key;
    std::vector<int64_t> counts;
    std::vector<Value> accum;  // SUM/MIN/MAX accumulators
  };
  std::unordered_map<size_t, std::vector<AggState>> groups;
  size_t num_groups = 0;

  for (const auto& row : in.rows()) {
    size_t h = HashRow(row, group_idx);
    auto& bucket = groups[h];
    AggState* state = nullptr;
    for (auto& s : bucket) {
      bool eq = true;
      for (size_t i = 0; i < group_idx.size(); ++i) {
        if (!s.group_key[i].Equals(row[group_idx[i]])) {
          eq = false;
          break;
        }
      }
      if (eq) {
        state = &s;
        break;
      }
    }
    if (state == nullptr) {
      bucket.push_back(AggState{});
      state = &bucket.back();
      for (size_t gi : group_idx) state->group_key.push_back(row[gi]);
      state->counts.assign(node->aggregates.size(), 0);
      state->accum.assign(node->aggregates.size(), Value::Null());
      ++num_groups;
    }
    for (size_t ai = 0; ai < node->aggregates.size(); ++ai) {
      const AggSpec& spec = node->aggregates[ai];
      Value v = spec.arg ? spec.arg->Eval(row) : Value(int64_t{1});
      if (v.is_null()) continue;  // SQL aggregates skip NULLs
      state->counts[ai]++;
      Value& acc = state->accum[ai];
      switch (spec.func) {
        case AggFunc::kCount:
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          if (acc.is_null()) {
            acc = v;
          } else if (acc.type() == TypeId::kDouble || v.type() == TypeId::kDouble) {
            acc = Value(acc.AsDouble() + v.AsDouble());
          } else {
            acc = Value(acc.AsInt() + v.AsInt());
          }
          break;
        case AggFunc::kMin:
          if (acc.is_null() || v.Compare(acc) < 0) acc = v;
          break;
        case AggFunc::kMax:
          if (acc.is_null() || v.Compare(acc) > 0) acc = v;
          break;
      }
    }
  }

  Table out{Schema(std::move(out_cols))};
  // Global aggregate over empty input still yields one row (COUNT=0).
  if (num_groups == 0 && group_idx.empty()) {
    Row r;
    for (const auto& a : node->aggregates) {
      r.push_back(a.func == AggFunc::kCount ? Value(int64_t{0}) : Value::Null());
    }
    out.mutable_rows().push_back(std::move(r));
    return out;
  }
  for (auto& [h, bucket] : groups) {
    for (auto& s : bucket) {
      Row r = s.group_key;
      for (size_t ai = 0; ai < node->aggregates.size(); ++ai) {
        switch (node->aggregates[ai].func) {
          case AggFunc::kCount:
            r.push_back(Value(s.counts[ai]));
            break;
          case AggFunc::kAvg:
            r.push_back(s.counts[ai] == 0
                            ? Value::Null()
                            : Value(s.accum[ai].AsDouble() / s.counts[ai]));
            break;
          default:
            r.push_back(s.accum[ai]);
        }
      }
      out.mutable_rows().push_back(std::move(r));
    }
  }
  return out;
}

Result<Table> Executor::ExecSort(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(Table in, ExecNode(node->children[0].get()));
  for (const auto& k : node->sort_keys) {
    OFI_RETURN_NOT_OK(k.expr->Bind(in.schema()));
  }
  std::stable_sort(in.mutable_rows().begin(), in.mutable_rows().end(),
                   [&](const Row& a, const Row& b) {
                     for (const auto& k : node->sort_keys) {
                       int c = k.expr->Eval(a).Compare(k.expr->Eval(b));
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return in;
}

Result<Table> Executor::ExecLimit(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(Table in, ExecNode(node->children[0].get()));
  Table out(in.schema());
  size_t start = std::min(node->offset, in.num_rows());
  size_t end = std::min(start + node->limit, in.num_rows());
  for (size_t i = start; i < end; ++i) {
    out.mutable_rows().push_back(std::move(in.mutable_rows()[i]));
  }
  return out;
}

Result<Table> Executor::ExecSetOp(const PlanNode* node) {
  OFI_ASSIGN_OR_RETURN(Table left, ExecNode(node->children[0].get()));
  OFI_ASSIGN_OR_RETURN(Table right, ExecNode(node->children[1].get()));
  if (left.schema().num_columns() != right.schema().num_columns()) {
    return Status::InvalidArgument("set op arity mismatch");
  }
  Table out(left.schema());
  switch (node->set_op) {
    case SetOpType::kUnionAll: {
      out.mutable_rows() = std::move(left.mutable_rows());
      for (auto& r : right.mutable_rows()) out.mutable_rows().push_back(std::move(r));
      break;
    }
    case SetOpType::kUnion: {
      std::unordered_set<Row, WholeRowHash, WholeRowEq> seen;
      for (auto* t : {&left, &right}) {
        for (auto& r : t->mutable_rows()) {
          if (seen.insert(r).second) out.mutable_rows().push_back(std::move(r));
        }
      }
      break;
    }
    case SetOpType::kIntersect: {
      std::unordered_set<Row, WholeRowHash, WholeRowEq> rset(
          right.rows().begin(), right.rows().end());
      std::unordered_set<Row, WholeRowHash, WholeRowEq> emitted;
      for (auto& r : left.mutable_rows()) {
        if (rset.count(r) && emitted.insert(r).second) {
          out.mutable_rows().push_back(std::move(r));
        }
      }
      break;
    }
    case SetOpType::kExcept: {
      std::unordered_set<Row, WholeRowHash, WholeRowEq> rset(
          right.rows().begin(), right.rows().end());
      std::unordered_set<Row, WholeRowHash, WholeRowEq> emitted;
      for (auto& r : left.mutable_rows()) {
        if (!rset.count(r) && emitted.insert(r).second) {
          out.mutable_rows().push_back(std::move(r));
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace ofi::sql
