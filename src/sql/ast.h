/// \file ast.h
/// \brief Parsed SQL statements. The parser produces these; planning (naive
/// or cost-based) turns them into PlanNode trees.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/expr.h"
#include "sql/plan.h"
#include "sql/schema.h"

namespace ofi::sql {

/// A FROM-clause relation.
struct TableRef {
  std::string table;
  std::string alias;  // empty = table name itself
};

/// An explicit JOIN clause (INNER / LEFT OUTER) with its ON predicate.
struct JoinClause {
  TableRef table;
  JoinType type = JoinType::kInner;
  ExprPtr on;
};

/// One select-list item: either a plain expression or an aggregate call.
struct SelectItem {
  bool is_aggregate = false;
  AggFunc agg = AggFunc::kCount;
  ExprPtr expr;  // aggregate argument (null = COUNT(*)) or the plain expr
  std::string name;  // output name (AS alias or derived)
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// A SELECT statement, possibly chained with a set operation.
struct SelectStatement {
  bool select_star = false;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<std::string> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
  size_t offset = 0;

  // Set operation chaining: `this` <set_op> *set_rhs.
  std::optional<SetOpType> set_op;
  std::unique_ptr<SelectStatement> set_rhs;
};

/// INSERT INTO t VALUES (...), (...).
struct InsertStatement {
  std::string table;
  std::vector<Row> rows;
};

/// CREATE TABLE t (col TYPE, ...).
struct CreateTableStatement {
  std::string table;
  Schema schema;
};

/// DROP TABLE t.
struct DropTableStatement {
  std::string table;
};

/// CREATE INDEX name ON t (col) [ORDERED]. ORDERED builds a range-capable
/// index (probe-able by <, <=, BETWEEN); the default is a hash index for
/// equality probes only.
struct CreateIndexStatement {
  std::string index_name;
  std::string table;
  std::string column;
  bool ordered = false;
};

/// DROP INDEX ON t — drops every secondary index on the table.
struct DropIndexStatement {
  std::string table;
};

enum class StatementKind : uint8_t {
  kSelect,
  kInsert,
  kCreateTable,
  kDropTable,
  kCreateIndex,
  kDropIndex,
};

/// A parsed statement (tagged union; exactly one member is set).
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<DropTableStatement> drop_table;
  std::unique_ptr<CreateIndexStatement> create_index;
  std::unique_ptr<DropIndexStatement> drop_index;
};

}  // namespace ofi::sql
