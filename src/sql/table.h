/// \file table.h
/// \brief In-memory relational tables and a catalog. This is the relational
/// engine's working representation; the MVCC heap (src/storage) and the
/// columnar store convert to/from it at scan boundaries.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/schema.h"

namespace ofi::sql {

/// \brief A schema plus rows. Cheap to move, expensive to copy.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row; returns InvalidArgument on arity mismatch.
  Status Append(Row row) {
    if (row.size() != schema_.num_columns()) {
      return Status::InvalidArgument("row arity mismatch");
    }
    rows_.push_back(std::move(row));
    return Status::OK();
  }

  /// Pretty-prints up to `max_rows` rows for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// \brief Named table registry used by the executor and optimizer.
class Catalog {
 public:
  /// Registers (or replaces) a table under `name`.
  void Register(const std::string& name, Table table) {
    tables_[name] = std::make_shared<Table>(std::move(table));
  }

  Result<std::shared_ptr<Table>> Get(const std::string& name) const {
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound("no such table: " + name);
    return it->second;
  }

  bool Contains(const std::string& name) const { return tables_.count(name) > 0; }

  /// Drops a table; NotFound if absent.
  Status Drop(const std::string& name) {
    if (tables_.erase(name) == 0) return Status::NotFound("no such table: " + name);
    return Status::OK();
  }

  std::vector<std::string> TableNames() const {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [k, _] : tables_) names.push_back(k);
    return names;
  }

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace ofi::sql
