#include "sql/expr.h"

#include <algorithm>

namespace ofi::sql {

std::string CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

namespace {

std::string ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

}  // namespace

ExprPtr Expr::ColumnRef(std::string name) {
  auto e = ExprPtr(new Expr(ExprKind::kColumn));
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = ExprPtr(new Expr(ExprKind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kCompare));
  e->compare_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kArith));
  e->arith_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kLogical));
  e->logical_op_ = LogicalOp::kAnd;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr(ExprKind::kLogical));
  e->logical_op_ = LogicalOp::kOr;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr x) {
  auto e = ExprPtr(new Expr(ExprKind::kNot));
  e->children_ = {std::move(x)};
  return e;
}

ExprPtr Expr::IsNull(ExprPtr x) {
  auto e = ExprPtr(new Expr(ExprKind::kIsNull));
  e->children_ = {std::move(x)};
  return e;
}

ExprPtr Expr::InList(ExprPtr x, std::vector<Value> list) {
  auto e = ExprPtr(new Expr(ExprKind::kInList));
  e->children_ = {std::move(x)};
  e->in_list_ = std::move(list);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = ExprPtr(new Expr(kind_));
  e->column_name_ = column_name_;
  e->bound_index_ = -1;  // clones start unbound
  e->literal_ = literal_;
  e->compare_op_ = compare_op_;
  e->arith_op_ = arith_op_;
  e->logical_op_ = logical_op_;
  e->in_list_ = in_list_;
  e->children_.reserve(children_.size());
  for (const auto& c : children_) e->children_.push_back(c->Clone());
  return e;
}

Status Expr::Bind(const Schema& schema) {
  if (kind_ == ExprKind::kColumn) {
    OFI_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(column_name_));
    bound_index_ = static_cast<int>(idx);
    return Status::OK();
  }
  for (auto& c : children_) OFI_RETURN_NOT_OK(c->Bind(schema));
  return Status::OK();
}

Value Expr::Eval(const Row& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      // Unbound references evaluate to NULL rather than crashing; Bind()
      // failures surface as Status earlier in the pipeline.
      if (bound_index_ < 0 || static_cast<size_t>(bound_index_) >= row.size()) {
        return Value::Null();
      }
      return row[bound_index_];
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kCompare: {
      Value l = children_[0]->Eval(row);
      Value r = children_[1]->Eval(row);
      if (l.is_null() || r.is_null()) return Value::Null();
      int c = l.Compare(r);
      switch (compare_op_) {
        case CompareOp::kEq: return Value(c == 0);
        case CompareOp::kNe: return Value(c != 0);
        case CompareOp::kLt: return Value(c < 0);
        case CompareOp::kLe: return Value(c <= 0);
        case CompareOp::kGt: return Value(c > 0);
        case CompareOp::kGe: return Value(c >= 0);
      }
      return Value::Null();
    }
    case ExprKind::kArith: {
      Value l = children_[0]->Eval(row);
      Value r = children_[1]->Eval(row);
      if (l.is_null() || r.is_null()) return Value::Null();
      bool as_double = l.type() == TypeId::kDouble || r.type() == TypeId::kDouble ||
                       arith_op_ == ArithOp::kDiv;
      if (as_double) {
        double a = l.AsDouble(), b = r.AsDouble();
        switch (arith_op_) {
          case ArithOp::kAdd: return Value(a + b);
          case ArithOp::kSub: return Value(a - b);
          case ArithOp::kMul: return Value(a * b);
          case ArithOp::kDiv: return b == 0 ? Value::Null() : Value(a / b);
        }
      } else {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (arith_op_) {
          case ArithOp::kAdd: return Value(a + b);
          case ArithOp::kSub: return Value(a - b);
          case ArithOp::kMul: return Value(a * b);
          case ArithOp::kDiv: return b == 0 ? Value::Null() : Value(a / b);
        }
      }
      return Value::Null();
    }
    case ExprKind::kLogical: {
      // SQL three-valued logic with short circuit.
      Value l = children_[0]->Eval(row);
      if (logical_op_ == LogicalOp::kAnd) {
        if (!l.is_null() && !l.AsBool()) return Value(false);
        Value r = children_[1]->Eval(row);
        if (!r.is_null() && !r.AsBool()) return Value(false);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value(true);
      }
      if (!l.is_null() && l.AsBool()) return Value(true);
      Value r = children_[1]->Eval(row);
      if (!r.is_null() && r.AsBool()) return Value(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value(false);
    }
    case ExprKind::kNot: {
      Value v = children_[0]->Eval(row);
      if (v.is_null()) return Value::Null();
      return Value(!v.AsBool());
    }
    case ExprKind::kIsNull:
      return Value(children_[0]->Eval(row).is_null());
    case ExprKind::kInList: {
      Value v = children_[0]->Eval(row);
      if (v.is_null()) return Value::Null();
      for (const auto& item : in_list_) {
        if (!item.is_null() && v.Compare(item) == 0) return Value(true);
      }
      return Value(false);
    }
  }
  return Value::Null();
}

std::string Expr::ToCanonicalString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_name_;
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kCompare: {
      std::string l = children_[0]->ToCanonicalString();
      std::string r = children_[1]->ToCanonicalString();
      CompareOp op = compare_op_;
      // Canonicalize symmetric operators so "a = b" and "b = a" share text.
      if ((op == CompareOp::kEq || op == CompareOp::kNe) && r < l) std::swap(l, r);
      return l + CompareOpToString(op) + r;
    }
    case ExprKind::kArith:
      return "(" + children_[0]->ToCanonicalString() + ArithOpToString(arith_op_) +
             children_[1]->ToCanonicalString() + ")";
    case ExprKind::kLogical: {
      // Flatten same-op chains and sort operands for order independence.
      std::vector<std::string> parts;
      std::vector<const Expr*> stack = {this};
      while (!stack.empty()) {
        const Expr* e = stack.back();
        stack.pop_back();
        if (e->kind_ == ExprKind::kLogical && e->logical_op_ == logical_op_) {
          for (const auto& c : e->children_) stack.push_back(c.get());
        } else {
          parts.push_back(e->ToCanonicalString());
        }
      }
      std::sort(parts.begin(), parts.end());
      std::string sep = logical_op_ == LogicalOp::kAnd ? " AND " : " OR ";
      std::string out;
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
      }
      return logical_op_ == LogicalOp::kAnd ? out : "(" + out + ")";
    }
    case ExprKind::kNot:
      return "NOT(" + children_[0]->ToCanonicalString() + ")";
    case ExprKind::kIsNull:
      return "ISNULL(" + children_[0]->ToCanonicalString() + ")";
    case ExprKind::kInList: {
      std::vector<std::string> items;
      items.reserve(in_list_.size());
      for (const auto& v : in_list_) items.push_back(v.ToString());
      std::sort(items.begin(), items.end());
      std::string out = children_[0]->ToCanonicalString() + " IN (";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i) out += ",";
        out += items[i];
      }
      return out + ")";
    }
  }
  return "?";
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumn) {
    out->push_back(column_name_);
    return;
  }
  for (const auto& c : children_) c->CollectColumns(out);
}

ExprPtr ConjoinAll(const std::vector<ExprPtr>& preds) {
  ExprPtr acc;
  for (const auto& p : preds) {
    if (!p) continue;
    acc = acc ? Expr::And(acc, p) : p;
  }
  return acc;
}

}  // namespace ofi::sql
