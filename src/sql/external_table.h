/// \file external_table.h
/// \brief Foreign data access (paper §I: FI-MPPDB "can access heterogeneous
/// data sources including HDFS"). The laptop-scale substitution is CSV
/// files on the local filesystem: a schema-checked loader materializes a
/// foreign file as a relational table, with per-cell type coercion and
/// explicit error reporting (line/column) instead of silent nulls.
#pragma once

#include <string>

#include "common/result.h"
#include "sql/table.h"

namespace ofi::sql {

struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (header row).
  bool has_header = true;
  /// The spelling of SQL NULL in the file ("" always counts as NULL).
  std::string null_token = "\\N";
  /// Stop with an error after this many malformed rows (0 = first error).
  size_t max_errors = 0;
};

/// Parses CSV `text` against `schema`. Supports quoted fields with ""
/// escapes. Returns the table, or InvalidArgument naming the first bad
/// line/column once more than `max_errors` rows fail.
Result<Table> ParseCsv(const std::string& text, const Schema& schema,
                       const CsvOptions& options = CsvOptions{});

/// Reads `path` and parses it (NotFound if the file is unreadable).
Result<Table> LoadCsvTable(const std::string& path, const Schema& schema,
                           const CsvOptions& options = CsvOptions{});

/// Serializes a table to CSV (round-trip for exports / test fixtures).
std::string WriteCsv(const Table& table, const CsvOptions& options = CsvOptions{});

}  // namespace ofi::sql
