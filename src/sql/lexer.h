/// \file lexer.h
/// \brief SQL tokenizer for the query front end. Supports the subset the
/// engine executes: SELECT / INSERT / CREATE TABLE, expressions, set
/// operations. Keywords are case-insensitive; identifiers keep their case
/// and may be dotted ("OLAP.T1.B1" lexes as one qualified identifier).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace ofi::sql {

enum class TokenType : uint8_t {
  kKeyword,     // SELECT, FROM, WHERE ... (normalized upper-case)
  kIdentifier,  // possibly qualified: a, t.a, OLAP.T1.B1
  kInteger,
  kFloat,
  kString,      // 'text' with '' escapes
  kSymbol,      // ( ) , * + - / = < > <= >= <> != .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keyword/symbol text, identifier name, literal spelling
  size_t position = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes `sql`; fails with InvalidArgument on malformed input
/// (unterminated string, stray character).
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace ofi::sql
