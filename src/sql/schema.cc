#include "sql/schema.h"

namespace ofi::sql {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  // Qualified lookup first.
  auto dot = name.find('.');
  if (dot != std::string::npos) {
    std::string table = name.substr(0, dot);
    std::string col = name.substr(dot + 1);
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == col && columns_[i].table == table) return i;
    }
    // Fall through: a bare column may itself contain dots in synthetic names.
  }
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name || columns_[i].QualifiedName() == name) {
      if (found.has_value()) {
        return Status::AlreadyExists("ambiguous column: " + name);
      }
      found = i;
    }
  }
  if (!found.has_value()) return Status::NotFound("no such column: " + name);
  return *found;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& table) const {
  std::vector<Column> cols = columns_;
  for (auto& c : cols) c.table = table;
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].QualifiedName() + " " + TypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

size_t RowByteSize(const Row& row) {
  size_t n = 0;
  for (const auto& v : row) n += v.ByteSize();
  return n;
}

}  // namespace ofi::sql
