/// \file executor.h
/// \brief Materializing executor for logical plans: hash joins for
/// equi-predicates, nested loops otherwise, hash aggregation, sorting, set
/// operations. Records actual row counts on each plan node so the learned
/// optimizer (src/optimizer) can harvest estimate/actual differentials.
#pragma once

#include "common/result.h"
#include "sql/plan.h"
#include "sql/table.h"

namespace ofi::sql {

/// \brief Executes logical plans against a catalog.
class Executor {
 public:
  explicit Executor(const Catalog* catalog) : catalog_(catalog) {}

  /// Executes the plan, returning the materialized result. As a side effect
  /// fills `actual_rows` on every plan node.
  Result<Table> Execute(const PlanPtr& plan);

  /// Total rows processed across all operators in the last Execute call —
  /// a machine-independent work measure used by benchmarks.
  uint64_t rows_processed() const { return rows_processed_; }

 private:
  Result<Table> ExecNode(const PlanNode* node);
  Result<Table> ExecScan(const PlanNode* node);
  Result<Table> ExecFilter(const PlanNode* node);
  Result<Table> ExecProject(const PlanNode* node);
  Result<Table> ExecJoin(const PlanNode* node);
  Result<Table> ExecAggregate(const PlanNode* node);
  Result<Table> ExecSort(const PlanNode* node);
  Result<Table> ExecLimit(const PlanNode* node);
  Result<Table> ExecSetOp(const PlanNode* node);

  const Catalog* catalog_;
  uint64_t rows_processed_ = 0;
};

/// Splits a predicate tree into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out);

/// True if `e` is `col = col` with one side resolvable in `left` and the
/// other in `right`; outputs the two column names oriented (left, right).
bool IsEquiJoinPredicate(const Expr& e, const Schema& left, const Schema& right,
                         std::string* left_col, std::string* right_col);

}  // namespace ofi::sql
