#include "sql/planner.h"

#include <algorithm>

#include "sql/executor.h"

namespace ofi::sql {
namespace {

/// Column names (bare + qualified) a relation exposes.
Result<std::vector<std::string>> RelationColumns(const Catalog& catalog,
                                                 const std::string& table,
                                                 const std::string& alias) {
  OFI_ASSIGN_OR_RETURN(auto t, catalog.Get(table));
  Schema schema =
      alias.empty() ? t->schema() : t->schema().WithQualifier(alias);
  std::vector<std::string> cols;
  for (const auto& c : schema.columns()) {
    cols.push_back(c.name);
    cols.push_back(c.QualifiedName());
  }
  return cols;
}

bool AllColumnsCovered(const ExprPtr& pred, const std::vector<std::string>& cols) {
  std::vector<std::string> used;
  pred->CollectColumns(&used);
  for (const auto& u : used) {
    if (std::find(cols.begin(), cols.end(), u) == cols.end()) return false;
  }
  return true;
}

}  // namespace

namespace {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

/// The encoded form ParsePrimary emits for aggregate calls in expressions.
std::string AggKey(AggFunc f, const ExprPtr& arg) {
  return std::string("$agg$") + AggFuncName(f) + "$" +
         (arg ? arg->ToCanonicalString() : "*");
}

/// Rewrites "$agg$FUNC$arg" column refs to the matching aggregate output
/// column, adding hidden aggregates for ones not in the select list.
ExprPtr ResolveAggRefs(const ExprPtr& e, const std::vector<SelectItem>& items,
                       std::vector<AggSpec>* aggs, int* hidden_counter) {
  if (!e) return e;
  if (e->kind() == ExprKind::kColumn) {
    const std::string& name = e->column_name();
    if (name.rfind("$agg$", 0) != 0) return e;
    // Match against select-list aggregates first.
    for (const auto& item : items) {
      if (item.is_aggregate && AggKey(item.agg, item.expr) == name) {
        return Expr::ColumnRef(item.name);
      }
    }
    // Then against aggregates already added (including hidden ones).
    for (const auto& spec : *aggs) {
      if (AggKey(spec.func, spec.arg) == name) {
        return Expr::ColumnRef(spec.name);
      }
    }
    // Add a hidden aggregate.
    size_t func_end = name.find('$', 5);
    std::string func_name = name.substr(5, func_end - 5);
    std::string arg_text = name.substr(func_end + 1);
    AggFunc func = AggFunc::kCount;
    for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                      AggFunc::kMin, AggFunc::kMax}) {
      if (func_name == AggFuncName(f)) func = f;
    }
    ExprPtr arg = arg_text == "*" ? nullptr : Expr::ColumnRef(arg_text);
    std::string out = "$hidden" + std::to_string((*hidden_counter)++);
    aggs->push_back(AggSpec{func, arg, out});
    return Expr::ColumnRef(out);
  }
  if (e->children().empty()) return e;
  std::vector<ExprPtr> kids;
  for (const auto& c : e->children()) {
    kids.push_back(ResolveAggRefs(c, items, aggs, hidden_counter));
  }
  switch (e->kind()) {
    case ExprKind::kCompare:
      return Expr::Compare(e->compare_op(), kids[0], kids[1]);
    case ExprKind::kArith:
      return Expr::Arith(e->arith_op(), kids[0], kids[1]);
    case ExprKind::kLogical:
      return e->logical_op() == LogicalOp::kAnd ? Expr::And(kids[0], kids[1])
                                                : Expr::Or(kids[0], kids[1]);
    case ExprKind::kNot:
      return Expr::Not(kids[0]);
    case ExprKind::kIsNull:
      return Expr::IsNull(kids[0]);
    case ExprKind::kInList:
      return Expr::InList(kids[0], e->in_list());
    default:
      return e;
  }
}

}  // namespace

void ClassifyPredicates(
    const ExprPtr& where,
    const std::vector<std::vector<std::string>>& relation_columns,
    std::vector<ExprPtr>* per_relation, std::vector<ExprPtr>* cross_relation) {
  per_relation->assign(relation_columns.size(), nullptr);
  cross_relation->clear();
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(where, &conjuncts);
  for (const auto& c : conjuncts) {
    bool placed = false;
    for (size_t r = 0; r < relation_columns.size(); ++r) {
      if (AllColumnsCovered(c, relation_columns[r])) {
        (*per_relation)[r] =
            (*per_relation)[r] ? Expr::And((*per_relation)[r], c) : c;
        placed = true;
        break;
      }
    }
    if (!placed) cross_relation->push_back(c);
  }
}

ExprPtr FoldConstants(const ExprPtr& expr) {
  if (!expr) return expr;
  switch (expr->kind()) {
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return expr;
    default:
      break;
  }
  // Fold children first.
  std::vector<ExprPtr> folded;
  bool all_literal = true;
  for (const auto& c : expr->children()) {
    ExprPtr f = FoldConstants(c);
    all_literal &= f->kind() == ExprKind::kLiteral;
    folded.push_back(std::move(f));
  }

  auto rebuild = [&]() -> ExprPtr {
    switch (expr->kind()) {
      case ExprKind::kCompare:
        return Expr::Compare(expr->compare_op(), folded[0], folded[1]);
      case ExprKind::kArith:
        return Expr::Arith(expr->arith_op(), folded[0], folded[1]);
      case ExprKind::kLogical:
        return expr->logical_op() == LogicalOp::kAnd
                   ? Expr::And(folded[0], folded[1])
                   : Expr::Or(folded[0], folded[1]);
      case ExprKind::kNot:
        return Expr::Not(folded[0]);
      case ExprKind::kIsNull:
        return Expr::IsNull(folded[0]);
      case ExprKind::kInList:
        return Expr::InList(folded[0], expr->in_list());
      default:
        return expr;
    }
  };
  ExprPtr node = rebuild();

  if (all_literal && !folded.empty()) {
    // Pure constant subtree: evaluate it now.
    Value v = node->Eval({});
    return Expr::Literal(std::move(v));
  }
  // Boolean identities: TRUE AND x -> x, FALSE OR x -> x, etc.
  if (node->kind() == ExprKind::kLogical) {
    const auto& kids = node->children();
    for (int side = 0; side < 2; ++side) {
      const ExprPtr& lit = kids[side];
      const ExprPtr& other = kids[1 - side];
      if (lit->kind() != ExprKind::kLiteral ||
          lit->literal().type() != TypeId::kBool) {
        continue;
      }
      bool b = lit->literal().AsBool();
      if (node->logical_op() == LogicalOp::kAnd) {
        return b ? other : Expr::Literal(Value(false));
      }
      return b ? Expr::Literal(Value(true)) : other;
    }
  }
  return node;
}

Result<PlanPtr> PlanSelect(const SelectStatement& stmt, const Catalog& catalog,
                           const JoinPlanner& join_planner) {
  // Set-operation chains plan each side independently.
  if (stmt.set_op.has_value()) {
    // Plan `stmt` without its set op, then combine (field-wise copy: the
    // statement itself is move-only because of set_rhs).
    SelectStatement lhs;
    lhs.select_star = stmt.select_star;
    lhs.distinct = stmt.distinct;
    lhs.items = stmt.items;
    lhs.from = stmt.from;
    lhs.joins = stmt.joins;
    lhs.where = stmt.where;
    lhs.group_by = stmt.group_by;
    lhs.having = stmt.having;
    lhs.order_by = stmt.order_by;
    lhs.limit = stmt.limit;
    lhs.offset = stmt.offset;
    OFI_ASSIGN_OR_RETURN(PlanPtr lp, PlanSelect(lhs, catalog, join_planner));
    OFI_ASSIGN_OR_RETURN(PlanPtr rp,
                         PlanSelect(*stmt.set_rhs, catalog, join_planner));
    return MakeSetOp(*stmt.set_op, lp, rp);
  }

  if (stmt.from.empty()) {
    return Status::NotImplemented("SELECT without FROM");
  }

  // Gather all relations: FROM list + explicit JOINs.
  struct Rel {
    TableRef ref;
    JoinType type;
    ExprPtr on;
  };
  std::vector<Rel> rels;
  for (const auto& t : stmt.from) {
    rels.push_back(Rel{t, JoinType::kInner, nullptr});
  }
  for (const auto& j : stmt.joins) {
    rels.push_back(Rel{j.table, j.type, j.on});
  }

  std::vector<std::vector<std::string>> rel_columns;
  for (const auto& r : rels) {
    OFI_ASSIGN_OR_RETURN(auto cols,
                         RelationColumns(catalog, r.ref.table, r.ref.alias));
    rel_columns.push_back(std::move(cols));
  }

  // Rewrites: fold constants, then push single-relation conjuncts into scans.
  ExprPtr where = FoldConstants(stmt.where);
  std::vector<ExprPtr> pushdown, cross;
  ClassifyPredicates(where, rel_columns, &pushdown, &cross);

  // Explicit ON predicates join the cross set (they reference both sides).
  for (const auto& r : rels) {
    if (r.on) {
      std::vector<ExprPtr> on_conjuncts;
      SplitConjuncts(FoldConstants(r.on), &on_conjuncts);
      for (auto& c : on_conjuncts) cross.push_back(std::move(c));
    }
  }

  // Outer joins cannot be reordered by the simple planner: handle the pure
  // inner-join case through the pluggable planner, otherwise left-deep.
  bool all_inner = std::all_of(rels.begin(), rels.end(), [](const Rel& r) {
    return r.type == JoinType::kInner;
  });

  PlanPtr plan;
  if (all_inner && join_planner != nullptr) {
    std::vector<PlannedScan> scans;
    for (size_t i = 0; i < rels.size(); ++i) {
      scans.push_back(PlannedScan{rels[i].ref.table, pushdown[i],
                                  rels[i].ref.alias, JoinType::kInner, nullptr});
    }
    OFI_ASSIGN_OR_RETURN(plan, join_planner(std::move(scans), cross));
  } else {
    // Left-deep in syntactic order; attach cross predicates as soon as all
    // their columns are in scope, respecting outer-join semantics.
    std::vector<std::string> in_scope;
    std::vector<bool> used(cross.size(), false);
    for (size_t i = 0; i < rels.size(); ++i) {
      PlanPtr scan =
          MakeScan(rels[i].ref.table, pushdown[i], rels[i].ref.alias);
      if (i == 0) {
        plan = scan;
        in_scope = rel_columns[0];
        continue;
      }
      in_scope.insert(in_scope.end(), rel_columns[i].begin(),
                      rel_columns[i].end());
      std::vector<ExprPtr> applicable;
      for (size_t p = 0; p < cross.size(); ++p) {
        if (!used[p] && AllColumnsCovered(cross[p], in_scope)) {
          applicable.push_back(cross[p]);
          used[p] = true;
        }
      }
      plan = MakeJoin(plan, scan, ConjoinAll(applicable), rels[i].type);
    }
    std::vector<ExprPtr> leftover;
    for (size_t p = 0; p < cross.size(); ++p) {
      if (!used[p]) leftover.push_back(cross[p]);
    }
    if (!leftover.empty()) plan = MakeFilter(plan, ConjoinAll(leftover));
  }

  // Aggregation: triggered by explicit GROUP BY, aggregates in the select
  // list, or aggregate references inside HAVING / ORDER BY.
  auto has_agg_ref = [](const ExprPtr& e) {
    if (!e) return false;
    std::vector<std::string> cols;
    e->CollectColumns(&cols);
    return std::any_of(cols.begin(), cols.end(), [](const std::string& c) {
      return c.rfind("$agg$", 0) == 0;
    });
  };
  bool has_agg =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return i.is_aggregate; }) ||
      has_agg_ref(stmt.having) ||
      std::any_of(stmt.order_by.begin(), stmt.order_by.end(),
                  [&](const OrderItem& o) { return has_agg_ref(o.expr); });

  ExprPtr having = FoldConstants(stmt.having);
  std::vector<OrderItem> order = stmt.order_by;

  if (has_agg) {
    std::vector<AggSpec> aggs;
    for (const auto& item : stmt.items) {
      if (item.is_aggregate) {
        aggs.push_back(AggSpec{item.agg, item.expr, item.name});
      }
    }
    // Resolve aggregate references in HAVING / ORDER BY against the select
    // list, adding hidden aggregates when they are not projected.
    int hidden = 0;
    if (having) having = ResolveAggRefs(having, stmt.items, &aggs, &hidden);
    for (auto& o : order) {
      o.expr = ResolveAggRefs(o.expr, stmt.items, &aggs, &hidden);
    }
    plan = MakeAggregate(plan, stmt.group_by, std::move(aggs));
    if (having) plan = MakeFilter(plan, having);
  }

  // ORDER BY runs before the projection so it can reference underlying
  // columns (non-aggregate queries) or aggregate outputs / group keys
  // (aggregate queries). SQL alias-only sort keys are a known limitation.
  if (!order.empty()) {
    std::vector<SortKey> keys;
    for (const auto& o : order) {
      keys.push_back(SortKey{o.expr, o.ascending});
    }
    plan = MakeSort(plan, std::move(keys));
  }

  if (!stmt.select_star) {
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const auto& item : stmt.items) {
      exprs.push_back(item.is_aggregate ? Expr::ColumnRef(item.name)
                                        : item.expr);
      names.push_back(item.name);
    }
    plan = MakeProject(plan, std::move(exprs), std::move(names));
  }

  if (stmt.distinct) {
    // DISTINCT reuses the set machinery: UNION with an empty input dedupes.
    plan = MakeSetOp(SetOpType::kUnion, plan, MakeLimit(plan, 0));
  }
  if (stmt.limit.has_value()) {
    plan = MakeLimit(plan, *stmt.limit, stmt.offset);
  }
  return plan;
}

}  // namespace ofi::sql
