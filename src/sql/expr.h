/// \file expr.h
/// \brief Scalar expression trees: column references, literals, comparison /
/// arithmetic / boolean operators. Expressions render to a *canonical* text
/// form (operands ordered deterministically) because the learned optimizer's
/// plan store keys steps by canonical text so that predicate order does not
/// change the key (paper §II-C).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/schema.h"
#include "sql/value.h"

namespace ofi::sql {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  kColumn,
  kLiteral,
  kCompare,  // = <> < <= > >=
  kArith,    // + - * /
  kLogical,  // AND OR
  kNot,
  kIsNull,
  kInList,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };
enum class LogicalOp : uint8_t { kAnd, kOr };

/// \brief An immutable expression node. Build with the factory functions
/// below; evaluate with Eval() after Bind() resolves column indices.
class Expr {
 public:
  ExprKind kind() const { return kind_; }

  // --- Factories -----------------------------------------------------------
  static ExprPtr ColumnRef(std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr IsNull(ExprPtr e);
  static ExprPtr InList(ExprPtr e, std::vector<Value> list);

  // Convenience comparison builders against a literal.
  static ExprPtr Eq(std::string col, Value v) {
    return Compare(CompareOp::kEq, ColumnRef(std::move(col)), Literal(std::move(v)));
  }
  static ExprPtr Gt(std::string col, Value v) {
    return Compare(CompareOp::kGt, ColumnRef(std::move(col)), Literal(std::move(v)));
  }
  static ExprPtr Lt(std::string col, Value v) {
    return Compare(CompareOp::kLt, ColumnRef(std::move(col)), Literal(std::move(v)));
  }
  static ExprPtr Ge(std::string col, Value v) {
    return Compare(CompareOp::kGe, ColumnRef(std::move(col)), Literal(std::move(v)));
  }
  static ExprPtr Le(std::string col, Value v) {
    return Compare(CompareOp::kLe, ColumnRef(std::move(col)), Literal(std::move(v)));
  }
  /// Column-to-column equality (join predicate).
  static ExprPtr EqCols(std::string l, std::string r) {
    return Compare(CompareOp::kEq, ColumnRef(std::move(l)), ColumnRef(std::move(r)));
  }

  /// Deep copy of this expression tree, unbound. Expressions cache bound
  /// column indices in-place, so a tree shared across threads that each
  /// Bind() it is a data race — give every concurrent executor (e.g. the
  /// parallel MPP scatter workers) its own clone.
  ExprPtr Clone() const;

  // --- Binding & evaluation -------------------------------------------------
  /// Resolves every column reference against `schema`, caching indices.
  /// Must be called (on the root) before Eval.
  Status Bind(const Schema& schema);

  /// Evaluates against a bound row. SQL three-valued logic: comparisons with
  /// NULL yield NULL (represented as a null Value).
  Value Eval(const Row& row) const;

  /// Canonical rendering: "OLAP.T1.B1 > 10"; AND/OR operand lists and
  /// IN-lists are sorted so semantically equal predicates share text.
  std::string ToCanonicalString() const;

  /// Collects the names of all referenced columns into `out`.
  void CollectColumns(std::vector<std::string>* out) const;

  // Accessors used by the optimizer for selectivity estimation.
  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  LogicalOp logical_op() const { return logical_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const std::vector<Value>& in_list() const { return in_list_; }

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  ExprKind kind_;
  std::string column_name_;
  int bound_index_ = -1;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  std::vector<ExprPtr> children_;
  std::vector<Value> in_list_;
};

/// Renders a comparison operator ("=", ">", ...).
std::string CompareOpToString(CompareOp op);

/// Conjoins a list of predicates (returns nullptr on empty input).
ExprPtr ConjoinAll(const std::vector<ExprPtr>& preds);

}  // namespace ofi::sql
