#include "sql/parser.h"

#include <memory>

namespace ofi::sql {
namespace {

/// Token cursor with error reporting.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Next();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Next();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + kw);
  }
  Status ExpectSymbol(const char* sym) {
    if (AcceptSymbol(sym)) return Status::OK();
    return Error(std::string("expected '") + sym + "'");
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("parse error: " + msg + " near '" +
                                   Peek().text + "' (pos " +
                                   std::to_string(Peek().position) + ")");
  }
  bool AtEnd() const {
    return Peek().type == TokenType::kEnd || Peek().IsSymbol(";");
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(Cursor cur) : cur_(std::move(cur)) {}

  Result<Statement> ParseStatement();
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

 private:
  // Expression grammar, lowest precedence first.
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();
  Result<Value> ParseLiteralValue();

  Result<std::unique_ptr<SelectStatement>> ParseSelect();
  Result<Statement> ParseInsert();
  Result<Statement> ParseCreateTable();
  Result<Statement> ParseDropTable();
  Result<Statement> ParseCreateIndex();
  Result<Statement> ParseDropIndex();
  Result<SelectItem> ParseSelectItem();

  Cursor cur_;
};

Result<Value> Parser::ParseLiteralValue() {
  const Token& t = cur_.Peek();
  if (t.type == TokenType::kInteger) {
    cur_.Next();
    return Value(static_cast<int64_t>(std::stoll(t.text)));
  }
  if (t.type == TokenType::kFloat) {
    cur_.Next();
    return Value(std::stod(t.text));
  }
  if (t.type == TokenType::kString) {
    cur_.Next();
    return Value(t.text);
  }
  if (t.IsKeyword("NULL")) {
    cur_.Next();
    return Value::Null();
  }
  if (t.IsKeyword("TRUE")) {
    cur_.Next();
    return Value(true);
  }
  if (t.IsKeyword("FALSE")) {
    cur_.Next();
    return Value(false);
  }
  if (t.IsSymbol("-")) {
    cur_.Next();
    OFI_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
    if (v.type() == TypeId::kInt64) return Value(-v.AsInt());
    if (v.type() == TypeId::kDouble) return Value(-v.AsDouble());
    return cur_.Error("cannot negate literal");
  }
  return cur_.Error("expected literal");
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = cur_.Peek();
  // Aggregate calls inside expressions (HAVING COUNT(*) > 5, ORDER BY
  // SUM(x)) become encoded column references the planner resolves against
  // the aggregation output (adding hidden aggregates when needed).
  static const std::pair<const char*, const char*> kAggKws[] = {
      {"COUNT", "COUNT"}, {"SUM", "SUM"}, {"AVG", "AVG"},
      {"MIN", "MIN"},     {"MAX", "MAX"}};
  for (const auto& [kw, name] : kAggKws) {
    if (t.IsKeyword(kw) && cur_.Peek(1).IsSymbol("(")) {
      cur_.Next();
      cur_.Next();
      std::string arg_text = "*";
      if (!cur_.AcceptSymbol("*")) {
        OFI_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
        arg_text = arg->ToCanonicalString();
      } else if (std::string(kw) != "COUNT") {
        return cur_.Error("only COUNT(*) takes *");
      }
      OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
      return Expr::ColumnRef(std::string("$agg$") + name + "$" + arg_text);
    }
  }
  if (t.IsSymbol("(")) {
    cur_.Next();
    OFI_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    return e;
  }
  if (t.type == TokenType::kIdentifier) {
    cur_.Next();
    return Expr::ColumnRef(t.text);
  }
  // Everything else must be a literal.
  OFI_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
  return Expr::Literal(std::move(v));
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  OFI_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  while (true) {
    if (cur_.AcceptSymbol("*")) {
      OFI_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Expr::Arith(ArithOp::kMul, left, right);
    } else if (cur_.AcceptSymbol("/")) {
      OFI_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = Expr::Arith(ArithOp::kDiv, left, right);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseAdditive() {
  OFI_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    if (cur_.AcceptSymbol("+")) {
      OFI_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Arith(ArithOp::kAdd, left, right);
    } else if (cur_.Peek().IsSymbol("-") &&
               !(cur_.Peek(1).type == TokenType::kEnd)) {
      cur_.Next();
      OFI_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Arith(ArithOp::kSub, left, right);
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseComparison() {
  OFI_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

  // IS [NOT] NULL.
  if (cur_.AcceptKeyword("IS")) {
    bool negated = cur_.AcceptKeyword("NOT");
    OFI_RETURN_NOT_OK(cur_.ExpectKeyword("NULL"));
    ExprPtr e = Expr::IsNull(left);
    return negated ? Expr::Not(e) : e;
  }
  // [NOT] IN (list).
  bool negated_in = false;
  if (cur_.Peek().IsKeyword("NOT") && cur_.Peek(1).IsKeyword("IN")) {
    cur_.Next();
    negated_in = true;
  }
  if (cur_.AcceptKeyword("IN")) {
    OFI_RETURN_NOT_OK(cur_.ExpectSymbol("("));
    std::vector<Value> items;
    do {
      OFI_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      items.push_back(std::move(v));
    } while (cur_.AcceptSymbol(","));
    OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    ExprPtr e = Expr::InList(left, std::move(items));
    return negated_in ? Expr::Not(e) : e;
  }
  // BETWEEN a AND b.
  if (cur_.AcceptKeyword("BETWEEN")) {
    OFI_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    OFI_RETURN_NOT_OK(cur_.ExpectKeyword("AND"));
    OFI_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    return Expr::And(Expr::Compare(CompareOp::kGe, left, lo),
                     Expr::Compare(CompareOp::kLe, left, hi));
  }

  struct OpMap {
    const char* sym;
    CompareOp op;
  };
  static const OpMap kOps[] = {{"=", CompareOp::kEq},  {"<>", CompareOp::kNe},
                               {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
                               {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
  for (const auto& m : kOps) {
    if (cur_.AcceptSymbol(m.sym)) {
      OFI_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Expr::Compare(m.op, left, right);
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (cur_.AcceptKeyword("NOT")) {
    OFI_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
    return Expr::Not(e);
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseAnd() {
  OFI_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (cur_.AcceptKeyword("AND")) {
    OFI_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::And(left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseOr() {
  OFI_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (cur_.AcceptKeyword("OR")) {
    OFI_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::Or(left, right);
  }
  return left;
}

Result<SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  struct AggMap {
    const char* kw;
    AggFunc func;
  };
  static const AggMap kAggs[] = {{"COUNT", AggFunc::kCount},
                                 {"SUM", AggFunc::kSum},
                                 {"AVG", AggFunc::kAvg},
                                 {"MIN", AggFunc::kMin},
                                 {"MAX", AggFunc::kMax}};
  for (const auto& m : kAggs) {
    if (cur_.Peek().IsKeyword(m.kw) && cur_.Peek(1).IsSymbol("(")) {
      cur_.Next();
      cur_.Next();
      item.is_aggregate = true;
      item.agg = m.func;
      std::string default_name = m.kw;
      if (cur_.AcceptSymbol("*")) {
        if (m.func != AggFunc::kCount) {
          return cur_.Error("only COUNT(*) takes *");
        }
        item.expr = nullptr;
      } else {
        OFI_ASSIGN_OR_RETURN(item.expr, ParseOr());
      }
      OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
      // Derived name: count / sum etc, lower-case.
      for (char& c : default_name) c = static_cast<char>(::tolower(c));
      item.name = default_name;
      if (cur_.AcceptKeyword("AS")) {
        if (cur_.Peek().type != TokenType::kIdentifier) {
          return cur_.Error("expected alias");
        }
        item.name = cur_.Next().text;
      }
      return item;
    }
  }
  OFI_ASSIGN_OR_RETURN(item.expr, ParseOr());
  // Default name: the column name for simple refs, else "exprN" set later.
  if (item.expr->kind() == ExprKind::kColumn) {
    item.name = item.expr->column_name();
    auto dot = item.name.rfind('.');
    if (dot != std::string::npos) item.name = item.name.substr(dot + 1);
  }
  if (cur_.AcceptKeyword("AS")) {
    if (cur_.Peek().type != TokenType::kIdentifier) {
      return cur_.Error("expected alias");
    }
    item.name = cur_.Next().text;
  }
  return item;
}

Result<std::unique_ptr<SelectStatement>> Parser::ParseSelect() {
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStatement>();
  stmt->distinct = cur_.AcceptKeyword("DISTINCT");
  if (cur_.AcceptSymbol("*")) {
    stmt->select_star = true;
  } else {
    size_t n = 0;
    do {
      OFI_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      if (item.name.empty()) item.name = "expr" + std::to_string(n);
      stmt->items.push_back(std::move(item));
      ++n;
    } while (cur_.AcceptSymbol(","));
  }

  if (cur_.AcceptKeyword("FROM")) {
    auto parse_table_ref = [&]() -> Result<TableRef> {
      if (cur_.Peek().type != TokenType::kIdentifier) {
        return cur_.Error("expected table name");
      }
      TableRef ref;
      ref.table = cur_.Next().text;
      if (cur_.Peek().type == TokenType::kIdentifier) {
        ref.alias = cur_.Next().text;
      } else if (cur_.AcceptKeyword("AS")) {
        if (cur_.Peek().type != TokenType::kIdentifier) {
          return cur_.Error("expected alias");
        }
        ref.alias = cur_.Next().text;
      }
      return ref;
    };
    OFI_ASSIGN_OR_RETURN(TableRef first, parse_table_ref());
    stmt->from.push_back(std::move(first));
    while (true) {
      if (cur_.AcceptSymbol(",")) {
        OFI_ASSIGN_OR_RETURN(TableRef ref, parse_table_ref());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      JoinType type = JoinType::kInner;
      bool is_join = false;
      if (cur_.Peek().IsKeyword("LEFT")) {
        cur_.Next();
        cur_.AcceptKeyword("OUTER");
        OFI_RETURN_NOT_OK(cur_.ExpectKeyword("JOIN"));
        type = JoinType::kLeftOuter;
        is_join = true;
      } else if (cur_.AcceptKeyword("INNER")) {
        OFI_RETURN_NOT_OK(cur_.ExpectKeyword("JOIN"));
        is_join = true;
      } else if (cur_.AcceptKeyword("JOIN")) {
        is_join = true;
      }
      if (!is_join) break;
      JoinClause join;
      join.type = type;
      OFI_ASSIGN_OR_RETURN(join.table, parse_table_ref());
      OFI_RETURN_NOT_OK(cur_.ExpectKeyword("ON"));
      OFI_ASSIGN_OR_RETURN(join.on, ParseOr());
      stmt->joins.push_back(std::move(join));
    }
  }

  if (cur_.AcceptKeyword("WHERE")) {
    OFI_ASSIGN_OR_RETURN(stmt->where, ParseOr());
  }
  if (cur_.AcceptKeyword("GROUP")) {
    OFI_RETURN_NOT_OK(cur_.ExpectKeyword("BY"));
    do {
      if (cur_.Peek().type != TokenType::kIdentifier) {
        return cur_.Error("expected group-by column");
      }
      stmt->group_by.push_back(cur_.Next().text);
    } while (cur_.AcceptSymbol(","));
  }
  if (cur_.AcceptKeyword("HAVING")) {
    OFI_ASSIGN_OR_RETURN(stmt->having, ParseOr());
  }
  if (cur_.AcceptKeyword("ORDER")) {
    OFI_RETURN_NOT_OK(cur_.ExpectKeyword("BY"));
    do {
      OrderItem item;
      OFI_ASSIGN_OR_RETURN(item.expr, ParseOr());
      if (cur_.AcceptKeyword("DESC")) {
        item.ascending = false;
      } else {
        cur_.AcceptKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (cur_.AcceptSymbol(","));
  }
  if (cur_.AcceptKeyword("LIMIT")) {
    if (cur_.Peek().type != TokenType::kInteger) {
      return cur_.Error("expected LIMIT count");
    }
    stmt->limit = static_cast<size_t>(std::stoll(cur_.Next().text));
    if (cur_.AcceptKeyword("OFFSET")) {
      if (cur_.Peek().type != TokenType::kInteger) {
        return cur_.Error("expected OFFSET count");
      }
      stmt->offset = static_cast<size_t>(std::stoll(cur_.Next().text));
    }
  }

  // Set operations chain right-recursively.
  std::optional<SetOpType> op;
  if (cur_.AcceptKeyword("UNION")) {
    op = cur_.AcceptKeyword("ALL") ? SetOpType::kUnionAll : SetOpType::kUnion;
  } else if (cur_.AcceptKeyword("INTERSECT")) {
    op = SetOpType::kIntersect;
  } else if (cur_.AcceptKeyword("EXCEPT")) {
    op = SetOpType::kExcept;
  }
  if (op.has_value()) {
    OFI_ASSIGN_OR_RETURN(auto rhs, ParseSelect());
    stmt->set_op = op;
    stmt->set_rhs = std::move(rhs);
  }
  return stmt;
}

Result<Statement> Parser::ParseInsert() {
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("INSERT"));
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("INTO"));
  if (cur_.Peek().type != TokenType::kIdentifier) {
    return cur_.Error("expected table name");
  }
  auto insert = std::make_unique<InsertStatement>();
  insert->table = cur_.Next().text;
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("VALUES"));
  do {
    OFI_RETURN_NOT_OK(cur_.ExpectSymbol("("));
    Row row;
    do {
      OFI_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      row.push_back(std::move(v));
    } while (cur_.AcceptSymbol(","));
    OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
    insert->rows.push_back(std::move(row));
  } while (cur_.AcceptSymbol(","));
  Statement stmt;
  stmt.kind = StatementKind::kInsert;
  stmt.insert = std::move(insert);
  return stmt;
}

Result<Statement> Parser::ParseCreateIndex() {
  // CREATE already consumed; cursor sits on INDEX.
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("INDEX"));
  if (cur_.Peek().type != TokenType::kIdentifier) {
    return cur_.Error("expected index name");
  }
  auto create = std::make_unique<CreateIndexStatement>();
  create->index_name = cur_.Next().text;
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("ON"));
  if (cur_.Peek().type != TokenType::kIdentifier) {
    return cur_.Error("expected table name");
  }
  create->table = cur_.Next().text;
  OFI_RETURN_NOT_OK(cur_.ExpectSymbol("("));
  if (cur_.Peek().type != TokenType::kIdentifier) {
    return cur_.Error("expected column name");
  }
  create->column = cur_.Next().text;
  OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
  create->ordered = cur_.AcceptKeyword("ORDERED");
  Statement stmt;
  stmt.kind = StatementKind::kCreateIndex;
  stmt.create_index = std::move(create);
  return stmt;
}

Result<Statement> Parser::ParseDropIndex() {
  // DROP already consumed; cursor sits on INDEX.
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("INDEX"));
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("ON"));
  if (cur_.Peek().type != TokenType::kIdentifier) {
    return cur_.Error("expected table name");
  }
  auto drop = std::make_unique<DropIndexStatement>();
  drop->table = cur_.Next().text;
  Statement stmt;
  stmt.kind = StatementKind::kDropIndex;
  stmt.drop_index = std::move(drop);
  return stmt;
}

Result<Statement> Parser::ParseCreateTable() {
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("CREATE"));
  if (cur_.Peek().IsKeyword("INDEX")) return ParseCreateIndex();
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("TABLE"));
  if (cur_.Peek().type != TokenType::kIdentifier) {
    return cur_.Error("expected table name");
  }
  auto create = std::make_unique<CreateTableStatement>();
  create->table = cur_.Next().text;
  OFI_RETURN_NOT_OK(cur_.ExpectSymbol("("));
  std::vector<Column> cols;
  do {
    if (cur_.Peek().type != TokenType::kIdentifier) {
      return cur_.Error("expected column name");
    }
    Column col;
    col.name = cur_.Next().text;
    const Token& type_tok = cur_.Next();
    if (type_tok.IsKeyword("BIGINT")) {
      col.type = TypeId::kInt64;
    } else if (type_tok.IsKeyword("DOUBLE")) {
      col.type = TypeId::kDouble;
    } else if (type_tok.IsKeyword("VARCHAR")) {
      col.type = TypeId::kString;
      if (cur_.AcceptSymbol("(")) {  // VARCHAR(n): length ignored
        cur_.Next();
        OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
      }
    } else if (type_tok.IsKeyword("BOOLEAN")) {
      col.type = TypeId::kBool;
    } else if (type_tok.IsKeyword("TIMESTAMP")) {
      col.type = TypeId::kTimestamp;
    } else {
      return cur_.Error("unknown column type '" + type_tok.text + "'");
    }
    cols.push_back(std::move(col));
  } while (cur_.AcceptSymbol(","));
  OFI_RETURN_NOT_OK(cur_.ExpectSymbol(")"));
  create->schema = Schema(std::move(cols));
  Statement stmt;
  stmt.kind = StatementKind::kCreateTable;
  stmt.create_table = std::move(create);
  return stmt;
}

Result<Statement> Parser::ParseDropTable() {
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("DROP"));
  if (cur_.Peek().IsKeyword("INDEX")) return ParseDropIndex();
  OFI_RETURN_NOT_OK(cur_.ExpectKeyword("TABLE"));
  if (cur_.Peek().type != TokenType::kIdentifier) {
    return cur_.Error("expected table name");
  }
  auto drop = std::make_unique<DropTableStatement>();
  drop->table = cur_.Next().text;
  Statement stmt;
  stmt.kind = StatementKind::kDropTable;
  stmt.drop_table = std::move(drop);
  return stmt;
}

Result<Statement> Parser::ParseStatement() {
  const Token& t = cur_.Peek();
  Result<Statement> result = [&]() -> Result<Statement> {
    if (t.IsKeyword("SELECT")) {
      OFI_ASSIGN_OR_RETURN(auto select, ParseSelect());
      Statement stmt;
      stmt.kind = StatementKind::kSelect;
      stmt.select = std::move(select);
      return stmt;
    }
    if (t.IsKeyword("INSERT")) return ParseInsert();
    if (t.IsKeyword("CREATE")) return ParseCreateTable();
    if (t.IsKeyword("DROP")) return ParseDropTable();
    return cur_.Error("expected SELECT, INSERT, CREATE or DROP");
  }();
  if (result.ok() && !cur_.AtEnd()) {
    return cur_.Error("trailing input");
  }
  return result;
}

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  OFI_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser{Cursor(std::move(tokens))};
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  OFI_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser{Cursor(std::move(tokens))};
  return parser.ParseExpr();
}

}  // namespace ofi::sql
