#include "sql/plan.h"

namespace ofi::sql {
namespace {

std::string KindName(PlanKind k) {
  switch (k) {
    case PlanKind::kScan: return "SCAN";
    case PlanKind::kFilter: return "FILTER";
    case PlanKind::kProject: return "PROJECT";
    case PlanKind::kJoin: return "JOIN";
    case PlanKind::kAggregate: return "AGG";
    case PlanKind::kSort: return "SORT";
    case PlanKind::kLimit: return "LIMIT";
    case PlanKind::kSetOp: return "SETOP";
    case PlanKind::kValues: return "VALUES";
  }
  return "?";
}

}  // namespace

std::string PlanNode::ToString(int indent) const {
  std::string out(indent * 2, ' ');
  out += KindName(kind);
  if (kind == PlanKind::kScan) out += " " + table_name;
  if (kind == PlanKind::kValues) out += " " + alias;
  if (predicate) out += " pred=[" + predicate->ToCanonicalString() + "]";
  if (estimated_rows >= 0) out += " est=" + std::to_string((int64_t)estimated_rows);
  if (actual_rows >= 0) out += " act=" + std::to_string((int64_t)actual_rows);
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

PlanPtr MakeScan(std::string table, ExprPtr predicate, std::string alias) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kScan;
  n->table_name = std::move(table);
  n->predicate = std::move(predicate);
  n->alias = std::move(alias);
  return n;
}

PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kFilter;
  n->children = {std::move(child)};
  n->predicate = std::move(predicate);
  return n;
}

PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kProject;
  n->children = {std::move(child)};
  n->projections = std::move(exprs);
  n->projection_names = std::move(names);
  return n;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, ExprPtr predicate, JoinType type) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kJoin;
  n->children = {std::move(left), std::move(right)};
  n->predicate = std::move(predicate);
  n->join_type = type;
  return n;
}

PlanPtr MakeAggregate(PlanPtr child, std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAggregate;
  n->children = {std::move(child)};
  n->group_by = std::move(group_by);
  n->aggregates = std::move(aggs);
  return n;
}

PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kSort;
  n->children = {std::move(child)};
  n->sort_keys = std::move(keys);
  return n;
}

PlanPtr MakeLimit(PlanPtr child, size_t limit, size_t offset) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kLimit;
  n->children = {std::move(child)};
  n->limit = limit;
  n->offset = offset;
  return n;
}

PlanPtr MakeSetOp(SetOpType op, PlanPtr left, PlanPtr right) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kSetOp;
  n->set_op = op;
  n->children = {std::move(left), std::move(right)};
  return n;
}

PlanPtr MakeValues(Table table, std::string alias) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kValues;
  n->values = std::make_shared<Table>(std::move(table));
  n->alias = std::move(alias);
  return n;
}

}  // namespace ofi::sql
