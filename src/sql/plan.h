/// \file plan.h
/// \brief Logical query plans. Nodes carry the optimizer's estimated row
/// count and, after execution, the actual row count — the two numbers the
/// learned optimizer's plan store compares to decide what to capture
/// (paper §II-C, Table I).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/expr.h"
#include "sql/table.h"

namespace ofi::sql {

class PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

enum class PlanKind : uint8_t {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kSetOp,
  kValues,  // literal/table-expression input (multi-model engines inject here)
};

enum class JoinType : uint8_t { kInner, kLeftOuter, kSemi };
enum class SetOpType : uint8_t { kUnionAll, kUnion, kIntersect, kExcept };
enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate output: func(arg) AS name. kCount with null arg = COUNT(*).
struct AggSpec {
  AggFunc func;
  ExprPtr arg;  // may be null for COUNT(*)
  std::string name;
};

/// One sort key.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// \brief A node in the logical plan tree.
class PlanNode {
 public:
  PlanKind kind;
  std::vector<PlanPtr> children;

  // kScan
  std::string table_name;
  std::string alias;        // optional; qualifies output columns
  ExprPtr predicate;        // scan/filter/join predicate

  // kProject
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;

  // kJoin
  JoinType join_type = JoinType::kInner;

  // kAggregate
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  size_t limit = 0;
  size_t offset = 0;

  // kSetOp
  SetOpType set_op = SetOpType::kUnionAll;

  // kValues: inlined table (e.g. a gtimeseries()/ggraph() table expression).
  std::shared_ptr<Table> values;

  // --- Optimizer/executor bookkeeping --------------------------------------
  /// Optimizer's cardinality estimate (rows). -1 = not estimated.
  double estimated_rows = -1;
  /// Actual output rows observed during execution. -1 = not executed.
  double actual_rows = -1;

  /// Plan tree rendering for EXPLAIN-style output (Fig. 6 shape).
  std::string ToString(int indent = 0) const;
};

// --- Builder helpers ---------------------------------------------------------
PlanPtr MakeScan(std::string table, ExprPtr predicate = nullptr,
                 std::string alias = "");
PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, ExprPtr predicate,
                 JoinType type = JoinType::kInner);
PlanPtr MakeAggregate(PlanPtr child, std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs);
PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys);
PlanPtr MakeLimit(PlanPtr child, size_t limit, size_t offset = 0);
PlanPtr MakeSetOp(SetOpType op, PlanPtr left, PlanPtr right);
PlanPtr MakeValues(Table table, std::string alias = "");

}  // namespace ofi::sql
