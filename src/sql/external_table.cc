#include "sql/external_table.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ofi::sql {
namespace {

/// Splits one CSV record honoring quotes; advances `pos` past the record's
/// trailing newline. Returns false at end of input.
bool NextRecord(const std::string& text, size_t* pos, char delimiter,
                std::vector<std::string>* fields, bool* in_error) {
  fields->clear();
  *in_error = false;
  if (*pos >= text.size()) return false;
  std::string field;
  bool quoted = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      if (field.empty()) {
        quoted = true;
      } else {
        field += c;  // interior quote, tolerated
      }
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      field += c;
    }
  }
  if (quoted) *in_error = true;  // unterminated quote
  fields->push_back(std::move(field));
  *pos = i;
  return true;
}

Result<Value> CoerceCell(const std::string& raw, TypeId type,
                         const std::string& null_token) {
  if (raw.empty() || raw == null_token) return Value::Null();
  char* end = nullptr;
  switch (type) {
    case TypeId::kInt64: {
      long long v = std::strtoll(raw.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("not an integer: '" + raw + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case TypeId::kTimestamp: {
      long long v = std::strtoll(raw.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("not a timestamp: '" + raw + "'");
      }
      return Value::Timestamp(v);
    }
    case TypeId::kDouble: {
      double v = std::strtod(raw.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("not a double: '" + raw + "'");
      }
      return Value(v);
    }
    case TypeId::kBool:
      if (raw == "true" || raw == "TRUE" || raw == "1") return Value(true);
      if (raw == "false" || raw == "FALSE" || raw == "0") return Value(false);
      return Status::InvalidArgument("not a boolean: '" + raw + "'");
    case TypeId::kString:
      return Value(raw);
    default:
      return Status::InvalidArgument("unsupported column type");
  }
}

}  // namespace

Result<Table> ParseCsv(const std::string& text, const Schema& schema,
                       const CsvOptions& options) {
  Table table(schema);
  size_t pos = 0;
  size_t line = 0;
  size_t errors = 0;
  std::vector<std::string> fields;
  bool record_error = false;
  std::string first_error;
  while (NextRecord(text, &pos, options.delimiter, &fields, &record_error)) {
    ++line;
    if (options.has_header && line == 1) continue;
    // A lone empty trailing record (file ends with \n) is not a row.
    if (fields.size() == 1 && fields[0].empty() && pos >= text.size()) break;

    auto fail_row = [&](const std::string& why) -> Status {
      ++errors;
      if (first_error.empty()) {
        first_error = "line " + std::to_string(line) + ": " + why;
      }
      if (errors > options.max_errors) {
        return Status::InvalidArgument("csv: " + first_error + " (" +
                                       std::to_string(errors) + " bad rows)");
      }
      return Status::OK();
    };

    if (record_error) {
      OFI_RETURN_NOT_OK(fail_row("unterminated quote"));
      continue;
    }
    if (fields.size() != schema.num_columns()) {
      OFI_RETURN_NOT_OK(fail_row("expected " +
                                 std::to_string(schema.num_columns()) +
                                 " fields, got " +
                                 std::to_string(fields.size())));
      continue;
    }
    Row row;
    row.reserve(fields.size());
    bool row_ok = true;
    for (size_t c = 0; c < fields.size(); ++c) {
      Result<Value> v =
          CoerceCell(fields[c], schema.column(c).type, options.null_token);
      if (!v.ok()) {
        OFI_RETURN_NOT_OK(fail_row("column " + schema.column(c).name + ": " +
                                   v.status().message()));
        row_ok = false;
        break;
      }
      row.push_back(std::move(v).ValueOrDie());
    }
    if (row_ok) {
      OFI_RETURN_NOT_OK(table.Append(std::move(row)));
    }
  }
  return table;
}

Result<Table> LoadCsvTable(const std::string& path, const Schema& schema,
                           const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), schema, options);
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = table.schema();
  if (options.has_header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c) out += options.delimiter;
      out += schema.column(c).name;
    }
    out += "\n";
  }
  auto escape = [&](const std::string& s) {
    if (s.find(options.delimiter) == std::string::npos &&
        s.find('"') == std::string::npos && s.find('\n') == std::string::npos) {
      return s;
    }
    std::string quoted = "\"";
    for (char c : s) {
      if (c == '"') quoted += "\"\"";
      else quoted += c;
    }
    return quoted + "\"";
  };
  for (const auto& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += options.delimiter;
      const Value& v = row[c];
      if (v.is_null()) {
        out += options.null_token;
      } else if (v.type() == TypeId::kString) {
        out += escape(v.AsString());
      } else if (v.type() == TypeId::kBool) {
        out += v.AsBool() ? "true" : "false";
      } else if (v.type() == TypeId::kTimestamp || v.type() == TypeId::kInt64) {
        out += std::to_string(v.AsInt());
      } else {
        out += std::to_string(v.AsDouble());
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ofi::sql
