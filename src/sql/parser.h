/// \file parser.h
/// \brief Recursive-descent parser for the engine's SQL subset:
///
///   SELECT [DISTINCT] select_list
///   FROM t [alias] [, t2 [alias]]* [ [LEFT] JOIN t3 ON expr ]*
///   [WHERE expr] [GROUP BY cols] [HAVING expr]
///   [ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]
///   [UNION [ALL] | INTERSECT | EXCEPT  select]
///
///   INSERT INTO t VALUES (lit, ...), ...
///   CREATE TABLE t (col BIGINT|DOUBLE|VARCHAR|BOOLEAN|TIMESTAMP, ...)
///   DROP TABLE t
///
/// Expressions: literals, (qualified) columns, + - * /, comparison ops,
/// AND/OR/NOT, IN (list), IS [NOT] NULL, BETWEEN a AND b.
#pragma once

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace ofi::sql {

/// Parses one statement (a trailing ';' is allowed).
Result<Statement> Parse(const std::string& sql);

/// Parses a standalone scalar expression (tests, filter strings).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace ofi::sql
