#include "sql/value.h"

#include <functional>

namespace ofi::sql {

std::string TypeToString(TypeId type) {
  switch (type) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return "BOOLEAN";
    case TypeId::kInt64: return "BIGINT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "VARCHAR";
    case TypeId::kTimestamp: return "TIMESTAMP";
  }
  return "?";
}

namespace {

bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kTimestamp;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    // Exact path when both sides are integer-backed.
    if (type_ != TypeId::kDouble && other.type_ != TypeId::kDouble) {
      int64_t a = std::get<int64_t>(payload_);
      int64_t b = std::get<int64_t>(other.payload_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ == TypeId::kBool && other.type_ == TypeId::kBool) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  if (type_ == TypeId::kString && other.type_ == TypeId::kString) {
    return AsString().compare(other.AsString());
  }
  // Heterogeneous: order by type id so sorting is still a total order.
  return static_cast<int>(type_) - static_cast<int>(other.type_);
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull: return 0x9e3779b9;
    case TypeId::kBool: return std::hash<bool>{}(AsBool());
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return std::hash<int64_t>{}(std::get<int64_t>(payload_));
    case TypeId::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like their int64 twin so 1.0 and 1 join.
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case TypeId::kString: return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return AsBool() ? "TRUE" : "FALSE";
    case TypeId::kInt64: return std::to_string(AsInt());
    case TypeId::kTimestamp: return "TS(" + std::to_string(AsInt()) + ")";
    case TypeId::kDouble: {
      std::string s = std::to_string(AsDouble());
      return s;
    }
    case TypeId::kString: return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::ByteSize() const {
  switch (type_) {
    case TypeId::kNull: return 1;
    case TypeId::kBool: return 1;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
    case TypeId::kDouble: return 8;
    case TypeId::kString: return AsString().size() + 4;
  }
  return 0;
}

}  // namespace ofi::sql
