/// \file planner.h
/// \brief Turns a parsed SelectStatement into a logical plan. The join
/// order is delegated to a pluggable JoinPlanner so the cost-based
/// optimizer can take over; without one, relations join left-deep in FROM
/// order (the "naive" planner). Includes the rule-based rewrites the paper
/// lists as optimizer work (§II-C): predicate pushdown to scans, constant
/// folding, and redundant-node elimination.
#pragma once

#include <functional>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/table.h"

namespace ofi::sql {

/// One relation handed to the join planner: table + pushed-down predicate.
struct PlannedScan {
  std::string table;
  ExprPtr predicate;
  std::string alias;
  JoinType join_type = JoinType::kInner;  // how it joins into the query
  ExprPtr explicit_on;                    // JOIN ... ON predicate, if any
};

/// Hook for cost-based join ordering: receives the inner-joinable scans and
/// the cross-relation predicates; returns the join tree.
using JoinPlanner = std::function<Result<PlanPtr>(
    std::vector<PlannedScan> scans, std::vector<ExprPtr> join_preds)>;

/// Plans a SELECT. `catalog` resolves schemas (to classify predicates and
/// expand SELECT *); `join_planner` may be null (left-deep naive order).
Result<PlanPtr> PlanSelect(const SelectStatement& stmt, const Catalog& catalog,
                           const JoinPlanner& join_planner = nullptr);

// --- Rewrite rules (exposed for tests and the rewrite ablation bench) -------

/// Splits `where` into per-relation pushdowns and cross-relation conjuncts.
/// `relation_columns[i]` lists the columns relation i can resolve.
void ClassifyPredicates(const ExprPtr& where,
                        const std::vector<std::vector<std::string>>& relation_columns,
                        std::vector<ExprPtr>* per_relation,
                        std::vector<ExprPtr>* cross_relation);

/// Folds constant subexpressions: 1+2 -> 3, TRUE AND x -> x, etc.
ExprPtr FoldConstants(const ExprPtr& expr);

}  // namespace ofi::sql
