/// \file schema.h
/// \brief Relational schemas: typed, named columns with lookup by
/// (qualified) name. Shared by the row store, column store, executor and
/// optimizer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/value.h"

namespace ofi::sql {

/// \brief One column: name, type, and an optional table qualifier so the
/// optimizer's canonical step text can print "OLAP.T1.B1"-style names.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  std::string table;  // optional qualifier

  std::string QualifiedName() const {
    return table.empty() ? name : table + "." + name;
  }
};

/// \brief An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Finds a column index by name; accepts bare or qualified names.
  /// Bare-name lookup fails with AlreadyExists if ambiguous across tables.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Appends another schema's columns (join output schema).
  Schema Concat(const Schema& other) const;

  /// Re-qualifies every column with `table` (for aliased scans).
  Schema WithQualifier(const std::string& table) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A tuple matching some Schema positionally.
using Row = std::vector<Value>;

/// Total byte size of a row (bandwidth/metrics accounting).
size_t RowByteSize(const Row& row);

}  // namespace ofi::sql
