/// \file store.h
/// \brief One GMDB data node (paper §III, Fig. 7): an in-memory tree-object
/// store with single-object transactions, on-read schema conversion,
/// delta-based updates, pub/sub change notification, and asynchronous
/// checkpointing (GMDB trades durability for latency: data is only flushed
/// to disk periodically, and limited loss is compensated by application
/// logic — §III-A).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "gmdb/schema_registry.h"
#include "sql/table.h"

namespace ofi::gmdb {

/// Subscription callback: (key, delta, writer_version).
using ChangeCallback =
    std::function<void(const std::string& key, const Delta& delta, int version)>;

/// \brief A data node.
class GmdbStore {
 public:
  /// \param registry shared schema registry (owned by the coordinator).
  explicit GmdbStore(const SchemaRegistry* registry) : registry_(registry) {}

  // --- Single-object transactions --------------------------------------------
  /// Creates an object stored at `version`. AlreadyExists if present.
  Status Put(const std::string& type, const std::string& key, TreeObjectPtr obj,
             int version);

  /// Reads, converting from the stored version to `requested_version`
  /// (upgrade / downgrade schema evolution, Fig. 9/10). Identity reads do
  /// not copy-convert.
  Result<TreeObjectPtr> Get(const std::string& type, const std::string& key,
                            int requested_version);

  /// Stored version of an object.
  Result<int> StoredVersion(const std::string& type, const std::string& key) const;

  /// Applies a delta written by a client running `writer_version`. If the
  /// writer runs a NEWER schema the stored object is upgraded first (this is
  /// how data migrates forward without downtime); older writers' paths all
  /// exist in the stored schema, so they apply directly.
  Status ApplyDelta(const std::string& type, const std::string& key,
                    const Delta& delta, int writer_version);

  /// Atomic read-modify-write of one object (GMDB supports transactions on
  /// single objects only, §III-A).
  Status Transact(const std::string& type, const std::string& key,
                  const std::function<Status(TreeObject*)>& mutator);

  Status Delete(const std::string& type, const std::string& key);
  size_t num_objects() const { return objects_.size(); }

  // --- TTL / session expiry ----------------------------------------------------
  /// Telecom session state is lease-based: sets (or refreshes) an absolute
  /// expiry deadline for an object. 0 clears the lease (never expires).
  Status SetExpiry(const std::string& type, const std::string& key,
                   int64_t expires_at_us);
  /// Drops every object whose deadline is <= now (the periodic session
  /// reaper). Returns the number of objects expired.
  size_t SweepExpired(int64_t now_us);

  // --- Pub/sub ---------------------------------------------------------------
  /// Subscribes to changes of one object; returns a subscription id.
  int Subscribe(const std::string& type, const std::string& key,
                int subscriber_version, ChangeCallback cb);
  void Unsubscribe(int subscription_id);

  // --- Asynchronous checkpointing ---------------------------------------------
  /// Serializes every object to the (simulated) disk image; returns bytes
  /// written. Called periodically, NOT on every commit.
  size_t Checkpoint();
  /// Rebuilds the store from the last checkpoint, dropping everything newer
  /// (the bounded data-loss window the design accepts). Returns object count.
  size_t RestoreFromCheckpoint();
  uint64_t mutations_since_checkpoint() const { return mutations_since_ckpt_; }

  // --- Relational view (the SQL interface of Fig. 7's Driver) -----------------
  /// Flattens every object of `type` into a relational table at schema
  /// version `version` (converting per object as needed): one column per
  /// top-level primitive field plus a leading "_key" column. Objects whose
  /// stored version cannot convert to `version` are skipped and counted in
  /// `*skipped` (if provided).
  Result<sql::Table> ObjectsAsTable(const std::string& type, int version,
                                    size_t* skipped = nullptr) const;

  // --- Sync accounting (Fig. 11) ----------------------------------------------
  uint64_t delta_bytes_published() const { return delta_bytes_published_; }
  uint64_t conversions_performed() const { return conversions_; }

 private:
  struct StoredObject {
    TreeObjectPtr obj;
    int version = 0;   // schema version the object is stored at
    uint64_t seq = 0;  // bumped on every mutation
    int64_t expires_at_us = 0;  // 0 = no lease
  };
  struct Subscription {
    std::string full_key;
    int version;
    ChangeCallback cb;
  };
  struct CheckpointedObject {
    std::string full_key;
    TreeObjectPtr obj;  // deep copy at checkpoint time
    int version;
  };

  static std::string FullKey(const std::string& type, const std::string& key) {
    return type + "/" + key;
  }
  void Publish(const std::string& type, const std::string& key, const Delta& delta,
               int version);

  const SchemaRegistry* registry_;
  std::map<std::string, StoredObject> objects_;  // by FullKey
  std::map<int, Subscription> subscriptions_;
  int next_subscription_ = 1;
  std::vector<CheckpointedObject> checkpoint_;
  uint64_t mutations_since_ckpt_ = 0;
  uint64_t delta_bytes_published_ = 0;
  mutable uint64_t conversions_ = 0;
};

}  // namespace ofi::gmdb
