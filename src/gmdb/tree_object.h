/// \file tree_object.h
/// \brief GMDB's tree-modeled object data (paper §III-B): each object has a
/// record schema like an RDBMS table, but a field can be a primitive, a
/// nested record, or an array of records — so related data that a
/// relational model would split across key/foreign-key tables is stored
/// together in one tree (a typical user-session object is 5-10 KB of
/// JSON-shaped data).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "sql/value.h"

namespace ofi::gmdb {

struct RecordSchema;
using RecordSchemaPtr = std::shared_ptr<const RecordSchema>;

/// Kind of one record field.
enum class FieldKind : uint8_t { kPrimitive, kRecord, kArray };

/// \brief One field definition.
struct FieldDef {
  std::string name;
  FieldKind kind = FieldKind::kPrimitive;
  sql::TypeId primitive_type = sql::TypeId::kNull;  // kPrimitive
  RecordSchemaPtr record;                           // kRecord / kArray element
  /// Value new objects and upgraded objects receive (kPrimitive only;
  /// records/arrays default to empty).
  sql::Value default_value;
};

/// \brief A versioned record schema. Versions are ordered by registration;
/// evolution rules (add-only, no delete, no reorder, no type change) are
/// enforced by the SchemaRegistry.
struct RecordSchema {
  std::string name;        // object type, e.g. "mme_session"
  int version = 0;         // e.g. 3 for "V3"
  std::string primary_key; // name of a top-level primitive field
  std::vector<FieldDef> fields;

  const FieldDef* Field(const std::string& field_name) const;
  int FieldIndex(const std::string& field_name) const;
};

class TreeObject;
using TreeObjectPtr = std::shared_ptr<TreeObject>;

/// A field's value: primitive, nested record, or array of records.
using FieldValue =
    std::variant<sql::Value, TreeObjectPtr, std::vector<TreeObjectPtr>>;

/// \brief One tree-modeled object instance.
class TreeObject {
 public:
  TreeObject() = default;

  /// Builds an object with every field at its schema default.
  static TreeObjectPtr Defaults(const RecordSchema& schema);

  void Set(const std::string& field, FieldValue value) {
    fields_[field] = std::move(value);
  }
  bool Has(const std::string& field) const { return fields_.count(field) > 0; }
  Result<const FieldValue*> Get(const std::string& field) const;

  /// Primitive accessor shortcut.
  Result<sql::Value> GetPrimitive(const std::string& field) const;

  /// Reads / writes through a dotted path with optional array indexes, e.g.
  /// "bearers[1].qos.priority". Set creates intermediate records as needed
  /// (but will not grow arrays implicitly — out-of-range index fails).
  Result<sql::Value> GetPath(const std::string& path) const;
  Status SetPath(const std::string& path, sql::Value value);

  const std::map<std::string, FieldValue>& fields() const { return fields_; }

  /// Deep copy.
  TreeObjectPtr Clone() const;

  /// JSON-ish rendering (stable field order) — also the wire format whose
  /// size the delta-vs-whole-object experiment (Fig. 11) accounts.
  std::string ToJson() const;

  /// Serialized size in bytes.
  size_t ByteSize() const { return ToJson().size(); }

  /// Structural equality.
  bool Equals(const TreeObject& other) const;

 private:
  std::map<std::string, FieldValue> fields_;
};

/// \brief A delta: the changed paths of an object. GMDB syncs deltas, not
/// whole objects, between clients and DNs (paper §III-B: "data updates and
/// schema evolution happen on delta objects instead of whole objects").
struct Delta {
  struct Op {
    std::string path;
    sql::Value value;
  };
  std::vector<Op> ops;

  /// Wire size of the delta.
  size_t ByteSize() const;
  /// Applies every op to `obj`.
  Status ApplyTo(TreeObject* obj) const;
};

/// Convenience factories for building schemas.
FieldDef PrimitiveField(std::string name, sql::TypeId type,
                        sql::Value default_value = sql::Value());
FieldDef RecordField(std::string name, RecordSchemaPtr schema);
FieldDef ArrayField(std::string name, RecordSchemaPtr element_schema);

}  // namespace ofi::gmdb
