#include "gmdb/store.h"

namespace ofi::gmdb {

Status GmdbStore::Put(const std::string& type, const std::string& key,
                      TreeObjectPtr obj, int version) {
  OFI_RETURN_NOT_OK(registry_->Get(type, version).status());
  std::string fk = FullKey(type, key);
  if (objects_.count(fk)) return Status::AlreadyExists("object exists: " + fk);
  objects_[fk] = StoredObject{std::move(obj), version, 1};
  ++mutations_since_ckpt_;
  return Status::OK();
}

Result<TreeObjectPtr> GmdbStore::Get(const std::string& type,
                                     const std::string& key,
                                     int requested_version) {
  auto it = objects_.find(FullKey(type, key));
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  const StoredObject& so = it->second;
  if (so.version == requested_version) return so.obj;
  ++conversions_;
  return registry_->Convert(type, *so.obj, so.version, requested_version);
}

Result<int> GmdbStore::StoredVersion(const std::string& type,
                                     const std::string& key) const {
  auto it = objects_.find(FullKey(type, key));
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  return it->second.version;
}

Status GmdbStore::ApplyDelta(const std::string& type, const std::string& key,
                             const Delta& delta, int writer_version) {
  auto it = objects_.find(FullKey(type, key));
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  StoredObject& so = it->second;
  if (writer_version > so.version) {
    // Forward migration on write: upgrade the stored copy first.
    OFI_ASSIGN_OR_RETURN(TreeObjectPtr upgraded,
                         registry_->Convert(type, *so.obj, so.version,
                                            writer_version));
    so.obj = std::move(upgraded);
    so.version = writer_version;
    ++conversions_;
  } else if (writer_version < so.version) {
    // Older writers only know fields that still exist; verify the classify
    // cell is not X so the deployment is a supported mix.
    if (registry_->Classify(type, writer_version, so.version) ==
        ConversionKind::kUnsupported) {
      return Status::IncompatibleSchema("writer version too far behind");
    }
  }
  OFI_RETURN_NOT_OK(delta.ApplyTo(so.obj.get()));
  ++so.seq;
  ++mutations_since_ckpt_;
  Publish(type, key, delta, so.version);
  return Status::OK();
}

Status GmdbStore::Transact(const std::string& type, const std::string& key,
                           const std::function<Status(TreeObject*)>& mutator) {
  auto it = objects_.find(FullKey(type, key));
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  StoredObject& so = it->second;
  // Mutate a copy; install only on success (all-or-nothing per object).
  TreeObjectPtr copy = so.obj->Clone();
  OFI_RETURN_NOT_OK(mutator(copy.get()));
  so.obj = std::move(copy);
  ++so.seq;
  ++mutations_since_ckpt_;
  return Status::OK();
}

Status GmdbStore::Delete(const std::string& type, const std::string& key) {
  if (objects_.erase(FullKey(type, key)) == 0) {
    return Status::NotFound("no object: " + key);
  }
  ++mutations_since_ckpt_;
  return Status::OK();
}

Status GmdbStore::SetExpiry(const std::string& type, const std::string& key,
                            int64_t expires_at_us) {
  auto it = objects_.find(FullKey(type, key));
  if (it == objects_.end()) return Status::NotFound("no object: " + key);
  it->second.expires_at_us = expires_at_us;
  return Status::OK();
}

size_t GmdbStore::SweepExpired(int64_t now_us) {
  size_t expired = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->second.expires_at_us != 0 && it->second.expires_at_us <= now_us) {
      it = objects_.erase(it);
      ++expired;
      ++mutations_since_ckpt_;
    } else {
      ++it;
    }
  }
  return expired;
}

int GmdbStore::Subscribe(const std::string& type, const std::string& key,
                         int subscriber_version, ChangeCallback cb) {
  int id = next_subscription_++;
  subscriptions_[id] =
      Subscription{FullKey(type, key), subscriber_version, std::move(cb)};
  return id;
}

void GmdbStore::Unsubscribe(int subscription_id) {
  subscriptions_.erase(subscription_id);
}

void GmdbStore::Publish(const std::string& type, const std::string& key,
                        const Delta& delta, int version) {
  std::string fk = FullKey(type, key);
  for (const auto& [id, sub] : subscriptions_) {
    if (sub.full_key != fk) continue;
    delta_bytes_published_ += delta.ByteSize();
    sub.cb(key, delta, version);
  }
}

Result<sql::Table> GmdbStore::ObjectsAsTable(const std::string& type,
                                             int version,
                                             size_t* skipped) const {
  OFI_ASSIGN_OR_RETURN(RecordSchemaPtr schema, registry_->Get(type, version));
  std::vector<sql::Column> cols = {{"_key", sql::TypeId::kString, ""}};
  for (const auto& f : schema->fields) {
    if (f.kind == FieldKind::kPrimitive) {
      cols.push_back({f.name, f.primitive_type, ""});
    }
  }
  sql::Table out{sql::Schema(std::move(cols))};
  std::string prefix = type + "/";
  size_t skip_count = 0;
  for (const auto& [fk, so] : objects_) {
    if (fk.rfind(prefix, 0) != 0) continue;
    Result<TreeObjectPtr> converted =
        so.version == version
            ? Result<TreeObjectPtr>(so.obj)
            : registry_->Convert(type, *so.obj, so.version, version);
    if (!converted.ok()) {
      ++skip_count;
      continue;
    }
    sql::Row row = {sql::Value(fk.substr(prefix.size()))};
    for (const auto& f : schema->fields) {
      if (f.kind != FieldKind::kPrimitive) continue;
      auto v = (*converted)->GetPrimitive(f.name);
      row.push_back(v.ok() ? *v : sql::Value::Null());
    }
    (void)out.Append(std::move(row));
  }
  if (skipped != nullptr) *skipped = skip_count;
  return out;
}

size_t GmdbStore::Checkpoint() {
  checkpoint_.clear();
  size_t bytes = 0;
  for (const auto& [fk, so] : objects_) {
    checkpoint_.push_back(CheckpointedObject{fk, so.obj->Clone(), so.version});
    bytes += so.obj->ByteSize();
  }
  mutations_since_ckpt_ = 0;
  return bytes;
}

size_t GmdbStore::RestoreFromCheckpoint() {
  objects_.clear();
  for (const auto& c : checkpoint_) {
    objects_[c.full_key] = StoredObject{c.obj->Clone(), c.version, 1};
  }
  mutations_since_ckpt_ = 0;
  return objects_.size();
}

}  // namespace ofi::gmdb
