#include "gmdb/tree_object.h"

namespace ofi::gmdb {

const FieldDef* RecordSchema::Field(const std::string& field_name) const {
  for (const auto& f : fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

int RecordSchema::FieldIndex(const std::string& field_name) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == field_name) return static_cast<int>(i);
  }
  return -1;
}

TreeObjectPtr TreeObject::Defaults(const RecordSchema& schema) {
  auto obj = std::make_shared<TreeObject>();
  for (const auto& f : schema.fields) {
    switch (f.kind) {
      case FieldKind::kPrimitive:
        obj->Set(f.name, f.default_value);
        break;
      case FieldKind::kRecord:
        obj->Set(f.name, Defaults(*f.record));
        break;
      case FieldKind::kArray:
        obj->Set(f.name, std::vector<TreeObjectPtr>{});
        break;
    }
  }
  return obj;
}

Result<const FieldValue*> TreeObject::Get(const std::string& field) const {
  auto it = fields_.find(field);
  if (it == fields_.end()) return Status::NotFound("no field: " + field);
  return &it->second;
}

Result<sql::Value> TreeObject::GetPrimitive(const std::string& field) const {
  OFI_ASSIGN_OR_RETURN(const FieldValue* fv, Get(field));
  if (!std::holds_alternative<sql::Value>(*fv)) {
    return Status::InvalidArgument("field not primitive: " + field);
  }
  return std::get<sql::Value>(*fv);
}

namespace {

struct PathSegment {
  std::string name;
  int index = -1;  // >= 0 when the segment has [n]
};

Result<std::vector<PathSegment>> ParsePath(const std::string& path) {
  std::vector<PathSegment> segments;
  size_t i = 0;
  while (i < path.size()) {
    PathSegment seg;
    while (i < path.size() && path[i] != '.' && path[i] != '[') {
      seg.name += path[i++];
    }
    if (seg.name.empty()) return Status::InvalidArgument("bad path: " + path);
    if (i < path.size() && path[i] == '[') {
      size_t close = path.find(']', i);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unclosed index: " + path);
      }
      seg.index = std::stoi(path.substr(i + 1, close - i - 1));
      i = close + 1;
    }
    if (i < path.size()) {
      if (path[i] != '.') return Status::InvalidArgument("bad path: " + path);
      ++i;
    }
    segments.push_back(std::move(seg));
  }
  if (segments.empty()) return Status::InvalidArgument("empty path");
  return segments;
}

}  // namespace

Result<sql::Value> TreeObject::GetPath(const std::string& path) const {
  OFI_ASSIGN_OR_RETURN(std::vector<PathSegment> segments, ParsePath(path));
  const TreeObject* cur = this;
  for (size_t s = 0; s < segments.size(); ++s) {
    const PathSegment& seg = segments[s];
    OFI_ASSIGN_OR_RETURN(const FieldValue* fv, cur->Get(seg.name));
    bool last = s + 1 == segments.size();
    if (seg.index >= 0) {
      if (!std::holds_alternative<std::vector<TreeObjectPtr>>(*fv)) {
        return Status::InvalidArgument("not an array: " + seg.name);
      }
      const auto& arr = std::get<std::vector<TreeObjectPtr>>(*fv);
      if (static_cast<size_t>(seg.index) >= arr.size()) {
        return Status::OutOfRange("index out of range: " + path);
      }
      cur = arr[seg.index].get();
      if (last) return Status::InvalidArgument("path ends at record: " + path);
      continue;
    }
    if (std::holds_alternative<sql::Value>(*fv)) {
      if (!last) return Status::InvalidArgument("primitive mid-path: " + path);
      return std::get<sql::Value>(*fv);
    }
    if (std::holds_alternative<TreeObjectPtr>(*fv)) {
      if (last) return Status::InvalidArgument("path ends at record: " + path);
      cur = std::get<TreeObjectPtr>(*fv).get();
      continue;
    }
    return Status::InvalidArgument("array needs index: " + seg.name);
  }
  return Status::InvalidArgument("bad path: " + path);
}

Status TreeObject::SetPath(const std::string& path, sql::Value value) {
  OFI_ASSIGN_OR_RETURN(std::vector<PathSegment> segments, ParsePath(path));
  TreeObject* cur = this;
  for (size_t s = 0; s + 1 < segments.size(); ++s) {
    const PathSegment& seg = segments[s];
    auto it = cur->fields_.find(seg.name);
    if (it == cur->fields_.end()) {
      // Create intermediate record on demand (schema checks happen upstream).
      if (seg.index >= 0) return Status::NotFound("no array field: " + seg.name);
      auto rec = std::make_shared<TreeObject>();
      cur->fields_[seg.name] = rec;
      cur = rec.get();
      continue;
    }
    FieldValue& fv = it->second;
    if (seg.index >= 0) {
      if (!std::holds_alternative<std::vector<TreeObjectPtr>>(fv)) {
        return Status::InvalidArgument("not an array: " + seg.name);
      }
      auto& arr = std::get<std::vector<TreeObjectPtr>>(fv);
      if (static_cast<size_t>(seg.index) >= arr.size()) {
        return Status::OutOfRange("index out of range: " + path);
      }
      cur = arr[seg.index].get();
    } else if (std::holds_alternative<TreeObjectPtr>(fv)) {
      cur = std::get<TreeObjectPtr>(fv).get();
    } else {
      return Status::InvalidArgument("cannot descend into: " + seg.name);
    }
  }
  const PathSegment& leaf = segments.back();
  if (leaf.index >= 0) return Status::InvalidArgument("path ends at array element");
  cur->fields_[leaf.name] = std::move(value);
  return Status::OK();
}

TreeObjectPtr TreeObject::Clone() const {
  auto copy = std::make_shared<TreeObject>();
  for (const auto& [name, fv] : fields_) {
    if (std::holds_alternative<sql::Value>(fv)) {
      copy->fields_[name] = std::get<sql::Value>(fv);
    } else if (std::holds_alternative<TreeObjectPtr>(fv)) {
      copy->fields_[name] = std::get<TreeObjectPtr>(fv)->Clone();
    } else {
      std::vector<TreeObjectPtr> arr;
      for (const auto& e : std::get<std::vector<TreeObjectPtr>>(fv)) {
        arr.push_back(e->Clone());
      }
      copy->fields_[name] = std::move(arr);
    }
  }
  return copy;
}

std::string TreeObject::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, fv] : fields_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    if (std::holds_alternative<sql::Value>(fv)) {
      out += std::get<sql::Value>(fv).ToString();
    } else if (std::holds_alternative<TreeObjectPtr>(fv)) {
      out += std::get<TreeObjectPtr>(fv)->ToJson();
    } else {
      out += "[";
      const auto& arr = std::get<std::vector<TreeObjectPtr>>(fv);
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ",";
        out += arr[i]->ToJson();
      }
      out += "]";
    }
  }
  return out + "}";
}

bool TreeObject::Equals(const TreeObject& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (const auto& [name, fv] : fields_) {
    auto it = other.fields_.find(name);
    if (it == other.fields_.end()) return false;
    const FieldValue& ofv = it->second;
    if (fv.index() != ofv.index()) return false;
    if (std::holds_alternative<sql::Value>(fv)) {
      if (!std::get<sql::Value>(fv).Equals(std::get<sql::Value>(ofv))) return false;
    } else if (std::holds_alternative<TreeObjectPtr>(fv)) {
      if (!std::get<TreeObjectPtr>(fv)->Equals(*std::get<TreeObjectPtr>(ofv))) {
        return false;
      }
    } else {
      const auto& a = std::get<std::vector<TreeObjectPtr>>(fv);
      const auto& b = std::get<std::vector<TreeObjectPtr>>(ofv);
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i]->Equals(*b[i])) return false;
      }
    }
  }
  return true;
}

size_t Delta::ByteSize() const {
  size_t n = 0;
  for (const auto& op : ops) n += op.path.size() + op.value.ByteSize() + 2;
  return n;
}

Status Delta::ApplyTo(TreeObject* obj) const {
  for (const auto& op : ops) {
    OFI_RETURN_NOT_OK(obj->SetPath(op.path, op.value));
  }
  return Status::OK();
}

FieldDef PrimitiveField(std::string name, sql::TypeId type,
                        sql::Value default_value) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kPrimitive;
  f.primitive_type = type;
  f.default_value = std::move(default_value);
  return f;
}

FieldDef RecordField(std::string name, RecordSchemaPtr schema) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kRecord;
  f.record = std::move(schema);
  return f;
}

FieldDef ArrayField(std::string name, RecordSchemaPtr element_schema) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kArray;
  f.record = std::move(element_schema);
  return f;
}

}  // namespace ofi::gmdb
