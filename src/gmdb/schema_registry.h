/// \file schema_registry.h
/// \brief Online schema evolution (paper §III-B). The registry holds every
/// registered version of an object schema and enforces GMDB's evolution
/// rules: fields may only be ADDED (at the end); deleting and re-ordering
/// fields are disallowed; primitive types may not change. Data nodes store
/// ONE copy of each object, and conversion happens on read: reading with a
/// newer schema = upgrade evolution (new fields filled with defaults),
/// reading with an older schema = downgrade evolution (trailing fields
/// dropped). Conversion is only defined between ADJACENT registered
/// versions — the Fig. 8 matrix (U/D on the adjacent diagonals, X
/// elsewhere).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "gmdb/tree_object.h"

namespace ofi::gmdb {

/// One cell of the Fig. 8 conversion matrix.
enum class ConversionKind : uint8_t {
  kIdentity,   // same version (the diagonal)
  kUpgrade,    // U: from -> the next registered version
  kDowngrade,  // D: from -> the previous registered version
  kUnsupported // X: any non-adjacent pair
};

/// \brief Versioned schemas for one object type plus the conversion engine.
class SchemaRegistry {
 public:
  /// Registers a new version. The first version of a name is accepted as-is;
  /// later versions are validated against the latest registered one:
  ///  * every existing field present, same position, same kind/type
  ///  * new fields appended at the end only
  ///  * primary key unchanged
  /// Violations return IncompatibleSchema.
  Status RegisterVersion(RecordSchemaPtr schema);

  Result<RecordSchemaPtr> Get(const std::string& name, int version) const;
  /// Latest registered version number for `name` (NotFound if none).
  Result<int> LatestVersion(const std::string& name) const;
  /// All registered version numbers, ascending.
  std::vector<int> Versions(const std::string& name) const;

  /// Fig. 8 cell for (from, to).
  ConversionKind Classify(const std::string& name, int from, int to) const;

  /// Converts `obj` (stored at version `from`) to version `to`.
  /// Only identity/adjacent conversions succeed; X cells return
  /// IncompatibleSchema. Upgrade fills added fields with their defaults
  /// (recursing into nested records and array elements); downgrade drops
  /// fields unknown to the older schema.
  Result<TreeObjectPtr> Convert(const std::string& name, const TreeObject& obj,
                                int from, int to) const;

  /// Renders the Fig. 8 upgrade/downgrade matrix for `name`.
  std::string MatrixToString(const std::string& name) const;

 private:
  static Status ValidateEvolution(const RecordSchema& older,
                                  const RecordSchema& newer,
                                  bool top_level = true);
  static TreeObjectPtr UpgradeObject(const TreeObject& obj,
                                     const RecordSchema& older,
                                     const RecordSchema& newer);
  static TreeObjectPtr DowngradeObject(const TreeObject& obj,
                                       const RecordSchema& newer,
                                       const RecordSchema& older);

  // name -> version -> schema (ordered by version).
  std::map<std::string, std::map<int, RecordSchemaPtr>> schemas_;
};

}  // namespace ofi::gmdb
