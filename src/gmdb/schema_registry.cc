#include "gmdb/schema_registry.h"

namespace ofi::gmdb {

Status SchemaRegistry::ValidateEvolution(const RecordSchema& older,
                                         const RecordSchema& newer,
                                         bool top_level) {
  // Only the top-level object version must strictly increase; nested record
  // schemas commonly stay at their own version across outer versions.
  if (top_level && newer.version <= older.version) {
    return Status::IncompatibleSchema("version must increase: " +
                                      std::to_string(newer.version));
  }
  if (newer.primary_key != older.primary_key) {
    return Status::IncompatibleSchema("primary key may not change");
  }
  if (newer.fields.size() < older.fields.size()) {
    return Status::IncompatibleSchema("deleting fields is not allowed");
  }
  for (size_t i = 0; i < older.fields.size(); ++i) {
    const FieldDef& of = older.fields[i];
    const FieldDef& nf = newer.fields[i];
    if (of.name != nf.name) {
      // Either re-ordered or deleted-and-replaced; both are disallowed.
      if (newer.Field(of.name) != nullptr) {
        return Status::IncompatibleSchema("re-ordering fields is not allowed: " +
                                          of.name);
      }
      return Status::IncompatibleSchema("deleting fields is not allowed: " +
                                        of.name);
    }
    if (of.kind != nf.kind) {
      return Status::IncompatibleSchema("field kind may not change: " + of.name);
    }
    if (of.kind == FieldKind::kPrimitive && of.primitive_type != nf.primitive_type) {
      return Status::IncompatibleSchema("field type may not change: " + of.name);
    }
    if (of.kind != FieldKind::kPrimitive) {
      OFI_RETURN_NOT_OK(ValidateEvolution(*of.record, *nf.record,
                                          /*top_level=*/false));
    }
  }
  return Status::OK();
}

Status SchemaRegistry::RegisterVersion(RecordSchemaPtr schema) {
  if (!schema) return Status::InvalidArgument("null schema");
  auto& versions = schemas_[schema->name];
  if (!versions.empty()) {
    const RecordSchemaPtr& latest = versions.rbegin()->second;
    OFI_RETURN_NOT_OK(ValidateEvolution(*latest, *schema));
  } else if (schema->primary_key.empty() ||
             schema->Field(schema->primary_key) == nullptr) {
    return Status::InvalidArgument("schema needs a valid primary key field");
  }
  if (versions.count(schema->version)) {
    return Status::AlreadyExists("version already registered");
  }
  versions[schema->version] = std::move(schema);
  return Status::OK();
}

Result<RecordSchemaPtr> SchemaRegistry::Get(const std::string& name,
                                            int version) const {
  auto nit = schemas_.find(name);
  if (nit == schemas_.end()) return Status::NotFound("no schema: " + name);
  auto vit = nit->second.find(version);
  if (vit == nit->second.end()) {
    return Status::NotFound("no version " + std::to_string(version) + " of " + name);
  }
  return vit->second;
}

Result<int> SchemaRegistry::LatestVersion(const std::string& name) const {
  auto nit = schemas_.find(name);
  if (nit == schemas_.end() || nit->second.empty()) {
    return Status::NotFound("no schema: " + name);
  }
  return nit->second.rbegin()->first;
}

std::vector<int> SchemaRegistry::Versions(const std::string& name) const {
  std::vector<int> out;
  auto nit = schemas_.find(name);
  if (nit == schemas_.end()) return out;
  for (const auto& [v, s] : nit->second) out.push_back(v);
  return out;
}

ConversionKind SchemaRegistry::Classify(const std::string& name, int from,
                                        int to) const {
  if (from == to) return ConversionKind::kIdentity;
  std::vector<int> versions = Versions(name);
  int from_idx = -1, to_idx = -1;
  for (size_t i = 0; i < versions.size(); ++i) {
    if (versions[i] == from) from_idx = static_cast<int>(i);
    if (versions[i] == to) to_idx = static_cast<int>(i);
  }
  if (from_idx < 0 || to_idx < 0) return ConversionKind::kUnsupported;
  if (to_idx == from_idx + 1) return ConversionKind::kUpgrade;
  if (to_idx == from_idx - 1) return ConversionKind::kDowngrade;
  return ConversionKind::kUnsupported;
}

TreeObjectPtr SchemaRegistry::UpgradeObject(const TreeObject& obj,
                                            const RecordSchema& older,
                                            const RecordSchema& newer) {
  auto out = std::make_shared<TreeObject>();
  for (size_t i = 0; i < newer.fields.size(); ++i) {
    const FieldDef& nf = newer.fields[i];
    bool existed = i < older.fields.size();
    if (!existed || !obj.Has(nf.name)) {
      // Added field: default value / empty record / empty array.
      switch (nf.kind) {
        case FieldKind::kPrimitive: out->Set(nf.name, nf.default_value); break;
        case FieldKind::kRecord: out->Set(nf.name, TreeObject::Defaults(*nf.record)); break;
        case FieldKind::kArray: out->Set(nf.name, std::vector<TreeObjectPtr>{}); break;
      }
      continue;
    }
    const FieldValue& fv = **obj.Get(nf.name);
    const FieldDef& of = older.fields[i];
    switch (nf.kind) {
      case FieldKind::kPrimitive:
        out->Set(nf.name, std::get<sql::Value>(fv));
        break;
      case FieldKind::kRecord:
        out->Set(nf.name,
                 UpgradeObject(*std::get<TreeObjectPtr>(fv), *of.record, *nf.record));
        break;
      case FieldKind::kArray: {
        std::vector<TreeObjectPtr> arr;
        for (const auto& e : std::get<std::vector<TreeObjectPtr>>(fv)) {
          arr.push_back(UpgradeObject(*e, *of.record, *nf.record));
        }
        out->Set(nf.name, std::move(arr));
        break;
      }
    }
  }
  return out;
}

TreeObjectPtr SchemaRegistry::DowngradeObject(const TreeObject& obj,
                                              const RecordSchema& newer,
                                              const RecordSchema& older) {
  auto out = std::make_shared<TreeObject>();
  for (size_t i = 0; i < older.fields.size(); ++i) {
    const FieldDef& of = older.fields[i];
    if (!obj.Has(of.name)) {
      if (of.kind == FieldKind::kPrimitive) out->Set(of.name, of.default_value);
      continue;
    }
    const FieldValue& fv = **obj.Get(of.name);
    const FieldDef& nf = newer.fields[i];
    switch (of.kind) {
      case FieldKind::kPrimitive:
        out->Set(of.name, std::get<sql::Value>(fv));
        break;
      case FieldKind::kRecord:
        out->Set(of.name, DowngradeObject(*std::get<TreeObjectPtr>(fv), *nf.record,
                                          *of.record));
        break;
      case FieldKind::kArray: {
        std::vector<TreeObjectPtr> arr;
        for (const auto& e : std::get<std::vector<TreeObjectPtr>>(fv)) {
          arr.push_back(DowngradeObject(*e, *nf.record, *of.record));
        }
        out->Set(of.name, std::move(arr));
        break;
      }
    }
  }
  return out;
}

Result<TreeObjectPtr> SchemaRegistry::Convert(const std::string& name,
                                              const TreeObject& obj, int from,
                                              int to) const {
  switch (Classify(name, from, to)) {
    case ConversionKind::kIdentity:
      return obj.Clone();
    case ConversionKind::kUpgrade: {
      OFI_ASSIGN_OR_RETURN(RecordSchemaPtr older, Get(name, from));
      OFI_ASSIGN_OR_RETURN(RecordSchemaPtr newer, Get(name, to));
      return UpgradeObject(obj, *older, *newer);
    }
    case ConversionKind::kDowngrade: {
      OFI_ASSIGN_OR_RETURN(RecordSchemaPtr newer, Get(name, from));
      OFI_ASSIGN_OR_RETURN(RecordSchemaPtr older, Get(name, to));
      return DowngradeObject(obj, *newer, *older);
    }
    case ConversionKind::kUnsupported:
      return Status::IncompatibleSchema(
          "no conversion path V" + std::to_string(from) + " -> V" +
          std::to_string(to) + " (only adjacent versions convert)");
  }
  return Status::Internal("unreachable");
}

std::string SchemaRegistry::MatrixToString(const std::string& name) const {
  std::vector<int> versions = Versions(name);
  std::string out = name + ":";
  for (int v : versions) out += "\tV" + std::to_string(v);
  out += "\n";
  int upgrade_id = 1, downgrade_id = 1;
  for (int from : versions) {
    out += "V" + std::to_string(from);
    for (int to : versions) {
      out += "\t";
      switch (Classify(name, from, to)) {
        case ConversionKind::kIdentity: out += "-"; break;
        case ConversionKind::kUpgrade:
          out += "U" + std::to_string(upgrade_id++) + "(" + std::to_string(from) +
                 "->" + std::to_string(to) + ")";
          break;
        case ConversionKind::kDowngrade:
          out += "D" + std::to_string(downgrade_id++) + "(" + std::to_string(from) +
                 "->" + std::to_string(to) + ")";
          break;
        case ConversionKind::kUnsupported: out += "X"; break;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ofi::gmdb
