/// \file cluster.h
/// \brief GMDB's distributed shape (paper Fig. 7): coordinator nodes own
/// global metadata (the schema registry — clients submit new schema
/// versions to the CN, which validates and dispatches them, Fig. 9), data
/// nodes store the objects, and clients talk to DNs directly with a local
/// cache in their own schema version.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gmdb/store.h"

namespace ofi::gmdb {

class GmdbCluster;

/// \brief A GMDB client (the "Driver" of Fig. 7): pinned to one schema
/// version, keeps a local object cache in that version, reads/writes
/// through deltas, and receives pub/sub updates into the cache.
class GmdbClient {
 public:
  /// \param version the schema version this application runs.
  GmdbClient(GmdbCluster* cluster, std::string type, int version)
      : cluster_(cluster), type_(std::move(type)), version_(version) {}
  ~GmdbClient();

  int version() const { return version_; }

  /// Creates an object (stored at this client's version) and caches it.
  Status Create(const std::string& key, TreeObjectPtr obj);

  /// Reads `key` in this client's schema version. Cache hit avoids the DN
  /// round trip; a miss fetches, converts, caches and subscribes.
  Result<TreeObjectPtr> Read(const std::string& key);

  /// Writes a delta: applied to the local cache AND shipped to the DN,
  /// which republishes it to other subscribers.
  Status Write(const std::string& key, const Delta& delta);

  /// Drops the cached copy (tests).
  void InvalidateCache(const std::string& key) { cache_.erase(key); }
  bool IsCached(const std::string& key) const { return cache_.count(key) > 0; }

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t notifications_received() const { return notifications_; }

 private:
  void OnChange(const std::string& key, const Delta& delta, int writer_version);

  GmdbCluster* cluster_;
  std::string type_;
  int version_;
  std::map<std::string, TreeObjectPtr> cache_;
  std::vector<std::pair<GmdbStore*, int>> subscriptions_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t notifications_ = 0;
};

/// \brief The cluster: schema registry at the CN + hash-sharded DNs.
class GmdbCluster {
 public:
  explicit GmdbCluster(int num_dns);

  // Data nodes hold a pointer into registry_; the cluster must stay put.
  GmdbCluster(const GmdbCluster&) = delete;
  GmdbCluster& operator=(const GmdbCluster&) = delete;
  GmdbCluster(GmdbCluster&&) = delete;
  GmdbCluster& operator=(GmdbCluster&&) = delete;

  /// CN path (Fig. 9): validates the schema version and dispatches it.
  Status SubmitSchema(RecordSchemaPtr schema);

  const SchemaRegistry& registry() const { return registry_; }
  SchemaRegistry& mutable_registry() { return registry_; }

  GmdbStore* ShardFor(const std::string& key);
  GmdbStore* dn(int i) { return dns_[i].get(); }
  int num_dns() const { return static_cast<int>(dns_.size()); }

  /// Creates a client pinned to `version` of `type`.
  GmdbClient MakeClient(const std::string& type, int version) {
    return GmdbClient(this, type, version);
  }

 private:
  SchemaRegistry registry_;
  std::vector<std::unique_ptr<GmdbStore>> dns_;
};

}  // namespace ofi::gmdb
