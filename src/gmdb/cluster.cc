#include "gmdb/cluster.h"

namespace ofi::gmdb {

GmdbCluster::GmdbCluster(int num_dns) {
  for (int i = 0; i < num_dns; ++i) {
    dns_.push_back(std::make_unique<GmdbStore>(&registry_));
  }
}

Status GmdbCluster::SubmitSchema(RecordSchemaPtr schema) {
  // Fig. 9: CN validates S, then dispatches to DNs. Our DNs share the
  // registry pointer, so registration IS the dispatch.
  return registry_.RegisterVersion(std::move(schema));
}

GmdbStore* GmdbCluster::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return dns_[h % dns_.size()].get();
}

GmdbClient::~GmdbClient() {
  for (auto& [store, id] : subscriptions_) store->Unsubscribe(id);
}

Status GmdbClient::Create(const std::string& key, TreeObjectPtr obj) {
  GmdbStore* dn = cluster_->ShardFor(key);
  OFI_RETURN_NOT_OK(dn->Put(type_, key, obj->Clone(), version_));
  cache_[key] = std::move(obj);
  int id = dn->Subscribe(type_, key, version_,
                         [this](const std::string& k, const Delta& d, int v) {
                           OnChange(k, d, v);
                         });
  subscriptions_.emplace_back(dn, id);
  return Status::OK();
}

Result<TreeObjectPtr> GmdbClient::Read(const std::string& key) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  GmdbStore* dn = cluster_->ShardFor(key);
  OFI_ASSIGN_OR_RETURN(TreeObjectPtr obj, dn->Get(type_, key, version_));
  cache_[key] = obj;
  int id = dn->Subscribe(type_, key, version_,
                         [this](const std::string& k, const Delta& d, int v) {
                           OnChange(k, d, v);
                         });
  subscriptions_.emplace_back(dn, id);
  return obj;
}

Status GmdbClient::Write(const std::string& key, const Delta& delta) {
  GmdbStore* dn = cluster_->ShardFor(key);
  OFI_RETURN_NOT_OK(dn->ApplyDelta(type_, key, delta, version_));
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    OFI_RETURN_NOT_OK(delta.ApplyTo(it->second.get()));
  }
  return Status::OK();
}

void GmdbClient::OnChange(const std::string& key, const Delta& delta,
                          int writer_version) {
  ++notifications_;
  auto it = cache_.find(key);
  if (it == cache_.end()) return;
  // Apply ops whose paths exist in this client's schema version; ops on
  // fields this version does not know are skipped (they reappear if the
  // client upgrades and re-reads).
  for (const auto& op : delta.ops) {
    (void)it->second->SetPath(op.path, op.value);
  }
}

}  // namespace ofi::gmdb
