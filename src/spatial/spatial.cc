#include "spatial/spatial.h"

#include <algorithm>
#include <cmath>

namespace ofi::spatial {

double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

GridIndex::CellKey GridIndex::CellFor(const Point& p) const {
  return {static_cast<int64_t>(std::floor(p.x / cell_size_)),
          static_cast<int64_t>(std::floor(p.y / cell_size_))};
}

void GridIndex::Insert(int64_t id, Point p) {
  points_[id] = p;
  cells_[CellFor(p)].push_back(id);
}

Status GridIndex::Remove(int64_t id) {
  auto it = points_.find(id);
  if (it == points_.end()) return Status::NotFound("no point " + std::to_string(id));
  auto& cell = cells_[CellFor(it->second)];
  cell.erase(std::remove(cell.begin(), cell.end(), id), cell.end());
  points_.erase(it);
  return Status::OK();
}

void GridIndex::Upsert(int64_t id, Point p) {
  (void)Remove(id);
  Insert(id, p);
}

Result<Point> GridIndex::Get(int64_t id) const {
  auto it = points_.find(id);
  if (it == points_.end()) return Status::NotFound("no point " + std::to_string(id));
  return it->second;
}

std::vector<int64_t> GridIndex::QueryBox(const BoundingBox& box) const {
  std::vector<int64_t> out;
  int64_t cx0 = static_cast<int64_t>(std::floor(box.min_x / cell_size_));
  int64_t cx1 = static_cast<int64_t>(std::floor(box.max_x / cell_size_));
  int64_t cy0 = static_cast<int64_t>(std::floor(box.min_y / cell_size_));
  int64_t cy1 = static_cast<int64_t>(std::floor(box.max_y / cell_size_));
  for (int64_t cx = cx0; cx <= cx1; ++cx) {
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find({cx, cy});
      if (it == cells_.end()) continue;
      for (int64_t id : it->second) {
        if (box.Contains(points_.at(id))) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> GridIndex::QueryRadius(const Point& center,
                                            double radius) const {
  BoundingBox box{center.x - radius, center.y - radius, center.x + radius,
                  center.y + radius};
  std::vector<int64_t> out;
  for (int64_t id : QueryBox(box)) {
    if (DistanceSquared(points_.at(id), center) <= radius * radius) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<int64_t> GridIndex::Nearest(const Point& center, size_t k) const {
  if (points_.empty() || k == 0) return {};
  // Expanding ring search: widen the radius until >= k candidates, then sort.
  double radius = cell_size_;
  std::vector<int64_t> candidates;
  while (candidates.size() < k && candidates.size() < points_.size()) {
    candidates = QueryRadius(center, radius);
    radius *= 2;
    if (radius > 1e12) break;  // degenerate coordinates guard
  }
  if (candidates.size() < k) {
    candidates.clear();
    for (const auto& [id, p] : points_) candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end(), [&](int64_t a, int64_t b) {
    double da = DistanceSquared(points_.at(a), center);
    double db = DistanceSquared(points_.at(b), center);
    return da != db ? da < db : a < b;
  });
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

void SpatioTemporalIndex::Insert(int64_t id, Point p, int64_t ts) {
  int64_t obs_idx = static_cast<int64_t>(observations_.size());
  observations_.push_back(Observation{id, p, ts});
  grid_.Insert(obs_idx, p);
}

std::vector<int64_t> SpatioTemporalIndex::QueryBoxTime(const BoundingBox& box,
                                                       int64_t from,
                                                       int64_t to) const {
  std::vector<int64_t> out;
  for (int64_t obs_idx : grid_.QueryBox(box)) {
    const Observation& o = observations_[obs_idx];
    if (o.ts >= from && o.ts < to) out.push_back(obs_idx);
  }
  return out;
}

sql::Table SpatioTemporalIndex::QueryBoxTimeTable(const BoundingBox& box,
                                                  int64_t from, int64_t to) const {
  sql::Table t{sql::Schema({{"obs", sql::TypeId::kInt64, ""},
                            {"object_id", sql::TypeId::kInt64, ""},
                            {"x", sql::TypeId::kDouble, ""},
                            {"y", sql::TypeId::kDouble, ""},
                            {"time", sql::TypeId::kTimestamp, ""}})};
  for (int64_t obs_idx : QueryBoxTime(box, from, to)) {
    const Observation& o = observations_[obs_idx];
    t.mutable_rows().push_back({sql::Value(obs_idx), sql::Value(o.object_id),
                                sql::Value(o.p.x), sql::Value(o.p.y),
                                sql::Value::Timestamp(o.ts)});
  }
  return t;
}

}  // namespace ofi::spatial
