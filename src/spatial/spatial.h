/// \file spatial.h
/// \brief The spatial runtime engine (paper §II-B): 2-D points under a
/// uniform grid index with bounding-box, radius and k-nearest-neighbour
/// queries, plus a spatio-temporal index (point + timestamp) supporting the
/// "spatial-temporal synthesized processing" requirement.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sql/table.h"

namespace ofi::spatial {

/// A 2-D point (planar coordinates; callers pick the projection).
struct Point {
  double x = 0;
  double y = 0;
};

/// Axis-aligned bounding box (inclusive).
struct BoundingBox {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Intersects(const BoundingBox& o) const {
    return min_x <= o.max_x && max_x >= o.min_x && min_y <= o.max_y &&
           max_y >= o.min_y;
  }
};

double DistanceSquared(const Point& a, const Point& b);
double Distance(const Point& a, const Point& b);

/// \brief A uniform grid index over (id, point) entries.
class GridIndex {
 public:
  /// \param cell_size side length of a grid cell (in coordinate units).
  explicit GridIndex(double cell_size = 1.0) : cell_size_(cell_size) {}

  void Insert(int64_t id, Point p);
  /// Removes one entry; NotFound if absent.
  Status Remove(int64_t id);
  /// Moves an existing entry (upsert semantics).
  void Upsert(int64_t id, Point p);
  Result<Point> Get(int64_t id) const;

  /// Ids inside the box.
  std::vector<int64_t> QueryBox(const BoundingBox& box) const;
  /// Ids within `radius` of `center`.
  std::vector<int64_t> QueryRadius(const Point& center, double radius) const;
  /// The k nearest ids to `center` (expanding ring search over the grid).
  std::vector<int64_t> Nearest(const Point& center, size_t k) const;

  size_t size() const { return points_.size(); }

 private:
  using CellKey = std::pair<int64_t, int64_t>;
  struct CellHash {
    size_t operator()(const CellKey& c) const {
      return std::hash<int64_t>{}(c.first) * 1099511628211ULL ^
             std::hash<int64_t>{}(c.second);
    }
  };

  CellKey CellFor(const Point& p) const;

  double cell_size_;
  std::unordered_map<int64_t, Point> points_;
  std::unordered_map<CellKey, std::vector<int64_t>, CellHash> cells_;
};

/// \brief Spatio-temporal entries: (id, point, timestamp). Supports the
/// combined "where were these objects between t1 and t2 inside this box"
/// query that autonomous-vehicle analytics need (§II-B1).
class SpatioTemporalIndex {
 public:
  explicit SpatioTemporalIndex(double cell_size = 1.0) : grid_(cell_size) {}

  void Insert(int64_t id, Point p, int64_t ts);

  /// Observation ids in `box` with from <= ts < to.
  std::vector<int64_t> QueryBoxTime(const BoundingBox& box, int64_t from,
                                    int64_t to) const;

  /// Materializes matching observations as (id, object_id, x, y, time).
  sql::Table QueryBoxTimeTable(const BoundingBox& box, int64_t from,
                               int64_t to) const;

  size_t size() const { return observations_.size(); }

 private:
  struct Observation {
    int64_t object_id;
    Point p;
    int64_t ts;
  };
  GridIndex grid_;  // keyed by observation index
  std::vector<Observation> observations_;
};

}  // namespace ofi::spatial
