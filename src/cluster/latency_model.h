/// \file latency_model.h
/// \brief Simulated cost parameters for the MPP cluster. The absolute
/// values are loosely calibrated to a LAN (tens of microseconds per hop);
/// what matters for reproducing Fig. 3 is the *structure*: GTM requests are
/// serialized through one resource, data-node work is serialized per DN, so
/// the protocol that skips the GTM scales with the DN count and the one
/// that does not saturates at 1/gtm_service_us.
#pragma once

#include "common/sim_clock.h"

namespace ofi::cluster {

struct LatencyModel {
  /// One-way network hop CN<->DN or CN<->GTM.
  SimTime network_hop_us = 25;
  /// Serialized GTM critical section per request (gxid+snapshot or commit).
  SimTime gtm_service_us = 12;
  /// Serialized DN work per read/write statement.
  SimTime dn_stmt_service_us = 40;
  /// Serialized DN work per prepare/commit/abort message.
  SimTime dn_commit_service_us = 15;
  /// Serialized DN work to force the commit log durable (one fsync). An
  /// order of magnitude above an in-memory statement, like a fast NVMe
  /// fsync next to a buffer-pool op. Charged once per prepare/commit-apply
  /// message in per-commit mode; group commit charges it once per *flush*,
  /// which is the whole amortization the batched window buys.
  SimTime log_write_service_us = 120;
  /// Marginal serialized DN work per ADDITIONAL prepare/commit record
  /// carried by one batched 2PC message (the first record pays
  /// dn_commit_service_us). Decoding a record is cheap next to the fsync
  /// and the round trip, which is why batching wins.
  SimTime dn_batch_record_service_us = 3;
  /// Delay between the GTM marking a txn committed and the commit
  /// confirmation landing on a DN — the Anomaly1 window (paper §II-A2).
  SimTime commit_confirm_delay_us = 30;
  /// CN-side work to receive and merge ONE gathered partial-aggregate state
  /// during MPP scatter-gather. The parallel scatter completes at
  /// max-over-DNs + num_partials x this (the only per-DN *linear* term left
  /// on the critical path; it is small because partial state is group-sized,
  /// not row-sized).
  SimTime cn_gather_service_us = 5;
  /// Serialized DN work to encode or decode one exchange batch (shuffle /
  /// broadcast framing overhead, see cluster/exchange).
  SimTime exchange_batch_service_us = 4;
  /// Serialized DN (or CN, on gather) work per KiB of exchange payload. The
  /// per-byte term is what makes bytes-moved the planning currency: the
  /// broadcast-vs-repartition choice trades exactly this cost.
  SimTime exchange_kb_service_us = 2;
  /// Serialized DN work per KiB written to an exchange spill file when a
  /// capped channel overflows its in-memory window (sequential append).
  SimTime spill_write_kb_service_us = 6;
  /// Serialized DN work per KiB read back from a spill file on the receive
  /// path. Write + read together are what a spilled byte costs over a
  /// resident one — spilling trades latency for completing at all.
  SimTime spill_read_kb_service_us = 4;
  /// Serialized DN work to start one columnar partial scan (kernel setup,
  /// zone-map consultation). Much cheaper than dn_stmt_service_us because
  /// no row heap is walked.
  SimTime columnar_stmt_service_us = 10;
  /// Serialized DN work per column chunk actually scanned. Chunks pruned by
  /// zone maps are free — pruning shows up directly in sim_latency_us.
  SimTime columnar_chunk_service_us = 3;
  /// Serialized DN work per 256 delta-tail records a columnar scan examines
  /// (row-format pass unioned with the sealed kernels). Noticeably pricier
  /// per row than sealed chunks — the incentive to merge.
  SimTime columnar_delta_block_service_us = 2;
  /// Serialized DN work per 256 delta-tail records a merge folds or drops
  /// (classification + re-encode amortized). Charged when the merge runs,
  /// off the query critical path for background merges.
  SimTime columnar_merge_block_service_us = 4;
  /// Serialized DN work per 256 heap rows a full row-path scan examines
  /// (version-chain walk + visibility checks + predicate evaluation,
  /// ~47ns/row). Scan cost scales with shard size — the baseline an index
  /// probe beats; at the 4096-rows-per-shard seed scale the gap is >5x.
  SimTime row_scan_block_service_us = 12;
  /// Serialized DN work to open one secondary-index probe (bucket lookup +
  /// posting visibility checks). Far below dn_stmt_service_us: no heap walk,
  /// a handful of postings touched.
  SimTime index_probe_service_us = 6;
  /// Serialized DN work per row an index probe returns (posting copy-out).
  SimTime index_row_service_us = 1;
};

}  // namespace ofi::cluster
