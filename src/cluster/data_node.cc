#include "cluster/data_node.h"

namespace ofi::cluster {

Status DataNode::CreateTable(const std::string& name, const sql::Schema& schema) {
  if (tables_.count(name)) return Status::AlreadyExists("table exists: " + name);
  tables_[name] = std::make_unique<storage::MvccTable>(schema);
  return Status::OK();
}

Result<storage::MvccTable*> DataNode::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("dn" + std::to_string(id_) + ": no table " + name);
  }
  return it->second.get();
}

void DataNode::BeginExternal(txn::Xid xid) { txn_mgr_.BeginExternal(xid); }

txn::TxnState DataNode::FinishPendingCommit(txn::Xid xid) {
  for (auto it = pending_commits_.begin(); it != pending_commits_.end(); ++it) {
    if (it->xid == xid) {
      txn::Gxid gxid = it->gxid;
      pending_commits_.erase(it);
      txn_mgr_.Commit(xid, gxid);
      return txn::TxnState::kCommitted;
    }
  }
  return txn_mgr_.clog().State(xid);
}

int DataNode::RecoverInDoubt(const txn::Gtm& gtm) {
  int resolved = 0;
  for (const auto& [xid, gxid] : txn_mgr_.clog().PreparedXids()) {
    if (gxid == txn::kNoGxid) continue;  // not a 2PC participant
    if (gtm.IsCommitted(gxid)) {
      // Clear any still-queued confirmation, then commit.
      (void)FinishPendingCommit(xid);
      (void)txn_mgr_.Commit(xid, gxid);
      ++resolved;
    } else if (gtm.IsAborted(gxid)) {
      for (auto& [name, table] : tables_) table->RollbackXid(xid);
      (void)txn_mgr_.Abort(xid);
      ++resolved;
    }
    // Still in progress globally: stay prepared.
  }
  return resolved;
}

void DataNode::DeliverAllPendingCommits() {
  while (!pending_commits_.empty()) {
    PendingCommit pc = pending_commits_.front();
    pending_commits_.pop_front();
    txn_mgr_.Commit(pc.xid, pc.gxid);
  }
}

}  // namespace ofi::cluster
