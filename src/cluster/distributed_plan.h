/// \file distributed_plan.h
/// \brief The distributed physical-operator layer (paper Fig. 1: the CN
/// "plans SQL and executes it across data nodes"). What used to be two
/// monolithic entry points (DistributedAggregate / DistributedJoin in
/// mpp_query.cc) is decomposed into composable physical operators:
///
///   DistScan       per-DN shard scan (row store or columnar kernels) with
///                  the filter pushed below any data movement
///   DistExchange   shuffle / broadcast annotation on a join input (the
///                  data movement itself is executed cooperatively by the
///                  consuming join, because both relations' traffic shares
///                  each DN's serialized resource in one exchange step)
///   DistHashJoin   per-DN src/sql hash join over local + exchanged rows
///   DistPartialAgg per-DN partial aggregation, fused into its child
///                  fragment's statement (scan+agg or join+agg is one
///                  statement on the DN, matching the monolith's accounting)
///   Gather         CN-side union of per-DN partials in DN order
///   DistFinalAgg   CN-side final aggregation (COUNT->sum of counts,
///                  AVG->sum/count division) over the gathered partials
///
/// Each operator carries its own data-movement and max-over-DNs simulated
/// latency accounting; executing the tree a shim builds reproduces the old
/// DistributedResult / DistributedJoinResult numbers bit-identically (the
/// SimScheduler's gap-fitting Charge is order-independent across distinct
/// resources, so the per-DN arrival chaining is the only thing that
/// matters, and the fragment executor preserves it: prepare -> scan
/// stmt(s) -> exchange -> join stmt per DN).
///
/// On top sits a lowering pass (LowerSelectPlan) from the sql::PlanSelect
/// logical plan to a distributed physical plan — columnar vs row scan from
/// Cluster columnar registration + filter recognizability, broadcast vs
/// repartition from StatsRegistry::EstimatedBytes — with a clean
/// single-node fallback (outer joins, set ops, expressions the cluster
/// cannot run). Plan nodes above the distributable core (Project / Sort /
/// Limit / HAVING filters) are re-executed CN-side on the gathered result.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/mpp_query.h"
#include "sql/plan.h"

namespace ofi::cluster {

enum class DistOpKind : uint8_t {
  kDistScan,
  kDistIndexScan,
  kDistExchange,
  kDistHashJoin,
  kDistPartialAgg,
  kDistFinalAgg,
  kGather,
};

/// Planner's scan-path choice. kColumnar means "serve from the columnar
/// copy where possible": the executor still re-checks filter
/// recognizability and per-shard freshness at run time and falls back to
/// the row store per shard (results are identical either way).
enum class ScanPath : uint8_t { kRow, kColumnar };

/// Data-movement annotation on a join input. kNone = the relation stays
/// put (the other side broadcasts). Executed by the consuming join.
enum class ExchangeMode : uint8_t { kNone, kBroadcast, kShuffle };

struct DistOp;
using DistOpPtr = std::shared_ptr<DistOp>;

/// \brief One node of a distributed physical plan.
struct DistOp {
  DistOpKind kind = DistOpKind::kDistScan;
  std::vector<DistOpPtr> children;

  // kDistScan
  std::string table;
  sql::ExprPtr filter;  // pushed below the exchange; owned by this plan
  ScanPath path = ScanPath::kRow;

  // kDistIndexScan — replaces a kDistScan when LowerSelectPlan finds an
  // equality (or, on an ordered index, range) conjunct binding an indexed
  // column and ANALYZE stats predict fewer matching rows than the scan
  // crossover. The FULL original predicate rides along in `filter` as the
  // residual, so results are bit-identical to the scan it replaces.
  std::string index_column;  // qualified name the index was created on
  size_t index_col = 0;      // its resolved position in the shard schema
  bool probe_is_range = false;
  sql::Value probe_eq;             // equality probe key
  sql::Value probe_lo, probe_hi;   // inclusive range bounds (ordered index)
  /// >= 0: the equality key is the shard key (schema column 0), so only
  /// this shard can hold matches — the executor routes to that one DN
  /// under a single-shard snapshot. -1 = probe every serving DN.
  int probe_shard = -1;
  /// ANALYZE-estimated matching rows across the table; -1 = no stats.
  double est_rows = -1;

  // kDistExchange
  ExchangeMode mode = ExchangeMode::kNone;
  std::string partition_key;  // shuffle only

  // kDistHashJoin
  std::string left_key, right_key;
  sql::ExprPtr residual;  // evaluated on the joined row
  /// kAuto = resolve at execution from stats (or actual scanned bytes).
  JoinStrategy strategy = JoinStrategy::kAuto;

  // kDistPartialAgg / kDistFinalAgg
  std::vector<std::string> group_by;
  std::vector<DistributedAgg> aggs;

  // kGather
  /// True when row-shaped state (join/scan output) is gathered: the CN
  /// pays a size-aware receive on top of the per-partial merge cost.
  bool gather_rows = false;

  /// Planner-estimated relation bytes (EXPLAIN); -1 = not estimated.
  double est_bytes = -1;

  /// kDistScan: the lowered execution flavor for EXPLAIN, e.g.
  /// "columnar(grouped-kernel)", "columnar(materialize:agg)" or
  /// "row(filter not recognized)". Empty = nothing noteworthy (plain row
  /// scan of a table with no columnar copy). Predictive — the executor
  /// still re-checks per shard and may fall back (see DistExecStats::per_dn
  /// for what actually ran).
  std::string scan_detail;

  /// Physical-tree rendering for EXPLAIN (same indent style as
  /// sql::PlanNode::ToString).
  std::string ToString(int indent = 0) const;
};

// --- Builder helpers ---------------------------------------------------------
DistOpPtr MakeDistScan(std::string table, sql::ExprPtr filter,
                       ScanPath path = ScanPath::kRow);
DistOpPtr MakeDistIndexScan(std::string table, sql::ExprPtr filter,
                            std::string index_column, size_t index_col);
DistOpPtr MakeDistExchange(DistOpPtr child, ExchangeMode mode,
                           std::string partition_key = "");
DistOpPtr MakeDistHashJoin(DistOpPtr left, DistOpPtr right,
                           std::string left_key, std::string right_key,
                           sql::ExprPtr residual,
                           JoinStrategy strategy = JoinStrategy::kAuto);
DistOpPtr MakeDistPartialAgg(DistOpPtr child,
                             std::vector<std::string> group_by,
                             std::vector<DistributedAgg> aggs);
DistOpPtr MakeDistFinalAgg(DistOpPtr child, std::vector<std::string> group_by,
                           std::vector<DistributedAgg> aggs);
DistOpPtr MakeGather(DistOpPtr child, bool gather_rows);

// --- Execution ---------------------------------------------------------------

/// Knobs for executing a distributed physical plan (the union of the old
/// DistributedOptions and DistributedJoinOptions knobs).
struct DistExecOptions {
  bool parallel = true;
  /// Let LowerSelectPlan choose a DistIndexScan when a predicate binds an
  /// indexed column and stats predict it is cheaper than the scan. Off =
  /// always scan (the sql_shell --no-index escape hatch); execution of an
  /// already-lowered index plan is unaffected.
  bool use_index = true;
  common::ThreadPool* pool = nullptr;
  bool use_columnar = true;
  /// Morsel-parallel columnar shard scans. Only valid with parallel ==
  /// false (pool workers must not nest ParallelFor); the combination with
  /// parallel == true is rejected with InvalidArgument.
  bool columnar_morsel_parallel = false;
  size_t batch_rows = 64;
  /// Per-exchange-channel in-memory queued-byte cap; 0 = unbounded. A Send
  /// over the cap transparently spills the batch to a per-channel temp file
  /// (results stay bit-identical, the query just pays spill I/O in
  /// simulated time); the old fail-with-ResourceExhausted behavior is kept
  /// behind strict_channel_limit (see exchange.h).
  size_t max_channel_bytes = 0;
  /// Opt-in hard admission control: deny over-cap sends with
  /// ResourceExhausted instead of spilling (counted in
  /// exchange.bytes_denied, never exchange.bytes_spilled).
  bool strict_channel_limit = false;
  /// Directory for exchange/build spill segment files; empty = the system
  /// temp directory. Segments are deleted as they are consumed and always
  /// by the time the query returns, success or failure.
  std::string spill_dir;
  /// Cap on this query's total live on-disk spill bytes across every
  /// exchange channel and join build side; 0 = unbounded. Exhausting it is
  /// the one remaining overflow failure mode (ResourceExhausted).
  size_t max_spill_bytes = 0;
  /// Per-DN cap on the in-memory hash-join build partition; a build side
  /// exceeding it is spooled through a spill channel and re-read at build
  /// time (bit-identical, charged as spill I/O). 0 = never spill the build.
  size_t max_build_bytes = 0;
  /// Stats for the kAuto broadcast-vs-repartition decision; null falls
  /// back to actual scanned encoded sizes.
  const optimizer::StatsRegistry* stats = nullptr;
  /// Forced join strategy; kAuto defers to the plan node, then to cost.
  JoinStrategy strategy_override = JoinStrategy::kAuto;
  /// Opt-in: rebuild stale columnar shards (Cluster::RefreshColumnar)
  /// before a plan with columnar scans runs, so writes between queries do
  /// not silently demote shards to the row path. Rebuilt shards are counted
  /// by the `columnar.auto_refreshes` metric.
  bool auto_refresh_columnar = false;
  /// Bench/test knob: force the columnar materialize (Gather + row
  /// aggregate) path even when the fused aggregate is kernel-eligible —
  /// isolates kernel-vs-materialize cost on identical data and plans.
  bool columnar_force_materialize = false;
  /// Pipelined fragment execution: producers stream batches into the
  /// exchange as each partition fills (StreamingScatter) while consumers
  /// drain concurrently with blocking pops, so the join probe / final merge
  /// starts before the slowest producer finishes. Results are bit-identical
  /// to barrier execution; only simulated latency changes (per-batch
  /// overlap-aware accounting, see SimulatePipelinedExchange). Ignored —
  /// falls back to the barrier — under strict_channel_limit, whose
  /// deny-on-overflow outcome would otherwise depend on consumer timing.
  bool pipeline = false;
  /// Threads for the pipelined producer/consumer tasks; the executor always
  /// uses at least 2×(serving DNs) so every blocking consumer can coexist
  /// with every producer (fewer would deadlock until the pop deadline).
  /// 0 = exactly that minimum.
  int pipeline_workers = 0;
};

/// Accounting produced by one distributed plan execution — the union of
/// the DistributedResult and DistributedJoinResult number sets, filled in
/// by whichever operators ran.
struct DistExecStats {
  SimTime sim_latency_us = 0;
  SimTime sim_latency_serial_us = 0;
  int num_serving = 0;
  // Aggregate-path accounting.
  size_t partial_bytes = 0;
  size_t naive_bytes = 0;
  size_t columnar_shards = 0;
  storage::ScanStats scan_stats;
  /// What each DN actually did for each scanned table (`path` is the
  /// realized flavor, e.g. "columnar(grouped-kernel)" or "row(stale)") with
  /// that shard's scan counters — the per-DN breakdown of scan_stats.
  struct DnScanInfo {
    int dn = 0;
    std::string table;
    std::string path;
    storage::ScanStats stats;
  };
  std::vector<DnScanInfo> per_dn;
  // Join-path accounting.
  bool joined = false;
  JoinStrategy strategy = JoinStrategy::kBroadcast;
  bool broadcast_left = false;
  size_t shuffle_bytes = 0;
  size_t broadcast_bytes = 0;
  size_t result_bytes = 0;
  size_t exchange_batches = 0;
  /// Exchange payload spilled to temp files by capped channels (loopback
  /// included — the disk I/O is real even for the local partition).
  size_t spill_bytes = 0;
  size_t spill_segments = 0;
  /// Join build partitions spooled to disk under max_build_bytes, summed
  /// over DNs.
  size_t build_spill_bytes = 0;
  std::vector<exchange::ChannelStats> channels;
  // Pipelined-execution accounting (DistExecOptions::pipeline).
  /// True when the pipelined scheduler actually ran (pipeline requested and
  /// not voided by strict_channel_limit).
  bool pipelined = false;
  /// Batches consumers drained through the blocking pipelined path
  /// (loopback included).
  size_t batches_streamed = 0;
  /// Simulated consumer/producer overlap: summed over consumers (and the
  /// CN gather), the time spent decoding/merging before the last producer
  /// finished. 0 under barrier execution by construction.
  SimTime pipeline_overlap_us = 0;
};

struct DistPlanResult {
  sql::Table table;
  DistExecStats stats;
};

/// Executes a distributed physical plan on the cluster inside one
/// multi-shard snapshot. The root must be a Gather, optionally under a
/// DistFinalAgg. Replays the monolithic entry points' exact simulated
/// charge sequences, so a plan built by the DistributedAggregate /
/// DistributedJoin shims reproduces their historical numbers.
Result<DistPlanResult> ExecuteDistPlan(Cluster* cluster, const DistOpPtr& root,
                                       const DistExecOptions& options = {});

// --- Lowering (sql::PlanSelect logical plan -> distributed physical plan) ----

/// Outcome of trying to lower a logical plan. `root == nullptr` means the
/// shape cannot run distributed; `fallback_reason` says why. `cut` is the
/// logical node the distributed plan replaces and `cn_post` the ancestors
/// above it (outermost first) the CN re-executes over the gathered result;
/// both point into the logical tree passed in, which must outlive them.
struct DistLowering {
  DistOpPtr root;
  std::string fallback_reason;
  const sql::PlanNode* cut = nullptr;
  std::vector<const sql::PlanNode*> cn_post;

  bool ok() const { return root != nullptr; }
};

/// Lowers a planned SELECT onto the cluster. Distributable cores: a single
/// table scan, an inner equi-join of two table scans, or either under an
/// aggregate whose arguments are plain columns. Everything else (outer /
/// semi joins, multi-way joins, set ops / DISTINCT, aliased scans,
/// non-column aggregate arguments, predicates that do not bind against the
/// shard schemas) falls back single-node with a reason.
DistLowering LowerSelectPlan(const sql::PlanPtr& logical, Cluster* cluster,
                             const optimizer::StatsRegistry* stats,
                             const DistExecOptions& options = {});

/// Per-DN scan forecast for EXPLAIN: for every DistScan in the plan, one
/// line per serving DN with the predicted path (columnar fresh / stale /
/// row), the shard's chunk count and the zone-map pruning estimate for the
/// scan's recognized filter — computed from metadata only, nothing runs.
std::string ExplainScanPaths(Cluster* cluster, const DistOpPtr& root);

/// The nodes serving data, one entry per live serving node (after failover
/// the promoted backup hosts the failed primary's rows in its own MVCC
/// tables, so scanning each serving node once covers every shard once).
std::vector<int> ServingDns(Cluster* cluster);

const char* ToString(JoinStrategy s);
const char* ToString(ScanPath p);

}  // namespace ofi::cluster
