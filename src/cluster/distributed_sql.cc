#include "cluster/distributed_sql.h"

#include "sql/executor.h"

namespace ofi::cluster {

DistributedSqlSession::DistributedSqlSession(int num_dns, Protocol protocol)
    : cluster_(num_dns, protocol) {}

Result<sql::PlanPtr> DistributedSqlSession::PlanQuery(
    const sql::SelectStatement& stmt) {
  // The ordinary cost-based front-end plans against the CN mirror; the
  // cluster only enters the picture at lowering time.
  optimizer::Optimizer opt(&catalog_, &stats_, /*store=*/nullptr);
  sql::JoinPlanner join_planner =
      [&opt](std::vector<sql::PlannedScan> scans,
             std::vector<sql::ExprPtr> preds) -> Result<sql::PlanPtr> {
    std::vector<optimizer::ScanSpec> specs;
    specs.reserve(scans.size());
    for (auto& s : scans) {
      specs.push_back(optimizer::ScanSpec{s.table, s.predicate, s.alias});
    }
    return opt.PlanJoinQuery(std::move(specs), std::move(preds));
  };
  return sql::PlanSelect(stmt, catalog_, join_planner);
}

Result<sql::Table> DistributedSqlSession::ExecuteSelect(
    const sql::SelectStatement& stmt) {
  last_ = QueryInfo{};
  last_.select = true;
  OFI_ASSIGN_OR_RETURN(sql::PlanPtr plan, PlanQuery(stmt));
  DistLowering lowering =
      LowerSelectPlan(plan, &cluster_, &stats_, exec_options_);
  if (!lowering.ok()) {
    last_.fallback_reason = lowering.fallback_reason;
    sql::Executor exec(&catalog_);
    return exec.Execute(plan);
  }

  OFI_ASSIGN_OR_RETURN(DistPlanResult dist,
                       ExecuteDistPlan(&cluster_, lowering.root, exec_options_));
  last_.distributed = true;
  last_.stats = dist.stats;
  if (lowering.cn_post.empty()) return std::move(dist.table);

  // Re-execute the plan nodes above the distributed cut (HAVING filters,
  // projections, ORDER BY, LIMIT) over the gathered result, innermost
  // first. Expressions are cloned: Bind() caches indices in place and the
  // logical plan must stay reusable.
  sql::PlanPtr post = sql::MakeValues(std::move(dist.table));
  for (auto it = lowering.cn_post.rbegin(); it != lowering.cn_post.rend();
       ++it) {
    const sql::PlanNode* n = *it;
    switch (n->kind) {
      case sql::PlanKind::kFilter:
        post = sql::MakeFilter(std::move(post),
                               n->predicate ? n->predicate->Clone() : nullptr);
        break;
      case sql::PlanKind::kProject: {
        std::vector<sql::ExprPtr> exprs;
        exprs.reserve(n->projections.size());
        for (const auto& e : n->projections) {
          exprs.push_back(e ? e->Clone() : nullptr);
        }
        post = sql::MakeProject(std::move(post), std::move(exprs),
                                n->projection_names);
        break;
      }
      case sql::PlanKind::kSort: {
        std::vector<sql::SortKey> keys;
        keys.reserve(n->sort_keys.size());
        for (const auto& k : n->sort_keys) {
          keys.push_back(sql::SortKey{k.expr ? k.expr->Clone() : nullptr,
                                      k.ascending});
        }
        post = sql::MakeSort(std::move(post), std::move(keys));
        break;
      }
      case sql::PlanKind::kLimit:
        post = sql::MakeLimit(std::move(post), n->limit, n->offset);
        break;
      default:
        return Status::Internal("unexpected CN-side plan node");
    }
  }
  sql::Catalog empty;  // the Values leaf carries the gathered rows
  sql::Executor exec(&empty);
  return exec.Execute(post);
}

Result<sql::Table> DistributedSqlSession::Execute(
    const std::string& statement) {
  OFI_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(statement));
  switch (stmt.kind) {
    case sql::StatementKind::kCreateTable: {
      const auto& create = *stmt.create_table;
      if (catalog_.Contains(create.table)) {
        return Status::AlreadyExists("table exists: " + create.table);
      }
      // Qualified columns on BOTH sides, so an expression planned against
      // the mirror binds identically on a DN shard schema.
      sql::Schema qualified = create.schema.WithQualifier(create.table);
      OFI_RETURN_NOT_OK(cluster_.CreateTable(create.table, qualified));
      catalog_.Register(create.table, sql::Table(qualified));
      stats_.Put(create.table, optimizer::TableStats{});
      return sql::Table{};
    }
    case sql::StatementKind::kDropTable: {
      OFI_RETURN_NOT_OK(catalog_.Drop(stmt.drop_table->table));
      cluster_.DropColumnar(stmt.drop_table->table);
      cluster_.DropIndexes(stmt.drop_table->table);
      return sql::Table{};
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& create = *stmt.create_index;
      if (!catalog_.Contains(create.table)) {
        return Status::NotFound("no such table: " + create.table);
      }
      OFI_RETURN_NOT_OK(
          cluster_.CreateIndex(create.table, create.column, create.ordered));
      return sql::Table{};
    }
    case sql::StatementKind::kDropIndex: {
      cluster_.DropIndexes(stmt.drop_index->table);
      return sql::Table{};
    }
    case sql::StatementKind::kInsert: {
      const auto& insert = *stmt.insert;
      OFI_ASSIGN_OR_RETURN(auto table, catalog_.Get(insert.table));
      for (const auto& row : insert.rows) {
        if (row.empty()) {
          return Status::InvalidArgument("cannot insert an empty row");
        }
        // Mirror first: it validates the row shape before anything ships.
        OFI_RETURN_NOT_OK(table->Append(row));
        Txn txn = cluster_.Begin(TxnScope::kSingleShard);
        OFI_RETURN_NOT_OK(txn.Insert(insert.table, row[0], row));
        OFI_RETURN_NOT_OK(txn.Commit());
      }
      // Keep statistics fresh enough for small interactive sessions.
      stats_.Put(insert.table, optimizer::AnalyzeTable(*table));
      return sql::Table{};
    }
    case sql::StatementKind::kSelect:
      return ExecuteSelect(*stmt.select);
  }
  return Status::Internal("unhandled statement kind");
}

std::string DistributedSqlSession::LastScanReport() const {
  if (!last_.distributed || last_.stats.per_dn.empty()) return "";
  std::string out;
  for (const auto& info : last_.stats.per_dn) {
    out += "  dn" + std::to_string(info.dn) + " " + info.table + ": " +
           info.path;
    if (info.path.rfind("columnar", 0) == 0) {
      out += " chunks=" + std::to_string(info.stats.chunks_scanned) + "/" +
             std::to_string(info.stats.chunks_total) +
             " pruned=" + std::to_string(info.stats.chunks_pruned) +
             " rows=" + std::to_string(info.stats.rows_decoded) +
             " delta=" + std::to_string(info.stats.delta_rows);
      if (info.stats.morsels > 1) {
        out += " morsels=" + std::to_string(info.stats.morsels);
      }
    } else if (info.path.rfind("index", 0) == 0) {
      // Realized probe output — pairs with EXPLAIN's est_rows forecast.
      out += " rows=" + std::to_string(info.stats.index_rows);
    }
    out += "\n";
  }
  return out;
}

Result<std::string> DistributedSqlSession::Explain(const std::string& query) {
  OFI_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(query));
  if (stmt.kind != sql::StatementKind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  OFI_ASSIGN_OR_RETURN(sql::PlanPtr plan, PlanQuery(*stmt.select));
  DistLowering lowering =
      LowerSelectPlan(plan, &cluster_, &stats_, exec_options_);
  if (!lowering.ok()) {
    return "SINGLE-NODE PLAN (fallback: " + lowering.fallback_reason + ")\n" +
           plan->ToString();
  }
  std::string out = "DISTRIBUTED PLAN (over " +
                    std::to_string(ServingDns(&cluster_).size()) + " DNs)\n" +
                    lowering.root->ToString();
  // Execution mode: pipelined fragments overlap produce/consume across the
  // exchange; strict channel limits force the barrier (deny outcomes would
  // otherwise depend on drain timing).
  if (exec_options_.pipeline) {
    out += exec_options_.strict_channel_limit
               ? "exec=barrier (pipeline disabled under strict channel limit)\n"
               : "exec=pipelined\n";
  }
  // Per-DN scan forecast (predicted path, shard freshness, zone-map prune
  // estimate) — metadata only, nothing executes.
  std::string paths = ExplainScanPaths(&cluster_, lowering.root);
  if (!paths.empty()) out += "scan forecast:\n" + paths;
  // Exchange overflow policy: only worth a line when a cap is set.
  if (exec_options_.max_channel_bytes > 0) {
    out += "exchange: channel cap " +
           std::to_string(exec_options_.max_channel_bytes) + "B, overflow " +
           (exec_options_.strict_channel_limit ? std::string("denied (strict)")
                                               : std::string("spills to ") +
                                                     (exec_options_.spill_dir
                                                          .empty()
                                                          ? "system temp dir"
                                                          : exec_options_
                                                                .spill_dir));
    if (exec_options_.max_spill_bytes > 0) {
      out += ", spill budget " + std::to_string(exec_options_.max_spill_bytes) +
             "B";
    }
    out += "\n";
  }
  if (exec_options_.max_build_bytes > 0) {
    out += "join build: in-memory cap " +
           std::to_string(exec_options_.max_build_bytes) +
           "B per DN, overflow spools to spill\n";
  }
  if (!lowering.cn_post.empty()) {
    out += "CN-side post:";
    // Rendered in execution order (innermost node runs first after gather).
    for (auto it = lowering.cn_post.rbegin(); it != lowering.cn_post.rend();
         ++it) {
      switch ((*it)->kind) {
        case sql::PlanKind::kFilter: out += " FILTER"; break;
        case sql::PlanKind::kProject: out += " PROJECT"; break;
        case sql::PlanKind::kSort: out += " SORT"; break;
        case sql::PlanKind::kLimit: out += " LIMIT"; break;
        default: out += " ?"; break;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ofi::cluster
