/// \file tpcc_workload.h
/// \brief The modified-TPC-C workload of the GTM-lite evaluation (paper
/// §II-A2, Fig. 3): warehouse-sharded tables, a NewOrder / Payment /
/// OrderStatus mix, and an explicit single-shard fraction knob — the paper
/// runs 100% single-shard (SS) and 90% single-shard (MS).
///
/// The driver is a closed-loop simulated-time harness: each client issues
/// transactions back to back; clients interleave on the shared simulated
/// resources (GTM, DNs) via a smallest-time-first scheduler, and throughput
/// is committed transactions per simulated second.
#pragma once

#include <cstdint>

#include "cluster/cluster.h"
#include "common/rng.h"

namespace ofi::cluster {

struct TpccConfig {
  int warehouses_per_dn = 4;
  /// Concurrent closed-loop clients per DN.
  int clients_per_dn = 4;
  /// Fraction of transactions that touch a second shard (0.0 = SS, 0.1 = MS).
  double multi_shard_fraction = 0.0;
  /// Simulated run length.
  SimTime duration_us = 2'000'000;
  uint64_t seed = 42;
  /// Customers / stock items per warehouse (scaled down from spec sizes).
  int customers_per_warehouse = 300;
  int stock_per_warehouse = 200;
};

struct TpccResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  /// Committed transactions per simulated second.
  double throughput_tps = 0;
  /// Per-transaction simulated commit latency, exact percentiles over the
  /// committed transactions of the run.
  SimTime latency_p50_us = 0;
  SimTime latency_p95_us = 0;
  SimTime latency_p99_us = 0;
  /// Serialized requests the GTM served during the run.
  uint64_t gtm_requests = 0;
  /// Snapshot-merge resolutions observed (GTM-lite only).
  int64_t upgrades = 0;
  int64_t downgrades = 0;
};

/// Loads the TPC-C-like tables into `cluster` (warehouse / district /
/// customer / stock, co-located per warehouse) and installs the
/// warehouse sharder. Call once per cluster before RunTpcc. Returns
/// InvalidArgument on a nonsensical config (non-positive warehouse /
/// client / duration / sizing knobs).
Status LoadTpcc(Cluster* cluster, const TpccConfig& config);

/// Runs the closed-loop workload and reports throughput. A thin wrapper
/// over traffic::RunTraffic (the session-pipelined engine) with group
/// commit and admission control off: clients_per_dn * num_dns sessions,
/// no think time.
TpccResult RunTpcc(Cluster* cluster, const TpccConfig& config);

/// Key layout helpers (exposed for tests).
namespace tpcc {
constexpr int64_t kKeySpace = 1'000'000;
inline int64_t WarehouseKey(int64_t w) { return w * kKeySpace; }
inline int64_t DistrictKey(int64_t w, int64_t d) { return w * kKeySpace + 1 + d; }
inline int64_t CustomerKey(int64_t w, int64_t c) { return w * kKeySpace + 100 + c; }
inline int64_t StockKey(int64_t w, int64_t i) { return w * kKeySpace + 100'000 + i; }
inline int64_t OrderKey(int64_t w, int64_t seq) {
  return w * kKeySpace + 500'000 + seq;
}
inline int64_t WarehouseOf(int64_t key) { return key / kKeySpace; }
}  // namespace tpcc

}  // namespace ofi::cluster
